GO ?= go

.PHONY: all build test lint fuzz bench benchgate baselines fmt

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint builds the simvet vettool and runs the full determinism & protocol
# analyzer suite over every package, then the analyzers' own fixture tests.
# Findings fail the build; escapes need a justified //lint:allow comment.
lint:
	$(GO) build -o bin/simvet ./cmd/simvet
	$(GO) vet -vettool=bin/simvet ./...
	$(GO) test ./internal/lint/simvet/

fuzz:
	$(GO) test -fuzz=FuzzUnmarshalRoundTrip -fuzztime=10s ./internal/wire

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# benchgate regenerates the gated quick-scale experiments and diffs them
# against the committed baselines under bench/baselines/.
benchgate:
	$(GO) run ./cmd/tsuebench -exp saturation -scale quick -json
	$(GO) run ./cmd/tsuebench -exp obs -scale quick -json
	$(GO) run ./cmd/benchgate

# baselines refreshes the committed benchgate baselines from fresh runs.
# Only do this deliberately, with the perf delta understood and explained.
baselines: benchgate
	cp BENCH_saturation.json BENCH_obs.json bench/baselines/

fmt:
	gofmt -w .
