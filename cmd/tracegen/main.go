// Command tracegen emits synthetic block traces (Ali-Cloud, Ten-Cloud, or
// MSR volume profiles) in the MSR Cambridge CSV format, for replay by
// external tools or for inspection.
//
// Usage:
//
//	tracegen -profile ali -ops 100000 -ws 1024 > ali.csv
//	tracegen -profile mds0 -ops 50000 -seed 7 -o msr_mds0.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"tsue/internal/trace"
)

func main() {
	profile := flag.String("profile", "ali", "ali | ten | src10|src22|proj2|prn1|hm0|usr0|mds0")
	ops := flag.Int("ops", 100000, "number of records")
	wsMB := flag.Int64("ws", 1024, "working-set size in MiB")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print stream statistics to stderr")
	flag.Parse()

	ws := *wsMB << 20
	var p trace.Profile
	switch *profile {
	case "ali":
		p = trace.AliCloud(ws)
	case "ten":
		p = trace.TenCloud(ws)
	default:
		var err error
		p, err = trace.MSR(*profile, ws)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(2)
		}
	}
	g, err := trace.NewGenerator(p, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}
	recs := g.Gen(*ops)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteMSR(w, p.Name, recs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		st := trace.ComputeStats(recs, ws)
		fmt.Fprintf(os.Stderr, "ops=%d writeRatio=%.3f <=4K=%.3f <=16K=%.3f touched=%.2f%%\n",
			st.Ops, st.WriteRatio, st.Le4K, st.Le16K, 100*st.TouchedFrac)
	}
}
