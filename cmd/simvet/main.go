// Command simvet runs the repository's determinism & protocol linter suite
// (internal/lint/simvet) as a `go vet` tool:
//
//	go build -o /tmp/simvet ./cmd/simvet
//	go vet -vettool=/tmp/simvet ./...
//
// or, for convenience, let it re-exec go vet on itself:
//
//	go run ./cmd/simvet ./...
//
// It speaks the cmd/go unit-checker protocol directly (the -V=full / -flags
// handshake plus one vet.cfg JSON per package unit) instead of depending on
// golang.org/x/tools/go/analysis/unitchecker, so the tool builds in the
// dependency-free container this repo targets. Type information comes from
// the export-data files the go command already wrote to the build cache,
// via the stdlib gc importer.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"tsue/internal/lint/simvet"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// We accept no analyzer flags; tell cmd/go so with an empty list.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		if err := runUnit(args[0]); err != nil {
			fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
			os.Exit(1)
		}
	case len(args) >= 1 && args[0] != "-h" && args[0] != "--help":
		reexec(args)
	default:
		fmt.Fprintln(os.Stderr, "usage: simvet <packages>  (runs `go vet -vettool=simvet <packages>`)")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=$(which simvet) <packages>")
		for _, a := range simvet.Analyzers() {
			fmt.Fprintf(os.Stderr, "\n%s: %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
}

// printVersion implements the `-V=full` handshake: cmd/go keys its vet
// result cache on this line, so it must change exactly when the tool binary
// changes — hash the executable.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
}

// reexec runs `go vet -vettool=<self> <args...>` so `go run ./cmd/simvet
// ./...` works as a one-liner.
func reexec(args []string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(1)
	}
}

// vetConfig is the JSON cmd/go writes per compilation unit (vet.cfg).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("%s: %w", cfgPath, err)
	}
	// cmd/go demands a vetx (facts) file for every unit, dependencies
	// included; simvet has no cross-package facts, so an empty one is
	// always correct and must be written on every exit path.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil // dependency unit: facts only, nothing to analyze
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	unit := &simvet.Unit{
		Path:  simvet.NormalizePath(cfg.ImportPath),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}
	diags := simvet.Run(unit, simvet.Analyzers())
	if len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	os.Exit(2) // the unit-checker exit code for "diagnostics reported"
	return nil
}

// typecheck loads the unit's dependencies from the export-data files listed
// in the vet config and typechecks the parsed files with the stdlib gc
// importer.
func typecheck(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		// Keep going on errors: a partial Info still lets syntactic
		// analyzers and most typed checks do useful work.
		Error: func(error) {},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
