// Command benchgate is the perf-regression gate: it diffs freshly produced
// BENCH_<exp>.json result files (tsuebench -json) against the committed
// baseline trajectory under bench/baselines/ and fails when a gated metric
// regresses by more than the threshold. CI runs it after regenerating the
// quick-scale saturation and obs experiments, so a change that silently
// inflates the admitted-load p99 or deflates the max sustainable IOPS
// breaks the build instead of the trajectory.
//
// Usage:
//
//	benchgate                              # gate saturation,obs at 25%
//	benchgate -exps saturation -pct 10
//	benchgate -baseline bench/baselines -fresh .
//
// Gated metrics:
//
//	lat_p99_ms, p99_ms      higher is worse — fail if fresh > base*(1+pct/100)
//	max_sustainable_iops    higher is better — fail if fresh < base*(1-pct/100)
//
// Sub-50µs latency baselines are exempt from the ratio check (a scheduler
// tick there is already >25%); they gate on an absolute 50µs ceiling
// instead. A gated metric present in the baseline but missing from the
// fresh run is itself a failure — a gate that can be silently narrowed is
// no gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchFile mirrors cmd/tsuebench's result envelope.
type benchFile struct {
	Experiment string   `json:"experiment"`
	Scale      string   `json:"scale"`
	Ops        int      `json:"ops"`
	Metrics    []metric `json:"metrics"`
}

type metric struct {
	Experiment string            `json:"experiment"`
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Value      float64           `json:"value"`
}

// key canonicalizes a metric identity: name plus sorted labels.
func (m metric) key() string {
	parts := make([]string, 0, len(m.Labels))
	for k, v := range m.Labels {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return m.Name + "{" + strings.Join(parts, ",") + "}"
}

// higherWorse metrics gate on inflation, higherBetter on deflation.
var (
	higherWorse  = map[string]bool{"lat_p99_ms": true, "p99_ms": true}
	higherBetter = map[string]bool{"max_sustainable_iops": true}
)

// latFloorMs exempts microscopic latency baselines from the ratio check:
// below this, one scheduler tick of drift already exceeds any reasonable
// percentage, so such metrics gate on the absolute ceiling instead.
const latFloorMs = 0.05

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func gateExperiment(baseDir, freshDir, exp string, pct float64) []string {
	name := "BENCH_" + exp + ".json"
	base, err := load(filepath.Join(baseDir, name))
	if err != nil {
		return []string{fmt.Sprintf("%s: baseline: %v", exp, err)}
	}
	fresh, err := load(filepath.Join(freshDir, name))
	if err != nil {
		return []string{fmt.Sprintf("%s: fresh run: %v", exp, err)}
	}
	if base.Scale != fresh.Scale || base.Ops != fresh.Ops {
		return []string{fmt.Sprintf("%s: incomparable runs: baseline %s/%d ops vs fresh %s/%d ops",
			exp, base.Scale, base.Ops, fresh.Scale, fresh.Ops)}
	}
	got := make(map[string]float64, len(fresh.Metrics))
	for _, m := range fresh.Metrics {
		got[m.key()] = m.Value
	}
	var fails []string
	checked := 0
	for _, m := range base.Metrics {
		worse, better := higherWorse[m.Name], higherBetter[m.Name]
		if !worse && !better {
			continue
		}
		cur, ok := got[m.key()]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: %s missing from fresh run", exp, m.key()))
			continue
		}
		checked++
		switch {
		case worse && m.Value < latFloorMs:
			if cur > latFloorMs {
				fails = append(fails, fmt.Sprintf("%s: %s rose %.4f -> %.4f ms (above the %.0fµs sub-floor ceiling)",
					exp, m.key(), m.Value, cur, latFloorMs*1000))
			}
		case worse:
			if cur > m.Value*(1+pct/100) {
				fails = append(fails, fmt.Sprintf("%s: %s regressed %.4f -> %.4f (+%.1f%%, gate %.0f%%)",
					exp, m.key(), m.Value, cur, 100*(cur/m.Value-1), pct))
			}
		case better:
			if cur < m.Value*(1-pct/100) {
				fails = append(fails, fmt.Sprintf("%s: %s regressed %.1f -> %.1f (-%.1f%%, gate %.0f%%)",
					exp, m.key(), m.Value, cur, 100*(1-cur/m.Value), pct))
			}
		}
	}
	fmt.Printf("benchgate: %s: %d gated metrics checked, %d failed\n", exp, checked, len(fails))
	return fails
}

func main() {
	baseDir := flag.String("baseline", "bench/baselines", "directory holding the committed BENCH_<exp>.json baselines")
	freshDir := flag.String("fresh", ".", "directory holding the freshly produced BENCH_<exp>.json files")
	exps := flag.String("exps", "saturation,obs", "comma-separated experiments to gate")
	pct := flag.Float64("pct", 25, "regression threshold in percent")
	flag.Parse()

	var fails []string
	for _, exp := range strings.Split(*exps, ",") {
		fails = append(fails, gateExperiment(*baseDir, *freshDir, strings.TrimSpace(exp), *pct)...)
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
