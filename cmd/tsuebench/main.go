// Command tsuebench regenerates the TSUE paper's tables and figures on the
// simulated 16-node ECFS cluster.
//
// Usage:
//
//	tsuebench -exp all                 # every experiment, quick scale
//	tsuebench -exp fig5 -scale full    # one experiment at paper-grid scale
//	tsuebench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tsue/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	scale := flag.String("scale", "quick", "quick | full")
	ops := flag.Int("ops", 0, "override total ops per run")
	fileMB := flag.Int64("filemb", 0, "override working-set size (MiB)")
	pgs := flag.String("pgs", "", "override the placement experiment's PG-count sweep (comma-separated, e.g. 2,16,128)")
	files := flag.Int("files", 0, "override the placement experiment's file count")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := harness.Experiments()
	if *list {
		names := make([]string, 0, len(exps))
		for n := range exps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	fn, ok := exps[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "tsuebench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	var s harness.Scale
	switch *scale {
	case "quick":
		s = harness.QuickScale()
	case "full":
		s = harness.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tsuebench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *fileMB > 0 {
		s.FileMB = *fileMB
	}
	if *pgs != "" {
		var counts []int
		for _, f := range strings.Split(*pgs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "tsuebench: bad -pgs entry %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		s.PGCounts = counts
	}
	if *files > 0 {
		s.Files = *files
	}
	start := time.Now()
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintf(os.Stderr, "tsuebench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n(%s scale, wall time %v)\n", *scale, time.Since(start).Round(time.Millisecond))
}
