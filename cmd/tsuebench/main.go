// Command tsuebench regenerates the TSUE paper's tables and figures on the
// simulated 16-node ECFS cluster.
//
// Usage:
//
//	tsuebench -exp all                 # every experiment, quick scale
//	tsuebench -exp fig5 -scale full    # one experiment at paper-grid scale
//	tsuebench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tsue/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	scale := flag.String("scale", "quick", "quick | full")
	ops := flag.Int("ops", 0, "override total ops per run")
	fileMB := flag.Int64("filemb", 0, "override working-set size (MiB)")
	pgs := flag.String("pgs", "", "override the placement experiment's PG-count sweep (comma-separated, e.g. 2,16,128)")
	files := flag.Int("files", 0, "override the placement experiment's file count")
	addOSD := flag.Int("addosd", 0, "override how many OSDs the rebalance experiment adds online")
	rebalanceRate := flag.Int64("rebalance-rate", -1, "rebalance copy throttle in MB/s (0 = unthrottled)")
	traceEvery := flag.Int("obs", 0, "trace every n-th op end-to-end (0 = off; zero-perturbation — results unchanged)")
	jsonOut := flag.Bool("json", false, "also write machine-readable results to BENCH_<exp>.json")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := harness.Experiments()
	if *list {
		names := make([]string, 0, len(exps))
		for n := range exps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	fn, ok := exps[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "tsuebench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	var s harness.Scale
	switch *scale {
	case "quick":
		s = harness.QuickScale()
	case "full":
		s = harness.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "tsuebench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *fileMB > 0 {
		s.FileMB = *fileMB
	}
	if *pgs != "" {
		var counts []int
		for _, f := range strings.Split(*pgs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "tsuebench: bad -pgs entry %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		s.PGCounts = counts
	}
	if *files > 0 {
		s.Files = *files
	}
	if *addOSD > 0 {
		s.AddOSDs = *addOSD
	}
	if *rebalanceRate >= 0 {
		s.RebalanceRateBps = *rebalanceRate << 20
	}
	if *traceEvery > 0 {
		s.TraceSample = *traceEvery
	}
	if *jsonOut {
		s.Sink = &harness.Sink{}
	}
	start := time.Now()
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintf(os.Stderr, "tsuebench: %v\n", err)
		os.Exit(1)
	}
	wall := time.Since(start)
	if *jsonOut {
		if err := writeJSON(*exp, *scale, s, wall); err != nil {
			fmt.Fprintf(os.Stderr, "tsuebench: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n(%s scale, wall time %v)\n", *scale, wall.Round(time.Millisecond))
}

// benchFile is the machine-readable result envelope: one BENCH_<exp>.json
// per invocation, so successive runs of the same experiment can be diffed
// into a perf trajectory.
type benchFile struct {
	Experiment string           `json:"experiment"`
	Scale      string           `json:"scale"`
	Ops        int              `json:"ops"`
	FileMB     int64            `json:"file_mb"`
	WallMs     int64            `json:"wall_ms"`
	Metrics    []harness.Metric `json:"metrics"`
}

func writeJSON(exp, scale string, s harness.Scale, wall time.Duration) error {
	out := benchFile{
		Experiment: exp,
		Scale:      scale,
		Ops:        s.Ops,
		FileMB:     s.FileMB,
		WallMs:     wall.Milliseconds(),
		Metrics:    s.Sink.Metrics,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", exp)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\n(wrote %s: %d metrics)\n", path, len(out.Metrics))
	return nil
}
