// Package tsue's top-level benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced scale (one bench per artifact). Run
// the full-scale versions with cmd/tsuebench.
package tsue

import (
	"io"
	"testing"

	"tsue/internal/harness"
)

// benchScale keeps the whole suite tractable under `go test -bench=.`.
func benchScale() harness.Scale {
	return harness.Scale{
		Ops:       800,
		FileMB:    12,
		Clients:   []int{16},
		RSConfigs: [][2]int{{6, 4}},
	}
}

func runExp(b *testing.B, fn func(io.Writer, harness.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: SSD update throughput across engines.
func BenchmarkFig5(b *testing.B) { runExp(b, harness.Fig5) }

// BenchmarkFig6a regenerates Fig. 6a: recycle-overhead IOPS timeline.
func BenchmarkFig6a(b *testing.B) { runExp(b, harness.Fig6a) }

// BenchmarkFig6b regenerates Fig. 6b: memory usage vs log-unit quota.
func BenchmarkFig6b(b *testing.B) { runExp(b, harness.Fig6b) }

// BenchmarkFig7 regenerates Fig. 7: the O1..O5 contribution breakdown.
func BenchmarkFig7(b *testing.B) { runExp(b, harness.Fig7) }

// BenchmarkTable1 regenerates Table 1: storage workload, network traffic,
// and SSD wear per engine.
func BenchmarkTable1(b *testing.B) { runExp(b, harness.Table1) }

// BenchmarkTable2 regenerates Table 2: per-layer log residency times.
func BenchmarkTable2(b *testing.B) { runExp(b, harness.Table2) }

// BenchmarkFig8a regenerates Fig. 8a: HDD update throughput per MSR volume.
func BenchmarkFig8a(b *testing.B) { runExp(b, harness.Fig8a) }

// BenchmarkFig8b regenerates Fig. 8b: HDD recovery bandwidth per MSR volume.
func BenchmarkFig8b(b *testing.B) { runExp(b, harness.Fig8b) }
