// Package tsue's top-level benchmarks regenerate every table and figure of
// the paper's evaluation at a reduced scale (one bench per artifact). Run
// the full-scale versions with cmd/tsuebench.
package tsue

import (
	"io"
	"math/rand"
	"testing"

	"tsue/internal/gf256"
	"tsue/internal/harness"
	"tsue/internal/rs"
)

// benchScale keeps the whole suite tractable under `go test -bench=.`.
func benchScale() harness.Scale {
	return harness.Scale{
		Ops:       800,
		FileMB:    12,
		Clients:   []int{16},
		RSConfigs: [][2]int{{6, 4}},
	}
}

func runExp(b *testing.B, fn func(io.Writer, harness.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Fig. 5: SSD update throughput across engines.
func BenchmarkFig5(b *testing.B) { runExp(b, harness.Fig5) }

// BenchmarkFig6a regenerates Fig. 6a: recycle-overhead IOPS timeline.
func BenchmarkFig6a(b *testing.B) { runExp(b, harness.Fig6a) }

// BenchmarkFig6b regenerates Fig. 6b: memory usage vs log-unit quota.
func BenchmarkFig6b(b *testing.B) { runExp(b, harness.Fig6b) }

// BenchmarkFig7 regenerates Fig. 7: the O1..O5 contribution breakdown.
func BenchmarkFig7(b *testing.B) { runExp(b, harness.Fig7) }

// BenchmarkTable1 regenerates Table 1: storage workload, network traffic,
// and SSD wear per engine.
func BenchmarkTable1(b *testing.B) { runExp(b, harness.Table1) }

// BenchmarkTable2 regenerates Table 2: per-layer log residency times.
func BenchmarkTable2(b *testing.B) { runExp(b, harness.Table2) }

// BenchmarkFig8a regenerates Fig. 8a: HDD update throughput per MSR volume.
func BenchmarkFig8a(b *testing.B) { runExp(b, harness.Fig8a) }

// BenchmarkFig8b regenerates Fig. 8b: HDD recovery bandwidth per MSR volume.
func BenchmarkFig8b(b *testing.B) { runExp(b, harness.Fig8b) }

// BenchmarkSweep regenerates the batched-recycle sweep (recycler batch size
// x codec workers).
func BenchmarkSweep(b *testing.B) { runExp(b, harness.Sweep) }

// Kernel micro-benchmarks: the word-wise gf256 slice kernels against their
// scalar references on 64 KiB buffers (the hot-loop sizes of encode and
// parity-delta folding). The word/ref ratio is the acceptance number for
// the coding hot path.

const kernelBenchSize = 64 << 10

func kernelBufs() (dst, src []byte) {
	dst = make([]byte, kernelBenchSize)
	src = make([]byte, kernelBenchSize)
	rand.New(rand.NewSource(42)).Read(src)
	return dst, src
}

// BenchmarkMulXorSlice compares the word-wise fused multiply-XOR kernel
// (dst ^= c*src, the parity-delta inner loop) against the scalar reference.
func BenchmarkMulXorSlice(b *testing.B) {
	dst, src := kernelBufs()
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.MulXorSlice(0x8e, dst, src)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.MulXorSliceRef(0x8e, dst, src)
		}
	})
}

// BenchmarkMulSlice compares the word-wise multiply kernel against the
// scalar reference.
func BenchmarkMulSlice(b *testing.B) {
	dst, src := kernelBufs()
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.MulSlice(0x8e, dst, src)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.MulSliceRef(0x8e, dst, src)
		}
	})
}

// BenchmarkXorSlice compares the word-wise XOR kernel against the scalar
// reference.
func BenchmarkXorSlice(b *testing.B) {
	dst, src := kernelBufs()
	b.Run("word", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.XorSlice(dst, src)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.SetBytes(kernelBenchSize)
		for i := 0; i < b.N; i++ {
			gf256.XorSliceRef(dst, src)
		}
	})
}

// BenchmarkEncode measures full-stripe RS(6,4) encoding of 1 MiB shards
// through the striped codec, at 1 worker and at the default worker bound.
func BenchmarkEncode(b *testing.B) {
	code := rs.MustNew(6, 4, rs.Vandermonde)
	const shard = 1 << 20
	rng := rand.New(rand.NewSource(43))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, shard)
		rng.Read(data[i])
	}
	parity := make([][]byte, 4)
	for i := range parity {
		parity[i] = make([]byte, shard)
	}
	for _, workers := range []int{1, 0} {
		name := "default-workers"
		if workers == 1 {
			name = "1-worker"
		}
		b.Run(name, func(b *testing.B) {
			rs.SetWorkers(workers)
			defer rs.SetWorkers(0)
			b.SetBytes(6 * shard)
			for i := 0; i < b.N; i++ {
				if err := code.Encode(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
