// Recovery demonstrates failure handling: run updates with TSUE, kill an
// OSD while its DataLog still holds unrecycled items, then recover — the
// lost blocks are reconstructed from surviving stripes and the dead node's
// unrecycled updates are replayed from their replica holders (§4.2).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"tsue/internal/cluster"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

func main() {
	cfg := cluster.DefaultConfig()
	cfg.EngineOpts.UnitSize = 64 << 20 // keep the DataLog hot at failure time
	c := cluster.MustNew(cfg)
	client := c.NewClient()

	c.Env.Go("recovery-demo", func(p *sim.Proc) {
		content := make([]byte, 4*c.StripeWidth())
		rand.New(rand.NewSource(1)).Read(content)
		ino, err := client.Create(p, "db.dat", int64(len(content)))
		check(err)
		check(client.WriteFile(p, ino, content))

		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 200; i++ {
			off := int64(rng.Intn(len(content) - 8192))
			buf := make([]byte, 8192)
			rng.Read(buf)
			check(client.Update(p, ino, off, buf))
			copy(content[off:], buf)
		}
		fmt.Printf("200 updates applied; OSD 3 dies with a hot DataLog at t=%v\n", p.Now())

		rep, err := c.Recover(p, wire.NodeID(3), 8, cluster.RecoverLogReplay, client)
		check(err)
		fmt.Printf("recovered %d blocks (%.1f MiB) in %v — %.1f MiB/s\n",
			rep.Blocks, float64(rep.Bytes)/(1<<20), rep.TotalTime.Round(0),
			rep.BandwidthBps/(1<<20))
		fmt.Printf("replayed %d unrecycled DataLog items (%.1f KiB) from replica holders\n",
			rep.ReplayedItems, float64(rep.ReplayedBytes)/1024)

		n, err := c.Scrub()
		check(err)
		got, err := client.Read(p, ino, 0, int64(len(content)))
		check(err)
		if !bytes.Equal(got, content) {
			log.Fatal("content diverged after recovery")
		}
		fmt.Printf("scrub OK (%d stripes) and byte-exact content after node loss\n", n)
	})
	c.Env.Run(0)
	c.Env.Close()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
