// Wearlife compares SSD wear across update schemes: same Ten-Cloud replay,
// same cluster, different engines — reporting NAND bytes programmed, erase
// counts, and write amplification from the device model's FTL. This is the
// measured basis of the paper's "extends the SSD's lifespan by up to 13x"
// claim (§1, §5.3.4).
package main

import (
	"fmt"
	"log"

	"tsue/internal/harness"
	"tsue/internal/trace"
	"tsue/internal/update"
)

func main() {
	type row struct {
		name   string
		nandMB float64
		erases int64
		wa     float64
	}
	var rows []row
	for _, engine := range update.Names() {
		cfg := harness.DefaultRunConfig()
		cfg.Engine = engine
		cfg.Ops = 8000
		cfg.Opts.UnitSize = 4 << 20 // deeper units -> more locality merging per recycle
		cfg.Clients = 32
		cfg.FileBytes = 24 << 20
		cfg.Trace = trace.TenCloud(cfg.FileBytes)
		res, err := harness.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
		d := res.Device
		rows = append(rows, row{
			name:   engine,
			nandMB: float64(d.NandWriteBytes) / (1 << 20),
			erases: d.Erases,
			wa:     d.WriteAmp(),
		})
	}
	var tsueNand float64
	for _, r := range rows {
		if r.name == "tsue" {
			tsueNand = r.nandMB
		}
	}
	fmt.Printf("%-6s  %12s  %8s  %6s  %s\n", "engine", "NAND MiB", "erases", "WA", "lifespan vs tsue")
	for _, r := range rows {
		factor := 1.0
		if tsueNand > 0 {
			factor = r.nandMB / tsueNand
		}
		fmt.Printf("%-6s  %12.1f  %8d  %6.2f  %.2fx shorter\n", r.name, r.nandMB, r.erases, r.wa, factor)
	}
}
