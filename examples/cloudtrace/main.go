// Cloudtrace replays a synthetic Ali-Cloud block trace against the
// simulated SSD cluster with two engines (PL and TSUE) and reports the
// aggregate IOPS, device workload, and network traffic side by side — a
// miniature of the paper's Fig. 5 / Table 1 methodology.
package main

import (
	"fmt"
	"log"

	"tsue/internal/harness"
	"tsue/internal/trace"
)

func main() {
	for _, engine := range []string{"pl", "tsue"} {
		cfg := harness.DefaultRunConfig()
		cfg.Engine = engine
		cfg.Ops = 4000
		cfg.Clients = 32
		cfg.FileBytes = 32 << 20
		cfg.Trace = trace.AliCloud(cfg.FileBytes)
		res, err := harness.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
		d := res.Device
		fmt.Printf("%-5s  IOPS=%8.0f  elapsed=%10v  rw-ops=%7d  overwrites=%6d  net=%6.1f MiB  peakLogMem=%5.1f MiB\n",
			engine, res.IOPS, res.Elapsed.Round(0),
			d.ReadOps+d.WriteOps, d.OverwriteOps,
			float64(res.Net.BytesSent)/(1<<20), float64(res.PeakMem)/(1<<20))
	}
	fmt.Println("\n(each run ends with a full drain and a stripe-consistency scrub)")
}
