// Quickstart: build a 16-node simulated ECFS cluster with the TSUE update
// engine, write a file through the erasure-coded path, apply small updates,
// read them back, and verify stripe consistency — the whole public surface
// in ~80 lines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"tsue/internal/cluster"
	"tsue/internal/sim"
)

func main() {
	cfg := cluster.DefaultConfig() // 16 OSDs, RS(6,4), SSDs, 25 Gb/s, TSUE
	c := cluster.MustNew(cfg)
	client := c.NewClient()

	c.Env.Go("quickstart", func(p *sim.Proc) {
		// 1. Create and write a 12 MiB file (2 stripes of RS(6,4) x 1 MiB).
		content := make([]byte, 2*c.StripeWidth())
		rand.New(rand.NewSource(42)).Read(content)
		ino, err := client.Create(p, "hello.dat", int64(len(content)))
		check(err)
		check(client.WriteFile(p, ino, content))
		fmt.Printf("wrote %d bytes as inode %d at t=%v\n", len(content), ino, p.Now())

		// 2. Apply 100 small updates through TSUE's two-stage path.
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 100; i++ {
			off := int64(rng.Intn(len(content) - 4096))
			buf := make([]byte, 4096)
			rng.Read(buf)
			check(client.Update(p, ino, off, buf))
			copy(content[off:], buf)
		}
		fmt.Printf("applied 100 updates, virtual time %v\n", p.Now())

		// 3. Read back immediately — TSUE's DataLog doubles as a read cache,
		// so updates are visible before any recycle.
		got, err := client.Read(p, ino, 0, int64(len(content)))
		check(err)
		if !bytes.Equal(got, content) {
			log.Fatal("read-back mismatch")
		}
		fmt.Println("read-your-writes verified before any drain")

		// 4. Drain the three-layer log pipeline and verify every stripe:
		// encode(data blocks) must equal the parity blocks.
		check(c.DrainAll(p, client))
		n, err := c.Scrub()
		check(err)
		fmt.Printf("scrub OK: %d stripes consistent after drain\n", n)

		st := c.DeviceStats()
		fmt.Printf("device totals: %d reads, %d writes, %d overwrites, %.1f MiB NAND-written\n",
			st.ReadOps, st.WriteOps, st.OverwriteOps, float64(st.NandWriteBytes)/(1<<20))
	})
	c.Env.Run(0)
	c.Env.Close()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
