module tsue

go 1.22
