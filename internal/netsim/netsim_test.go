package netsim

import (
	"errors"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

func echoHandler(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
	return wire.OK
}

func TestCallRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	var resp wire.Msg
	var err error
	e.Go("c", func(p *sim.Proc) {
		resp, err = f.Call(p, 0, 1, &wire.Heartbeat{From: 0})
	})
	e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Ack); !ok {
		t.Fatalf("resp %T", resp)
	}
}

func TestCallLatency(t *testing.T) {
	e := sim.NewEnv()
	p := Params{Bandwidth: 1e9, BaseLat: 100 * time.Microsecond}
	f := New(e, p)
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	var done time.Duration
	e.Go("c", func(pr *sim.Proc) {
		f.Call(pr, 0, 1, &wire.Drain{}) // 40-byte frame
		done = pr.Now()
	})
	e.Run(0)
	// >= 2 base latencies plus four transfer legs of 40ns each.
	if done < 2*p.BaseLat {
		t.Fatalf("RTT %v < 2x base", done)
	}
	if done > 2*p.BaseLat+time.Millisecond {
		t.Fatalf("RTT %v unreasonably high", done)
	}
}

func TestBandwidthDominatesLargeTransfers(t *testing.T) {
	e := sim.NewEnv()
	p := Params{Bandwidth: 1e6, BaseLat: time.Microsecond} // 1 MB/s
	f := New(e, p)
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	var done time.Duration
	e.Go("c", func(pr *sim.Proc) {
		f.Call(pr, 0, 1, &wire.PutBlock{Blk: wire.BlockID{}, Data: make([]byte, 1<<20)})
		done = pr.Now()
	})
	e.Run(0)
	// 1 MiB at 1 MB/s: ~1.05s on tx and again on rx.
	if done < 2*time.Second {
		t.Fatalf("large transfer took %v, want >= ~2.1s", done)
	}
}

func TestNICContention(t *testing.T) {
	// Two concurrent sends from one node serialize on its TX NIC.
	e := sim.NewEnv()
	p := Params{Bandwidth: 1e6, BaseLat: 0}
	f := New(e, p)
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	f.AddNode(2, echoHandler)
	var t1, t2 time.Duration
	e.Go("a", func(pr *sim.Proc) {
		f.Call(pr, 0, 1, &wire.PutBlock{Data: make([]byte, 1e6)})
		t1 = pr.Now()
	})
	e.Go("b", func(pr *sim.Proc) {
		f.Call(pr, 0, 2, &wire.PutBlock{Data: make([]byte, 1e6)})
		t2 = pr.Now()
	})
	e.Run(0)
	last := t1
	if t2 > last {
		last = t2
	}
	if last < 2*time.Second {
		t.Fatalf("TX contention not modeled: finished at %v", last)
	}
}

func TestTrafficAccounting(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	msg := &wire.Update{Blk: wire.BlockID{Ino: 1, Stripe: 2, Index: 3}, Data: make([]byte, 100)}
	e.Go("c", func(p *sim.Proc) {
		f.Call(p, 0, 1, msg)
	})
	e.Run(0)
	want := wire.SizeOf(msg) + wire.SizeOf(wire.OK)
	if f.TotalStats().BytesSent != want {
		t.Fatalf("total=%d want %d", f.TotalStats().BytesSent, want)
	}
	if f.NodeStats(0).BytesSent != wire.SizeOf(msg) {
		t.Fatal("sender accounting wrong")
	}
	if f.NodeStats(1).BytesRecv != wire.SizeOf(msg) {
		t.Fatal("receiver accounting wrong")
	}
}

func TestLoopbackSkipsNIC(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, echoHandler)
	e.Go("c", func(p *sim.Proc) {
		if _, err := f.Call(p, 0, 0, &wire.Drain{}); err != nil {
			t.Error(err)
		}
	})
	e.Run(0)
	if f.TotalStats().BytesSent != 0 {
		t.Fatal("loopback charged the network")
	}
}

func TestDownNode(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	f.SetDown(1, true)
	var err error
	e.Go("c", func(p *sim.Proc) {
		_, err = f.Call(p, 0, 1, &wire.Drain{})
	})
	e.Run(0)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err=%v", err)
	}
	f.SetDown(1, false)
	e2 := sim.NewEnv()
	_ = e2
	e.Go("c2", func(p *sim.Proc) {
		_, err = f.Call(p, 0, 1, &wire.Drain{})
	})
	e.Run(0)
	if err != nil {
		t.Fatalf("restored node unreachable: %v", err)
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	// Node 1's handler calls node 2 before responding (the common OSD
	// forwarding pattern).
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(2, echoHandler)
	f.AddNode(1, func(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
		resp, err := f.Call(p, 1, 2, &wire.Drain{})
		if err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return resp
	})
	var resp wire.Msg
	e.Go("c", func(p *sim.Proc) {
		resp, _ = f.Call(p, 0, 1, &wire.Heartbeat{From: 0})
	})
	e.Run(0)
	a, ok := resp.(*wire.Ack)
	if !ok || a.Err != "" {
		t.Fatalf("nested call failed: %#v", resp)
	}
}

func TestUnknownNode(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	var err error
	e.Go("c", func(p *sim.Proc) {
		_, err = f.Call(p, 0, 99, &wire.Drain{})
	})
	e.Run(0)
	if err == nil {
		t.Fatal("call to unknown node succeeded")
	}
}
