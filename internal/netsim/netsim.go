// Package netsim models the cluster interconnect for the simulated ECFS:
// per-node full-duplex NICs with finite bandwidth, a per-hop base latency
// (propagation plus RPC software overhead), and complete traffic accounting.
// The paper's SSD testbed uses 25 Gb/s Ethernet and the HDD testbed 40 Gb/s
// InfiniBand (§5.1, §5.4); both are expressible as Params.
//
// Beyond the clean fabric, netsim is a fault-injection surface for the
// grey-failure space the SSD-array studies (Koh et al.) document: per-link
// and per-node latency/bandwidth overrides with pluggable distributions
// (straggler NICs), asymmetric one-way partitions, scripted down/up flapping
// on the sim clock, and payload-corruption hooks that flip bytes in flight
// so end-to-end checksums can be exercised.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"tsue/internal/obs"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Params describes the fabric.
type Params struct {
	Bandwidth float64       // bytes/sec per NIC direction
	BaseLat   time.Duration // per-hop latency incl. RPC software overhead
}

// Ethernet25G models the paper's SSD-cluster network.
func Ethernet25G() Params {
	return Params{Bandwidth: 25e9 / 8, BaseLat: 20 * time.Microsecond}
}

// Infiniband40G models the paper's HDD-cluster network.
func Infiniband40G() Params {
	return Params{Bandwidth: 40e9 / 8, BaseLat: 8 * time.Microsecond}
}

// ErrNodeDown is returned for calls to a failed node.
var ErrNodeDown = errors.New("netsim: node down")

// ErrPartitioned is returned when a call crosses a partitioned link
// direction. A request-direction cut fails before the handler runs (no side
// effects); a response-direction cut fails after the handler completed — the
// caller cannot tell whether its operation was applied.
var ErrPartitioned = errors.New("netsim: link partitioned")

// ErrUnknownNode is wrapped by accessors handed a NodeID that was never
// registered with AddNode.
var ErrUnknownNode = errors.New("netsim: unknown node")

// Handler processes one inbound message on a node and returns the response.
type Handler func(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg

// Corruptor inspects a message in flight on the from->to direction and may
// replace it with a corrupted copy (return the mutated message and true).
// Implementations must not mutate the original message or its payload
// slices in place: messages pass by reference through the simulated
// transport, so an in-place flip would corrupt the sender's buffers too.
// Loopback traffic is exempt (it never crosses a wire).
type Corruptor func(from, to wire.NodeID, m wire.Msg) (wire.Msg, bool)

// Dist is a latency distribution sampled once per one-way hop.
type Dist interface {
	Sample(r *rand.Rand) time.Duration
}

// Fixed is a degenerate distribution: every sample is the same duration.
// It never consumes randomness, so fabrics using only Fixed latencies stay
// bit-deterministic regardless of call interleaving. Fixed(0) is a valid
// explicit zero-latency link (only a nil Dist means "inherit").
type Fixed time.Duration

// Sample returns the fixed duration; r is unused.
func (f Fixed) Sample(_ *rand.Rand) time.Duration { return time.Duration(f) }

// Lognormal is a heavy-tailed latency distribution — the straggler shape
// observed for limping NICs/SSDs: exp(N(ln median, sigma^2)), i.e. median
// multiplied by a lognormal factor. Sigma around 1.5-2 produces the
// occasional 10-100x outlier that hedged reads exist to cut.
type Lognormal struct {
	Median time.Duration
	Sigma  float64
}

// Sample draws one latency from the distribution.
func (l Lognormal) Sample(r *rand.Rand) time.Duration {
	d := time.Duration(float64(l.Median) * math.Exp(l.Sigma*r.NormFloat64()))
	if d < 0 {
		d = 0
	}
	return d
}

// LinkShape overrides the fabric-default bandwidth and/or latency for a
// link or node. Zero values inherit: Bandwidth 0 means "use the next level
// down" (use math.Inf(1) for an infinitely fast link), Latency nil likewise
// (use Fixed(0) for a true zero-latency link).
type LinkShape struct {
	Bandwidth float64 // bytes/sec; 0 = inherit, +Inf = instantaneous
	Latency   Dist    // nil = inherit
}

// Stats holds traffic counters.
//
//lint:allow obsregistry(pre-registry snapshot struct of the fabric traffic API; per-node and total counters feed the harness volume columns)
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

type node struct {
	id      wire.NodeID
	tx, rx  *sim.Resource
	handler Handler
	down    bool
	shape   LinkShape
	stats   Stats
}

type linkKey struct{ from, to wire.NodeID }

// Fabric connects nodes.
type Fabric struct {
	env       *sim.Env
	params    Params
	nodes     map[wire.NodeID]*node
	links     map[linkKey]LinkShape
	parts     map[linkKey]bool
	corrupt   Corruptor
	corrupted int64
	rng       *rand.Rand
	total     Stats
	tracer    *obs.Tracer
}

// New creates an empty fabric. Latency distributions share a fabric-local
// deterministic RNG (reseed with SetSeed); the default Fixed latency path
// never touches it.
func New(e *sim.Env, p Params) *Fabric {
	return &Fabric{
		env:    e,
		params: p,
		nodes:  make(map[wire.NodeID]*node),
		links:  make(map[linkKey]LinkShape),
		parts:  make(map[linkKey]bool),
		rng:    rand.New(rand.NewSource(1)),
	}
}

// SetSeed reseeds the fabric's latency-sampling RNG.
func (f *Fabric) SetSeed(seed int64) { f.rng = rand.New(rand.NewSource(seed)) }

// AddNode registers a node; handler may be nil for pure clients.
func (f *Fabric) AddNode(id wire.NodeID, h Handler) {
	if _, dup := f.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %d", id))
	}
	f.nodes[id] = &node{
		id:      id,
		tx:      f.env.NewResource(fmt.Sprintf("nic-tx-%d", id), 1),
		rx:      f.env.NewResource(fmt.Sprintf("nic-rx-%d", id), 1),
		handler: h,
	}
}

// SetHandler replaces a node's handler. Unknown nodes are an error, not a
// panic.
func (f *Fabric) SetHandler(id wire.NodeID, h Handler) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	n.handler = h
	return nil
}

// SetDown marks a node failed (true) or restored (false). Unknown nodes are
// an error, not a panic.
func (f *Fabric) SetDown(id wire.NodeID, down bool) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	n.down = down
	return nil
}

// Down reports whether the node is failed; unknown nodes report false.
func (f *Fabric) Down(id wire.NodeID) bool {
	n, ok := f.nodes[id]
	return ok && n.down
}

// SetLink overrides the shape of the directed link from -> to (request and
// response directions are independent links). A zero LinkShape restores
// full inheritance.
func (f *Fabric) SetLink(from, to wire.NodeID, s LinkShape) error {
	if _, ok := f.nodes[from]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	if _, ok := f.nodes[to]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	f.links[linkKey{from, to}] = s
	return nil
}

// ClearLink removes a directed link override.
func (f *Fabric) ClearLink(from, to wire.NodeID) { delete(f.links, linkKey{from, to}) }

// SetNodeShape overrides the shape of every link touching a node (a limping
// NIC): its bandwidth applies to the node's own NIC legs and its latency to
// hops the node sends (and, when the sender has no shape, hops it
// receives). Link-specific overrides still win.
func (f *Fabric) SetNodeShape(id wire.NodeID, s LinkShape) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	n.shape = s
	return nil
}

// Partition cuts (on=true) or heals (on=false) the directed link
// from -> to. Cutting only one direction yields the asymmetric grey
// failure: A's calls to B die while B's calls to A — including responses to
// requests that arrived before the cut — still flow.
func (f *Fabric) Partition(from, to wire.NodeID, on bool) error {
	if _, ok := f.nodes[from]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	if _, ok := f.nodes[to]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	if on {
		f.parts[linkKey{from, to}] = true
	} else {
		delete(f.parts, linkKey{from, to})
	}
	return nil
}

// PartitionBoth cuts or heals both directions between two nodes.
func (f *Fabric) PartitionBoth(a, b wire.NodeID, on bool) error {
	if err := f.Partition(a, b, on); err != nil {
		return err
	}
	return f.Partition(b, a, on)
}

// Partitioned reports whether the directed link from -> to is cut.
func (f *Fabric) Partitioned(from, to wire.NodeID) bool { return f.parts[linkKey{from, to}] }

// ScheduleFlap scripts a membership flap on the sim clock: starting at
// start, the node goes down for downFor, comes back, and repeats every
// period for cycles iterations. The toggles run in scheduler context, so
// they land at exact virtual times regardless of traffic.
func (f *Fabric) ScheduleFlap(id wire.NodeID, start, downFor, period time.Duration, cycles int) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if downFor <= 0 || cycles < 1 {
		return fmt.Errorf("netsim: flap needs downFor > 0 and cycles >= 1")
	}
	if cycles > 1 && period <= downFor {
		return fmt.Errorf("netsim: flap period %v must exceed downFor %v", period, downFor)
	}
	for i := 0; i < cycles; i++ {
		at := start + time.Duration(i)*period
		f.env.At(at, func() { n.down = true })
		f.env.At(at+downFor, func() { n.down = false })
	}
	return nil
}

// SetTracer attaches the observability plane's tracer: every Call whose
// request is wire.Spanned and whose calling proc runs under a live trace
// gets a wire-stage span covering the full round trip, the message is
// stamped with the child context, and the receiving handler runs under a
// resumed handler span — cross-node tracing with no per-call-site plumbing.
// Tracing records spans only; it never schedules events, consumes
// randomness, or changes message sizes, so fabric timing is identical with
// it on or off.
func (f *Fabric) SetTracer(t *obs.Tracer) { f.tracer = t }

// SetCorruptor installs (or, with nil, removes) the in-flight corruption
// hook. It sees every non-loopback request and response.
func (f *Fabric) SetCorruptor(c Corruptor) { f.corrupt = c }

// CorruptionsInjected counts messages the corruptor chose to mutate.
func (f *Fabric) CorruptionsInjected() int64 { return f.corrupted }

// latency resolves the one-way latency of a from -> to hop and samples it:
// link-specific override first, then the sender's node shape, then the
// receiver's, then the fabric default.
func (f *Fabric) latency(from, to *node) time.Duration {
	if s, ok := f.links[linkKey{from.id, to.id}]; ok && s.Latency != nil {
		return s.Latency.Sample(f.rng)
	}
	if from.shape.Latency != nil {
		return from.shape.Latency.Sample(f.rng)
	}
	if to.shape.Latency != nil {
		return to.shape.Latency.Sample(f.rng)
	}
	return f.params.BaseLat
}

// bandwidth resolves the bytes/sec charged at node nic's NIC for a transfer
// in the from -> to direction: link-specific override first, then the NIC
// owner's node shape, then the fabric default.
func (f *Fabric) bandwidth(from, to, nic *node) float64 {
	if s, ok := f.links[linkKey{from.id, to.id}]; ok && s.Bandwidth != 0 {
		return s.Bandwidth
	}
	if nic.shape.Bandwidth != 0 {
		return nic.shape.Bandwidth
	}
	return f.params.Bandwidth
}

func (f *Fabric) xfer(p *sim.Proc, r *sim.Resource, size int64, bw float64) {
	var d time.Duration
	if !math.IsInf(bw, 1) {
		d = time.Duration(float64(size) / bw * float64(time.Second))
	}
	r.Use(p, d)
}

type callResult struct {
	resp wire.Msg
	err  error
}

// Call performs a synchronous RPC from -> to. It charges the sender's TX and
// the receiver's RX for the request, runs the handler in a fresh process on
// the receiver, then charges the reverse path for the response. Loopback
// calls skip the NIC (and all fault injection) but still run the handler.
func (f *Fabric) Call(p *sim.Proc, from, to wire.NodeID, req wire.Msg) (wire.Msg, error) {
	src, ok := f.nodes[from]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown source node %d", from)
	}
	dst, ok := f.nodes[to]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown target node %d", to)
	}
	if fin := f.rpcSpan(p, req, to); fin != nil {
		defer fin()
	}
	if src.down {
		return nil, ErrNodeDown
	}
	if dst.down {
		// The connection attempt still costs a round trip.
		p.Sleep(2 * f.params.BaseLat)
		return nil, ErrNodeDown
	}
	if dst.handler == nil {
		return nil, fmt.Errorf("netsim: node %d has no handler", to)
	}
	if from == to {
		// Local dispatch: no NIC, no propagation; handler still runs in its
		// own process for scheduling parity with remote calls.
		return f.dispatch(p, src, dst, req, true)
	}
	reqSize := wire.SizeOf(req)
	f.xfer(p, src.tx, reqSize, f.bandwidth(src, dst, src))
	src.stats.BytesSent += reqSize
	src.stats.MsgsSent++
	f.total.BytesSent += reqSize
	f.total.MsgsSent++
	if f.parts[linkKey{from, to}] {
		// Request-direction cut: the bytes left the sender and died on the
		// wire. The receiver never sees the call — no handler side effects —
		// and the caller burns a timeout-ish round trip discovering it.
		p.Sleep(2 * f.latency(src, dst))
		return nil, ErrPartitioned
	}
	if f.corrupt != nil {
		if m, hit := f.corrupt(from, to, req); hit {
			req = m
			f.corrupted++
		}
	}
	p.Sleep(f.latency(src, dst))
	dst.stats.BytesRecv += reqSize
	dst.stats.MsgsRecv++
	return f.dispatch(p, src, dst, req, false)
}

// rpcSpan opens the wire-stage span for a traced outgoing request and
// stamps the message with the child context; returns nil when untraced.
func (f *Fabric) rpcSpan(p *sim.Proc, req wire.Msg, to wire.NodeID) func() {
	if !f.tracer.Enabled() {
		return nil
	}
	sp, ok := req.(wire.Spanned)
	if !ok {
		return nil
	}
	a, on := obs.FromProc(p)
	if !on {
		return nil
	}
	child, fin := a.Child(obs.RPCStage(req.Type()), "rpc:"+req.Type().String(), to)
	*sp.SpanRef() = child.Ctx()
	return fin
}

// handlerSpan resumes a traced request's wire context on the handler proc
// and opens the receiver-side span; no-op when untraced.
func (f *Fabric) handlerSpan(hp *sim.Proc, req wire.Msg, at wire.NodeID) func() {
	if !f.tracer.Enabled() {
		return nil
	}
	sp, ok := req.(wire.Spanned)
	if !ok || sp.SpanRef().Trace == 0 {
		return nil
	}
	stage := obs.HandlerStage(req.Type())
	h := obs.Resume(f.tracer, *sp.SpanRef(), stage)
	hc, fin := h.Child(stage, "handle:"+req.Type().String(), at)
	hp.SetSpan(hc)
	return fin
}

func (f *Fabric) dispatch(p *sim.Proc, src, dst *node, req wire.Msg, local bool) (wire.Msg, error) {
	respQ := sim.NewQueue[callResult](f.env)
	f.env.Go(fmt.Sprintf("rpc@%d", dst.id), func(hp *sim.Proc) {
		if !local {
			f.xfer(hp, dst.rx, wire.SizeOf(req), f.bandwidth(src, dst, dst))
		}
		if dst.down {
			respQ.Put(callResult{err: ErrNodeDown})
			return
		}
		hFin := f.handlerSpan(hp, req, dst.id)
		resp := dst.handler(hp, src.id, req)
		if hFin != nil {
			hFin()
		}
		if resp == nil {
			resp = wire.OK
		}
		if !local {
			if f.parts[linkKey{dst.id, src.id}] {
				// Response-direction cut: the handler's side effects are
				// complete but the reply dies on the wire — the caller cannot
				// tell whether its operation was applied. This is the grey
				// half of an asymmetric partition.
				respQ.Put(callResult{err: ErrPartitioned})
				return
			}
			if f.corrupt != nil {
				if m, hit := f.corrupt(dst.id, src.id, resp); hit {
					resp = m
					f.corrupted++
				}
			}
			respSize := wire.SizeOf(resp)
			f.xfer(hp, dst.tx, respSize, f.bandwidth(dst, src, dst))
			dst.stats.BytesSent += respSize
			dst.stats.MsgsSent++
			src.stats.BytesRecv += respSize
			src.stats.MsgsRecv++
			f.total.BytesSent += respSize
			f.total.MsgsSent++
		}
		respQ.Put(callResult{resp: resp})
	})
	r, _ := respQ.Get(p)
	if r.err != nil {
		return nil, r.err
	}
	if !local {
		p.Sleep(f.latency(dst, src))
	}
	return r.resp, nil
}

// NICLoad reports one node's NIC state for utilization sampling: cumulative
// busy time and instantaneous waiter-queue depth, per direction. Unknown
// nodes report zeros.
func (f *Fabric) NICLoad(id wire.NodeID) (txBusy, rxBusy time.Duration, txQueue, rxQueue int) {
	n, ok := f.nodes[id]
	if !ok {
		return 0, 0, 0, 0
	}
	return n.tx.BusyTime, n.rx.BusyTime, n.tx.QueueLen(), n.rx.QueueLen()
}

// NodeIDs returns the registered node ids in ascending order.
func (f *Fabric) NodeIDs() []wire.NodeID {
	ids := make([]wire.NodeID, 0, len(f.nodes))
	for id := range f.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodeStats returns the traffic counters of one node; unknown nodes report
// zeros.
func (f *Fabric) NodeStats(id wire.NodeID) Stats {
	n, ok := f.nodes[id]
	if !ok {
		return Stats{}
	}
	return n.stats
}

// TotalStats returns fabric-wide traffic (each message counted once).
func (f *Fabric) TotalStats() Stats { return f.total }

// ResetStats zeroes all traffic counters (corruption injections included).
func (f *Fabric) ResetStats() {
	f.total = Stats{}
	f.corrupted = 0
	for _, n := range f.nodes {
		n.stats = Stats{}
	}
}
