// Package netsim models the cluster interconnect for the simulated ECFS:
// per-node full-duplex NICs with finite bandwidth, a per-hop base latency
// (propagation plus RPC software overhead), and complete traffic accounting.
// The paper's SSD testbed uses 25 Gb/s Ethernet and the HDD testbed 40 Gb/s
// InfiniBand (§5.1, §5.4); both are expressible as Params.
package netsim

import (
	"errors"
	"fmt"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Params describes the fabric.
type Params struct {
	Bandwidth float64       // bytes/sec per NIC direction
	BaseLat   time.Duration // per-hop latency incl. RPC software overhead
}

// Ethernet25G models the paper's SSD-cluster network.
func Ethernet25G() Params {
	return Params{Bandwidth: 25e9 / 8, BaseLat: 20 * time.Microsecond}
}

// Infiniband40G models the paper's HDD-cluster network.
func Infiniband40G() Params {
	return Params{Bandwidth: 40e9 / 8, BaseLat: 8 * time.Microsecond}
}

// ErrNodeDown is returned for calls to a failed node.
var ErrNodeDown = errors.New("netsim: node down")

// Handler processes one inbound message on a node and returns the response.
type Handler func(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg

// Stats holds traffic counters.
type Stats struct {
	BytesSent int64
	BytesRecv int64
	MsgsSent  int64
	MsgsRecv  int64
}

type node struct {
	id      wire.NodeID
	tx, rx  *sim.Resource
	handler Handler
	down    bool
	stats   Stats
}

// Fabric connects nodes.
type Fabric struct {
	env    *sim.Env
	params Params
	nodes  map[wire.NodeID]*node
	total  Stats
}

// New creates an empty fabric.
func New(e *sim.Env, p Params) *Fabric {
	return &Fabric{env: e, params: p, nodes: make(map[wire.NodeID]*node)}
}

// AddNode registers a node; handler may be nil for pure clients.
func (f *Fabric) AddNode(id wire.NodeID, h Handler) {
	if _, dup := f.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %d", id))
	}
	f.nodes[id] = &node{
		id:      id,
		tx:      f.env.NewResource(fmt.Sprintf("nic-tx-%d", id), 1),
		rx:      f.env.NewResource(fmt.Sprintf("nic-rx-%d", id), 1),
		handler: h,
	}
}

// SetHandler replaces a node's handler.
func (f *Fabric) SetHandler(id wire.NodeID, h Handler) { f.nodes[id].handler = h }

// SetDown marks a node failed (true) or restored (false).
func (f *Fabric) SetDown(id wire.NodeID, down bool) { f.nodes[id].down = down }

// Down reports whether the node is failed.
func (f *Fabric) Down(id wire.NodeID) bool { return f.nodes[id].down }

func (f *Fabric) xfer(p *sim.Proc, r *sim.Resource, size int64) {
	d := time.Duration(float64(size) / f.params.Bandwidth * float64(time.Second))
	r.Use(p, d)
}

type callResult struct {
	resp wire.Msg
	err  error
}

// Call performs a synchronous RPC from -> to. It charges the sender's TX and
// the receiver's RX for the request, runs the handler in a fresh process on
// the receiver, then charges the reverse path for the response. Loopback
// calls skip the NIC but still run the handler.
func (f *Fabric) Call(p *sim.Proc, from, to wire.NodeID, req wire.Msg) (wire.Msg, error) {
	src, ok := f.nodes[from]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown source node %d", from)
	}
	dst, ok := f.nodes[to]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown target node %d", to)
	}
	if src.down {
		return nil, ErrNodeDown
	}
	if dst.down {
		// The connection attempt still costs a round trip.
		p.Sleep(2 * f.params.BaseLat)
		return nil, ErrNodeDown
	}
	if dst.handler == nil {
		return nil, fmt.Errorf("netsim: node %d has no handler", to)
	}
	if from == to {
		// Local dispatch: no NIC, no propagation; handler still runs in its
		// own process for scheduling parity with remote calls.
		return f.dispatch(p, src, dst, req, true)
	}
	reqSize := wire.SizeOf(req)
	f.xfer(p, src.tx, reqSize)
	p.Sleep(f.params.BaseLat)
	src.stats.BytesSent += reqSize
	src.stats.MsgsSent++
	dst.stats.BytesRecv += reqSize
	dst.stats.MsgsRecv++
	f.total.BytesSent += reqSize
	f.total.MsgsSent++
	return f.dispatch(p, src, dst, req, false)
}

func (f *Fabric) dispatch(p *sim.Proc, src, dst *node, req wire.Msg, local bool) (wire.Msg, error) {
	respQ := sim.NewQueue[callResult](f.env)
	f.env.Go(fmt.Sprintf("rpc@%d", dst.id), func(hp *sim.Proc) {
		if !local {
			f.xfer(hp, dst.rx, wire.SizeOf(req))
		}
		if dst.down {
			respQ.Put(callResult{err: ErrNodeDown})
			return
		}
		resp := dst.handler(hp, src.id, req)
		if resp == nil {
			resp = wire.OK
		}
		if !local {
			respSize := wire.SizeOf(resp)
			f.xfer(hp, dst.tx, respSize)
			dst.stats.BytesSent += respSize
			dst.stats.MsgsSent++
			src.stats.BytesRecv += respSize
			src.stats.MsgsRecv++
			f.total.BytesSent += respSize
			f.total.MsgsSent++
		}
		respQ.Put(callResult{resp: resp})
	})
	r, _ := respQ.Get(p)
	if r.err != nil {
		return nil, r.err
	}
	if !local {
		p.Sleep(f.params.BaseLat)
	}
	return r.resp, nil
}

// NodeStats returns the traffic counters of one node.
func (f *Fabric) NodeStats(id wire.NodeID) Stats { return f.nodes[id].stats }

// TotalStats returns fabric-wide traffic (each message counted once).
func (f *Fabric) TotalStats() Stats { return f.total }

// ResetStats zeroes all traffic counters.
func (f *Fabric) ResetStats() {
	f.total = Stats{}
	for _, n := range f.nodes {
		n.stats = Stats{}
	}
}
