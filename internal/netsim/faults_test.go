package netsim

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Satellite regression: accessors handed an unregistered NodeID must error
// (or report a zero value), never panic on the nil map entry.
func TestUnknownNodeAccessors(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(1, echoHandler)

	if err := f.SetHandler(99, echoHandler); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetHandler unknown: err=%v", err)
	}
	if err := f.SetDown(99, true); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetDown unknown: err=%v", err)
	}
	if f.Down(99) {
		t.Fatal("Down(unknown) = true")
	}
	if st := f.NodeStats(99); st != (Stats{}) {
		t.Fatalf("NodeStats(unknown) = %+v", st)
	}
	if err := f.SetLink(1, 99, LinkShape{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetLink unknown: err=%v", err)
	}
	if err := f.SetNodeShape(99, LinkShape{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetNodeShape unknown: err=%v", err)
	}
	if err := f.Partition(99, 1, true); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Partition unknown: err=%v", err)
	}
	if err := f.ScheduleFlap(99, 0, time.Millisecond, 2*time.Millisecond, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("ScheduleFlap unknown: err=%v", err)
	}
	// Known node still works through the new signatures.
	if err := f.SetDown(1, true); err != nil || !f.Down(1) {
		t.Fatalf("SetDown known: err=%v down=%v", err, f.Down(1))
	}
	if err := f.SetDown(1, false); err != nil || f.Down(1) {
		t.Fatal("SetDown restore failed")
	}
}

// Satellite: table-driven resolution order for link overrides —
// link-specific > node-specific (sender before receiver for latency, NIC
// owner for bandwidth) > fabric default — including the zero-value edge
// cases (Bandwidth 0 / Latency nil inherit; Fixed(0) and +Inf are explicit).
func TestLinkShapeResolution(t *testing.T) {
	base := Params{Bandwidth: 1e6, BaseLat: 100 * time.Microsecond}
	type tc struct {
		name    string
		src     LinkShape // node shape of node 0 (sender)
		dst     LinkShape // node shape of node 1 (receiver)
		link    *LinkShape
		wantLat time.Duration
		wantSrc float64 // bandwidth charged at node 0's NIC for 0->1
		wantDst float64 // bandwidth charged at node 1's NIC for 0->1
	}
	cases := []tc{
		{
			name:    "all default",
			wantLat: base.BaseLat, wantSrc: base.Bandwidth, wantDst: base.Bandwidth,
		},
		{
			name: "sender node shape",
			src:  LinkShape{Bandwidth: 5e5, Latency: Fixed(time.Millisecond)},
			// Sender's latency applies to the hop; only the sender's NIC leg
			// slows down — the receiver's NIC is healthy.
			wantLat: time.Millisecond, wantSrc: 5e5, wantDst: base.Bandwidth,
		},
		{
			name:    "receiver node shape",
			dst:     LinkShape{Bandwidth: 2e5, Latency: Fixed(2 * time.Millisecond)},
			wantLat: 2 * time.Millisecond, wantSrc: base.Bandwidth, wantDst: 2e5,
		},
		{
			name:    "sender latency beats receiver latency",
			src:     LinkShape{Latency: Fixed(3 * time.Millisecond)},
			dst:     LinkShape{Latency: Fixed(7 * time.Millisecond)},
			wantLat: 3 * time.Millisecond, wantSrc: base.Bandwidth, wantDst: base.Bandwidth,
		},
		{
			name:    "link override beats node shapes",
			src:     LinkShape{Bandwidth: 5e5, Latency: Fixed(time.Millisecond)},
			dst:     LinkShape{Bandwidth: 2e5, Latency: Fixed(2 * time.Millisecond)},
			link:    &LinkShape{Bandwidth: 4e6, Latency: Fixed(10 * time.Microsecond)},
			wantLat: 10 * time.Microsecond, wantSrc: 4e6, wantDst: 4e6,
		},
		{
			name: "link zero bandwidth inherits node then default",
			src:  LinkShape{Bandwidth: 5e5},
			link: &LinkShape{Latency: Fixed(time.Millisecond)},
			// Link sets only latency; bandwidth falls through to the NIC
			// owner's node shape (sender leg) or the default (receiver leg).
			wantLat: time.Millisecond, wantSrc: 5e5, wantDst: base.Bandwidth,
		},
		{
			name: "link nil latency inherits node then default",
			dst:  LinkShape{Latency: Fixed(4 * time.Millisecond)},
			link: &LinkShape{Bandwidth: 9e6},
			// Link sets only bandwidth; latency falls through to the
			// receiver's node shape (sender has none).
			wantLat: 4 * time.Millisecond, wantSrc: 9e6, wantDst: 9e6,
		},
		{
			name:    "explicit zero latency",
			src:     LinkShape{Latency: Fixed(5 * time.Millisecond)},
			link:    &LinkShape{Latency: Fixed(0)},
			wantLat: 0, wantSrc: base.Bandwidth, wantDst: base.Bandwidth,
		},
		{
			name:    "infinite bandwidth is explicit, not inherit",
			link:    &LinkShape{Bandwidth: math.Inf(1)},
			wantLat: base.BaseLat, wantSrc: math.Inf(1), wantDst: math.Inf(1),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := sim.NewEnv()
			f := New(e, base)
			f.AddNode(0, nil)
			f.AddNode(1, echoHandler)
			if err := f.SetNodeShape(0, c.src); err != nil {
				t.Fatal(err)
			}
			if err := f.SetNodeShape(1, c.dst); err != nil {
				t.Fatal(err)
			}
			if c.link != nil {
				if err := f.SetLink(0, 1, *c.link); err != nil {
					t.Fatal(err)
				}
			}
			src, dst := f.nodes[0], f.nodes[1]
			if got := f.latency(src, dst); got != c.wantLat {
				t.Errorf("latency(0->1) = %v, want %v", got, c.wantLat)
			}
			if got := f.bandwidth(src, dst, src); got != c.wantSrc {
				t.Errorf("bandwidth(0->1 at 0) = %v, want %v", got, c.wantSrc)
			}
			if got := f.bandwidth(src, dst, dst); got != c.wantDst {
				t.Errorf("bandwidth(0->1 at 1) = %v, want %v", got, c.wantDst)
			}
		})
	}
}

func TestStragglerNodeSlowsRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	if err := f.SetNodeShape(1, LinkShape{Latency: Fixed(5 * time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	var rtt time.Duration
	e.Go("c", func(p *sim.Proc) {
		start := p.Now()
		if _, err := f.Call(p, 0, 1, &wire.Drain{}); err != nil {
			t.Error(err)
		}
		rtt = p.Now() - start
	})
	e.Run(0)
	// Both hops route through the straggler's latency (it is receiver on the
	// request, sender on the response).
	if rtt < 10*time.Millisecond {
		t.Fatalf("straggler RTT %v < 10ms", rtt)
	}
	// Clearing the shape restores the fast path.
	if err := f.SetNodeShape(1, LinkShape{}); err != nil {
		t.Fatal(err)
	}
	e.Go("c2", func(p *sim.Proc) {
		start := p.Now()
		f.Call(p, 0, 1, &wire.Drain{})
		rtt = p.Now() - start
	})
	e.Run(0)
	if rtt > time.Millisecond {
		t.Fatalf("healed RTT %v still slow", rtt)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	handled := map[wire.NodeID]int{}
	counting := func(id wire.NodeID) Handler {
		return func(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
			handled[id]++
			return wire.OK
		}
	}
	f.AddNode(0, counting(0))
	f.AddNode(1, counting(1))

	// One-way wire cut 0 -> 1. Both RPC directions fail (an RPC needs both
	// wire directions), but asymmetrically: 0's requests die on the wire —
	// node 1's handler never runs — while 1's requests ARE delivered and
	// applied on node 0; only the ack dies crossing 0 -> 1. The caller of
	// the reverse RPC cannot tell whether its operation was applied.
	if err := f.Partition(0, 1, true); err != nil {
		t.Fatal(err)
	}
	e.Go("c", func(p *sim.Proc) {
		if _, err := f.Call(p, 0, 1, &wire.Drain{}); !errors.Is(err, ErrPartitioned) {
			t.Errorf("forward call err=%v, want ErrPartitioned", err)
		}
		if _, err := f.Call(p, 1, 0, &wire.Drain{}); !errors.Is(err, ErrPartitioned) {
			t.Errorf("reverse call err=%v, want ErrPartitioned (ack crosses the cut)", err)
		}
	})
	e.Run(0)
	if handled[1] != 0 {
		t.Fatalf("node 1 handler ran %d times across a request-direction cut", handled[1])
	}
	if handled[0] != 1 {
		t.Fatalf("node 0 handler ran %d times, want 1 (request delivered, ack lost)", handled[0])
	}
	if !f.Partitioned(0, 1) || f.Partitioned(1, 0) {
		t.Fatal("Partitioned() direction wrong")
	}

	// Heal and verify both directions flow again.
	if err := f.Partition(0, 1, false); err != nil {
		t.Fatal(err)
	}
	e.Go("c2", func(p *sim.Proc) {
		if _, err := f.Call(p, 0, 1, &wire.Drain{}); err != nil {
			t.Errorf("healed forward call err=%v", err)
		}
		if _, err := f.Call(p, 1, 0, &wire.Drain{}); err != nil {
			t.Errorf("healed reverse call err=%v", err)
		}
	})
	e.Run(0)
	if handled[0] != 2 || handled[1] != 1 {
		t.Fatalf("healed handler counts = %v, want node0:2 node1:1", handled)
	}
}

func TestScheduleFlap(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	f.AddNode(0, nil)
	f.AddNode(1, echoHandler)
	// Down windows: [1ms, 1.5ms) and [3ms, 3.5ms).
	if err := f.ScheduleFlap(1, time.Millisecond, 500*time.Microsecond, 2*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	probe := func(p *sim.Proc, at time.Duration, wantDown bool) {
		p.Sleep(at - p.Now())
		_, err := f.Call(p, 0, 1, &wire.Drain{})
		if wantDown && !errors.Is(err, ErrNodeDown) {
			t.Errorf("t=%v: err=%v, want ErrNodeDown", at, err)
		}
		if !wantDown && err != nil {
			t.Errorf("t=%v: err=%v, want nil", at, err)
		}
	}
	e.Go("c", func(p *sim.Proc) {
		probe(p, 200*time.Microsecond, false) // before first flap
		probe(p, 1200*time.Microsecond, true) // first down window
		probe(p, 1700*time.Microsecond, false)
		probe(p, 3200*time.Microsecond, true) // second down window
		probe(p, 3700*time.Microsecond, false)
	})
	e.Run(0)

	if err := f.ScheduleFlap(1, 0, 0, time.Millisecond, 1); err == nil {
		t.Fatal("zero downFor accepted")
	}
	if err := f.ScheduleFlap(1, 0, 2*time.Millisecond, time.Millisecond, 2); err == nil {
		t.Fatal("period <= downFor accepted for multi-cycle flap")
	}
}

func TestCorruptorFlipsPayloadCopy(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, Ethernet25G())
	var got []byte
	f.AddNode(0, echoHandler)
	f.AddNode(1, func(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
		got = m.(*wire.PutBlock).Data
		return wire.OK
	})
	f.SetCorruptor(func(from, to wire.NodeID, m wire.Msg) (wire.Msg, bool) {
		pb, ok := m.(*wire.PutBlock)
		if !ok {
			return m, false
		}
		c := *pb
		c.Data = bytes.Clone(pb.Data)
		c.Data[0] ^= 0xff
		return &c, true
	})
	orig := []byte{1, 2, 3, 4}
	sent := bytes.Clone(orig)
	e.Go("c", func(p *sim.Proc) {
		if _, err := f.Call(p, 0, 1, &wire.PutBlock{Data: sent}); err != nil {
			t.Error(err)
		}
	})
	e.Run(0)
	if bytes.Equal(got, orig) {
		t.Fatal("corruptor did not mutate the delivered payload")
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruptor mutated the sender's buffer")
	}
	if f.CorruptionsInjected() != 1 {
		t.Fatalf("injected=%d, want 1", f.CorruptionsInjected())
	}

	// Loopback traffic is exempt: it never crosses a wire.
	e.Go("lb", func(p *sim.Proc) {
		if _, err := f.Call(p, 0, 0, &wire.PutBlock{Data: bytes.Clone(orig)}); err != nil {
			t.Error(err)
		}
	})
	e.Run(0)
	if f.CorruptionsInjected() != 1 {
		t.Fatalf("loopback corrupted: injected=%d", f.CorruptionsInjected())
	}

	f.ResetStats()
	if f.CorruptionsInjected() != 0 {
		t.Fatal("ResetStats kept corruption count")
	}
}

func TestLognormalTail(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := Lognormal{Median: time.Millisecond, Sigma: 1.5}
	n := 4000
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = d.Sample(r)
		if samples[i] < 0 {
			t.Fatal("negative latency sample")
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	med := samples[n/2]
	if med < time.Millisecond/2 || med > 2*time.Millisecond {
		t.Fatalf("sample median %v far from configured 1ms", med)
	}
	p99 := samples[n*99/100]
	// Sigma 1.5 puts p99 at exp(1.5*2.33) ~ 33x the median.
	if p99 < 10*med {
		t.Fatalf("p99 %v shows no heavy tail (median %v)", p99, med)
	}
}
