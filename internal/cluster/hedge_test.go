package cluster

// Hedged degraded reads in isolation: with a node down and the degraded
// route registered (no rebuild yet), reads of lost blocks reconstruct on
// the fly. When one survivor straggles, the hedge must fire exactly after
// Config.HedgeDelay, win from the alternate survivor set, and leave the
// loser's late result harmlessly unconsumed; when every survivor is
// healthy, the hedge must never fire. Plus the pinned wire-corruption
// regression: a byte flipped in a reconstruction shard response surfaces
// wire.ErrChecksum — never silently wrong bytes.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/netsim"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// hedgeHarness is one degraded-window fixture: file written and drained,
// victim down, degraded route registered, and a lost data block selected
// whose first-survivor host is NOT the serving surrogate (so slowing it
// stalls only the primary reconstruction leg).
type hedgeHarness struct {
	c         *Cluster
	cl        *Client
	content   []byte
	ino       uint64
	victim    wire.NodeID
	blk       wire.BlockID // lost data block under test
	blkOff    int64        // file offset of blk's first byte
	straggler wire.NodeID  // host of blk's first surviving shard
	surrogate wire.NodeID
}

func hedgeSetup(t *testing.T, p *sim.Proc, c *Cluster, cl, admin *Client) *hedgeHarness {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	fileSize := 3 * c.StripeWidth()
	content := make([]byte, fileSize)
	rng.Read(content)
	ino, err := cl.Create(p, "f", fileSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteFile(p, ino, content); err != nil {
		t.Fatal(err)
	}
	if err := c.DrainAll(p, admin); err != nil {
		t.Fatal(err)
	}
	victim := wire.NodeID(3)
	c.Fabric.SetDown(victim, true)
	st, err := c.registerDegraded(p, victim, admin)
	if err != nil {
		t.Fatal(err)
	}
	h := &hedgeHarness{c: c, cl: cl, content: content, ino: ino, victim: victim}
	// Pick a lost DATA block whose first surviving shard's host differs from
	// the PG's surrogate: slowing that host stalls the primary fan-in leg
	// without slowing the surrogate (or the alternate leg, which skips the
	// first survivor whenever more than K shards are live).
	for _, blk := range c.OSDByID(victim).store.Blocks() {
		if !st.lost[blk] || int(blk.Index) >= c.Cfg.K {
			continue
		}
		s := blk.StripeID()
		osds := c.Placement(s)
		first := wire.NodeID(0)
		for i := 0; i < c.Cfg.K+c.Cfg.M; i++ {
			if uint16(i) == blk.Index || c.Fabric.Down(osds[i]) {
				continue
			}
			first = osds[i]
			break
		}
		sur := st.surr[c.PG(s)]
		if first == 0 || first == sur {
			continue
		}
		h.blk = blk
		h.blkOff = int64(blk.Stripe)*c.StripeWidth() + int64(blk.Index)*c.Cfg.BlockSize
		h.straggler = first
		h.surrogate = sur
		return h
	}
	t.Fatal("no lost data block with straggler != surrogate")
	return nil
}

// TestHedgedReadStragglerFiresAndWins pins the full hedging contract: with
// the first-survivor host straggling far past the deadline, every lost-block
// read (a) completes byte-exact, (b) takes at least HedgeDelay (the hedge
// cannot fire early) but far less than the straggler's latency (the
// alternate leg won), and (c) bumps fired/wins exactly once per read. The
// primary legs are still in flight when the reads return; the run draining
// to completion with the content intact is the loser-discard guarantee.
func TestHedgedReadStragglerFiresAndWins(t *testing.T) {
	cfg := degradedConfig("tsue")
	const hedgeDelay = 2 * time.Millisecond
	const stragglerLat = 40 * time.Millisecond
	cfg.HedgeDelay = hedgeDelay
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		h := hedgeSetup(t, p, c, cl, admin)
		if t.Failed() {
			return
		}
		if err := c.Fabric.SetNodeShape(h.straggler, netsim.LinkShape{Latency: netsim.Fixed(stragglerLat)}); err != nil {
			t.Fatal(err)
		}
		const reads = 3
		for i := 0; i < reads; i++ {
			start := p.Now()
			got, err := cl.Read(p, h.ino, h.blkOff, 4096)
			if err != nil {
				t.Fatalf("hedged read %d: %v", i, err)
			}
			if !bytes.Equal(got, h.content[h.blkOff:h.blkOff+4096]) {
				t.Fatalf("hedged read %d returned wrong bytes", i)
			}
			elapsed := p.Now() - start
			if elapsed < hedgeDelay {
				t.Fatalf("read %d completed in %v < HedgeDelay %v: hedge fired early", i, elapsed, hedgeDelay)
			}
			if elapsed >= stragglerLat {
				t.Fatalf("read %d took %v: waited out the straggler, hedge did not win", i, elapsed)
			}
		}
		fired, wins := c.HedgeStats()
		if fired != reads || wins != reads {
			t.Fatalf("hedge counters fired=%d wins=%d, want %d/%d", fired, wins, reads, reads)
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestHedgeQuietWhenSurvivorsHealthy pins the no-false-hedge side: with
// every survivor fast, reconstructions finish well inside HedgeDelay and
// the hedge must never launch.
func TestHedgeQuietWhenSurvivorsHealthy(t *testing.T) {
	cfg := degradedConfig("tsue")
	cfg.HedgeDelay = 2 * time.Millisecond
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		h := hedgeSetup(t, p, c, cl, admin)
		if t.Failed() {
			return
		}
		for i := 0; i < 5; i++ {
			got, err := cl.Read(p, h.ino, h.blkOff, 4096)
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(got, h.content[h.blkOff:h.blkOff+4096]) {
				t.Fatalf("read %d returned wrong bytes", i)
			}
		}
		if fired, wins := c.HedgeStats(); fired != 0 || wins != 0 {
			t.Fatalf("healthy survivors hedged: fired=%d wins=%d", fired, wins)
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestHedgeDisabledWaitsOutStraggler pins HedgeDelay == 0 as a true off
// switch: the read survives the straggler the slow way and no hedge
// machinery runs.
func TestHedgeDisabledWaitsOutStraggler(t *testing.T) {
	cfg := degradedConfig("tsue") // HedgeDelay zero
	const stragglerLat = 10 * time.Millisecond
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		h := hedgeSetup(t, p, c, cl, admin)
		if t.Failed() {
			return
		}
		if err := c.Fabric.SetNodeShape(h.straggler, netsim.LinkShape{Latency: netsim.Fixed(stragglerLat)}); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		got, err := cl.Read(p, h.ino, h.blkOff, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, h.content[h.blkOff:h.blkOff+4096]) {
			t.Fatal("read returned wrong bytes")
		}
		if elapsed := p.Now() - start; elapsed < stragglerLat {
			t.Fatalf("read took %v < straggler latency %v with hedging off", elapsed, stragglerLat)
		}
		if fired, wins := c.HedgeStats(); fired != 0 || wins != 0 {
			t.Fatalf("hedge ran while disabled: fired=%d wins=%d", fired, wins)
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestDegradedReadCorruptionSurfacesChecksum is the pinned end-to-end
// corruption regression: a byte flipped in flight in a reconstruction
// shard response must surface as wire.ErrChecksum from the fan-in — never
// silently reconstruct wrong bytes — and the client-visible read must
// still succeed byte-exact via retry, with detections matching injections
// one for one.
func TestDegradedReadCorruptionSurfacesChecksum(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		h := hedgeSetup(t, p, c, cl, admin)
		if t.Failed() {
			return
		}
		// One-shot corruptor: flip a byte in the next data-bearing ReadResp
		// (a shard flowing into the surrogate's reconstruction fan-in),
		// leaving its Sum stale. Payloads are cloned — in-flight corruption
		// must not rot the sender's store.
		arm := func() {
			armed := true
			c.Fabric.SetCorruptor(func(from, to wire.NodeID, m wire.Msg) (wire.Msg, bool) {
				rr, ok := m.(*wire.ReadResp)
				if !armed || !ok || rr.Err != "" || len(rr.Data) == 0 {
					return nil, false
				}
				armed = false
				cp := *rr
				cp.Data = append([]byte(nil), rr.Data...)
				cp.Data[0] ^= 0xff
				return &cp, true
			})
		}
		// Direct fan-in probe: the reconstruction itself reports ErrChecksum.
		arm()
		sur := c.OSDByID(h.surrogate)
		if _, err := sur.reconstructRange(p, h.blk, 0, 4096, false); !errors.Is(err, wire.ErrChecksum) {
			t.Fatalf("corrupted shard fan-in: err=%v, want ErrChecksum", err)
		}
		// Client-visible read: first attempt eats the corruption, the retry
		// reconstructs clean.
		arm()
		got, err := cl.Read(p, h.ino, h.blkOff, 4096)
		if err != nil {
			t.Fatalf("read through corruption: %v", err)
		}
		if !bytes.Equal(got, h.content[h.blkOff:h.blkOff+4096]) {
			t.Fatal("read through corruption returned wrong bytes")
		}
		injected := c.Fabric.CorruptionsInjected()
		if injected < 2 {
			t.Fatalf("injected=%d, want >= 2", injected)
		}
		if det := c.CorruptionsDetected(); det != injected {
			t.Fatalf("detections=%d != injections=%d: corruption escaped detection", det, injected)
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}
