package cluster

// The chaos grid: every update engine driven through three phases —
// faulted foreground I/O, a degraded window, and a concurrent recovery —
// under each netsim fault class, with every read verified against an
// in-memory reference and a byte-exact whole-file read-back at the end.
//
//   straggler  one survivor's NIC latency explodes; hedged degraded reads
//              must fire after HedgeDelay and win from the alternate
//              survivor set.
//   partition  asymmetric cuts on client→OSD and OSD→MDS links (engine-
//              internal links stay up, so no stripe can tear); foreground
//              ops retry through ErrPartitioned and heartbeat misses are
//              observed.
//   flap       the future victim bounces down/up on a schedule; dropped
//              engine-internal propagation may tear its stripes, which the
//              post-heal ScrubRepair plus the later rebuild must repair.
//   corrupt    a deterministic corruptor flips bytes in checksum-bearing
//              payloads; every injection must be detected (never silently
//              applied or returned) and retried through.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/netsim"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

type chaosScenario string

const (
	chaosStraggler chaosScenario = "straggler"
	chaosPartition chaosScenario = "partition"
	chaosFlap      chaosScenario = "flap"
	chaosCorrupt   chaosScenario = "corrupt"
)

var chaosScenarios = []chaosScenario{chaosStraggler, chaosPartition, chaosFlap, chaosCorrupt}

// chaosRun drives one (engine, scenario) cell.
type chaosRun struct {
	t       *testing.T
	c       *Cluster
	cl      *Client
	admin   *Client
	rng     *rand.Rand
	ino     uint64
	content []byte
	victim  wire.NodeID
}

// ops runs n random verified operations (≈1 read per 3 updates) against the
// reference buffer.
func (r *chaosRun) ops(p *sim.Proc, phase string, n int) {
	size := int64(len(r.content))
	for i := 0; i < n; i++ {
		if r.rng.Intn(3) == 0 {
			off := int64(r.rng.Intn(int(size - 2048)))
			ln := int64(1 + r.rng.Intn(2048))
			got, err := r.cl.Read(p, r.ino, off, ln)
			if err != nil {
				r.t.Errorf("%s read %d: %v", phase, i, err)
				return
			}
			if !bytes.Equal(got, r.content[off:off+ln]) {
				r.t.Errorf("%s read %d: stale bytes (off=%d len=%d)", phase, i, off, ln)
				return
			}
			continue
		}
		off := int64(r.rng.Intn(int(size - 2048)))
		buf := make([]byte, 1+r.rng.Intn(2048))
		r.rng.Read(buf)
		if err := r.cl.Update(p, r.ino, off, buf); err != nil {
			r.t.Errorf("%s update %d: %v", phase, i, err)
			return
		}
		copy(r.content[off:], buf)
	}
}

// chaosCorruptor corrupts every rate-th checksum-bearing payload crossing
// the fabric (request or response), cloning so the sender's buffers stay
// intact. The engines' internal fan-out messages now carry Sums too
// (verified centrally at OSD dispatch) but are deliberately left alone:
// a rejected XOR delta retried mid-fan-out re-applies to parities that
// already took it, which is not idempotent — their verify path is pinned
// by the wire unit tests instead.
func chaosCorruptor(rate int) netsim.Corruptor {
	seen := 0
	flip := func(data []byte) ([]byte, bool) {
		if len(data) == 0 {
			return nil, false
		}
		seen++
		if seen%rate != 0 {
			return nil, false
		}
		cp := append([]byte(nil), data...)
		cp[len(cp)/2] ^= 0xff
		return cp, true
	}
	return func(from, to wire.NodeID, m wire.Msg) (wire.Msg, bool) {
		switch v := m.(type) {
		case *wire.PutBlock:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.ReadResp:
			if v.Err == "" {
				if data, ok := flip(v.Data); ok {
					cp := *v
					cp.Data = data
					return &cp, true
				}
			}
		case *wire.Update:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.DegradedUpdate:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.JournalReplica:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		}
		return nil, false
	}
}

func runChaosCell(t *testing.T, engine string, scen chaosScenario) {
	cfg := degradedConfig(engine)
	const hedgeDelay = time.Millisecond
	const stragglerLat = 5 * time.Millisecond
	switch scen {
	case chaosStraggler:
		cfg.HedgeDelay = hedgeDelay
	case chaosPartition:
		cfg.HeartbeatInterval = 500 * time.Microsecond
	}
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	victim := wire.NodeID(3)
	done := false
	var rep *RecoveryReport
	recoverNow := false
	c.Env.Go("recovery", func(p *sim.Proc) {
		for !recoverNow {
			p.Sleep(200 * time.Microsecond)
		}
		var err error
		rep, err = c.Recover(p, victim, 2, RecoverInterleaved, admin)
		if err != nil {
			t.Errorf("recover (%s/%s): %v", engine, scen, err)
		}
	})
	c.Env.Go("workload", func(p *sim.Proc) {
		r := &chaosRun{t: t, c: c, cl: cl, admin: admin,
			rng: rand.New(rand.NewSource(0xc4a05)), victim: victim}
		fileSize := 4 * c.StripeWidth()
		r.content = make([]byte, fileSize)
		r.rng.Read(r.content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		r.ino = ino
		if err := cl.WriteFile(p, ino, r.content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}

		// ---- Phase 1: foreground I/O under the armed fault ----
		partNode := wire.NodeID(5)
		switch scen {
		case chaosStraggler:
			// A mild straggler on a non-victim node: ops just get slower.
			if err := c.Fabric.SetNodeShape(partNode, netsim.LinkShape{Latency: netsim.Fixed(200 * time.Microsecond)}); err != nil {
				t.Error(err)
				return
			}
		case chaosPartition:
			// Asymmetric: client's requests to node 5 die on the wire, and
			// node 5's heartbeats die on their way to the MDS. Engine-internal
			// OSD↔OSD links stay up, so no stripe can tear.
			if err := c.Fabric.Partition(cl.ID(), partNode, true); err != nil {
				t.Error(err)
				return
			}
			if err := c.Fabric.Partition(partNode, mdsID, true); err != nil {
				t.Error(err)
				return
			}
			c.Env.Go("heal", func(hp *sim.Proc) {
				hp.Sleep(4 * time.Millisecond)
				c.Fabric.Partition(cl.ID(), partNode, false)
				c.Fabric.Partition(partNode, mdsID, false)
			})
		case chaosFlap:
			// The future victim bounces: three 400µs outages. Client-visible
			// failures retry; dropped engine-internal propagation tears at
			// most the victim's stripes, repaired below.
			start := p.Now() + 500*time.Microsecond
			if err := c.Fabric.ScheduleFlap(victim, start, 400*time.Microsecond, 1200*time.Microsecond, 3); err != nil {
				t.Error(err)
				return
			}
		case chaosCorrupt:
			c.Fabric.SetCorruptor(chaosCorruptor(7))
		}
		r.ops(p, "phase1", 60)
		if t.Failed() {
			return
		}
		// Heal phase-1 faults (the corruptor stays armed through the
		// degraded window; flap windows are already past).
		switch scen {
		case chaosStraggler:
			c.Fabric.SetNodeShape(partNode, netsim.LinkShape{})
		case chaosPartition:
			p.Sleep(5 * time.Millisecond) // outlast the heal timer
			var misses uint64
			for _, osd := range c.OSDs {
				misses += osd.HeartbeatMisses()
			}
			if misses == 0 {
				t.Error("partitioned OSD→MDS link produced no heartbeat misses")
				return
			}
		case chaosFlap:
			p.Sleep(5 * time.Millisecond) // outlast the last flap window
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Errorf("phase1 drain: %v", err)
			return
		}
		if scen == chaosFlap {
			// Repairing scrub: re-encode any stripe the flap windows tore.
			if _, _, err := c.ScrubRepair(p); err != nil {
				t.Errorf("scrub-repair: %v", err)
				return
			}
		}
		if scen != chaosCorrupt {
			// With the corruptor armed Scrub's store peeks are fine (rot
			// never lands at rest), but run it only on quiesced cells.
			if _, err := c.Scrub(); err != nil {
				t.Errorf("phase1 scrub: %v", err)
				return
			}
		}

		// ---- Phase 2: degraded window under the fault ----
		if err := c.BeginDegraded(p, victim, admin); err != nil {
			t.Errorf("begin degraded: %v", err)
			return
		}
		var hedgeBlkOff int64 = -1
		if scen == chaosStraggler {
			// Straggle the host of some lost block's first surviving shard
			// (not the serving surrogate): its primary reconstruction leg
			// stalls past HedgeDelay and the alternate-set hedge must win.
			st := c.degraded[victim]
			for _, blk := range c.OSDByID(victim).store.Blocks() {
				if !st.lost[blk] || int(blk.Index) >= c.Cfg.K {
					continue
				}
				s := blk.StripeID()
				osds := c.Placement(s)
				var first wire.NodeID
				for i := 0; i < c.Cfg.K+c.Cfg.M; i++ {
					if uint16(i) == blk.Index || c.Fabric.Down(osds[i]) {
						continue
					}
					first = osds[i]
					break
				}
				if first == 0 || first == st.surr[c.PG(s)] {
					continue
				}
				if err := c.Fabric.SetNodeShape(first, netsim.LinkShape{Latency: netsim.Fixed(stragglerLat)}); err != nil {
					t.Error(err)
					return
				}
				partNode = first
				hedgeBlkOff = int64(blk.Stripe)*c.StripeWidth() + int64(blk.Index)*c.Cfg.BlockSize
				break
			}
			if hedgeBlkOff < 0 {
				t.Error("no hedgeable lost block found")
				return
			}
			for i := 0; i < 3; i++ {
				got, err := cl.Read(p, ino, hedgeBlkOff, 4096)
				if err != nil {
					t.Errorf("hedged read %d: %v", i, err)
					return
				}
				if !bytes.Equal(got, r.content[hedgeBlkOff:hedgeBlkOff+4096]) {
					t.Errorf("hedged read %d: wrong bytes", i)
					return
				}
			}
			if fired, wins := c.HedgeStats(); fired == 0 || wins == 0 {
				t.Errorf("straggler cell: hedges fired=%d wins=%d, want both > 0", fired, wins)
				return
			}
			// The straggler slows every random op that touches it; heal it
			// before the bulk of the degraded workload and the rebuild.
			c.Fabric.SetNodeShape(partNode, netsim.LinkShape{})
		}
		r.ops(p, "degraded", 40)
		if t.Failed() {
			return
		}

		// ---- Phase 3: recovery with concurrent foreground I/O ----
		if scen == chaosCorrupt {
			// Recovery's fan-in has no client-style retry loop; the wire is
			// clean again by the time the rebuild runs.
			c.Fabric.SetCorruptor(nil)
		}
		recoverNow = true
		r.ops(p, "recovering", 30)
		if t.Failed() {
			return
		}
		for rep == nil && !t.Failed() {
			p.Sleep(time.Millisecond)
		}
		if t.Failed() {
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Errorf("final drain: %v", err)
			return
		}
		n, err := c.Scrub()
		if err != nil {
			t.Errorf("final scrub: %v", err)
			return
		}
		if n != 4 {
			t.Errorf("scrubbed %d stripes, want 4", n)
			return
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, r.content) {
			t.Errorf("whole-file mismatch after %s chaos", scen)
			return
		}
		if scen == chaosCorrupt {
			injected := c.Fabric.CorruptionsInjected()
			if injected == 0 {
				t.Error("corrupt cell injected nothing")
				return
			}
			if det := c.CorruptionsDetected(); det != injected {
				t.Errorf("detections=%d != injections=%d: corruption escaped", det, injected)
				return
			}
		}
		done = true
	})
	if scen == chaosPartition {
		// Heartbeat loops never terminate, so the partition cell's event
		// queue is never empty: bound the run in virtual time instead.
		c.Env.Run(5 * time.Second)
	} else {
		c.Env.Run(0)
	}
	if t.Failed() {
		return
	}
	if !done || rep == nil {
		t.Fatalf("deadlock: verified=%v recovered=%v", done, rep != nil)
	}
	if rep.Blocks == 0 {
		t.Fatal("victim hosted no blocks?")
	}
}

// TestChaosGrid is the headline grid: all six engines × four fault classes
// (TSUE only under -short), each cell byte-exact end to end.
func TestChaosGrid(t *testing.T) {
	engines := update.Names()
	if testing.Short() {
		engines = []string{"tsue"}
	}
	for _, engine := range engines {
		for _, scen := range chaosScenarios {
			engine, scen := engine, scen
			t.Run(fmt.Sprintf("%s/%s", engine, scen), func(t *testing.T) {
				runChaosCell(t, engine, scen)
			})
		}
	}
}
