package cluster

// Kill-at-stage grid: an OSD dies at a precise stage of an online
// rebalance — staged, mid-copy, fenced, mid-replay, post-commit — in a
// precise role relative to the first migrating PG (move source, move
// destination, bystander), while a foreground workload keeps updating and
// reading. The transition must resolve every PG (abort or finish),
// recovery must then run under the settled epoch, and every byte must
// verify: reads during the run, a clean drain + scrub, and a full
// read-back at the end. The kill is injected synchronously from the
// migration driver via the transition hook, so every run is a
// deterministic repro.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// killStage names the grid's injection points in ISSUE order.
var killStages = []struct {
	name    string
	stage   PGStage
	midCopy bool // fire after the first copied block, not at stage entry
}{
	{"staged", StageStaged, false},
	{"mid-copy", StageCopying, true},
	{"fenced", StageFenced, false},
	{"mid-replay", StageReplaying, false},
	{"post-commit", StageCommitted, false},
}

var killRoles = []string{"source", "dest", "bystander"}

// pickVictim resolves the role against the triggering PG's move list.
func pickVictim(c *Cluster, ev TransEvent, role string) wire.NodeID {
	switch role {
	case "source":
		return ev.Moves[0].From
	case "dest":
		return ev.Moves[0].To
	}
	// Bystander: a live OSD in the moving block's stripe that is neither
	// endpoint of any of the PG's moves — its death must not disturb the
	// PG's migration beyond normal failure handling.
	inMoves := make(map[wire.NodeID]bool)
	for _, mv := range ev.Moves {
		inMoves[mv.From] = true
		inMoves[mv.To] = true
	}
	for _, id := range c.Placement(ev.Moves[0].Blk.StripeID()) {
		if !inMoves[id] && !c.Fabric.Down(id) {
			return id
		}
	}
	for _, osd := range c.OSDs {
		if !inMoves[osd.id] && !c.Fabric.Down(osd.id) {
			return osd.id
		}
	}
	return 0
}

// runKillAtStage is one grid cell: expand under load, kill at (stage,
// role), resolve, recover, verify byte-exact.
func runKillAtStage(t *testing.T, engine, role string, stageIdx int, seed int64) {
	t.Helper()
	ks := killStages[stageIdx]
	cfg := testConfig(engine)
	cfg.EngineOpts.UnitSize = 64 << 10 // keep TSUE overlay resident so logs follow blocks
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(seed))
		const stripes = 8
		fileSize := stripes * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}

		// Arm the kill: first event matching (stage, progress) marks the
		// victim dead from inside the migration driver.
		var victim wire.NodeID
		c.SetTransHook(func(ev TransEvent) {
			if victim != 0 || ev.Stage != ks.stage {
				return
			}
			if ks.midCopy != (ev.Copied > 0) {
				return
			}
			victim = pickVictim(c, ev, role)
			if victim == 0 {
				t.Errorf("no %s victim for pg %d", role, ev.PG)
				return
			}
			c.MarkDead(victim)
		})

		// Foreground load: two writers over disjoint halves, verifying
		// their own regions as they go.
		const nWriters = 2
		perRegion := fileSize / nWriters
		stop := false
		done := 0
		var wErr error
		wg := sim.NewWaitGroup(c.Env)
		wg.Add(nWriters)
		for wi := 0; wi < nWriters; wi++ {
			wi := wi
			wcl := c.NewClient()
			wrng := rand.New(rand.NewSource(seed + int64(wi)*31))
			base := int64(wi) * perRegion
			c.Env.Go(fmt.Sprintf("writer%d", wi), func(wp *sim.Proc) {
				defer wg.Done()
				for j := 0; !stop && j < 100000; j++ {
					off := base + int64(wrng.Intn(int(perRegion-4096)))
					n := 1 + wrng.Intn(4096)
					buf := make([]byte, n)
					wrng.Read(buf)
					if err := wcl.Update(wp, ino, off, buf); err != nil {
						if wErr == nil {
							wErr = fmt.Errorf("writer %d: %w", wi, err)
						}
						return
					}
					copy(content[off:], buf)
					done++
					if j%6 == 5 {
						roff := base + int64(wrng.Intn(int(perRegion-2048)))
						got, err := wcl.Read(wp, ino, roff, 2048)
						if err != nil {
							if wErr == nil {
								wErr = fmt.Errorf("writer %d read: %w", wi, err)
							}
							return
						}
						if !bytes.Equal(got, content[roff:roff+2048]) {
							if wErr == nil {
								wErr = fmt.Errorf("writer %d: read mismatch at %d", wi, roff)
							}
							return
						}
					}
				}
			})
		}
		for done < 20 && wErr == nil {
			p.Sleep(200 * time.Microsecond)
		}
		if wErr != nil {
			t.Fatal(wErr)
		}

		rep, newID, err := c.Expand(p, cl, rebalance.Config{MaxInFlightPGs: 2})
		if err != nil {
			t.Fatalf("expand: %v", err)
		}
		if victim == 0 {
			t.Fatalf("kill hook never fired for stage %s", ks.name)
		}
		if c.MDS.trans != nil {
			t.Fatal("transition still staged after Expand returned")
		}
		if got := c.MDS.CommittedEpoch(); got != 1 {
			t.Fatalf("committed epoch %d, want 1 (resolution must still commit)", got)
		}
		if len(rep.Outcomes) == 0 {
			t.Fatal("report carries no per-PG outcomes")
		}
		for _, res := range rep.Outcomes {
			if res.Outcome == rebalance.OutcomeAborted && res.ReplayedItems > 0 {
				t.Errorf("aborted pg %d reports replayed items at the new home", res.PG)
			}
		}

		// Recover the dead node under the settled epoch, foreground still
		// flowing.
		rrep, err := c.Recover(p, victim, 2, RecoverInterleaved, cl)
		if err != nil {
			t.Fatalf("recover after %s/%s kill: %v", ks.name, role, err)
		}
		post := done
		for done < post+20 && wErr == nil {
			p.Sleep(200 * time.Microsecond)
		}
		stop = true
		wg.Wait(p)
		if wErr != nil {
			t.Fatal(wErr)
		}

		t.Logf("%s kill %s@%s: pgs=%d aborted=%d finished=%d reconstructed=%d orphan-replayed=%d rec-blocks=%d",
			engine, role, ks.name, len(rep.Outcomes), rep.AbortedPGs, rep.FinishedPGs,
			rep.ReconstructedBlocks, rrep.ReplayedItems, rrep.Blocks)

		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if n, err := c.Scrub(); err != nil || n != stripes {
			t.Fatalf("scrub after %s/%s kill: n=%d err=%v", ks.name, role, n, err)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("content mismatch after %s/%s kill + resolution + recovery", ks.name, role)
		}
		// A delivery racing the kill must never crash the sim — post-Close
		// queue Puts are counted drops. Today no teardown path closes a
		// live delivery queue, so the counter must still be zero; a nonzero
		// value here means a new race started dropping messages silently.
		if d := c.Env.DroppedPuts(); d != 0 {
			t.Fatalf("kill teardown dropped %d queue deliveries", d)
		}
		_ = newID
	})
}

// TestKillDuringRebalanceGrid is the randomized grid: every engine ×
// victim role × transition stage. Under -short only TSUE runs (the other
// engines' cells run in the full suite and CI).
func TestKillDuringRebalanceGrid(t *testing.T) {
	engines := update.Names()
	if testing.Short() {
		engines = []string{"tsue"}
	}
	for _, engine := range engines {
		for _, role := range killRoles {
			for si := range killStages {
				engine, role, si := engine, role, si
				t.Run(fmt.Sprintf("%s/%s/%s", engine, role, killStages[si].name), func(t *testing.T) {
					seed := 9000 + int64(len(engine))*1000 + int64(si)*37 + int64(len(role))
					runKillAtStage(t, engine, role, si, seed)
				})
			}
		}
	}
}

// Pinned deterministic repros, one per stage (the grid's minimized seeds):
// named so a regression bisects to a stage, not a grid.

func TestKillAtStageStagedSource(t *testing.T)     { runKillAtStage(t, "tsue", "source", 0, 9101) }
func TestKillAtStageMidCopySource(t *testing.T)    { runKillAtStage(t, "parix", "source", 1, 9202) }
func TestKillAtStageFencedSource(t *testing.T)     { runKillAtStage(t, "tsue", "source", 2, 9303) }
func TestKillAtStageMidReplayDest(t *testing.T)    { runKillAtStage(t, "tsue", "dest", 3, 9404) }
func TestKillAtStagePostCommitSource(t *testing.T) { runKillAtStage(t, "cord", "source", 4, 9505) }

// TestKillResolvesTransition covers the blocking Kill entry point: a
// concurrent process kills a copy source mid-migration and must observe
// the transition resolve to a committed epoch before Recover runs.
func TestKillResolvesTransition(t *testing.T) {
	cfg := testConfig("tsue")
	cfg.EngineOpts.UnitSize = 64 << 10
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(77))
		fileSize := 8 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		var victim wire.NodeID
		trigger := false
		c.SetTransHook(func(ev TransEvent) {
			if victim == 0 && ev.Stage == StageCopying && ev.Copied > 0 {
				victim = ev.Moves[0].From
				trigger = true
			}
		})
		var krep *KillReport
		var kerr error
		admin := c.NewClient()
		c.Env.Go("killer", func(kp *sim.Proc) {
			for !trigger {
				kp.Sleep(100 * time.Microsecond)
			}
			krep, kerr = c.Kill(kp, victim, admin)
		})
		// Throttle the copy so the killer proc gets scheduled mid-migration.
		rep, _, err := c.Expand(p, cl, rebalance.Config{RateBps: 8 << 20})
		if err != nil {
			t.Fatalf("expand: %v", err)
		}
		for krep == nil && kerr == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if kerr != nil {
			t.Fatalf("kill: %v", kerr)
		}
		if !krep.TransitionResolved || krep.SettledEpoch != 1 {
			t.Fatalf("kill report %+v, want transition resolved at epoch 1", krep)
		}
		if rep.AbortedPGs+rep.FinishedPGs == 0 {
			t.Fatal("no PG recorded an abort/finish resolution")
		}
		if _, err := c.Recover(p, victim, 2, RecoverInterleaved, cl); err != nil {
			t.Fatalf("recover under settled epoch: %v", err)
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after Kill + Recover")
		}
	})
}

// TestSentinelErrorsNotRetryable pins the satellite bugfix: the fatal
// control-plane sentinels must be distinguishable via errors.Is AND must
// never be classified as retryable routing bounces, while the retryable
// bounce strings stay retryable.
func TestSentinelErrorsNotRetryable(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		fileSize := 2 * c.StripeWidth()
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(3)).Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		victim := c.Placement(wire.StripeID{Ino: ino, Stripe: 0})[0]
		c.Fabric.SetDown(victim, true)
		if _, err := c.registerDegraded(p, victim, cl); err != nil {
			t.Fatal(err)
		}
		_, _, err = c.Expand(p, cl, rebalance.Config{})
		if !errors.Is(err, ErrClusterDegraded) {
			t.Fatalf("Expand while degraded: got %v, want ErrClusterDegraded", err)
		}
		if retryableRouteErr(err) {
			t.Fatal("ErrClusterDegraded classified retryable")
		}
		c.unregisterDegraded(victim)
		c.Fabric.SetDown(victim, false)

		osd, err := c.AddOSDNode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.stageEpoch(p, cl, &wire.EpochUpdate{Kind: wire.EpochStageAddOSD, OSD: osd.id}); err != nil {
			t.Fatal(err)
		}
		_, err = c.Recover(p, victim, 2, RecoverInterleaved, cl)
		if !errors.Is(err, ErrTransitionInProgress) {
			t.Fatalf("Recover mid-transition: got %v, want ErrTransitionInProgress", err)
		}
		if retryableRouteErr(err) {
			t.Fatal("ErrTransitionInProgress classified retryable")
		}
		_, _, err = c.Expand(p, cl, rebalance.Config{})
		if !errors.Is(err, ErrTransitionInProgress) {
			t.Fatalf("racing Expand: got %v, want ErrTransitionInProgress", err)
		}
		// The retryable bounces stay retryable — the client retry loop
		// depends on the classification not leaking across the two sets.
		for _, s := range []string{errDegradedGone, errStaleEpoch, errMigrating} {
			if !retryableRouteErr(fmt.Errorf("read blk(1/2/3): %s", s)) {
				t.Fatalf("%q no longer classified retryable", s)
			}
		}
		if retryableRouteErr(ErrSurrogateLost) {
			t.Fatal("ErrSurrogateLost classified retryable")
		}
		// Settle the staged transition so the run tears down clean.
		if _, err := c.migrate(p, cl, c.MDS.trans.next, rebalance.Config{}); err != nil {
			t.Fatal(err)
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransitionStatusRPC covers the operator-facing state-machine
// snapshot: mid-transition the MDS reports per-PG stages; afterwards it
// reports no transition.
func TestTransitionStatusRPC(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(5)).Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		sawStages := false
		c.SetTransHook(func(ev TransEvent) {
			if sawStages || ev.Stage != StageFenced {
				return
			}
			st, ok := c.MDS.PGStageOf(ev.PG)
			if !ok || st != StageFenced {
				t.Errorf("PGStageOf(%d) = %v,%v mid-fence", ev.PG, st, ok)
			}
			sawStages = true
		})
		if _, _, err := c.Expand(p, cl, rebalance.Config{}); err != nil {
			t.Fatal(err)
		}
		if !sawStages {
			t.Fatal("fence stage never observed")
		}
		resp, err := c.Fabric.Call(p, cl.id, wire.NodeID(0), &wire.TransitionStatus{})
		if err != nil {
			t.Fatal(err)
		}
		ts, ok := resp.(*wire.TransitionStatusResp)
		if !ok {
			t.Fatalf("unexpected response %T", resp)
		}
		if ts.InFlight || ts.Committed != 1 {
			t.Fatalf("post-commit status %+v, want settled at epoch 1", ts)
		}
	})
}
