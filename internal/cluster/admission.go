package cluster

import (
	"errors"
	"strings"
	"time"
)

// ErrOverload is the retryable sentinel for an op the MDS admission policy
// bounced: the cluster is past its configured rate or queue-depth budget
// and the submitter should back off and retry (or count the rejection).
// Unlike the terminal sentinels (ErrClusterDegraded, ErrSurrogateLost) it
// promises nothing is wrong with the op itself — resubmitting later
// succeeds once load drains.
var ErrOverload = errors.New("cluster: admission rejected, overloaded")

// errOverload is the Ack string form of ErrOverload — like errStaleEpoch,
// the rejection crosses the wire as an Ack and is classified by substring.
const errOverload = "cluster: admission rejected, overloaded"

// overloadErr reports whether an error (possibly stringified across the
// MDS hop as an Ack) was an admission rejection.
func overloadErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), errOverload)
}

// AdmissionPolicy decides, per foreground client op, whether the MDS admits
// it. now is the virtual time of the decision and inflight the number of
// admitted ops not yet completed (the MDS-side queue depth). Policies run
// in simulation context — single-threaded, no locking needed — and must be
// deterministic in (call order, now, inflight).
type AdmissionPolicy interface {
	Admit(now time.Duration, inflight int) bool
}

// TokenBucket is the standard AdmissionPolicy: ops are admitted at Rate
// tokens/second with bursts up to Burst, and — independently — bounced
// whenever more than MaxInflight admitted ops are still in flight
// (queue-depth backpressure, the signal that survives even when the rate
// estimate is wrong). The zero value of either knob disables that check.
type TokenBucket struct {
	Rate        float64 // sustained admissions per second (0 = unlimited)
	Burst       float64 // bucket capacity in tokens (0 = Rate for a 1s burst)
	MaxInflight int     // admitted-but-uncompleted cap (0 = unlimited)

	tokens float64
	last   time.Duration
	primed bool
}

// Admit refills the bucket for the elapsed virtual time and spends one
// token, rejecting when the bucket is dry or the in-flight cap is hit.
func (tb *TokenBucket) Admit(now time.Duration, inflight int) bool {
	if tb.MaxInflight > 0 && inflight >= tb.MaxInflight {
		return false
	}
	if tb.Rate <= 0 {
		return true
	}
	burst := tb.Burst
	if burst <= 0 {
		burst = tb.Rate
	}
	if !tb.primed {
		// A fresh bucket starts full so cold-start ops are not rejected
		// before any time has elapsed.
		tb.tokens = burst
		tb.last = now
		tb.primed = true
	}
	tb.tokens += tb.Rate * (now - tb.last).Seconds()
	tb.last = now
	if tb.tokens > burst {
		tb.tokens = burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// AdmitAll is the no-op policy: every op admitted, only the in-flight
// accounting runs. Useful to measure admission overhead alone.
type AdmitAll struct{}

// Admit always reports true.
func (AdmitAll) Admit(time.Duration, int) bool { return true }

// AdmissionStats is the cluster-wide admission counter snapshot.
//
//lint:allow obsregistry(pre-registry snapshot struct returned by the admission API; its counters are mirrored onto the registry)
type AdmissionStats struct {
	Admitted int64 // ops admitted by the policy
	Rejected int64 // ops bounced with ErrOverload
	Inflight int   // admitted ops not yet completed
}

// AdmissionStats snapshots the MDS admission counters (thin reads of the
// obs registry's admission_admitted/admission_rejected counters). Every
// rejected op surfaces to its submitter as ErrOverload — the harness asserts
// rejected equals the retries-plus-reported count, so no op is silently lost.
func (c *Cluster) AdmissionStats() AdmissionStats {
	return AdmissionStats{
		Admitted: int64(c.admitted.Value()),
		Rejected: int64(c.rejected.Value()),
		Inflight: c.admittedInFlight,
	}
}

// admissionDone marks one admitted op completed. The completion is
// client-side knowledge; the MDS and clients share a process, so the
// decrement is in-process bookkeeping rather than a wire message (a real
// deployment would piggyback completions on the next AdmitOp batch).
func (c *Cluster) admissionDone() {
	c.admittedInFlight--
	if c.admittedInFlight < 0 {
		panic("cluster: admission in-flight count below zero")
	}
}
