package cluster

// Kill: the cluster's first-class OSD-death entry point. Tests and the
// harness used to flip Fabric.SetDown directly, which left two windows
// undefined: a death during an online rebalance (the migration wedged and
// the cluster had to be discarded) and the death of a surrogate OSD inside
// a degraded window (the journal — and with it acked client updates — was
// simply gone). Kill closes both:
//
//   - mid-transition, it publishes the death to the migration driver
//     (MarkDead) and waits until every in-flight PG has resolved to abort
//     or finish and the epoch has committed, so a subsequent Recover runs
//     under one settled map;
//   - mid-degraded-window, it detects the surrogate role and promotes the
//     journal-replica holder: the replicated post-seed appends it already
//     holds are spliced behind a re-fetched seed share, and the degraded
//     routes re-point — no acked update is lost and no client op hangs.
//     When the replica holder itself is unreachable the journal is
//     unrecoverable and Kill fails fast with ErrSurrogateLost.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Sentinel errors for the cluster's fatal control-plane guards. They are
// distinct from the retryable routing bounces (stale epoch, degraded route
// gone, cutover fence): a caller that sees one of these must change its
// plan, not retry the same call. retryableRouteErr never matches them —
// the stress suite pins that.
var (
	// ErrClusterDegraded: the operation refuses while a node is served in
	// degraded mode (e.g. Expand during a failure window).
	ErrClusterDegraded = errors.New("cluster: a node is degraded")
	// ErrTransitionInProgress: the operation refuses while a placement
	// transition is staged (e.g. Recover or a second Expand mid-rebalance).
	// Kill resolves the transition; retrying the operation afterwards is
	// the supported sequence.
	ErrTransitionInProgress = errors.New("cluster: placement transition in progress")
	// ErrSurrogateLost: a surrogate OSD died and its degraded-update
	// journal cannot be promoted because the journal-replica holder is
	// unreachable too; updates journaled in the window may be lost and the
	// run must be treated as failed.
	ErrSurrogateLost = errors.New("cluster: surrogate journal unrecoverable")
)

// KillReport describes what a Kill had to resolve beyond taking the node
// off the fabric.
type KillReport struct {
	// TransitionResolved is set when the death landed during a placement
	// transition; SettledEpoch is the epoch the transition committed at
	// after per-PG abort/finish resolution. Per-PG outcomes appear in the
	// rebalance.Report returned to the Expand/SplitPGs caller.
	TransitionResolved bool
	SettledEpoch       uint64
	// PromotedJournals counts degraded-update journals promoted onto their
	// replica holders because the dead node was serving as a surrogate.
	PromotedJournals int
}

// resolveWait bounds how long Kill waits (virtual time) for the migration
// driver to resolve an in-flight transition. Generous: resolution is
// bounded by the remaining fenced work, not by the bulk-copy throttle.
const resolveWait = 5 * time.Minute

// Kill takes an OSD off the fabric and resolves every control-plane state
// the death lands in: an in-flight placement transition resolves per PG
// (abort or finish) and commits, and any degraded-update journal the node
// held as surrogate is promoted onto its replica holder. It must be called
// from a process other than the one driving an Expand/SplitPGs. After Kill
// returns, Recover(failed) proceeds normally under the settled epoch.
func (c *Cluster) Kill(p *sim.Proc, failed wire.NodeID, via *Client) (*KillReport, error) {
	if c.Fabric.Down(failed) {
		return nil, fmt.Errorf("cluster: Kill: node %d is already down", failed)
	}
	rep := &KillReport{}
	inTrans := c.MDS.trans != nil
	c.MarkDead(failed)
	// Mutual exclusion means at most one of these two branches has work:
	// degraded state cannot exist while a transition is staged.
	for _, f := range c.degradedNodes() {
		if err := c.promoteSurrogate(p, c.degraded[f], failed, via, rep); err != nil {
			return rep, err
		}
	}
	if inTrans {
		rep.TransitionResolved = true
		deadline := p.Now() + resolveWait
		for c.MDS.trans != nil {
			if p.Now() > deadline {
				return rep, fmt.Errorf("cluster: Kill: transition did not resolve within %v", resolveWait)
			}
			p.Sleep(200 * time.Microsecond)
		}
		rep.SettledEpoch = c.MDS.committed
	}
	return rep, nil
}

// promoteSurrogate re-homes the degraded-update journal a dead surrogate
// kept for st.failed onto the journal-replica holder. The promoted journal
// is rebuilt in original order: the seed share (the failed node's
// replicated unrecycled DataLog items for the victim's PGs — still held by
// their original replica holders, ReplicaFetch is non-destructive)
// followed by the post-seed appends the holder retained from
// JournalReplica traffic. Route re-pointing is atomic with the splice, so
// a degraded op admitted after promotion always sees the full journal.
//
// Scope: one surrogate death per window. If replication targets shifted
// mid-window (a second death between appends), earlier appends may sit on
// an older holder and are not recovered — the multi-death journal quorum
// is future work.
func (c *Cluster) promoteSurrogate(p *sim.Proc, st *degradedState, victim wire.NodeID, via *Client, rep *KillReport) error {
	pgs := make(map[int]bool)
	for pg, sur := range st.surr {
		if sur == victim {
			pgs[pg] = true
		}
	}
	if len(pgs) == 0 {
		return nil
	}
	cand, ok := st.replTarget[victim]
	if !ok {
		// No post-seed append was ever replicated; any live successor can
		// host the re-fetched seeds.
		cand = c.nextLive(victim, st.failed)
	}
	if cand == victim || c.Fabric.Down(cand) {
		return fmt.Errorf("cluster: surrogate %d for node %d died and replica holder %d is unreachable: %w",
			victim, st.failed, cand, ErrSurrogateLost)
	}
	seeds, err := c.fetchReplicaItems(p, st.failed, via)
	if err != nil {
		return err
	}
	pmap := c.MDS.PlacementMap()
	osd := c.OSDByID(cand)
	j := osd.journalFor(st.failed)
	var seeded int64
	for _, it := range seeds {
		// Same filters registerDegraded applied: the victim's PGs only, and
		// degraded stripes only — a finish-resolved transition can leave
		// un-retired replica items for blocks that migrated off the failed
		// node, and replaying those at the new homes would overwrite newer
		// foreground writes.
		if !pgs[pmap.PGOf(it.Blk.StripeID())] || !st.stripes[it.Blk.StripeID()] {
			continue
		}
		j.items = append(j.items, it)
		seeded += int64(len(it.Data))
	}
	// Transition-orphaned records the victim's journal was seeded with live
	// nowhere else (replicas retired at extraction, never re-replicated);
	// re-splice them from the degraded state, in their original
	// post-replica-seed position.
	for _, it := range st.orphans {
		if !pgs[pmap.PGOf(it.Blk.StripeID())] {
			continue
		}
		j.items = append(j.items, it)
		seeded += int64(len(it.Data))
	}
	if seeded > 0 {
		osd.journalPersist(p, j, seeded)
	}
	// Splice the retained replica appends for the victim's PGs behind the
	// seeds (their payloads are already persisted in the replica cursor).
	keep := j.replItems[:0]
	for _, it := range j.replItems {
		if pgs[pmap.PGOf(it.Blk.StripeID())] {
			j.items = append(j.items, it)
		} else {
			keep = append(keep, it)
		}
	}
	j.replItems = keep
	// Re-point the degraded routes — same instant as the splice (no yield
	// since the fetch), so no op can observe a half-promoted journal.
	for pg := range pgs {
		st.surr[pg] = cand
	}
	surrs := st.surrogates[:0]
	seen := false
	for _, sur := range st.surrogates {
		if sur == victim {
			continue
		}
		if sur == cand {
			seen = true
		}
		surrs = append(surrs, sur)
	}
	if !seen {
		surrs = append(surrs, cand)
	}
	st.surrogates = surrs
	rep.PromotedJournals++
	return nil
}

// degradedNodes returns the failed nodes currently served in degraded
// mode, in deterministic order.
func (c *Cluster) degradedNodes() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(c.degraded))
	for f := range c.degraded {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
