package cluster

// Kill: the cluster's first-class OSD-death entry point. Tests and the
// harness used to flip Fabric.SetDown directly, which left two windows
// undefined: a death during an online rebalance (the migration wedged and
// the cluster had to be discarded) and the death of a surrogate OSD inside
// a degraded window (the journal — and with it acked client updates — was
// simply gone). Kill closes both:
//
//   - mid-transition, it publishes the death to the migration driver
//     (MarkDead) and waits until every in-flight PG has resolved to abort
//     or finish and the epoch has committed, so a subsequent Recover runs
//     under one settled map;
//   - mid-degraded-window, it detects the surrogate role and read-repairs
//     the journal from the dead surrogate's fixed quorum holder set: the
//     sequenced appends are unioned across every reachable holder
//     (newest-wins by seq; each acked append is on every holder that was
//     reachable when it was acked, so the union is gap-free), spliced
//     behind a re-fetched seed share onto the new surrogate, and
//     re-replicated under the new surrogate's own holder set — no acked
//     update is lost through any m concurrent deaths and no client op
//     hangs. Only when every holder is unreachable too (> m deaths) is the
//     journal unrecoverable and Kill fails fast with ErrSurrogateLost.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Sentinel errors for the cluster's fatal control-plane guards. They are
// distinct from the retryable routing bounces (stale epoch, degraded route
// gone, cutover fence): a caller that sees one of these must change its
// plan, not retry the same call. retryableRouteErr never matches them —
// the stress suite pins that.
var (
	// ErrClusterDegraded: the operation refuses while a node is served in
	// degraded mode (e.g. Expand during a failure window).
	ErrClusterDegraded = errors.New("cluster: a node is degraded")
	// ErrTransitionInProgress: the operation refuses while a placement
	// transition is staged (e.g. Recover or a second Expand mid-rebalance).
	// Kill resolves the transition; retrying the operation afterwards is
	// the supported sequence.
	ErrTransitionInProgress = errors.New("cluster: placement transition in progress")
	// ErrSurrogateLost: a surrogate OSD died and its degraded-update
	// journal cannot be read-repaired because every member of its quorum
	// holder set is unreachable too (more than m concurrent deaths, beyond
	// the scheme's budget); updates journaled in the window may be lost and
	// the run must be treated as failed.
	ErrSurrogateLost = errors.New("cluster: surrogate journal unrecoverable")
)

// KillReport describes what a Kill had to resolve beyond taking the node
// off the fabric.
type KillReport struct {
	// TransitionResolved is set when the death landed during a placement
	// transition; SettledEpoch is the epoch the transition committed at
	// after per-PG abort/finish resolution. Per-PG outcomes appear in the
	// rebalance.Report returned to the Expand/SplitPGs caller.
	TransitionResolved bool
	SettledEpoch       uint64
	// PromotedJournals counts degraded-update journals promoted (via quorum
	// read-repair) because the dead node was serving as a surrogate.
	PromotedJournals int
	// RepairedItems counts journal records recovered from quorum holders
	// during those promotions.
	RepairedItems int
	// MissedBeats is the cumulative missed-heartbeat count the dead node
	// had reported to the MDS before it died (partitioned-link accounting).
	MissedBeats uint64
}

// resolveWait bounds how long Kill waits (virtual time) for the migration
// driver to resolve an in-flight transition. Generous: resolution is
// bounded by the remaining fenced work, not by the bulk-copy throttle.
const resolveWait = 5 * time.Minute

// Kill takes an OSD off the fabric and resolves every control-plane state
// the death lands in: an in-flight placement transition resolves per PG
// (abort or finish) and commits, and any degraded-update journal the node
// held as surrogate is promoted onto its replica holder. It must be called
// from a process other than the one driving an Expand/SplitPGs. After Kill
// returns, Recover(failed) proceeds normally under the settled epoch.
func (c *Cluster) Kill(p *sim.Proc, failed wire.NodeID, via *Client) (*KillReport, error) {
	if c.Fabric.Down(failed) {
		return nil, fmt.Errorf("cluster: Kill: node %d is already down", failed)
	}
	rep := &KillReport{MissedBeats: c.MDS.BeatMisses(failed)}
	inTrans := c.MDS.trans != nil
	c.MarkDead(failed)
	// Mutual exclusion means at most one of these two branches has work:
	// degraded state cannot exist while a transition is staged.
	for _, f := range c.degradedNodes() {
		if err := c.promoteSurrogate(p, c.degraded[f], failed, via, rep); err != nil {
			return rep, err
		}
	}
	if inTrans {
		rep.TransitionResolved = true
		deadline := p.Now() + resolveWait
		for c.MDS.trans != nil {
			if p.Now() > deadline {
				return rep, fmt.Errorf("cluster: Kill: transition did not resolve within %v", resolveWait)
			}
			p.Sleep(200 * time.Microsecond)
		}
		rep.SettledEpoch = c.MDS.committed
	}
	return rep, nil
}

// promoteSurrogate re-homes the degraded-update journal a dead surrogate
// kept for st.failed by read-repairing across the victim's fixed quorum
// holder set. The sequenced post-seed appends are fetched from every
// reachable holder (non-destructive JournalFetch ranges) and unioned by
// seq — every acked append reached every then-reachable holder, and
// node-down is monotone within a run, so any surviving holder carries the
// full acked prefix and the union covers 1..ackSeq; a gap means more than
// m holders died (ErrSurrogateLost). The promoted journal is rebuilt in
// original order — the re-fetched seed share (ReplicaFetch is
// non-destructive), the re-spliced transition orphans, then the recovered
// appends in seq order — on the first live holder, and the recovered
// appends are re-replicated under the NEW surrogate's holder set with
// fresh seqs, restoring the quorum so a chained surrogate death is
// equally survivable. Route re-pointing is atomic with the splice, so a
// degraded op admitted after promotion always sees the full journal.
func (c *Cluster) promoteSurrogate(p *sim.Proc, st *degradedState, victim wire.NodeID, via *Client, rep *KillReport) error {
	pgs := make(map[int]bool)
	for pg, sur := range st.surr {
		if sur == victim {
			pgs[pg] = true
		}
	}
	if len(pgs) == 0 {
		return nil
	}
	var reachable []wire.NodeID
	for _, h := range st.holders[victim] {
		if !c.Fabric.Down(h) {
			reachable = append(reachable, h)
		}
	}
	ackSeq := st.ackSeq[victim]
	if len(reachable) == 0 {
		if ackSeq > 0 {
			return fmt.Errorf("cluster: surrogate %d for node %d died and all %d quorum holders are unreachable: %w",
				victim, st.failed, len(st.holders[victim]), ErrSurrogateLost)
		}
		// Nothing was ever acked through the quorum; any live successor can
		// host the re-fetched seeds.
		if cand := c.nextLive(victim, st.failed); cand != victim {
			reachable = []wire.NodeID{cand}
		} else {
			return fmt.Errorf("cluster: surrogate %d for node %d died with no live successor: %w",
				victim, st.failed, ErrSurrogateLost)
		}
	}
	// Union the replicated appends across all reachable holders, dedup by
	// seq (a seq names exactly one record; later fetches of the same seq are
	// identical copies).
	bySeq := make(map[uint64]wire.JournalItem)
	for _, h := range reachable {
		resp, err := c.Fabric.Call(p, via.id, h, &wire.JournalFetch{Failed: st.failed, Surrogate: victim})
		if err != nil {
			if nodeDownErr(err) {
				continue // died under us: monotone narrowing, peers cover it
			}
			return fmt.Errorf("journal repair fetch @%d: %w", h, err)
		}
		fr, ok := resp.(*wire.JournalFetchResp)
		if !ok || fr.Err != "" {
			return fmt.Errorf("journal repair fetch @%d: %v", h, resp)
		}
		for _, it := range fr.Items {
			if _, dup := bySeq[it.Seq]; !dup {
				bySeq[it.Seq] = it
			}
		}
	}
	// Every acked append must have survived on some holder.
	recovered := make([]wire.JournalItem, 0, len(bySeq))
	for seq := uint64(1); ; seq++ {
		it, ok := bySeq[seq]
		if !ok {
			if seq <= ackSeq {
				return fmt.Errorf("cluster: surrogate %d journal for node %d lost acked append seq %d/%d: %w",
					victim, st.failed, seq, ackSeq, ErrSurrogateLost)
			}
			break
		}
		recovered = append(recovered, it)
	}
	cand := reachable[0]
	seeds, err := c.fetchReplicaItems(p, st.failed, via)
	if err != nil {
		return err
	}
	pmap := c.MDS.PlacementMap()
	osd := c.OSDByID(cand)
	j := osd.journalFor(st.failed)
	var seeded int64
	for _, it := range seeds {
		// Same filters registerDegraded applied: the victim's PGs only, and
		// degraded stripes only — a finish-resolved transition can leave
		// un-retired replica items for blocks that migrated off the failed
		// node, and replaying those at the new homes would overwrite newer
		// foreground writes.
		if !pgs[pmap.PGOf(it.Blk.StripeID())] || !st.stripes[it.Blk.StripeID()] {
			continue
		}
		j.items = append(j.items, it)
		seeded += int64(len(it.Data))
	}
	// Transition-orphaned records the victim's journal was seeded with live
	// nowhere else (replicas retired at extraction, never re-replicated);
	// re-splice them from the degraded state, in their original
	// post-replica-seed position.
	for _, it := range st.orphans {
		if !pgs[pmap.PGOf(it.Blk.StripeID())] {
			continue
		}
		j.items = append(j.items, it)
		seeded += int64(len(it.Data))
	}
	// Splice the recovered appends behind the seeds in original seq order,
	// renumbering them into the new surrogate's own append sequence.
	newSeqs := make([]uint64, len(recovered))
	for i, it := range recovered {
		j.items = append(j.items, wire.ReplicaItem{Blk: it.Blk, Off: it.Off, Data: it.Data})
		j.nextSeq++
		newSeqs[i] = j.nextSeq
		seeded += int64(len(it.Data))
	}
	if seeded > 0 {
		osd.journalPersist(p, j, seeded)
	}
	rep.RepairedItems += len(recovered)
	// Re-point the degraded routes — same instant as the splice (no yield
	// since the fetch), so no op can observe a half-promoted journal.
	for pg := range pgs {
		st.surr[pg] = cand
	}
	delete(st.holders, victim)
	delete(st.ackSeq, victim)
	if _, ok := st.holders[cand]; !ok {
		st.holders[cand] = c.journalHolders(cand, st.failed)
	}
	// Re-replicate the recovered appends under the new surrogate's holder
	// set: the journal's m-death budget must hold again after the repair,
	// not just until the next death.
	for i, it := range recovered {
		acked := false
		for _, h := range st.holders[cand] {
			if c.Fabric.Down(h) {
				continue
			}
			resp, err := osd.Call(p, h, &wire.JournalReplica{
				Failed: st.failed, Surrogate: cand, Seq: newSeqs[i],
				Blk: it.Blk, Off: it.Off, Data: it.Data, Sum: wire.Checksum(it.Data),
			})
			if err != nil {
				if nodeDownErr(err) {
					continue
				}
				return fmt.Errorf("journal re-replicate @%d: %w", h, err)
			}
			if ja, ok := resp.(*wire.JournalAck); !ok || ja.Err != "" {
				return fmt.Errorf("journal re-replicate @%d: %v", h, resp)
			}
			osd.jrSentMsgs++
			osd.jrSentBytes += int64(len(it.Data))
			acked = true
		}
		if acked && st.ackSeq[cand] < newSeqs[i] {
			st.ackSeq[cand] = newSeqs[i]
		}
	}
	surrs := st.surrogates[:0]
	seen := false
	for _, sur := range st.surrogates {
		if sur == victim {
			continue
		}
		if sur == cand {
			seen = true
		}
		surrs = append(surrs, sur)
	}
	if !seen {
		surrs = append(surrs, cand)
	}
	st.surrogates = surrs
	rep.PromotedJournals++
	return nil
}

// degradedNodes returns the failed nodes currently served in degraded
// mode, in deterministic order.
func (c *Cluster) degradedNodes() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(c.degraded))
	for f := range c.degraded {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
