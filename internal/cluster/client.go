package cluster

import (
	"errors"
	"fmt"
	"time"

	"tsue/internal/obs"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Client is the ECFS access layer: it encodes full stripes on the normal
// write path, routes small updates to the owning data OSD, and assembles
// reads (§4: the CLIENT handles the data encoding process).
type Client struct {
	c  *Cluster
	id wire.NodeID
	// view is the placement-map epoch this client has learned. Requests
	// carry the epoch the route was resolved under; when a PG has moved on
	// (online rebalance cutover), the OSD bounces the request with a
	// retryable stale-epoch error and the client refreshes the view from
	// the MDS — the same fetch-newer-map loop Ceph clients run.
	view uint64
}

// ID returns the client's node ID.
func (cl *Client) ID() wire.NodeID { return cl.id }

// Create registers a file of the given byte size with the MDS and returns
// its inode. Size is rounded up to whole stripes.
func (cl *Client) Create(p *sim.Proc, name string, size int64) (uint64, error) {
	sw := cl.c.StripeWidth()
	stripes := uint32((size + sw - 1) / sw)
	if stripes == 0 {
		stripes = 1
	}
	resp, err := cl.c.Fabric.Call(p, cl.id, mdsID, &wire.CreateFile{Name: name, Stripes: stripes})
	if err != nil {
		return 0, err
	}
	cr, ok := resp.(*wire.CreateResp)
	if !ok {
		return 0, fmt.Errorf("client: unexpected create response %T", resp)
	}
	if cr.Err != "" {
		return 0, fmt.Errorf("client: create: %s", cr.Err)
	}
	return cr.Ino, nil
}

// WriteFile writes the whole file content via the normal (encoding) write
// path: per stripe, K data blocks are encoded into M parity blocks and all
// K+M are stored in parallel. data is zero-padded to a stripe boundary.
func (cl *Client) WriteFile(p *sim.Proc, ino uint64, data []byte) error {
	cfg := cl.c.Cfg
	sw := cl.c.StripeWidth()
	nstripes := (int64(len(data)) + sw - 1) / sw
	for s := int64(0); s < nstripes; s++ {
		shards := make([][]byte, cfg.K+cfg.M)
		for i := 0; i < cfg.K; i++ {
			shards[i] = make([]byte, cfg.BlockSize)
			off := s*sw + int64(i)*cfg.BlockSize
			if off < int64(len(data)) {
				copy(shards[i], data[off:min64(int64(len(data)), off+cfg.BlockSize)])
			}
		}
		for i := 0; i < cfg.M; i++ {
			shards[cfg.K+i] = make([]byte, cfg.BlockSize)
		}
		if err := cl.c.Code.Encode(shards[:cfg.K], shards[cfg.K:]); err != nil {
			return err
		}
		sid := wire.StripeID{Ino: ino, Stripe: uint32(s)}
		osds := cl.c.Placement(sid)
		var firstErr error
		wg := sim.NewWaitGroup(cl.c.Env)
		wg.Add(len(shards))
		for i := range shards {
			i := i
			pp := cl.c.Env.Go("put", func(hp *sim.Proc) {
				defer wg.Done()
				blk := wire.BlockID{Ino: ino, Stripe: uint32(s), Index: uint16(i)}
				resp, err := cl.c.Fabric.Call(hp, cl.id, osds[i],
					&wire.PutBlock{Blk: blk, Data: shards[i], Sum: wire.Checksum(shards[i])})
				if err == nil {
					if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
						err = fmt.Errorf("%s", a.Err)
					}
				}
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("put %v: %w", blk, err)
				}
			})
			obs.Inherit(pp, p)
		}
		wg.Wait(p)
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

// routeRetries bounds how long a client op waits for a mid-transition route
// (node just failed, degraded registration in flight, cutover just
// finished) before surfacing the error; combined with routeRetryDelay it
// gives the control plane a few virtual seconds to publish routing. The
// budget must cover the widest legitimate no-route window: an OSD death
// during an online rebalance, where every in-flight PG first resolves
// (abort/finish — for lazy-log engines each fence drains their whole
// deferred merge debt) before recovery can register the degraded route.
// Time spent blocked at the update gate does not consume the budget.
const (
	routeRetries    = 4000
	routeRetryDelay = time.Millisecond
)

// Update applies a partial write at a file offset through the update path,
// splitting on block boundaries. Updates wait out the recovery gate, and
// updates to a degraded stripe route to the surrogate's journal instead of
// the home OSD, so client writes keep completing while a node is down.
func (cl *Client) Update(p *sim.Proc, ino uint64, off int64, data []byte) error {
	for len(data) > 0 {
		blk, boff := cl.c.Locate(ino, off)
		n := cl.c.Cfg.BlockSize - boff
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		if err := cl.updateBlock(p, blk, boff, data[:n]); err != nil {
			return err
		}
		off += n
		data = data[n:]
	}
	return nil
}

// admit asks the MDS for admission of one foreground op when an admission
// policy is configured (one metadata round trip). On admission it returns
// a release closure the caller must invoke when the op completes, so the
// MDS's queue-depth view drains. On rejection it returns ErrOverload
// (wrapped, errors.Is-able) WITHOUT consuming the caller's route-retry
// budget: overload is the submitter's signal to back off, not a routing
// transient the client should spin on.
func (cl *Client) admit(p *sim.Proc) (release func(), err error) {
	if cl.c.Cfg.Admission == nil {
		return func() {}, nil
	}
	resp, err := cl.c.Fabric.Call(p, cl.id, mdsID, &wire.AdmitOp{})
	if err != nil {
		return nil, fmt.Errorf("admit: %w", err)
	}
	a, ok := resp.(*wire.Ack)
	if !ok {
		return nil, fmt.Errorf("admit: unexpected response %T", resp)
	}
	if a.Err != "" {
		if overloadErr(errors.New(a.Err)) {
			return nil, ErrOverload
		}
		return nil, fmt.Errorf("admit: %s", a.Err)
	}
	return cl.c.admissionDone, nil
}

// startOp opens the root span of one foreground client op (when sampled)
// and records the op's end-to-end latency into the registry's per-kind
// histogram. The root's client stage wins whatever no deeper span covers:
// gate waits, retry pauses, overload backoff.
func (cl *Client) startOp(p *sim.Proc, s wire.StripeID, normal, degraded obs.OpKind) func() {
	op := normal
	if _, _, dg := cl.c.degradedRoute(s); dg {
		op = degraded
	}
	fin := cl.c.Obs.Tracer.StartOp(p, op, cl.id, "op:"+op.String())
	hist := cl.c.Obs.Reg.Histogram("op_lat_" + op.String())
	start := p.Now()
	return func() {
		hist.Record(p.Now() - start)
		fin()
	}
}

// updateBlock routes one block-local update, retrying through route
// transitions (failure detection, degraded registration, recovery cutover,
// rebalance cutover).
func (cl *Client) updateBlock(p *sim.Proc, blk wire.BlockID, boff int64, data []byte) error {
	finOp := cl.startOp(p, blk.StripeID(), obs.OpUpdate, obs.OpDegradedUpdate)
	defer finOp()
	release, aerr := cl.admit(p)
	if aerr != nil {
		return fmt.Errorf("update %v: %w", blk, aerr)
	}
	defer release()
	sum := wire.Checksum(data)
	for attempt := 0; ; attempt++ {
		cl.c.waitGate(p)
		var resp wire.Msg
		var err error
		if failed, surrogate, ok := cl.c.degradedRoute(blk.StripeID()); ok {
			resp, err = cl.c.Fabric.Call(p, cl.id, surrogate,
				&wire.DegradedUpdate{Failed: failed, Blk: blk, Off: boff, Data: data, Sum: sum})
		} else {
			// Counted so recovery's fenceUpdates can wait out in-flight
			// engine updates before a consistency barrier.
			cl.c.updatesInFlight++
			osds, epoch := cl.c.ResolveView(blk.StripeID(), cl.view)
			resp, err = cl.c.Fabric.Call(p, cl.id, osds[blk.Index],
				&wire.Update{Blk: blk, Off: boff, Data: data, Epoch: epoch, Sum: sum})
			cl.c.updatesInFlight--
			if cl.c.updatesInFlight == 0 {
				cl.c.gateCond.Broadcast()
			}
		}
		if err == nil {
			if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
				err = fmt.Errorf("%s", a.Err)
			}
		}
		if err == nil {
			return nil
		}
		// Checksum rejections are retryable: the receiver discarded the
		// corrupt payload before any side effect, so a clean resend repairs.
		if attempt >= routeRetries || !(retryableRouteErr(err) || checksumErr(err)) {
			return fmt.Errorf("update %v: %w", blk, err)
		}
		if staleEpochErr(err) {
			cl.refreshView(p, blk)
		} else {
			if nodeDownErr(err) {
				// A dead home cannot bounce a stale epoch: refresh the map
				// view in case placement moved the block off the dead node.
				cl.refreshView(p, blk)
			}
			p.Sleep(routeRetryDelay)
		}
	}
}

// Read returns [off, off+size) of the file, assembling across blocks.
// Reads of degraded stripes route to the surrogate, which reconstructs lost
// ranges on the fly and overlays journaled updates (read-your-writes even
// while the home OSD is down).
func (cl *Client) Read(p *sim.Proc, ino uint64, off, size int64) ([]byte, error) {
	out := make([]byte, 0, size)
	for size > 0 {
		blk, boff := cl.c.Locate(ino, off)
		n := cl.c.Cfg.BlockSize - boff
		if n > size {
			n = size
		}
		buf, err := cl.readBlock(p, blk, boff, n)
		if err != nil {
			return nil, err
		}
		out = append(out, buf...)
		off += n
		size -= n
	}
	return out, nil
}

// readBlock routes one block-local read, retrying through route
// transitions like updateBlock.
func (cl *Client) readBlock(p *sim.Proc, blk wire.BlockID, boff, n int64) ([]byte, error) {
	finOp := cl.startOp(p, blk.StripeID(), obs.OpRead, obs.OpDegradedRead)
	defer finOp()
	release, aerr := cl.admit(p)
	if aerr != nil {
		return nil, fmt.Errorf("read %v: %w", blk, aerr)
	}
	defer release()
	for attempt := 0; ; attempt++ {
		var resp wire.Msg
		var err error
		if failed, surrogate, ok := cl.c.degradedRoute(blk.StripeID()); ok {
			// Degraded reads wait out recovery's consistency fences; normal
			// reads are gated only by a rebalance cutover fence on their
			// own PG (below).
			cl.c.waitGate(p)
			resp, err = cl.c.Fabric.Call(p, cl.id, surrogate,
				&wire.DegradedRead{Failed: failed, Blk: blk, Off: boff, Size: int32(n)})
		} else {
			// A read of a PG mid-cutover must not observe the window where
			// overlay logs left the old home but have not landed at the
			// new one; the fence is short (settle + catch-up + replay).
			if cl.c.migrationFenced(blk) {
				cl.c.waitGate(p)
			}
			osds, epoch := cl.c.ResolveView(blk.StripeID(), cl.view)
			resp, err = cl.c.Fabric.Call(p, cl.id, osds[blk.Index],
				&wire.ReadBlock{Blk: blk, Off: boff, Size: int32(n), Epoch: epoch})
		}
		if err == nil {
			rr, ok := resp.(*wire.ReadResp)
			if !ok {
				return nil, fmt.Errorf("read %v: unexpected response %T", blk, resp)
			}
			if rr.Err == "" {
				// End-to-end verification: the response payload survived the
				// wire. A mismatch is retryable like any transient fault.
				if verr := wire.VerifySum(rr.Data, rr.Sum); verr != nil {
					cl.c.noteCorruption()
					err = fmt.Errorf("read %v: %w", blk, verr)
				} else {
					return rr.Data, nil
				}
			} else {
				err = fmt.Errorf("%s", rr.Err)
			}
		}
		if attempt >= routeRetries || !(retryableRouteErr(err) || checksumErr(err)) {
			return nil, fmt.Errorf("read %v: %w", blk, err)
		}
		if staleEpochErr(err) {
			cl.refreshView(p, blk)
		} else {
			if nodeDownErr(err) {
				// See updateBlock: a dead home cannot bounce a stale epoch.
				cl.refreshView(p, blk)
			}
			p.Sleep(routeRetryDelay)
		}
	}
}

// refreshView re-resolves the client's placement view from the MDS after a
// stale-epoch bounce — one metadata round trip, after which ResolveView
// routes through the newest map (and, mid-transition, the shipped per-PG
// cutover state).
func (cl *Client) refreshView(p *sim.Proc, blk wire.BlockID) {
	resp, err := cl.c.Fabric.Call(p, cl.id, mdsID, &wire.Lookup{Ino: blk.Ino, Stripe: blk.Stripe})
	if err != nil {
		return // next attempt bounces again
	}
	if lr, ok := resp.(*wire.LookupResp); ok && lr.Err == "" && lr.Epoch > cl.view {
		cl.view = lr.Epoch
	}
}

// Lookup queries the MDS for a stripe's placement and the PG it resolved
// through (the cached fast path computes placement locally from the shared
// map; this exercises the metadata protocol).
func (cl *Client) Lookup(p *sim.Proc, ino uint64, stripe uint32) ([]wire.NodeID, uint32, error) {
	resp, err := cl.c.Fabric.Call(p, cl.id, mdsID, &wire.Lookup{Ino: ino, Stripe: stripe})
	if err != nil {
		return nil, 0, err
	}
	lr, ok := resp.(*wire.LookupResp)
	if !ok {
		return nil, 0, fmt.Errorf("lookup: unexpected response %T", resp)
	}
	if lr.Err != "" {
		return nil, 0, fmt.Errorf("lookup: %s", lr.Err)
	}
	return lr.OSDs, lr.PG, nil
}

// LookupPG queries the MDS for a placement group's member OSDs (slot order,
// before per-stripe role rotation).
func (cl *Client) LookupPG(p *sim.Proc, pg uint32) ([]wire.NodeID, error) {
	resp, err := cl.c.Fabric.Call(p, cl.id, mdsID, &wire.PGLookup{PG: pg})
	if err != nil {
		return nil, err
	}
	lr, ok := resp.(*wire.LookupResp)
	if !ok {
		return nil, fmt.Errorf("pg lookup: unexpected response %T", resp)
	}
	if lr.Err != "" {
		return nil, fmt.Errorf("pg lookup: %s", lr.Err)
	}
	return lr.OSDs, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
