package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// TestExpandUnderLoad is the subsystem's acceptance test: add an OSD in the
// middle of a randomized update/read workload for every engine, and require
// (a) byte-exact reads throughout the migration and after the cutover —
// read-your-writes across the epoch boundary, (b) actual blocks moved
// within 1.5x the reported minimal-remap bound, (c) the new OSD really
// hosting blocks, and (d) a clean drain + scrub afterwards.
//
// Each writer proc owns a disjoint stripe range of the file and verifies
// its own region as it goes, so the reference content is exact despite the
// concurrency.
func TestExpandUnderLoad(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := testConfig(engine)
			cfg.EngineOpts.UnitSize = 64 << 10 // keep TSUE overlay resident so logs follow blocks
			run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
				rng := rand.New(rand.NewSource(42))
				const stripes = 16
				fileSize := stripes * c.StripeWidth()
				content := make([]byte, fileSize)
				rng.Read(content)
				ino, err := cl.Create(p, "f", fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.WriteFile(p, ino, content); err != nil {
					t.Fatal(err)
				}

				const nWriters = 4
				perRegion := fileSize / nWriters
				stop := false
				done := 0
				var wErr error
				wg := sim.NewWaitGroup(c.Env)
				wg.Add(nWriters)
				for wi := 0; wi < nWriters; wi++ {
					wi := wi
					wcl := c.NewClient()
					wrng := rand.New(rand.NewSource(int64(100 + wi)))
					base := int64(wi) * perRegion
					c.Env.Go(fmt.Sprintf("writer%d", wi), func(wp *sim.Proc) {
						defer wg.Done()
						for j := 0; !stop && j < 100000; j++ {
							off := base + int64(wrng.Intn(int(perRegion-4096)))
							n := 1 + wrng.Intn(4096)
							buf := make([]byte, n)
							wrng.Read(buf)
							if err := wcl.Update(wp, ino, off, buf); err != nil {
								if wErr == nil {
									wErr = fmt.Errorf("writer %d: %w", wi, err)
								}
								return
							}
							copy(content[off:], buf)
							done++
							if j%5 == 4 {
								// Read-your-writes probe inside the owned region,
								// concurrent with migration.
								roff := base + int64(wrng.Intn(int(perRegion-8192)))
								got, err := wcl.Read(wp, ino, roff, 8192)
								if err != nil {
									if wErr == nil {
										wErr = fmt.Errorf("writer %d read: %w", wi, err)
									}
									return
								}
								if !bytes.Equal(got, content[roff:roff+8192]) {
									if wErr == nil {
										wErr = fmt.Errorf("writer %d: read mismatch at %d mid-migration", wi, roff)
									}
									return
								}
							}
						}
					})
				}

				// Let the workload reach steady state, then expand online.
				for done < 60 && wErr == nil {
					p.Sleep(200 * time.Microsecond)
				}
				if wErr != nil {
					t.Fatal(wErr)
				}
				rep, newID, err := c.Expand(p, cl, rebalance.Config{
					RateBps:        64 << 20,
					MaxInFlightPGs: 2,
				})
				if err != nil {
					t.Fatalf("expand: %v", err)
				}
				// Keep load running briefly against the committed epoch so
				// stale-view clients exercise the re-resolve path.
				post := done
				for done < post+40 && wErr == nil {
					p.Sleep(200 * time.Microsecond)
				}
				stop = true
				wg.Wait(p)
				if wErr != nil {
					t.Fatal(wErr)
				}

				t.Logf("%s: moved=%d bound=%.1f (%.2fx) recopied=%d replayed=%d items pgs=%d stall(total=%v max=%v)",
					engine, rep.MovedBlocks, rep.BoundBlocks, rep.ActualOverBound,
					rep.RecopiedBlocks, rep.ReplayedItems, rep.PGsMigrated, rep.StallTime, rep.MaxStall)

				if rep.MovedBlocks == 0 {
					t.Fatal("expansion moved nothing")
				}
				if float64(rep.MovedBlocks) > 1.5*rep.BoundBlocks+1e-9 {
					t.Fatalf("moved %d blocks > 1.5x bound %.2f", rep.MovedBlocks, rep.BoundBlocks)
				}
				if c.OSDByID(newID).Store().Len() == 0 {
					t.Fatal("new OSD hosts no blocks after expansion")
				}
				if got := c.MDS.CommittedEpoch(); got != 1 {
					t.Fatalf("committed epoch %d, want 1", got)
				}

				// Byte-exact reads across the epoch boundary.
				got, err := cl.Read(p, ino, 0, fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, content) {
					t.Fatal("post-expansion read mismatch")
				}
				if err := c.DrainAll(p, cl); err != nil {
					t.Fatal(err)
				}
				if n, err := c.Scrub(); err != nil || n != stripes {
					t.Fatalf("post-expansion scrub: n=%d err=%v", n, err)
				}
				got, err = cl.Read(p, ino, 0, fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, content) {
					t.Fatal("post-drain read mismatch")
				}
			})
		})
	}
}

// TestExpandLogFollowsBlock pins TSUE's cutover advantage: with updates in
// flight, at least some migrating blocks carry unrecycled DataLog overlay
// that must be extracted and replayed at the new home rather than drained.
func TestExpandLogFollowsBlock(t *testing.T) {
	cfg := testConfig("tsue")
	cfg.EngineOpts.UnitSize = 1 << 20 // units never seal: all updates stay overlay
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(7))
		fileSize := 8 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		// Touch every data block so each holds active-unit overlay.
		sw := c.StripeWidth()
		for off := int64(0); off < fileSize; off += c.Cfg.BlockSize {
			_ = sw
			buf := make([]byte, 512)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
		}
		rep, _, err := c.Expand(p, cl, rebalance.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ReplayedItems == 0 {
			t.Fatalf("no DataLog overlay followed any block (moved=%d)", rep.MovedBlocks)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("read mismatch after log-follows-block cutover")
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSplitPGsOnline: a PG split is a movement-free re-epoching that keeps
// content intact and doubles the committed map's PG count.
func TestSplitPGsOnline(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(5))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		oldPGs := c.MDS.PlacementMap().Config().PGs
		rep, err := c.SplitPGs(p, cl, 2, rebalance.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MovedBlocks != 0 || rep.BoundBlocks != 0 {
			t.Fatalf("split moved %d blocks (bound %.1f)", rep.MovedBlocks, rep.BoundBlocks)
		}
		if got := c.MDS.PlacementMap().Config().PGs; got != 2*oldPGs {
			t.Fatalf("PGs after split = %d, want %d", got, 2*oldPGs)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("read mismatch after split")
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestExpandRecoveryMutualExclusion pins the control-plane guard rails:
// expansion refuses while a node is degraded, and recovery refuses while a
// transition is staged.
func TestExpandRecoveryMutualExclusion(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		fileSize := 2 * c.StripeWidth()
		content := make([]byte, fileSize)
		rand.New(rand.NewSource(3)).Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}

		// Degraded window open -> Expand refused.
		victim := c.Placement(wire.StripeID{Ino: ino, Stripe: 0})[0]
		c.Fabric.SetDown(victim, true)
		if _, err := c.registerDegraded(p, victim, cl); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Expand(p, cl, rebalance.Config{}); err == nil {
			t.Fatal("Expand accepted during a degraded window")
		}
		c.unregisterDegraded(victim)
		c.Fabric.SetDown(victim, false)

		// Transition staged -> Recover refused.
		osd, err := c.AddOSDNode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.stageEpoch(p, cl, &wire.EpochUpdate{Kind: wire.EpochStageAddOSD, OSD: osd.id}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recover(p, victim, 4, RecoverInterleaved, cl); err == nil {
			t.Fatal("Recover accepted during a placement transition")
		}
		// Staging twice is refused too.
		if _, err := c.stageEpoch(p, cl, &wire.EpochUpdate{Kind: wire.EpochStageSplitPGs, Factor: 2}); err == nil {
			t.Fatal("second stage accepted mid-transition")
		}
		// Finish the transition properly so the cluster ends consistent.
		rep, err := c.migrate(p, cl, c.MDS.trans.next, rebalance.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MovedBlocks == 0 {
			t.Fatal("migration moved nothing")
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
	})
}
