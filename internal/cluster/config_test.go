package cluster

import (
	"strings"
	"testing"
)

// TestConfigValidation pins cluster.New's input checks: nonsensical sizes
// and counts fail with a clear error instead of a downstream panic.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero OSDs", func(c *Config) { c.OSDs = 0 }, "OSD"},
		{"too few OSDs", func(c *Config) { c.OSDs = c.K + c.M - 1 }, "cannot host"},
		{"zero block size", func(c *Config) { c.BlockSize = 0 }, "block size"},
		{"negative block size", func(c *Config) { c.BlockSize = -4096 }, "block size"},
		{"negative PGs", func(c *Config) { c.PGs = -1 }, "PG count"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// The documented zero-PGs default (8 per OSD) still applies.
	cfg := DefaultConfig()
	cfg.PGs = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Env.Close()
	if got := c.MDS.PlacementMap().Config().PGs; got != 8*cfg.OSDs {
		t.Fatalf("zero-PGs default = %d, want %d", got, 8*cfg.OSDs)
	}
}
