package cluster

// Any-m-deaths journal resolution: with RS(K, M) the degraded-update
// journal is quorum-replicated on min(M, live-1) holders, so ANY m ≤ M
// concurrent deaths inside a degraded window — the failed node, the
// journal-holding surrogate, and a quorum holder, in any interleaving
// with the client's acked appends — must resolve byte-exact through
// promotion and recovery. This pins the PR 5 gap closed: the old single
// best-effort replica stranded acked updates whenever the recorded holder
// died before the surrogate did.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// multiDeathConfig is degradedConfig with an RS(3,3) scheme on 9 OSDs:
// three parities buy a death budget of three, so the full
// failed+holder+surrogate scenario stays byte-exact verifiable (every
// stripe keeps ≥ K live shards and every acked append a live copy).
func multiDeathConfig(engine string) Config {
	cfg := degradedConfig(engine)
	cfg.OSDs = 9
	cfg.K, cfg.M = 3, 3
	return cfg
}

// multiDeathRun parameterizes one any-m-deaths run. The appends split into
// three batches around the deaths: a before the holder dies, b between
// holder death and surrogate death, c after the surrogate's promotion.
type multiDeathRun struct {
	engine  string
	m       int // deaths: 1 = failed only, 2 = +surrogate, 3 = +holder
	a, b, c int
	seed    int64
}

// runMultiDeath drives one scenario end to end: open a degraded window
// for the failed node, inject up to m-1 further deaths at the configured
// points between acked degraded appends, then recover every dead node and
// verify drain + scrub + byte-exact read-back.
func runMultiDeath(t *testing.T, r multiDeathRun) {
	t.Helper()
	cfg := multiDeathConfig(r.engine)
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(r.seed))
		fileSize := 3 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		failed := wire.NodeID(3)
		if err := c.BeginDegraded(p, failed, admin); err != nil {
			t.Errorf("begin degraded: %v", err)
			return
		}
		st := c.degraded[failed]
		if r.a > 0 && !degradedStripeOps(t, p, c, cl, st, ino, content, rng, r.a) {
			return
		}
		var surr, holder wire.NodeID
		if r.m >= 2 {
			if surr = busiestSurrogate(c, st); surr == 0 {
				surr = st.surrogates[0]
			}
			if r.m >= 3 {
				holders := c.JournalHoldersOf(failed, surr)
				if len(holders) < 2 {
					t.Fatalf("expected ≥2 quorum holders for m=3, got %v", holders)
				}
				holder = holders[0]
				c.Fabric.SetDown(holder, true)
			}
			if r.b > 0 && !degradedStripeOps(t, p, c, cl, st, ino, content, rng, r.b) {
				return
			}
			journaled := len(c.OSDByID(surr).journalItems(failed))
			krep, err := c.Kill(p, surr, admin)
			if err != nil {
				t.Errorf("kill surrogate %d: %v", surr, err)
				return
			}
			if journaled > 0 && krep.PromotedJournals == 0 {
				t.Error("surrogate died holding journal items but promoted nothing")
				return
			}
		}
		if r.c > 0 && !degradedStripeOps(t, p, c, cl, st, ino, content, rng, r.c) {
			return
		}
		if r.a+r.b+r.c > 0 {
			sent, _, held, _ := c.JournalQuorumStats()
			if sent == 0 || held == 0 {
				t.Errorf("acked degraded appends left no quorum traffic (sent=%d held=%d): zero-copy acks", sent, held)
				return
			}
		}
		// Recovery order matters: cutover replay drives full engine writes
		// across each replayed stripe, and the synchronous-parity engines
		// (pl/plr/parix/cord) need every stripe member reachable. So the
		// journal-less casualties — whose own windows replay nothing —
		// rebuild first, and the window owner replays last onto fully-live
		// stripes.
		if holder != 0 {
			if _, err := c.Recover(p, holder, 2, RecoverInterleaved, admin); err != nil {
				t.Errorf("recover dead holder: %v", err)
				return
			}
		}
		if surr != 0 {
			if _, err := c.Recover(p, surr, 2, RecoverInterleaved, admin); err != nil {
				t.Errorf("recover dead surrogate: %v", err)
				return
			}
		}
		if _, err := c.Recover(p, failed, 2, RecoverInterleaved, admin); err != nil {
			t.Errorf("recover failed node: %v", err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after multi-death recovery")
			return
		}
		// Post-Close queue Puts are counted drops rather than panics; no
		// teardown path closes a live delivery queue today, so any nonzero
		// count is a new silently-dropping race.
		if d := c.Env.DroppedPuts(); d != 0 {
			t.Errorf("multi-death teardown dropped %d queue deliveries", d)
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestAnyMDeathsJournalGrid sweeps engines × m ∈ {1..M} × kill
// interleavings. -short keeps the paper's engine (tsue) only.
func TestAnyMDeathsJournalGrid(t *testing.T) {
	engines := update.Names()
	if testing.Short() {
		engines = []string{"tsue"}
	}
	interleavings := []struct {
		name    string
		a, b, c int
	}{
		{"pre", 0, 0, 25},   // deaths land before any append
		{"mid", 15, 10, 15}, // appends straddle both deaths
		{"post", 25, 0, 0},  // every append precedes the deaths
	}
	for ei, engine := range engines {
		for m := 1; m <= 3; m++ {
			for ii, il := range interleavings {
				if m == 1 && il.name != "post" {
					continue // no extra deaths: only one interleaving exists
				}
				r := multiDeathRun{
					engine: engine, m: m,
					a: il.a, b: il.b, c: il.c,
					seed: int64(91 + 100*m + 10*ii + ei),
				}
				t.Run(fmt.Sprintf("%s/m%d/%s", engine, m, il.name), func(t *testing.T) {
					runMultiDeath(t, r)
				})
			}
		}
	}
}

// TestMultiDeathStrandingReproFixed pins the exact PR 5 gap: appends ack
// while holder H is live, H dies, MORE appends ack (quorum narrows to the
// survivors), then the surrogate dies. The early appends now exist only on
// the surviving holders — under the old single-replica design the recorded
// holder's death stranded them (ErrSurrogateLost or silent loss); quorum
// read-repair must recover every acked byte.
func TestMultiDeathStrandingReproFixed(t *testing.T) {
	runMultiDeath(t, multiDeathRun{engine: "tsue", m: 3, a: 20, b: 20, c: 10, seed: 41})
}

// TestDegradedUpdateQuorumUnreachable pins the no-zero-copy-acks rule:
// when every quorum holder is unreachable a degraded update must FAIL
// rather than ack with the surrogate holding the only copy, and the
// surrogate's acked-sequence watermark must not advance past the failure.
func TestDegradedUpdateQuorumUnreachable(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(43))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		failed := wire.NodeID(3)
		if err := c.BeginDegraded(p, failed, admin); err != nil {
			t.Errorf("begin degraded: %v", err)
			return
		}
		st := c.degraded[failed]
		// Lowest lost DATA block, for determinism.
		var blk wire.BlockID
		found := false
		for b := range st.lost {
			if int(b.Index) >= c.Cfg.K {
				continue
			}
			if !found || b.Stripe < blk.Stripe ||
				b.Stripe == blk.Stripe && b.Index < blk.Index {
				blk, found = b, true
			}
		}
		if !found {
			t.Error("no lost data block")
			return
		}
		surr := st.surr[c.PG(blk.StripeID())]
		base := int64(blk.Stripe)*c.StripeWidth() + int64(blk.Index)*c.Cfg.BlockSize
		buf := make([]byte, 512)
		rng.Read(buf)
		if err := cl.Update(p, ino, base, buf); err != nil {
			t.Errorf("degraded update with live quorum: %v", err)
			return
		}
		seqBefore := st.ackSeq[surr]
		if seqBefore == 0 {
			t.Error("acked degraded update did not advance the quorum watermark")
			return
		}
		for _, h := range c.JournalHoldersOf(failed, surr) {
			c.Fabric.SetDown(h, true)
		}
		err = cl.Update(p, ino, base+1024, buf)
		if err == nil || !strings.Contains(err.Error(), "quorum unreachable") {
			t.Errorf("update with no reachable holder: got %v, want quorum-unreachable failure", err)
			return
		}
		if st.ackSeq[surr] != seqBefore {
			t.Errorf("ackSeq moved %d→%d across a failed append", seqBefore, st.ackSeq[surr])
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestHeartbeatMissAccounting: heartbeat send failures are not dropped on
// the floor — the OSD counts the streak, reports it once a beat gets
// through, the MDS accumulates it, and both TransitionStatus and the
// kill-report surface the number.
func TestHeartbeatMissAccounting(t *testing.T) {
	cfg := testConfig("fo")
	cfg.HeartbeatInterval = 10 * time.Millisecond
	c := MustNew(cfg)
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		p.Sleep(55 * time.Millisecond) // beats flow, no misses yet
		c.Fabric.SetDown(mdsID, true)  // partition the MDS away
		p.Sleep(100 * time.Millisecond)
		c.Fabric.SetDown(mdsID, false)
		p.Sleep(55 * time.Millisecond) // streaks reach the MDS again
		for _, osd := range c.OSDs {
			if osd.HeartbeatMisses() == 0 {
				t.Errorf("osd %d recorded no misses across the MDS partition", osd.id)
			}
			if c.MDS.BeatMisses(osd.id) == 0 {
				t.Errorf("MDS holds no reported misses for osd %d", osd.id)
			}
		}
		resp, err := c.Fabric.Call(p, admin.id, mdsID, &wire.TransitionStatus{})
		if err != nil {
			t.Errorf("transition status: %v", err)
			return
		}
		ts, ok := resp.(*wire.TransitionStatusResp)
		if !ok || len(ts.Beats) == 0 {
			t.Errorf("TransitionStatusResp carries no beat accounting: %v", resp)
			return
		}
		victim := c.OSDs[len(c.OSDs)-1].id
		krep, err := c.Kill(p, victim, admin)
		if err != nil {
			t.Errorf("kill: %v", err)
			return
		}
		if krep.MissedBeats == 0 {
			t.Error("kill report surfaced no missed beats")
			return
		}
		done = true
	})
	c.Env.Run(time.Second)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}
