package cluster

import (
	"fmt"
	"time"

	"tsue/internal/blockstore"
	"tsue/internal/device"
	"tsue/internal/obs"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// OSD is one object storage server: a device, a block store, and the update
// engine. It implements update.Host.
type OSD struct {
	c      *Cluster
	id     wire.NodeID
	dev    *device.Disk
	store  *blockstore.Store
	engine update.Engine
	// journals holds degraded-update journals this OSD keeps as surrogate
	// for failed peers (see degraded.go).
	journals map[wire.NodeID]*journal
	// recSrcReadBytes counts bytes this OSD served as a reconstruction
	// source (rebuild fan-in and degraded on-the-fly reads) since the last
	// recovery-counter reset — the fan-out measure of the placement
	// experiment.
	recSrcReadBytes int64
	// jrSentMsgs/jrSentBytes count acked JournalReplica sends this OSD made
	// as a surrogate (quorum write traffic); jrHeldMsgs/jrHeldBytes count
	// records it persisted as a quorum holder. Harness quorum-traffic
	// accounting (Cluster.JournalQuorumStats).
	jrSentMsgs  int64
	jrSentBytes int64
	jrHeldMsgs  int64
	jrHeldBytes int64
	// beatMissStreak counts consecutive heartbeat sends that failed to reach
	// the MDS; reported in the Misses field of the next beat that gets
	// through and folded into the MDS's per-OSD miss accounting.
	beatMissStreak uint32
	// beatMissTotal is the lifetime count of failed heartbeat sends (local
	// accounting for kill reports and tests).
	beatMissTotal uint64
}

func newOSD(c *Cluster, id wire.NodeID) *OSD {
	dev := device.New(c.Env, fmt.Sprintf("osd%d", id), c.Cfg.DeviceKind, c.Cfg.DeviceParams)
	return &OSD{
		c:        c,
		id:       id,
		dev:      dev,
		store:    blockstore.New(dev, c.Cfg.BlockSize),
		journals: make(map[wire.NodeID]*journal),
	}
}

// ---- update.Host ----

// NodeID returns this OSD's node ID.
func (o *OSD) NodeID() wire.NodeID { return o.id }

// Env returns the simulation environment.
func (o *OSD) Env() *sim.Env { return o.c.Env }

// Store returns this OSD's block store.
func (o *OSD) Store() *blockstore.Store { return o.store }

// Code returns the cluster's RS code.
func (o *OSD) Code() *rs.Code { return o.c.Code }

// Placement returns the stripe's hosting OSDs.
func (o *OSD) Placement(s wire.StripeID) []wire.NodeID { return o.c.Placement(s) }

// Peers returns all OSD node IDs in ring order.
func (o *OSD) Peers() []wire.NodeID { return o.c.osdIDs() }

// Alive reports whether a peer is reachable.
func (o *OSD) Alive(id wire.NodeID) bool { return !o.c.Fabric.Down(id) }

// Call performs an RPC to a peer node.
func (o *OSD) Call(p *sim.Proc, to wire.NodeID, req wire.Msg) (wire.Msg, error) {
	return o.c.Fabric.Call(p, o.id, to, req)
}

// Tracer exposes the cluster's trace plane (update.TraceHost): background
// engine work — TSUE recycle passes — starts its own root spans here.
func (o *OSD) Tracer() *obs.Tracer { return o.c.Obs.Tracer }

// Engine exposes the OSD's update engine (harness and tests).
func (o *OSD) Engine() update.Engine { return o.engine }

// Device exposes the OSD's disk (harness and tests).
func (o *OSD) Device() *device.Disk { return o.dev }

// JournalBytes returns the total bytes this OSD ever appended to surrogate
// journals as the PRIMARY surrogate (cursors survive cutover; ring-successor
// durability copies are excluded) — the surrogate-load measure of the
// placement experiment.
func (o *OSD) JournalBytes() int64 {
	var n int64
	for _, j := range o.journals {
		n += j.cursor
	}
	return n
}

// ---- RPC dispatch ----

func (o *OSD) handle(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
	switch v := m.(type) {
	case *wire.PutBlock:
		// Verify before the store write: a payload corrupted on the wire
		// must never become the stored copy.
		if err := wire.VerifySum(v.Data, v.Sum); err != nil {
			o.c.noteCorruption()
			return &wire.Ack{Err: fmt.Sprintf("put %v: %v", v.Blk, err)}
		}
		if err := o.store.Put(p, v.Blk, v.Data); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.ReadBlock:
		var buf []byte
		var err error
		if v.Raw {
			// Server-internal path (recovery fan-in, block migration):
			// exempt from routing checks by design.
			buf, err = o.store.ReadRange(p, v.Blk, v.Off, int64(v.Size))
		} else {
			// A read that raced into a cutover fence must not observe the
			// extract-replay gap; one that raced past a finished cutover
			// must re-resolve.
			if o.c.migrationFenced(v.Blk) {
				return &wire.ReadResp{Err: errMigrating}
			}
			if !o.c.epochOK(v.Blk, v.Epoch) {
				return &wire.ReadResp{Err: errStaleEpoch}
			}
			buf, err = o.engine.Read(p, v.Blk, v.Off, int64(v.Size))
		}
		if err != nil {
			return &wire.ReadResp{Err: err.Error()}
		}
		return &wire.ReadResp{Data: buf, Sum: wire.Checksum(buf)}
	case *wire.Update:
		if !o.c.epochOK(v.Blk, v.Epoch) {
			return &wire.Ack{Err: errStaleEpoch}
		}
		// Verify before any engine side effect: a corrupted delta applied to
		// data or parity would tear the stripe undetectably.
		if err := wire.VerifySum(v.Data, v.Sum); err != nil {
			o.c.noteCorruption()
			return &wire.Ack{Err: fmt.Sprintf("update %v: %v", v.Blk, err)}
		}
		if err := o.engine.Update(p, v.Blk, v.Off, v.Data); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.Drain:
		if err := o.engine.Drain(p); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.Settle:
		if err := o.engine.Settle(p, v.Failed); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.RecoverBlock:
		if err := o.recoverBlock(p, v); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.ReplayUpdate:
		// A corrupted replay record applied during recovery would bake wrong
		// bytes into the rebuilt block — verify before touching the engine.
		if err := wire.VerifySum(v.Data, v.Sum); err != nil {
			o.c.noteCorruption()
			return &wire.Ack{Err: fmt.Sprintf("replay %v: %v", v.Blk, err)}
		}
		if err := update.Replay(p, o.engine, v.Blk, v.Off, v.Data); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.DegradedUpdate:
		return o.handleDegradedUpdate(p, v)
	case *wire.DegradedRead:
		return o.handleDegradedRead(p, v)
	case *wire.JournalReplica:
		// Durability copy of a surrogate-journal record, held as a member of
		// the surrogate's quorum set: persist, keep the sequenced item keyed
		// by its surrogate so a promotion can read-repair across holders,
		// and ack — the surrogate acks the client only after every reachable
		// holder has done this. Verified first: a corrupted copy acked into
		// the quorum could later read-repair garbage over good records.
		if err := wire.VerifySum(v.Data, v.Sum); err != nil {
			o.c.noteCorruption()
			return &wire.JournalAck{Seq: v.Seq, Err: err.Error()}
		}
		j := o.journalFor(v.Failed)
		if j.repl == nil {
			j.repl = make(map[wire.NodeID][]wire.JournalItem)
		}
		j.repl[v.Surrogate] = append(j.repl[v.Surrogate], wire.JournalItem{
			Seq: v.Seq, Blk: v.Blk, Off: v.Off, Data: append([]byte(nil), v.Data...),
		})
		o.journalPersistReplica(p, j, int64(len(v.Data)))
		o.jrHeldMsgs++
		o.jrHeldBytes += int64(len(v.Data))
		return &wire.JournalAck{Seq: v.Seq}
	case *wire.JournalFetch:
		return o.handleJournalFetch(p, v)
	case *wire.MigrateBlock:
		return o.handleMigrateBlock(p, v)
	case *wire.MigrateLog:
		return o.handleMigrateLog(p, v)
	default:
		// Engine-internal messages (delta/log fan-outs) carry their own
		// payload checksums via wire.SummedPayload; verify centrally before
		// any engine side effect so a wire-corrupted delta never reaches a
		// log or parity block.
		if sp, ok := m.(wire.SummedPayload); ok {
			if err := sp.VerifyPayload(); err != nil {
				o.c.noteCorruption()
				return &wire.Ack{Err: fmt.Sprintf("osd %d: %v: %v", o.id, m.Type(), err)}
			}
		}
		if resp, handled := o.engine.Handle(p, from, m); handled {
			return resp
		}
		return &wire.Ack{Err: fmt.Sprintf("osd %d: unhandled message %v", o.id, m.Type())}
	}
}

// handleMigrateBlock runs at a migrating block's NEW home: pull the raw
// block from its old home and store it locally. Raw is correct by
// contract with the migration engine — either the old home's logs were
// settled under the fence before the authoritative copy, or a catch-up
// re-copy and a log replay follow. With Reconstruct set (the old home is
// dead), the block is rebuilt from K surviving stripe peers instead —
// recovery's reconstruction running as the migration's finish policy, so
// it must be called under the fence after the settle barrier.
func (o *OSD) handleMigrateBlock(p *sim.Proc, v *wire.MigrateBlock) wire.Msg {
	if v.Reconstruct {
		if err := o.recoverBlock(p, &wire.RecoverBlock{Blk: v.Blk, Reencode: v.Reencode}); err != nil {
			return &wire.Ack{Err: fmt.Sprintf("migrate reconstruct %v: %v", v.Blk, err)}
		}
		return wire.OK
	}
	resp, err := o.Call(p, v.From, &wire.ReadBlock{
		Blk: v.Blk, Off: 0, Size: int32(o.c.Cfg.BlockSize), Raw: true,
	})
	if err != nil {
		return &wire.Ack{Err: fmt.Sprintf("migrate pull %v from %d: %v", v.Blk, v.From, err)}
	}
	rr, ok := resp.(*wire.ReadResp)
	if !ok || rr.Err != "" {
		return &wire.Ack{Err: fmt.Sprintf("migrate pull %v from %d: %v", v.Blk, v.From, resp)}
	}
	if err := wire.VerifySum(rr.Data, rr.Sum); err != nil {
		o.c.noteCorruption()
		return &wire.Ack{Err: fmt.Sprintf("migrate pull %v from %d: %v", v.Blk, v.From, err)}
	}
	if err := o.store.Put(p, v.Blk, rr.Data); err != nil {
		return &wire.Ack{Err: err.Error()}
	}
	return wire.OK
}

// handleMigrateLog runs at a migrating block's OLD home: extract the
// replayable pure-overlay log records still held for the block (TSUE's
// active DataLog items; in-place engines have none — they drained at the
// settle barrier) and retire their reliability replicas cluster-wide, so a
// later failure of this node cannot replay pre-migration state over the
// block's new home. The records return to the migration engine, which
// replays them at the new home.
func (o *OSD) handleMigrateLog(p *sim.Proc, v *wire.MigrateLog) wire.Msg {
	lm, ok := o.engine.(update.LogMigrator)
	if !ok {
		return &wire.ReplicaResp{}
	}
	items := lm.ExtractBlockLog(p, v.Blk)
	if len(items) > 0 {
		for _, peer := range o.c.osdIDs() {
			if peer == o.id || o.c.Fabric.Down(peer) {
				continue
			}
			// Best effort: a holder that is already gone has nothing to
			// retire anyway.
			_, _ = o.Call(p, peer, &wire.ReplicaRetire{Node: o.id, Blk: v.Blk})
		}
	}
	return &wire.ReplicaResp{Items: items}
}

// readSurvivingShards reads [off, off+size) of K live shards of blk's
// stripe (skipping blk itself) with parallel raw reads, returning the K+M
// shard slice with the read shards filled in — the fan-in shared by block
// reconstruction, stripe repair, and degraded reads. The primary survivor
// set is the first K live shards in index order; with alt set the LAST K
// live shards are chosen instead, so whenever more than K shards survive a
// hedged read's two legs fan in over different sources and a straggler in
// one set need not stall both.
func (o *OSD) readSurvivingShards(p *sim.Proc, blk wire.BlockID, off, size int64, alt bool) ([][]byte, error) {
	cfg := o.c.Cfg
	s := blk.StripeID()
	osds := o.c.Placement(s)
	shards := make([][]byte, cfg.K+cfg.M)
	var sources []int
	if alt {
		for i := cfg.K + cfg.M - 1; i >= 0 && len(sources) < cfg.K; i-- {
			if uint16(i) == blk.Index || o.c.Fabric.Down(osds[i]) {
				continue
			}
			sources = append(sources, i)
		}
	} else {
		for i := 0; i < cfg.K+cfg.M && len(sources) < cfg.K; i++ {
			if uint16(i) == blk.Index || o.c.Fabric.Down(osds[i]) {
				continue
			}
			sources = append(sources, i)
		}
	}
	if len(sources) < cfg.K {
		return nil, fmt.Errorf("recover %v: only %d surviving shards", blk, len(sources))
	}
	var firstErr error
	wg := sim.NewWaitGroup(o.c.Env)
	wg.Add(len(sources))
	for _, idx := range sources {
		idx := idx
		rp := o.c.Env.Go("recover-read", func(hp *sim.Proc) {
			defer wg.Done()
			sblk := wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(idx)}
			resp, err := o.Call(hp, osds[idx], &wire.ReadBlock{Blk: sblk, Off: off, Size: int32(size), Raw: true})
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("recover read %v: %w", sblk, err)
				}
				return
			}
			rr, ok := resp.(*wire.ReadResp)
			if !ok || rr.Err != "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("recover read %v: %v", sblk, resp)
				}
				return
			}
			// A corrupt shard fed into rs.Reconstruct would silently rebuild
			// wrong bytes — the one place wire rot is most dangerous.
			if err := wire.VerifySum(rr.Data, rr.Sum); err != nil {
				o.c.noteCorruption()
				if firstErr == nil {
					firstErr = fmt.Errorf("recover read %v: %w", sblk, err)
				}
				return
			}
			o.c.OSDByID(osds[idx]).recSrcReadBytes += int64(len(rr.Data))
			shards[idx] = rr.Data
		})
		obs.Inherit(rp, p)
	}
	wg.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	return shards, nil
}

// recoverBlock reconstructs one lost block from K surviving peers and stores
// it locally. Peer reads run in parallel — reconstruction bandwidth is bound
// by the K fan-in plus the local streaming write (Fig. 8b). When the
// request carries Reencode, the full-stripe parity repair runs instead.
func (o *OSD) recoverBlock(p *sim.Proc, req *wire.RecoverBlock) error {
	if req.Reencode {
		return o.recoverStripeRepair(p, req.Blk)
	}
	blk := req.Blk
	shards, err := o.readSurvivingShards(p, blk, 0, o.c.Cfg.BlockSize, false)
	if err != nil {
		return err
	}
	if err := o.c.Code.Reconstruct(shards); err != nil {
		return err
	}
	return o.store.Put(p, blk, shards[blk.Index])
}

// recoverStripeRepair rebuilds a lost block AND re-encodes the stripe's
// whole parity set from its data blocks, overwriting the live parity
// holders in place. It runs when a plain reconstruction could bake a torn
// stripe in (cluster.stripeRepair): a dead first-parity node whose
// cross-parity delta buffer (TSUE DeltaLog / CoRD collector) died with it,
// or a dead data holder that may have died mid-parity-propagation (FO's
// sequential path, PL/PLR/PARIX's fan-out), leaving live parities
// disagreeing about its last update. Reconstructing the lost block from the
// first K live shards and then re-encoding makes every surviving parity
// agree with whatever update subset those K shards witnessed.
func (o *OSD) recoverStripeRepair(p *sim.Proc, blk wire.BlockID) error {
	cfg := o.c.Cfg
	s := blk.StripeID()
	osds := o.c.Placement(s)
	shards, err := o.readSurvivingShards(p, blk, 0, cfg.BlockSize, false)
	if err != nil {
		return err
	}
	// Fills every missing shard, including blk and any unread parity.
	if err := o.c.Code.Reconstruct(shards); err != nil {
		return err
	}
	// Re-encode the parity set from the (now complete) data shards so all
	// parities agree.
	parity := make([][]byte, cfg.M)
	for j := range parity {
		parity[j] = make([]byte, cfg.BlockSize)
	}
	if err := o.c.Code.Encode(shards[:cfg.K], parity); err != nil {
		return err
	}
	if int(blk.Index) < cfg.K {
		if err := o.store.Put(p, blk, shards[blk.Index]); err != nil {
			return err
		}
	} else if err := o.store.Put(p, blk, parity[int(blk.Index)-cfg.K]); err != nil {
		return err
	}
	for j := 0; j < cfg.M; j++ {
		if cfg.K+j == int(blk.Index) || o.c.Fabric.Down(osds[cfg.K+j]) {
			continue
		}
		pblk := wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(cfg.K + j)}
		resp, err := o.Call(p, osds[cfg.K+j], &wire.PutBlock{Blk: pblk, Data: parity[j], Sum: wire.Checksum(parity[j])})
		if err != nil {
			return fmt.Errorf("parity repair %v: %w", pblk, err)
		}
		if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
			return fmt.Errorf("parity repair %v: %s", pblk, a.Err)
		}
	}
	return nil
}

// HeartbeatMisses returns how many heartbeat sends from this OSD have ever
// failed to reach the MDS (kill-report accounting, tests).
func (o *OSD) HeartbeatMisses() uint64 { return o.beatMissTotal }

func (o *OSD) startHeartbeat(interval time.Duration) {
	o.c.Env.Go(fmt.Sprintf("heartbeat@%d", o.id), func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			if o.c.Fabric.Down(o.id) {
				return
			}
			// The MDS judges liveness by beat age, but send failures are not
			// silently dropped: they accumulate as a miss streak reported in
			// the next beat that gets through, so a flaky or partitioned link
			// shows up in TransitionStatus / kill-report accounting.
			if _, err := o.Call(p, mdsID, &wire.Heartbeat{From: o.id, Misses: o.beatMissStreak}); err != nil {
				o.beatMissStreak++
				o.beatMissTotal++
				continue
			}
			o.beatMissStreak = 0
		}
	})
}
