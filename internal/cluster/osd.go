package cluster

import (
	"fmt"
	"time"

	"tsue/internal/blockstore"
	"tsue/internal/device"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// OSD is one object storage server: a device, a block store, and the update
// engine. It implements update.Host.
type OSD struct {
	c      *Cluster
	id     wire.NodeID
	dev    *device.Disk
	store  *blockstore.Store
	engine update.Engine
}

func newOSD(c *Cluster, id wire.NodeID) *OSD {
	dev := device.New(c.Env, fmt.Sprintf("osd%d", id), c.Cfg.DeviceKind, c.Cfg.DeviceParams)
	return &OSD{
		c:     c,
		id:    id,
		dev:   dev,
		store: blockstore.New(dev, c.Cfg.BlockSize),
	}
}

// ---- update.Host ----

// NodeID returns this OSD's node ID.
func (o *OSD) NodeID() wire.NodeID { return o.id }

// Env returns the simulation environment.
func (o *OSD) Env() *sim.Env { return o.c.Env }

// Store returns this OSD's block store.
func (o *OSD) Store() *blockstore.Store { return o.store }

// Code returns the cluster's RS code.
func (o *OSD) Code() *rs.Code { return o.c.Code }

// Placement returns the stripe's hosting OSDs.
func (o *OSD) Placement(s wire.StripeID) []wire.NodeID { return o.c.Placement(s) }

// Peers returns all OSD node IDs in ring order.
func (o *OSD) Peers() []wire.NodeID { return o.c.osdIDs() }

// Alive reports whether a peer is reachable.
func (o *OSD) Alive(id wire.NodeID) bool { return !o.c.Fabric.Down(id) }

// Call performs an RPC to a peer node.
func (o *OSD) Call(p *sim.Proc, to wire.NodeID, req wire.Msg) (wire.Msg, error) {
	return o.c.Fabric.Call(p, o.id, to, req)
}

// Engine exposes the OSD's update engine (harness and tests).
func (o *OSD) Engine() update.Engine { return o.engine }

// Device exposes the OSD's disk (harness and tests).
func (o *OSD) Device() *device.Disk { return o.dev }

// ---- RPC dispatch ----

func (o *OSD) handle(p *sim.Proc, from wire.NodeID, m wire.Msg) wire.Msg {
	switch v := m.(type) {
	case *wire.PutBlock:
		if err := o.store.Put(p, v.Blk, v.Data); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.ReadBlock:
		var buf []byte
		var err error
		if v.Raw {
			buf, err = o.store.ReadRange(p, v.Blk, v.Off, int64(v.Size))
		} else {
			buf, err = o.engine.Read(p, v.Blk, v.Off, int64(v.Size))
		}
		if err != nil {
			return &wire.ReadResp{Err: err.Error()}
		}
		return &wire.ReadResp{Data: buf}
	case *wire.Update:
		if err := o.engine.Update(p, v.Blk, v.Off, v.Data); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.Drain:
		if err := o.engine.Drain(p); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	case *wire.RecoverBlock:
		if err := o.recoverBlock(p, v.Blk); err != nil {
			return &wire.Ack{Err: err.Error()}
		}
		return wire.OK
	default:
		if resp, handled := o.engine.Handle(p, from, m); handled {
			return resp
		}
		return &wire.Ack{Err: fmt.Sprintf("osd %d: unhandled message %v", o.id, m.Type())}
	}
}

// recoverBlock reconstructs one lost block from K surviving peers and stores
// it locally. Peer reads run in parallel — reconstruction bandwidth is bound
// by the K fan-in plus the local streaming write (Fig. 8b).
func (o *OSD) recoverBlock(p *sim.Proc, blk wire.BlockID) error {
	cfg := o.c.Cfg
	s := blk.StripeID()
	osds := o.c.Placement(s)
	// Choose K live sources, skipping the block being rebuilt.
	type src struct {
		idx  int
		node wire.NodeID
	}
	var sources []src
	for i := 0; i < cfg.K+cfg.M; i++ {
		if uint16(i) == blk.Index || o.c.Fabric.Down(osds[i]) {
			continue
		}
		sources = append(sources, src{idx: i, node: osds[i]})
		if len(sources) == cfg.K {
			break
		}
	}
	if len(sources) < cfg.K {
		return fmt.Errorf("recover %v: only %d surviving shards", blk, len(sources))
	}
	shards := make([][]byte, cfg.K+cfg.M)
	var firstErr error
	wg := sim.NewWaitGroup(o.c.Env)
	wg.Add(len(sources))
	for _, sc := range sources {
		sc := sc
		o.c.Env.Go("recover-read", func(hp *sim.Proc) {
			defer wg.Done()
			shardBlk := wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(sc.idx)}
			resp, err := o.Call(hp, sc.node, &wire.ReadBlock{Blk: shardBlk, Size: int32(cfg.BlockSize), Raw: true})
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			rr, ok := resp.(*wire.ReadResp)
			if !ok || rr.Err != "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("recover read %v: %v", shardBlk, resp)
				}
				return
			}
			shards[sc.idx] = rr.Data
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return firstErr
	}
	if err := o.c.Code.Reconstruct(shards); err != nil {
		return err
	}
	return o.store.Put(p, blk, shards[blk.Index])
}

func (o *OSD) startHeartbeat(interval time.Duration) {
	o.c.Env.Go(fmt.Sprintf("heartbeat@%d", o.id), func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			if o.c.Fabric.Down(o.id) {
				return
			}
			// Best effort; the MDS judges liveness by beat age.
			_, _ = o.Call(p, mdsID, &wire.Heartbeat{From: o.id})
		}
	})
}
