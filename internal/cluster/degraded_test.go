package cluster

// Randomized kill-update-recover-verify: a single client streams random
// updates and reads while an OSD is killed mid-stream and recovered
// CONCURRENTLY. Reads are verified against the reference at every step —
// including reads of lost blocks served by on-the-fly reconstruction plus
// journal overlay — and after the workload ends every stripe is drained,
// scrubbed (parity == re-encode) and read back byte-for-byte. Unit sizes
// are tiny relative to the update volume so the kill lands with recyclers
// mid-flight, which is exactly the state the settle barrier exists for.

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// degradedConfig mirrors the consistency-test shape: small blocks and units
// so sealing/recycling is constantly active.
func degradedConfig(engine string) Config {
	cfg := DefaultConfig()
	cfg.OSDs = 8
	cfg.K, cfg.M = 4, 2
	cfg.BlockSize = 16 << 10
	cfg.Engine = engine
	cfg.EngineOpts = update.Options{
		UnitSize:         24 << 10,
		MaxUnits:         4,
		Pools:            2,
		Copies:           2,
		UseDeltaLog:      true,
		DataLocality:     true,
		ParityLocality:   true,
		UseLogPool:       true,
		RecycleBatch:     2,
		RecycleThreshold: 48 << 10,
		PLRReserve:       8 << 10,
		CordBufferSize:   24 << 10,
	}
	return cfg
}

// runKillUpdateRecover drives ops random updates/reads, killing `victim` at
// op killAt and recovering it in a concurrent process under `mode` while
// the client keeps going. It returns the recovery report.
func runKillUpdateRecover(t *testing.T, engine string, mode RecoverMode, seed int64, ops, killAt int, mod func(*Config)) *RecoveryReport {
	t.Helper()
	cfg := degradedConfig(engine)
	if mod != nil {
		mod(&cfg)
	}
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	victim := wire.NodeID(3)

	var rep *RecoveryReport
	trigger, clientDone, allDone := false, false, false
	c.Env.Go("recovery", func(p *sim.Proc) {
		for !trigger {
			p.Sleep(200 * time.Microsecond)
		}
		var err error
		rep, err = c.Recover(p, victim, 2, mode, admin)
		if err != nil {
			t.Errorf("recover (%s): %v", mode, err)
		}
	})
	c.Env.Go("workload", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(seed))
		fileSize := 6 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < ops; i++ {
			if i == killAt {
				trigger = true
			}
			if rng.Intn(6) == 0 {
				off := int64(rng.Intn(int(fileSize - 512)))
				n := int64(1 + rng.Intn(512))
				got, err := cl.Read(p, ino, off, n)
				if err != nil {
					t.Errorf("read at op %d: %v", i, err)
					return
				}
				if !bytes.Equal(got, content[off:off+n]) {
					t.Errorf("stale read at op %d (off=%d len=%d)", i, off, n)
					return
				}
				continue
			}
			off := int64(rng.Intn(int(fileSize - 4096)))
			n := 1 + rng.Intn(4096)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			copy(content[off:], buf)
		}
		clientDone = true
		// Recovery may still be running (it owns some stripes' routing);
		// wait it out before the final verification.
		for rep == nil && !t.Failed() {
			p.Sleep(time.Millisecond)
		}
		if t.Failed() {
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		n, err := c.Scrub()
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if n != 6 {
			t.Errorf("scrubbed %d stripes, want 6", n)
			return
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after kill-update-recover")
			return
		}
		allDone = true
	})
	c.Env.Run(0)
	if t.Failed() {
		return rep
	}
	if !clientDone || !allDone || rep == nil {
		t.Fatalf("deadlock: clientDone=%v verified=%v recovered=%v", clientDone, allDone, rep != nil)
	}
	if rep.Blocks == 0 {
		t.Fatal("victim hosted no blocks?")
	}
	return rep
}

// TestKillUpdateRecoverInterleavedAllEngines is the headline degraded-mode
// invariant: every engine survives a mid-workload node kill with foreground
// updates and reads flowing through interleaved recovery, byte-for-byte.
func TestKillUpdateRecoverInterleavedAllEngines(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverInterleaved, 1009, 400, 150, nil)
			if t.Failed() || rep == nil {
				return
			}
			if engine == "tsue" && rep.ReplayedItems == 0 {
				t.Error("tsue interleaved recovery replayed nothing (DataLog seeds expected)")
			}
		})
	}
}

// TestKillUpdateRecoverDrainFirst covers the gated baseline protocol under
// the same concurrent workload: updates stall at the gate instead of
// journaling, and resume against the remapped placement.
func TestKillUpdateRecoverDrainFirst(t *testing.T) {
	for _, engine := range []string{"tsue", "parix", "pl"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverDrainFirst, 2027, 300, 120, nil)
			if t.Failed() || rep == nil {
				return
			}
			if rep.ReplayedItems != 0 {
				t.Errorf("drain-first replayed %d items, want 0", rep.ReplayedItems)
			}
			if rep.GatedTime <= 0 {
				t.Error("drain-first recovery reported no gated time")
			}
		})
	}
}

// TestKillUpdateRecoverLogReplay covers the gated log-replay protocol
// under the same concurrent workload: the settle barrier merges the
// minimum, reconstruction runs gated, and the failed node's DataLog
// replicas plus any in-flight journaled updates replay at cutover.
func TestKillUpdateRecoverLogReplay(t *testing.T) {
	for _, engine := range []string{"tsue", "cord", "fo"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverLogReplay, 3061, 300, 120, nil)
			if t.Failed() || rep == nil {
				return
			}
			if engine == "tsue" && rep.ReplayedItems == 0 {
				t.Error("tsue log-replay recovery replayed nothing")
			}
		})
	}
}

// TestKillUpdateRecoverNoDeltaLog drives TSUE's no-DeltaLog (HDD, §5.4)
// configuration through interleaved recovery: parity deltas fan out from
// the data holder at recycle time, so a dead data holder can leave live
// parities torn and its lost data blocks must take the full-stripe repair
// path (stripeRepair) to verify byte-for-byte.
func TestKillUpdateRecoverNoDeltaLog(t *testing.T) {
	rep := runKillUpdateRecover(t, "tsue", RecoverInterleaved, 4093, 400, 150,
		func(cfg *Config) { cfg.EngineOpts.UseDeltaLog = false })
	if t.Failed() || rep == nil {
		return
	}
	if rep.ReplayedItems == 0 {
		t.Error("no-DeltaLog tsue recovery replayed nothing")
	}
}

// TestDegradedReadLostBlock pins the surrogate read path in isolation: with
// a node down and recovery registered but reconstruction not yet done,
// reads of lost blocks must be served by on-the-fly reconstruction plus
// journal overlay, including updates issued while degraded.
func TestDegradedReadLostBlock(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(5))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		// Make raw stores consistent, then fail node 3 and register the
		// degraded route by hand — no rebuild yet.
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		victim := wire.NodeID(3)
		c.Fabric.SetDown(victim, true)
		if _, err := c.registerDegraded(p, victim, admin); err != nil {
			t.Error(err)
			return
		}
		// Updates and reads across the whole file: lost blocks must keep
		// serving, with read-your-writes through the journal overlay.
		for i := 0; i < 120; i++ {
			off := int64(rng.Intn(int(fileSize - 2048)))
			n := 1 + rng.Intn(2048)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Errorf("degraded update %d: %v", i, err)
				return
			}
			copy(content[off:], buf)
			got, err := cl.Read(p, ino, off, int64(n))
			if err != nil {
				t.Errorf("degraded read %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, buf) {
				t.Errorf("degraded read-your-writes violated at %d", i)
				return
			}
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("whole-file degraded read mismatch")
			return
		}
		// Finish the recovery by hand: rebuild, then cut over.
		rep := &RecoveryReport{}
		lost, err := c.rebuild(p, victim, 4, admin, rep, true)
		if err != nil {
			t.Error(err)
			return
		}
		c.resetStripeState(lost)
		c.closeGate()
		err = c.cutover(p, victim, admin, rep)
		c.openGate()
		if err != nil {
			t.Error(err)
			return
		}
		if rep.ReplayedItems == 0 {
			t.Error("no journal items replayed despite degraded updates")
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		got, err = cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after manual cutover")
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}
