package cluster

// Randomized kill-update-recover-verify: a single client streams random
// updates and reads while an OSD is killed mid-stream and recovered
// CONCURRENTLY. Reads are verified against the reference at every step —
// including reads of lost blocks served by on-the-fly reconstruction plus
// journal overlay — and after the workload ends every stripe is drained,
// scrubbed (parity == re-encode) and read back byte-for-byte. Unit sizes
// are tiny relative to the update volume so the kill lands with recyclers
// mid-flight, which is exactly the state the settle barrier exists for.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// degradedConfig mirrors the consistency-test shape: small blocks and units
// so sealing/recycling is constantly active.
func degradedConfig(engine string) Config {
	cfg := DefaultConfig()
	cfg.OSDs = 8
	cfg.K, cfg.M = 4, 2
	cfg.BlockSize = 16 << 10
	cfg.Engine = engine
	cfg.EngineOpts = update.Options{
		UnitSize:         24 << 10,
		MaxUnits:         4,
		Pools:            2,
		Copies:           2,
		UseDeltaLog:      true,
		DataLocality:     true,
		ParityLocality:   true,
		UseLogPool:       true,
		RecycleBatch:     2,
		RecycleThreshold: 48 << 10,
		PLRReserve:       8 << 10,
		CordBufferSize:   24 << 10,
	}
	return cfg
}

// killRecoverRun parameterizes one kill-update-recover-verify run.
type killRecoverRun struct {
	engine     string
	mode       RecoverMode
	seed       int64
	ops        int
	killAt     int
	files      int         // number of files (1 = the classic single-volume run)
	stripesPer int         // stripes per file
	victim     wire.NodeID // 0 = fail the most-loaded OSD
	mod        func(*Config)
}

// runKillRecover drives r.ops random updates/reads over r.files files,
// killing the victim at op r.killAt and recovering it in a concurrent
// process under r.mode while the client keeps going. Reads are verified
// against the per-file reference at every step, and the run ends with
// drain + scrub + byte-exact read-back of every file. It returns the
// recovery report.
//
// RNG-stream compatibility: with files == 1 no per-op file pick is drawn,
// so single-file seeds replay the exact op sequences the pinned regression
// tests were minimized against.
func runKillRecover(t *testing.T, r killRecoverRun) *RecoveryReport {
	t.Helper()
	cfg := degradedConfig(r.engine)
	if r.mod != nil {
		r.mod(&cfg)
	}
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	victim := r.victim

	var rep *RecoveryReport
	trigger, clientDone, allDone := false, false, false
	c.Env.Go("recovery", func(p *sim.Proc) {
		for !trigger {
			p.Sleep(200 * time.Microsecond)
		}
		var err error
		rep, err = c.Recover(p, victim, 2, r.mode, admin)
		if err != nil {
			t.Errorf("recover (%s/%s): %v", r.engine, r.mode, err)
		}
	})
	c.Env.Go("workload", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(r.seed))
		fileSize := int64(r.stripesPer) * c.StripeWidth()
		inos := make([]uint64, r.files)
		content := make([][]byte, r.files)
		for f := 0; f < r.files; f++ {
			content[f] = make([]byte, fileSize)
			rng.Read(content[f])
			ino, err := cl.Create(p, fmt.Sprintf("f%d", f), fileSize)
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.WriteFile(p, ino, content[f]); err != nil {
				t.Error(err)
				return
			}
			inos[f] = ino
		}
		if victim == 0 {
			// Fail the most-loaded OSD so the degraded set is representative.
			most := -1
			for _, osd := range c.OSDs {
				if n := osd.Store().Len(); n > most {
					most = n
					victim = osd.NodeID()
				}
			}
		}
		for i := 0; i < r.ops; i++ {
			if i == r.killAt {
				trigger = true
			}
			f := 0
			if r.files > 1 {
				f = rng.Intn(r.files)
			}
			if rng.Intn(6) == 0 {
				off := int64(rng.Intn(int(fileSize - 512)))
				n := int64(1 + rng.Intn(512))
				got, err := cl.Read(p, inos[f], off, n)
				if err != nil {
					t.Errorf("read f%d at op %d: %v", f, i, err)
					return
				}
				if !bytes.Equal(got, content[f][off:off+n]) {
					t.Errorf("stale read f%d at op %d (off=%d len=%d)", f, i, off, n)
					return
				}
				continue
			}
			off := int64(rng.Intn(int(fileSize - 4096)))
			n := 1 + rng.Intn(4096)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, inos[f], off, buf); err != nil {
				t.Errorf("update f%d op %d: %v", f, i, err)
				return
			}
			copy(content[f][off:], buf)
		}
		clientDone = true
		// Recovery may still be running (it owns some stripes' routing);
		// wait it out before the final verification.
		for rep == nil && !t.Failed() {
			p.Sleep(time.Millisecond)
		}
		if t.Failed() {
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		n, err := c.Scrub()
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if want := r.files * r.stripesPer; n != want {
			t.Errorf("scrubbed %d stripes, want %d", n, want)
			return
		}
		for f := 0; f < r.files; f++ {
			got, err := cl.Read(p, inos[f], 0, fileSize)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, content[f]) {
				t.Errorf("content mismatch in file %d after kill-update-recover", f)
				return
			}
		}
		allDone = true
	})
	c.Env.Run(0)
	if t.Failed() {
		return rep
	}
	if !clientDone || !allDone || rep == nil {
		t.Fatalf("deadlock: clientDone=%v verified=%v recovered=%v", clientDone, allDone, rep != nil)
	}
	if rep.Blocks == 0 {
		t.Fatal("victim hosted no blocks?")
	}
	return rep
}

// runKillUpdateRecover is the classic single-volume run: 6 stripes, one
// client stream, fixed victim.
func runKillUpdateRecover(t *testing.T, engine string, mode RecoverMode, seed int64, ops, killAt int, mod func(*Config)) *RecoveryReport {
	t.Helper()
	return runKillRecover(t, killRecoverRun{
		engine: engine, mode: mode, seed: seed, ops: ops, killAt: killAt,
		files: 1, stripesPer: 6, victim: wire.NodeID(3), mod: mod,
	})
}

// runKillUpdateRecoverMulti is the multi-file variant: `files` files of
// `stripesPer` stripes each, so the workload's stripes — and the failure's
// degraded set — spread across placement groups; the most-loaded OSD dies.
func runKillUpdateRecoverMulti(t *testing.T, engine string, mode RecoverMode, seed int64, ops, killAt, files, stripesPer int) *RecoveryReport {
	t.Helper()
	return runKillRecover(t, killRecoverRun{
		engine: engine, mode: mode, seed: seed, ops: ops, killAt: killAt,
		files: files, stripesPer: stripesPer,
	})
}

// TestKillUpdateRecoverMultiFile runs the randomized multi-file
// kill-update-recover-verify grid over PG-spread stripes: all six engines
// under every recovery protocol (interleaved only under -short).
func TestKillUpdateRecoverMultiFile(t *testing.T) {
	modes := []RecoverMode{RecoverInterleaved}
	if !testing.Short() {
		modes = []RecoverMode{RecoverInterleaved, RecoverDrainFirst, RecoverLogReplay}
	}
	for _, engine := range update.Names() {
		for _, mode := range modes {
			engine, mode := engine, mode
			t.Run(fmt.Sprintf("%s/%s", engine, mode), func(t *testing.T) {
				runKillUpdateRecoverMulti(t, engine, mode, 7001+int64(len(engine)), 400, 150, 3, 3)
			})
		}
	}
}

// TestKillUpdateRecoverInterleavedAllEngines is the headline degraded-mode
// invariant: every engine survives a mid-workload node kill with foreground
// updates and reads flowing through interleaved recovery, byte-for-byte.
func TestKillUpdateRecoverInterleavedAllEngines(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverInterleaved, 1009, 400, 150, nil)
			if t.Failed() || rep == nil {
				return
			}
			if engine == "tsue" && rep.ReplayedItems == 0 {
				t.Error("tsue interleaved recovery replayed nothing (DataLog seeds expected)")
			}
		})
	}
}

// TestKillUpdateRecoverDrainFirst covers the gated baseline protocol under
// the same concurrent workload: updates stall at the gate instead of
// journaling, and resume against the remapped placement.
func TestKillUpdateRecoverDrainFirst(t *testing.T) {
	for _, engine := range []string{"tsue", "parix", "pl"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverDrainFirst, 2027, 300, 120, nil)
			if t.Failed() || rep == nil {
				return
			}
			if rep.ReplayedItems != 0 {
				t.Errorf("drain-first replayed %d items, want 0", rep.ReplayedItems)
			}
			if rep.GatedTime <= 0 {
				t.Error("drain-first recovery reported no gated time")
			}
		})
	}
}

// TestKillUpdateRecoverLogReplay covers the gated log-replay protocol
// under the same concurrent workload: the settle barrier merges the
// minimum, reconstruction runs gated, and the failed node's DataLog
// replicas plus any in-flight journaled updates replay at cutover.
func TestKillUpdateRecoverLogReplay(t *testing.T) {
	for _, engine := range []string{"tsue", "cord", "fo"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rep := runKillUpdateRecover(t, engine, RecoverLogReplay, 3061, 300, 120, nil)
			if t.Failed() || rep == nil {
				return
			}
			if engine == "tsue" && rep.ReplayedItems == 0 {
				t.Error("tsue log-replay recovery replayed nothing")
			}
		})
	}
}

// TestKillUpdateRecoverNoDeltaLog drives TSUE's no-DeltaLog (HDD, §5.4)
// configuration through interleaved recovery: parity deltas fan out from
// the data holder at recycle time, so a dead data holder can leave live
// parities torn and its lost data blocks must take the full-stripe repair
// path (stripeRepair) to verify byte-for-byte.
func TestKillUpdateRecoverNoDeltaLog(t *testing.T) {
	rep := runKillUpdateRecover(t, "tsue", RecoverInterleaved, 4093, 400, 150,
		func(cfg *Config) { cfg.EngineOpts.UseDeltaLog = false })
	if t.Failed() || rep == nil {
		return
	}
	if rep.ReplayedItems == 0 {
		t.Error("no-DeltaLog tsue recovery replayed nothing")
	}
}

// TestDegradedReadLostBlock pins the surrogate read path in isolation: with
// a node down and recovery registered but reconstruction not yet done,
// reads of lost blocks must be served by on-the-fly reconstruction plus
// journal overlay, including updates issued while degraded.
func TestDegradedReadLostBlock(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(5))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		// Make raw stores consistent, then fail node 3 and register the
		// degraded route by hand — no rebuild yet.
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		victim := wire.NodeID(3)
		c.Fabric.SetDown(victim, true)
		if _, err := c.registerDegraded(p, victim, admin); err != nil {
			t.Error(err)
			return
		}
		// Updates and reads across the whole file: lost blocks must keep
		// serving, with read-your-writes through the journal overlay.
		for i := 0; i < 120; i++ {
			off := int64(rng.Intn(int(fileSize - 2048)))
			n := 1 + rng.Intn(2048)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Errorf("degraded update %d: %v", i, err)
				return
			}
			copy(content[off:], buf)
			got, err := cl.Read(p, ino, off, int64(n))
			if err != nil {
				t.Errorf("degraded read %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, buf) {
				t.Errorf("degraded read-your-writes violated at %d", i)
				return
			}
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("whole-file degraded read mismatch")
			return
		}
		// Finish the recovery by hand: rebuild, then cut over.
		rep := &RecoveryReport{}
		lost, err := c.rebuild(p, victim, 4, admin, rep, true)
		if err != nil {
			t.Error(err)
			return
		}
		c.resetStripeState(lost)
		c.closeGate()
		err = c.cutover(p, victim, admin, rep)
		c.openGate()
		if err != nil {
			t.Error(err)
			return
		}
		if rep.ReplayedItems == 0 {
			t.Error("no journal items replayed despite degraded updates")
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		got, err = cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after manual cutover")
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}
