package cluster

import (
	"time"

	"tsue/internal/placement"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// MDS is the metadata server: file namespace, the placement authority (it
// owns the CRUSH-like placement map clients and OSDs resolve stripe homes
// through), heartbeat tracking, and recovery orchestration (§4).
type MDS struct {
	c        *Cluster
	place    *placement.Map
	nextIno  uint64
	byName   map[string]uint64
	files    map[uint64]*fileMeta
	lastBeat map[wire.NodeID]time.Duration
}

func newMDS(c *Cluster, place *placement.Map) *MDS {
	return &MDS{
		c:        c,
		place:    place,
		nextIno:  1,
		byName:   make(map[string]uint64),
		files:    make(map[uint64]*fileMeta),
		lastBeat: make(map[wire.NodeID]time.Duration),
	}
}

// PlacementMap exposes the MDS-owned placement map (read-only authority for
// recovery targeting, degraded surrogate selection, and tests).
func (m *MDS) PlacementMap() *placement.Map { return m.place }

func (m *MDS) handle(p *sim.Proc, from wire.NodeID, msg wire.Msg) wire.Msg {
	switch v := msg.(type) {
	case *wire.CreateFile:
		if ino, ok := m.byName[v.Name]; ok {
			return &wire.CreateResp{Ino: ino}
		}
		ino := m.nextIno
		m.nextIno++
		m.byName[v.Name] = ino
		m.files[ino] = &fileMeta{ino: ino, name: v.Name, stripes: v.Stripes}
		return &wire.CreateResp{Ino: ino}
	case *wire.Lookup:
		fm, ok := m.files[v.Ino]
		if !ok || v.Stripe >= fm.stripes {
			return &wire.LookupResp{Err: "no such stripe"}
		}
		sid := wire.StripeID{Ino: v.Ino, Stripe: v.Stripe}
		return &wire.LookupResp{
			OSDs: m.c.Placement(sid),
			PG:   uint32(m.place.PGOf(sid)),
		}
	case *wire.PGLookup:
		mem, err := m.place.Members(int(v.PG), nil)
		if err != nil {
			return &wire.LookupResp{Err: err.Error()}
		}
		return &wire.LookupResp{OSDs: mem, PG: v.PG}
	case *wire.Heartbeat:
		m.lastBeat[v.From] = p.Now()
		return wire.OK
	}
	return &wire.Ack{Err: "mds: unhandled message " + msg.Type().String()}
}

// DeadOSDs returns OSDs whose last heartbeat is older than timeout at the
// given time (requires heartbeats enabled).
func (m *MDS) DeadOSDs(now, timeout time.Duration) []wire.NodeID {
	var dead []wire.NodeID
	for _, osd := range m.c.OSDs {
		if now-m.lastBeat[osd.id] > timeout {
			dead = append(dead, osd.id)
		}
	}
	return dead
}
