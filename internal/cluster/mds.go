package cluster

import (
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// MDS is the metadata server: file namespace, stripe placement authority,
// heartbeat tracking, and recovery orchestration (§4).
type MDS struct {
	c        *Cluster
	nextIno  uint64
	byName   map[string]uint64
	lastBeat map[wire.NodeID]time.Duration
}

func newMDS(c *Cluster) *MDS {
	return &MDS{
		c:        c,
		nextIno:  1,
		byName:   make(map[string]uint64),
		lastBeat: make(map[wire.NodeID]time.Duration),
	}
}

func (m *MDS) handle(p *sim.Proc, from wire.NodeID, msg wire.Msg) wire.Msg {
	switch v := msg.(type) {
	case *wire.CreateFile:
		if ino, ok := m.byName[v.Name]; ok {
			return &wire.CreateResp{Ino: ino}
		}
		ino := m.nextIno
		m.nextIno++
		m.byName[v.Name] = ino
		m.c.files[ino] = &fileMeta{ino: ino, name: v.Name, stripes: v.Stripes}
		return &wire.CreateResp{Ino: ino}
	case *wire.Lookup:
		fm, ok := m.c.files[v.Ino]
		if !ok || v.Stripe >= fm.stripes {
			return &wire.LookupResp{Err: "no such stripe"}
		}
		return &wire.LookupResp{OSDs: m.c.Placement(wire.StripeID{Ino: v.Ino, Stripe: v.Stripe})}
	case *wire.Heartbeat:
		m.lastBeat[v.From] = p.Now()
		return wire.OK
	}
	return &wire.Ack{Err: "mds: unhandled message " + msg.Type().String()}
}

// DeadOSDs returns OSDs whose last heartbeat is older than timeout at the
// given time (requires heartbeats enabled).
func (m *MDS) DeadOSDs(now, timeout time.Duration) []wire.NodeID {
	var dead []wire.NodeID
	for _, osd := range m.c.OSDs {
		if now-m.lastBeat[osd.id] > timeout {
			dead = append(dead, osd.id)
		}
	}
	return dead
}
