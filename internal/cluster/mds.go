package cluster

import (
	"fmt"
	"sort"
	"time"

	"tsue/internal/obs"
	"tsue/internal/placement"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// MDS is the metadata server: file namespace, the placement authority (it
// owns the epoch chain of CRUSH-like placement maps that clients and OSDs
// resolve stripe homes through), heartbeat tracking, and recovery
// orchestration (§4). During an online rebalance the MDS also owns the
// transition state: which staged-epoch PGs have cut over to their new
// homes, and which are inside a cutover fence right now.
type MDS struct {
	c      *Cluster
	epochs *placement.Epochs
	// committed is the epoch every PG resolves under outside a transition;
	// during one, PGs flip from committed to trans.next as they cut over.
	committed uint64
	// trans is the in-flight transition (nil when none).
	trans    *transition
	nextIno  uint64
	byName   map[string]uint64
	files    map[uint64]*fileMeta
	lastBeat map[wire.NodeID]time.Duration
	// beatMisses accumulates, per OSD, the missed-heartbeat counts OSDs
	// report once a beat gets through again (wire.Heartbeat.Misses) — the
	// partitioned-link signal surfaced in TransitionStatus and kill reports.
	// Each entry is a registry counter ("mds_beat_misses_osd<n>") so the
	// unified metrics snapshot carries the per-OSD miss accounting.
	beatMisses map[wire.NodeID]*obs.Counter
}

// PGStage enumerates one migrating PG's position in a placement
// transition's state machine: staged → copying → fenced → replaying →
// committed on the happy path, with aborted as the rollback terminal when
// an OSD death mid-transition resolves the PG back to the prior epoch.
type PGStage uint8

const (
	// StageStaged: the PG's moves are planned; no byte has been copied.
	StageStaged PGStage = iota
	// StageCopying: throttled bulk copy in flight, foreground I/O flowing.
	StageCopying
	// StageFenced: inside the cutover fence (settle, catch-up, extract) —
	// the update gate is closed and reads of the PG bounce.
	StageFenced
	// StageReplaying: the MDS has flipped the PG to the staged epoch and
	// extracted overlay records are replaying into the new homes.
	StageReplaying
	// StageCommitted: the PG is fully cut over (terminal).
	StageCommitted
	// StageAborted: the PG was rolled back to the prior epoch after an OSD
	// death (terminal; the block moves become physical remaps at commit).
	StageAborted
)

// String returns the stage's report name.
func (s PGStage) String() string {
	switch s {
	case StageStaged:
		return "staged"
	case StageCopying:
		return "copying"
	case StageFenced:
		return "fenced"
	case StageReplaying:
		return "replaying"
	case StageCommitted:
		return "committed"
	case StageAborted:
		return "aborted"
	}
	return fmt.Sprintf("PGStage(%d)", uint8(s))
}

// transition tracks one staged epoch mid-migration. Indexed by staged-epoch
// PG id (the cutover unit).
type transition struct {
	next    uint64
	cutover map[int]bool
	// fencing marks PGs whose cutover fence is active: client reads of
	// their blocks bounce (retryable) instead of observing the window where
	// overlay logs have been extracted but not yet replayed at the new
	// homes.
	fencing map[int]bool
	// stage is each migrating PG's state-machine position (PGs without
	// moves never appear: they flip for free at commit).
	stage map[int]PGStage
	// aborted marks PGs resolved by rollback: they keep resolving under the
	// committed epoch and their moves become physical remaps at commit.
	aborted map[int]bool
	// dead is the OSD (0 = none) whose mid-transition death the migration
	// driver must resolve; set by Cluster.MarkDead, observed by the mover
	// at every stage boundary.
	dead wire.NodeID
}

func newMDS(c *Cluster, place *placement.Map) *MDS {
	return &MDS{
		c:          c,
		epochs:     placement.NewEpochs(place),
		nextIno:    1,
		byName:     make(map[string]uint64),
		files:      make(map[uint64]*fileMeta),
		lastBeat:   make(map[wire.NodeID]time.Duration),
		beatMisses: make(map[wire.NodeID]*obs.Counter),
	}
}

// beatMiss returns (creating on first miss) the registry counter holding the
// accumulated missed-heartbeat count reported for one OSD.
func (m *MDS) beatMiss(id wire.NodeID) *obs.Counter {
	ctr, ok := m.beatMisses[id]
	if !ok {
		ctr = m.c.Obs.Reg.Counter(fmt.Sprintf("mds_beat_misses_osd%d", id))
		m.beatMisses[id] = ctr
	}
	return ctr
}

// PlacementMap exposes the committed placement map (read-only authority for
// recovery targeting, degraded surrogate selection, and tests). Recovery
// and transitions are mutually exclusive, so within a degraded window the
// committed map is THE map.
func (m *MDS) PlacementMap() *placement.Map { return m.epochs.At(m.committed) }

// Epochs exposes the epoch chain (rebalance planning, tests).
func (m *MDS) Epochs() *placement.Epochs { return m.epochs }

// CommittedEpoch returns the committed epoch number.
func (m *MDS) CommittedEpoch() uint64 { return m.committed }

// view returns the newest map version a client can learn from the MDS: the
// staged epoch during a transition, else the committed one.
func (m *MDS) view() uint64 {
	if m.trans != nil {
		return m.trans.next
	}
	return m.committed
}

// authEpochOf returns the authoritative epoch of the stripe's PG: the
// staged epoch once the PG has cut over, the committed epoch before.
func (m *MDS) authEpochOf(s wire.StripeID) uint64 {
	if t := m.trans; t != nil && t.cutover[m.epochs.At(t.next).PGOf(s)] {
		return t.next
	}
	return m.committed
}

// sortedInos returns every file inode in ascending order — the
// deterministic iteration order for whole-namespace sweeps (scrubs,
// transition diffs).
func (m *MDS) sortedInos() []uint64 {
	inos := make([]uint64, 0, len(m.files))
	for ino := range m.files {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}

// allStripes enumerates every stripe of every file in deterministic order —
// the population a transition's diff and minimal-remap bound cover.
func (m *MDS) allStripes() []wire.StripeID {
	var out []wire.StripeID
	for _, ino := range m.sortedInos() {
		for s := uint32(0); s < m.files[ino].stripes; s++ {
			out = append(out, wire.StripeID{Ino: ino, Stripe: s})
		}
	}
	return out
}

func (m *MDS) handle(p *sim.Proc, from wire.NodeID, msg wire.Msg) wire.Msg {
	switch v := msg.(type) {
	case *wire.CreateFile:
		if ino, ok := m.byName[v.Name]; ok {
			return &wire.CreateResp{Ino: ino}
		}
		ino := m.nextIno
		m.nextIno++
		m.byName[v.Name] = ino
		m.files[ino] = &fileMeta{ino: ino, name: v.Name, stripes: v.Stripes}
		return &wire.CreateResp{Ino: ino}
	case *wire.Lookup:
		fm, ok := m.files[v.Ino]
		if !ok || v.Stripe >= fm.stripes {
			return &wire.LookupResp{Err: "no such stripe"}
		}
		sid := wire.StripeID{Ino: v.Ino, Stripe: v.Stripe}
		return &wire.LookupResp{
			OSDs:  m.c.Placement(sid),
			PG:    uint32(m.PlacementMap().PGOf(sid)),
			Epoch: m.view(),
		}
	case *wire.PGLookup:
		mem, err := m.PlacementMap().Members(int(v.PG), nil)
		if err != nil {
			return &wire.LookupResp{Err: err.Error()}
		}
		return &wire.LookupResp{OSDs: mem, PG: v.PG, Epoch: m.view()}
	case *wire.EpochUpdate:
		return m.handleEpochUpdate(v)
	case *wire.PGCutover:
		t := m.trans
		if t == nil || v.Epoch != t.next {
			return &wire.Ack{Err: fmt.Sprintf("mds: cutover for epoch %d outside transition", v.Epoch)}
		}
		if t.aborted[int(v.PG)] {
			return &wire.Ack{Err: fmt.Sprintf("mds: pg %d already aborted", v.PG)}
		}
		t.cutover[int(v.PG)] = true
		t.stage[int(v.PG)] = StageReplaying
		return wire.OK
	case *wire.PGAbort:
		t := m.trans
		if t == nil || v.Epoch != t.next {
			return &wire.Ack{Err: fmt.Sprintf("mds: abort for epoch %d outside transition", v.Epoch)}
		}
		if t.cutover[int(v.PG)] {
			// Past the flip the staged map is authoritative for the PG;
			// rolling back would strand replayed state. The mover's policy
			// never aborts here (it finishes instead).
			return &wire.Ack{Err: fmt.Sprintf("mds: pg %d already cut over, cannot abort", v.PG)}
		}
		t.aborted[int(v.PG)] = true
		t.stage[int(v.PG)] = StageAborted
		return wire.OK
	case *wire.TransitionStatus:
		t := m.trans
		if t == nil {
			return &wire.TransitionStatusResp{Committed: m.committed, Beats: m.beatStatus()}
		}
		resp := &wire.TransitionStatusResp{InFlight: true, Staged: t.next, Committed: m.committed,
			Beats: m.beatStatus()}
		pgs := make([]int, 0, len(t.stage))
		for pg := range t.stage {
			pgs = append(pgs, pg)
		}
		sort.Ints(pgs)
		for _, pg := range pgs {
			resp.PGs = append(resp.PGs, wire.PGStatus{PG: uint32(pg), Stage: uint8(t.stage[pg])})
		}
		return resp
	case *wire.Heartbeat:
		m.lastBeat[v.From] = p.Now()
		if v.Misses > 0 {
			m.beatMiss(v.From).Add(uint64(v.Misses))
		}
		return wire.OK
	case *wire.AdmitOp:
		pol := m.c.Cfg.Admission
		if pol == nil || pol.Admit(p.Now(), m.c.admittedInFlight) {
			m.c.admitted.Inc()
			m.c.admittedInFlight++
			return wire.OK
		}
		m.c.rejected.Inc()
		return &wire.Ack{Err: errOverload}
	}
	return &wire.Ack{Err: "mds: unhandled message " + msg.Type().String()}
}

// handleEpochUpdate stages or commits a placement epoch. One transition at
// a time: staging while another is in flight is refused, as is committing
// with none.
func (m *MDS) handleEpochUpdate(v *wire.EpochUpdate) wire.Msg {
	switch v.Kind {
	case wire.EpochCommit:
		if m.trans == nil {
			return &wire.EpochResp{Err: "mds: no transition to commit"}
		}
		m.committed = m.trans.next
		m.trans = nil
		return &wire.EpochResp{Epoch: m.committed}
	case wire.EpochStageAddOSD, wire.EpochStageRemoveOSD, wire.EpochStageSplitPGs:
		if m.trans != nil {
			return &wire.EpochResp{Err: fmt.Sprintf("mds: transition to epoch %d already in flight", m.trans.next)}
		}
		var next uint64
		var err error
		switch v.Kind {
		case wire.EpochStageAddOSD:
			next, err = m.epochs.AddOSD(v.OSD)
		case wire.EpochStageRemoveOSD:
			next, err = m.epochs.RemoveOSD(v.OSD)
		case wire.EpochStageSplitPGs:
			next, err = m.epochs.SplitPGs(int(v.Factor))
		}
		if err != nil {
			return &wire.EpochResp{Err: err.Error()}
		}
		m.trans = &transition{
			next:    next,
			cutover: make(map[int]bool),
			fencing: make(map[int]bool),
			stage:   make(map[int]PGStage),
			aborted: make(map[int]bool),
		}
		return &wire.EpochResp{Epoch: next}
	}
	return &wire.EpochResp{Err: fmt.Sprintf("mds: unknown epoch op %d", v.Kind)}
}

// setPGStage advances a migrating PG's state-machine position. The mover
// drives the happy-path edges directly (control plane); the abort edge and
// the replaying edge arrive over the wire (PGAbort / PGCutover) so the MDS
// stays the single authority TransitionStatus and the resolution policy
// read.
func (m *MDS) setPGStage(pg int, s PGStage) {
	if t := m.trans; t != nil {
		t.stage[pg] = s
	}
}

// PGStageOf returns a migrating PG's transition stage; ok is false when no
// transition is in flight or the PG has no moves (tests, harness).
func (m *MDS) PGStageOf(pg int) (PGStage, bool) {
	t := m.trans
	if t == nil {
		return 0, false
	}
	s, ok := t.stage[pg]
	return s, ok
}

// beatStatus lists every OSD with reported heartbeat misses in ascending
// OSD order (the Beats section of a TransitionStatusResp).
func (m *MDS) beatStatus() []wire.BeatStatus {
	ids := make([]wire.NodeID, 0, len(m.beatMisses))
	for id := range m.beatMisses {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []wire.BeatStatus
	for _, id := range ids {
		out = append(out, wire.BeatStatus{OSD: id, Misses: m.beatMisses[id].Value()})
	}
	return out
}

// BeatMisses returns the accumulated missed-heartbeat count reported for
// one OSD (kill-report accounting, tests).
func (m *MDS) BeatMisses(id wire.NodeID) uint64 {
	ctr, ok := m.beatMisses[id]
	if !ok {
		return 0
	}
	return ctr.Value()
}

// DeadOSDs returns OSDs whose last heartbeat is older than timeout at the
// given time (requires heartbeats enabled).
func (m *MDS) DeadOSDs(now, timeout time.Duration) []wire.NodeID {
	var dead []wire.NodeID
	for _, osd := range m.c.OSDs {
		if now-m.lastBeat[osd.id] > timeout {
			dead = append(dead, osd.id)
		}
	}
	return dead
}
