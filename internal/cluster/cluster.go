// Package cluster implements ECFS, the erasure-coded cluster file system the
// TSUE paper builds and evaluates on (§4): a metadata server (MDS), object
// storage servers (OSDs) and clients, glued by the RPC fabric. Clients
// encode on the normal write path and route updates to the data block's OSD,
// where the configured update engine (FO/PL/PLR/PARIX/CoRD/TSUE) takes over.
package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"tsue/internal/device"
	"tsue/internal/netsim"
	"tsue/internal/obs"
	"tsue/internal/placement"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// Config describes a cluster.
type Config struct {
	OSDs         int
	K, M         int
	MatrixKind   rs.MatrixKind
	BlockSize    int64
	DeviceKind   device.Kind
	DeviceParams device.Params
	NetParams    netsim.Params
	Engine       string
	EngineOpts   update.Options
	// PGs is the placement-group count for the CRUSH-like stripe placement
	// (internal/placement). 0 defaults to 8 PGs per OSD.
	PGs int
	// HeartbeatInterval > 0 starts OSD→MDS heartbeats.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout marks an OSD dead when its beat is older than this.
	HeartbeatTimeout time.Duration
	// HedgeDelay > 0 arms hedged degraded reads: when an on-the-fly
	// reconstruction has not completed within this deadline (a straggling
	// survivor), the surrogate fires a second reconstruction from an
	// alternate K-of-N survivor set and the first valid result wins. 0
	// disables hedging.
	HedgeDelay time.Duration
	// Admission, when non-nil, makes every foreground client op ask the
	// MDS for admission first (wire.AdmitOp). Rejected ops surface to the
	// submitter as the retryable ErrOverload and are counted
	// (AdmissionStats). nil disables admission entirely — no AdmitOp
	// round trip is sent.
	Admission AdmissionPolicy
	// TraceSample > 0 enables sim-time distributed tracing: every n-th
	// foreground op starts a trace whose spans cover admission, RPC wire
	// time, handler service, journal persistence and device charges.
	// Tracing never changes simulated behavior: span contexts are always
	// encoded on the wire (traced or not), timestamps come from the sim
	// clock, and ids from monotone counters, so traces are deterministic
	// per seed and a traced run times out identically to an untraced one.
	// 0 disables tracing; the metrics registry is always on.
	TraceSample int
}

// DefaultConfig mirrors the paper's SSD testbed: 16 OSD nodes, RS(6,4)
// available via K/M, 1 MiB blocks, 25 Gb/s network.
func DefaultConfig() Config {
	return Config{
		OSDs:         16,
		K:            6,
		M:            4,
		MatrixKind:   rs.Vandermonde,
		BlockSize:    1 << 20,
		DeviceKind:   device.SSD,
		DeviceParams: device.SSDParams(),
		NetParams:    netsim.Ethernet25G(),
		Engine:       "tsue",
		EngineOpts:   update.DefaultOptions(),
		PGs:          128,
	}
}

// Node ID layout: MDS = 0, OSDs = 1..OSDs, clients allocated above.
const mdsID wire.NodeID = 0

// Cluster owns all simulated nodes of one experiment.
type Cluster struct {
	Env    *sim.Env
	Fabric *netsim.Fabric
	Cfg    Config
	Code   *rs.Code
	MDS    *MDS
	OSDs   []*OSD
	// Obs is the cluster's observability plane: the metrics registry every
	// cluster counter lives in, and the tracer (enabled by
	// Config.TraceSample) the fabric and device layers stamp spans on.
	Obs *obs.Obs

	nextClient wire.NodeID
	// byID indexes OSDs by node ID (IDs are no longer dense once expansion
	// adds nodes above the client range).
	byID map[wire.NodeID]*OSD
	// remap overrides block placement after recovery moved a block (and
	// pins an abort-resolved PG's blocks to their old homes at commit).
	remap map[wire.BlockID]wire.NodeID
	// orphans parks overlay records whose mid-transition replay target died
	// before they landed; registerDegraded seeds them into the surrogate
	// journals (see degraded.go).
	orphans map[wire.NodeID][]wire.ReplicaItem
	// cutMu serializes PG cutover fences across concurrent migrations.
	cutMu *sim.Resource
	// transHook, when set, observes every PG migration stage boundary
	// (SetTransHook; fault-injection and tests).
	transHook func(TransEvent)

	// degraded routes per failed node (see degraded.go); gateClosed fences
	// client updates and degraded reads during recovery consistency windows;
	// updatesInFlight counts normal-path updates past the gate and
	// surrOpsInFlight counts surrogate-side degraded ops past it
	// (fenceUpdates waits for both to land before a barrier runs, so no
	// client op can straddle a settle or a journal cutover).
	degraded        map[wire.NodeID]*degradedState
	gateClosed      bool
	gateCond        *sim.Cond
	updatesInFlight int
	surrOpsInFlight int

	// corruptions counts checksum-verification failures surfaced anywhere
	// in the cluster (OSD ingress, shard fan-in, client read verification,
	// at-rest scrub); registry counter "corruptions_detected". The chaos
	// grid asserts this equals the fabric's injected-corruption count:
	// nothing corrupt escapes silently.
	corruptions *obs.Counter

	// MDS admission accounting (see admission.go): admitted/rejected op
	// counts (registry counters "admission_admitted"/"admission_rejected")
	// and the admitted-but-uncompleted depth the queue-depth backpressure
	// check reads (mirrored as the "admission_inflight" gauge).
	admitted         *obs.Counter
	rejected         *obs.Counter
	admittedInFlight int

	// hedgeFired counts hedged degraded-read reconstructions launched after
	// the primary missed Config.HedgeDelay; hedgeWins those whose result
	// won the race. Registry counters "hedge_fired"/"hedge_wins".
	hedgeFired *obs.Counter
	hedgeWins  *obs.Counter
}

type fileMeta struct {
	ino     uint64
	name    string
	stripes uint32
}

// placementSeed fixes the placement map's hash epoch; determinism of the
// simulation requires it constant across runs.
const placementSeed = 0x75e5

// New builds a cluster in a fresh simulation environment.
func New(cfg Config) (*Cluster, error) {
	if cfg.OSDs < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 OSD, got %d", cfg.OSDs)
	}
	if cfg.OSDs < cfg.K+cfg.M {
		return nil, fmt.Errorf("cluster: %d OSDs cannot host RS(%d,%d) stripes", cfg.OSDs, cfg.K, cfg.M)
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("cluster: block size must be positive, got %d", cfg.BlockSize)
	}
	if cfg.PGs < 0 {
		return nil, fmt.Errorf("cluster: PG count must not be negative, got %d", cfg.PGs)
	}
	code, err := rs.New(cfg.K, cfg.M, cfg.MatrixKind)
	if err != nil {
		return nil, err
	}
	pgs := cfg.PGs
	if pgs == 0 {
		pgs = 8 * cfg.OSDs
	}
	ids := make([]wire.NodeID, cfg.OSDs)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	pmap, err := placement.New(placement.Config{
		PGs: pgs, Width: cfg.K + cfg.M, OSDs: ids, Seed: placementSeed,
	})
	if err != nil {
		return nil, err
	}
	env := sim.NewEnv()
	c := &Cluster{
		Env:        env,
		Fabric:     netsim.New(env, cfg.NetParams),
		Cfg:        cfg,
		Code:       code,
		byID:       make(map[wire.NodeID]*OSD),
		remap:      make(map[wire.BlockID]wire.NodeID),
		orphans:    make(map[wire.NodeID][]wire.ReplicaItem),
		degraded:   make(map[wire.NodeID]*degradedState),
		gateCond:   sim.NewCond(env),
		nextClient: wire.NodeID(cfg.OSDs + 1),
	}
	c.cutMu = env.NewResource("cutover-mu", 1)
	// The observability plane precedes every node so constructors can cache
	// registry counters; gauges are lazy thin reads of state owned elsewhere.
	c.Obs = obs.New(env, cfg.TraceSample)
	c.admitted = c.Obs.Reg.Counter("admission_admitted")
	c.rejected = c.Obs.Reg.Counter("admission_rejected")
	c.corruptions = c.Obs.Reg.Counter("corruptions_detected")
	c.hedgeFired = c.Obs.Reg.Counter("hedge_fired")
	c.hedgeWins = c.Obs.Reg.Counter("hedge_wins")
	c.Obs.Reg.GaugeFunc("admission_inflight", func() float64 { return float64(c.admittedInFlight) })
	c.Obs.Reg.GaugeFunc("sim_dropped_puts", func() float64 { return float64(env.DroppedPuts()) })
	c.Obs.Reg.GaugeFunc("net_corruptions_injected", func() float64 { return float64(c.Fabric.CorruptionsInjected()) })
	c.Fabric.SetTracer(c.Obs.Tracer)
	c.MDS = newMDS(c, pmap)
	c.Fabric.AddNode(mdsID, c.MDS.handle)
	for i := 0; i < cfg.OSDs; i++ {
		id := wire.NodeID(i + 1)
		osd := newOSD(c, id)
		c.OSDs = append(c.OSDs, osd)
		c.byID[id] = osd
		c.Fabric.AddNode(id, osd.handle)
	}
	// Engines spawn background recyclers, so they are created after the
	// fabric knows every node.
	for _, osd := range c.OSDs {
		eng, err := update.New(cfg.Engine, osd, cfg.EngineOpts)
		if err != nil {
			return nil, err
		}
		osd.engine = eng
	}
	if cfg.HeartbeatInterval > 0 {
		for _, osd := range c.OSDs {
			osd.startHeartbeat(cfg.HeartbeatInterval)
		}
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// osdIDs returns the OSD node IDs in ring order.
func (c *Cluster) osdIDs() []wire.NodeID {
	out := make([]wire.NodeID, len(c.OSDs))
	for i := range c.OSDs {
		out[i] = c.OSDs[i].id
	}
	return out
}

// OSDByID returns the OSD with the given node ID.
func (c *Cluster) OSDByID(id wire.NodeID) *OSD { return c.byID[id] }

// placeUnder resolves a stripe's hosts under the given epoch's map with
// recovery remaps overlaid (remaps are physical truth, valid in any view).
func (c *Cluster) placeUnder(s wire.StripeID, epoch uint64) []wire.NodeID {
	out, err := c.MDS.epochs.At(epoch).Place(s, nil)
	if err != nil {
		// Unreachable: New validates Width <= OSDs and a nil liveness view
		// cannot exhaust candidates.
		panic(fmt.Sprintf("cluster: placement of %v: %v", s, err))
	}
	for i := range out {
		blk := wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(i)}
		if over, ok := c.remap[blk]; ok {
			out[i] = over
		}
	}
	return out
}

// Placement returns the K+M OSD node IDs hosting a stripe, block i at
// element i, resolved through the MDS-owned placement map: (file, stripe)
// hashes to a placement group, the PG's straw-selected members host the
// blocks, and per-stripe role rotation spreads the parity indices across
// the group. During a rebalance transition the PG's authoritative epoch
// decides which map applies; recovery remaps take precedence either way.
func (c *Cluster) Placement(s wire.StripeID) []wire.NodeID {
	return c.placeUnder(s, c.MDS.authEpochOf(s))
}

// ResolveView resolves a stripe's placement as a client holding map view
// `view` would, returning the hosts and the epoch tag to carry on the
// request. Clients at the staged epoch resolve per PG through the cutover
// set (the MDS ships incremental PG flips with the map, as Ceph does with
// OSDMap incrementals); older clients resolve under their stale map and
// carry its epoch tag, which OSDs bounce with ErrStaleEpoch once the PG
// has moved on.
func (c *Cluster) ResolveView(s wire.StripeID, view uint64) ([]wire.NodeID, uint64) {
	m := c.MDS
	if newest := m.view(); view > newest {
		view = newest
	}
	ep := view
	if t := m.trans; t != nil && view >= t.next {
		ep = m.authEpochOf(s)
	} else if view > m.committed {
		ep = m.committed
	}
	return c.placeUnder(s, ep), ep
}

// epochOK reports whether a request tagged with the given epoch may touch
// the block: its routing view must match the block's PG's authoritative
// epoch exactly (older = routed by a retired map, newer = routed ahead of
// the PG's cutover).
func (c *Cluster) epochOK(blk wire.BlockID, epoch uint64) bool {
	return epoch == c.MDS.authEpochOf(blk.StripeID())
}

// migrationFenced reports whether the block's (staged-epoch) PG is inside
// a cutover fence right now — the window where its overlay logs are being
// extracted and replayed at the new homes, which reads must wait out.
func (c *Cluster) migrationFenced(blk wire.BlockID) bool {
	t := c.MDS.trans
	return t != nil && t.fencing[c.MDS.epochs.At(t.next).PGOf(blk.StripeID())]
}

// PG returns the placement group a stripe hashes to under the committed
// map.
func (c *Cluster) PG(s wire.StripeID) int { return c.MDS.PlacementMap().PGOf(s) }

// AddOSDNode creates and wires a brand-new OSD — fabric node, device,
// block store, update engine, heartbeat — WITHOUT putting it on the
// placement map: staging the epoch that adopts it is the rebalance
// engine's job (Expand). The node ID is allocated above every existing
// node, so OSD IDs are no longer dense once a cluster has grown.
func (c *Cluster) AddOSDNode() (*OSD, error) {
	id := c.nextClient
	c.nextClient++
	osd := newOSD(c, id)
	eng, err := update.New(c.Cfg.Engine, osd, c.Cfg.EngineOpts)
	if err != nil {
		return nil, err
	}
	osd.engine = eng
	c.OSDs = append(c.OSDs, osd)
	c.byID[id] = osd
	c.Fabric.AddNode(id, osd.handle)
	if c.Cfg.HeartbeatInterval > 0 {
		osd.startHeartbeat(c.Cfg.HeartbeatInterval)
	}
	return osd, nil
}

// StripeWidth returns bytes of file data per stripe.
func (c *Cluster) StripeWidth() int64 { return int64(c.Cfg.K) * c.Cfg.BlockSize }

// Locate maps a file offset to its data block and intra-block offset.
func (c *Cluster) Locate(ino uint64, off int64) (wire.BlockID, int64) {
	sw := c.StripeWidth()
	stripe := uint32(off / sw)
	rem := off % sw
	idx := uint16(rem / c.Cfg.BlockSize)
	return wire.BlockID{Ino: ino, Stripe: stripe, Index: idx}, rem % c.Cfg.BlockSize
}

// NewClient allocates a client node.
func (c *Cluster) NewClient() *Client {
	id := c.nextClient
	c.nextClient++
	c.Fabric.AddNode(id, nil)
	return &Client{c: c, id: id}
}

// DrainAll repeatedly drains every live OSD until a full round reports
// clean everywhere; recycling forwards work to peers, so one round is not
// enough (DataLog→DeltaLog→ParityLog spans up to three nodes).
func (c *Cluster) DrainAll(p *sim.Proc, via *Client) error {
	for round := 0; round < 12; round++ {
		dirty := false
		var firstErr error
		wg := sim.NewWaitGroup(c.Env)
		for _, osd := range c.OSDs {
			if c.Fabric.Down(osd.id) {
				continue
			}
			if osd.engine.Dirty() {
				dirty = true
			}
			osd := osd
			wg.Add(1)
			c.Env.Go("drain", func(hp *sim.Proc) {
				defer wg.Done()
				resp, err := c.Fabric.Call(hp, via.id, osd.id, &wire.Drain{})
				if err == nil {
					if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
						err = fmt.Errorf("%s", a.Err)
					}
				}
				// A node that dies mid-round is no longer this drain's
				// problem: its logs are recovery's to replay.
				if errors.Is(err, netsim.ErrNodeDown) {
					err = nil
				}
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("drain %d: %w", osd.id, err)
				}
			})
		}
		wg.Wait(p)
		if firstErr != nil {
			return firstErr
		}
		if !dirty {
			return nil
		}
	}
	return fmt.Errorf("cluster: drain did not converge")
}

// Scrub verifies every stripe: parity must equal the re-encoded data. It
// inspects stores directly (no simulated cost) and should run after
// DrainAll. It returns the number of stripes checked.
func (c *Cluster) Scrub() (int, error) {
	checked := 0
	// Sweep inodes in sorted order so the partial count and first error
	// surfaced on a bad tree are deterministic.
	for _, ino := range c.MDS.sortedInos() {
		fm := c.MDS.files[ino]
		for s := uint32(0); s < fm.stripes; s++ {
			sid := wire.StripeID{Ino: ino, Stripe: s}
			osds := c.Placement(sid)
			data := make([][]byte, c.Cfg.K)
			parity := make([][]byte, c.Cfg.M)
			for i := 0; i < c.Cfg.K+c.Cfg.M; i++ {
				blk := wire.BlockID{Ino: ino, Stripe: s, Index: uint16(i)}
				host := c.OSDByID(osds[i])
				buf, ok := host.store.Peek(blk)
				if !ok {
					return checked, fmt.Errorf("scrub: %v missing on node %d", blk, osds[i])
				}
				if i < c.Cfg.K {
					data[i] = buf
				} else {
					parity[i-c.Cfg.K] = buf
				}
			}
			ok, err := c.Code.Verify(data, parity)
			if err != nil {
				return checked, err
			}
			if !ok {
				return checked, fmt.Errorf("scrub: stripe %v inconsistent", sid)
			}
			checked++
		}
	}
	return checked, nil
}

// noteCorruption records one detected checksum failure (any verify point).
func (c *Cluster) noteCorruption() { c.corruptions.Inc() }

// CorruptionsDetected returns how many checksum-verification failures the
// cluster has surfaced — compared against Fabric.CorruptionsInjected to
// prove injected corruption never escapes detection.
func (c *Cluster) CorruptionsDetected() int64 { return int64(c.corruptions.Value()) }

// HedgeStats reads the hedged degraded-read counters: fired is how many
// hedge reconstructions launched (primary missed the HedgeDelay deadline),
// wins how many of those produced the winning result.
func (c *Cluster) HedgeStats() (fired, wins int64) {
	return int64(c.hedgeFired.Value()), int64(c.hedgeWins.Value())
}

// ScrubRepair is the repairing scrub run after a chaos window heals: it
// re-checks every stored shard against its at-rest checksum, treats
// checksum-failing (or missing) shards as erasures and reconstructs them
// from the surviving shards when no more than M are bad, then re-encodes
// any stripe whose parity disagrees with its data and rewrites the stale
// parity copies in place. Data shards are authoritative for the
// parity-tear repair: a message dropped inside an engine's propagation
// (flap window, partition) leaves data applied and parity stale, never the
// reverse. Like Scrub it inspects stores directly and requires every host
// live; it returns the repaired block and stripe counts.
func (c *Cluster) ScrubRepair(p *sim.Proc) (blocks, stripes int, err error) {
	cfg := c.Cfg
	// Repair in sorted inode order: the repair writes and the counts
	// returned on early error must not depend on map iteration order.
	for _, ino := range c.MDS.sortedInos() {
		fm := c.MDS.files[ino]
		for s := uint32(0); s < fm.stripes; s++ {
			sid := wire.StripeID{Ino: ino, Stripe: s}
			osds := c.Placement(sid)
			shards := make([][]byte, cfg.K+cfg.M)
			var bad []int
			for i := range shards {
				blk := wire.BlockID{Ino: ino, Stripe: s, Index: uint16(i)}
				host := c.OSDByID(osds[i])
				if c.Fabric.Down(osds[i]) {
					return blocks, stripes, fmt.Errorf("scrub-repair: host %d of %v down", osds[i], blk)
				}
				buf, ok := host.store.Peek(blk)
				if !ok || !host.store.VerifyStored(blk) {
					if ok {
						c.noteCorruption()
					}
					bad = append(bad, i)
					continue
				}
				shards[i] = append([]byte(nil), buf...)
			}
			repaired := false
			if len(bad) > 0 {
				if len(bad) > cfg.M {
					return blocks, stripes, fmt.Errorf("scrub-repair: stripe %v has %d bad shards > M=%d", sid, len(bad), cfg.M)
				}
				if err := c.Code.Reconstruct(shards); err != nil {
					return blocks, stripes, fmt.Errorf("scrub-repair: stripe %v: %w", sid, err)
				}
				for _, i := range bad {
					blk := wire.BlockID{Ino: ino, Stripe: s, Index: uint16(i)}
					if err := c.OSDByID(osds[i]).store.Rewrite(p, blk, shards[i]); err != nil {
						return blocks, stripes, err
					}
					blocks++
				}
				repaired = true
			}
			ok, verr := c.Code.Verify(shards[:cfg.K], shards[cfg.K:])
			if verr != nil {
				return blocks, stripes, verr
			}
			if !ok {
				parity := make([][]byte, cfg.M)
				for j := range parity {
					parity[j] = make([]byte, cfg.BlockSize)
				}
				if err := c.Code.Encode(shards[:cfg.K], parity); err != nil {
					return blocks, stripes, err
				}
				for j := 0; j < cfg.M; j++ {
					if bytes.Equal(parity[j], shards[cfg.K+j]) {
						continue
					}
					blk := wire.BlockID{Ino: ino, Stripe: s, Index: uint16(cfg.K + j)}
					if err := c.OSDByID(osds[cfg.K+j]).store.Rewrite(p, blk, parity[j]); err != nil {
						return blocks, stripes, err
					}
					blocks++
				}
				repaired = true
			}
			if repaired {
				stripes++
			}
		}
	}
	return blocks, stripes, nil
}

// resetRecoverySources zeroes the per-OSD reconstruction-source counters
// (run at the start of every Recover so the report covers one window).
func (c *Cluster) resetRecoverySources() {
	for _, osd := range c.OSDs {
		osd.recSrcReadBytes = 0
	}
}

// recoverySources snapshots the per-OSD reconstruction-source bytes
// (nonzero entries only).
func (c *Cluster) recoverySources() map[wire.NodeID]int64 {
	out := make(map[wire.NodeID]int64)
	for _, osd := range c.OSDs {
		if osd.recSrcReadBytes > 0 {
			out[osd.id] = osd.recSrcReadBytes
		}
	}
	return out
}

// JournalQuorumStats aggregates the degraded-journal quorum replication
// traffic across the cluster: sentMsgs/sentBytes are acked JournalReplica
// sends by surrogates, heldMsgs/heldBytes the records persisted by quorum
// holders (they differ only when a window is cut mid-ack). Harness
// quorum-traffic counters.
func (c *Cluster) JournalQuorumStats() (sentMsgs, sentBytes, heldMsgs, heldBytes int64) {
	for _, osd := range c.OSDs {
		sentMsgs += osd.jrSentMsgs
		sentBytes += osd.jrSentBytes
		heldMsgs += osd.jrHeldMsgs
		heldBytes += osd.jrHeldBytes
	}
	return
}

// SurrogatesOf returns the distinct surrogate OSDs serving a failed node's
// degraded window, in deterministic order (tests, harness kill targeting).
func (c *Cluster) SurrogatesOf(failed wire.NodeID) []wire.NodeID {
	st := c.degraded[failed]
	if st == nil {
		return nil
	}
	return append([]wire.NodeID(nil), st.surrogates...)
}

// JournalHoldersOf returns the fixed quorum holder set of one surrogate in
// a failed node's degraded window (tests, harness kill targeting).
func (c *Cluster) JournalHoldersOf(failed, surrogate wire.NodeID) []wire.NodeID {
	st := c.degraded[failed]
	if st == nil {
		return nil
	}
	return append([]wire.NodeID(nil), st.holders[surrogate]...)
}

// BeginDegraded opens a degraded window for a node without rebuilding it:
// the node comes off the fabric, degraded routes publish under a brief
// fence, and the settle barrier restores raw stripe consistency — then
// foreground I/O flows degraded (updates journal on the surrogates) until
// a later Recover(failed) rebuilds and cuts over. Recover detects the
// pre-opened window and skips re-registration. Multi-death tests and
// harness scenarios use this to inject surrogate/holder deaths at
// controlled points between the failure and its recovery.
func (c *Cluster) BeginDegraded(p *sim.Proc, failed wire.NodeID, via *Client) error {
	if t := c.MDS.trans; t != nil {
		return fmt.Errorf("cluster: cannot open degraded window for node %d while epoch %d is staged: %w",
			failed, t.next, ErrTransitionInProgress)
	}
	if c.degraded[failed] != nil {
		return fmt.Errorf("cluster: node %d already degraded", failed)
	}
	c.Fabric.SetDown(failed, true)
	c.fenceUpdates(p)
	_, err := c.registerDegraded(p, failed, via)
	if err == nil {
		err = c.SettleAll(p, via, failed)
	}
	c.openGate()
	return err
}

// JournalBytesPerOSD returns surrogate-journal bytes appended per OSD
// (nonzero entries only) — the surrogate load spread the placement
// experiment reports.
func (c *Cluster) JournalBytesPerOSD() map[wire.NodeID]int64 {
	out := make(map[wire.NodeID]int64)
	for _, osd := range c.OSDs {
		if n := osd.JournalBytes(); n > 0 {
			out[osd.id] = n
		}
	}
	return out
}

// DeviceStats aggregates all OSD device counters.
func (c *Cluster) DeviceStats() device.Stats {
	var total device.Stats
	for _, osd := range c.OSDs {
		total.Add(osd.dev.Stats())
	}
	return total
}

// ResetStats zeroes device and network counters (e.g. after preload).
func (c *Cluster) ResetStats() {
	for _, osd := range c.OSDs {
		osd.dev.ResetStats()
	}
	c.Fabric.ResetStats()
}

// MemBytes sums engine log memory across OSDs.
func (c *Cluster) MemBytes() int64 {
	var n int64
	for _, osd := range c.OSDs {
		n += osd.engine.MemBytes()
	}
	return n
}

// PeakMemBytes sums engine peak log memory across OSDs.
func (c *Cluster) PeakMemBytes() int64 {
	var n int64
	for _, osd := range c.OSDs {
		n += osd.engine.PeakMemBytes()
	}
	return n
}

// Residency merges per-layer residency stats across OSDs (TSUE only).
func (c *Cluster) Residency() map[string]update.LayerStats {
	out := make(map[string]update.LayerStats)
	for _, osd := range c.OSDs {
		rr, ok := osd.engine.(update.ResidencyReporter)
		if !ok {
			return nil
		}
		for layer, st := range rr.Residency() {
			cur := out[layer]
			cur.AppendN += st.AppendN
			cur.AppendTime += st.AppendTime
			cur.BufferN += st.BufferN
			cur.BufferTime += st.BufferTime
			cur.RecycleN += st.RecycleN
			cur.RecycleTime += st.RecycleTime
			cur.Units += st.Units
			out[layer] = cur
		}
	}
	return out
}
