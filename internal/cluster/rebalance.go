package cluster

// Online rebalance: the cluster-side mechanics under internal/rebalance's
// scheduler. A placement transition migrates each affected PG in three
// phases:
//
//  1. Bulk copy, foreground flowing: the new home pulls each moving
//     block's raw bytes (wire.MigrateBlock), paced by the shared throttle.
//     The source's per-block write version is recorded first, so anything
//     dirtied afterwards is caught below.
//  2. Fenced cutover (serialized cluster-wide): close the update gate,
//     settle engines (in-place schemes drain their whole log debt — the
//     paper's recovery-consistency argument applied to migration; TSUE
//     keeps its replayable active DataLog), re-copy blocks whose raw
//     content changed since phase 1, then extract the pure-overlay log
//     records of the moving blocks from their old homes
//     (wire.MigrateLog).
//  3. Flip the PG at the MDS (wire.PGCutover) and replay the extracted
//     records into the new homes through the engines' replay hook — the
//     log follows the block. Old copies, stale recovery remaps and
//     per-stripe engine baselines are retired, the fence opens, and
//     stale-epoch clients bounce once to re-resolve.
//
// Recovery and rebalance are mutually exclusive: Expand refuses while any
// node is degraded and Recover refuses during a transition.

import (
	"fmt"

	"tsue/internal/placement"
	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Expand grows the cluster by one OSD online: it wires a fresh node into
// the fabric, stages the adopting placement epoch at the MDS, migrates
// every moving PG under the rebalance scheduler, and commits the epoch.
// Foreground I/O keeps flowing except inside each PG's brief cutover
// fence. It returns the migration report and the new OSD's node ID.
//
// Error contract: a failure mid-migration leaves the cluster stuck in the
// transition — the staged epoch stays, the new node stays wired, and both
// Recover and further Expands refuse. Like the engines' internal pipeline
// invariants (which panic), a failed migration is fatal to the run: the
// cluster must be discarded. Aborting/rolling back a partially cut-over
// transition is future work (ROADMAP: rebalance × failure composition).
func (c *Cluster) Expand(p *sim.Proc, via *Client, rcfg rebalance.Config) (*rebalance.Report, wire.NodeID, error) {
	if len(c.degraded) > 0 {
		return nil, 0, fmt.Errorf("cluster: cannot expand while a node is degraded")
	}
	if t := c.MDS.trans; t != nil {
		return nil, 0, fmt.Errorf("cluster: placement transition to epoch %d already in flight", t.next)
	}
	osd, err := c.AddOSDNode()
	if err != nil {
		return nil, 0, err
	}
	next, err := c.stageEpoch(p, via, &wire.EpochUpdate{Kind: wire.EpochStageAddOSD, OSD: osd.id})
	if err != nil {
		return nil, osd.id, err
	}
	rep, err := c.migrate(p, via, next, rcfg)
	if err != nil {
		return nil, osd.id, err
	}
	return rep, osd.id, nil
}

// SplitPGs re-epochs the cluster with factor× the placement groups — a
// movement-free transition (child PGs inherit their parents' members) that
// buys finer granularity for later expansions. It still runs the full
// stage→migrate→commit protocol so epoch bookkeeping and client views
// advance uniformly.
func (c *Cluster) SplitPGs(p *sim.Proc, via *Client, factor int, rcfg rebalance.Config) (*rebalance.Report, error) {
	if len(c.degraded) > 0 {
		return nil, fmt.Errorf("cluster: cannot re-epoch while a node is degraded")
	}
	if t := c.MDS.trans; t != nil {
		return nil, fmt.Errorf("cluster: placement transition to epoch %d already in flight", t.next)
	}
	next, err := c.stageEpoch(p, via, &wire.EpochUpdate{Kind: wire.EpochStageSplitPGs, Factor: uint32(factor)})
	if err != nil {
		return nil, err
	}
	return c.migrate(p, via, next, rcfg)
}

// stageEpoch sends the staging request to the MDS and returns the staged
// epoch number.
func (c *Cluster) stageEpoch(p *sim.Proc, via *Client, req *wire.EpochUpdate) (uint64, error) {
	resp, err := c.Fabric.Call(p, via.id, mdsID, req)
	if err != nil {
		return 0, err
	}
	er, ok := resp.(*wire.EpochResp)
	if !ok {
		return 0, fmt.Errorf("cluster: stage epoch: unexpected response %T", resp)
	}
	if er.Err != "" {
		return 0, fmt.Errorf("cluster: stage epoch: %s", er.Err)
	}
	return er.Epoch, nil
}

// migrate plans and executes the committed→next migration, then commits
// the epoch at the MDS.
func (c *Cluster) migrate(p *sim.Proc, via *Client, next uint64, rcfg rebalance.Config) (*rebalance.Report, error) {
	m := c.MDS
	stripes := m.allStripes()
	moves := placement.Diff(m.epochs.At(next-1), m.epochs.At(next), stripes)
	// Overlay physical remaps from past recoveries: a block's true source
	// is wherever it lives now, and a move whose destination already hosts
	// it is a no-op.
	kept := moves[:0]
	for _, mv := range moves {
		if over, ok := c.remap[mv.Blk]; ok {
			mv.From = over
		}
		if mv.From != mv.To {
			kept = append(kept, mv)
		}
	}
	plan := rebalance.BuildPlan(next-1, next, kept, m.epochs.MinimalBound(next, stripes))
	rep, err := rebalance.Run(c.Env, p, plan, rcfg, &pgMover{c: c, via: via})
	if err != nil {
		// No rollback: extracted overlay may already be gone from old homes
		// and some PGs already cut over. See Expand's error contract.
		return nil, fmt.Errorf("cluster: migration to epoch %d failed mid-transition (cluster must be discarded): %w", next, err)
	}
	// Commit: every moving PG has cut over; the remaining PGs' placement is
	// identical under both maps (or they hold no blocks), so the flip needs
	// no fence. In-flight requests tagged with the retiring epoch bounce
	// once and re-resolve.
	resp, err := c.Fabric.Call(p, via.id, mdsID, &wire.EpochUpdate{Kind: wire.EpochCommit})
	if err != nil {
		return nil, err
	}
	if er, ok := resp.(*wire.EpochResp); !ok || er.Err != "" {
		return nil, fmt.Errorf("cluster: commit epoch: %v", resp)
	}
	return rep, nil
}

// pgMover is the cluster's rebalance.Mover.
type pgMover struct {
	c   *Cluster
	via *Client
}

// MigratePG migrates one PG's moving blocks end to end (see the package
// comment for the phase protocol).
func (pm *pgMover) MigratePG(p *sim.Proc, pg rebalance.PGMoves, th *rebalance.Throttle) (rebalance.PGResult, error) {
	c := pm.c
	res := rebalance.PGResult{PG: pg.PG}
	blockSize := c.Cfg.BlockSize

	// Phase 1: throttled bulk copy with foreground I/O flowing. Versions
	// are read immediately before each pull so any later write is caught by
	// the fenced catch-up.
	vers := make([]uint64, len(pg.Moves))
	for i, mv := range pg.Moves {
		th.Take(p, blockSize)
		vers[i] = c.OSDByID(mv.From).store.Version(mv.Blk)
		if err := pm.copyBlock(p, mv); err != nil {
			return res, err
		}
		res.CopiedBlocks++
		res.CopiedBytes += blockSize
	}

	// Phase 2+3: fenced cutover, serialized across concurrent migrations.
	c.cutMu.Acquire(p)
	defer c.cutMu.Release()
	stallStart := p.Now()
	c.fenceUpdates(p)
	t := c.MDS.trans
	t.fencing[pg.PG] = true
	err := pm.cutoverLocked(p, pg, vers, &res)
	t.fencing[pg.PG] = false
	c.openGate()
	res.Stall = p.Now() - stallStart
	return res, err
}

// cutoverLocked runs the fenced part of a PG migration: settle, catch-up
// re-copy, overlay extraction, MDS cutover, replay, retirement. The caller
// holds the cutover mutex and the closed update gate.
func (pm *pgMover) cutoverLocked(p *sim.Proc, pg rebalance.PGMoves, vers []uint64, res *rebalance.PGResult) error {
	c := pm.c
	// Settle: bring raw shards to stripe consistency with minimal merging.
	// In-place engines drain their whole debt here (the "in-place schemes
	// drain" half of the cutover); TSUE retains its replayable overlay.
	if err := c.SettleAll(p, pm.via, 0); err != nil {
		return err
	}
	// Catch-up: re-copy blocks whose raw bytes changed since phase 1 —
	// foreground RMWs for in-place engines, recycle/settle-applied log
	// merges for log-structured ones.
	for i, mv := range pg.Moves {
		if c.OSDByID(mv.From).store.Version(mv.Blk) == vers[i] {
			continue
		}
		if err := pm.copyBlock(p, mv); err != nil {
			return err
		}
		res.RecopiedBlocks++
		res.CopiedBytes += c.Cfg.BlockSize
	}
	// Extract the moving blocks' replayable overlay records from their old
	// homes (empty for in-place engines). Reads of this PG are fenced, so
	// the extract→replay gap is unobservable.
	items := make([][]wire.ReplicaItem, len(pg.Moves))
	for i, mv := range pg.Moves {
		got, err := pm.extractLog(p, mv)
		if err != nil {
			return err
		}
		items[i] = got
	}
	// Flip the PG: from here the new homes are authoritative, so the
	// replays below route (and their engines' later recycles resolve)
	// under the new map.
	if err := pm.cutover(p, pg.PG); err != nil {
		return err
	}
	for i, mv := range pg.Moves {
		for _, it := range items[i] {
			if err := pm.replay(p, mv.To, it); err != nil {
				return err
			}
			res.ReplayedItems++
			res.ReplayedBytes += int64(len(it.Data))
		}
	}
	// Retire the old copies, stale recovery remaps, and per-stripe engine
	// baselines (PARIX's orig coverage) the move invalidated. Control-plane
	// metadata; the FTL sees the dropped blocks as trimmed space.
	blks := make([]wire.BlockID, 0, len(pg.Moves))
	for _, mv := range pg.Moves {
		c.OSDByID(mv.From).store.Delete(mv.Blk)
		delete(c.remap, mv.Blk)
		blks = append(blks, mv.Blk)
	}
	c.resetStripeState(blks)
	return nil
}

func (pm *pgMover) copyBlock(p *sim.Proc, mv placement.Move) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mv.To, &wire.MigrateBlock{Blk: mv.Blk, From: mv.From})
	if err != nil {
		return fmt.Errorf("migrate copy %v: %w", mv.Blk, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("migrate copy %v: %s", mv.Blk, a.Err)
	}
	return nil
}

func (pm *pgMover) extractLog(p *sim.Proc, mv placement.Move) ([]wire.ReplicaItem, error) {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mv.From, &wire.MigrateLog{Blk: mv.Blk})
	if err != nil {
		return nil, fmt.Errorf("migrate log %v: %w", mv.Blk, err)
	}
	rr, ok := resp.(*wire.ReplicaResp)
	if !ok {
		return nil, fmt.Errorf("migrate log %v: unexpected response %T", mv.Blk, resp)
	}
	return rr.Items, nil
}

func (pm *pgMover) replay(p *sim.Proc, to wire.NodeID, it wire.ReplicaItem) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, to, &wire.ReplayUpdate{Blk: it.Blk, Off: it.Off, Data: it.Data})
	if err != nil {
		return fmt.Errorf("migrate replay %v: %w", it.Blk, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("migrate replay %v: %s", it.Blk, a.Err)
	}
	return nil
}

func (pm *pgMover) cutover(p *sim.Proc, pg int) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mdsID, &wire.PGCutover{PG: uint32(pg), Epoch: pm.c.MDS.trans.next})
	if err != nil {
		return fmt.Errorf("pg %d cutover: %w", pg, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("pg %d cutover: %s", pg, a.Err)
	}
	return nil
}
