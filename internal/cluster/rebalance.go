package cluster

// Online rebalance: the cluster-side mechanics under internal/rebalance's
// scheduler. A placement transition migrates each affected PG in three
// phases:
//
//  1. Bulk copy, foreground flowing: the new home pulls each moving
//     block's raw bytes (wire.MigrateBlock), paced by the shared throttle.
//     The source's per-block write version is recorded first, so anything
//     dirtied afterwards is caught below.
//  2. Fenced cutover (serialized cluster-wide): close the update gate,
//     settle engines (in-place schemes drain their whole log debt — the
//     paper's recovery-consistency argument applied to migration; TSUE
//     keeps its replayable active DataLog), re-copy blocks whose raw
//     content changed since phase 1, then extract the pure-overlay log
//     records of the moving blocks from their old homes
//     (wire.MigrateLog).
//  3. Flip the PG at the MDS (wire.PGCutover) and replay the extracted
//     records into the new homes through the engines' replay hook — the
//     log follows the block. Old copies, stale recovery remaps and
//     per-stripe engine baselines are retired, the fence opens, and
//     stale-epoch clients bounce once to re-resolve.
//
// Each migrating PG walks an explicit state machine the MDS owns
// (staged → copying → fenced → replaying → committed), and an OSD death
// mid-transition (Cluster.Kill / MarkDead) is a first-class event: every
// in-flight PG resolves to ABORT (roll back to the prior epoch — retire
// partial copies, restore extracted overlay to the old homes, re-open
// foreground I/O against them) or FINISH (complete the remaining copies
// from surviving stripe peers by reconstruction, then cut over) against
// the liveness view, per the policy in MigratePG. After resolution the
// staged epoch still commits — aborted PGs' moves become physical remaps,
// exactly like recovery's placement overrides — and Recover then proceeds
// normally under the settled epoch.
//
// Recovery and an ongoing rebalance remain mutually exclusive entry
// points: Expand refuses while any node is degraded and Recover refuses
// during a transition — but a death during a transition no longer wedges
// the cluster; Kill resolves the transition first and recovery follows.

import (
	"fmt"

	"tsue/internal/placement"
	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Expand grows the cluster by one OSD online: it wires a fresh node into
// the fabric, stages the adopting placement epoch at the MDS, migrates
// every moving PG under the rebalance scheduler, and commits the epoch.
// Foreground I/O keeps flowing except inside each PG's brief cutover
// fence. It returns the migration report and the new OSD's node ID.
//
// Failure contract: an OSD death mid-migration (published via Kill or
// MarkDead) is resolved per PG — abort or finish — and Expand still
// returns a committed epoch plus the per-PG outcomes in the report. Only
// unexpected protocol errors remain fatal to the run.
func (c *Cluster) Expand(p *sim.Proc, via *Client, rcfg rebalance.Config) (*rebalance.Report, wire.NodeID, error) {
	if len(c.degraded) > 0 {
		return nil, 0, fmt.Errorf("cluster: cannot expand: %w", ErrClusterDegraded)
	}
	if t := c.MDS.trans; t != nil {
		return nil, 0, fmt.Errorf("cluster: cannot expand to a new epoch (epoch %d staged): %w", t.next, ErrTransitionInProgress)
	}
	osd, err := c.AddOSDNode()
	if err != nil {
		return nil, 0, err
	}
	next, err := c.stageEpoch(p, via, &wire.EpochUpdate{Kind: wire.EpochStageAddOSD, OSD: osd.id})
	if err != nil {
		return nil, osd.id, err
	}
	rep, err := c.migrate(p, via, next, rcfg)
	if err != nil {
		return nil, osd.id, err
	}
	return rep, osd.id, nil
}

// SplitPGs re-epochs the cluster with factor× the placement groups — a
// movement-free transition (child PGs inherit their parents' members) that
// buys finer granularity for later expansions. It still runs the full
// stage→migrate→commit protocol so epoch bookkeeping and client views
// advance uniformly.
func (c *Cluster) SplitPGs(p *sim.Proc, via *Client, factor int, rcfg rebalance.Config) (*rebalance.Report, error) {
	if len(c.degraded) > 0 {
		return nil, fmt.Errorf("cluster: cannot re-epoch: %w", ErrClusterDegraded)
	}
	if t := c.MDS.trans; t != nil {
		return nil, fmt.Errorf("cluster: cannot re-epoch (epoch %d staged): %w", t.next, ErrTransitionInProgress)
	}
	next, err := c.stageEpoch(p, via, &wire.EpochUpdate{Kind: wire.EpochStageSplitPGs, Factor: uint32(factor)})
	if err != nil {
		return nil, err
	}
	return c.migrate(p, via, next, rcfg)
}

// stageEpoch sends the staging request to the MDS and returns the staged
// epoch number.
func (c *Cluster) stageEpoch(p *sim.Proc, via *Client, req *wire.EpochUpdate) (uint64, error) {
	resp, err := c.Fabric.Call(p, via.id, mdsID, req)
	if err != nil {
		return 0, err
	}
	er, ok := resp.(*wire.EpochResp)
	if !ok {
		return 0, fmt.Errorf("cluster: stage epoch: unexpected response %T", resp)
	}
	if er.Err != "" {
		return 0, fmt.Errorf("cluster: stage epoch: %s", er.Err)
	}
	return er.Epoch, nil
}

// migrate plans and executes the committed→next migration, then commits
// the epoch at the MDS. Aborted PGs (death resolution) stay physically at
// their old homes: their moves become recovery-style placement remaps an
// instant before the commit, so the new map plus the overlay resolves
// every block to where its bytes really are.
func (c *Cluster) migrate(p *sim.Proc, via *Client, next uint64, rcfg rebalance.Config) (*rebalance.Report, error) {
	m := c.MDS
	stripes := m.allStripes()
	moves := placement.Diff(m.epochs.At(next-1), m.epochs.At(next), stripes)
	// Overlay physical remaps from past recoveries: a block's true source
	// is wherever it lives now, and a move whose destination already hosts
	// it is a no-op.
	kept := moves[:0]
	for _, mv := range moves {
		if over, ok := c.remap[mv.Blk]; ok {
			mv.From = over
		}
		if mv.From != mv.To {
			kept = append(kept, mv)
		}
	}
	plan := rebalance.BuildPlan(next-1, next, kept, m.epochs.MinimalBound(next, stripes))
	for _, pg := range plan.PGs {
		m.setPGStage(pg.PG, StageStaged)
		c.fireTransEvent(pg, StageStaged, 0)
	}
	rep, err := rebalance.Run(c.Env, p, plan, rcfg, &pgMover{c: c, via: via})
	if err != nil {
		// Unexpected protocol failure (death resolution never errors the
		// scheduler): the staged epoch stays and the cluster must be
		// discarded, like an engine pipeline invariant violation.
		return nil, fmt.Errorf("cluster: migration to epoch %d failed mid-transition (cluster must be discarded): %w", next, err)
	}
	// Aborted PGs' blocks stayed at their old homes; pin them there under
	// the about-to-commit map. Installing the remaps before the commit RPC
	// is glitch-free: until the commit lands these PGs still resolve under
	// the old epoch, where the remap repeats what the map already says.
	for _, res := range rep.Outcomes {
		if res.Outcome != rebalance.OutcomeAborted {
			continue
		}
		for _, pg := range plan.PGs {
			if pg.PG != res.PG {
				continue
			}
			for _, mv := range pg.Moves {
				c.remap[mv.Blk] = mv.From
			}
		}
	}
	// Commit: every moving PG has cut over or aborted; the remaining PGs'
	// placement is identical under both maps (or they hold no blocks), so
	// the flip needs no fence. In-flight requests tagged with the retiring
	// epoch bounce once and re-resolve.
	resp, err := c.Fabric.Call(p, via.id, mdsID, &wire.EpochUpdate{Kind: wire.EpochCommit})
	if err != nil {
		return nil, err
	}
	if er, ok := resp.(*wire.EpochResp); !ok || er.Err != "" {
		return nil, fmt.Errorf("cluster: commit epoch: %v", resp)
	}
	return rep, nil
}

// TransEvent is one observation point of a PG's migration, delivered to
// the transition hook: the PG, the stage just entered (Copied > 0 marks
// phase-1 copy progress within StageCopying), and the PG's planned moves.
type TransEvent struct {
	PG     int
	Stage  PGStage
	Copied int
	Moves  []placement.Move
}

// SetTransHook installs an instrumentation hook invoked synchronously at
// every stage boundary of every migrating PG (tests and fault injection:
// the kill-at-stage grid marks an OSD dead from inside the migration
// driver, which is what makes the grid deterministic). The hook must not
// block; MarkDead is safe to call from it, Kill is not.
func (c *Cluster) SetTransHook(fn func(TransEvent)) { c.transHook = fn }

func (c *Cluster) fireTransEvent(pg rebalance.PGMoves, stage PGStage, copied int) {
	if c.transHook != nil {
		c.transHook(TransEvent{PG: pg.PG, Stage: stage, Copied: copied, Moves: pg.Moves})
	}
}

// transDead returns the OSD whose death the in-flight transition must
// resolve (0 = none).
func (c *Cluster) transDead() wire.NodeID {
	if t := c.MDS.trans; t != nil {
		return t.dead
	}
	return 0
}

// MarkDead takes an OSD off the fabric and, when a placement transition is
// in flight, publishes the death to the migration driver, which resolves
// every in-flight PG (abort or finish) against the new liveness view.
// Non-blocking — safe to call from instrumentation hooks inside the driver
// itself; Kill is the blocking entry point that also waits the resolution
// out.
func (c *Cluster) MarkDead(failed wire.NodeID) {
	c.Fabric.SetDown(failed, true)
	if t := c.MDS.trans; t != nil {
		t.dead = failed
	}
}

// pgRole classifies the dead node's relationship to one PG's moves.
func pgRole(pg rebalance.PGMoves, dead wire.NodeID) (src, dst bool) {
	if dead == 0 {
		return false, false
	}
	for _, mv := range pg.Moves {
		if mv.From == dead {
			src = true
		}
		if mv.To == dead {
			dst = true
		}
	}
	return src, dst
}

// pgMover is the cluster's rebalance.Mover.
type pgMover struct {
	c   *Cluster
	via *Client
}

// MigratePG migrates one PG's moving blocks end to end (see the package
// comment for the phase protocol), resolving a mid-flight OSD death to an
// abort or a finish:
//
//   - pre-fence (staged / copying), dead node is a source or destination
//     of this PG: ABORT — the copy is early, rolling back is cheap;
//   - inside the fence, destination dead before the MDS flip: ABORT with
//     extracted overlay restored to the (live) old homes;
//   - inside the fence otherwise: FINISH — copies whose source died
//     complete by K-shard reconstruction (with the recovery repair's
//     re-encode when the dead source may have torn the stripe), their
//     unrecycled overlay replays from its reliability replicas;
//   - after the flip (replaying): FINISH — overlay aimed at a dead new
//     home is stashed for the failure's degraded-journal machinery.
//
// A dead bystander never aborts a PG: its migration completes normally.
func (pm *pgMover) MigratePG(p *sim.Proc, pg rebalance.PGMoves, th *rebalance.Throttle) (rebalance.PGResult, error) {
	c := pm.c
	res := rebalance.PGResult{PG: pg.PG, Outcome: rebalance.OutcomeCommitted}
	blockSize := c.Cfg.BlockSize
	c.MDS.setPGStage(pg.PG, StageCopying)
	c.fireTransEvent(pg, StageCopying, 0)

	// Phase 1: throttled bulk copy with foreground I/O flowing. Versions
	// are read immediately before each pull so any later write is caught by
	// the fenced catch-up.
	vers := make([]uint64, len(pg.Moves))
	for i, mv := range pg.Moves {
		if src, dst := pgRole(pg, c.transDead()); src || dst {
			return pm.abortPG(p, pg, nil, &res)
		}
		th.Take(p, blockSize)
		vers[i] = c.OSDByID(mv.From).store.Version(mv.Blk)
		if err := pm.copyBlock(p, mv); err != nil {
			if nodeDownErr(err) && (c.Fabric.Down(mv.From) || c.Fabric.Down(mv.To)) {
				// The copy's endpoint died under us: early abort.
				return pm.abortPG(p, pg, nil, &res)
			}
			return res, err
		}
		res.CopiedBlocks++
		res.CopiedBytes += blockSize
		c.fireTransEvent(pg, StageCopying, i+1)
	}

	// Phase 2+3: fenced cutover, serialized across concurrent migrations.
	c.cutMu.Acquire(p)
	defer c.cutMu.Release()
	stallStart := p.Now()
	c.fenceUpdates(p)
	t := c.MDS.trans
	t.fencing[pg.PG] = true
	c.MDS.setPGStage(pg.PG, StageFenced)
	c.fireTransEvent(pg, StageFenced, 0)
	err := pm.cutoverLocked(p, pg, vers, &res)
	t.fencing[pg.PG] = false
	c.openGate()
	res.Stall = p.Now() - stallStart
	if err == nil && res.Outcome != rebalance.OutcomeAborted {
		c.MDS.setPGStage(pg.PG, StageCommitted)
		c.fireTransEvent(pg, StageCommitted, 0)
	}
	return res, err
}

// cutoverLocked runs the fenced part of a PG migration: settle, catch-up
// re-copy (reconstruction for dead sources), overlay extraction, MDS
// cutover, replay, retirement — resolving deaths per the policy in
// MigratePG's comment. The caller holds the cutover mutex and the closed
// update gate.
func (pm *pgMover) cutoverLocked(p *sim.Proc, pg rebalance.PGMoves, vers []uint64, res *rebalance.PGResult) error {
	c := pm.c
	// Settle: bring raw shards to stripe consistency with minimal merging.
	// In-place engines drain their whole debt here (the "in-place schemes
	// drain" half of the cutover); TSUE retains its replayable overlay —
	// scoped by the dead node (if any), whose stripes' raw shards feed the
	// finish policy's reconstructions and must flush like recovery's.
	if err := c.SettleAll(p, pm.via, c.transDead()); err != nil {
		return err
	}
	dead := c.transDead()
	if _, dst := pgRole(pg, dead); dst {
		// The PG's new home died before the flip: roll back.
		return pm.abortLocked(p, pg, nil, res)
	}
	srcDead, _ := pgRole(pg, dead)
	if srcDead {
		res.Outcome = rebalance.OutcomeFinished
	}
	// Finish-policy reconstructions and version-checked catch-up re-copies
	// run as rounds until quiescent: both yield on RPCs, so a source can
	// die between (or during) passes — invalidating an earlier skip — and
	// a re-encode repair writes live parities in place, possibly dirtying
	// another move's already-checked source. One round handles the common
	// case; the loop closes the races.
	//
	//   - dead source: the copy completes from K surviving stripe peers,
	//     re-encoding the parity set when the death may have torn it
	//     (cluster.stripeRepair); a phase-1 raw copy whose version never
	//     moved is kept (its overlay replays below).
	//   - live source: re-copy when the raw bytes changed since phase 1 —
	//     foreground RMWs for in-place engines, recycle/settle-applied log
	//     merges for log-structured ones.
	settled := make([]bool, len(pg.Moves)) // dead-source move fully handled
	for round := 0; ; round++ {
		changed := false
		for i, mv := range pg.Moves {
			if !c.Fabric.Down(mv.From) || settled[i] {
				continue
			}
			reenc := c.stripeRepair(mv.Blk)
			if !reenc && c.OSDByID(mv.From).store.Version(mv.Blk) == vers[i] {
				settled[i] = true
				continue
			}
			if err := pm.reconstructBlock(p, mv, reenc); err != nil {
				return err
			}
			settled[i] = true
			changed = true
			res.Reconstructed++
			res.CopiedBytes += c.Cfg.BlockSize
			res.Outcome = rebalance.OutcomeFinished
		}
		for i, mv := range pg.Moves {
			if c.Fabric.Down(mv.From) {
				continue // dead-source pass owns it (this round or the next)
			}
			cur := c.OSDByID(mv.From).store.Version(mv.Blk)
			if cur == vers[i] {
				continue
			}
			if err := pm.copyBlock(p, mv); err != nil {
				if nodeDownErr(err) && c.Fabric.Down(mv.From) {
					changed = true // died mid-copy; next round reconstructs
					continue
				}
				return err
			}
			vers[i] = cur
			changed = true
			res.RecopiedBlocks++
			res.CopiedBytes += c.Cfg.BlockSize
		}
		if !changed {
			break
		}
		if round >= 8 {
			return fmt.Errorf("pg %d catch-up did not converge", pg.PG)
		}
	}
	// Extract the moving blocks' replayable overlay records from their old
	// homes (empty for in-place engines). Reads of this PG are fenced, so
	// the extract→replay gap is unobservable. A home that died mid-loop is
	// skipped: its unrecycled overlay lives on in reliability replicas.
	items := make([][]wire.ReplicaItem, len(pg.Moves))
	for i, mv := range pg.Moves {
		if c.Fabric.Down(mv.From) {
			continue
		}
		got, err := pm.extractLog(p, mv)
		if err != nil {
			if nodeDownErr(err) {
				continue
			}
			return err
		}
		items[i] = got
	}
	// Re-check the liveness view at the point of no return.
	dead = c.transDead()
	if srcNow, dstNow := pgRole(pg, dead); dstNow {
		// New home died during the fence, before the flip: roll back,
		// restoring whatever overlay was already extracted.
		return pm.abortLocked(p, pg, items, res)
	} else if srcNow {
		res.Outcome = rebalance.OutcomeFinished
		srcDead = true
	}
	// Flip the PG: from here the new homes are authoritative, so the
	// replays below route (and their engines' later recycles resolve)
	// under the new map.
	if err := pm.cutover(p, pg.PG); err != nil {
		return err
	}
	c.fireTransEvent(pg, StageReplaying, 0)
	for i, mv := range pg.Moves {
		for _, it := range items[i] {
			if err := pm.replay(p, mv.To, it); err != nil {
				if nodeDownErr(err) && c.Fabric.Down(mv.To) {
					// The new home died after the flip: the record cannot
					// land now, but it must not be lost — stash it for the
					// degraded-journal machinery (registerDegraded seeds it
					// into the surrogate journal, cutover replays it).
					c.stashOrphans(mv.To, items[i])
					res.Outcome = rebalance.OutcomeFinished
					break
				}
				return err
			}
			res.ReplayedItems++
			res.ReplayedBytes += int64(len(it.Data))
		}
	}
	if srcDead {
		// The dead source's unrecycled overlay for the moving blocks never
		// reached the extraction above; replay it from its reliability
		// replicas now, so reads at the new homes are exact the moment the
		// fence opens instead of waiting for the failure's recovery.
		// (Recovery later replays the same replicas again through the
		// surrogate journal — idempotent, and ordered before any degraded
		// update.)
		if err := pm.replayDeadSourceOverlay(p, pg, dead, res); err != nil {
			return err
		}
	}
	// Retire the old copies, stale recovery remaps, and per-stripe engine
	// baselines (PARIX's orig coverage) the move invalidated. Control-plane
	// metadata; the FTL sees the dropped blocks as trimmed space. Deleting
	// a dead old home's entry keeps recovery's lost-block enumeration
	// honest: the block is not lost, it moved.
	blks := make([]wire.BlockID, 0, len(pg.Moves))
	for _, mv := range pg.Moves {
		c.OSDByID(mv.From).store.Delete(mv.Blk)
		delete(c.remap, mv.Blk)
		blks = append(blks, mv.Blk)
	}
	c.resetStripeState(blks)
	return nil
}

// abortPG rolls one PG's migration back before its fence: partial copies
// at the staged-epoch destinations are retired (they were never reachable
// by clients) and the MDS records the abort, so the PG keeps resolving
// under the committed epoch and its moves become physical remaps at
// commit. The restored items parameter is nil pre-fence.
func (pm *pgMover) abortPG(p *sim.Proc, pg rebalance.PGMoves, items [][]wire.ReplicaItem, res *rebalance.PGResult) (rebalance.PGResult, error) {
	err := pm.abortLocked(p, pg, items, res)
	return *res, err
}

// abortLocked is the shared abort path (pre-fence callers simply hold no
// fence): restore any extracted overlay to its (live) old home, retire the
// destination copies, and record the abort at the MDS.
func (pm *pgMover) abortLocked(p *sim.Proc, pg rebalance.PGMoves, items [][]wire.ReplicaItem, res *rebalance.PGResult) error {
	c := pm.c
	for i, mv := range pg.Moves {
		if items == nil || len(items[i]) == 0 {
			continue
		}
		if c.Fabric.Down(mv.From) {
			// Unreachable by policy: extraction only succeeds against live
			// homes and a dead source forces finish, not abort. Stash
			// rather than lose, should the policy ever change.
			c.stashOrphans(mv.From, items[i])
			continue
		}
		for _, it := range items[i] {
			if err := pm.replay(p, mv.From, it); err != nil {
				return fmt.Errorf("abort pg %d: restore %v: %w", pg.PG, it.Blk, err)
			}
			res.RestoredItems++
		}
	}
	for _, mv := range pg.Moves {
		// Direct store surgery: a live destination's partial copy is
		// unreachable garbage, a dead one's must not resurface as a "lost
		// block" when that node is later recovered.
		c.OSDByID(mv.To).store.Delete(mv.Blk)
	}
	if err := pm.pgAbort(p, pg.PG); err != nil {
		return err
	}
	res.Outcome = rebalance.OutcomeAborted
	return nil
}

// replayDeadSourceOverlay fetches the dead node's replicated unrecycled
// DataLog items, filters them to this PG's moving blocks, and replays them
// at the new homes in original append order — the log follows the block
// through the failure, via the replica path instead of extraction.
func (pm *pgMover) replayDeadSourceOverlay(p *sim.Proc, pg rebalance.PGMoves, dead wire.NodeID, res *rebalance.PGResult) error {
	c := pm.c
	items, err := c.fetchReplicaItems(p, dead, pm.via)
	if err != nil {
		return err
	}
	dest := make(map[wire.BlockID]wire.NodeID, len(pg.Moves))
	for _, mv := range pg.Moves {
		if mv.From == dead {
			dest[mv.Blk] = mv.To
		}
	}
	for _, it := range items {
		to, ok := dest[it.Blk]
		if !ok {
			continue
		}
		if c.Fabric.Down(to) {
			c.stashOrphans(to, []wire.ReplicaItem{it})
			continue
		}
		if err := pm.replay(p, to, it); err != nil {
			return fmt.Errorf("dead-source overlay %v: %w", it.Blk, err)
		}
		res.ReplayedItems++
		res.ReplayedBytes += int64(len(it.Data))
	}
	return nil
}

func (pm *pgMover) copyBlock(p *sim.Proc, mv placement.Move) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mv.To, &wire.MigrateBlock{Blk: mv.Blk, From: mv.From})
	if err != nil {
		return fmt.Errorf("migrate copy %v: %w", mv.Blk, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("migrate copy %v: %s", mv.Blk, a.Err)
	}
	return nil
}

// reconstructBlock asks the new home to rebuild the moving block from K
// surviving stripe peers instead of pulling it from its dead old home —
// the finish policy's copy path. It must run under the fence, after the
// settle barrier.
func (pm *pgMover) reconstructBlock(p *sim.Proc, mv placement.Move, reencode bool) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mv.To,
		&wire.MigrateBlock{Blk: mv.Blk, From: mv.From, Reconstruct: true, Reencode: reencode})
	if err != nil {
		return fmt.Errorf("migrate reconstruct %v: %w", mv.Blk, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("migrate reconstruct %v: %s", mv.Blk, a.Err)
	}
	return nil
}

func (pm *pgMover) extractLog(p *sim.Proc, mv placement.Move) ([]wire.ReplicaItem, error) {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mv.From, &wire.MigrateLog{Blk: mv.Blk})
	if err != nil {
		return nil, fmt.Errorf("migrate log %v: %w", mv.Blk, err)
	}
	rr, ok := resp.(*wire.ReplicaResp)
	if !ok {
		return nil, fmt.Errorf("migrate log %v: unexpected response %T", mv.Blk, resp)
	}
	return rr.Items, nil
}

func (pm *pgMover) replay(p *sim.Proc, to wire.NodeID, it wire.ReplicaItem) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, to, &wire.ReplayUpdate{Blk: it.Blk, Off: it.Off, Data: it.Data, Sum: wire.Checksum(it.Data)})
	if err != nil {
		return fmt.Errorf("migrate replay %v: %w", it.Blk, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("migrate replay %v: %s", it.Blk, a.Err)
	}
	return nil
}

func (pm *pgMover) cutover(p *sim.Proc, pg int) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mdsID, &wire.PGCutover{PG: uint32(pg), Epoch: pm.c.MDS.trans.next})
	if err != nil {
		return fmt.Errorf("pg %d cutover: %w", pg, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("pg %d cutover: %s", pg, a.Err)
	}
	return nil
}

func (pm *pgMover) pgAbort(p *sim.Proc, pg int) error {
	resp, err := pm.c.Fabric.Call(p, pm.via.id, mdsID, &wire.PGAbort{PG: uint32(pg), Epoch: pm.c.MDS.trans.next})
	if err != nil {
		return fmt.Errorf("pg %d abort: %w", pg, err)
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("pg %d abort: %s", pg, a.Err)
	}
	return nil
}
