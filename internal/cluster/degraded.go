package cluster

// Degraded-mode operation (§4.2 and the Fig. 8b scenario): while an OSD is
// failed — and, under interleaved recovery, while its blocks are being
// rebuilt — clients keep reading and updating the stripes it hosted.
//
// Every stripe whose placement includes the failed node is *degraded*.
// Client I/O to a degraded stripe is routed to a designated *surrogate* OSD
// (the next live node in ring order after the failed one):
//
//   - updates are journaled in a replicated log on the surrogate (the
//     degraded-update journal, a resurrected DataLog seeded with the failed
//     node's replicated unrecycled items) and replayed through the engines'
//     normal update path once the stripe is rebuilt;
//   - reads of a lost block reconstruct the requested range on the fly from
//     K surviving shards (rs.Reconstruct is bytewise, so only the range is
//     read), reads of a live block forward to its home engine; both overlay
//     the journal newest-wins so degraded reads stay read-your-writes.
//
// Routing degraded-stripe *updates* away from the engines is also what
// keeps reconstruction byte-exact: after the settle barrier the raw shards
// of a degraded stripe are frozen and mutually consistent, however much
// foreground traffic the rest of the cluster is taking.

import (
	"errors"
	"fmt"
	"strings"

	"tsue/internal/netsim"
	"tsue/internal/obs"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// errDegradedGone is the retryable Ack error the surrogate returns when the
// degraded route was cut over while the request was in flight; the client
// re-resolves and retries on the normal path.
const errDegradedGone = "cluster: degraded route gone"

// errStaleEpoch is the retryable error OSDs return for a request routed
// under a placement-map view that no longer matches the block's PG's
// authoritative epoch; the client refreshes its view from the MDS and
// retries against the re-resolved home.
const errStaleEpoch = "cluster: stale placement epoch"

// errMigrating is the retryable error OSDs return for a read that arrives
// inside its PG's cutover fence — the window where overlay logs have been
// extracted from the old home but not yet replayed at the new one. The
// client waits out the fence and retries.
const errMigrating = "cluster: pg cutover in progress"

// retryableRouteErr reports whether a client op failed only because its
// route is mid-transition (node just failed, registration in flight,
// degraded or epoch cutover just completed, or a PG cutover fence) and
// should be retried after a short wait. Errors cross OSD hops as Ack
// strings, so this matches substrings rather than wrapped error values.
func retryableRouteErr(err error) bool {
	s := err.Error()
	return strings.Contains(s, netsim.ErrNodeDown.Error()) ||
		strings.Contains(s, netsim.ErrPartitioned.Error()) ||
		strings.Contains(s, errDegradedGone) ||
		strings.Contains(s, errStaleEpoch) ||
		strings.Contains(s, errMigrating)
}

// checksumErr reports whether the failure (possibly stringified across an
// OSD hop) was a checksum-verification rejection. Clients retry these: the
// payload was corrupted in flight and discarded before any side effect, so
// a clean resend (or re-read) is the repair.
func checksumErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), wire.ErrChecksum.Error())
}

// staleEpochErr reports whether the failure was a stale-epoch bounce
// specifically — the retryable class where the client must refresh its
// map view before retrying, not merely wait.
func staleEpochErr(err error) bool {
	return strings.Contains(err.Error(), errStaleEpoch)
}

// nodeDownErr reports whether an error (possibly stringified across an
// OSD hop as an Ack) was caused by a dead node. Beyond the migration
// driver's resolution checks, the client retry loops treat it as a
// possible stale view: a dead node cannot bounce a stale epoch, and
// placement may have moved the block off it (an epoch commit or a
// recovery remap) while the request was in flight — the composition hole
// the kill-during-rebalance grid pinned (a stale-view client retried a
// committed-away dead home until its budget ran out).
func nodeDownErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), netsim.ErrNodeDown.Error())
}

// degradedState tracks one failed OSD served in degraded mode. Surrogates
// are assigned per placement group — each degraded PG routes to the
// placement map's stable replacement for the failed node's slot — so the
// journal and reconstruction load of a death spreads across the cluster
// instead of piling onto one ring successor.
type degradedState struct {
	failed wire.NodeID
	// surr maps each degraded PG to its surrogate OSD.
	surr map[int]wire.NodeID
	// surrogates lists the distinct surrogate OSDs in deterministic order
	// (cutover drains each one's journal).
	surrogates []wire.NodeID
	// stripes is every stripe whose placement includes the failed node.
	stripes map[wire.StripeID]bool
	// lost is every block the failed node hosted (one per degraded stripe).
	lost map[wire.BlockID]bool
	// holders is the fixed quorum holder set per surrogate: the first
	// min(M, live-1) live OSDs after the surrogate in ring order (skipping
	// the failed node), chosen deterministically at registration. Every
	// journal append replicates to all reachable members before it is
	// acked, so any m concurrent deaths leave at least one holder with
	// every acked record (Cluster.promoteSurrogate unions them).
	holders map[wire.NodeID][]wire.NodeID
	// ackSeq is, per surrogate, the highest append sequence whose quorum
	// replication was fully acked. Promotion after a surrogate death must
	// recover every seq in 1..ackSeq; a gap means more than m holders died
	// and the journal is genuinely unrecoverable (ErrSurrogateLost).
	ackSeq map[wire.NodeID]uint64
	// orphans keeps the transition-orphaned records seeded into this
	// window's journals (takeOrphans at registration). They exist neither
	// in the DataLog replicas (retired at extraction) nor in JournalReplica
	// retention, so a surrogate promotion must re-splice them from here.
	orphans []wire.ReplicaItem
}

// ---- update gate ----

// The gate fences client updates (and degraded reads) during recovery's
// consistency windows: the drain/settle barrier before reconstruction and
// the journal cutover. Gated requests block rather than fail, so the
// foreground workload sees a latency dip, not errors — the IOPS shape the
// degraded experiment measures.

func (c *Cluster) closeGate() { c.gateClosed = true }

// fenceUpdates closes the gate and waits until every client op that had
// already passed it has completed: normal-path updates (fully propagated
// through their engine's synchronous phase) AND surrogate-side degraded
// ops. A consistency barrier that runs after this cannot race a
// half-propagated update, and a journal cutover cannot steal the journal
// out from under a degraded read that would then overlay nothing (the
// stale-read race the stress suite pins).
func (c *Cluster) fenceUpdates(p *sim.Proc) {
	c.closeGate()
	for c.updatesInFlight > 0 || c.surrOpsInFlight > 0 {
		c.gateCond.Wait(p)
	}
}

// surrOpDone retires one surrogate-side degraded op begun with
// surrOpsInFlight++ (which must happen atomically with the post-waitGate
// route re-check, i.e. with no yield in between).
func (c *Cluster) surrOpDone() {
	c.surrOpsInFlight--
	if c.surrOpsInFlight == 0 {
		c.gateCond.Broadcast()
	}
}

func (c *Cluster) openGate() {
	c.gateClosed = false
	c.gateCond.Broadcast()
}

func (c *Cluster) waitGate(p *sim.Proc) {
	for c.gateClosed {
		c.gateCond.Wait(p)
	}
}

// ---- routing ----

// degradedRoute returns the surrogate serving stripe s if s is degraded:
// the surrogate assigned to the stripe's placement group. With concurrent
// deaths a stripe can be degraded under several windows at once, so the
// windows are consulted in failed-node order — every client must resolve
// the same route or same-seed runs diverge.
func (c *Cluster) degradedRoute(s wire.StripeID) (failed, surrogate wire.NodeID, ok bool) {
	for _, id := range c.degradedNodes() {
		st := c.degraded[id]
		if st.stripes[s] {
			return st.failed, st.surr[c.PG(s)], true
		}
	}
	return 0, 0, false
}

// servesDegraded reports whether this OSD is the surrogate for the block's
// placement group under st (the surrogate-side route re-check).
func (st *degradedState) servesDegraded(c *Cluster, id wire.NodeID, blk wire.BlockID) bool {
	return st.surr[c.PG(blk.StripeID())] == id
}

// nextLive returns the first live OSD strictly after `after` in ring order,
// skipping `exclude`; it returns `after` itself only if no other candidate
// is alive.
func (c *Cluster) nextLive(after, exclude wire.NodeID) wire.NodeID {
	n := len(c.OSDs)
	start := int(after) - 1
	for step := 1; step <= n; step++ {
		id := c.OSDs[(start+step)%n].id
		if id == exclude || c.Fabric.Down(id) {
			continue
		}
		return id
	}
	return after
}

// journalHolders returns the fixed quorum holder set for a (failed,
// surrogate) pair: the first min(M, live-1) live OSDs strictly after the
// surrogate in ring order, skipping the failed node and the surrogate
// itself. Deterministic given the live set, so tests and promotion can
// recompute it; M holders plus the surrogate give the journal the same
// m-death budget as the erasure code itself.
func (c *Cluster) journalHolders(surrogate, failed wire.NodeID) []wire.NodeID {
	live := 0
	for _, osd := range c.OSDs {
		if !c.Fabric.Down(osd.id) {
			live++
		}
	}
	q := c.Cfg.M
	if q > live-1 {
		q = live - 1
	}
	if q <= 0 {
		return nil
	}
	n := len(c.OSDs)
	start := int(surrogate) - 1
	var out []wire.NodeID
	for step := 1; step <= n && len(out) < q; step++ {
		id := c.OSDs[(start+step)%n].id
		if id == surrogate || id == failed || c.Fabric.Down(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// registerDegraded publishes degraded routing for a failed node: it assigns
// a surrogate per degraded placement group (the placement map's stable
// replacement for the failed node's slot — which is also where the PG's
// lost blocks will rebuild, so the journal lands next to its replay
// targets), seeds each surrogate's journal with its PGs' share of the
// failed node's replicated unrecycled DataLog items (so degraded reads see
// pre-failure updates and the cutover replays them), and records the
// degraded stripe and lost block sets. The registration plus in-memory
// seeding happen atomically with respect to client routing, so no journaled
// update can land ahead of an older seed.
func (c *Cluster) registerDegraded(p *sim.Proc, failed wire.NodeID, via *Client) (*degradedState, error) {
	if _, dup := c.degraded[failed]; dup {
		return nil, fmt.Errorf("cluster: node %d already degraded", failed)
	}
	items, err := c.fetchReplicaItems(p, failed, via)
	if err != nil {
		return nil, err
	}
	st := &degradedState{
		failed:  failed,
		surr:    make(map[int]wire.NodeID),
		stripes: make(map[wire.StripeID]bool),
		lost:    make(map[wire.BlockID]bool),
		holders: make(map[wire.NodeID][]wire.NodeID),
		ackSeq:  make(map[wire.NodeID]uint64),
	}
	dead := func(id wire.NodeID) bool { return c.Fabric.Down(id) }
	pmap := c.MDS.PlacementMap()
	seen := make(map[wire.NodeID]bool)
	// store.Blocks is sorted, so surrogate discovery order — and with it
	// st.surrogates and the cutover's drain order — is deterministic.
	for _, blk := range c.OSDByID(failed).store.Blocks() {
		if c.Placement(blk.StripeID())[blk.Index] != failed {
			// A stale leftover (e.g. the block migrated away under a
			// finish-resolved transition): placement is the authority for
			// what is lost, not the dead store's contents.
			continue
		}
		s := blk.StripeID()
		st.stripes[s] = true
		st.lost[blk] = true
		pg := pmap.PGOf(s)
		if _, ok := st.surr[pg]; ok {
			continue
		}
		slot := pmap.MemberSlot(pg, failed)
		if slot < 0 {
			// The block can only live off its baseline PG member under a
			// pre-existing recovery remap; serve it from the slot-0 view.
			slot = 0
		}
		mem, err := pmap.Members(pg, dead)
		if err != nil {
			return nil, fmt.Errorf("cluster: no live surrogate for node %d pg %d: %w", failed, pg, err)
		}
		sur := mem[slot]
		if sur == failed || c.Fabric.Down(sur) {
			return nil, fmt.Errorf("cluster: surrogate %d for node %d pg %d not live", sur, failed, pg)
		}
		st.surr[pg] = sur
		if !seen[sur] {
			seen[sur] = true
			st.surrogates = append(st.surrogates, sur)
		}
	}
	// Fix each surrogate's quorum holder set now, against the live set at
	// registration: appends ack only once durable on every reachable member.
	for _, sur := range st.surrogates {
		st.holders[sur] = c.journalHolders(sur, failed)
	}
	c.degraded[failed] = st
	// Overlay records orphaned by a finish-resolved transition (their
	// replay target was this node) ride along as extra seeds: degraded
	// reads overlay them and the cutover replays them at the rebuilt
	// homes. They follow the replica seeds, preserving append order per
	// block (an orphan's block never also has replica seeds — extraction
	// retired those). A copy stays on the state for surrogate promotion.
	st.orphans = c.takeOrphans(failed)
	items = append(items, st.orphans...)
	// Partition the replica seeds by PG surrogate. A seed whose stripe is
	// not degraded (its block migrated away before the death, so the node
	// no longer hosted it) replayed at the new home already — skip it.
	perSurr := make(map[wire.NodeID]int64)
	for _, it := range items {
		if !st.stripes[it.Blk.StripeID()] {
			continue
		}
		sur := st.surr[pmap.PGOf(it.Blk.StripeID())]
		j := c.OSDByID(sur).journalFor(failed)
		j.items = append(j.items, it)
		perSurr[sur] += int64(len(it.Data))
	}
	// Charge the journal persists after the fact; the seeds already have
	// replicas on their original holders, so they are not re-replicated.
	for _, sur := range st.surrogates {
		if n := perSurr[sur]; n > 0 {
			osd := c.OSDByID(sur)
			osd.journalPersist(p, osd.journalFor(failed), n)
		}
	}
	return st, nil
}

func (c *Cluster) unregisterDegraded(failed wire.NodeID) {
	delete(c.degraded, failed)
	// The surrogate journals' quorum retention was promotion insurance for
	// this window only.
	for _, osd := range c.OSDs {
		if j, ok := osd.journals[failed]; ok {
			j.repl = nil
		}
	}
}

// stashOrphans parks replayable overlay records whose replay target died
// mid-transition. registerDegraded(target) later seeds them into the
// surrogate journals, so degraded reads overlay them and the recovery
// cutover replays them at the rebuilt homes — no acked update is lost to
// the extract→replay gap.
func (c *Cluster) stashOrphans(target wire.NodeID, items []wire.ReplicaItem) {
	c.orphans[target] = append(c.orphans[target], items...)
}

// takeOrphans removes and returns the records parked for a node.
func (c *Cluster) takeOrphans(target wire.NodeID) []wire.ReplicaItem {
	items := c.orphans[target]
	delete(c.orphans, target)
	return items
}

// ---- surrogate-side journal ----

// journal is the surrogate's degraded-update log for one failed node: an
// in-memory item list (replayed at cutover, overlaid on degraded reads)
// persisted to a sequential device zone and quorum-replicated to the
// surrogate's fixed holder set. cursor counts primary appends; replCursor
// counts durability copies held for other surrogates (kept separate so
// the placement experiment's surrogate-load accounting sees only primary
// journal work, not holder copies). nextSeq numbers this OSD's own
// appends (1, 2, ...; seeds and orphans carry no seq — they are
// recoverable elsewhere). repl retains, per appending surrogate, the
// sequenced durability copies this OSD holds as a quorum member so a dead
// surrogate's journal can be read-repaired across holders
// (Cluster.promoteSurrogate); they are dropped when the window closes.
type journal struct {
	zone       int
	cursor     int64
	replCursor int64
	nextSeq    uint64
	items      []wire.ReplicaItem
	repl       map[wire.NodeID][]wire.JournalItem
}

// journalSpan bounds the circular on-disk journal region (per failed node).
const journalSpan = 64 << 20

// journalFor returns (creating on first use) the journal this OSD keeps on
// behalf of a failed node.
func (o *OSD) journalFor(failed wire.NodeID) *journal {
	j, ok := o.journals[failed]
	if !ok {
		j = &journal{zone: o.dev.NewZone(fmt.Sprintf("degraded-journal-%d@%d", failed, o.id), true)}
		o.journals[failed] = j
	}
	return j
}

// journalItems exposes the journal length for the cutover's atomic
// empty-check (control plane, no simulated cost).
func (o *OSD) journalItems(failed wire.NodeID) []wire.ReplicaItem {
	j, ok := o.journals[failed]
	if !ok {
		return nil
	}
	return j.items
}

// journalPersist charges one sequential append of n payload bytes to the
// journal's circular log zone (primary surrogate work). The append runs
// under a journal-stage span so its device cost lands in a trace's journal
// bucket, not the generic device one.
func (o *OSD) journalPersist(p *sim.Proc, j *journal, n int64) {
	fin := obs.SpanOn(p, obs.StageJournal, "journal:persist", o.id)
	rec := n + 24
	o.dev.Write(p, j.zone, (j.cursor+j.replCursor)%journalSpan, rec, false)
	j.cursor += rec
	fin()
}

// journalPersistReplica charges a durability copy of a peer surrogate's
// record; tracked apart from primary appends so JournalBytes reports only
// surrogate load.
func (o *OSD) journalPersistReplica(p *sim.Proc, j *journal, n int64) {
	fin := obs.SpanOn(p, obs.StageJournal, "journal:persist-replica", o.id)
	rec := n + 24
	o.dev.Write(p, j.zone, (j.cursor+j.replCursor)%journalSpan, rec, false)
	j.replCursor += rec
	fin()
}

// handleDegradedUpdate journals one client update for a degraded stripe.
// The memory append happens atomically with the registration re-check and
// the in-flight registration (no blocking in between), so the cutover's
// steal loop can never miss it; the device persist and the replication
// round trip are charged afterwards, covered by the in-flight count so a
// recovery fence waits them out.
func (o *OSD) handleDegradedUpdate(p *sim.Proc, v *wire.DegradedUpdate) wire.Msg {
	o.c.waitGate(p)
	st := o.c.degraded[v.Failed]
	if st == nil || !st.servesDegraded(o.c, o.id, v.Blk) {
		return &wire.Ack{Err: errDegradedGone}
	}
	// Verify before the append: a corrupted record would be overlaid on
	// degraded reads and replayed at cutover.
	if err := wire.VerifySum(v.Data, v.Sum); err != nil {
		o.c.noteCorruption()
		return &wire.Ack{Err: fmt.Sprintf("degraded update %v: %v", v.Blk, err)}
	}
	o.c.surrOpsInFlight++
	defer o.c.surrOpDone()
	j := o.journalFor(v.Failed)
	// The append and its sequence number are assigned atomically (no yield),
	// so j.items order and seq order agree.
	j.items = append(j.items, wire.ReplicaItem{
		Blk: v.Blk, Off: v.Off, Data: append([]byte(nil), v.Data...),
	})
	j.nextSeq++
	seq := j.nextSeq
	o.journalPersist(p, j, int64(len(v.Data)))
	// Quorum-replicate the record to the fixed holder set before acking:
	// the update is durable against any m concurrent deaths only once every
	// reachable holder has persisted it. A holder that is already down
	// narrows the redundancy window (node-down is monotone within a run, so
	// every live holder still has the full acked prefix); any other failure
	// fails the ack — the client retries and the duplicate append is
	// harmless (same bytes at the same offset for both overlay and replay).
	holders := st.holders[o.id]
	var acked int
	var firstErr error
	wg := sim.NewWaitGroup(o.c.Env)
	for _, h := range holders {
		if o.c.Fabric.Down(h) {
			continue
		}
		h := h
		wg.Add(1)
		jp := o.c.Env.Go("journal-repl", func(hp *sim.Proc) {
			defer wg.Done()
			resp, err := o.Call(hp, h, &wire.JournalReplica{
				Failed: v.Failed, Surrogate: o.id, Seq: seq,
				Blk: v.Blk, Off: v.Off, Data: v.Data, Sum: v.Sum,
			})
			if err != nil {
				if !nodeDownErr(err) && firstErr == nil {
					firstErr = fmt.Errorf("journal replica @%d: %w", h, err)
				}
				return
			}
			if ja, ok := resp.(*wire.JournalAck); !ok || ja.Err != "" {
				if firstErr == nil {
					firstErr = fmt.Errorf("journal replica @%d: %v", h, resp)
				}
				return
			}
			o.jrSentMsgs++
			o.jrSentBytes += int64(len(v.Data))
			acked++
		})
		obs.Inherit(jp, p)
	}
	wg.Wait(p)
	if firstErr != nil {
		return &wire.Ack{Err: firstErr.Error()}
	}
	if acked == 0 && len(holders) > 0 {
		// Every holder died mid-window: acking now would leave the record
		// with zero durable copies beyond this surrogate.
		return &wire.Ack{Err: "cluster: degraded journal quorum unreachable"}
	}
	if st.ackSeq[o.id] < seq {
		st.ackSeq[o.id] = seq
	}
	return wire.OK
}

// handleDegradedRead serves [Off, Off+Size) of a degraded-stripe block:
// lost blocks are reconstructed on the fly from K surviving shards, live
// blocks are read (with engine semantics) from their home; the journal then
// overlays newest-wins, which keeps degraded reads read-your-writes. The
// whole read counts as in flight so a recovery fence (settle barrier or
// journal cutover) cannot begin between the gate check and the overlay —
// without that, a cutover could steal the journal mid-read and the overlay
// would silently miss journaled updates.
func (o *OSD) handleDegradedRead(p *sim.Proc, v *wire.DegradedRead) wire.Msg {
	o.c.waitGate(p)
	st := o.c.degraded[v.Failed]
	if st == nil || !st.servesDegraded(o.c, o.id, v.Blk) {
		return &wire.ReadResp{Err: errDegradedGone}
	}
	o.c.surrOpsInFlight++
	defer o.c.surrOpDone()
	var buf []byte
	var err error
	if st.lost[v.Blk] {
		buf, err = o.reconstructRangeHedged(p, v.Blk, v.Off, int64(v.Size))
	} else {
		var resp wire.Msg
		home := o.c.Placement(v.Blk.StripeID())[v.Blk.Index]
		resp, err = o.Call(p, home, &wire.ReadBlock{
			Blk: v.Blk, Off: v.Off, Size: v.Size,
			Epoch: o.c.MDS.authEpochOf(v.Blk.StripeID()),
		})
		if err == nil {
			rr, ok := resp.(*wire.ReadResp)
			if !ok || rr.Err != "" {
				err = fmt.Errorf("degraded read fwd %v: %v", v.Blk, resp)
			} else if verr := wire.VerifySum(rr.Data, rr.Sum); verr != nil {
				o.c.noteCorruption()
				err = fmt.Errorf("degraded read fwd %v: %w", v.Blk, verr)
			} else {
				buf = rr.Data
			}
		}
	}
	if err != nil {
		return &wire.ReadResp{Err: err.Error()}
	}
	// Overlay journal items oldest-first so the newest write wins. The gate
	// excludes cutover, so the journal cannot be stolen mid-read.
	for _, it := range o.journalFor(v.Failed).items {
		if it.Blk != v.Blk {
			continue
		}
		overlayRange(buf, v.Off, it.Off, it.Data)
	}
	// The checksum covers the post-overlay bytes the client will consume.
	return &wire.ReadResp{Data: buf, Sum: wire.Checksum(buf)}
}

// overlayRange copies the intersection of record (recOff, recData) onto
// dst, where dst holds the byte range starting at dstOff.
func overlayRange(dst []byte, dstOff, recOff int64, recData []byte) {
	lo, hi := recOff, recOff+int64(len(recData))
	if lo < dstOff {
		lo = dstOff
	}
	if end := dstOff + int64(len(dst)); hi > end {
		hi = end
	}
	if lo >= hi {
		return
	}
	copy(dst[lo-dstOff:hi-dstOff], recData[lo-recOff:hi-recOff])
}

// reconstructRange rebuilds [off, off+size) of a lost block from the same
// range of K surviving shards — RS decoding is bytewise, so a degraded read
// never moves more than K× the requested bytes. alt selects the alternate
// survivor set (hedged second leg).
func (o *OSD) reconstructRange(p *sim.Proc, blk wire.BlockID, off, size int64, alt bool) ([]byte, error) {
	shards, err := o.readSurvivingShards(p, blk, off, size, alt)
	if err != nil {
		return nil, err
	}
	if err := o.c.Code.Reconstruct(shards); err != nil {
		return nil, err
	}
	return shards[blk.Index], nil
}

// hedgeResult is one leg's outcome in a hedged reconstruction race.
type hedgeResult struct {
	buf   []byte
	err   error
	hedge bool
}

// reconstructRangeHedged is reconstructRange with straggler hedging: if the
// primary K-shard fan-in has not completed within Config.HedgeDelay, a
// second reconstruction fires against the alternate survivor set (the last
// K live shards instead of the first) and the first valid result wins. The
// losing leg's late result lands in an unconsumed queue — harmless, its
// reads were charged to the fabric like any raced RPC. With HedgeDelay 0
// this is plain reconstructRange.
func (o *OSD) reconstructRangeHedged(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	delay := o.c.Cfg.HedgeDelay
	if delay <= 0 {
		return o.reconstructRange(p, blk, off, size, false)
	}
	results := sim.NewQueue[hedgeResult](o.c.Env)
	done := false  // a winner was taken; the timer must not fire
	fired := false // the hedge leg launched (a second result will arrive)
	pp := o.c.Env.Go("degraded-hedge-primary", func(hp *sim.Proc) {
		buf, err := o.reconstructRange(hp, blk, off, size, false)
		results.Put(hedgeResult{buf: buf, err: err})
	})
	obs.Inherit(pp, p)
	hp2 := o.c.Env.Go("degraded-hedge-timer", func(hp *sim.Proc) {
		hp.Sleep(delay)
		if done {
			return
		}
		fired = true
		o.c.hedgeFired.Inc()
		buf, err := o.reconstructRange(hp, blk, off, size, true)
		results.Put(hedgeResult{buf: buf, err: err, hedge: true})
	})
	obs.Inherit(hp2, p)
	first, _ := results.Get(p)
	if first.err == nil {
		done = true
		if first.hedge {
			o.c.hedgeWins.Inc()
		}
		return first.buf, nil
	}
	// The first leg failed. If the other leg is still in flight (the hedge
	// fired, or the failure WAS the hedge so the primary is outstanding),
	// its result may yet be good — wait for it.
	if fired || first.hedge {
		second, _ := results.Get(p)
		done = true
		if second.err == nil {
			if second.hedge {
				o.c.hedgeWins.Inc()
			}
			return second.buf, nil
		}
		return nil, first.err
	}
	done = true
	return nil, first.err
}

// handleJournalFetch serves both journal-retrieval modes. With Surrogate
// set it is the non-destructive read-repair fetch: return the sequenced
// durability copies held for that surrogate with Seq > FromSeq, leaving
// them in place (promotion unions several holders' ranges). Otherwise it
// steals this OSD's own journal for the failed node: all items are
// returned in append order and forgotten. The recovery cutover runs the
// steal under the closed gate, so nothing can land behind it.
func (o *OSD) handleJournalFetch(p *sim.Proc, v *wire.JournalFetch) wire.Msg {
	if v.Surrogate != 0 {
		resp := &wire.JournalFetchResp{}
		j, ok := o.journals[v.Failed]
		if !ok {
			return resp
		}
		var total int64
		for _, it := range j.repl[v.Surrogate] {
			if it.Seq > v.FromSeq {
				resp.Items = append(resp.Items, it)
				total += int64(len(it.Data))
			}
		}
		if total > 0 {
			o.dev.Read(p, j.zone, 0, total)
		}
		return resp
	}
	j, ok := o.journals[v.Failed]
	if !ok || len(j.items) == 0 {
		return &wire.ReplicaResp{}
	}
	items := j.items
	j.items = nil
	var total int64
	for _, it := range items {
		total += int64(len(it.Data))
	}
	o.dev.Read(p, j.zone, 0, total)
	return &wire.ReplicaResp{Items: items}
}

// SettleAll brings every live OSD's raw stores to stripe consistency with
// minimal merging (engine Settle), repeating rounds until a full round
// reports nothing left to settle — the consistency barrier interleaved
// recovery runs under the closed gate before reconstruction starts. The
// failed node scopes the barrier: overlay state touching its stripes must
// flush (their raw shards feed reconstruction), pure overlay elsewhere may
// stay.
func (c *Cluster) SettleAll(p *sim.Proc, via *Client, failed wire.NodeID) error {
	for round := 0; round < 12; round++ {
		busy := false
		var firstErr error
		wg := sim.NewWaitGroup(c.Env)
		for _, osd := range c.OSDs {
			if c.Fabric.Down(osd.id) {
				continue
			}
			if osd.engine.NeedsSettle(failed) {
				busy = true
			}
			osd := osd
			wg.Add(1)
			c.Env.Go("settle", func(hp *sim.Proc) {
				defer wg.Done()
				resp, err := c.Fabric.Call(hp, via.id, osd.id, &wire.Settle{Failed: failed})
				if err == nil {
					if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
						err = fmt.Errorf("%s", a.Err)
					}
				}
				if errors.Is(err, netsim.ErrNodeDown) {
					err = nil // died mid-round; its state is recovery's now
				}
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("settle %d: %w", osd.id, err)
				}
			})
		}
		wg.Wait(p)
		if firstErr != nil {
			return firstErr
		}
		if !busy {
			return nil
		}
	}
	return fmt.Errorf("cluster: settle did not converge")
}

// resetStripeState clears engine-side cross-update baselines (PARIX's
// "original already shipped" coverage) for every degraded stripe after its
// lost block was rebuilt on a fresh OSD. Control-plane metadata only; no
// simulated cost.
func (c *Cluster) resetStripeState(lost []wire.BlockID) {
	seen := make(map[wire.StripeID]bool)
	for _, blk := range lost {
		s := blk.StripeID()
		if seen[s] {
			continue
		}
		seen[s] = true
		osds := c.Placement(s)
		for i := 0; i < c.Cfg.K; i++ {
			if c.Fabric.Down(osds[i]) {
				continue
			}
			if r, ok := c.OSDByID(osds[i]).engine.(update.StripeResetter); ok {
				r.ResetStripe(s)
			}
		}
	}
}
