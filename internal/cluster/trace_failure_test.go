package cluster

// Trace-through-failure: replay synthetic Ali-Cloud / Ten-Cloud traces
// (reads included, per the generators' published read/write mix) across a
// failure window — an OSD dies mid-replay and recovers concurrently under
// interleaved mode while the trace keeps going. Every read is checked
// against the reference (read-your-writes through log overlays, surrogate
// journals and on-the-fly reconstruction), and the run ends with a drain,
// a scrub, and byte-exact read-back. This is the first step toward the
// roadmap's trace-driven degraded workloads: the same trace machinery the
// harness replays for throughput numbers, driven through the failure
// window with full verification.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/wire"
)

// replayTraceThroughFailure drives n trace ops from the given profile over
// `files` files, failing the most-loaded OSD at op killAt with a concurrent
// interleaved recovery.
func replayTraceThroughFailure(t *testing.T, engine string, prof trace.Profile, seed int64, ops, killAt, files int) {
	t.Helper()
	cfg := degradedConfig(engine)
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()

	fileSize := 3 * c.StripeWidth()
	prof.WorkingSet = fileSize // scope the trace to one file's address space

	var rep *RecoveryReport
	var victim wire.NodeID
	trigger, done := false, false
	c.Env.Go("recovery", func(p *sim.Proc) {
		for !trigger {
			p.Sleep(200 * time.Microsecond)
		}
		var err error
		rep, err = c.Recover(p, victim, 2, RecoverInterleaved, admin)
		if err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	c.Env.Go("trace-replay", func(p *sim.Proc) {
		gens := make([]*trace.Generator, files)
		inos := make([]uint64, files)
		content := make([][]byte, files)
		for f := 0; f < files; f++ {
			gens[f] = trace.MustGenerator(prof, seed+int64(f)*7919)
			content[f] = make([]byte, fileSize)
			for i := range content[f] {
				content[f][i] = byte(seed) + byte(i*7+f*13)
			}
			ino, err := cl.Create(p, fmt.Sprintf("t%d", f), fileSize)
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.WriteFile(p, ino, content[f]); err != nil {
				t.Error(err)
				return
			}
			inos[f] = ino
		}
		most := -1
		for _, osd := range c.OSDs {
			if n := osd.Store().Len(); n > most {
				most = n
				victim = osd.NodeID()
			}
		}
		for i := 0; i < ops; i++ {
			if i == killAt {
				trigger = true
			}
			f := i % files
			op := gens[f].Next()
			off := op.Off
			size := int64(op.Size)
			// The test file is far smaller than a production volume; clamp
			// trace requests into its address space (the generator can emit
			// negative offsets when a request exceeds the working set).
			if size > fileSize {
				size = fileSize
			}
			if off < 0 {
				off = 0
			}
			if off+size > fileSize {
				off = fileSize - size
			}
			if op.Kind == trace.Write {
				// Deterministic payload derived from the op index.
				buf := make([]byte, size)
				for j := range buf {
					buf[j] = byte(i*31 + j + f)
				}
				if err := cl.Update(p, inos[f], off, buf); err != nil {
					t.Errorf("trace op %d (write f%d off=%d): %v", i, f, off, err)
					return
				}
				copy(content[f][off:], buf)
			} else {
				got, err := cl.Read(p, inos[f], off, size)
				if err != nil {
					t.Errorf("trace op %d (read f%d off=%d): %v", i, f, off, err)
					return
				}
				if !bytes.Equal(got, content[f][off:off+size]) {
					t.Errorf("trace op %d: stale read f%d off=%d len=%d", i, f, off, size)
					return
				}
			}
		}
		for rep == nil && !t.Failed() {
			p.Sleep(time.Millisecond)
		}
		if t.Failed() {
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		for f := 0; f < files; f++ {
			got, err := cl.Read(p, inos[f], 0, fileSize)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, content[f]) {
				t.Errorf("post-recovery content mismatch in file %d", f)
				return
			}
		}
		done = true
	})
	c.Env.Run(0)
	if t.Failed() {
		return
	}
	if !done || rep == nil {
		t.Fatalf("deadlock: verified=%v recovered=%v", done, rep != nil)
	}
	if rep.Blocks == 0 {
		t.Fatal("victim hosted no blocks?")
	}
}

// TestTraceThroughFailure replays both cloud-trace profiles across a
// failure window (Ten-Cloud only without -short).
func TestTraceThroughFailure(t *testing.T) {
	ws := int64(1) << 20 // placeholder; replayTraceThroughFailure rescopes it
	cases := []struct {
		name string
		prof trace.Profile
	}{
		{"ali", trace.AliCloud(ws)},
	}
	if !testing.Short() {
		cases = append(cases, struct {
			name string
			prof trace.Profile
		}{"ten", trace.TenCloud(ws)})
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			replayTraceThroughFailure(t, "tsue", tc.prof, 97, 500, 150, 2)
		})
	}
}
