package cluster

import (
	"testing"
)

func TestReviewRepro(t *testing.T) {
	runKillUpdateRecover(t, "parix", RecoverInterleaved, 11, 500, 100, nil)
}
