package cluster

// Surrogate failover: the death of a surrogate OSD inside a degraded
// window used to be undefined — journal replication was pure durability
// accounting, so the journaled (and acked) client updates died with the
// surrogate. Kill now detects the surrogate role and promotes the
// journal-replica holder; when that holder is unreachable too, Kill fails
// fast with ErrSurrogateLost instead of letting clients hang.

import (
	"bytes"
	"errors"

	"math/rand"
	"testing"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// degradedStripeOps drives count update+read-back pairs restricted to the
// failed node's lost DATA blocks — the only ranges that stay serviceable
// while a second (surrogate) node is down un-recovered — verifying
// read-your-writes through the journal overlay at every step.
func degradedStripeOps(t *testing.T, p *sim.Proc, c *Cluster, cl *Client, st *degradedState,
	ino uint64, content []byte, rng *rand.Rand, count int) bool {
	t.Helper()
	var lost []wire.BlockID
	for blk := range st.lost {
		if int(blk.Index) < c.Cfg.K {
			lost = append(lost, blk)
		}
	}
	if len(lost) == 0 {
		t.Error("no lost data blocks to exercise")
		return false
	}
	// Deterministic order for the rng-driven picks.
	for i := 1; i < len(lost); i++ {
		for j := i; j > 0 && lost[j].Stripe < lost[j-1].Stripe ||
			j > 0 && lost[j].Stripe == lost[j-1].Stripe && lost[j].Index < lost[j-1].Index; j-- {
			lost[j], lost[j-1] = lost[j-1], lost[j]
		}
	}
	for i := 0; i < count; i++ {
		blk := lost[rng.Intn(len(lost))]
		base := int64(blk.Stripe)*c.StripeWidth() + int64(blk.Index)*c.Cfg.BlockSize
		off := base + int64(rng.Intn(int(c.Cfg.BlockSize-1024)))
		n := 1 + rng.Intn(1024)
		buf := make([]byte, n)
		rng.Read(buf)
		if err := cl.Update(p, ino, off, buf); err != nil {
			t.Errorf("degraded update %d: %v", i, err)
			return false
		}
		copy(content[off:], buf)
		got, err := cl.Read(p, ino, off, int64(n))
		if err != nil {
			t.Errorf("degraded read %d: %v", i, err)
			return false
		}
		if !bytes.Equal(got, buf) {
			t.Errorf("degraded read-your-writes violated at %d", i)
			return false
		}
	}
	return true
}

// TestKillSurrogatePromotesJournal: with a node down and degraded updates
// journaled, the journal-holding surrogate dies. Kill must promote the
// replica holder — degraded I/O keeps flowing read-your-writes over the
// promoted journal, recovery's cutover replays it, and after both dead
// nodes recover every byte verifies.
func TestKillSurrogatePromotesJournal(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(61))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		victim := wire.NodeID(3)
		c.Fabric.SetDown(victim, true)
		st, err := c.registerDegraded(p, victim, admin)
		if err != nil {
			t.Error(err)
			return
		}
		// Journal a first batch of degraded updates, then kill the busiest
		// surrogate.
		if !degradedStripeOps(t, p, c, cl, st, ino, content, rng, 50) {
			return
		}
		var surr wire.NodeID
		most := 0
		for _, s := range st.surrogates {
			if n := len(c.OSDByID(s).journalItems(victim)); n > most {
				most, surr = n, s
			}
		}
		if surr == 0 {
			t.Error("no surrogate holds journal items")
			return
		}
		krep, err := c.Kill(p, surr, admin)
		if err != nil {
			t.Errorf("kill surrogate %d: %v", surr, err)
			return
		}
		if krep.PromotedJournals == 0 {
			t.Error("surrogate death promoted no journal")
			return
		}
		for _, s := range st.surrogates {
			if s == surr {
				t.Error("dead surrogate still routed")
				return
			}
		}
		// Degraded I/O must keep flowing — read-your-writes across the
		// promotion, including updates journaled before it.
		if !degradedStripeOps(t, p, c, cl, st, ino, content, rng, 50) {
			return
		}
		// Finish the victim's recovery by hand (its degraded window is
		// still open); the promoted journal must replay.
		rep := &RecoveryReport{}
		lost, err := c.rebuild(p, victim, 4, admin, rep, true)
		if err != nil {
			t.Error(err)
			return
		}
		c.resetStripeState(lost)
		c.closeGate()
		err = c.cutover(p, victim, admin, rep)
		c.openGate()
		if err != nil {
			t.Error(err)
			return
		}
		if rep.ReplayedItems == 0 {
			t.Error("promoted journal replayed nothing")
			return
		}
		// Now recover the dead surrogate itself and verify everything.
		if _, err := c.Recover(p, surr, 2, RecoverInterleaved, admin); err != nil {
			t.Errorf("recover dead surrogate: %v", err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after surrogate death + promotion + recovery")
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// busiestSurrogate returns the surrogate of st holding the most journal
// items for the failed node (0 when nothing is journaled anywhere).
func busiestSurrogate(c *Cluster, st *degradedState) wire.NodeID {
	var surr wire.NodeID
	most := 0
	for _, s := range st.surrogates {
		if n := len(c.OSDByID(s).journalItems(st.failed)); n > most {
			most, surr = n, s
		}
	}
	return surr
}

// TestKillSurrogateHolderQuorumSurvives pins the fix for the multi-death
// journal gap: with m ≥ 2 the journal lives on a quorum of holders, so
// losing ONE recorded holder before the surrogate dies must NOT strand the
// journal — the old single-replica design returned ErrSurrogateLost here.
// Kill must instead promote via the surviving quorum peer and read-repair
// every acked append. (Three total deaths exceed the m=2 parity budget of
// degradedConfig, so this test asserts promotion/repair reports rather
// than byte-exact recovery; see killmultideath_test.go for the byte-exact
// any-m grid on an m=3 scheme.)
func TestKillSurrogateHolderQuorumSurvives(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(71))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		victim := wire.NodeID(3)
		c.Fabric.SetDown(victim, true)
		st, err := c.registerDegraded(p, victim, admin)
		if err != nil {
			t.Error(err)
			return
		}
		if !degradedStripeOps(t, p, c, cl, st, ino, content, rng, 40) {
			return
		}
		surr := busiestSurrogate(c, st)
		if surr == 0 {
			t.Error("no surrogate holds journal items")
			return
		}
		holders := c.JournalHoldersOf(victim, surr)
		if len(holders) < 2 {
			t.Fatalf("expected a quorum of ≥2 holders for m=2, got %v", holders)
		}
		// One recorded holder silently dies, a quorum peer survives: the
		// surrogate's death must still resolve.
		c.Fabric.SetDown(holders[0], true)
		krep, err := c.Kill(p, surr, admin)
		if err != nil {
			t.Errorf("kill surrogate with one dead holder: %v", err)
			return
		}
		if krep.PromotedJournals == 0 {
			t.Error("surrogate death promoted no journal")
			return
		}
		if krep.RepairedItems == 0 {
			t.Error("promotion read-repaired no journal items")
			return
		}
		for _, s := range st.surrogates {
			if s == surr {
				t.Error("dead surrogate still routed")
				return
			}
		}
		// The repaired items must live on the promoted surrogate — three
		// total deaths exceed m=2, so broad I/O continuity is out of scope
		// here (the m=3 grid covers it); the journal itself must survive.
		held := 0
		for _, s := range st.surrogates {
			held += len(c.OSDByID(s).journalItems(victim))
		}
		if held < krep.RepairedItems {
			t.Errorf("surrogates hold %d journal items, want ≥ %d repaired", held, krep.RepairedItems)
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}

// TestKillSurrogateAllHoldersLost: ErrSurrogateLost is still the verdict
// when MORE than m nodes die — here the surrogate plus its entire holder
// quorum — because no reachable copy of the acked journal remains.
func TestKillSurrogateAllHoldersLost(t *testing.T) {
	cfg := degradedConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	done := false
	c.Env.Go("t", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(73))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			t.Error(err)
			return
		}
		victim := wire.NodeID(3)
		c.Fabric.SetDown(victim, true)
		st, err := c.registerDegraded(p, victim, admin)
		if err != nil {
			t.Error(err)
			return
		}
		if !degradedStripeOps(t, p, c, cl, st, ino, content, rng, 40) {
			return
		}
		surr := busiestSurrogate(c, st)
		if surr == 0 {
			t.Error("no surrogate holds journal items")
			return
		}
		// Every quorum holder silently dies first, then the surrogate goes:
		// the acked journal has no surviving copy anywhere.
		for _, h := range c.JournalHoldersOf(victim, surr) {
			c.Fabric.SetDown(h, true)
		}
		_, err = c.Kill(p, surr, admin)
		if !errors.Is(err, ErrSurrogateLost) {
			t.Errorf("kill with all holders dead: got %v, want ErrSurrogateLost", err)
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("deadlock")
	}
}
