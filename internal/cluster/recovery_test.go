package cluster

// Error-path coverage for cluster.Recover: failures beyond the code's
// tolerance, recovery with nothing to replay, and recovery racing an
// in-flight cluster-wide drain.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// TestRecoverBeyondTolerance: with M=2 and two nodes already dead, a third
// failure must surface a reconstruction error (some stripe has fewer than K
// surviving shards), not corrupt state silently.
func TestRecoverBeyondTolerance(t *testing.T) {
	cfg := testConfig("fo") // no logs: drains are no-ops with nodes down
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		content := make([]byte, 4*c.StripeWidth())
		rand.New(rand.NewSource(31)).Read(content)
		ino, _ := cl.Create(p, "f", int64(len(content)))
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		// Kill two nodes outright (no recovery), then try to recover a third.
		c.Fabric.SetDown(wire.NodeID(1), true)
		c.Fabric.SetDown(wire.NodeID(2), true)
		_, err := c.Recover(p, wire.NodeID(3), 4, RecoverDrainFirst, cl)
		if err == nil {
			t.Fatal("recovering a third failure under M=2 succeeded")
		}
		// The shortfall can surface either at target selection (the PG has
		// fewer live OSDs than the stripe width) or, when the placement map
		// can still seat the stripe, at reconstruction (fewer than K
		// surviving shards).
		if !strings.Contains(err.Error(), "surviving shards") &&
			!strings.Contains(err.Error(), "live OSDs") {
			t.Fatalf("unexpected error: %v", err)
		}
		// The gate must have been reopened on the error path.
		if c.gateClosed {
			t.Fatal("gate left closed after failed recovery")
		}
	})
}

// TestRecoverZeroLogs: recovery in log-replay mode right after a full drain
// has nothing to replay — the report must show zero replayed items and the
// cluster must still scrub clean and serve exact content.
func TestRecoverZeroLogs(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(37))
		content := make([]byte, 4*c.StripeWidth())
		rng.Read(content)
		ino, _ := cl.Create(p, "f", int64(len(content)))
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			off := int64(rng.Intn(len(content) - 2048))
			buf := make([]byte, 1+rng.Intn(2048))
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Recover(p, wire.NodeID(4), 4, RecoverLogReplay, cl)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ReplayedItems != 0 || rep.ReplayedBytes != 0 {
			t.Fatalf("replayed %d items / %d bytes after a full drain, want 0",
				rep.ReplayedItems, rep.ReplayedBytes)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(p, ino, 0, int64(len(content)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after zero-log recovery")
		}
	})
}

// TestRecoverRacesDrainAll: a cluster-wide drain already in flight when a
// node fails and recovery starts must either complete or step aside
// (nodes dying mid-round are not drain errors); both operations finish and
// the cluster verifies byte-for-byte.
func TestRecoverRacesDrainAll(t *testing.T) {
	cfg := testConfig("tsue")
	c := MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	admin := c.NewClient()
	drained, recovered, verified := false, false, false
	c.Env.Go("drainer", func(p *sim.Proc) {
		// Let the workload build log state, then drain concurrently with
		// the recovery below.
		p.Sleep(2 * time.Millisecond)
		if err := c.DrainAll(p, admin); err != nil {
			t.Errorf("racing drain: %v", err)
			return
		}
		drained = true
	})
	c.Env.Go("workload", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(41))
		content := make([]byte, 4*c.StripeWidth())
		rng.Read(content)
		ino, _ := cl.Create(p, "f", int64(len(content)))
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 100; i++ {
			off := int64(rng.Intn(len(content) - 2048))
			buf := make([]byte, 1+rng.Intn(2048))
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Error(err)
				return
			}
			copy(content[off:], buf)
		}
		rep, err := c.Recover(p, wire.NodeID(5), 4, RecoverInterleaved, cl)
		if err != nil {
			t.Errorf("recover racing drain: %v", err)
			return
		}
		if rep.Blocks == 0 {
			t.Error("nothing recovered")
			return
		}
		recovered = true
		if err := c.DrainAll(p, cl); err != nil {
			t.Error(err)
			return
		}
		if _, err := c.Scrub(); err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		got, err := cl.Read(p, ino, 0, int64(len(content)))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after recovery racing drain")
			return
		}
		verified = true
	})
	c.Env.Run(0)
	if t.Failed() {
		return
	}
	if !drained || !recovered || !verified {
		t.Fatalf("deadlock: drained=%v recovered=%v verified=%v", drained, recovered, verified)
	}
}
