package cluster

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// testConfig builds a small cluster configuration that still exercises
// sealing, recycling, stalls, and threshold recycles.
func testConfig(engine string) Config {
	cfg := DefaultConfig()
	cfg.OSDs = 8
	cfg.K, cfg.M = 4, 2
	cfg.BlockSize = 16 << 10
	cfg.Engine = engine
	cfg.EngineOpts = update.Options{
		UnitSize:         32 << 10,
		MaxUnits:         4,
		Pools:            2,
		Copies:           2,
		UseDeltaLog:      true,
		DataLocality:     true,
		ParityLocality:   true,
		UseLogPool:       true,
		RecycleThreshold: 64 << 10,
		PLRReserve:       8 << 10,
		CordBufferSize:   32 << 10,
	}
	return cfg
}

// run executes fn inside a fresh simulated cluster and returns it.
func run(t *testing.T, cfg Config, fn func(p *sim.Proc, c *Cluster, cl *Client)) *Cluster {
	t.Helper()
	c := MustNew(cfg)
	cl := c.NewClient()
	done := false
	c.Env.Go("test", func(p *sim.Proc) {
		fn(p, c, cl)
		done = true
	})
	c.Env.Run(0)
	c.Env.Close()
	if !done {
		t.Fatal("test body deadlocked (did not complete)")
	}
	return c
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := testConfig("fo")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(1))
		content := make([]byte, 3*c.StripeWidth()/2) // 1.5 stripes
		rng.Read(content)
		ino, err := cl.Create(p, "f", int64(len(content)))
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(p, ino, 0, int64(len(content)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("read-back mismatch")
		}
		// Cross-block read.
		off := c.Cfg.BlockSize - 100
		got, err = cl.Read(p, ino, off, 300)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content[off:off+300]) {
			t.Fatal("cross-block read mismatch")
		}
		if n, err := c.Scrub(); err != nil || n == 0 {
			t.Fatalf("scrub after write: n=%d err=%v", n, err)
		}
	})
}

// TestUpdateScrubContent is the end-to-end invariant for every engine:
// after a stream of random updates plus a drain, (a) every stripe's parity
// equals the re-encode of its data, and (b) reads return exactly the
// reference content.
func TestUpdateScrubContent(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := testConfig(engine)
			run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
				rng := rand.New(rand.NewSource(7))
				fileSize := 4 * c.StripeWidth()
				content := make([]byte, fileSize)
				rng.Read(content)
				ino, err := cl.Create(p, "f", fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.WriteFile(p, ino, content); err != nil {
					t.Fatal(err)
				}
				// 300 random small updates, single client => deterministic
				// reference content.
				for i := 0; i < 300; i++ {
					off := int64(rng.Intn(int(fileSize - 4096)))
					n := 1 + rng.Intn(4096)
					buf := make([]byte, n)
					rng.Read(buf)
					if err := cl.Update(p, ino, off, buf); err != nil {
						t.Fatalf("update %d: %v", i, err)
					}
					copy(content[off:], buf)
				}
				if err := c.DrainAll(p, cl); err != nil {
					t.Fatal(err)
				}
				n, err := c.Scrub()
				if err != nil {
					t.Fatalf("scrub: %v", err)
				}
				if n != 4 {
					t.Fatalf("scrubbed %d stripes, want 4", n)
				}
				got, err := cl.Read(p, ino, 0, fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, content) {
					t.Fatal("content mismatch after updates+drain")
				}
			})
		})
	}
}

// TestConcurrentClientsScrub checks parity consistency under concurrent
// multi-client updates (content is racy by design; parity must not be).
func TestConcurrentClientsScrub(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := testConfig(engine)
			c := MustNew(cfg)
			admin := c.NewClient()
			var ino uint64
			fileSize := 4 * c.StripeWidth()
			ok := false
			c.Env.Go("setup", func(p *sim.Proc) {
				content := make([]byte, fileSize)
				rand.New(rand.NewSource(3)).Read(content)
				var err error
				ino, err = admin.Create(p, "f", fileSize)
				if err != nil {
					t.Error(err)
					return
				}
				if err := admin.WriteFile(p, ino, content); err != nil {
					t.Error(err)
					return
				}
				wg := sim.NewWaitGroup(c.Env)
				wg.Add(4)
				for ci := 0; ci < 4; ci++ {
					ci := ci
					cl := c.NewClient()
					c.Env.Go("client", func(cp *sim.Proc) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(100 + ci)))
						for i := 0; i < 80; i++ {
							off := int64(rng.Intn(int(fileSize - 4096)))
							n := 1 + rng.Intn(4096)
							buf := make([]byte, n)
							rng.Read(buf)
							if err := cl.Update(cp, ino, off, buf); err != nil {
								t.Errorf("client %d: %v", ci, err)
								return
							}
						}
					})
				}
				wg.Wait(p)
				if err := c.DrainAll(p, admin); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Scrub(); err != nil {
					t.Error(err)
					return
				}
				ok = true
			})
			c.Env.Run(0)
			c.Env.Close()
			if !ok && !t.Failed() {
				t.Fatal("deadlock")
			}
		})
	}
}

// TestReadYourWritesBeforeDrain: TSUE must serve the newest data from its
// log read cache before any recycle happens.
func TestReadYourWritesBeforeDrain(t *testing.T) {
	cfg := testConfig("tsue")
	cfg.EngineOpts.UnitSize = 1 << 20 // nothing seals during the test
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(9))
		fileSize := 2 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(int(fileSize - 2048)))
			n := 1 + rng.Intn(2048)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
			// Immediate read-back of the updated range, no drain.
			got, err := cl.Read(p, ino, off, int64(n))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatalf("read-your-writes violated at update %d", i)
			}
		}
		// Whole-file read must also see all updates.
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("whole-file read mismatch before drain")
		}
	})
}

// TestRecoveryAllEngines: fail one OSD after a drained update run; the
// reconstructed cluster must scrub clean and serve the exact content.
func TestRecoveryAllEngines(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := testConfig(engine)
			run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
				rng := rand.New(rand.NewSource(11))
				fileSize := 4 * c.StripeWidth()
				content := make([]byte, fileSize)
				rng.Read(content)
				ino, _ := cl.Create(p, "f", fileSize)
				if err := cl.WriteFile(p, ino, content); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 150; i++ {
					off := int64(rng.Intn(int(fileSize - 4096)))
					n := 1 + rng.Intn(4096)
					buf := make([]byte, n)
					rng.Read(buf)
					if err := cl.Update(p, ino, off, buf); err != nil {
						t.Fatal(err)
					}
					copy(content[off:], buf)
				}
				rep, err := c.Recover(p, wire.NodeID(3), 4, RecoverDrainFirst, cl)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Blocks == 0 {
					t.Fatal("node 3 hosted no blocks?")
				}
				if _, err := c.Scrub(); err != nil {
					t.Fatalf("scrub after recovery: %v", err)
				}
				got, err := cl.Read(p, ino, 0, fileSize)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, content) {
					t.Fatal("content mismatch after recovery")
				}
			})
		})
	}
}

// TestRecoveryReplicaReplayTSUE: fail a node with UNRECYCLED DataLog items;
// the replica replay path must restore full consistency.
func TestRecoveryReplicaReplayTSUE(t *testing.T) {
	cfg := testConfig("tsue")
	cfg.EngineOpts.UnitSize = 1 << 20 // keep items unrecycled at failure
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(13))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			off := int64(rng.Intn(int(fileSize - 4096)))
			n := 1 + rng.Intn(4096)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
		}
		// No drain: node 3 dies with a hot DataLog.
		rep, err := c.Recover(p, wire.NodeID(3), 4, RecoverLogReplay, cl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatalf("scrub after replica replay: %v (replayed %d items)", err, rep.ReplayedItems)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after replica replay")
		}
	})
}

func TestLookupMatchesLocalPlacement(t *testing.T) {
	cfg := testConfig("fo")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		ino, err := cl.Create(p, "f", 2*c.StripeWidth())
		if err != nil {
			t.Fatal(err)
		}
		got, pg, err := cl.Lookup(p, ino, 1)
		if err != nil {
			t.Fatal(err)
		}
		sid := wire.StripeID{Ino: ino, Stripe: 1}
		want := c.Placement(sid)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lookup %v != local %v", got, want)
			}
		}
		if int(pg) != c.PG(sid) {
			t.Fatalf("lookup PG %d != local %d", pg, c.PG(sid))
		}
		// PG-level addressing: the MDS-served member set must match the
		// local map, and the stripe's placement must be a rotation of it.
		mem, err := cl.LookupPG(p, pg)
		if err != nil {
			t.Fatal(err)
		}
		inMem := make(map[wire.NodeID]bool)
		for _, id := range mem {
			inMem[id] = true
		}
		for _, id := range want {
			if !inMem[id] {
				t.Fatalf("stripe host %d not in PG %d members %v", id, pg, mem)
			}
		}
		if _, err := cl.LookupPG(p, 1<<30); err == nil {
			t.Fatal("lookup of bogus PG succeeded")
		}
		if _, _, err := cl.Lookup(p, ino, 99); err == nil {
			t.Fatal("lookup of bogus stripe succeeded")
		}
	})
}

func TestHeartbeatLiveness(t *testing.T) {
	cfg := testConfig("fo")
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.HeartbeatTimeout = 50 * time.Millisecond
	c := MustNew(cfg)
	c.Env.Go("observer", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		if dead := c.MDS.DeadOSDs(p.Now(), cfg.HeartbeatTimeout); len(dead) != 0 {
			t.Errorf("healthy OSDs reported dead: %v", dead)
		}
		c.Fabric.SetDown(wire.NodeID(2), true)
		p.Sleep(200 * time.Millisecond)
		dead := c.MDS.DeadOSDs(p.Now(), cfg.HeartbeatTimeout)
		if len(dead) != 1 || dead[0] != wire.NodeID(2) {
			t.Errorf("dead set %v, want [2]", dead)
		}
	})
	c.Env.Run(time.Second)
	c.Env.Close()
}

// TestDeterminism: identical seeds must give identical virtual end times
// and identical device stats.
func TestDeterminism(t *testing.T) {
	runOnce := func() (time.Duration, int64) {
		cfg := testConfig("tsue")
		c := MustNew(cfg)
		cl := c.NewClient()
		c.Env.Go("t", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(21))
			fileSize := 2 * c.StripeWidth()
			content := make([]byte, fileSize)
			rng.Read(content)
			ino, _ := cl.Create(p, "f", fileSize)
			if err := cl.WriteFile(p, ino, content); err != nil {
				t.Error(err)
			}
			for i := 0; i < 100; i++ {
				off := int64(rng.Intn(int(fileSize - 1024)))
				buf := make([]byte, 1+rng.Intn(1024))
				rng.Read(buf)
				if err := cl.Update(p, ino, off, buf); err != nil {
					t.Error(err)
				}
			}
			if err := c.DrainAll(p, cl); err != nil {
				t.Error(err)
			}
		})
		end := c.Env.Run(0)
		ops := c.DeviceStats().WriteOps
		c.Env.Close()
		return end, ops
	}
	e1, o1 := runOnce()
	e2, o2 := runOnce()
	if e1 != e2 || o1 != o2 {
		t.Fatalf("non-deterministic: end %v vs %v, writeOps %d vs %d", e1, e2, o1, o2)
	}
}

// TestMultiNodeFailureRecovery: lose M=2 nodes at once; reconstruction from
// the K survivors must restore exact content.
func TestMultiNodeFailureRecovery(t *testing.T) {
	cfg := testConfig("tsue")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(17))
		fileSize := 4 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			off := int64(rng.Intn(int(fileSize - 4096)))
			buf := make([]byte, 1+rng.Intn(4096))
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
		}
		// Two sequential single-node recoveries (M=2 tolerates both).
		if _, err := c.Recover(p, wire.NodeID(2), 4, RecoverDrainFirst, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recover(p, wire.NodeID(5), 4, RecoverDrainFirst, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("content mismatch after double failure")
		}
	})
}

// TestRemapRoutesNewTraffic: after recovery, updates and reads to remapped
// blocks must route to the new host and stay consistent.
func TestRemapRoutesNewTraffic(t *testing.T) {
	cfg := testConfig("pl")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		rng := rand.New(rand.NewSource(19))
		fileSize := 2 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, _ := cl.Create(p, "f", fileSize)
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Recover(p, wire.NodeID(4), 4, RecoverDrainFirst, cl); err != nil {
			t.Fatal(err)
		}
		// Keep updating after the failure: the remapped placement serves.
		for i := 0; i < 60; i++ {
			off := int64(rng.Intn(int(fileSize - 2048)))
			buf := make([]byte, 1+rng.Intn(2048))
			rng.Read(buf)
			if err := cl.Update(p, ino, off, buf); err != nil {
				t.Fatal(err)
			}
			copy(content[off:], buf)
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Scrub(); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("post-recovery updates diverged")
		}
	})
}
