package cluster

// Stress suite: long randomized kill-update-recover-verify sweeps on top of
// the directed cases in degraded_test.go. The pinned regression seeds stay
// in every run; the randomized grid (engine x mode x seed, single- and
// multi-file) is guarded behind -short so quick CI loops stay fast.

import (
	"fmt"
	"testing"
)

// TestStressFenceRegression pins the surrogate-read fence race: a degraded
// read that had passed the gate could have its journal stolen by a
// concurrent cutover mid-read (or reconstruct from unsettled shards),
// returning stale bytes. PARIX under interleaved recovery at this exact
// seed reproduced it before surrogate-side ops were counted in-flight and
// the degraded route registration moved under the settle gate.
func TestStressFenceRegression(t *testing.T) {
	runKillUpdateRecover(t, "parix", RecoverInterleaved, 11, 500, 100, nil)
}

// TestStressSettleScopeRegression pins the degraded-aware settle scope:
// TSUE's retained active DataLog units could hold pre-failure items for
// degraded stripes; when foreground appends sealed such a unit mid-rebuild,
// its recycle mutated raw shards reconstruction was concurrently reading.
// A multi-file spread over placement groups with constant foreground load
// reproduced it before Settle learned to flush overlay touching the failed
// node's stripes.
func TestStressSettleScopeRegression(t *testing.T) {
	runKillUpdateRecoverMulti(t, "tsue", RecoverInterleaved, 5, 600, 120, 6, 3)
}

// TestStressRandomizedGrid drives every engine through every recovery mode
// at several seeds, single-file, with the kill landing mid-workload while
// recyclers are mid-flight. Long; skipped under -short.
func TestStressRandomizedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("stress grid skipped in -short mode")
	}
	modes := []RecoverMode{RecoverInterleaved, RecoverDrainFirst, RecoverLogReplay}
	seeds := []int64{11, 5077}
	for _, engine := range []string{"fo", "pl", "plr", "parix", "cord", "tsue"} {
		for _, mode := range modes {
			for _, seed := range seeds {
				engine, mode, seed := engine, mode, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", engine, mode, seed), func(t *testing.T) {
					runKillUpdateRecover(t, engine, mode, seed, 400, 130, nil)
				})
			}
		}
	}
}

// TestStressMultiFileRandomized is the multi-file counterpart at a second
// seed set, so PG-spread degraded sets get the same soak. Skipped under
// -short (TestKillUpdateRecoverMultiFile covers the quick path).
func TestStressMultiFileRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-file stress skipped in -short mode")
	}
	for _, seed := range []int64{31337, 40487} {
		for _, engine := range []string{"tsue", "parix", "cord"} {
			engine, seed := engine, seed
			t.Run(fmt.Sprintf("%s/seed%d", engine, seed), func(t *testing.T) {
				runKillUpdateRecoverMulti(t, engine, RecoverInterleaved, seed, 450, 140, 3, 3)
			})
		}
	}
}
