package cluster

import (
	"errors"
	"testing"
	"time"

	"tsue/internal/sim"
)

func TestTokenBucketRate(t *testing.T) {
	tb := &TokenBucket{Rate: 10, Burst: 2} // 10/s, burst of 2
	now := time.Duration(0)
	// Cold start: the bucket is full, so Burst ops pass immediately.
	if !tb.Admit(now, 0) || !tb.Admit(now, 0) {
		t.Fatal("burst not admitted at cold start")
	}
	if tb.Admit(now, 0) {
		t.Fatal("third instant op admitted past burst")
	}
	// One token refills every 100ms.
	now += 100 * time.Millisecond
	if !tb.Admit(now, 0) {
		t.Fatal("refilled token not admitted")
	}
	if tb.Admit(now, 0) {
		t.Fatal("second op admitted on one refilled token")
	}
	// A long idle period refills only up to Burst.
	now += time.Minute
	if !tb.Admit(now, 0) || !tb.Admit(now, 0) {
		t.Fatal("burst not admitted after idle")
	}
	if tb.Admit(now, 0) {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestTokenBucketQueueDepth(t *testing.T) {
	tb := &TokenBucket{MaxInflight: 3} // no rate limit, depth only
	if !tb.Admit(0, 2) {
		t.Fatal("op under depth cap rejected")
	}
	if tb.Admit(0, 3) {
		t.Fatal("op at depth cap admitted")
	}
	if tb.Admit(0, 100) {
		t.Fatal("op far past depth cap admitted")
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := &TokenBucket{}
	for i := 0; i < 100; i++ {
		if !tb.Admit(0, i) {
			t.Fatal("unconfigured bucket rejected an op")
		}
	}
}

// TestAdmissionBounce drives real client ops against an MDS whose policy
// rejects everything past a tiny burst: rejections must surface as
// ErrOverload (errors.Is-able, no route-retry burn), be counted, and a
// backoff-retry loop must eventually land every op.
func TestAdmissionBounce(t *testing.T) {
	cfg := testConfig("fo")
	cfg.Admission = &TokenBucket{Rate: 200, Burst: 1}
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		ino, err := cl.Create(p, "f", c.StripeWidth())
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, make([]byte, c.StripeWidth())); err != nil {
			t.Fatal(err)
		}
		var rejected int64
		const ops = 24
		for i := 0; i < ops; i++ {
			for {
				err := cl.Update(p, ino, int64(i)*64, []byte{byte(i)})
				if err == nil {
					break
				}
				if !errors.Is(err, ErrOverload) {
					t.Fatalf("op %d: non-overload error %v", i, err)
				}
				rejected++
				p.Sleep(5 * time.Millisecond) // back off, then retry
			}
		}
		st := c.AdmissionStats()
		if rejected == 0 {
			t.Fatal("burst=1 at 24 back-to-back ops never bounced")
		}
		if st.Rejected != rejected {
			t.Fatalf("MDS counted %d rejections, submitter saw %d", st.Rejected, rejected)
		}
		if st.Inflight != 0 {
			t.Fatalf("in-flight count %d after all ops completed", st.Inflight)
		}
		if st.Admitted < ops {
			t.Fatalf("admitted %d < %d ops", st.Admitted, ops)
		}
	})
}

// TestAdmissionNilPolicyNoTraffic pins the zero-overhead default: with no
// policy configured, no AdmitOp round trip is sent and the counters stay
// zero.
func TestAdmissionNilPolicyNoTraffic(t *testing.T) {
	cfg := testConfig("fo")
	run(t, cfg, func(p *sim.Proc, c *Cluster, cl *Client) {
		ino, err := cl.Create(p, "f", c.StripeWidth())
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.WriteFile(p, ino, make([]byte, c.StripeWidth())); err != nil {
			t.Fatal(err)
		}
		if err := cl.Update(p, ino, 0, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		st := c.AdmissionStats()
		if st.Admitted != 0 || st.Rejected != 0 || st.Inflight != 0 {
			t.Fatalf("nil policy produced admission traffic: %+v", st)
		}
	})
}

// TestAdmissionDepthBackpressure exercises the queue-depth check through
// concurrent clients: with MaxInflight=1, two clients updating at the same
// instant cannot both be admitted on the first try, yet both complete
// under backoff-retry and the in-flight gauge drains to zero.
func TestAdmissionDepthBackpressure(t *testing.T) {
	cfg := testConfig("fo")
	cfg.Admission = &TokenBucket{MaxInflight: 1}
	c := MustNew(cfg)
	setup := c.NewClient()
	var ino uint64
	c.Env.Go("setup", func(p *sim.Proc) {
		var err error
		ino, err = setup.Create(p, "f", c.StripeWidth())
		if err != nil {
			t.Error(err)
			return
		}
		if err := setup.WriteFile(p, ino, make([]byte, c.StripeWidth())); err != nil {
			t.Error(err)
		}
	})
	c.Env.Run(0)
	var rejections int64
	doneOps := 0
	for i := 0; i < 4; i++ {
		i := i
		cl := c.NewClient()
		c.Env.Go("client", func(p *sim.Proc) {
			for {
				err := cl.Update(p, ino, int64(i)*128, []byte{byte(i)})
				if err == nil {
					doneOps++
					return
				}
				if !errors.Is(err, ErrOverload) {
					t.Errorf("client %d: %v", i, err)
					return
				}
				rejections++
				p.Sleep(time.Millisecond)
			}
		})
	}
	c.Env.Run(0)
	c.Env.Close()
	if doneOps != 4 {
		t.Fatalf("completed %d/4 ops", doneOps)
	}
	st := c.AdmissionStats()
	if st.Rejected != rejections {
		t.Fatalf("MDS rejected %d, clients saw %d", st.Rejected, rejections)
	}
	if st.Inflight != 0 {
		t.Fatalf("in-flight %d after drain", st.Inflight)
	}
}
