package cluster

import (
	"fmt"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// RecoveryReport summarizes one recovery run.
type RecoveryReport struct {
	Blocks         int
	Bytes          int64
	DrainTime      time.Duration
	RebuildTime    time.Duration
	ReplayedItems  int
	TotalTime      time.Duration
	BandwidthBps   float64
	ReplayedBytes  int64
	RemappedBlocks int
}

// Recover handles the failure of one OSD, following the paper's recovery
// protocol (§2.3.2, §4.2, Fig. 8b):
//
//  1. If drainFirst, recycle all logs cluster-wide before the failure is
//     injected (the paper terminates client updates and merges logs before
//     reconstruction; for lazy-log schemes this drain dominates recovery
//     time and is charged to it).
//  2. Mark the node failed.
//  3. Reconstruct every block the node hosted onto surviving OSDs (round
//     robin), `parallel` stripes at a time, and remap placement.
//  4. For TSUE without a prior drain: fetch the failed node's unrecycled
//     DataLog items from their replica holders and replay them through the
//     normal update path, then drain (§4.2 log reliability).
func (c *Cluster) Recover(p *sim.Proc, failed wire.NodeID, parallel int, drainFirst bool, via *Client) (*RecoveryReport, error) {
	if parallel < 1 {
		parallel = 1
	}
	rep := &RecoveryReport{}
	start := p.Now()

	if drainFirst {
		if err := c.DrainAll(p, via); err != nil {
			return nil, err
		}
	}
	rep.DrainTime = p.Now() - start

	// Inject the failure.
	c.Fabric.SetDown(failed, true)
	failedOSD := c.OSDByID(failed)

	// The blocks to rebuild: everything the dead node hosted.
	lost := failedOSD.store.Blocks()

	// Round-robin targets among live survivors (earlier failures stay
	// excluded).
	var survivors []wire.NodeID
	for _, osd := range c.OSDs {
		if osd.id != failed && !c.Fabric.Down(osd.id) {
			survivors = append(survivors, osd.id)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("cluster: no live recovery targets")
	}
	rebuildStart := p.Now()
	sem := c.Env.NewResource("recover-sem", parallel)
	wg := sim.NewWaitGroup(c.Env)
	wg.Add(len(lost))
	var firstErr error
	for i, blk := range lost {
		blk := blk
		target := survivors[i%len(survivors)]
		c.remap[blk] = target
		rep.RemappedBlocks++
		c.Env.Go("recover", func(hp *sim.Proc) {
			defer wg.Done()
			sem.Acquire(hp)
			defer sem.Release()
			resp, err := c.Fabric.Call(hp, via.id, target, &wire.RecoverBlock{Blk: blk})
			if err == nil {
				if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
					err = fmt.Errorf("%s", a.Err)
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("recover %v: %w", blk, err)
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Blocks = len(lost)
	rep.Bytes = int64(len(lost)) * c.Cfg.BlockSize
	rep.RebuildTime = p.Now() - rebuildStart

	if !drainFirst {
		// Replay the failed node's unrecycled DataLog from replica holders
		// (TSUE reliability path; a no-op for in-place schemes).
		items, err := c.fetchReplicaItems(p, failed, via)
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			osds := c.Placement(it.Blk.StripeID())
			resp, err := c.Fabric.Call(p, via.id, osds[it.Blk.Index], &wire.Update{Blk: it.Blk, Off: it.Off, Data: it.Data})
			if err != nil {
				return nil, fmt.Errorf("replay %v: %w", it.Blk, err)
			}
			if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
				return nil, fmt.Errorf("replay %v: %s", it.Blk, a.Err)
			}
			rep.ReplayedItems++
			rep.ReplayedBytes += int64(len(it.Data))
		}
		if err := c.DrainAll(p, via); err != nil {
			return nil, err
		}
	}

	rep.TotalTime = p.Now() - start
	if rep.TotalTime > 0 {
		rep.BandwidthBps = float64(rep.Bytes) / rep.TotalTime.Seconds()
	}
	return rep, nil
}

// fetchReplicaItems collects the failed node's replicated, unrecycled
// DataLog items from every survivor, in a deterministic order.
func (c *Cluster) fetchReplicaItems(p *sim.Proc, failed wire.NodeID, via *Client) ([]wire.ReplicaItem, error) {
	var items []wire.ReplicaItem
	for _, osd := range c.OSDs {
		if osd.id == failed || c.Fabric.Down(osd.id) {
			continue
		}
		resp, err := c.Fabric.Call(p, via.id, osd.id, &wire.ReplicaFetch{Node: failed})
		if err != nil {
			return nil, err
		}
		rr, ok := resp.(*wire.ReplicaResp)
		if !ok {
			// Engines without replica support answer with an "unhandled" Ack.
			continue
		}
		items = append(items, rr.Items...)
	}
	return items, nil
}
