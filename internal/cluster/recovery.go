package cluster

import (
	"fmt"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// RecoverMode selects how recovery interacts with logs and foreground I/O
// (the paper's §2.3.2/§4.2 recovery discussion and the Fig. 8b comparison).
type RecoverMode int

const (
	// RecoverDrainFirst terminates client updates (gate), merges every log
	// cluster-wide, then reconstructs — the paper's baseline protocol, where
	// lazy-log schemes pay their whole deferred merge debt before a single
	// block is rebuilt.
	RecoverDrainFirst RecoverMode = iota
	// RecoverLogReplay terminates client updates (gate) but merges only the
	// minimum log state — the settle barrier, which for lazy-log schemes
	// degenerates to a full drain while TSUE keeps its replayable DataLog —
	// then reconstructs and replays the failed node's replicated unrecycled
	// DataLog through the engines' replay hook (§4.2 log reliability).
	RecoverLogReplay
	// RecoverInterleaved keeps foreground I/O flowing while the node
	// rebuilds: a brief gated settle barrier restores raw stripe
	// consistency, then reconstruction proceeds `parallel` stripes at a time
	// while degraded-stripe I/O routes through the surrogate (reads
	// reconstruct on the fly, updates journal) and non-degraded I/O runs the
	// normal path — contending with recovery traffic on the same simulated
	// NICs. A second brief gate covers the journal cutover.
	RecoverInterleaved
)

// String returns the mode's experiment-facing name.
func (m RecoverMode) String() string {
	switch m {
	case RecoverDrainFirst:
		return "drain-first"
	case RecoverLogReplay:
		return "log-replay"
	case RecoverInterleaved:
		return "interleaved"
	}
	return fmt.Sprintf("RecoverMode(%d)", int(m))
}

// RecoveryReport summarizes one recovery run.
type RecoveryReport struct {
	// Mode is the protocol the run used.
	Mode RecoverMode
	// Blocks and Bytes count the reconstructed blocks.
	Blocks int
	Bytes  int64
	// DrainTime is the time spent in the gated pre-reconstruction log
	// barrier: a full drain for drain-first, the settle barrier for
	// log-replay and interleaved.
	DrainTime time.Duration
	// RebuildTime covers the parallel block reconstruction phase.
	RebuildTime time.Duration
	// ReplayTime covers the journal cutover (replica + degraded-update
	// replay through the engines).
	ReplayTime time.Duration
	// GatedTime is how long client updates were fenced in total — the
	// foreground outage the degraded experiment measures.
	GatedTime time.Duration
	// ReplayedItems / ReplayedBytes count journal records merged back
	// through the engines (failed node's DataLog replicas plus degraded
	// updates journaled during recovery).
	ReplayedItems int
	ReplayedBytes int64
	// ReencodedStripes counts stripes whose parity set was repaired by
	// re-encoding (lost first-parity with a cross-parity delta buffer).
	ReencodedStripes int
	// TotalTime is failure-to-healthy wall (virtual) time; BandwidthBps is
	// reconstruction volume over it.
	TotalTime    time.Duration
	BandwidthBps float64
	// RemappedBlocks counts placement overrides installed.
	RemappedBlocks int
	// TargetBlocks counts rebuilt blocks per destination OSD — with PG
	// placement the targets are the per-PG stable replacements, so the
	// write side of recovery spreads across the cluster.
	TargetBlocks map[wire.NodeID]int
	// SourceReadBytes counts reconstruction bytes read per source OSD
	// during the recovery window (rebuild fan-in plus degraded on-the-fly
	// reconstruction) — the recovery fan-out the placement experiment
	// reports.
	SourceReadBytes map[wire.NodeID]int64
}

// Recover handles the failure of one OSD under the given mode. All modes
// end with every lost block rebuilt on its PG's stable replacement OSD,
// placement remapped, and — for modes that replay — the failed node's
// unrecycled updates and any degraded-mode journal merged back through the
// engines, so a subsequent drain + scrub is byte-exact.
func (c *Cluster) Recover(p *sim.Proc, failed wire.NodeID, parallel int, mode RecoverMode, via *Client) (*RecoveryReport, error) {
	if t := c.MDS.trans; t != nil {
		// Failure handling and an in-flight rebalance are mutually exclusive
		// control-plane operations (Expand refuses symmetrically): recovery
		// targets, surrogate selection and the settle barrier all assume one
		// authoritative map. Kill resolves the transition (per-PG abort or
		// finish) first; Recover then runs under the settled epoch.
		return nil, fmt.Errorf("cluster: cannot recover node %d while epoch %d is staged: %w",
			failed, t.next, ErrTransitionInProgress)
	}
	if parallel < 1 {
		parallel = 1
	}
	// pre: the degraded window was already opened (BeginDegraded or a
	// surrogate promotion path) — routes are published and the settle
	// barrier ran, so the replaying modes skip straight to the rebuild.
	pre := c.degraded[failed] != nil
	if pre && mode == RecoverDrainFirst {
		return nil, fmt.Errorf("cluster: node %d has an open degraded window; drain-first recovery would drop its journal", failed)
	}
	rep := &RecoveryReport{Mode: mode, TargetBlocks: make(map[wire.NodeID]int)}
	start := p.Now()
	c.resetRecoverySources()

	switch mode {
	case RecoverDrainFirst:
		// Terminate updates (waiting out in-flight ones), merge all logs,
		// then fail and rebuild.
		gateStart := p.Now()
		c.fenceUpdates(p)
		err := c.DrainAll(p, via)
		rep.DrainTime = p.Now() - gateStart
		if err == nil {
			c.Fabric.SetDown(failed, true)
			var lost []wire.BlockID
			if lost, err = c.rebuild(p, failed, parallel, via, rep, false); err == nil {
				c.resetStripeState(lost)
			}
		}
		c.openGate()
		rep.GatedTime = p.Now() - gateStart
		if err != nil {
			return nil, err
		}

	case RecoverLogReplay:
		// The degraded route is published only after the gate has closed:
		// were it published against an open gate, a degraded read could
		// slip through and reconstruct from raw shards the settle barrier
		// has not yet made stripe-consistent. Registering before the settle
		// (but under the gate) lets client ops to the dead node's stripes
		// block at the gate instead of burning their bounded node-down
		// retry budget for the whole barrier.
		c.Fabric.SetDown(failed, true)
		gateStart := p.Now()
		c.fenceUpdates(p)
		var err error
		if !pre {
			_, err = c.registerDegraded(p, failed, via)
			if err == nil {
				err = c.SettleAll(p, via, failed)
			}
		}
		rep.DrainTime = p.Now() - gateStart
		if err == nil {
			var lost []wire.BlockID
			if lost, err = c.rebuild(p, failed, parallel, via, rep, true); err == nil {
				c.resetStripeState(lost)
				if err = c.cutover(p, failed, via, rep); err == nil {
					// Charge the replayed updates' merge debt to recovery,
					// per the paper's accounting.
					err = c.DrainAll(p, via)
				}
			}
		}
		c.openGate()
		rep.GatedTime = p.Now() - gateStart
		if err != nil {
			return nil, err
		}

	case RecoverInterleaved:
		c.Fabric.SetDown(failed, true)
		// Brief fence: publish the degraded routes under the closed gate
		// and restore raw stripe consistency (see RecoverLogReplay for the
		// ordering rationale), then let foreground I/O flow again while
		// blocks rebuild. A pre-opened window already did both — the
		// degraded stripes' raw shards have been frozen since — so the
		// fence is skipped entirely.
		if !pre {
			gateStart := p.Now()
			c.fenceUpdates(p)
			_, err := c.registerDegraded(p, failed, via)
			if err == nil {
				err = c.SettleAll(p, via, failed)
			}
			c.openGate()
			rep.DrainTime = p.Now() - gateStart
			rep.GatedTime = p.Now() - gateStart
			if err != nil {
				return nil, err
			}
		}
		lost, err := c.rebuild(p, failed, parallel, via, rep, true)
		if err != nil {
			return nil, err
		}
		c.resetStripeState(lost)
		// Second fence: wait out in-flight surrogate ops (a degraded read
		// that already passed the gate must finish its journal overlay
		// before the steal), replay the journal, and cut clients back over
		// to the rebuilt placement.
		gateStart := p.Now()
		c.fenceUpdates(p)
		err = c.cutover(p, failed, via, rep)
		c.openGate()
		rep.GatedTime += p.Now() - gateStart
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("cluster: unknown recover mode %d", mode)
	}

	rep.SourceReadBytes = c.recoverySources()
	rep.TotalTime = p.Now() - start
	if rep.TotalTime > 0 {
		rep.BandwidthBps = float64(rep.Bytes) / rep.TotalTime.Seconds()
	}
	return rep, nil
}

// rebuild reconstructs every block the failed node hosted onto surviving
// OSDs, `parallel` blocks at a time, remapping placement as it goes. Each
// block's target is its PG's stable replacement for the failed slot
// (placement.Replacement), so a single death moves only the dead node's
// PGs and the rebuild writes spread exactly as the CRUSH-like map dictates
// — excluding any OSD already hosting another block of the same stripe, so
// a stripe never doubles up. It returns the lost block list. With repair
// set, blocks whose plain reconstruction could bake a torn stripe in
// (stripeRepair) get the full parity re-encode instead; drain-first
// recovery passes false, since a fully drained, gated cluster cannot hold
// a torn stripe.
func (c *Cluster) rebuild(p *sim.Proc, failed wire.NodeID, parallel int, via *Client, rep *RecoveryReport, repair bool) ([]wire.BlockID, error) {
	failedOSD := c.OSDByID(failed)
	// Placement, not the dead store, is the authority for what is lost: a
	// block the current map (plus remaps) places elsewhere — e.g. one a
	// finish-resolved transition migrated away — is not this failure's to
	// rebuild.
	var lost []wire.BlockID
	for _, blk := range failedOSD.store.Blocks() {
		if c.Placement(blk.StripeID())[blk.Index] == failed {
			lost = append(lost, blk)
		}
	}

	if rep.TargetBlocks == nil {
		rep.TargetBlocks = make(map[wire.NodeID]int)
	}
	dead := func(id wire.NodeID) bool { return c.Fabric.Down(id) }
	targets := make([]wire.NodeID, len(lost))
	for i, blk := range lost {
		cur := c.Placement(blk.StripeID())
		target, err := c.MDS.PlacementMap().Replacement(blk.StripeID(), int(blk.Index), dead,
			func(id wire.NodeID) bool {
				for j, m := range cur {
					if j != int(blk.Index) && m == id {
						return true
					}
				}
				return false
			})
		if err != nil {
			return nil, fmt.Errorf("cluster: no recovery target for %v: %w", blk, err)
		}
		targets[i] = target
		c.remap[blk] = target
		rep.RemappedBlocks++
		rep.TargetBlocks[target]++
	}
	rebuildStart := p.Now()
	sem := c.Env.NewResource("recover-sem", parallel)
	wg := sim.NewWaitGroup(c.Env)
	wg.Add(len(lost))
	var firstErr error
	for i, blk := range lost {
		blk := blk
		target := targets[i]
		reencode := repair && c.stripeRepair(blk)
		if reencode {
			rep.ReencodedStripes++
		}
		c.Env.Go("recover", func(hp *sim.Proc) {
			defer wg.Done()
			sem.Acquire(hp)
			defer sem.Release()
			resp, err := c.Fabric.Call(hp, via.id, target, &wire.RecoverBlock{Blk: blk, Reencode: reencode})
			if err == nil {
				if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
					err = fmt.Errorf("%s", a.Err)
				}
			}
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("recover %v: %w", blk, err)
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Blocks = len(lost)
	rep.Bytes = int64(len(lost)) * c.Cfg.BlockSize
	rep.RebuildTime = p.Now() - rebuildStart
	return lost, nil
}

// stripeRepair reports whether rebuilding the lost block must re-encode the
// stripe's whole parity set (recoverStripeRepair) instead of a plain
// reconstruction. Two tear classes require it with M >= 2:
//
//   - the dead node hosted a data block under a scheme whose data holder
//     propagates parity deltas itself (FO sequentially, PL/PLR/PARIX by
//     fan-out): dying mid-propagation leaves live parities disagreeing
//     about the final update;
//   - the dead node hosted the first parity block under a scheme that
//     buffers cross-parity deltas there (TSUE's DeltaLog, CoRD's
//     collector): the buffered deltas for the other parities died with it.
//
// TSUE without a DeltaLog (the HDD config) fans parity deltas out from the
// data holder at recycle time, so its data blocks fall in the first class;
// with the DeltaLog the data holder sends one message to one node and
// cannot tear, but the DeltaLog holder itself becomes the second class.
func (c *Cluster) stripeRepair(blk wire.BlockID) bool {
	if c.Cfg.M < 2 {
		return false
	}
	switch c.Cfg.Engine {
	case "fo", "pl", "plr", "parix":
		return int(blk.Index) < c.Cfg.K
	case "cord":
		return int(blk.Index) == c.Cfg.K
	case "tsue":
		if c.Cfg.EngineOpts.UseDeltaLog {
			return int(blk.Index) == c.Cfg.K
		}
		return int(blk.Index) < c.Cfg.K
	}
	return false
}

// cutover replays the surrogate journals — the failed node's replicated
// unrecycled DataLog items followed by every update journaled while the
// node was degraded — through the engines' replay hook at the (remapped)
// home OSDs, then atomically retires the degraded route. With per-PG
// surrogates there is one journal per surrogate OSD; a stripe's records
// all live on its PG's surrogate, so draining surrogates in deterministic
// order preserves per-range replay order. It must run under the closed
// gate (after a fence, so no degraded op is mid-flight) so the journals
// cannot grow behind the steal and degraded reads cannot observe
// mid-replay stripes.
func (c *Cluster) cutover(p *sim.Proc, failed wire.NodeID, via *Client, rep *RecoveryReport) error {
	st := c.degraded[failed]
	if st == nil {
		return nil
	}
	replayStart := p.Now()
	for {
		// Atomic with the steals below: with the gate closed nothing can
		// append, so journals found empty stay empty until we unregister.
		remaining := false
		for _, sur := range st.surrogates {
			if len(c.OSDByID(sur).journalItems(failed)) == 0 {
				continue
			}
			remaining = true
			resp, err := c.Fabric.Call(p, via.id, sur, &wire.JournalFetch{Failed: failed})
			if err != nil {
				return fmt.Errorf("journal fetch @%d: %w", sur, err)
			}
			rr, ok := resp.(*wire.ReplicaResp)
			if !ok {
				return fmt.Errorf("journal fetch @%d: unexpected response %T", sur, resp)
			}
			// Strictly in journal order: replayed records must not reorder
			// against each other (overwrites of the same range).
			for _, it := range rr.Items {
				osds := c.Placement(it.Blk.StripeID())
				resp, err := c.Fabric.Call(p, via.id, osds[it.Blk.Index], &wire.ReplayUpdate{Blk: it.Blk, Off: it.Off, Data: it.Data, Sum: wire.Checksum(it.Data)})
				if err != nil {
					return fmt.Errorf("replay %v @%d: %w", it.Blk, osds[it.Blk.Index], err)
				}
				if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
					return fmt.Errorf("replay %v @%d: %s", it.Blk, osds[it.Blk.Index], a.Err)
				}
				rep.ReplayedItems++
				rep.ReplayedBytes += int64(len(it.Data))
			}
		}
		if !remaining {
			c.unregisterDegraded(failed)
			break
		}
	}
	rep.ReplayTime = p.Now() - replayStart
	return nil
}

// fetchReplicaItems collects the failed node's replicated, unrecycled
// DataLog items from every surviving holder. With Copies <= 2 each item
// has exactly one replica, so holders' lists are disjoint and the union is
// the complete stream (it can split across holders when an earlier failure
// moved the ring successor); with Copies > 2 every holder has a full copy,
// so the largest list is returned to avoid double-replaying duplicates.
func (c *Cluster) fetchReplicaItems(p *sim.Proc, failed wire.NodeID, via *Client) ([]wire.ReplicaItem, error) {
	var all, best []wire.ReplicaItem
	for _, osd := range c.OSDs {
		if osd.id == failed || c.Fabric.Down(osd.id) {
			continue
		}
		resp, err := c.Fabric.Call(p, via.id, osd.id, &wire.ReplicaFetch{Node: failed})
		if err != nil {
			return nil, err
		}
		rr, ok := resp.(*wire.ReplicaResp)
		if !ok {
			// Engines without replica support answer with an "unhandled" Ack.
			continue
		}
		all = append(all, rr.Items...)
		if len(rr.Items) > len(best) {
			best = rr.Items
		}
	}
	if c.Cfg.EngineOpts.Copies > 2 {
		return best, nil
	}
	return all, nil
}
