package rebalance

import (
	"fmt"
	"testing"
	"time"

	"tsue/internal/placement"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

func mv(ino uint64, stripe uint32, idx uint16, pg int, from, to wire.NodeID) placement.Move {
	return placement.Move{
		Blk: wire.BlockID{Ino: ino, Stripe: stripe, Index: idx},
		PG:  pg, From: from, To: to,
	}
}

func TestBuildPlanDeterministicGrouping(t *testing.T) {
	moves := []placement.Move{
		mv(2, 1, 0, 7, 1, 9),
		mv(1, 0, 3, 3, 2, 9),
		mv(1, 0, 1, 3, 4, 9),
		mv(1, 2, 0, 7, 5, 9),
	}
	plan := BuildPlan(0, 1, moves, 2.5)
	if plan.TotalMoves != 4 || plan.BoundBlocks != 2.5 {
		t.Fatalf("plan totals wrong: %+v", plan)
	}
	if len(plan.PGs) != 2 || plan.PGs[0].PG != 3 || plan.PGs[1].PG != 7 {
		t.Fatalf("PG grouping wrong: %+v", plan.PGs)
	}
	if plan.PGs[0].Moves[0].Blk.Index != 1 || plan.PGs[0].Moves[1].Blk.Index != 3 {
		t.Fatalf("moves not sorted: %+v", plan.PGs[0].Moves)
	}
	if plan.PGs[1].Moves[0].Blk.Ino != 1 {
		t.Fatalf("moves not sorted across inos: %+v", plan.PGs[1].Moves)
	}
}

func TestThrottlePacesVirtualTime(t *testing.T) {
	env := sim.NewEnv()
	th := NewThrottle(1 << 20) // 1 MiB/s
	var elapsed time.Duration
	env.Go("taker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			th.Take(p, 1<<20)
		}
		elapsed = p.Now()
	})
	env.Run(0)
	env.Close()
	// 10 MiB at 1 MiB/s: the first token rides the initial burst window, the
	// rest pace out; allow 10% tolerance either way.
	if elapsed < 8*time.Second || elapsed > 11*time.Second {
		t.Fatalf("10 MiB at 1 MiB/s took %v", elapsed)
	}
}

func TestThrottleUnlimited(t *testing.T) {
	env := sim.NewEnv()
	th := NewThrottle(0)
	var elapsed time.Duration
	env.Go("taker", func(p *sim.Proc) {
		th.Take(p, 1<<30)
		elapsed = p.Now()
	})
	env.Run(0)
	env.Close()
	if elapsed != 0 {
		t.Fatalf("unthrottled Take slept %v", elapsed)
	}
}

// fakeMover counts concurrency and aggregates deterministically.
type fakeMover struct {
	env       *sim.Env
	inFlight  int
	maxSeen   int
	failPG    int // -1: never fail
	perPGWork time.Duration
}

func (f *fakeMover) MigratePG(p *sim.Proc, pg PGMoves, th *Throttle) (PGResult, error) {
	f.inFlight++
	if f.inFlight > f.maxSeen {
		f.maxSeen = f.inFlight
	}
	defer func() { f.inFlight-- }()
	var bytes int64
	for range pg.Moves {
		th.Take(p, 1<<10)
		bytes += 1 << 10
	}
	p.Sleep(f.perPGWork)
	if pg.PG == f.failPG {
		return PGResult{}, fmt.Errorf("boom")
	}
	return PGResult{
		PG: pg.PG, CopiedBlocks: len(pg.Moves), CopiedBytes: bytes,
		ReplayedItems: 1, ReplayedBytes: 10, Stall: time.Duration(pg.PG) * time.Millisecond,
	}, nil
}

func planN(pgs, movesPer int) *Plan {
	var moves []placement.Move
	for pg := 0; pg < pgs; pg++ {
		for i := 0; i < movesPer; i++ {
			moves = append(moves, mv(1, uint32(pg*movesPer+i), 0, pg, 1, 2))
		}
	}
	return BuildPlan(0, 1, moves, float64(pgs*movesPer)/1.5)
}

func TestRunAggregatesAndBoundsConcurrency(t *testing.T) {
	env := sim.NewEnv()
	fm := &fakeMover{env: env, failPG: -1, perPGWork: time.Millisecond}
	var rep *Report
	var err error
	env.Go("run", func(p *sim.Proc) {
		rep, err = Run(env, p, planN(8, 3), Config{MaxInFlightPGs: 2}, fm)
	})
	env.Run(0)
	env.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fm.maxSeen > 2 {
		t.Fatalf("concurrency %d exceeded MaxInFlightPGs", fm.maxSeen)
	}
	if rep.PGsMigrated != 8 || rep.MovedBlocks != 24 || rep.MovedBytes != 24<<10 {
		t.Fatalf("aggregation wrong: %+v", rep)
	}
	if rep.ReplayedItems != 8 || rep.StallTime != 28*time.Millisecond || rep.MaxStall != 7*time.Millisecond {
		t.Fatalf("stall/replay aggregation wrong: %+v", rep)
	}
	if rep.ActualOverBound < 1.49 || rep.ActualOverBound > 1.51 {
		t.Fatalf("ActualOverBound = %v", rep.ActualOverBound)
	}
}

func TestRunPropagatesMoverError(t *testing.T) {
	env := sim.NewEnv()
	fm := &fakeMover{env: env, failPG: 3}
	var err error
	env.Go("run", func(p *sim.Proc) {
		_, err = Run(env, p, planN(6, 1), Config{MaxInFlightPGs: 1}, fm)
	})
	env.Run(0)
	env.Close()
	if err == nil {
		t.Fatal("mover error swallowed")
	}
}
