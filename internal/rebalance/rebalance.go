// Package rebalance is the control plane for online cluster reshaping: it
// turns a placement-epoch transition (internal/placement's AddOSD /
// RemoveOSD / SplitPGs diffs) into a throttled background migration. The
// package owns the *schedule* — which PGs move when, how fast bytes may
// flow, how much runs in parallel — and reports movement against the
// minimal-remap bound; the *mechanics* of moving one PG (raw copy, log
// settle/replay, MDS cutover) are behind the Mover interface, implemented
// by the cluster layer. Kermarrec et al. and the Facebook warehouse study
// (PAPERS.md) both find migration traffic, not repair traffic, dominating
// operational cost in EC clusters: the throttle and the per-PG cutover
// stall are exactly the two knobs those papers argue an operator must hold.
package rebalance

import (
	"fmt"
	"sort"
	"time"

	"tsue/internal/placement"
	"tsue/internal/sim"
)

// Config tunes the migration scheduler.
type Config struct {
	// RateBps caps the aggregate block-copy rate in bytes per second of
	// virtual time (0 = unthrottled). The cap spans all in-flight PGs.
	RateBps int64
	// MaxInFlightPGs bounds how many PGs migrate concurrently (0 = default
	// 2). Cutovers serialize on the cluster's fence regardless; this bounds
	// the copy-phase parallelism.
	MaxInFlightPGs int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlightPGs <= 0 {
		c.MaxInFlightPGs = 2
	}
	return c
}

// PGMoves is one placement group's share of a transition's diff.
type PGMoves struct {
	PG    int
	Moves []placement.Move
}

// Plan is a transition's full migration schedule: the per-PG move lists in
// deterministic order, plus the minimal-remap bound the movement will be
// judged against.
type Plan struct {
	FromEpoch, ToEpoch uint64
	PGs                []PGMoves
	TotalMoves         int
	// BoundBlocks is the minimal-remap lower bound for the transition
	// (placement.MinimalBound over the same stripe population the diff
	// covered).
	BoundBlocks float64
}

// BuildPlan groups a transition's moves by destination PG, both levels in
// deterministic order. moves must already reflect any physical remaps the
// caller overlays on the map diff.
func BuildPlan(from, to uint64, moves []placement.Move, boundBlocks float64) *Plan {
	perPG := make(map[int][]placement.Move)
	for _, mv := range moves {
		perPG[mv.PG] = append(perPG[mv.PG], mv)
	}
	pgs := make([]int, 0, len(perPG))
	for pg := range perPG {
		pgs = append(pgs, pg)
	}
	sort.Ints(pgs)
	plan := &Plan{FromEpoch: from, ToEpoch: to, BoundBlocks: boundBlocks, TotalMoves: len(moves)}
	for _, pg := range pgs {
		mvs := perPG[pg]
		sort.Slice(mvs, func(i, j int) bool {
			a, b := mvs[i].Blk, mvs[j].Blk
			if a.Ino != b.Ino {
				return a.Ino < b.Ino
			}
			if a.Stripe != b.Stripe {
				return a.Stripe < b.Stripe
			}
			return a.Index < b.Index
		})
		plan.PGs = append(plan.PGs, PGMoves{PG: pg, Moves: mvs})
	}
	return plan
}

// Throttle is a token bucket over virtual time shared by every in-flight PG
// migration: Take blocks the calling process until n bytes of budget have
// accrued at the configured rate.
type Throttle struct {
	rate  float64 // bytes/sec; <= 0 means unthrottled
	burst float64
	avail float64
	last  time.Duration
}

// NewThrottle builds a throttle at rateBps bytes/second (0 disables). The
// bucket holds at most one second of budget, so an idle spell cannot bank
// an unbounded burst.
func NewThrottle(rateBps int64) *Throttle {
	return &Throttle{rate: float64(rateBps), burst: float64(rateBps)}
}

// Take consumes n bytes of budget, sleeping in virtual time as needed.
// Concurrent takers are served as the scheduler wakes them; fairness across
// PGs is not guaranteed, only the aggregate rate.
func (t *Throttle) Take(p *sim.Proc, n int64) {
	if t == nil || t.rate <= 0 || n <= 0 {
		return
	}
	for {
		now := p.Now()
		t.avail += t.rate * (now - t.last).Seconds()
		t.last = now
		if t.avail > t.burst {
			t.avail = t.burst
		}
		if t.avail >= float64(n) {
			t.avail -= float64(n)
			return
		}
		need := (float64(n) - t.avail) / t.rate
		d := time.Duration(need * float64(time.Second))
		if d <= 0 {
			// Float rounding can leave avail a hair under n, truncating the
			// computed wait to zero — a 0ns sleep re-wakes at the same
			// virtual instant with nothing accrued, freezing the clock.
			// Guarantee progress.
			d = time.Microsecond
		}
		p.Sleep(d)
	}
}

// Outcome classifies how one PG's migration ended. A transition that loses
// an OSD mid-flight resolves every in-flight PG to Aborted or Finished
// against the liveness view instead of wedging the cluster.
type Outcome int

const (
	// OutcomeCommitted: the PG migrated and cut over on the normal path.
	OutcomeCommitted Outcome = iota
	// OutcomeFinished: an OSD relevant to the PG died mid-migration, but
	// the PG still completed its cutover — remaining copies reconstructed
	// from surviving stripe peers, orphaned overlay stashed for the
	// failure's recovery.
	OutcomeFinished
	// OutcomeAborted: the PG rolled back to the prior epoch — partial
	// copies retired, extracted overlay restored, foreground I/O re-opened
	// against the old homes.
	OutcomeAborted
)

// String returns the outcome's report name.
func (o Outcome) String() string {
	switch o {
	case OutcomeCommitted:
		return "committed"
	case OutcomeFinished:
		return "finished"
	case OutcomeAborted:
		return "aborted"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// PGResult is one PG migration's accounting, produced by the Mover.
type PGResult struct {
	PG             int
	Outcome        Outcome
	CopiedBlocks   int
	CopiedBytes    int64
	RecopiedBlocks int
	// Reconstructed counts blocks whose copy was completed by K-shard
	// reconstruction at the new home because the old home died mid-flight
	// (failure-resolution "finish" policy).
	Reconstructed int
	// RestoredItems counts extracted overlay records replayed back into
	// their old homes by an abort.
	RestoredItems int
	// ReplayedItems / ReplayedBytes count pure-overlay log records that
	// followed blocks to their new homes (wire.MigrateLog → ReplayUpdate).
	ReplayedItems int
	ReplayedBytes int64
	// Stall is how long the PG's cutover held the cluster's update fence —
	// the foreground outage this PG's flip cost.
	Stall time.Duration
}

// Mover executes one PG migration end to end: bulk copy (paced through th),
// fence, settle/drain, catch-up, log replay, MDS cutover. Implemented by
// the cluster layer.
type Mover interface {
	MigratePG(p *sim.Proc, pg PGMoves, th *Throttle) (PGResult, error)
}

// Report aggregates a whole transition's migration.
type Report struct {
	FromEpoch, ToEpoch uint64
	PGsMigrated        int
	MovedBlocks        int
	MovedBytes         int64
	RecopiedBlocks     int
	ReplayedItems      int
	ReplayedBytes      int64
	// Outcomes holds every PG's per-migration accounting (including its
	// abort/finish resolution) in ascending PG order.
	Outcomes []PGResult
	// AbortedPGs / FinishedPGs count PGs resolved by the failure policies;
	// AbortedBytes is copy volume thrown away by aborts (excluded from
	// MovedBytes) and ReconstructedBlocks counts finish-path peer
	// reconstructions.
	AbortedPGs          int
	FinishedPGs         int
	AbortedBytes        int64
	ReconstructedBlocks int
	// BoundBlocks is the minimal-remap lower bound; ActualOverBound is
	// MovedBlocks relative to it (1.0 = optimal; 0 when the bound is 0,
	// e.g. a pure PG split).
	BoundBlocks     float64
	ActualOverBound float64
	// MigrateTime is the whole migration's virtual wall time; StallTime
	// sums every PG's fenced cutover window and MaxStall is the worst one.
	MigrateTime time.Duration
	StallTime   time.Duration
	MaxStall    time.Duration
}

// Run executes the plan: up to cfg.MaxInFlightPGs PGs migrate concurrently,
// block copies across all of them share one throttle, and per-PG results
// aggregate into the Report. The first Mover error aborts scheduling of
// further PGs (in-flight ones finish) and is returned.
func Run(env *sim.Env, p *sim.Proc, plan *Plan, cfg Config, mover Mover) (*Report, error) {
	cfg = cfg.withDefaults()
	th := NewThrottle(cfg.RateBps)
	sem := env.NewResource("rebalance-pgs", cfg.MaxInFlightPGs)
	wg := sim.NewWaitGroup(env)
	rep := &Report{FromEpoch: plan.FromEpoch, ToEpoch: plan.ToEpoch, BoundBlocks: plan.BoundBlocks}
	start := p.Now()
	var firstErr error
	for _, pg := range plan.PGs {
		pg := pg
		wg.Add(1)
		env.Go(fmt.Sprintf("migrate-pg-%d", pg.PG), func(hp *sim.Proc) {
			defer wg.Done()
			sem.Acquire(hp)
			defer sem.Release()
			if firstErr != nil {
				return
			}
			res, err := mover.MigratePG(hp, pg, th)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("rebalance: pg %d: %w", pg.PG, err)
				}
				return
			}
			rep.Outcomes = append(rep.Outcomes, res)
			rep.ReconstructedBlocks += res.Reconstructed
			rep.StallTime += res.Stall
			if res.Stall > rep.MaxStall {
				rep.MaxStall = res.Stall
			}
			if res.Outcome == OutcomeAborted {
				// An aborted PG's copies were retired; its bytes are waste,
				// not movement.
				rep.AbortedPGs++
				rep.AbortedBytes += res.CopiedBytes
				return
			}
			if res.Outcome == OutcomeFinished {
				rep.FinishedPGs++
			}
			rep.PGsMigrated++
			rep.MovedBlocks += res.CopiedBlocks
			rep.MovedBytes += res.CopiedBytes
			rep.RecopiedBlocks += res.RecopiedBlocks
			rep.ReplayedItems += res.ReplayedItems
			rep.ReplayedBytes += res.ReplayedBytes
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(rep.Outcomes, func(i, j int) bool { return rep.Outcomes[i].PG < rep.Outcomes[j].PG })
	rep.MigrateTime = p.Now() - start
	if rep.BoundBlocks > 0 {
		rep.ActualOverBound = float64(rep.MovedBlocks) / rep.BoundBlocks
	}
	return rep, nil
}
