// Package blockstore is the per-OSD block storage layer. It holds the
// actual bytes of every data and parity block hosted by an OSD (so stripe
// consistency is verifiable end to end) and charges each access against the
// OSD's simulated device: blocks live at fixed device offsets, so in-place
// range updates are random I/O while full-block writes stream.
package blockstore

import (
	"fmt"
	"sort"

	"tsue/internal/device"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Store manages the blocks of one OSD.
type Store struct {
	dev       *device.Disk
	zone      int
	blockSize int64
	blocks    map[wire.BlockID]*entry
	nextSlot  int64
}

type entry struct {
	slot int64
	data []byte
	// ver counts writes to the block (Put and WriteRange). Migration uses
	// it to detect blocks dirtied between the bulk copy and the cutover
	// fence, so only those pay a catch-up re-copy.
	ver uint64
	// sum is the CRC-32C of data, maintained on every write and verified on
	// ReadRange so at-rest rot (CorruptStored) surfaces as wire.ErrChecksum
	// instead of silently corrupt bytes.
	sum uint32
}

// New creates a store on dev with fixed blockSize.
func New(dev *device.Disk, blockSize int64) *Store {
	if blockSize <= 0 {
		panic("blockstore: blockSize must be positive")
	}
	return &Store{
		dev:       dev,
		zone:      dev.NewZone("blocks", true),
		blockSize: blockSize,
		blocks:    make(map[wire.BlockID]*entry),
	}
}

// BlockSize returns the configured block size.
func (s *Store) BlockSize() int64 { return s.blockSize }

// Device returns the underlying disk (engines add their own log zones).
func (s *Store) Device() *device.Disk { return s.dev }

// Has reports whether blk exists.
func (s *Store) Has(blk wire.BlockID) bool {
	_, ok := s.blocks[blk]
	return ok
}

// Len returns the number of stored blocks.
func (s *Store) Len() int { return len(s.blocks) }

func (s *Store) offset(e *entry, off int64) int64 { return e.slot*s.blockSize + off }

// Put stores a full block, charging one large device write (streaming for
// fresh blocks, overwrite for replacement).
func (s *Store) Put(p *sim.Proc, blk wire.BlockID, data []byte) error {
	if int64(len(data)) != s.blockSize {
		return fmt.Errorf("blockstore: Put %v size %d != block size %d", blk, len(data), s.blockSize)
	}
	e, exists := s.blocks[blk]
	if !exists {
		e = &entry{slot: s.nextSlot, data: make([]byte, s.blockSize)}
		s.nextSlot++
		s.blocks[blk] = e
	}
	copy(e.data, data)
	e.ver++
	e.sum = wire.Checksum(e.data)
	s.dev.Write(p, s.zone, s.offset(e, 0), s.blockSize, exists)
	return nil
}

// Version returns the block's write counter (0 for absent blocks). Any
// write — full-block Put or in-place WriteRange — bumps it.
func (s *Store) Version(blk wire.BlockID) uint64 {
	e, ok := s.blocks[blk]
	if !ok {
		return 0
	}
	return e.ver
}

// ReadRange reads [off, off+size) of blk, charging a device read at the
// block's location.
func (s *Store) ReadRange(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	e, ok := s.blocks[blk]
	if !ok {
		return nil, fmt.Errorf("blockstore: ReadRange: no such block %v", blk)
	}
	if off < 0 || size < 0 || off+size > s.blockSize {
		return nil, fmt.Errorf("blockstore: ReadRange %v [%d,%d) out of range", blk, off, off+size)
	}
	if wire.Checksum(e.data) != e.sum {
		return nil, fmt.Errorf("blockstore: ReadRange %v: %w", blk, wire.ErrChecksum)
	}
	s.dev.Read(p, s.zone, s.offset(e, off), size)
	return append([]byte(nil), e.data[off:off+size]...), nil
}

// WriteRange overwrites [off, off+len(data)) of blk in place, charging a
// random overwrite at the block's location.
func (s *Store) WriteRange(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e, ok := s.blocks[blk]
	if !ok {
		return fmt.Errorf("blockstore: WriteRange: no such block %v", blk)
	}
	if off < 0 || off+int64(len(data)) > s.blockSize {
		return fmt.Errorf("blockstore: WriteRange %v [%d,%d) out of range", blk, off, off+int64(len(data)))
	}
	copy(e.data[off:], data)
	e.ver++
	e.sum = wire.Checksum(e.data)
	s.dev.Write(p, s.zone, s.offset(e, off), int64(len(data)), true)
	return nil
}

// Peek returns the live bytes of blk without charging the device — for
// scrub verification and tests only.
func (s *Store) Peek(blk wire.BlockID) ([]byte, bool) {
	e, ok := s.blocks[blk]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// CorruptStored flips one stored byte of blk at off WITHOUT updating the
// entry checksum — at-rest bit rot for fault-injection tests. The next
// ReadRange of the block fails with wire.ErrChecksum; VerifyStored reports
// it immediately.
func (s *Store) CorruptStored(blk wire.BlockID, off int64) error {
	e, ok := s.blocks[blk]
	if !ok {
		return fmt.Errorf("blockstore: CorruptStored: no such block %v", blk)
	}
	if off < 0 || off >= s.blockSize {
		return fmt.Errorf("blockstore: CorruptStored %v off %d out of range", blk, off)
	}
	e.data[off] ^= 0xff
	return nil
}

// VerifyStored re-checks blk's bytes against its stored checksum without
// charging the device (scrub path); absent blocks verify trivially.
func (s *Store) VerifyStored(blk wire.BlockID) bool {
	e, ok := s.blocks[blk]
	if !ok {
		return true
	}
	return wire.Checksum(e.data) == e.sum
}

// Rewrite restores blk's bytes AND checksum from known-good data without
// charging the device beyond a normal overwrite — the scrub-repair store
// step for a rotted block (ReadRange would refuse to touch it).
func (s *Store) Rewrite(p *sim.Proc, blk wire.BlockID, data []byte) error {
	if int64(len(data)) != s.blockSize {
		return fmt.Errorf("blockstore: Rewrite %v size %d != block size %d", blk, len(data), s.blockSize)
	}
	e, ok := s.blocks[blk]
	if !ok {
		return s.Put(p, blk, data)
	}
	copy(e.data, data)
	e.ver++
	e.sum = wire.Checksum(e.data)
	s.dev.Write(p, s.zone, s.offset(e, 0), s.blockSize, true)
	return nil
}

// Delete removes blk (used when simulating data loss on a failed OSD).
func (s *Store) Delete(blk wire.BlockID) { delete(s.blocks, blk) }

// DeleteAll removes every block (node catastrophic failure).
func (s *Store) DeleteAll() { s.blocks = make(map[wire.BlockID]*entry) }

// Blocks returns all block IDs in deterministic order.
func (s *Store) Blocks() []wire.BlockID {
	out := make([]wire.BlockID, 0, len(s.blocks))
	for id := range s.blocks {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ino != b.Ino {
			return a.Ino < b.Ino
		}
		if a.Stripe != b.Stripe {
			return a.Stripe < b.Stripe
		}
		return a.Index < b.Index
	})
	return out
}
