package blockstore

import (
	"bytes"
	"errors"
	"testing"

	"tsue/internal/device"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

func withStore(t *testing.T, fn func(p *sim.Proc, s *Store)) device.Stats {
	t.Helper()
	e := sim.NewEnv()
	d := device.New(e, "d", device.SSD, device.SSDParams())
	s := New(d, 4096)
	e.Go("t", func(p *sim.Proc) { fn(p, s) })
	e.Run(0)
	e.Close()
	return d.Stats()
}

var blk = wire.BlockID{Ino: 1, Stripe: 2, Index: 3}

func TestPutReadRange(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i)
		}
		if err := s.Put(p, blk, data); err != nil {
			t.Fatal(err)
		}
		got, err := s.ReadRange(p, blk, 100, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[100:150]) {
			t.Fatal("range mismatch")
		}
	})
}

func TestPutWrongSize(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		if err := s.Put(p, blk, make([]byte, 100)); err == nil {
			t.Fatal("wrong-size Put accepted")
		}
	})
}

func TestWriteRangeOverwriteAccounting(t *testing.T) {
	st := withStore(t, func(p *sim.Proc, s *Store) {
		if err := s.Put(p, blk, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteRange(p, blk, 10, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		got, _ := s.ReadRange(p, blk, 10, 3)
		if !bytes.Equal(got, []byte{1, 2, 3}) {
			t.Fatal("write range lost")
		}
	})
	if st.OverwriteOps != 1 {
		t.Fatalf("overwrites=%d want 1", st.OverwriteOps)
	}
}

func TestRePutCountsOverwrite(t *testing.T) {
	st := withStore(t, func(p *sim.Proc, s *Store) {
		s.Put(p, blk, make([]byte, 4096))
		s.Put(p, blk, make([]byte, 4096))
	})
	if st.OverwriteOps != 1 {
		t.Fatalf("overwrites=%d want 1 (second Put)", st.OverwriteOps)
	}
}

func TestReadMissingBlock(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		if _, err := s.ReadRange(p, blk, 0, 1); err == nil {
			t.Fatal("read of missing block succeeded")
		}
		if err := s.WriteRange(p, blk, 0, []byte{1}); err == nil {
			t.Fatal("write of missing block succeeded")
		}
	})
}

func TestRangeBounds(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		s.Put(p, blk, make([]byte, 4096))
		if _, err := s.ReadRange(p, blk, 4000, 200); err == nil {
			t.Fatal("out-of-range read accepted")
		}
		if err := s.WriteRange(p, blk, 4000, make([]byte, 200)); err == nil {
			t.Fatal("out-of-range write accepted")
		}
		if _, err := s.ReadRange(p, blk, -1, 2); err == nil {
			t.Fatal("negative offset accepted")
		}
	})
}

func TestBlocksSortedAndDelete(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		b1 := wire.BlockID{Ino: 2, Stripe: 0, Index: 0}
		b2 := wire.BlockID{Ino: 1, Stripe: 3, Index: 1}
		b3 := wire.BlockID{Ino: 1, Stripe: 3, Index: 0}
		for _, b := range []wire.BlockID{b1, b2, b3} {
			s.Put(p, b, make([]byte, 4096))
		}
		got := s.Blocks()
		if len(got) != 3 || got[0] != b3 || got[1] != b2 || got[2] != b1 {
			t.Fatalf("order %v", got)
		}
		s.Delete(b2)
		if s.Has(b2) || s.Len() != 2 {
			t.Fatal("delete failed")
		}
		s.DeleteAll()
		if s.Len() != 0 {
			t.Fatal("delete all failed")
		}
	})
}

func TestPeekNoDeviceCharge(t *testing.T) {
	st := withStore(t, func(p *sim.Proc, s *Store) {
		s.Put(p, blk, make([]byte, 4096))
		before := s.Device().Stats().ReadOps
		if _, ok := s.Peek(blk); !ok {
			t.Fatal("peek missed")
		}
		if s.Device().Stats().ReadOps != before {
			t.Fatal("Peek charged the device")
		}
	})
	_ = st
}

func TestCorruptStoredDetected(t *testing.T) {
	withStore(t, func(p *sim.Proc, s *Store) {
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if err := s.Put(p, blk, data); err != nil {
			t.Fatal(err)
		}
		if !s.VerifyStored(blk) {
			t.Fatal("fresh block fails verification")
		}
		if err := s.CorruptStored(blk, 1234); err != nil {
			t.Fatal(err)
		}
		if s.VerifyStored(blk) {
			t.Fatal("corrupted block passes verification")
		}
		// The rot is detected even by reads of ranges not covering the
		// flipped byte — the checksum guards the whole block.
		if _, err := s.ReadRange(p, blk, 0, 100); !errors.Is(err, wire.ErrChecksum) {
			t.Fatalf("ReadRange on rotted block: err=%v, want ErrChecksum", err)
		}
		// Rewrite with known-good data repairs both bytes and checksum.
		if err := s.Rewrite(p, blk, data); err != nil {
			t.Fatal(err)
		}
		if !s.VerifyStored(blk) {
			t.Fatal("Rewrite did not restore checksum")
		}
		got, err := s.ReadRange(p, blk, 1200, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data[1200:1300]) {
			t.Fatal("repaired bytes wrong")
		}
		// A partial WriteRange recomputes the whole-block sum, so later
		// reads verify.
		if err := s.WriteRange(p, blk, 64, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if !s.VerifyStored(blk) {
			t.Fatal("WriteRange left a stale checksum")
		}
		if err := s.CorruptStored(blk, 9999); err == nil {
			t.Fatal("out-of-range corruption accepted")
		}
		if err := s.CorruptStored(wire.BlockID{Ino: 9}, 0); err == nil {
			t.Fatal("corrupting absent block accepted")
		}
		if !s.VerifyStored(wire.BlockID{Ino: 9}) {
			t.Fatal("absent block should verify trivially")
		}
	})
}
