package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Add(byte(a), byte(b)) != byte(a)^byte(b) {
				t.Fatalf("Add(%d,%d) != xor", a, b)
			}
			if Sub(byte(a), byte(b)) != byte(a)^byte(b) {
				t.Fatalf("Sub(%d,%d) != xor", a, b)
			}
		}
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		if Mul(1, byte(a)) != byte(a) {
			t.Fatalf("1*a != a for %d", a)
		}
		if Mul(byte(a), 0) != 0 || Mul(0, byte(a)) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if Div(p, byte(b)) != byte(a) {
				t.Fatalf("Div(Mul(%d,%d),%d) != %d", a, b, b, a)
			}
		}
	}
}

func TestInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Mul(byte(a), Inv(byte(a))) != 1 {
			t.Fatalf("a * Inv(a) != 1 for %d", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x,0) did not panic")
		}
	}()
	Div(5, 0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
}

func TestExpPeriodic(t *testing.T) {
	for n := 0; n < 255; n++ {
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic at %d", n)
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		c := byte(rng.Intn(256))
		src := make([]byte, n)
		rng.Read(src)
		dst := make([]byte, n)
		MulSlice(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice mismatch at %d (c=%d)", i, c)
			}
		}
	}
}

func TestMulXorSliceMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		c := byte(rng.Intn(256))
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ Mul(c, src[i])
		}
		MulXorSlice(c, dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("MulXorSlice mismatch at %d (c=%d)", i, c)
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(100)
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		XorSlice(dst, src)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("XorSlice mismatch at %d", i)
			}
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSlice":    func() { MulSlice(3, make([]byte, 2), make([]byte, 3)) },
		"MulXorSlice": func() { MulXorSlice(3, make([]byte, 2), make([]byte, 3)) },
		"XorSlice":    func() { XorSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulSliceAliasing(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	want := make([]byte, len(buf))
	for i, b := range buf {
		want[i] = Mul(7, b)
	}
	MulSlice(7, buf, buf)
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("aliased MulSlice wrong at %d", i)
		}
	}
}

func BenchmarkMulXorSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(4)).Read(src)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulXorSlice(0x8e, dst, src)
	}
}

func BenchmarkXorSlice4K(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XorSlice(dst, src)
	}
}
