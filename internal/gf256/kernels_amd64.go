//go:build amd64 && !purego

package gf256

// hasAVX2 gates the vector kernels in kernels_amd64.s. Detection needs both
// the CPU feature (CPUID.7.0:EBX bit 5) and OS support for saving YMM state
// (OSXSAVE set and XCR0 reporting XMM|YMM enabled).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidEx(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidEx(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidEx(7, 0)
	return ebx7&(1<<5) != 0
}

// cpuidEx executes CPUID with the given leaf and subleaf.
//
//go:noescape
func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (requires OSXSAVE).
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// mulXorAVX2 computes dst[i] ^= c*src[i] for n bytes (n > 0, n%32 == 0)
// using the scalar's nibble-split tables with per-lane VPSHUFB lookups.
//
//go:noescape
func mulXorAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64)

// mulAVX2 computes dst[i] = c*src[i] for n bytes (n > 0, n%32 == 0).
//
//go:noescape
func mulAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64)

// xorAVX2 computes dst[i] ^= src[i] for n bytes (n > 0, n%32 == 0).
//
//go:noescape
func xorAVX2(dst, src *byte, n uint64)
