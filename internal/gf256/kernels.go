package gf256

import (
	"encoding/binary"
	//lint:allow obsregistry(lazy one-time table initialization below the sim layer; not a metrics counter)
	"sync/atomic"
)

// This file holds the word-wise slice kernels: the hot inner loops of
// encoding and of the incremental parity-delta updates (Equations (2)–(5)).
// Three table layers back them:
//
//	mulLo/mulHi — 4-bit nibble-split tables, 16 entries per scalar (8 KiB
//	              total for all 256 scalars). mulLo[c][v] = c*v and
//	              mulHi[c][v] = c*(v<<4), so c*b = mulLo[c][b&15] ^
//	              mulHi[c][b>>4]. Built at init from first principles
//	              (carry-less shift-and-reduce), independent of the log/exp
//	              tables. They are the compact per-scalar form used for head
//	              and tail bytes and to populate the double-byte tables.
//	mulTable    — the full 64 KiB product table (gf256.go); single-lookup
//	              scalar Mul.
//	row16       — per-scalar double-byte tables, built lazily on a scalar's
//	              first slice use and cached: row16[c][a<<8|b] holds the two
//	              products (c*a)<<8 | c*b, so one lookup maps two source
//	              bytes to two product bytes. The word kernels do four such
//	              lookups per 8-byte word, which is what makes them beat the
//	              byte-at-a-time reference by >2x on large buffers.
//
// All kernels process 8 bytes per step through unaligned little-endian
// uint64 loads/stores and fall back to byte steps for the tail, so any
// length and any sub-word offset is handled.

var (
	mulLo [256][16]byte
	mulHi [256][16]byte
	// row16cache[c] is the lazily built double-byte product table for
	// scalar c. Lookup and publication are atomic so concurrent kernel
	// calls (the rs worker pool) may race on first use; a duplicate build
	// is idempotent and only wastes the loser's work.
	row16cache [256]atomic.Pointer[[65536]uint16]
)

// mulNoTable multiplies in GF(2^8) by shift-and-reduce, without any table.
// Used only to seed the nibble tables at init (and by tests as an oracle
// independent of every table).
func mulNoTable(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= byte(Polynomial & 0xff)
		}
		b >>= 1
	}
	return p
}

func init() {
	for c := 0; c < 256; c++ {
		for v := 0; v < 16; v++ {
			mulLo[c][v] = mulNoTable(byte(c), byte(v))
			mulHi[c][v] = mulNoTable(byte(c), byte(v<<4))
		}
	}
}

// row16For returns scalar c's double-byte product table, building and
// caching it on first use. Each entry packs two independent products:
// entry[a<<8|b] = (c*a)<<8 | (c*b).
func row16For(c byte) *[65536]uint16 {
	if t := row16cache[c].Load(); t != nil {
		return t
	}
	lo, hi := &mulLo[c], &mulHi[c]
	var prod [256]byte
	for b := 0; b < 256; b++ {
		prod[b] = lo[b&15] ^ hi[b>>4]
	}
	t := new([65536]uint16)
	for a := 0; a < 256; a++ {
		pa := uint16(prod[a]) << 8
		row := t[a<<8 : a<<8+256]
		for b := 0; b < 256; b++ {
			row[b] = pa | uint16(prod[b])
		}
	}
	row16cache[c].Store(t)
	return t
}

// wordMin is the slice length below which the word kernels stay on the
// nibble-table byte path: too short to amortize a (possibly cold) 128 KiB
// double-byte table.
const wordMin = 64

// MulSlice sets dst[i] = c * src[i]. dst and src must have equal length;
// they may alias.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	if hasAVX2 && len(src) >= 32 {
		n32 := len(src) &^ 31
		mulAVX2(&mulLo[c], &mulHi[c], &dst[0], &src[0], uint64(n32))
		dst, src = dst[n32:], src[n32:]
	}
	mulSliceWord(c, dst, src)
}

// mulSliceWord is the portable uint64-word path of MulSlice (also the tail
// path after the vector prefix).
func mulSliceWord(c byte, dst, src []byte) {
	n := len(src)
	i := 0
	if n >= wordMin {
		t := row16For(c)
		for ; i+8 <= n; i += 8 {
			s := binary.LittleEndian.Uint64(src[i:])
			w := uint64(t[uint16(s)]) |
				uint64(t[uint16(s>>16)])<<16 |
				uint64(t[uint16(s>>32)])<<32 |
				uint64(t[uint16(s>>48)])<<48
			binary.LittleEndian.PutUint64(dst[i:], w)
		}
	}
	lo, hi := &mulLo[c], &mulHi[c]
	for ; i < n; i++ {
		b := src[i]
		dst[i] = lo[b&15] ^ hi[b>>4]
	}
}

// MulXorSlice sets dst[i] ^= c * src[i]. This is the fused kernel of the
// parity-delta update P' = P + coef*(Dnew-Dold). dst and src must have
// equal length.
func MulXorSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulXorSlice length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XorSlice(dst, src)
		return
	}
	if hasAVX2 && len(src) >= 32 {
		n32 := len(src) &^ 31
		mulXorAVX2(&mulLo[c], &mulHi[c], &dst[0], &src[0], uint64(n32))
		dst, src = dst[n32:], src[n32:]
	}
	mulXorSliceWord(c, dst, src)
}

// mulXorSliceWord is the portable uint64-word path of MulXorSlice.
func mulXorSliceWord(c byte, dst, src []byte) {
	n := len(src)
	i := 0
	if n >= wordMin {
		t := row16For(c)
		for ; i+8 <= n; i += 8 {
			s := binary.LittleEndian.Uint64(src[i:])
			w := uint64(t[uint16(s)]) |
				uint64(t[uint16(s>>16)])<<16 |
				uint64(t[uint16(s>>32)])<<32 |
				uint64(t[uint16(s>>48)])<<48
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^w)
		}
	}
	lo, hi := &mulLo[c], &mulHi[c]
	for ; i < n; i++ {
		b := src[i]
		dst[i] ^= lo[b&15] ^ hi[b>>4]
	}
}

// XorSlice sets dst[i] ^= src[i]. dst and src must have equal length.
func XorSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSlice length mismatch")
	}
	if hasAVX2 && len(src) >= 32 {
		n32 := len(src) &^ 31
		xorAVX2(&dst[0], &src[0], uint64(n32))
		dst, src = dst[n32:], src[n32:]
	}
	xorSliceWord(dst, src)
}

// xorSliceWord is the portable uint64-word path of XorSlice.
func xorSliceWord(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// MulSliceRef is the scalar byte-at-a-time reference for MulSlice. The
// word-wise kernels are pinned to it by the differential test suite; it is
// also the baseline the kernel benchmarks compare against.
func MulSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSliceRef length mismatch")
	}
	row := &mulTable[c]
	for i := range src {
		dst[i] = row[src[i]]
	}
}

// MulXorSliceRef is the scalar reference for MulXorSlice.
func MulXorSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: MulXorSliceRef length mismatch")
	}
	row := &mulTable[c]
	for i := range src {
		dst[i] ^= row[src[i]]
	}
}

// XorSliceRef is the scalar reference for XorSlice.
func XorSliceRef(dst, src []byte) {
	if len(dst) != len(src) {
		panic("gf256: XorSliceRef length mismatch")
	}
	for i := range src {
		dst[i] ^= src[i]
	}
}
