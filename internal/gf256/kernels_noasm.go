//go:build !amd64 || purego

package gf256

// Without the amd64 vector kernels every slice call takes the portable
// uint64-word path; these stubs exist only to satisfy the dispatch sites
// and are unreachable while hasAVX2 is false.
const hasAVX2 = false

func mulXorAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64) {
	panic("gf256: vector kernel called without asm support")
}

func mulAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64) {
	panic("gf256: vector kernel called without asm support")
}

func xorAVX2(dst, src *byte, n uint64) {
	panic("gf256: vector kernel called without asm support")
}
