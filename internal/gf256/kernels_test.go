package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// kernelSizes covers both sides of every internal threshold: empty, single
// byte, sub-word, exactly one word, word+tail, the wordMin boundary, and
// large multi-word buffers with odd tails.
var kernelSizes = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 255, 256, 1000, 4096, 4099}

// TestMulNoTableMatchesMul pins the table-free oracle (which seeds the
// nibble tables) to the log/exp-table Mul for every operand pair.
func TestMulNoTableMatchesMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := mulNoTable(byte(a), byte(b)), Mul(byte(a), byte(b)); got != want {
				t.Fatalf("mulNoTable(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestNibbleTablesMatchMul verifies the 4-bit split recombines to the full
// product for every scalar and every byte.
func TestNibbleTablesMatchMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		lo, hi := &mulLo[c], &mulHi[c]
		for b := 0; b < 256; b++ {
			if got, want := lo[b&15]^hi[b>>4], Mul(byte(c), byte(b)); got != want {
				t.Fatalf("nibble product %d*%d = %d, want %d", c, b, got, want)
			}
		}
	}
}

// TestRow16MatchesMul verifies every entry of the lazily built double-byte
// tables for a sample of scalars (all 256 would be 16M checks; the slice
// differential tests below cover every scalar through the kernels anyway).
func TestRow16MatchesMul(t *testing.T) {
	for _, c := range []byte{2, 3, 0x1d, 0x8e, 0xff} {
		tab := row16For(c)
		for a := 0; a < 256; a++ {
			for b := 0; b < 256; b++ {
				want := uint16(Mul(c, byte(a)))<<8 | uint16(Mul(c, byte(b)))
				if got := tab[a<<8|b]; got != want {
					t.Fatalf("row16[%d][%02x%02x] = %04x, want %04x", c, a, b, got, want)
				}
			}
		}
	}
}

// diffBuffers returns a deterministic pseudo-random (dst, src) pair of
// length n placed at a sub-word offset inside larger backing arrays, so the
// word kernels run misaligned relative to the allocation.
func diffBuffers(rng *rand.Rand, n, offset int) (dst, src, dstCopy []byte) {
	backS := make([]byte, n+offset+8)
	backD := make([]byte, n+offset+8)
	rng.Read(backS)
	rng.Read(backD)
	src = backS[offset : offset+n]
	dst = backD[offset : offset+n]
	dstCopy = append([]byte(nil), dst...)
	return dst, src, dstCopy
}

// TestMulSliceDifferential pins the word-wise MulSlice to MulSliceRef for
// every scalar value, across odd lengths and sub-word offsets.
func TestMulSliceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for c := 0; c < 256; c++ {
		for _, n := range kernelSizes {
			offset := rng.Intn(8)
			dst, src, _ := diffBuffers(rng, n, offset)
			want := make([]byte, n)
			MulSliceRef(byte(c), want, src)
			MulSlice(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice(c=%d, n=%d, off=%d) diverges from ref", c, n, offset)
			}
		}
	}
}

// TestMulXorSliceDifferential pins the fused word-wise kernel to its
// reference for every scalar value.
func TestMulXorSliceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for c := 0; c < 256; c++ {
		for _, n := range kernelSizes {
			offset := rng.Intn(8)
			dst, src, orig := diffBuffers(rng, n, offset)
			want := append([]byte(nil), orig...)
			MulXorSliceRef(byte(c), want, src)
			MulXorSlice(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulXorSlice(c=%d, n=%d, off=%d) diverges from ref", c, n, offset)
			}
		}
	}
}

// TestWordPathsDifferential pins the portable uint64-word implementations
// (the non-vector path, which the dispatcher may bypass on amd64) to the
// scalar references for every scalar value.
func TestWordPathsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for c := 0; c < 256; c++ {
		for _, n := range kernelSizes {
			offset := rng.Intn(8)
			dst, src, orig := diffBuffers(rng, n, offset)
			want := make([]byte, n)
			MulSliceRef(byte(c), want, src)
			mulSliceWord(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulSliceWord(c=%d, n=%d, off=%d) diverges from ref", c, n, offset)
			}
			copy(dst, orig)
			want = append(want[:0], orig...)
			MulXorSliceRef(byte(c), want, src)
			mulXorSliceWord(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulXorSliceWord(c=%d, n=%d, off=%d) diverges from ref", c, n, offset)
			}
			copy(dst, orig)
			want = append(want[:0], orig...)
			XorSliceRef(want, src)
			xorSliceWord(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("xorSliceWord(n=%d, off=%d) diverges from ref", n, offset)
			}
		}
	}
}

// TestXorSliceDifferential pins the word-wise XorSlice to its reference.
func TestXorSliceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 64; trial++ {
		for _, n := range kernelSizes {
			offset := rng.Intn(8)
			dst, src, orig := diffBuffers(rng, n, offset)
			want := append([]byte(nil), orig...)
			XorSliceRef(want, src)
			XorSlice(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("XorSlice(n=%d, off=%d) diverges from ref", n, offset)
			}
		}
	}
}

// TestMulXorSliceInvolution: applying the same MulXor twice must restore the
// original dst (x ^= c*s; x ^= c*s is the identity) — a property the parity
// XOR-in-place path depends on.
func TestMulXorSliceInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 8, 65, 4096} {
		dst, src, orig := diffBuffers(rng, n, rng.Intn(8))
		for c := 0; c < 256; c++ {
			MulXorSlice(byte(c), dst, src)
			MulXorSlice(byte(c), dst, src)
		}
		if !bytes.Equal(dst, orig) {
			t.Fatalf("double MulXorSlice not identity at n=%d", n)
		}
	}
}

// TestMulSliceLinear: c*(a^b) == c*a ^ c*b slice-wise, exercised through the
// word kernels (distributivity is what makes delta folding sound).
func TestMulSliceLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := make([]byte, 777)
	b := make([]byte, 777)
	rng.Read(a)
	rng.Read(b)
	for _, c := range []byte{0, 1, 2, 0x53, 0x8e, 0xca, 0xff} {
		sum := make([]byte, len(a))
		copy(sum, a)
		XorSlice(sum, b)
		lhs := make([]byte, len(a))
		MulSlice(c, lhs, sum)
		rhs := make([]byte, len(a))
		MulSlice(c, rhs, a)
		MulXorSlice(c, rhs, b)
		if !bytes.Equal(lhs, rhs) {
			t.Fatalf("MulSlice not linear for c=%d", c)
		}
	}
}

// TestWordKernelsAlias: dst == src aliasing must work for the word paths
// (MulSlice documents it; XorSlice on itself must zero the buffer).
func TestWordKernelsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	buf := make([]byte, 300)
	rng.Read(buf)
	want := make([]byte, len(buf))
	MulSliceRef(0x9c, want, buf)
	MulSlice(0x9c, buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("aliased word MulSlice wrong")
	}
	XorSlice(buf, buf)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("x^x != 0 at %d", i)
		}
	}
}

// TestRefLengthMismatchPanics: the references enforce the same contract as
// the word kernels.
func TestRefLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulSliceRef":    func() { MulSliceRef(3, make([]byte, 2), make([]byte, 3)) },
		"MulXorSliceRef": func() { MulXorSliceRef(3, make([]byte, 2), make([]byte, 3)) },
		"XorSliceRef":    func() { XorSliceRef(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzMulXorSlice cross-checks the word-wise fused kernel against its scalar
// reference on fuzzer-chosen scalars, payloads and sub-word offsets.
func FuzzMulXorSlice(f *testing.F) {
	f.Add(byte(0), []byte{}, byte(0))
	f.Add(byte(1), []byte{1, 2, 3}, byte(1))
	f.Add(byte(0x8e), []byte{0xff, 0, 0x55, 0xaa, 1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(3))
	f.Add(byte(0x1d), bytes.Repeat([]byte{0xa5, 0x5a}, 40), byte(7))
	f.Add(byte(255), bytes.Repeat([]byte{1}, 65), byte(5))
	f.Fuzz(func(t *testing.T, c byte, payload []byte, off byte) {
		offset := int(off % 8)
		if offset > len(payload) {
			offset = 0
		}
		src := payload[offset:]
		n := len(src)
		dst := make([]byte, n)
		for i := range dst {
			dst[i] = byte(i*31) ^ c
		}
		want := append([]byte(nil), dst...)
		MulXorSliceRef(c, want, src)
		MulXorSlice(c, dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulXorSlice diverges from ref (c=%d, n=%d, off=%d)", c, n, offset)
		}
	})
}

// BenchmarkMulXorSliceWord measures the portable uint64-word path in
// isolation (the repo-level bench_test.go covers the dispatching kernels
// against the scalar references).
func BenchmarkMulXorSliceWord(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(4)).Read(src)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulXorSliceWord(0x8e, dst, src)
	}
}
