//go:build amd64 && !purego

#include "textflag.h"

// func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidEx(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// GF(2^8) multiply of a 32-byte vector by a fixed scalar c via the 4-bit
// nibble split: product = tabLo[b & 0x0f] ^ tabHi[b >> 4], with both table
// lookups done per 128-bit lane by VPSHUFB. Registers on entry to the loop:
//   Y0 = tabLo broadcast to both lanes, Y1 = tabHi broadcast,
//   Y2 = 0x0f byte mask, SI = src, DI = dst, CX = n (>0, multiple of 32).

// func mulXorAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64)
TEXT ·mulXorAVX2(SB), NOSPLIT, $0-40
	MOVQ tabLo+0(FP), AX
	MOVQ tabHi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	MOVQ         $15, AX
	MOVQ         AX, X2
	VPBROADCASTB X2, Y2
	XORQ         DX, DX

mulxor_loop:
	VMOVDQU (SI)(DX*1), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU (DI)(DX*1), Y5
	VPXOR   Y5, Y3, Y3
	VMOVDQU Y3, (DI)(DX*1)
	ADDQ    $32, DX
	CMPQ    DX, CX
	JB      mulxor_loop
	VZEROUPPER
	RET

// func mulAVX2(tabLo, tabHi *[16]byte, dst, src *byte, n uint64)
TEXT ·mulAVX2(SB), NOSPLIT, $0-40
	MOVQ tabLo+0(FP), AX
	MOVQ tabHi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	MOVQ         $15, AX
	MOVQ         AX, X2
	VPBROADCASTB X2, Y2
	XORQ         DX, DX

mul_loop:
	VMOVDQU (SI)(DX*1), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)(DX*1)
	ADDQ    $32, DX
	CMPQ    DX, CX
	JB      mul_loop
	VZEROUPPER
	RET

// func xorAVX2(dst, src *byte, n uint64)
TEXT ·xorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ DX, DX

xor_loop:
	VMOVDQU (SI)(DX*1), Y0
	VMOVDQU (DI)(DX*1), Y1
	VPXOR   Y0, Y1, Y0
	VMOVDQU Y0, (DI)(DX*1)
	ADDQ    $32, DX
	CMPQ    DX, CX
	JB      xor_loop
	VZEROUPPER
	RET
