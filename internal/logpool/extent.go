// Package logpool implements TSUE's log pool structure (paper §3.2): a FIFO
// queue of fixed-size log units with states EMPTY → RECYCLABLE → RECYCLING →
// RECYCLED, each unit carrying a two-level index (block hash → offset-sorted
// extent list with a page bitmap) that merges repeated and adjacent update
// records. The same structure backs all three log layers; the merge mode
// distinguishes raw-data logs (latest write wins) from delta logs (XOR
// accumulation, Equations (3) and (5)).
//
// The package is a pure data structure: the update engine supplies timing,
// concurrency control, and recycle scheduling around it.
package logpool

import (
	"fmt"
	"sort"
)

// MergeMode selects how an overlapping insert combines with indexed data.
type MergeMode int

const (
	// Overwrite: the newest data replaces older bytes (DataLog semantics,
	// Equation (4): only the latest update of a location matters).
	Overwrite MergeMode = iota
	// XOR: overlapping bytes accumulate by XOR (DeltaLog and ParityLog
	// semantics, Equation (3): deltas for one location fold into one).
	XOR
)

// Extent is one merged record of a block log: Data covers
// [Off, Off+len(Data)).
type Extent struct {
	Off  int64
	Data []byte
}

// End returns the exclusive end offset.
func (e Extent) End() int64 { return e.Off + int64(len(e.Data)) }

// bitmapPage is the granularity of the per-block presence bitmap used to
// short-circuit read-cache lookups (paper §3.3.1).
const bitmapPage = 4096

// BlockLog is the second index level: the merged extents of one block,
// sorted by offset, pairwise non-overlapping and non-adjacent.
//
// With Raw set (the ablation baseline without locality exploitation, paper
// Fig. 7), records are kept as an append-ordered list with no merging; the
// recycler then processes every record individually.
type BlockLog struct {
	extents []Extent
	bitmap  []uint64
	Raw     bool
	// RawAppends counts pre-merge inserts; with len(extents) it quantifies
	// how much locality merging saved.
	RawAppends int
	RawBytes   int64
}

func (b *BlockLog) setBitmap(off, end int64) {
	first := off / bitmapPage
	last := (end - 1) / bitmapPage
	for pg := first; pg <= last; pg++ {
		w := int(pg / 64)
		for w >= len(b.bitmap) {
			b.bitmap = append(b.bitmap, 0)
		}
		b.bitmap[w] |= 1 << (pg % 64)
	}
}

// mightContain is a constant-time pre-check: false means no extent touches
// the page range.
func (b *BlockLog) mightContain(off, end int64) bool {
	if end <= off {
		return false
	}
	first := off / bitmapPage
	last := (end - 1) / bitmapPage
	for pg := first; pg <= last; pg++ {
		w := int(pg / 64)
		if w < len(b.bitmap) && b.bitmap[w]&(1<<(pg%64)) != 0 {
			return true
		}
	}
	return false
}

// Insert merges [off, off+len(data)) into the log under the given mode.
func (b *BlockLog) Insert(off int64, data []byte, mode MergeMode) {
	if len(data) == 0 {
		return
	}
	b.RawAppends++
	b.RawBytes += int64(len(data))
	end := off + int64(len(data))
	b.setBitmap(off, end)

	if b.Raw {
		b.extents = append(b.extents, Extent{Off: off, Data: append([]byte(nil), data...)})
		return
	}

	// Locate the window of extents overlapping or exactly adjacent to the
	// new range: all i with extents[i].End() >= off && extents[i].Off <= end.
	lo := sort.Search(len(b.extents), func(i int) bool { return b.extents[i].End() >= off })
	hi := lo
	for hi < len(b.extents) && b.extents[hi].Off <= end {
		hi++
	}
	if lo == hi {
		// No overlap: plain insert.
		b.extents = append(b.extents, Extent{})
		copy(b.extents[lo+1:], b.extents[lo:])
		b.extents[lo] = Extent{Off: off, Data: append([]byte(nil), data...)}
		return
	}
	mergedOff := off
	if b.extents[lo].Off < mergedOff {
		mergedOff = b.extents[lo].Off
	}
	mergedEnd := end
	if e := b.extents[hi-1].End(); e > mergedEnd {
		mergedEnd = e
	}
	buf := make([]byte, mergedEnd-mergedOff)
	for i := lo; i < hi; i++ {
		copy(buf[b.extents[i].Off-mergedOff:], b.extents[i].Data)
	}
	dst := buf[off-mergedOff : off-mergedOff+int64(len(data))]
	switch mode {
	case Overwrite:
		copy(dst, data)
	case XOR:
		for i := range data {
			dst[i] ^= data[i]
		}
	default:
		panic(fmt.Sprintf("logpool: unknown merge mode %d", mode))
	}
	b.extents[lo] = Extent{Off: mergedOff, Data: buf}
	b.extents = append(b.extents[:lo+1], b.extents[hi:]...)
}

// Extents returns the merged extents in offset order. The returned slice
// and its buffers are owned by the log; callers must not mutate them.
func (b *BlockLog) Extents() []Extent { return b.extents }

// Bytes returns the total indexed (post-merge) byte count.
func (b *BlockLog) Bytes() int64 {
	var n int64
	for _, e := range b.extents {
		n += int64(len(e.Data))
	}
	return n
}

// Overlay copies every indexed byte intersecting [off, off+len(dst)) onto
// dst (dst[i] corresponds to block offset off+i). In Raw mode records are
// applied in append order so the newest data wins.
func (b *BlockLog) Overlay(off int64, dst []byte) {
	end := off + int64(len(dst))
	if !b.mightContain(off, end) {
		return
	}
	lo := 0
	if !b.Raw {
		lo = sort.Search(len(b.extents), func(i int) bool { return b.extents[i].End() > off })
	}
	for i := lo; i < len(b.extents); i++ {
		e := b.extents[i]
		if !b.Raw && e.Off >= end {
			break
		}
		s, t := e.Off, e.End()
		if s < off {
			s = off
		}
		if t > end {
			t = end
		}
		if s >= t {
			continue
		}
		copy(dst[s-off:t-off], e.Data[s-e.Off:t-e.Off])
	}
}

// Gaps returns the maximal sub-intervals of [off, end) NOT covered by any
// extent, in order. Used for insert-if-absent semantics (PARIX original-data
// records: the first value for a location wins).
func (b *BlockLog) Gaps(off, end int64) [][2]int64 {
	iv := b.covers(off, end, nil)
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var gaps [][2]int64
	cur := off
	for _, r := range iv {
		if r[0] > cur {
			gaps = append(gaps, [2]int64{cur, r[0]})
		}
		if r[1] > cur {
			cur = r[1]
		}
	}
	if cur < end {
		gaps = append(gaps, [2]int64{cur, end})
	}
	return gaps
}

// covers appends the sub-intervals of [off, end) present in the log to out.
func (b *BlockLog) covers(off, end int64, out [][2]int64) [][2]int64 {
	if !b.mightContain(off, end) {
		return out
	}
	lo := 0
	if !b.Raw {
		lo = sort.Search(len(b.extents), func(i int) bool { return b.extents[i].End() > off })
	}
	for i := lo; i < len(b.extents); i++ {
		if !b.Raw && b.extents[i].Off >= end {
			break
		}
		s, t := b.extents[i].Off, b.extents[i].End()
		if s < off {
			s = off
		}
		if t > end {
			t = end
		}
		if s < t {
			out = append(out, [2]int64{s, t})
		}
	}
	return out
}
