package logpool

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tsue/internal/wire"
)

func TestInsertDisjoint(t *testing.T) {
	var b BlockLog
	b.Insert(100, []byte{1, 2}, Overwrite)
	b.Insert(0, []byte{9}, Overwrite)
	b.Insert(50, []byte{5}, Overwrite)
	ex := b.Extents()
	if len(ex) != 3 || ex[0].Off != 0 || ex[1].Off != 50 || ex[2].Off != 100 {
		t.Fatalf("extents %+v", ex)
	}
}

func TestInsertOverwriteOverlap(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{1, 1, 1, 1}, Overwrite)
	b.Insert(2, []byte{7, 7, 7, 7}, Overwrite)
	ex := b.Extents()
	if len(ex) != 1 {
		t.Fatalf("want 1 merged extent, got %+v", ex)
	}
	want := []byte{1, 1, 7, 7, 7, 7}
	if ex[0].Off != 0 || !bytes.Equal(ex[0].Data, want) {
		t.Fatalf("merged %+v want %v", ex[0], want)
	}
}

func TestInsertAdjacencyConcatenates(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{1, 1}, Overwrite)
	b.Insert(2, []byte{2, 2}, Overwrite)
	b.Insert(4, []byte{3, 3}, Overwrite)
	ex := b.Extents()
	if len(ex) != 1 || !bytes.Equal(ex[0].Data, []byte{1, 1, 2, 2, 3, 3}) {
		t.Fatalf("adjacent extents not concatenated: %+v", ex)
	}
}

func TestInsertBridgesGap(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{1, 1}, Overwrite)
	b.Insert(6, []byte{3, 3}, Overwrite)
	b.Insert(1, []byte{2, 2, 2, 2, 2, 2}, Overwrite) // spans [1,7)
	ex := b.Extents()
	if len(ex) != 1 {
		t.Fatalf("bridge failed: %+v", ex)
	}
	want := []byte{1, 2, 2, 2, 2, 2, 2, 3}
	if ex[0].Off != 0 || !bytes.Equal(ex[0].Data, want) {
		t.Fatalf("got %v want %v", ex[0].Data, want)
	}
}

func TestInsertDoesNotBridgeDistantExtents(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{1}, Overwrite)
	b.Insert(100, []byte{2}, Overwrite)
	b.Insert(50, []byte{3}, Overwrite)
	if len(b.Extents()) != 3 {
		t.Fatalf("distant extents merged: %+v", b.Extents())
	}
}

func TestInsertXORAccumulates(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{0x0f, 0x0f}, XOR)
	b.Insert(0, []byte{0xf0, 0x0f}, XOR)
	ex := b.Extents()
	if len(ex) != 1 || !bytes.Equal(ex[0].Data, []byte{0xff, 0x00}) {
		t.Fatalf("xor merge wrong: %+v", ex)
	}
}

func TestInsertXORPartialOverlap(t *testing.T) {
	var b BlockLog
	b.Insert(0, []byte{1, 1, 1}, XOR)
	b.Insert(2, []byte{1, 1, 1}, XOR)
	ex := b.Extents()
	want := []byte{1, 1, 0, 1, 1}
	if len(ex) != 1 || !bytes.Equal(ex[0].Data, want) {
		t.Fatalf("got %+v want %v", ex, want)
	}
}

// Property: Overwrite-mode log equals a reference flat buffer with
// latest-wins writes; extents are sorted, non-overlapping, non-adjacent.
func TestPropertyOverwriteMatchesReference(t *testing.T) {
	const span = 1 << 14
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b BlockLog
		ref := make([]byte, span)
		written := make([]bool, span)
		for i := 0; i < 60; i++ {
			off := rng.Intn(span - 1)
			n := 1 + rng.Intn(min(512, span-off))
			data := make([]byte, n)
			rng.Read(data)
			b.Insert(int64(off), data, Overwrite)
			copy(ref[off:], data)
			for j := off; j < off+n; j++ {
				written[j] = true
			}
		}
		// Extent invariants.
		ex := b.Extents()
		for i := range ex {
			if len(ex[i].Data) == 0 {
				return false
			}
			if i > 0 && ex[i].Off <= ex[i-1].End() {
				return false
			}
		}
		// Content matches reference exactly on written bytes.
		got := make([]byte, span)
		covered := make([]bool, span)
		for _, e := range ex {
			copy(got[e.Off:], e.Data)
			for j := e.Off; j < e.End(); j++ {
				covered[j] = true
			}
		}
		for j := 0; j < span; j++ {
			if covered[j] != written[j] {
				return false
			}
			if written[j] && got[j] != ref[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: XOR-mode log equals the XOR of all inserted records.
func TestPropertyXORMatchesReference(t *testing.T) {
	const span = 1 << 13
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b BlockLog
		ref := make([]byte, span)
		touched := make([]bool, span)
		for i := 0; i < 40; i++ {
			off := rng.Intn(span - 1)
			n := 1 + rng.Intn(min(256, span-off))
			data := make([]byte, n)
			rng.Read(data)
			b.Insert(int64(off), data, XOR)
			for j := 0; j < n; j++ {
				ref[off+j] ^= data[j]
				touched[off+j] = true
			}
		}
		got := make([]byte, span)
		for _, e := range b.Extents() {
			copy(got[e.Off:], e.Data)
		}
		for j := 0; j < span; j++ {
			if touched[j] && got[j] != ref[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlay(t *testing.T) {
	var b BlockLog
	b.Insert(10, []byte{1, 2, 3}, Overwrite)
	b.Insert(20, []byte{9}, Overwrite)
	dst := make([]byte, 15)
	b.Overlay(8, dst)
	want := make([]byte, 15)
	want[2], want[3], want[4] = 1, 2, 3
	want[12] = 9
	if !bytes.Equal(dst, want) {
		t.Fatalf("overlay %v want %v", dst, want)
	}
}

func TestMergeReducesExtentCount(t *testing.T) {
	var b BlockLog
	for i := 0; i < 100; i++ {
		b.Insert(int64((i%10)*4), []byte{byte(i), 0, 0, 0}, Overwrite)
	}
	if b.RawAppends != 100 {
		t.Fatalf("raw=%d", b.RawAppends)
	}
	if len(b.Extents()) != 1 {
		t.Fatalf("100 hot appends left %d extents, want 1", len(b.Extents()))
	}
}

// ---- pool tests ----

var blkA = wire.BlockID{Ino: 1, Stripe: 0, Index: 0}
var blkB = wire.BlockID{Ino: 1, Stripe: 0, Index: 1}

func TestPoolSealOnFull(t *testing.T) {
	p := NewPool(0, Overwrite, 100, 4)
	var sealed *Unit
	for i := 0; i < 9; i++ {
		s, ok := p.Append(blkA, int64(i*12), make([]byte, 12), 0)
		if !ok {
			t.Fatal("unexpected stall")
		}
		if s != nil {
			sealed = s
		}
	}
	if sealed == nil {
		t.Fatal("108 bytes appended to 100-byte unit, never sealed")
	}
	if sealed.State != Recyclable {
		t.Fatalf("state %v", sealed.State)
	}
	if p.Active() != nil {
		t.Fatal("active should be nil until next append rotates")
	}
	// Next append allocates unit 2.
	if _, ok := p.Append(blkA, 0, make([]byte, 4), 0); !ok {
		t.Fatal("stall with maxUnits=4")
	}
}

func TestPoolStallsAtMaxUnits(t *testing.T) {
	p := NewPool(0, Overwrite, 10, 2)
	var sealedUnits []*Unit
	for i := 0; ; i++ {
		s, ok := p.Append(blkA, int64(i*10), make([]byte, 10), 0)
		if !ok {
			break
		}
		if s != nil {
			sealedUnits = append(sealedUnits, s)
		}
		if i > 10 {
			t.Fatal("pool never stalled")
		}
	}
	if len(sealedUnits) != 2 {
		t.Fatalf("sealed %d units, want 2", len(sealedUnits))
	}
	if !p.Stalled() {
		t.Fatal("Stalled() false")
	}
	// Recycling the oldest unit unstalls the pool.
	p.MarkRecycling(sealedUnits[0])
	p.MarkRecycled(sealedUnits[0], 5)
	if p.Stalled() {
		t.Fatal("still stalled after recycle")
	}
	if _, ok := p.Append(blkA, 0, make([]byte, 1), 6); !ok {
		t.Fatal("append after recycle failed")
	}
	if p.Stats().Stalls == 0 {
		t.Fatal("stall not counted")
	}
}

func TestPoolReuseWipesIndex(t *testing.T) {
	p := NewPool(0, Overwrite, 10, 2)
	s, _ := p.Append(blkA, 0, make([]byte, 10), 0)
	if s == nil {
		t.Fatal("no seal")
	}
	p.MarkRecycling(s)
	p.MarkRecycled(s, 1)
	// Fill unit 2 to force reuse of unit 1.
	s2, _ := p.Append(blkB, 0, make([]byte, 10), 2)
	if s2 == nil {
		t.Fatal("no second seal")
	}
	p.MarkRecycling(s2)
	p.MarkRecycled(s2, 3)
	_, ok := p.Append(blkB, 0, make([]byte, 1), 4)
	if !ok {
		t.Fatal("reuse failed")
	}
	act := p.Active()
	if act == nil {
		t.Fatal("no active unit")
	}
	if act.Lookup(blkA) != nil {
		t.Fatal("reused unit kept old index")
	}
}

func TestPoolCoversAndOverlayAcrossUnits(t *testing.T) {
	p := NewPool(0, Overwrite, 8, 4)
	p.Append(blkA, 0, []byte{1, 1, 1, 1, 1, 1, 1, 1}, 0) // seals unit 1
	p.Append(blkA, 4, []byte{2, 2, 2, 2}, 1)             // unit 2
	if !p.Covers(blkA, 0, 8) {
		t.Fatal("union coverage not detected")
	}
	if p.Covers(blkA, 0, 9) {
		t.Fatal("phantom coverage")
	}
	dst := make([]byte, 8)
	p.Overlay(blkA, 0, dst)
	want := []byte{1, 1, 1, 1, 2, 2, 2, 2}
	if !bytes.Equal(dst, want) {
		t.Fatalf("overlay %v want %v (newest must win)", dst, want)
	}
}

func TestPoolMemoryTracking(t *testing.T) {
	p := NewPool(0, Overwrite, 1<<20, 4)
	p.Append(blkA, 0, make([]byte, 1000), 0)
	st := p.Stats()
	if st.MemBytes != 1000 || st.PeakMemBytes != 1000 {
		t.Fatalf("mem=%d peak=%d", st.MemBytes, st.PeakMemBytes)
	}
	// Hot overwrite should not grow memory.
	p.Append(blkA, 0, make([]byte, 1000), 1)
	if p.Stats().MemBytes != 1000 {
		t.Fatalf("hot overwrite grew memory to %d", p.Stats().MemBytes)
	}
}

func TestPoolSealActiveForDrain(t *testing.T) {
	p := NewPool(0, Overwrite, 1<<20, 2)
	p.Append(blkA, 0, make([]byte, 10), 0)
	u := p.SealActive(1)
	if u == nil || u.State != Recyclable {
		t.Fatal("SealActive failed")
	}
	if p.SealActive(2) != nil {
		t.Fatal("sealed empty unit")
	}
	if !p.Pending() {
		t.Fatal("Pending false with recyclable unit")
	}
	p.MarkRecycling(u)
	p.MarkRecycled(u, 3)
	if p.Pending() {
		t.Fatal("Pending true after recycle")
	}
}

func TestUnitBlocksDeterministic(t *testing.T) {
	u := newUnit(0)
	u.Block(wire.BlockID{Ino: 2, Stripe: 1, Index: 0})
	u.Block(wire.BlockID{Ino: 1, Stripe: 5, Index: 3})
	u.Block(wire.BlockID{Ino: 1, Stripe: 5, Index: 1})
	b := u.Blocks()
	if b[0].Ino != 1 || b[0].Index != 1 || b[2].Ino != 2 {
		t.Fatalf("order %v", b)
	}
}

func TestPoolMinUnitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(maxUnits=1) did not panic")
		}
	}()
	NewPool(0, Overwrite, 10, 1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGaps(t *testing.T) {
	var b BlockLog
	b.Insert(10, make([]byte, 5), Overwrite)  // [10,15)
	b.Insert(20, make([]byte, 10), Overwrite) // [20,30)
	gaps := b.Gaps(0, 40)
	want := [][2]int64{{0, 10}, {15, 20}, {30, 40}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps %v want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps %v want %v", gaps, want)
		}
	}
	if g := b.Gaps(10, 15); g != nil {
		t.Fatalf("covered range has gaps %v", g)
	}
	if g := b.Gaps(100, 110); len(g) != 1 || g[0] != [2]int64{100, 110} {
		t.Fatalf("uncovered range gaps %v", g)
	}
}

func TestRawModeKeepsAllRecords(t *testing.T) {
	var b BlockLog
	b.Raw = true
	for i := 0; i < 10; i++ {
		b.Insert(0, []byte{byte(i)}, Overwrite) // same offset, no merge
	}
	if len(b.Extents()) != 10 {
		t.Fatalf("raw mode merged: %d extents", len(b.Extents()))
	}
	// Overlay must still apply newest-last.
	dst := make([]byte, 1)
	b.Overlay(0, dst)
	if dst[0] != 9 {
		t.Fatalf("raw overlay got %d want 9", dst[0])
	}
	if !b.mightContain(0, 1) {
		t.Fatal("bitmap not set in raw mode")
	}
}

// mkUnit builds a sealed-looking unit holding the given (block, off, data)
// records in order.
func mkUnit(seq uint64, mode MergeMode, raw bool, recs []struct {
	blk  wire.BlockID
	off  int64
	data []byte
}) *Unit {
	u := newUnit(seq)
	for _, r := range recs {
		bl := u.Block(r.blk)
		bl.Raw = raw
		bl.Insert(r.off, r.data, mode)
	}
	return u
}

func TestMergeUnitsOverwriteNewestWins(t *testing.T) {
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 0}
	type rec = struct {
		blk  wire.BlockID
		off  int64
		data []byte
	}
	old := mkUnit(0, Overwrite, false, []rec{{blk, 0, []byte{1, 1, 1, 1}}})
	niu := mkUnit(1, Overwrite, false, []rec{{blk, 2, []byte{9, 9}}})
	merged, order := MergeUnits([]*Unit{old, niu}, Overwrite, false)
	if len(order) != 1 || order[0] != blk {
		t.Fatalf("order %v", order)
	}
	exts := merged[blk].Extents()
	if len(exts) != 1 || exts[0].Off != 0 {
		t.Fatalf("extents %v", exts)
	}
	want := []byte{1, 1, 9, 9}
	for i, b := range exts[0].Data {
		if b != want[i] {
			t.Fatalf("merged data %v want %v", exts[0].Data, want)
		}
	}
}

func TestMergeUnitsXORAccumulates(t *testing.T) {
	blk := wire.BlockID{Ino: 2, Stripe: 1, Index: 3}
	type rec = struct {
		blk  wire.BlockID
		off  int64
		data []byte
	}
	a := mkUnit(0, XOR, false, []rec{{blk, 4, []byte{0xf0, 0x0f}}})
	b := mkUnit(1, XOR, false, []rec{{blk, 4, []byte{0xff, 0xff}}, {blk, 6, []byte{5}}})
	merged, _ := MergeUnits([]*Unit{a, b}, XOR, false)
	exts := merged[blk].Extents()
	if len(exts) != 1 || exts[0].Off != 4 || len(exts[0].Data) != 3 {
		t.Fatalf("extents %v", exts)
	}
	if exts[0].Data[0] != 0x0f || exts[0].Data[1] != 0xf0 || exts[0].Data[2] != 5 {
		t.Fatalf("xor merge wrong: %v", exts[0].Data)
	}
}

// TestMergeUnitsSingleAliases: a one-unit non-raw merge must not copy.
func TestMergeUnitsSingleAliases(t *testing.T) {
	blk := wire.BlockID{Ino: 3, Stripe: 0, Index: 0}
	type rec = struct {
		blk  wire.BlockID
		off  int64
		data []byte
	}
	u := mkUnit(0, Overwrite, false, []rec{{blk, 0, []byte{1}}})
	merged, _ := MergeUnits([]*Unit{u}, Overwrite, false)
	if merged[blk] != u.Lookup(blk) {
		t.Fatal("single-unit merge copied the block log")
	}
}

// TestMergeUnitsRawConcatenates: the ablation path must keep every record,
// in unit order then append order.
func TestMergeUnitsRawConcatenates(t *testing.T) {
	blk := wire.BlockID{Ino: 4, Stripe: 0, Index: 1}
	type rec = struct {
		blk  wire.BlockID
		off  int64
		data []byte
	}
	a := mkUnit(0, Overwrite, true, []rec{{blk, 0, []byte{1}}, {blk, 0, []byte{2}}})
	b := mkUnit(1, Overwrite, true, []rec{{blk, 0, []byte{3}}})
	merged, _ := MergeUnits([]*Unit{a, b}, Overwrite, true)
	exts := merged[blk].Extents()
	if len(exts) != 3 {
		t.Fatalf("raw merge collapsed records: %d", len(exts))
	}
	for i, want := range []byte{1, 2, 3} {
		if exts[i].Data[0] != want {
			t.Fatalf("raw merge order wrong at %d: %v", i, exts)
		}
	}
}

// TestMergeUnitsDeterministicOrder: block order must be sorted regardless of
// map iteration.
func TestMergeUnitsDeterministicOrder(t *testing.T) {
	type rec = struct {
		blk  wire.BlockID
		off  int64
		data []byte
	}
	var recs []rec
	for i := 15; i >= 0; i-- {
		recs = append(recs, rec{wire.BlockID{Ino: uint64(i % 4), Stripe: uint32(i / 4), Index: uint16(i)}, 0, []byte{byte(i)}})
	}
	a := mkUnit(0, Overwrite, false, recs)
	b := mkUnit(1, Overwrite, false, recs)
	_, order1 := MergeUnits([]*Unit{a, b}, Overwrite, false)
	_, order2 := MergeUnits([]*Unit{a, b}, Overwrite, false)
	for i := range order1 {
		if order1[i] != order2[i] {
			t.Fatal("merge order not deterministic")
		}
	}
	for i := 1; i < len(order1); i++ {
		p, q := order1[i-1], order1[i]
		if p.Ino > q.Ino || (p.Ino == q.Ino && p.Stripe > q.Stripe) {
			t.Fatalf("order not sorted: %v before %v", p, q)
		}
	}
}
