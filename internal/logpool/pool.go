package logpool

import (
	"fmt"
	"sort"
	"time"

	"tsue/internal/wire"
)

// UnitState is the lifecycle state of a log unit (paper Fig. 3).
type UnitState int

const (
	// Empty: the unit accepts appends (at most one Empty unit — the active
	// one at the queue tail — exists per pool).
	Empty UnitState = iota
	// Recyclable: sealed full; waiting for a recycle worker.
	Recyclable
	// Recycling: claimed by a recycle worker.
	Recycling
	// Recycled: fully merged into blocks; retained as a read cache until
	// reused as the next active unit.
	Recycled
)

func (s UnitState) String() string {
	switch s {
	case Empty:
		return "EMPTY"
	case Recyclable:
		return "RECYCLABLE"
	case Recycling:
		return "RECYCLING"
	case Recycled:
		return "RECYCLED"
	default:
		return fmt.Sprintf("UnitState(%d)", int(s))
	}
}

// Unit is one fixed-size log unit.
type Unit struct {
	Seq      uint64
	State    UnitState
	Appended int64 // raw appended bytes (fills the unit)
	blocks   map[wire.BlockID]*BlockLog

	// Timestamps maintained by the engine for Table 2 residency stats.
	FirstAppend time.Duration
	SealedAt    time.Duration
	RecycledAt  time.Duration
}

func newUnit(seq uint64) *Unit {
	return &Unit{Seq: seq, blocks: make(map[wire.BlockID]*BlockLog), FirstAppend: -1}
}

// Block returns the per-block log, creating it if absent.
func (u *Unit) Block(blk wire.BlockID) *BlockLog {
	b, ok := u.blocks[blk]
	if !ok {
		b = &BlockLog{}
		u.blocks[blk] = b
	}
	return b
}

// Lookup returns the per-block log or nil.
func (u *Unit) Lookup(blk wire.BlockID) *BlockLog { return u.blocks[blk] }

// Blocks returns the block IDs present in the unit, in deterministic order.
func (u *Unit) Blocks() []wire.BlockID {
	out := make([]wire.BlockID, 0, len(u.blocks))
	for id := range u.blocks {
		out = append(out, id)
	}
	sortBlockIDs(out)
	return out
}

func sortBlockIDs(ids []wire.BlockID) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Ino != b.Ino {
			return a.Ino < b.Ino
		}
		if a.Stripe != b.Stripe {
			return a.Stripe < b.Stripe
		}
		return a.Index < b.Index
	})
}

// MergeUnits combines the per-block logs of several units into one view for
// a batched recycle pass: adjacent and overlapping extents merge ACROSS
// units under mode (Overwrite: newest unit wins; XOR: deltas accumulate),
// so repeated updates spanning units collapse into a single read-modify-
// write downstream. Units must be given oldest first — the order appends
// were accepted in. With raw set (the no-locality ablation) nothing merges:
// records concatenate in append order and recycle individually, as before.
//
// The returned view is read-only and aliases the units' own (immutable
// once sealed) logs wherever no merging happens: always for a single unit,
// and per record in raw mode; only the non-raw multi-unit merge copies.
// The block ID list is in the same deterministic order as Unit.Blocks.
func MergeUnits(units []*Unit, mode MergeMode, raw bool) (map[wire.BlockID]*BlockLog, []wire.BlockID) {
	if len(units) == 1 {
		// Unbatched pass: the unit's own index IS the merged view.
		return units[0].blocks, units[0].Blocks()
	}
	merged := make(map[wire.BlockID]*BlockLog)
	var order []wire.BlockID
	for _, u := range units {
		for id, bl := range u.blocks {
			dst, ok := merged[id]
			if !ok {
				dst = &BlockLog{Raw: raw}
				merged[id] = dst
				order = append(order, id)
			}
			if raw {
				// Nothing merges in the ablation: concatenate the records
				// in unit order, aliasing the (immutable once sealed)
				// source buffers instead of copying them.
				dst.extents = append(dst.extents, bl.extents...)
				for w, bits := range bl.bitmap {
					for w >= len(dst.bitmap) {
						dst.bitmap = append(dst.bitmap, 0)
					}
					dst.bitmap[w] |= bits
				}
				continue
			}
			for _, ext := range bl.extents {
				dst.Insert(ext.Off, ext.Data, mode)
			}
		}
	}
	sortBlockIDs(order)
	return merged, order
}

// IndexedBytes returns post-merge bytes held by the unit (memory footprint).
func (u *Unit) IndexedBytes() int64 {
	var n int64
	for _, b := range u.blocks {
		n += b.Bytes()
	}
	return n
}

// wipe resets the unit for reuse as the new active unit.
func (u *Unit) wipe(seq uint64) {
	u.Seq = seq
	u.State = Empty
	u.Appended = 0
	u.blocks = make(map[wire.BlockID]*BlockLog)
	u.FirstAppend = -1
	u.SealedAt = 0
	u.RecycledAt = 0
}

// Stats aggregates pool counters.
//
//lint:allow obsregistry(pre-registry snapshot struct of the logpool API; engine residency tables consume it directly)
type Stats struct {
	Appends      int64 // raw append operations
	AppendBytes  int64
	Seals        int64 // units sealed
	Stalls       int64 // appends that found no usable active unit
	MemBytes     int64 // current indexed bytes across retained units
	PeakMemBytes int64
}

// Pool is a FIFO log pool. Units are ordered oldest→newest; the active unit
// is the tail. The pool never exceeds MaxUnits allocated units; when the
// active unit fills and no Recycled unit is available for reuse, appends
// stall (the engine blocks until a recycle completes) — this is the
// backpressure that makes very small unit quotas slow (paper Fig. 6).
type Pool struct {
	ID       int
	Mode     MergeMode
	UnitSize int64
	MaxUnits int
	// NoMerge disables the two-level index's locality merging (ablation
	// baseline in the paper's Fig. 7 breakdown).
	NoMerge bool

	units   []*Unit
	nextSeq uint64
	stats   Stats
}

// NewPool creates a pool with one empty active unit.
func NewPool(id int, mode MergeMode, unitSize int64, maxUnits int) *Pool {
	if unitSize <= 0 {
		panic("logpool: unit size must be positive")
	}
	if maxUnits < 2 {
		panic("logpool: need at least 2 units (one active, one recycling)")
	}
	p := &Pool{ID: id, Mode: mode, UnitSize: unitSize, MaxUnits: maxUnits}
	p.units = append(p.units, newUnit(p.nextSeq))
	p.nextSeq++
	return p
}

// Active returns the tail unit if it accepts appends, else nil.
func (p *Pool) Active() *Unit {
	tail := p.units[len(p.units)-1]
	if tail.State == Empty {
		return tail
	}
	return nil
}

// ensureActive rotates in a fresh active unit if the tail is sealed:
// reusing the oldest Recycled unit, or allocating while under MaxUnits.
// Returns nil when every unit is busy (stall).
func (p *Pool) ensureActive() *Unit {
	if u := p.Active(); u != nil {
		return u
	}
	// Reuse the oldest unit if fully recycled.
	if head := p.units[0]; head.State == Recycled {
		p.units = append(p.units[1:], head)
		head.wipe(p.nextSeq)
		p.nextSeq++
		return head
	}
	if len(p.units) < p.MaxUnits {
		u := newUnit(p.nextSeq)
		p.nextSeq++
		p.units = append(p.units, u)
		return u
	}
	return nil
}

// Append inserts one record at time now. It returns the unit that sealed as
// a result (to be queued for recycling), and ok=false when the pool is
// stalled (nothing was appended; retry after a unit recycles).
func (p *Pool) Append(blk wire.BlockID, off int64, data []byte, now time.Duration) (sealed *Unit, ok bool) {
	u := p.ensureActive()
	if u == nil {
		p.stats.Stalls++
		return nil, false
	}
	if u.FirstAppend < 0 {
		u.FirstAppend = now
	}
	bl := u.Block(blk)
	bl.Raw = p.NoMerge
	bl.Insert(off, data, p.Mode)
	u.Appended += int64(len(data))
	p.stats.Appends++
	p.stats.AppendBytes += int64(len(data))
	p.updateMem()
	if u.Appended >= p.UnitSize {
		u.State = Recyclable
		u.SealedAt = now
		p.stats.Seals++
		return u, true
	}
	return nil, true
}

// SealActive force-seals a non-empty active unit (drain path). Returns the
// sealed unit or nil.
func (p *Pool) SealActive(now time.Duration) *Unit {
	u := p.Active()
	if u == nil || u.Appended == 0 {
		return nil
	}
	u.State = Recyclable
	u.SealedAt = now
	p.stats.Seals++
	return u
}

// MarkRecycling transitions a claimed unit.
func (p *Pool) MarkRecycling(u *Unit) {
	if u.State != Recyclable {
		panic(fmt.Sprintf("logpool: MarkRecycling on %v unit", u.State))
	}
	u.State = Recycling
}

// MarkRecycled completes a unit's recycle at time now.
func (p *Pool) MarkRecycled(u *Unit, now time.Duration) {
	if u.State != Recycling {
		panic(fmt.Sprintf("logpool: MarkRecycled on %v unit", u.State))
	}
	u.State = Recycled
	u.RecycledAt = now
	p.updateMem()
}

// Stalled reports whether appends currently cannot proceed.
func (p *Pool) Stalled() bool {
	if p.Active() != nil {
		return false
	}
	if p.units[0].State == Recycled || len(p.units) < p.MaxUnits {
		return false
	}
	return true
}

// Units returns the pool's units oldest→newest (tests, memory accounting).
func (p *Pool) Units() []*Unit { return p.units }

// Tail returns the newest unit. Immediately after a successful Append, Tail
// is the unit the record landed in (rotation happens at the start of the
// next Append).
func (p *Pool) Tail() *Unit { return p.units[len(p.units)-1] }

// PendingSealed reports whether any sealed unit is still waiting for (or
// undergoing) recycling. Unlike Pending it ignores the active unit, so it
// distinguishes in-flight merge work from replayable front-log overlay
// state (the settle barrier of degraded-mode recovery).
func (p *Pool) PendingSealed() bool {
	for _, u := range p.units {
		if u.State == Recyclable || u.State == Recycling {
			return true
		}
	}
	return false
}

// Pending reports whether any unit holds unrecycled data.
func (p *Pool) Pending() bool {
	for _, u := range p.units {
		switch u.State {
		case Recyclable, Recycling:
			return true
		case Empty:
			if u.Appended > 0 {
				return true
			}
		}
	}
	return false
}

func (p *Pool) updateMem() {
	var m int64
	for _, u := range p.units {
		m += u.IndexedBytes()
	}
	p.stats.MemBytes = m
	if m > p.stats.PeakMemBytes {
		p.stats.PeakMemBytes = m
	}
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats { return p.stats }

// ExtractActive removes and returns blk's merged extents from the active
// (unsealed) unit, in offset order, or nil when the active unit holds
// nothing for blk. Sealed and recycling units are untouched — they are
// in-flight pipeline state the caller must drain first — and recycled
// (retained) units keep their read-cache copies, whose content is already
// applied to the block. The unit's fill level is not reduced: the space the
// records occupied in the on-disk log is consumed either way.
func (p *Pool) ExtractActive(blk wire.BlockID) []Extent {
	u := p.Active()
	if u == nil {
		return nil
	}
	b := u.Lookup(blk)
	if b == nil {
		return nil
	}
	delete(u.blocks, blk)
	p.updateMem()
	return b.Extents()
}

// Covers reports whether [off, off+size) of blk is fully present across the
// pool's retained units (read-cache hit test).
func (p *Pool) Covers(blk wire.BlockID, off, size int64) bool {
	end := off + size
	var iv [][2]int64
	for _, u := range p.units {
		if b := u.Lookup(blk); b != nil {
			iv = b.covers(off, end, iv)
		}
	}
	if len(iv) == 0 {
		return size == 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	cur := off
	for _, r := range iv {
		if r[0] > cur {
			return false
		}
		if r[1] > cur {
			cur = r[1]
		}
	}
	return cur >= end
}

// Overlay applies the pool's indexed data for blk onto dst (block offset
// off), oldest unit first so the newest data wins.
func (p *Pool) Overlay(blk wire.BlockID, off int64, dst []byte) {
	for _, u := range p.units {
		if b := u.Lookup(blk); b != nil {
			b.Overlay(off, dst)
		}
	}
}
