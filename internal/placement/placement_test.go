package placement

// Property tests for the CRUSH-like placement map: determinism across
// independently built maps, balance bounds across PG counts, minimal
// remapping on single-OSD death, role rotation coverage, and the
// degenerate-configuration error paths. These are the invariants the
// cluster layer (MDS addressing, recovery targets, degraded surrogates)
// leans on.

import (
	"fmt"
	"testing"

	"tsue/internal/wire"
)

func osds(n int) []wire.NodeID {
	out := make([]wire.NodeID, n)
	for i := range out {
		out[i] = wire.NodeID(i + 1)
	}
	return out
}

func mustMap(t *testing.T, pgs, width, n int) *Map {
	t.Helper()
	m, err := New(Config{PGs: pgs, Width: width, OSDs: osds(n), Seed: 0x7507})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func deadSet(ids ...wire.NodeID) func(wire.NodeID) bool {
	set := make(map[wire.NodeID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(id wire.NodeID) bool { return set[id] }
}

// TestDeterminism: two independently constructed maps with the same config
// must agree on every PG assignment and every stripe placement, with and
// without dead OSDs — the property that lets every node compute placement
// locally.
func TestDeterminism(t *testing.T) {
	a := mustMap(t, 64, 6, 12)
	b := mustMap(t, 64, 6, 12)
	views := []func(wire.NodeID) bool{nil, deadSet(3), deadSet(3, 7)}
	for ino := uint64(1); ino <= 20; ino++ {
		for stripe := uint32(0); stripe < 50; stripe++ {
			s := wire.StripeID{Ino: ino, Stripe: stripe}
			if a.PGOf(s) != b.PGOf(s) {
				t.Fatalf("PGOf(%v) differs: %d vs %d", s, a.PGOf(s), b.PGOf(s))
			}
			for _, dead := range views {
				pa, ea := a.Place(s, dead)
				pb, eb := b.Place(s, dead)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("Place(%v) error mismatch: %v vs %v", s, ea, eb)
				}
				for i := range pa {
					if pa[i] != pb[i] {
						t.Fatalf("Place(%v)[%d] differs: %v vs %v", s, i, pa, pb)
					}
				}
			}
		}
	}
}

// TestBalanceAcrossPGCounts: the per-OSD share of PG slots and of actual
// stripe blocks must stay within a max/mean bound for every PG count the
// placement experiment sweeps. The bound loosens as PGs shrink (fewer
// independent straws), which is exactly the concentration the experiment
// measures — but at operating PG counts (>= 4x OSDs) it must be tight.
func TestBalanceAcrossPGCounts(t *testing.T) {
	const nOSD, width = 16, 10
	for _, tc := range []struct {
		pgs   int
		bound float64 // max/mean slot load
	}{
		{64, 1.5},
		{128, 1.35},
		{512, 1.25},
	} {
		m := mustMap(t, tc.pgs, width, nOSD)
		slotLoad := make(map[wire.NodeID]int)
		for pg := 0; pg < tc.pgs; pg++ {
			mem, err := m.Members(pg, nil)
			if err != nil {
				t.Fatal(err)
			}
			unique := make(map[wire.NodeID]bool)
			for _, id := range mem {
				if unique[id] {
					t.Fatalf("pgs=%d pg=%d repeats member %d", tc.pgs, pg, id)
				}
				unique[id] = true
				slotLoad[id]++
			}
		}
		mean := float64(tc.pgs*width) / float64(nOSD)
		for id, n := range slotLoad {
			if r := float64(n) / mean; r > tc.bound {
				t.Errorf("pgs=%d OSD %d slot load %.2fx mean (bound %.2fx)", tc.pgs, id, r, tc.bound)
			}
		}
		// Block-level balance over a multi-file stripe population.
		blockLoad := make(map[wire.NodeID]int)
		blocks := 0
		for ino := uint64(1); ino <= 8; ino++ {
			for stripe := uint32(0); stripe < 64; stripe++ {
				pl, err := m.Place(wire.StripeID{Ino: ino, Stripe: stripe}, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, id := range pl {
					blockLoad[id]++
					blocks++
				}
			}
		}
		bmean := float64(blocks) / float64(nOSD)
		for id, n := range blockLoad {
			if r := float64(n) / bmean; r > tc.bound+0.15 {
				t.Errorf("pgs=%d OSD %d block load %.2fx mean", tc.pgs, id, r)
			}
		}
	}
}

// TestMinimalRemapOnSingleDeath: killing one OSD must (a) leave every PG
// that did not include it byte-identical, and (b) change exactly one slot —
// the dead one's — in every PG that did, replacing it with a live non-member.
func TestMinimalRemapOnSingleDeath(t *testing.T) {
	m := mustMap(t, 256, 10, 16)
	for _, victim := range osds(16) {
		dead := deadSet(victim)
		touched := 0
		for pg := 0; pg < 256; pg++ {
			before, err := m.Members(pg, nil)
			if err != nil {
				t.Fatal(err)
			}
			after, err := m.Members(pg, dead)
			if err != nil {
				t.Fatal(err)
			}
			slot := m.MemberSlot(pg, victim)
			if slot < 0 {
				for i := range before {
					if before[i] != after[i] {
						t.Fatalf("victim %d not in pg %d but slot %d moved %d->%d",
							victim, pg, i, before[i], after[i])
					}
				}
				continue
			}
			touched++
			for i := range before {
				if i == slot {
					if after[i] == victim {
						t.Fatalf("pg %d slot %d still assigns dead OSD %d", pg, slot, victim)
					}
					for _, b := range before {
						if after[i] == b {
							t.Fatalf("pg %d replacement %d was already a member", pg, after[i])
						}
					}
					continue
				}
				if before[i] != after[i] {
					t.Fatalf("pg %d slot %d moved %d->%d on unrelated death of %d",
						pg, i, before[i], after[i], victim)
				}
			}
		}
		if touched == 0 {
			t.Errorf("victim %d was a member of no PG (balance hole)", victim)
		}
		// PGsOf must enumerate exactly the touched groups.
		if got := len(m.PGsOf(victim)); got != touched {
			t.Errorf("PGsOf(%d)=%d groups, death touched %d", victim, got, touched)
		}
	}
}

// TestRoleRotationSpreadsParity: within one PG, the first-parity role
// (block index = K) must rotate across the PG's members rather than pinning
// one OSD behind every stripe's delta buffering.
func TestRoleRotationSpreadsParity(t *testing.T) {
	const k, mParity = 6, 4
	m := mustMap(t, 32, k+mParity, 16)
	// Collect many stripes of one PG and count who serves index K.
	firstParity := make(map[wire.NodeID]int)
	stripesSeen := 0
	for ino := uint64(1); ino <= 16; ino++ {
		for stripe := uint32(0); stripe < 256; stripe++ {
			s := wire.StripeID{Ino: ino, Stripe: stripe}
			if m.PGOf(s) != 0 {
				continue
			}
			pl, err := m.Place(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			firstParity[pl[k]]++
			stripesSeen++
		}
	}
	if stripesSeen < 20 {
		t.Fatalf("only %d stripes landed in PG 0; hash likely broken", stripesSeen)
	}
	if len(firstParity) < (k+mParity)/2 {
		t.Errorf("first-parity role served by only %d of %d members over %d stripes",
			len(firstParity), k+mParity, stripesSeen)
	}
}

// TestReplacementAvoidsExclusions: the recovery-target helper must fall
// past excluded OSDs deterministically and never return a dead or excluded
// node.
func TestReplacementAvoidsExclusions(t *testing.T) {
	m := mustMap(t, 64, 4, 8)
	s := wire.StripeID{Ino: 3, Stripe: 5}
	pl, err := m.Place(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := pl[1]
	dead := deadSet(victim)
	r1, err := m.Replacement(s, 1, dead, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == victim || dead(r1) {
		t.Fatalf("replacement %d is the dead victim", r1)
	}
	// Excluding the natural replacement (plus the stripe's current hosts,
	// as the cluster's recovery does) must yield a fresh candidate, never
	// another current member of the stripe.
	hosts := map[wire.NodeID]bool{r1: true}
	for i, mem := range pl {
		if i != 1 {
			hosts[mem] = true
		}
	}
	r2, err := m.Replacement(s, 1, dead, func(id wire.NodeID) bool { return hosts[id] })
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r1 || r2 == victim {
		t.Fatalf("excluded replacement returned again: %d", r2)
	}
	for i, mem := range pl {
		if i != 1 && r2 == mem {
			t.Fatalf("replacement %d collides with stripe member %d", r2, mem)
		}
	}
}

// TestErrors: degenerate configurations must be rejected, and a PG with
// fewer than Width live OSDs must surface an error rather than repeat
// members.
func TestErrors(t *testing.T) {
	if _, err := New(Config{PGs: 0, Width: 2, OSDs: osds(4)}); err == nil {
		t.Error("PGs=0 accepted")
	}
	if _, err := New(Config{PGs: 4, Width: 5, OSDs: osds(4)}); err == nil {
		t.Error("width > OSDs accepted")
	}
	if _, err := New(Config{PGs: 4, Width: 2, OSDs: []wire.NodeID{1, 1}}); err == nil {
		t.Error("duplicate OSDs accepted")
	}
	m := mustMap(t, 4, 3, 4)
	if _, err := m.Members(0, deadSet(1, 2)); err == nil {
		t.Error("PG with too few live OSDs did not error")
	}
	if _, err := m.Members(99, nil); err == nil {
		t.Error("out-of-range PG accepted")
	}
}

// TestPlacementGolden pins a handful of placements so accidental hash or
// ordering changes (which would silently reshuffle every simulated cluster)
// show up as a diff, not as mysteriously shifted experiment numbers.
func TestPlacementGolden(t *testing.T) {
	m := mustMap(t, 8, 4, 6)
	var got []string
	for stripe := uint32(0); stripe < 4; stripe++ {
		s := wire.StripeID{Ino: 1, Stripe: stripe}
		pl, err := m.Place(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("pg=%d rot=%d place=%v", m.PGOf(s), m.Rotation(s), pl))
	}
	prev := fmt.Sprintf("%v", got)
	again := mustMap(t, 8, 4, 6)
	var got2 []string
	for stripe := uint32(0); stripe < 4; stripe++ {
		s := wire.StripeID{Ino: 1, Stripe: stripe}
		pl, _ := again.Place(s, nil)
		got2 = append(got2, fmt.Sprintf("pg=%d rot=%d place=%v", again.PGOf(s), again.Rotation(s), pl))
	}
	if now := fmt.Sprintf("%v", got2); now != prev {
		t.Fatalf("placement not stable across constructions:\n%s\nvs\n%s", prev, now)
	}
}
