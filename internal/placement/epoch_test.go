package placement

import (
	"testing"

	"tsue/internal/wire"
)

func epochBase(t *testing.T, osds, pgs, width int) *Epochs {
	t.Helper()
	ids := make([]wire.NodeID, osds)
	for i := range ids {
		ids[i] = wire.NodeID(i + 1)
	}
	m, err := New(Config{PGs: pgs, Width: width, OSDs: ids, Seed: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	return NewEpochs(m)
}

func stripePop(files, stripes int) []wire.StripeID {
	var out []wire.StripeID
	for f := 0; f < files; f++ {
		for s := 0; s < stripes; s++ {
			out = append(out, wire.StripeID{Ino: uint64(f + 1), Stripe: uint32(s)})
		}
	}
	return out
}

// TestAddOSDMinimalRemap pins the headline property: adding one OSD changes
// at most one slot per PG, never touches PGs the newcomer does not win, and
// the actual block movement stays within 1.5x the minimal-remap bound.
func TestAddOSDMinimalRemap(t *testing.T) {
	e := epochBase(t, 10, 64, 6)
	stripes := stripePop(4, 32)
	old := e.Current()
	to, err := e.AddOSD(wire.NodeID(11))
	if err != nil {
		t.Fatal(err)
	}
	if to != 1 || e.Epoch() != 1 {
		t.Fatalf("epoch after add = %d (chain %d)", to, e.Epoch())
	}
	next := e.At(to)

	changedPGs := 0
	for pg := 0; pg < 64; pg++ {
		om, _ := old.Members(pg, nil)
		nm, _ := next.Members(pg, nil)
		diffSlots := 0
		for i := range om {
			if om[i] != nm[i] {
				diffSlots++
				if nm[i] != 11 {
					t.Fatalf("pg %d slot %d changed to %d, not the new OSD", pg, i, nm[i])
				}
			}
		}
		if diffSlots > 1 {
			t.Fatalf("pg %d changed %d slots", pg, diffSlots)
		}
		if diffSlots == 1 {
			changedPGs++
		}
	}
	if changedPGs == 0 {
		t.Fatal("no PG adopted the new OSD")
	}

	moves := Diff(old, next, stripes)
	for _, mv := range moves {
		if mv.To != 11 {
			t.Fatalf("move %+v targets %d, not the new OSD", mv, mv.To)
		}
	}
	bound := e.MinimalBound(to, stripes)
	if bound <= 0 {
		t.Fatalf("bound = %v", bound)
	}
	if float64(len(moves)) > 1.5*bound {
		t.Fatalf("moved %d blocks > 1.5x bound %.1f", len(moves), bound)
	}
}

// TestAddOSDConvergesToStraw: the derived member set equals the top-Width of
// the grown candidate ranking (the from-scratch straw selection), even
// though slot order differs — repeated adds cannot drift away from straw
// balance.
func TestAddOSDConvergesToStraw(t *testing.T) {
	e := epochBase(t, 8, 32, 5)
	if _, err := e.AddOSD(9); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddOSD(10); err != nil {
		t.Fatal(err)
	}
	next := e.Current()
	for pg := 0; pg < 32; pg++ {
		want := make(map[wire.NodeID]bool)
		for _, id := range next.cand[pg][:5] {
			want[id] = true
		}
		got, _ := next.Members(pg, nil)
		for _, id := range got {
			if !want[id] {
				t.Fatalf("pg %d member %d not in straw top-Width %v", pg, id, next.cand[pg][:5])
			}
		}
	}
}

// TestRemoveOSDMovesExactlyItsBlocks: decommissioning moves precisely the
// removed node's blocks (actual == bound) and nothing else.
func TestRemoveOSDMovesExactlyItsBlocks(t *testing.T) {
	e := epochBase(t, 9, 48, 6)
	stripes := stripePop(3, 24)
	old := e.Current()
	victim := wire.NodeID(4)
	to, err := e.RemoveOSD(victim)
	if err != nil {
		t.Fatal(err)
	}
	moves := Diff(old, e.At(to), stripes)
	bound := e.MinimalBound(to, stripes)
	if float64(len(moves)) != bound {
		t.Fatalf("moved %d != bound %.0f", len(moves), bound)
	}
	for _, mv := range moves {
		if mv.From != victim {
			t.Fatalf("move %+v does not originate at the removed OSD", mv)
		}
		if mv.To == victim {
			t.Fatalf("move %+v targets the removed OSD", mv)
		}
	}
	if _, err := e.RemoveOSD(victim); err == nil {
		t.Fatal("second removal of the same OSD accepted")
	}
}

// TestSplitPGsMovesNothing: a split multiplies the PG count, keeps every
// stripe's membership, and reports a zero bound.
func TestSplitPGsMovesNothing(t *testing.T) {
	e := epochBase(t, 8, 16, 5)
	stripes := stripePop(4, 32)
	old := e.Current()
	to, err := e.SplitPGs(4)
	if err != nil {
		t.Fatal(err)
	}
	next := e.At(to)
	if got := next.Config().PGs; got != 64 {
		t.Fatalf("split PGs = %d, want 64", got)
	}
	if moves := Diff(old, next, stripes); len(moves) != 0 {
		t.Fatalf("split moved %d blocks", len(moves))
	}
	if b := e.MinimalBound(to, stripes); b != 0 {
		t.Fatalf("split bound = %v", b)
	}
	for _, s := range stripes {
		if next.PGOf(s)%16 != old.PGOf(s) {
			t.Fatalf("stripe %v left its PG class: %d vs %d", s, next.PGOf(s), old.PGOf(s))
		}
	}
	if _, err := e.SplitPGs(1); err == nil {
		t.Fatal("split factor 1 accepted")
	}
}

// TestDerivedMapLiveness: dead-slot replacement and Replacement still work
// on an epoch-derived map (explicit member assignment), with the same
// stability guarantees as the base map.
func TestDerivedMapLiveness(t *testing.T) {
	e := epochBase(t, 8, 24, 5)
	if _, err := e.AddOSD(9); err != nil {
		t.Fatal(err)
	}
	m := e.Current()
	deadID := wire.NodeID(2)
	dead := func(id wire.NodeID) bool { return id == deadID }
	for pg := 0; pg < 24; pg++ {
		base, err := m.Members(pg, nil)
		if err != nil {
			t.Fatal(err)
		}
		live, err := m.Members(pg, dead)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if base[i] == deadID {
				if live[i] == deadID {
					t.Fatalf("pg %d slot %d still dead", pg, i)
				}
				if m.MemberSlot(pg, base[i]) != i {
					t.Fatalf("pg %d MemberSlot mismatch", pg)
				}
			} else if live[i] != base[i] {
				t.Fatalf("pg %d surviving slot %d moved", pg, i)
			}
		}
	}
	s := wire.StripeID{Ino: 1, Stripe: 7}
	if _, err := m.Replacement(s, 0, dead, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEpochChainDeterminism: the same transition sequence yields identical
// placement twice over.
func TestEpochChainDeterminism(t *testing.T) {
	build := func() *Epochs {
		e := epochBase(t, 8, 32, 5)
		if _, err := e.AddOSD(9); err != nil {
			t.Fatal(err)
		}
		if _, err := e.SplitPGs(2); err != nil {
			t.Fatal(err)
		}
		if _, err := e.AddOSD(10); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := build(), build()
	if a.Epoch() != 3 || b.Epoch() != 3 {
		t.Fatalf("chain length %d/%d", a.Epoch(), b.Epoch())
	}
	if a.Transition(3).Kind != TransAddOSD || a.Transition(2).Kind != TransSplitPGs {
		t.Fatal("transition bookkeeping wrong")
	}
	for _, s := range stripePop(2, 16) {
		pa, _ := a.Current().Place(s, nil)
		pb, _ := b.Current().Place(s, nil)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("stripe %v placement diverged", s)
			}
		}
	}
}
