// Package placement implements the CRUSH-like placement layer of ECFS: a
// deterministic pseudo-random mapping from (file, stripe) to a placement
// group (PG) and from each PG to an ordered set of OSDs. Like CRUSH
// (Weil et al., the placement function behind Ceph), the mapping is a pure
// function of the cluster shape — any node can compute any stripe's homes
// without a central lookup table — while still balancing load and moving a
// minimal amount of data when an OSD dies:
//
//   - (ino, stripe) hashes to one of Config.PGs placement groups;
//   - each PG ranks every OSD by a per-(PG, OSD) hash score ("straw"
//     selection) and its members are the Width top-scored OSDs;
//   - within a PG, the member→role assignment rotates per stripe, so the
//     parity roles (index K..K+M-1, including the first-parity slot that
//     buffers cross-parity deltas) spread across the PG's members instead
//     of pinning the same OSDs behind every stripe's parity traffic;
//   - when an OSD dies, each of its PGs replaces it *in place* with the
//     next-best scored live OSD: PGs that did not include the dead OSD are
//     untouched, and surviving members keep their slots (minimal remap).
//
// The package is pure computation — no simulation, no I/O — so the cluster
// (MDS, clients, recovery) and the property tests share one authority for
// who-owns-which-stripe.
package placement

import (
	"fmt"
	"sort"

	"tsue/internal/wire"
)

// Config describes one placement map.
type Config struct {
	// PGs is the placement-group count. More PGs spread each OSD's stripes
	// over more distinct peer sets, widening recovery fan-out.
	PGs int
	// Width is the number of OSDs per PG — the stripe width K+M.
	Width int
	// OSDs lists the participating OSD node IDs.
	OSDs []wire.NodeID
	// Seed perturbs every hash, standing in for a map epoch.
	Seed uint64
}

// Map is an immutable placement map. All methods are safe for concurrent
// readers.
type Map struct {
	cfg Config
	// cand[pg] is every OSD ranked by straw score for that PG (descending);
	// the first Width entries are the PG's baseline members.
	cand [][]wire.NodeID
	// slot[pg] maps an OSD to its candidate rank in cand[pg].
	slot []map[wire.NodeID]int
	// members, when non-nil, pins each PG's slot→OSD assignment explicitly
	// instead of deriving it from candidate rank. Epoch-derived maps (see
	// epoch.go) use it to change as few slots as possible per transition: a
	// from-scratch re-rank after an OSD add would shift every member below
	// the newcomer's rank, moving far more than the minimal-remap bound.
	members [][]wire.NodeID
}

// New validates cfg and precomputes the per-PG candidate rankings.
func New(cfg Config) (*Map, error) {
	if cfg.PGs < 1 {
		return nil, fmt.Errorf("placement: need at least 1 PG, got %d", cfg.PGs)
	}
	if cfg.Width < 1 {
		return nil, fmt.Errorf("placement: need positive width, got %d", cfg.Width)
	}
	if cfg.Width > len(cfg.OSDs) {
		return nil, fmt.Errorf("placement: width %d exceeds %d OSDs", cfg.Width, len(cfg.OSDs))
	}
	seen := make(map[wire.NodeID]bool, len(cfg.OSDs))
	for _, id := range cfg.OSDs {
		if seen[id] {
			return nil, fmt.Errorf("placement: duplicate OSD %d", id)
		}
		seen[id] = true
	}
	m := &Map{
		cfg:  cfg,
		cand: make([][]wire.NodeID, cfg.PGs),
		slot: make([]map[wire.NodeID]int, cfg.PGs),
	}
	for pg := 0; pg < cfg.PGs; pg++ {
		order := append([]wire.NodeID(nil), cfg.OSDs...)
		sort.SliceStable(order, func(i, j int) bool {
			si, sj := m.score(pg, order[i]), m.score(pg, order[j])
			if si != sj {
				return si > sj
			}
			return order[i] < order[j] // deterministic tiebreak
		})
		m.cand[pg] = order
		ranks := make(map[wire.NodeID]int, len(order))
		for r, id := range order {
			ranks[id] = r
		}
		m.slot[pg] = ranks
	}
	return m, nil
}

// Config returns the map's configuration.
func (m *Map) Config() Config { return m.cfg }

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the straw value of one OSD for one PG.
func (m *Map) score(pg int, id wire.NodeID) uint64 {
	return mix64(m.cfg.Seed ^ mix64(uint64(pg)*0x9e3779b97f4a7c15^uint64(uint32(id))*0xd1b54a32d192ed03))
}

// PGOf maps a stripe to its placement group.
func (m *Map) PGOf(s wire.StripeID) int {
	return int(mix64(m.cfg.Seed^s.Ino*0x2545f4914f6cdd1d^uint64(s.Stripe)*0x9e3779b97f4a7c15) % uint64(m.cfg.PGs))
}

// Rotation returns the stripe's role rotation within its PG: block index i
// is served by PG member (i + Rotation) mod Width. Distinct hash domain from
// PGOf so role assignment is independent of group assignment.
func (m *Map) Rotation(s wire.StripeID) int {
	return int(mix64(m.cfg.Seed^0xabcd^s.Ino*0xff51afd7ed558ccd^uint64(s.Stripe)*0xc4ceb9fe1a85ec53) % uint64(m.cfg.Width))
}

// baseline returns the PG's slot→OSD assignment before liveness filtering:
// the explicit epoch-derived assignment when present, else the top-Width
// candidates in rank order. The returned slice must not be mutated.
func (m *Map) baseline(pg int) []wire.NodeID {
	if m.members != nil {
		return m.members[pg]
	}
	return m.cand[pg][:m.cfg.Width]
}

// Members returns the PG's Width member OSDs, slot-ordered. dead (nil = all
// alive) excludes OSDs: a dead baseline member is replaced *in its slot* by
// the next-best scored live non-member, so surviving members never change
// slots and PGs without the dead OSD are unaffected. It errors only when
// fewer than Width OSDs are alive.
func (m *Map) Members(pg int, dead func(wire.NodeID) bool) ([]wire.NodeID, error) {
	if pg < 0 || pg >= m.cfg.PGs {
		return nil, fmt.Errorf("placement: PG %d out of range [0,%d)", pg, m.cfg.PGs)
	}
	base := m.baseline(pg)
	out := make([]wire.NodeID, m.cfg.Width)
	if dead == nil {
		copy(out, base)
		return out, nil
	}
	// queue is every non-member candidate in rank order. For rank-derived
	// baselines that is exactly cand[Width:] (no allocation — the hot path
	// for every pre-expansion map); epoch-derived baselines rebuild it.
	queue := m.cand[pg][m.cfg.Width:]
	if m.members != nil {
		inBase := make(map[wire.NodeID]bool, len(base))
		for _, id := range base {
			inBase[id] = true
		}
		queue = make([]wire.NodeID, 0, len(m.cand[pg])-len(base))
		for _, id := range m.cand[pg] {
			if !inBase[id] {
				queue = append(queue, id)
			}
		}
	}
	qi := 0
	for i, id := range base {
		if !dead(id) {
			out[i] = id
			continue
		}
		for qi < len(queue) && dead(queue[qi]) {
			qi++
		}
		if qi >= len(queue) {
			return nil, fmt.Errorf("placement: PG %d has fewer than %d live OSDs", pg, m.cfg.Width)
		}
		out[i] = queue[qi]
		qi++
	}
	return out, nil
}

// Place returns the stripe's Width hosting OSDs under the given liveness
// view, block index i at element i (indices K..K+M-1 are the parity roles).
func (m *Map) Place(s wire.StripeID, dead func(wire.NodeID) bool) ([]wire.NodeID, error) {
	mem, err := m.Members(m.PGOf(s), dead)
	if err != nil {
		return nil, err
	}
	rot := m.Rotation(s)
	w := m.cfg.Width
	out := make([]wire.NodeID, w)
	for i := range out {
		out[i] = mem[(i+rot)%w]
	}
	return out, nil
}

// MemberSlot returns the slot the OSD occupies in the PG's baseline
// member set, or -1 when it is not a baseline member.
func (m *Map) MemberSlot(pg int, id wire.NodeID) int {
	if m.members != nil {
		for i, mem := range m.members[pg] {
			if mem == id {
				return i
			}
		}
		return -1
	}
	r, ok := m.slot[pg][id]
	if !ok || r >= m.cfg.Width {
		return -1
	}
	return r
}

// PGsOf enumerates the PGs whose baseline member set includes the OSD —
// the groups a failed OSD degrades, and the only groups whose membership
// its death may change.
func (m *Map) PGsOf(id wire.NodeID) []int {
	var out []int
	for pg := 0; pg < m.cfg.PGs; pg++ {
		if m.MemberSlot(pg, id) >= 0 {
			out = append(out, pg)
		}
	}
	return out
}

// Replacement returns the OSD that should take over block index idx of
// stripe s under the given liveness view: the stable in-slot replacement
// from Members, falling back down the PG's candidate ranking past any OSD
// the caller excludes (e.g. nodes already hosting another block of the same
// stripe after earlier recoveries, so a stripe never doubles up).
func (m *Map) Replacement(s wire.StripeID, idx int, dead, exclude func(wire.NodeID) bool) (wire.NodeID, error) {
	pg := m.PGOf(s)
	mem, err := m.Members(pg, dead)
	if err != nil {
		return 0, err
	}
	slot := (idx + m.Rotation(s)) % m.cfg.Width
	id := mem[slot]
	if exclude == nil || !exclude(id) {
		return id, nil
	}
	// Fall down the PG's ranking. Only the caller's exclusions (the actual
	// current hosts of the stripe's other blocks) disqualify a candidate:
	// a baseline member of another slot is eligible when remaps have moved
	// that slot's block elsewhere — on an exactly-wide cluster it can be
	// the only node left.
	for _, c := range m.cand[pg] {
		if c == id || (dead != nil && dead(c)) || exclude(c) {
			continue
		}
		return c, nil
	}
	return 0, fmt.Errorf("placement: no eligible replacement for %v block %d", s, idx)
}
