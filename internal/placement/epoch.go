package placement

// Epoch-versioned placement. The static Map of placement.go assumes fixed
// membership; cluster expansion needs a *sequence* of maps plus a precise
// account of which blocks each transition moves. Epochs is that sequence:
// an append-only chain of maps where each successor is derived from its
// parent by one transition (AddOSD, RemoveOSD or SplitPGs) that changes as
// few PG slots as possible:
//
//   - AddOSD: per PG, the new OSD takes over exactly one slot — the
//     weakest-scored current member's — and only when it outranks that
//     member; every other slot keeps its OSD. The resulting member set is
//     the straw top-Width of the grown candidate list, so repeated adds
//     converge to the from-scratch map, but only ~Width/(N+1) of the PGs
//     change at all and each changed PG moves one slot's blocks.
//   - RemoveOSD: PGs containing the removed OSD replace it in its slot by
//     the best-ranked non-member; all other PGs are untouched, so actual
//     movement equals the lower bound (the removed node's blocks).
//   - SplitPGs: the PG count multiplies by an integer factor. PGOf is
//     modulo-based, so a stripe's new PG is congruent to its old PG and
//     each child PG inherits its parent's slot assignment — a split moves
//     nothing by itself; it buys finer cutover/diff granularity for later
//     transitions.
//
// Diff enumerates the (PG, block) moves between two maps for a given
// stripe population, and MinimalBound reports the information-theoretic
// floor any placement scheme must move for the transition — the yardstick
// the rebalance experiment measures actual movement against.

import (
	"fmt"

	"tsue/internal/wire"
)

// TransitionKind enumerates epoch transitions.
type TransitionKind int

const (
	// TransAddOSD grows the cluster by one OSD.
	TransAddOSD TransitionKind = iota + 1
	// TransRemoveOSD shrinks the cluster by one OSD (planned decommission,
	// not failure — failures are handled by liveness views, not epochs).
	TransRemoveOSD
	// TransSplitPGs multiplies the PG count by Factor.
	TransSplitPGs
)

// String returns the transition kind's wire/report name.
func (k TransitionKind) String() string {
	switch k {
	case TransAddOSD:
		return "add-osd"
	case TransRemoveOSD:
		return "remove-osd"
	case TransSplitPGs:
		return "split-pgs"
	}
	return fmt.Sprintf("TransitionKind(%d)", int(k))
}

// Transition records how one epoch was derived from its predecessor.
type Transition struct {
	Kind   TransitionKind
	OSD    wire.NodeID // AddOSD / RemoveOSD
	Factor int         // SplitPGs
}

// Move is one block relocation a transition requires.
type Move struct {
	Blk wire.BlockID
	// PG is the block's placement group under the new map (the cutover
	// unit of the migration engine).
	PG       int
	From, To wire.NodeID
}

// Epochs is the append-only chain of placement maps. Epoch 0 is the
// initial map; epoch i>0 was produced from epoch i-1 by Transitions()[i-1].
// Like Map it is pure computation: staging, cutover and commit semantics
// live with the map's owner (the MDS).
type Epochs struct {
	maps  []*Map
	trans []Transition
}

// NewEpochs starts a chain at epoch 0 with the given initial map.
func NewEpochs(initial *Map) *Epochs {
	return &Epochs{maps: []*Map{initial}}
}

// Epoch returns the newest epoch number.
func (e *Epochs) Epoch() uint64 { return uint64(len(e.maps) - 1) }

// Current returns the newest map.
func (e *Epochs) Current() *Map { return e.maps[len(e.maps)-1] }

// At returns the map of the given epoch.
func (e *Epochs) At(epoch uint64) *Map {
	if epoch >= uint64(len(e.maps)) {
		panic(fmt.Sprintf("placement: epoch %d out of range [0,%d]", epoch, len(e.maps)-1))
	}
	return e.maps[epoch]
}

// Transition returns the transition that produced epoch `to` (to >= 1).
func (e *Epochs) Transition(to uint64) Transition {
	if to == 0 || to >= uint64(len(e.maps)) {
		panic(fmt.Sprintf("placement: no transition produced epoch %d", to))
	}
	return e.trans[to-1]
}

// AddOSD derives a new epoch with id joined, returning the epoch number.
func (e *Epochs) AddOSD(id wire.NodeID) (uint64, error) {
	next, err := deriveAddOSD(e.Current(), id)
	if err != nil {
		return 0, err
	}
	e.maps = append(e.maps, next)
	e.trans = append(e.trans, Transition{Kind: TransAddOSD, OSD: id})
	return e.Epoch(), nil
}

// RemoveOSD derives a new epoch with id decommissioned.
func (e *Epochs) RemoveOSD(id wire.NodeID) (uint64, error) {
	next, err := deriveRemoveOSD(e.Current(), id)
	if err != nil {
		return 0, err
	}
	e.maps = append(e.maps, next)
	e.trans = append(e.trans, Transition{Kind: TransRemoveOSD, OSD: id})
	return e.Epoch(), nil
}

// SplitPGs derives a new epoch with factor× the PG count.
func (e *Epochs) SplitPGs(factor int) (uint64, error) {
	next, err := deriveSplitPGs(e.Current(), factor)
	if err != nil {
		return 0, err
	}
	e.maps = append(e.maps, next)
	e.trans = append(e.trans, Transition{Kind: TransSplitPGs, Factor: factor})
	return e.Epoch(), nil
}

// Diff computes the block moves the old→new transition requires for the
// given stripes: every (stripe, index) whose host differs between the two
// maps, tagged with its PG under the new map. Both maps are evaluated with
// no liveness filtering; the caller overlays any physical remaps it holds.
func Diff(old, new *Map, stripes []wire.StripeID) []Move {
	var out []Move
	for _, s := range stripes {
		po, err := old.Place(s, nil)
		if err != nil {
			panic("placement: diff old place: " + err.Error())
		}
		pn, err := new.Place(s, nil)
		if err != nil {
			panic("placement: diff new place: " + err.Error())
		}
		for i := range pn {
			if po[i] == pn[i] {
				continue
			}
			out = append(out, Move{
				Blk:  wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(i)},
				PG:   new.PGOf(s),
				From: po[i],
				To:   pn[i],
			})
		}
	}
	return out
}

// MinimalBound returns the minimal-remap lower bound on blocks that ANY
// placement scheme must move for the transition that produced epoch `to`,
// given the stripe population: an added OSD must receive its balanced
// share of the grown cluster's blocks, a removed OSD's blocks must all
// move somewhere, and a pure PG split requires no movement.
func (e *Epochs) MinimalBound(to uint64, stripes []wire.StripeID) float64 {
	tr := e.Transition(to)
	newMap := e.At(to)
	switch tr.Kind {
	case TransAddOSD:
		total := float64(len(stripes) * newMap.cfg.Width)
		return total / float64(len(newMap.cfg.OSDs))
	case TransRemoveOSD:
		oldMap := e.At(to - 1)
		n := 0
		for _, s := range stripes {
			p, err := oldMap.Place(s, nil)
			if err != nil {
				panic("placement: bound place: " + err.Error())
			}
			for _, id := range p {
				if id == tr.OSD {
					n++
				}
			}
		}
		return float64(n)
	case TransSplitPGs:
		return 0
	}
	return 0
}

// ranksBelow reports whether a ranks strictly below b in the PG's straw
// ordering (New's candidate sort: descending score, smaller ID on ties).
func (m *Map) ranksBelow(pg int, a, b wire.NodeID) bool {
	sa, sb := m.score(pg, a), m.score(pg, b)
	if sa != sb {
		return sa < sb
	}
	return a > b
}

// deriveAddOSD builds the successor map with id joined. Straw scores are a
// pure function of (Seed, PG, OSD), so every incumbent keeps its score; per
// PG the newcomer displaces the weakest current member's slot iff it
// outranks that member, and no other slot changes.
func deriveAddOSD(parent *Map, id wire.NodeID) (*Map, error) {
	cfg := parent.cfg
	cfg.OSDs = append(append([]wire.NodeID(nil), parent.cfg.OSDs...), id)
	next, err := New(cfg)
	if err != nil {
		return nil, err
	}
	members := make([][]wire.NodeID, cfg.PGs)
	for pg := 0; pg < cfg.PGs; pg++ {
		cur := append([]wire.NodeID(nil), parent.baseline(pg)...)
		weak := 0
		for i := 1; i < len(cur); i++ {
			if next.ranksBelow(pg, cur[i], cur[weak]) {
				weak = i
			}
		}
		if next.ranksBelow(pg, cur[weak], id) {
			cur[weak] = id
		}
		members[pg] = cur
	}
	next.members = members
	return next, nil
}

// deriveRemoveOSD builds the successor map with id decommissioned: in PGs
// whose member set contains id, its slot is taken by the best-ranked
// candidate not already a member; other PGs keep their assignment.
func deriveRemoveOSD(parent *Map, id wire.NodeID) (*Map, error) {
	cfg := parent.cfg
	rest := make([]wire.NodeID, 0, len(cfg.OSDs))
	for _, o := range cfg.OSDs {
		if o != id {
			rest = append(rest, o)
		}
	}
	if len(rest) == len(cfg.OSDs) {
		return nil, fmt.Errorf("placement: OSD %d not in the map", id)
	}
	cfg.OSDs = rest
	next, err := New(cfg)
	if err != nil {
		return nil, err
	}
	members := make([][]wire.NodeID, cfg.PGs)
	for pg := 0; pg < cfg.PGs; pg++ {
		cur := append([]wire.NodeID(nil), parent.baseline(pg)...)
		slot := -1
		in := make(map[wire.NodeID]bool, len(cur))
		for i, mem := range cur {
			in[mem] = true
			if mem == id {
				slot = i
			}
		}
		if slot >= 0 {
			picked := false
			for _, c := range next.cand[pg] {
				if !in[c] {
					cur[slot] = c
					picked = true
					break
				}
			}
			if !picked {
				// Unreachable: New guarantees Width <= len(rest) and cur
				// holds only Width-1 survivors from the new candidate set.
				return nil, fmt.Errorf("placement: PG %d has no replacement for OSD %d", pg, id)
			}
		}
		members[pg] = cur
	}
	next.members = members
	return next, nil
}

// deriveSplitPGs builds the successor map with factor× PGs. PGOf is modulo
// the PG count, so a stripe's child PG is congruent to its parent PG; each
// child inherits the parent's slot assignment and nothing moves.
func deriveSplitPGs(parent *Map, factor int) (*Map, error) {
	if factor < 2 {
		return nil, fmt.Errorf("placement: split factor %d < 2", factor)
	}
	cfg := parent.cfg
	oldPGs := cfg.PGs
	cfg.PGs = oldPGs * factor
	next, err := New(cfg)
	if err != nil {
		return nil, err
	}
	members := make([][]wire.NodeID, cfg.PGs)
	for pg := 0; pg < cfg.PGs; pg++ {
		members[pg] = append([]wire.NodeID(nil), parent.baseline(pg%oldPGs)...)
	}
	next.members = members
	return next, nil
}
