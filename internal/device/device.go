// Package device models block storage devices (SSD and HDD) for the
// simulated ECFS cluster.
//
// A Disk charges virtual time for every I/O according to a latency model
// with distinct sequential and random costs — the performance gap that every
// erasure-code update scheme in the TSUE paper is designed around — and
// records the op/volume/overwrite statistics reported in the paper's
// Table 1. SSDs additionally carry a page-mapped flash translation layer
// (FTL, see ftl.go) so NAND write amplification and erase counts are
// measured outputs, which is what the paper's lifespan claims rest on.
//
// Sequentiality is detected per zone: callers place each on-disk region
// (block area, each log pool, reserved parity-log space, ...) in its own
// zone, and an access is sequential when it starts where the previous access
// to that zone ended. This mirrors how an SSD's internal write buffering
// sees interleaved streams.
package device

import (
	"fmt"
	"time"

	"tsue/internal/obs"
	"tsue/internal/sim"
)

// Kind distinguishes device families.
type Kind int

const (
	SSD Kind = iota
	HDD
)

func (k Kind) String() string {
	if k == SSD {
		return "SSD"
	}
	return "HDD"
}

// Params is the device latency/bandwidth model.
type Params struct {
	SeqReadLat   time.Duration // fixed cost of a sequential read op
	SeqWriteLat  time.Duration // fixed cost of a sequential write op
	RandReadLat  time.Duration // fixed cost of a random read op
	RandWriteLat time.Duration // fixed cost of a random write op
	ReadBW       float64       // bytes/sec streaming read
	WriteBW      float64       // bytes/sec streaming write
	Parallelism  int           // internal concurrency (queue slots served at once)

	// SSD FTL geometry; ignored for HDD.
	PageSize   int64 // NAND page (program unit)
	BlockPages int   // pages per erase block
	Capacity   int64 // physical bytes (0 disables the FTL)
	OverProv   float64
}

// SSDParams returns the default SSD model: a datacenter NAND SSD of the
// class used on Chameleon nodes (§5.1). Random 4K ops cost several times a
// sequential op, per the paper's motivation.
func SSDParams() Params {
	return Params{
		SeqReadLat:   15 * time.Microsecond,
		SeqWriteLat:  20 * time.Microsecond,
		RandReadLat:  80 * time.Microsecond,
		RandWriteLat: 100 * time.Microsecond,
		ReadBW:       2.2e9,
		WriteBW:      1.1e9,
		Parallelism:  8,
		PageSize:     16 << 10,
		BlockPages:   256, // 4 MiB erase block
		Capacity:     0,   // set by the harness per experiment
		OverProv:     0.10,
	}
}

// HDDParams returns the default HDD model (7.2k RPM SATA): seek+rotation
// dominates random access; one op at a time.
func HDDParams() Params {
	return Params{
		SeqReadLat:   500 * time.Microsecond,
		SeqWriteLat:  500 * time.Microsecond,
		RandReadLat:  8500 * time.Microsecond,
		RandWriteLat: 9000 * time.Microsecond,
		ReadBW:       180e6,
		WriteBW:      160e6,
		Parallelism:  1,
	}
}

// Stats is a snapshot of device counters.
//
//lint:allow obsregistry(pre-registry snapshot struct of the device API; harness tables consume it directly)
type Stats struct {
	ReadOps, WriteOps         int64
	ReadBytes, WriteBytes     int64
	SeqReadOps, RandReadOps   int64
	SeqWriteOps, RandWriteOps int64
	OverwriteOps              int64
	OverwriteBytes            int64
	BusyTime                  time.Duration
	HostWriteBytes            int64 // bytes the host wrote to flash-backed zones
	NandWriteBytes            int64 // bytes physically programmed (>= host: write amp)
	NandReadBytes             int64 // internal RMW + GC relocation reads
	Erases                    int64 // erase-block erasures
}

// Add accumulates other into s (for cluster-wide aggregation).
func (s *Stats) Add(o Stats) {
	s.ReadOps += o.ReadOps
	s.WriteOps += o.WriteOps
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.SeqReadOps += o.SeqReadOps
	s.RandReadOps += o.RandReadOps
	s.SeqWriteOps += o.SeqWriteOps
	s.RandWriteOps += o.RandWriteOps
	s.OverwriteOps += o.OverwriteOps
	s.OverwriteBytes += o.OverwriteBytes
	s.BusyTime += o.BusyTime
	s.HostWriteBytes += o.HostWriteBytes
	s.NandWriteBytes += o.NandWriteBytes
	s.NandReadBytes += o.NandReadBytes
	s.Erases += o.Erases
}

// WriteAmp returns NAND-bytes-written / host-bytes-written (1.0 = none).
func (s Stats) WriteAmp() float64 {
	if s.HostWriteBytes == 0 {
		return 1
	}
	return float64(s.NandWriteBytes) / float64(s.HostWriteBytes)
}

// Disk is a simulated block device.
type Disk struct {
	name   string
	kind   Kind
	params Params
	res    *sim.Resource
	zones  []*zone
	stats  Stats
	ftl    *ftl
}

type zone struct {
	name    string
	lastEnd int64 // end offset of the previous access, -1 initially
	flash   bool  // participates in FTL wear accounting
}

// seqWindow: an access is sequential if it begins within this distance after
// the previous access to the same zone ended (tolerates small index gaps in
// append streams).
const seqWindow = 64 << 10

// New creates a disk bound to the simulation environment.
func New(e *sim.Env, name string, kind Kind, p Params) *Disk {
	if p.Parallelism < 1 {
		p.Parallelism = 1
	}
	d := &Disk{
		name:   name,
		kind:   kind,
		params: p,
		res:    e.NewResource("disk:"+name, p.Parallelism),
	}
	if kind == SSD && p.Capacity > 0 {
		d.ftl = newFTL(p.PageSize, p.BlockPages, p.Capacity, p.OverProv)
	}
	return d
}

// Name returns the device name.
func (d *Disk) Name() string { return d.name }

// Kind returns the device family.
func (d *Disk) Kind() Kind { return d.kind }

// NewZone registers a sequentiality-tracking zone and returns its handle.
// flash marks the zone as FTL-backed (all persistent zones on an SSD).
func (d *Disk) NewZone(name string, flash bool) int {
	d.zones = append(d.zones, &zone{name: name, lastEnd: -1, flash: flash})
	return len(d.zones) - 1
}

func (d *Disk) classify(z *zone, off int64) bool {
	seq := z.lastEnd >= 0 && off >= z.lastEnd && off-z.lastEnd <= seqWindow
	return seq
}

func (d *Disk) cost(seq, write bool, size int64) time.Duration {
	p := d.params
	var base time.Duration
	var bw float64
	switch {
	case write && seq:
		base, bw = p.SeqWriteLat, p.WriteBW
	case write:
		base, bw = p.RandWriteLat, p.WriteBW
	case seq:
		base, bw = p.SeqReadLat, p.ReadBW
	default:
		base, bw = p.RandReadLat, p.ReadBW
	}
	return base + time.Duration(float64(size)/bw*float64(time.Second))
}

// Read charges a read of size bytes at off within zone z.
func (d *Disk) Read(p *sim.Proc, z int, off, size int64) {
	if size <= 0 {
		return
	}
	zn := d.zones[z]
	seq := d.classify(zn, off)
	zn.lastEnd = off + size
	d.stats.ReadOps++
	d.stats.ReadBytes += size
	if seq {
		d.stats.SeqReadOps++
	} else {
		d.stats.RandReadOps++
	}
	c := d.cost(seq, false, size)
	d.stats.BusyTime += c
	fin := d.ioSpan(p, "dev:read:"+zn.name)
	d.res.Use(p, c)
	fin()
}

// Write charges a write of size bytes at off within zone z. overwrite marks
// in-place updates of previously written content (the paper's write
// penalty); log appends are not overwrites.
func (d *Disk) Write(p *sim.Proc, z int, off, size int64, overwrite bool) {
	if size <= 0 {
		return
	}
	zn := d.zones[z]
	seq := d.classify(zn, off)
	zn.lastEnd = off + size
	d.stats.WriteOps++
	d.stats.WriteBytes += size
	if seq {
		d.stats.SeqWriteOps++
	} else {
		d.stats.RandWriteOps++
	}
	if overwrite {
		d.stats.OverwriteOps++
		d.stats.OverwriteBytes += size
	}
	if d.ftl != nil && zn.flash {
		r := d.ftl.hostWrite(int64(z), zoneBase(z)+off, size)
		d.stats.HostWriteBytes += size
		d.stats.NandWriteBytes += r.nandWrite
		d.stats.NandReadBytes += r.nandRead
		d.stats.Erases += r.erases
	}
	c := d.cost(seq, true, size)
	d.stats.BusyTime += c
	fin := d.ioSpan(p, "dev:write:"+zn.name)
	d.res.Use(p, c)
	fin()
}

// ioSpan opens a device-stage span around one charged I/O (queueing in the
// disk resource included) when p runs under a live trace; no-op otherwise.
// An I/O issued under a journal-stage span (surrogate-journal persistence,
// engine log appends) inherits that stage, so journal time in a trace
// breakdown includes its own device cost rather than leaking it into the
// generic device bucket.
func (d *Disk) ioSpan(p *sim.Proc, name string) func() {
	a, ok := obs.FromProc(p)
	if !ok {
		return nopFinish
	}
	stage := obs.StageDevice
	if a.Stage() == obs.StageJournal {
		stage = obs.StageJournal
	}
	return obs.SpanOn(p, stage, name, 0)
}

var nopFinish = func() {}

// zoneBase maps each zone into a disjoint logical address range for the FTL.
func zoneBase(z int) int64 { return int64(z) << 44 }

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (FTL state is preserved).
func (d *Disk) ResetStats() { d.stats = Stats{} }

// Utilization returns busy-time / (elapsed * parallelism).
func (d *Disk) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(d.stats.BusyTime) / (float64(elapsed) * float64(d.params.Parallelism))
}

func (d *Disk) String() string {
	return fmt.Sprintf("%s(%s)", d.name, d.kind)
}
