package device

// ftl is a page-mapped, log-structured flash translation layer. Host writes
// are translated into page programs appended to the open erase block;
// overwriting a logical page invalidates its old physical page. When free
// erase blocks run low, a greedy garbage collector relocates the live pages
// of the most-invalid block and erases it. The FTL performs accounting only
// — wear (program/erase counts, write amplification) is a measured output —
// while I/O latency is charged by the Disk's latency model. Sub-page host
// writes cost a full page program plus an internal page read (read-modify-
// write), which is precisely why small random overwrites age NAND devices
// (paper §2.3.4).
type ftl struct {
	pageSize   int64
	blockPages int
	nblocks    int
	gcLow      int // GC when free blocks drop below this

	// mapping: logical page number -> physical page id (block*blockPages+idx),
	// -1 when unmapped.
	mapping map[int64]int32
	// owner: physical page id -> logical page (-1 = invalid/free)
	owner []int64
	valid []bool

	freeBlocks []int32
	openBlock  int32
	openIdx    int
	livePages  []int32 // per block live-page count

	// bufs models the drive's DRAM write buffer, one slot per zone
	// (stream): contiguous sub-page appends coalesce into a single page
	// program instead of reprogramming the tail page per write. This is
	// why sequential log appends age NAND far less than equal-volume
	// random sub-page overwrites.
	bufs map[int64]*pageBuf

	erases    int64
	nandWrite int64
	nandRead  int64
}

type pageBuf struct {
	lp  int64 // buffered logical page
	end int64 // bytes of the page covered so far
}

type ftlResult struct {
	nandWrite int64
	nandRead  int64
	erases    int64
}

func newFTL(pageSize int64, blockPages int, capacity int64, overProv float64) *ftl {
	if pageSize <= 0 {
		pageSize = 16 << 10
	}
	if blockPages <= 0 {
		blockPages = 256
	}
	phys := int64(float64(capacity) * (1 + overProv))
	nblocks := int(phys / (pageSize * int64(blockPages)))
	if nblocks < 4 {
		nblocks = 4
	}
	f := &ftl{
		pageSize:   pageSize,
		blockPages: blockPages,
		nblocks:    nblocks,
		gcLow:      2,
		mapping:    make(map[int64]int32),
		owner:      make([]int64, nblocks*blockPages),
		valid:      make([]bool, nblocks*blockPages),
		freeBlocks: make([]int32, 0, nblocks),
		livePages:  make([]int32, nblocks),
		bufs:       make(map[int64]*pageBuf),
	}
	for b := nblocks - 1; b >= 1; b-- {
		f.freeBlocks = append(f.freeBlocks, int32(b))
	}
	f.openBlock = 0
	return f
}

// hostWrite maps a host write of size bytes at logical offset off into page
// programs and returns the wear accounting deltas. The zone parameter keys
// the per-stream write buffer.
func (f *ftl) hostWrite(zone int64, off, size int64) ftlResult {
	var res ftlResult
	first := off / f.pageSize
	last := (off + size - 1) / f.pageSize
	buf, ok := f.bufs[zone]
	if !ok {
		buf = &pageBuf{lp: -1}
		f.bufs[zone] = buf
	}
	for lp := first; lp <= last; lp++ {
		pageStart := lp * f.pageSize
		wStart := off
		if wStart < pageStart {
			wStart = pageStart
		}
		wEnd := off + size
		if wEnd > pageStart+f.pageSize {
			wEnd = pageStart + f.pageSize
		}
		// Contiguous continuation of the stream's buffered tail page:
		// absorbed by the drive's write buffer, no extra program (the page
		// was charged in full when first touched).
		if lp == buf.lp && wStart == pageStart+buf.end {
			buf.end = wEnd - pageStart
			continue
		}
		// Partial page program of a mapped page requires reading its
		// current content (internal read-modify-write).
		partial := wStart > pageStart || wEnd < pageStart+f.pageSize
		if partial {
			if _, mapped := f.mapping[lp]; mapped {
				res.nandRead += f.pageSize
			}
		}
		f.programPage(lp, &res)
		buf.lp = lp
		buf.end = wEnd - pageStart
	}
	f.nandWrite += res.nandWrite
	f.nandRead += res.nandRead
	f.erases += res.erases
	return res
}

func (f *ftl) programPage(lp int64, res *ftlResult) {
	// Invalidate previous mapping.
	if old, ok := f.mapping[lp]; ok {
		f.valid[old] = false
		f.livePages[old/int32(f.blockPages)]--
	}
	pp := f.allocPage(res)
	f.mapping[lp] = pp
	f.owner[pp] = lp
	f.valid[pp] = true
	f.livePages[pp/int32(f.blockPages)]++
	res.nandWrite += f.pageSize
}

func (f *ftl) allocPage(res *ftlResult) int32 {
	if f.openIdx >= f.blockPages {
		f.openNext(res)
	}
	pp := f.openBlock*int32(f.blockPages) + int32(f.openIdx)
	f.openIdx++
	return pp
}

func (f *ftl) openNext(res *ftlResult) {
	for len(f.freeBlocks) <= f.gcLow {
		f.gc(res)
	}
	n := len(f.freeBlocks) - 1
	f.openBlock = f.freeBlocks[n]
	f.freeBlocks = f.freeBlocks[:n]
	f.openIdx = 0
}

// gc erases the block with the fewest live pages, relocating live pages into
// the open block first.
func (f *ftl) gc(res *ftlResult) {
	victim := int32(-1)
	best := int32(1 << 30)
	for b := 0; b < f.nblocks; b++ {
		if int32(b) == f.openBlock {
			continue
		}
		inFree := false
		for _, fb := range f.freeBlocks {
			if fb == int32(b) {
				inFree = true
				break
			}
		}
		if inFree {
			continue
		}
		if f.livePages[b] < best {
			best = f.livePages[b]
			victim = int32(b)
		}
	}
	if victim < 0 {
		panic("ftl: no GC victim (all blocks free or open)")
	}
	// Relocate live pages. Relocation consumes pages in the open block; if
	// the open block fills, recursion through allocPage->openNext is safe
	// because we erased nothing yet but freeBlocks > 0 is guaranteed by the
	// gcLow watermark (erase below adds one back each round).
	base := victim * int32(f.blockPages)
	for i := 0; i < f.blockPages; i++ {
		pp := base + int32(i)
		if !f.valid[pp] {
			continue
		}
		lp := f.owner[pp]
		res.nandRead += f.pageSize
		f.valid[pp] = false
		f.livePages[victim]--
		// Re-program into open block.
		npp := f.allocPage(res)
		f.mapping[lp] = npp
		f.owner[npp] = lp
		f.valid[npp] = true
		f.livePages[npp/int32(f.blockPages)]++
		res.nandWrite += f.pageSize
	}
	// Erase victim.
	f.livePages[victim] = 0
	f.freeBlocks = append(f.freeBlocks, victim)
	res.erases++
}

// liveBytes returns the number of currently mapped logical bytes.
func (f *ftl) liveBytes() int64 { return int64(len(f.mapping)) * f.pageSize }
