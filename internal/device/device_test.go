package device

import (
	"testing"
	"time"

	"tsue/internal/sim"
)

func runOne(t *testing.T, fn func(p *sim.Proc, d *Disk)) (Stats, time.Duration) {
	t.Helper()
	e := sim.NewEnv()
	d := New(e, "d0", SSD, SSDParams())
	e.Go("t", func(p *sim.Proc) { fn(p, d) })
	end := e.Run(0)
	e.Close()
	return d.Stats(), end
}

func TestSeqVsRandClassification(t *testing.T) {
	st, _ := runOne(t, func(p *sim.Proc, d *Disk) {
		z := d.NewZone("log", false)
		d.Write(p, z, 0, 4096, false)     // first access: random (no history)
		d.Write(p, z, 4096, 4096, false)  // sequential
		d.Write(p, z, 8192, 4096, false)  // sequential
		d.Write(p, z, 1<<20, 4096, false) // jump: random
	})
	if st.SeqWriteOps != 2 || st.RandWriteOps != 2 {
		t.Fatalf("seq=%d rand=%d, want 2/2", st.SeqWriteOps, st.RandWriteOps)
	}
}

func TestZonesIsolateSequentiality(t *testing.T) {
	st, _ := runOne(t, func(p *sim.Proc, d *Disk) {
		za := d.NewZone("a", false)
		zb := d.NewZone("b", false)
		// Interleaved appends to two zones must all be sequential after the
		// first access in each.
		for i := 0; i < 4; i++ {
			d.Write(p, za, int64(i)*4096, 4096, false)
			d.Write(p, zb, int64(i)*4096, 4096, false)
		}
	})
	if st.RandWriteOps != 2 { // only the two first-touches
		t.Fatalf("rand=%d, want 2", st.RandWriteOps)
	}
	if st.SeqWriteOps != 6 {
		t.Fatalf("seq=%d, want 6", st.SeqWriteOps)
	}
}

func TestRandomCostsMoreThanSeq(t *testing.T) {
	_, seqEnd := runOne(t, func(p *sim.Proc, d *Disk) {
		z := d.NewZone("z", false)
		for i := 0; i < 100; i++ {
			d.Write(p, z, int64(i)*4096, 4096, false)
		}
	})
	_, randEnd := runOne(t, func(p *sim.Proc, d *Disk) {
		z := d.NewZone("z", false)
		for i := 0; i < 100; i++ {
			d.Write(p, z, int64((i*7919)%100000)*4096, 4096, false)
		}
	})
	if randEnd < seqEnd*3 {
		t.Fatalf("random (%v) should be >=3x sequential (%v)", randEnd, seqEnd)
	}
}

func TestOverwriteAccounting(t *testing.T) {
	st, _ := runOne(t, func(p *sim.Proc, d *Disk) {
		z := d.NewZone("blk", false)
		d.Write(p, z, 0, 8192, false)
		d.Write(p, z, 0, 4096, true)
		d.Write(p, z, 4096, 4096, true)
	})
	if st.OverwriteOps != 2 || st.OverwriteBytes != 8192 {
		t.Fatalf("overwrites=%d/%d", st.OverwriteOps, st.OverwriteBytes)
	}
}

func TestParallelismLimitsThroughput(t *testing.T) {
	// 16 concurrent 4K random reads on parallelism-8 SSD take 2 service times.
	e := sim.NewEnv()
	par := SSDParams()
	par.RandReadLat = 100 * time.Microsecond
	par.ReadBW = 1e18 // negligible transfer term
	d := New(e, "d", SSD, par)
	z := d.NewZone("z", false)
	for i := 0; i < 16; i++ {
		i := i
		e.Go("r", func(p *sim.Proc) {
			d.Read(p, z, int64(i*1<<20), 4096)
		})
	}
	end := e.Run(0)
	if end != 200*time.Microsecond {
		t.Fatalf("end=%v want 200us", end)
	}
}

func TestHDDSingleQueue(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, "h", HDD, HDDParams())
	z := d.NewZone("z", false)
	for i := 0; i < 4; i++ {
		i := i
		e.Go("r", func(p *sim.Proc) {
			d.Read(p, z, int64(i)*1<<30, 4096)
		})
	}
	end := e.Run(0)
	// 4 random reads serialized: >= 4 * RandReadLat.
	if end < 4*HDDParams().RandReadLat {
		t.Fatalf("HDD did not serialize: %v", end)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ReadOps: 1, WriteBytes: 10, Erases: 2}
	b := Stats{ReadOps: 2, WriteBytes: 5, Erases: 1}
	a.Add(b)
	if a.ReadOps != 3 || a.WriteBytes != 15 || a.Erases != 3 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func newTestFTL(capacity int64) *ftl {
	return newFTL(4096, 16, capacity, 0.1)
}

func TestFTLSequentialFillNoGC(t *testing.T) {
	f := newTestFTL(1 << 20) // 1 MiB logical
	var total ftlResult
	for off := int64(0); off < 512<<10; off += 4096 {
		r := f.hostWrite(0, off, 4096)
		total.erases += r.erases
	}
	if total.erases != 0 {
		t.Fatalf("sequential fill under capacity caused %d erases", total.erases)
	}
	if f.liveBytes() != 512<<10 {
		t.Fatalf("liveBytes=%d", f.liveBytes())
	}
}

func TestFTLChurnTriggersGC(t *testing.T) {
	f := newTestFTL(256 << 10)
	var erases int64
	// Overwrite the same 64 KiB region many times: must trigger GC,
	// and live data must survive (mapping count constant).
	for round := 0; round < 200; round++ {
		for off := int64(0); off < 64<<10; off += 4096 {
			r := f.hostWrite(0, off, 4096)
			erases += r.erases
		}
	}
	if erases == 0 {
		t.Fatal("churn produced no erases")
	}
	if f.liveBytes() != 64<<10 {
		t.Fatalf("live data lost by GC: liveBytes=%d", f.liveBytes())
	}
}

func TestFTLSubPageWriteAmplifies(t *testing.T) {
	f := newFTL(16<<10, 16, 10<<20, 0.1)
	r := f.hostWrite(0, 0, 4096) // quarter page
	if r.nandWrite != 16<<10 {
		t.Fatalf("sub-page program wrote %d NAND bytes, want full page", r.nandWrite)
	}
}

func TestFTLWriteAmpGrowsWithRandomOverwrite(t *testing.T) {
	// Sequential large writes vs small random overwrites over the same
	// logical span: random must have strictly higher write amp.
	seq := newFTL(16<<10, 64, 8<<20, 0.1)
	var seqHost, seqNand int64
	for round := 0; round < 10; round++ {
		for off := int64(0); off < 6<<20; off += 256 << 10 {
			r := seq.hostWrite(0, off, 256<<10)
			seqHost += 256 << 10
			seqNand += r.nandWrite
		}
	}
	rnd := newFTL(16<<10, 64, 8<<20, 0.1)
	var rndHost, rndNand int64
	// Fill first.
	for off := int64(0); off < 6<<20; off += 256 << 10 {
		r := rnd.hostWrite(0, off, 256<<10)
		rndHost += 256 << 10
		rndNand += r.nandWrite
	}
	// Then scattered 4K overwrites.
	pos := int64(0)
	for i := 0; i < 2000; i++ {
		pos = (pos + 999*4096) % (6 << 20)
		r := rnd.hostWrite(1, pos, 4096)
		rndHost += 4096
		rndNand += r.nandWrite
	}
	seqWA := float64(seqNand) / float64(seqHost)
	rndWA := float64(rndNand) / float64(rndHost)
	if rndWA <= seqWA {
		t.Fatalf("random WA %.2f not greater than sequential WA %.2f", rndWA, seqWA)
	}
}

func TestDiskFTLIntegration(t *testing.T) {
	e := sim.NewEnv()
	par := SSDParams()
	par.Capacity = 1 << 20
	par.PageSize = 4096
	par.BlockPages = 16
	d := New(e, "d", SSD, par)
	z := d.NewZone("blk", true)
	e.Go("w", func(p *sim.Proc) {
		for round := 0; round < 50; round++ {
			for off := int64(0); off < 512<<10; off += 64 << 10 {
				d.Write(p, z, off, 64<<10, round > 0)
			}
		}
	})
	e.Run(0)
	st := d.Stats()
	if st.HostWriteBytes == 0 || st.NandWriteBytes < st.HostWriteBytes {
		t.Fatalf("FTL accounting missing: %+v", st)
	}
	if st.Erases == 0 {
		t.Fatal("expected erases from churn")
	}
}

func TestNonFlashZoneSkipsFTL(t *testing.T) {
	e := sim.NewEnv()
	par := SSDParams()
	par.Capacity = 1 << 20
	d := New(e, "d", SSD, par)
	z := d.NewZone("mem", false)
	e.Go("w", func(p *sim.Proc) {
		d.Write(p, z, 0, 4096, false)
	})
	e.Run(0)
	if d.Stats().HostWriteBytes != 0 {
		t.Fatal("non-flash zone hit the FTL")
	}
}

func TestUtilization(t *testing.T) {
	e := sim.NewEnv()
	par := SSDParams()
	par.Parallelism = 1
	par.RandWriteLat = time.Millisecond
	par.WriteBW = 1e18
	d := New(e, "d", SSD, par)
	z := d.NewZone("z", false)
	e.Go("w", func(p *sim.Proc) {
		d.Write(p, z, 1<<30, 1, false)
		p.Sleep(time.Millisecond) // idle
	})
	end := e.Run(0)
	u := d.Utilization(end)
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization=%f want ~0.5", u)
	}
}
