// Package wire defines the ECFS RPC message set and a compact binary codec.
//
// The simulated transport passes message values directly (charging the wire
// size to the network model); the TCP transport marshals them with the codec
// in codec.go. Both paths use PayloadSize for size accounting, so simulated
// and real network volumes agree.
package wire

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrChecksum is the sentinel for an end-to-end payload checksum mismatch:
// the bytes delivered are not the bytes summed at the source. Receivers
// surface it (directly or as an error string containing this text) instead
// of ever acting on — or returning — corrupt data.
var ErrChecksum = errors.New("wire: checksum mismatch")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the end-to-end payload digest carried by the data-bearing
// messages (CRC-32C). Checksum(nil) == 0, so empty payloads verify against
// a zero Sum.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// VerifySum checks data against a carried Sum.
func VerifySum(data []byte, sum uint32) error {
	if Checksum(data) != sum {
		return ErrChecksum
	}
	return nil
}

// ChecksumPair digests two payload slices under one CRC (a then b), for
// messages that carry two byte fields (ParixAppend's New and Orig): one Sum
// covers both, and a flip in either fails verification.
func ChecksumPair(a, b []byte) uint32 {
	return crc32.Update(crc32.Checksum(a, crcTable), crcTable, b)
}

// VerifySumPair checks a two-slice payload against a carried Sum.
func VerifySumPair(a, b []byte, sum uint32) error {
	if ChecksumPair(a, b) != sum {
		return ErrChecksum
	}
	return nil
}

// SummedPayload is implemented by the engine-internal payload messages. The
// OSD dispatch verifies it once, centrally, before any engine side effect —
// the engines themselves never see unverified bytes.
type SummedPayload interface {
	Msg
	// VerifyPayload re-checksums the payload against the carried Sum.
	VerifyPayload() error
}

// NodeID identifies a cluster node (MDS or OSD or client).
type NodeID int32

// BlockID names one block of one stripe of one file. Index < K are data
// blocks; K <= Index < K+M are parity blocks.
type BlockID struct {
	Ino    uint64
	Stripe uint32
	Index  uint16
}

func (b BlockID) String() string {
	return fmt.Sprintf("blk(%d/%d/%d)", b.Ino, b.Stripe, b.Index)
}

// StripeID names a stripe.
type StripeID struct {
	Ino    uint64
	Stripe uint32
}

// Stripe returns the stripe this block belongs to.
func (b BlockID) StripeID() StripeID { return StripeID{Ino: b.Ino, Stripe: b.Stripe} }

// Type enumerates message types.
type Type uint8

const (
	TAck Type = iota + 1
	TCreateFile
	TCreateResp
	TLookup
	TLookupResp
	TPutBlock
	TReadBlock
	TReadResp
	TUpdate
	TDeltaAppend
	TParixAppend
	TParityDelta
	TLogReplica
	TUnitDone
	TDrain
	THeartbeat
	TRecoverBlock
	TReplicaFetch
	TReplicaResp
	TDegradedUpdate
	TDegradedRead
	TJournalReplica
	TJournalFetch
	TReplayUpdate
	TSettle
	TPGLookup
	TEpochUpdate
	TEpochResp
	TMigrateBlock
	TPGCutover
	TMigrateLog
	TReplicaRetire
	TPGAbort
	TTransitionStatus
	TTransitionStatusResp
	TJournalAck
	TJournalFetchResp
	TAdmitOp
)

var typeNames = map[Type]string{
	TAck: "Ack", TCreateFile: "CreateFile", TCreateResp: "CreateResp",
	TLookup: "Lookup", TLookupResp: "LookupResp", TPutBlock: "PutBlock",
	TReadBlock: "ReadBlock", TReadResp: "ReadResp", TUpdate: "Update",
	TDeltaAppend: "DeltaAppend", TParixAppend: "ParixAppend",
	TParityDelta: "ParityDelta", TLogReplica: "LogReplica",
	TUnitDone: "UnitDone", TDrain: "Drain", THeartbeat: "Heartbeat",
	TRecoverBlock: "RecoverBlock", TReplicaFetch: "ReplicaFetch",
	TReplicaResp: "ReplicaResp", TDegradedUpdate: "DegradedUpdate",
	TDegradedRead: "DegradedRead", TJournalReplica: "JournalReplica",
	TJournalFetch: "JournalFetch", TReplayUpdate: "ReplayUpdate",
	TSettle: "Settle", TPGLookup: "PGLookup",
	TEpochUpdate: "EpochUpdate", TEpochResp: "EpochResp",
	TMigrateBlock: "MigrateBlock", TPGCutover: "PGCutover",
	TMigrateLog: "MigrateLog", TReplicaRetire: "ReplicaRetire",
	TPGAbort: "PGAbort", TTransitionStatus: "TransitionStatus",
	TTransitionStatusResp: "TransitionStatusResp",
	TJournalAck:           "JournalAck",
	TJournalFetchResp:     "JournalFetchResp",
	TAdmitOp:              "AdmitOp",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// headerSize models the per-message framing overhead (type, ids, lengths)
// charged on the simulated wire; the TCP codec uses the same framing.
const headerSize = 40

// Msg is implemented by every RPC message.
type Msg interface {
	Type() Type
	// PayloadSize is the marshaled payload length in bytes, used for
	// network bandwidth accounting and by the codec.
	PayloadSize() int
}

// SizeOf returns the total on-wire size of a message.
func SizeOf(m Msg) int64 { return int64(headerSize + m.PayloadSize()) }

// ---- tracing ----

// SpanCtx is the compact trace context piggybacked on payload-bearing
// messages by the observability plane (internal/obs): the trace id of the
// originating op, the id of the network span this message travels under,
// and the op kind. A zero Trace means "untraced" and forces the other
// fields to zero, so untraced messages have one canonical encoding. The
// context is always encoded (spanSize bytes), traced or not, so wire sizes
// — and therefore simulated network timing — are identical whether tracing
// is enabled or disabled.
type SpanCtx struct {
	Trace uint64
	Span  uint64
	Op    uint8
}

// spanSize is the encoded size of a SpanCtx.
const spanSize = 8 + 8 + 1

// Spanned is implemented by the messages that carry a SpanCtx: the netsim
// fabric stamps the context on traced sends and the receiving handler
// resumes it, which is what links a trace across nodes.
type Spanned interface {
	Msg
	// SpanRef exposes the carried context for stamping and resumption.
	SpanRef() *SpanCtx
}

// ---- generic ----

// Ack is the generic response; Err is empty on success.
type Ack struct {
	Err string
}

func (*Ack) Type() Type         { return TAck }
func (a *Ack) PayloadSize() int { return 2 + len(a.Err) }

// OK is a shared success ack (never mutated).
var OK = &Ack{}

// ---- metadata ----

// CreateFile asks the MDS to create a file covering the given stripe count.
type CreateFile struct {
	Name    string
	Stripes uint32
}

func (*CreateFile) Type() Type         { return TCreateFile }
func (c *CreateFile) PayloadSize() int { return 2 + len(c.Name) + 4 }

// CreateResp returns the assigned inode.
type CreateResp struct {
	Ino uint64
	Err string
}

func (*CreateResp) Type() Type         { return TCreateResp }
func (c *CreateResp) PayloadSize() int { return 8 + 2 + len(c.Err) }

// Lookup asks the MDS for the OSDs of a stripe.
type Lookup struct {
	Ino    uint64
	Stripe uint32
}

func (*Lookup) Type() Type       { return TLookup }
func (*Lookup) PayloadSize() int { return 12 }

// LookupResp carries the K+M block locations of a stripe (or of a whole
// placement group, when answering a PGLookup) plus the PG the MDS resolved
// them through — the PG-aware address clients cache and cite in telemetry.
// Epoch is the newest placement epoch the MDS has staged: clients cache it
// as their map view and carry it on Update/ReadBlock so OSDs can reject
// stale routing (see EpochUpdate).
type LookupResp struct {
	OSDs  []NodeID
	PG    uint32
	Epoch uint64
	Err   string
}

func (*LookupResp) Type() Type         { return TLookupResp }
func (l *LookupResp) PayloadSize() int { return 2 + 4*len(l.OSDs) + 4 + 8 + 2 + len(l.Err) }

// PGLookup asks the MDS for a placement group's member OSDs (slot order,
// before per-stripe role rotation). Answered with a LookupResp.
type PGLookup struct {
	PG uint32
}

func (*PGLookup) Type() Type       { return TPGLookup }
func (*PGLookup) PayloadSize() int { return 4 }

// Heartbeat is the OSD -> MDS liveness beacon. Misses reports how many
// consecutive earlier beacons failed to reach the MDS before this one got
// through — a partitioned-link signal the MDS folds into TransitionStatus
// and kill-report accounting instead of silently losing it.
type Heartbeat struct {
	From   NodeID
	Misses uint32
}

func (*Heartbeat) Type() Type       { return THeartbeat }
func (*Heartbeat) PayloadSize() int { return 4 + 4 }

// AdmitOp asks the MDS for admission of one foreground client op before the
// client performs it — the backpressure half of the open-loop load plane.
// The MDS runs its configured admission policy (token-bucket rate plus
// queue-depth limits) and answers with an Ack: empty Err admits the op, an
// overload Err bounces it back to the submitter as a retryable rejection.
type AdmitOp struct {
	Span SpanCtx
}

func (*AdmitOp) Type() Type          { return TAdmitOp }
func (*AdmitOp) PayloadSize() int    { return spanSize }
func (a *AdmitOp) SpanRef() *SpanCtx { return &a.Span }

// ---- block I/O ----

// PutBlock stores a full block (normal write path and recovery store).
// Sum is the CRC-32C of Data; the receiver verifies before storing.
type PutBlock struct {
	Blk  BlockID
	Data []byte
	Sum  uint32
	Span SpanCtx
}

func (*PutBlock) Type() Type          { return TPutBlock }
func (p *PutBlock) PayloadSize() int  { return 14 + 4 + len(p.Data) + 4 + spanSize }
func (p *PutBlock) SpanRef() *SpanCtx { return &p.Span }

// ReadBlock reads [Off, Off+Size) of a block. Raw bypasses the update
// engine's log overlays and returns the on-store bytes — used by recovery
// and block migration, which must see a version consistent with the
// (equally log-lagged) parity. Epoch is the placement epoch the client
// resolved the block's home under; a non-raw read whose epoch no longer
// matches the PG's authoritative epoch is rejected with ErrStaleEpoch so
// the client re-resolves (raw reads are server-internal and exempt).
type ReadBlock struct {
	Blk   BlockID
	Off   int64
	Size  int32
	Raw   bool
	Epoch uint64
	Span  SpanCtx
}

func (*ReadBlock) Type() Type          { return TReadBlock }
func (*ReadBlock) PayloadSize() int    { return 14 + 13 + 8 + spanSize }
func (b *ReadBlock) SpanRef() *SpanCtx { return &b.Span }

// ReadResp returns block data. Sum is the CRC-32C of Data, computed by the
// responder; consumers verify before trusting the bytes. It carries no
// SpanCtx: a response travels inside the requester's rpc span (netsim links
// the return hop to the call), so a second context would be redundant bytes
// on every read.
//
//lint:allow wireproto(response rides the requester's rpc span; netsim links the return hop without a carried context)
type ReadResp struct {
	Data []byte
	Err  string
	Sum  uint32
}

func (*ReadResp) Type() Type         { return TReadResp }
func (r *ReadResp) PayloadSize() int { return 4 + len(r.Data) + 2 + len(r.Err) + 4 }

// Update is a client update to the OSD hosting a data block. Epoch is the
// placement epoch the client resolved the route under (see ReadBlock).
// Sum is the CRC-32C of Data; the OSD verifies before any engine side
// effect, so a corrupted update is rejected rather than encoded into parity.
type Update struct {
	Blk   BlockID
	Off   int64
	Data  []byte
	Epoch uint64
	Sum   uint32
	Span  SpanCtx
}

func (*Update) Type() Type          { return TUpdate }
func (u *Update) PayloadSize() int  { return 14 + 8 + 4 + len(u.Data) + 8 + 4 + spanSize }
func (u *Update) SpanRef() *SpanCtx { return &u.Span }

// ---- engine-internal forwarding ----

// DeltaKind tags the content of a DeltaAppend.
type DeltaKind uint8

const (
	// KindParityDelta: Data already multiplied by the parity coefficient;
	// the receiver XORs it (FO applies in place, PL/PLR append to a log).
	KindParityDelta DeltaKind = iota + 1
	// KindDataDelta: raw data delta; the receiver multiplies per Eq. (2)/(5)
	// (TSUE DeltaLog, CoRD collector).
	KindDataDelta
)

// DeltaAppend forwards a delta for a data block's update toward a parity
// holder. Blk is the *data* block; ParityIdx selects which parity block of
// the stripe this is destined for (0..M-1). Replica marks the reliability
// copy (stored, not recycled).
type DeltaAppend struct {
	Blk       BlockID
	ParityIdx uint16
	Off       int64
	Data      []byte
	Kind      DeltaKind
	Replica   bool
	Sum       uint32 // CRC-32C of Data, verified before any engine side effect
	Span      SpanCtx
}

func (*DeltaAppend) Type() Type             { return TDeltaAppend }
func (d *DeltaAppend) PayloadSize() int     { return 14 + 2 + 8 + 4 + len(d.Data) + 2 + 4 + spanSize }
func (d *DeltaAppend) SpanRef() *SpanCtx    { return &d.Span }
func (d *DeltaAppend) VerifyPayload() error { return VerifySum(d.Data, d.Sum) }

// ParixAppend carries a PARIX speculative record: the new data and, on the
// first overwrite of a location, the original data.
type ParixAppend struct {
	Blk       BlockID
	ParityIdx uint16
	Off       int64
	New       []byte
	Orig      []byte // nil except on first overwrite
	Sum       uint32 // ChecksumPair(New, Orig), verified before any engine side effect
	Span      SpanCtx
}

func (*ParixAppend) Type() Type { return TParixAppend }
func (p *ParixAppend) PayloadSize() int {
	return 14 + 2 + 8 + 4 + len(p.New) + 4 + len(p.Orig) + 4 + spanSize
}
func (p *ParixAppend) SpanRef() *SpanCtx    { return &p.Span }
func (p *ParixAppend) VerifyPayload() error { return VerifySumPair(p.New, p.Orig, p.Sum) }

// ParityDelta carries a ready-to-XOR parity delta for the given parity
// block (TSUE DeltaLog recycle output, CoRD collector output).
type ParityDelta struct {
	Blk  BlockID // the parity block
	Off  int64
	Data []byte
	Sum  uint32 // CRC-32C of Data, verified before any engine side effect
	Span SpanCtx
}

func (*ParityDelta) Type() Type             { return TParityDelta }
func (p *ParityDelta) PayloadSize() int     { return 14 + 8 + 4 + len(p.Data) + 4 + spanSize }
func (p *ParityDelta) SpanRef() *SpanCtx    { return &p.Span }
func (p *ParityDelta) VerifyPayload() error { return VerifySum(p.Data, p.Sum) }

// LogReplica replicates one DataLog append to the replica holder.
type LogReplica struct {
	SrcNode NodeID
	Pool    uint16
	UnitSeq uint64
	Blk     BlockID
	Off     int64
	Data    []byte
	Sum     uint32 // CRC-32C of Data, verified before any engine side effect
	Span    SpanCtx
}

func (*LogReplica) Type() Type             { return TLogReplica }
func (l *LogReplica) PayloadSize() int     { return 4 + 2 + 8 + 14 + 8 + 4 + len(l.Data) + 4 + spanSize }
func (l *LogReplica) SpanRef() *SpanCtx    { return &l.Span }
func (l *LogReplica) VerifyPayload() error { return VerifySum(l.Data, l.Sum) }

// UnitDone tells the replica holder that a replicated unit was recycled and
// its copy can be dropped.
type UnitDone struct {
	SrcNode NodeID
	Pool    uint16
	UnitSeq uint64
}

func (*UnitDone) Type() Type       { return TUnitDone }
func (*UnitDone) PayloadSize() int { return 14 }

// Drain asks an OSD to flush all update-engine logs to quiescence.
type Drain struct{}

func (*Drain) Type() Type       { return TDrain }
func (*Drain) PayloadSize() int { return 0 }

// RecoverBlock asks an OSD to reconstruct and store one lost block, reading
// the surviving blocks of the stripe from its peers. Reencode marks a lost
// first-parity block whose engine buffered cross-parity deltas (TSUE's
// DeltaLog, CoRD's collector) that died with the node: the target then
// re-encodes ALL parity blocks of the stripe from the K data blocks and
// repairs the stale live ones in place.
type RecoverBlock struct {
	Blk      BlockID
	Reencode bool
	Span     SpanCtx
}

func (*RecoverBlock) Type() Type           { return TRecoverBlock }
func (*RecoverBlock) PayloadSize() int     { return 14 + 1 + spanSize }
func (rb *RecoverBlock) SpanRef() *SpanCtx { return &rb.Span }

// ReplicaItem is one unrecycled DataLog record replicated for reliability.
type ReplicaItem struct {
	Blk  BlockID
	Off  int64
	Data []byte
}

// ReplicaFetch asks an OSD for the replicated, unrecycled DataLog items it
// holds on behalf of the (failed) node.
type ReplicaFetch struct {
	Node NodeID
}

func (*ReplicaFetch) Type() Type       { return TReplicaFetch }
func (*ReplicaFetch) PayloadSize() int { return 4 }

// ReplicaResp returns the surviving log items, in original append order.
type ReplicaResp struct {
	Items []ReplicaItem
}

func (*ReplicaResp) Type() Type { return TReplicaResp }
func (r *ReplicaResp) PayloadSize() int {
	n := 4
	for _, it := range r.Items {
		n += 14 + 8 + 4 + len(it.Data)
	}
	return n
}

// ---- degraded mode ----

// DegradedUpdate routes a client update for a degraded stripe (one whose
// placement includes the failed node Failed) to the surrogate OSD, which
// journals it until the stripe is rebuilt and the journal is replayed.
// Sum is the CRC-32C of Data, verified by the surrogate before journaling.
type DegradedUpdate struct {
	Failed NodeID
	Blk    BlockID
	Off    int64
	Data   []byte
	Sum    uint32
	Span   SpanCtx
}

func (*DegradedUpdate) Type() Type          { return TDegradedUpdate }
func (d *DegradedUpdate) PayloadSize() int  { return 4 + 14 + 8 + 4 + len(d.Data) + 4 + spanSize }
func (d *DegradedUpdate) SpanRef() *SpanCtx { return &d.Span }

// DegradedRead asks the surrogate OSD for [Off, Off+Size) of a block in a
// degraded stripe. Lost blocks are reconstructed on the fly from surviving
// shards; live blocks are read from their home OSD; either way the
// surrogate's journal overlays newest-wins. Answered with a ReadResp.
type DegradedRead struct {
	Failed NodeID
	Blk    BlockID
	Off    int64
	Size   int32
	Span   SpanCtx
}

func (*DegradedRead) Type() Type          { return TDegradedRead }
func (*DegradedRead) PayloadSize() int    { return 4 + 14 + 8 + 4 + spanSize }
func (d *DegradedRead) SpanRef() *SpanCtx { return &d.Span }

// JournalReplica copies one surrogate-journal record to a member of the
// surrogate's fixed quorum holder set (durability of the degraded-update
// journal). Surrogate names the appending surrogate and Seq is its
// per-surrogate monotone append sequence (1, 2, ...), so a promotion can
// union holder copies by (Blk, Off, Seq) newest-wins. Answered with a
// JournalAck. Sum is the CRC-32C of Data, verified by the holder before it
// acknowledges durability — a corrupted replica must not count toward the
// quorum.
type JournalReplica struct {
	Failed    NodeID
	Surrogate NodeID
	Seq       uint64
	Blk       BlockID
	Off       int64
	Data      []byte
	Sum       uint32
	Span      SpanCtx
}

func (*JournalReplica) Type() Type { return TJournalReplica }
func (j *JournalReplica) PayloadSize() int {
	return 4 + 4 + 8 + 14 + 8 + 4 + len(j.Data) + 4 + spanSize
}
func (j *JournalReplica) SpanRef() *SpanCtx { return &j.Span }

// JournalAck acknowledges a JournalReplica append: the holder has the
// record durably (persisted to its journal zone). Seq echoes the append
// sequence so the surrogate can match acks to appends.
type JournalAck struct {
	Seq uint64
	Err string
}

func (*JournalAck) Type() Type         { return TJournalAck }
func (j *JournalAck) PayloadSize() int { return 8 + 2 + len(j.Err) }

// JournalFetch retrieves surrogate-journal state for the given failed node.
// Two modes share the message:
//
//   - Surrogate == 0: steal the receiver's own (primary) journal — it
//     returns all journaled items as a ReplicaResp in append order and
//     forgets them. Recovery's cutover loop calls this until empty.
//   - Surrogate != 0: non-destructive read-repair fetch — the receiver
//     returns the quorum-replicated records it holds on behalf of that
//     surrogate with Seq > FromSeq, as a JournalFetchResp. Promotion after
//     a surrogate death unions these ranges across all reachable holders.
type JournalFetch struct {
	Failed    NodeID
	Surrogate NodeID
	FromSeq   uint64
}

func (*JournalFetch) Type() Type       { return TJournalFetch }
func (*JournalFetch) PayloadSize() int { return 4 + 4 + 8 }

// JournalItem is one sequenced surrogate-journal record held by a quorum
// holder (the replicated counterpart of a journal append).
type JournalItem struct {
	Seq  uint64
	Blk  BlockID
	Off  int64
	Data []byte
}

// JournalFetchResp returns a holder's retained journal range for one
// (failed, surrogate) pair, in ascending Seq order.
type JournalFetchResp struct {
	Items []JournalItem
	Err   string
}

func (*JournalFetchResp) Type() Type { return TJournalFetchResp }
func (j *JournalFetchResp) PayloadSize() int {
	n := 4
	for _, it := range j.Items {
		n += 8 + 14 + 8 + 4 + len(it.Data)
	}
	return n + 2 + len(j.Err)
}

// ReplayUpdate carries one recovered log/journal record to the (possibly
// remapped) home OSD, which merges it through the engine's replay hook
// (update.Replay) rather than the foreground update path.
type ReplayUpdate struct {
	Blk  BlockID
	Off  int64
	Data []byte
	Sum  uint32 // CRC-32C of Data, verified before the replay hook runs
	Span SpanCtx
}

func (*ReplayUpdate) Type() Type             { return TReplayUpdate }
func (r *ReplayUpdate) PayloadSize() int     { return 14 + 8 + 4 + len(r.Data) + 4 + spanSize }
func (r *ReplayUpdate) SpanRef() *SpanCtx    { return &r.Span }
func (r *ReplayUpdate) VerifyPayload() error { return VerifySum(r.Data, r.Sum) }

// ---- placement epochs / rebalance ----

// EpochKind enumerates EpochUpdate operations.
type EpochKind uint8

const (
	// EpochStageAddOSD stages a new epoch with OSD joined. Staging begins a
	// transition: the MDS resolves per PG — PGs already cut over use the new
	// map, the rest the old — and OSDs start rejecting requests whose Epoch
	// does not match their PG's authoritative epoch.
	EpochStageAddOSD EpochKind = iota + 1
	// EpochStageRemoveOSD stages a new epoch with OSD decommissioned.
	EpochStageRemoveOSD
	// EpochStageSplitPGs stages a new epoch with Factor× the PG count.
	EpochStageSplitPGs
	// EpochCommit ends the transition: every PG has cut over and the staged
	// epoch becomes the committed one.
	EpochCommit
)

// EpochUpdate is the rebalance engine's control message to the MDS: stage a
// new placement epoch or commit the in-flight one. Answered with EpochResp.
type EpochUpdate struct {
	Kind   EpochKind
	OSD    NodeID
	Factor uint32
}

func (*EpochUpdate) Type() Type       { return TEpochUpdate }
func (*EpochUpdate) PayloadSize() int { return 1 + 4 + 4 }

// EpochResp returns the (staged or committed) epoch number.
type EpochResp struct {
	Epoch uint64
	Err   string
}

func (*EpochResp) Type() Type         { return TEpochResp }
func (e *EpochResp) PayloadSize() int { return 8 + 2 + len(e.Err) }

// MigrateBlock asks a block's NEW home to pull the raw block from its old
// home From and store it locally — the bulk-copy step of a PG migration.
// Reconstruct marks the failure-resolution variant: the old home is dead,
// so the new home rebuilds the block's content from K surviving stripe
// peers instead of pulling it (Reencode additionally repairs the stripe's
// whole parity set, exactly as RecoverBlock would, when the dead source
// may have torn it).
type MigrateBlock struct {
	Blk         BlockID
	From        NodeID
	Reconstruct bool
	Reencode    bool
}

func (*MigrateBlock) Type() Type       { return TMigrateBlock }
func (*MigrateBlock) PayloadSize() int { return 14 + 4 + 2 }

// PGCutover tells the MDS that one placement group's blocks (and logs) are
// in place at their new-epoch homes: the MDS atomically flips the PG's
// authoritative epoch, after which stale-epoch clients are bounced to
// re-resolve. It must be sent under the migration fence.
type PGCutover struct {
	PG    uint32
	Epoch uint64
}

func (*PGCutover) Type() Type       { return TPGCutover }
func (*PGCutover) PayloadSize() int { return 4 + 8 }

// MigrateLog asks a migrating block's OLD home to extract the replayable
// pure-overlay log records it still holds for the block (TSUE's active
// DataLog items; empty for in-place schemes, which drain instead). The
// records are returned as a ReplicaResp in append order, removed from the
// local log, and their reliability replicas are retired cluster-wide; the
// migration engine replays them at the new home via ReplayUpdate — the
// log-follows-block half of the cutover.
type MigrateLog struct {
	Blk BlockID
}

func (*MigrateLog) Type() Type       { return TMigrateLog }
func (*MigrateLog) PayloadSize() int { return 14 }

// ReplicaRetire tells a replica holder to drop every replicated, unrecycled
// DataLog item it keeps on behalf of Node for block Blk — sent after
// MigrateLog extracted those records, so a later failure of Node cannot
// replay stale pre-migration items over the block's new home.
type ReplicaRetire struct {
	Node NodeID
	Blk  BlockID
}

func (*ReplicaRetire) Type() Type       { return TReplicaRetire }
func (*ReplicaRetire) PayloadSize() int { return 4 + 14 }

// PGAbort tells the MDS that one placement group's migration was rolled
// back to the prior epoch: partially copied blocks at the staged-epoch
// destinations were retired and any extracted overlay was restored to the
// old homes, so the PG must keep resolving under the committed map. At
// commit time the abort becomes a physical remap (block stays at its old
// home) rather than a map change, mirroring how recovery overrides
// placement. It must name the in-flight staged epoch.
type PGAbort struct {
	PG    uint32
	Epoch uint64
}

func (*PGAbort) Type() Type       { return TPGAbort }
func (*PGAbort) PayloadSize() int { return 4 + 8 }

// TransitionStatus asks the MDS for the in-flight placement transition's
// per-PG state machine snapshot (harness, tests, operators). Answered with
// a TransitionStatusResp.
type TransitionStatus struct{}

func (*TransitionStatus) Type() Type       { return TTransitionStatus }
func (*TransitionStatus) PayloadSize() int { return 0 }

// PGStatus is one migrating PG's stage in a TransitionStatusResp. Stage
// values mirror cluster.PGStage (staged → copying → fenced → replaying →
// committed, or aborted).
type PGStatus struct {
	PG    uint32
	Stage uint8
}

// BeatStatus reports one OSD's heartbeat health as seen by the MDS: the
// cumulative count of missed (send-failed) beacons the OSD has reported.
type BeatStatus struct {
	OSD    NodeID
	Misses uint64
}

// TransitionStatusResp reports the transition state: InFlight says whether
// a transition exists at all; Staged/Committed are the epoch pair; PGs
// lists every migrating PG's current stage in ascending PG order. Beats
// lists, in ascending OSD order, every OSD that has reported missed
// heartbeats (partitioned-link accounting).
type TransitionStatusResp struct {
	InFlight  bool
	Staged    uint64
	Committed uint64
	PGs       []PGStatus
	Beats     []BeatStatus
	Err       string
}

func (*TransitionStatusResp) Type() Type { return TTransitionStatusResp }
func (t *TransitionStatusResp) PayloadSize() int {
	return 1 + 8 + 8 + 4 + 5*len(t.PGs) + 4 + 12*len(t.Beats) + 2 + len(t.Err)
}

// Settle asks an OSD to bring its raw block stores to stripe consistency
// with minimal merging: every engine drains the log state whose effects are
// already partially applied (delta/parity pipelines, lazy parity logs), but
// replayable pure-overlay state — TSUE's active DataLog units, which are
// replicated and replayed at recovery — is kept (§4.2), except state
// touching the stripes of the Failed node (0 = none): those raw shards
// feed reconstruction and must stay frozen through the degraded window.
type Settle struct {
	Failed NodeID
}

func (*Settle) Type() Type       { return TSettle }
func (*Settle) PayloadSize() int { return 4 }
