package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleMessages() []Msg {
	return []Msg{
		&Ack{},
		&Ack{Err: "boom"},
		&CreateFile{Name: "vol0", Stripes: 42},
		&CreateResp{Ino: 7, Err: ""},
		&Lookup{Ino: 9, Stripe: 3},
		&LookupResp{OSDs: []NodeID{1, 2, 3, 4}, PG: 17, Err: ""},
		&PGLookup{PG: 9},
		&Heartbeat{From: 11},
		&Heartbeat{From: 11, Misses: 3},
		&PutBlock{Blk: BlockID{1, 2, 3}, Data: []byte{9, 8, 7}},
		&PutBlock{Blk: BlockID{1, 2, 3}, Data: []byte{9, 8, 7}, Sum: Checksum([]byte{9, 8, 7})},
		&ReadBlock{Blk: BlockID{1, 2, 3}, Off: 4096, Size: 512},
		&ReadResp{Data: []byte{1, 2}, Err: ""},
		&ReadResp{Data: []byte{1, 2}, Err: "", Sum: Checksum([]byte{1, 2})},
		&Update{Blk: BlockID{5, 6, 7}, Off: 123, Data: []byte{0xde, 0xad}},
		&Update{Blk: BlockID{5, 6, 7}, Off: 123, Data: []byte{0xde, 0xad}, Sum: Checksum([]byte{0xde, 0xad})},
		&DeltaAppend{Blk: BlockID{1, 1, 0}, ParityIdx: 2, Off: 64, Data: []byte{1}, Kind: KindDataDelta, Replica: true, Sum: Checksum([]byte{1})},
		&DeltaAppend{Blk: BlockID{1, 1, 0}, ParityIdx: 0, Off: 0, Data: nil, Kind: KindParityDelta},
		&ParixAppend{Blk: BlockID{2, 3, 1}, ParityIdx: 1, Off: 8, New: []byte{5, 5}, Orig: []byte{4, 4}, Sum: ChecksumPair([]byte{5, 5}, []byte{4, 4})},
		&ParixAppend{Blk: BlockID{2, 3, 1}, ParityIdx: 1, Off: 8, New: []byte{5}, Orig: nil, Sum: ChecksumPair([]byte{5}, nil)},
		&ParityDelta{Blk: BlockID{2, 3, 8}, Off: 16, Data: []byte{1, 2, 3, 4}, Sum: Checksum([]byte{1, 2, 3, 4})},
		&LogReplica{SrcNode: 3, Pool: 1, UnitSeq: 99, Blk: BlockID{1, 0, 2}, Off: 77, Data: []byte{6}, Sum: Checksum([]byte{6})},
		&UnitDone{SrcNode: 3, Pool: 2, UnitSeq: 100},
		&Drain{},
		&RecoverBlock{Blk: BlockID{4, 4, 4}},
		&RecoverBlock{Blk: BlockID{4, 4, 6}, Reencode: true},
		&DegradedUpdate{Failed: 5, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7, 7}},
		&DegradedUpdate{Failed: 5, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7, 7}, Sum: Checksum([]byte{7, 7})},
		&DegradedRead{Failed: 5, Blk: BlockID{1, 2, 0}, Off: 512, Size: 128},
		&JournalReplica{Failed: 5, Surrogate: 2, Seq: 9, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7}},
		&JournalReplica{Failed: 5, Surrogate: 2, Seq: 9, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7}, Sum: Checksum([]byte{7})},
		&JournalAck{Seq: 9},
		&JournalAck{Seq: 0, Err: "zone full"},
		&JournalFetch{Failed: 5},
		&JournalFetch{Failed: 5, Surrogate: 2, FromSeq: 3},
		&JournalFetchResp{Items: []JournalItem{
			{Seq: 4, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7, 8}},
			{Seq: 5, Blk: BlockID{1, 3, 1}, Off: 0, Data: []byte{9}},
		}},
		&JournalFetchResp{Err: "not a holder"},
		&ReplayUpdate{Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{9, 9, 9}, Sum: Checksum([]byte{9, 9, 9})},
		&Settle{Failed: 3},
		&LookupResp{OSDs: []NodeID{4, 5}, PG: 3, Epoch: 2, Err: ""},
		&ReadBlock{Blk: BlockID{1, 2, 3}, Off: 64, Size: 32, Epoch: 7},
		&Update{Blk: BlockID{5, 6, 7}, Off: 123, Data: []byte{1}, Epoch: 9},
		&EpochUpdate{Kind: EpochStageAddOSD, OSD: 17},
		&EpochUpdate{Kind: EpochStageSplitPGs, Factor: 4},
		&EpochUpdate{Kind: EpochCommit},
		&EpochResp{Epoch: 3},
		&EpochResp{Err: "no transition"},
		&MigrateBlock{Blk: BlockID{2, 9, 4}, From: 6},
		&MigrateBlock{Blk: BlockID{2, 9, 4}, From: 6, Reconstruct: true, Reencode: true},
		&PGCutover{PG: 41, Epoch: 2},
		&MigrateLog{Blk: BlockID{2, 9, 4}},
		&ReplicaFetch{Node: 6},
		&ReplicaResp{},
		&ReplicaResp{Items: []ReplicaItem{
			{Blk: BlockID{2, 9, 4}, Off: 128, Data: []byte{3, 1}},
			{Blk: BlockID{2, 9, 5}, Off: 0, Data: []byte{4}},
		}},
		&ReplicaRetire{Node: 6, Blk: BlockID{2, 9, 4}},
		&PGAbort{PG: 41, Epoch: 2},
		&TransitionStatus{},
		&TransitionStatusResp{InFlight: true, Staged: 2, Committed: 1,
			PGs: []PGStatus{{PG: 3, Stage: 1}, {PG: 9, Stage: 5}}},
		&TransitionStatusResp{InFlight: true, Staged: 2, Committed: 1,
			PGs:   []PGStatus{{PG: 3, Stage: 1}},
			Beats: []BeatStatus{{OSD: 4, Misses: 2}, {OSD: 7, Misses: 11}}},
		&TransitionStatusResp{Err: "no transition"},
		&AdmitOp{},
		// Traced variants: every Spanned message round-trips its SpanCtx.
		&AdmitOp{Span: SpanCtx{Trace: 11, Span: 12, Op: 1}},
		&Update{Blk: BlockID{5, 6, 7}, Off: 123, Data: []byte{1}, Epoch: 9, Span: SpanCtx{Trace: 3, Span: 4, Op: 1}},
		&ReadBlock{Blk: BlockID{1, 2, 3}, Off: 64, Size: 32, Span: SpanCtx{Trace: 3, Span: 5, Op: 2}},
		&PutBlock{Blk: BlockID{1, 2, 3}, Data: []byte{9}, Span: SpanCtx{Trace: 8, Span: 1, Op: 1}},
		&DeltaAppend{Blk: BlockID{1, 1, 0}, ParityIdx: 2, Off: 64, Data: []byte{1}, Kind: KindDataDelta, Span: SpanCtx{Trace: 2, Span: 2, Op: 1}},
		&ParixAppend{Blk: BlockID{2, 3, 1}, ParityIdx: 1, Off: 8, New: []byte{5}, Span: SpanCtx{Trace: 2, Span: 3, Op: 1}},
		&ParityDelta{Blk: BlockID{2, 3, 8}, Off: 16, Data: []byte{1}, Span: SpanCtx{Trace: 2, Span: 4, Op: 1}},
		&LogReplica{SrcNode: 3, Pool: 1, UnitSeq: 99, Blk: BlockID{1, 0, 2}, Off: 77, Data: []byte{6}, Span: SpanCtx{Trace: 2, Span: 5, Op: 1}},
		&RecoverBlock{Blk: BlockID{4, 4, 4}, Span: SpanCtx{Trace: 6, Span: 6, Op: 5}},
		&DegradedUpdate{Failed: 5, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7}, Span: SpanCtx{Trace: 4, Span: 7, Op: 3}},
		&DegradedRead{Failed: 5, Blk: BlockID{1, 2, 0}, Off: 512, Size: 128, Span: SpanCtx{Trace: 4, Span: 8, Op: 4}},
		&JournalReplica{Failed: 5, Surrogate: 2, Seq: 9, Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{7}, Span: SpanCtx{Trace: 4, Span: 9, Op: 3}},
		&ReplayUpdate{Blk: BlockID{1, 2, 0}, Off: 512, Data: []byte{9}, Span: SpanCtx{Trace: 5, Span: 10, Op: 5}},
	}
}

// Compile-time check: the full set of payload-bearing messages on the traced
// paths implements Spanned.
var _ = []Spanned{
	(*AdmitOp)(nil), (*Update)(nil), (*ReadBlock)(nil), (*PutBlock)(nil),
	(*DeltaAppend)(nil), (*ParixAppend)(nil), (*ParityDelta)(nil),
	(*LogReplica)(nil), (*RecoverBlock)(nil), (*DegradedUpdate)(nil),
	(*DegradedRead)(nil), (*JournalReplica)(nil), (*ReplayUpdate)(nil),
}

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	buf := Marshal(nil, m)
	if buf[0] != byte(m.Type()) {
		t.Fatalf("frame type %d != %v", buf[0], m.Type())
	}
	plen := int(binary.LittleEndian.Uint32(buf[1:5]))
	if plen != len(buf)-5 {
		t.Fatalf("frame length %d != %d", plen, len(buf)-5)
	}
	if plen != m.PayloadSize() {
		t.Fatalf("%v PayloadSize %d != encoded %d", m.Type(), m.PayloadSize(), plen)
	}
	out, err := Unmarshal(m.Type(), buf[5:])
	if err != nil {
		t.Fatalf("unmarshal %v: %v", m.Type(), err)
	}
	return out
}

func TestRoundTripAll(t *testing.T) {
	for _, m := range sampleMessages() {
		out := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(m), normalize(out)) {
			t.Fatalf("%v round trip mismatch:\n in=%#v\nout=%#v", m.Type(), m, out)
		}
	}
}

// normalize maps nil byte slices to empty so DeepEqual tolerates the
// codec's empty-vs-nil distinction.
func normalize(m Msg) Msg {
	switch v := m.(type) {
	case *ParixAppend:
		c := *v
		if c.Orig == nil {
			c.Orig = []byte{}
		}
		if c.New == nil {
			c.New = []byte{}
		}
		return &c
	case *DeltaAppend:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *ReadResp:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *PutBlock:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *Update:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *ParityDelta:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *LogReplica:
		c := *v
		if c.Data == nil {
			c.Data = []byte{}
		}
		return &c
	case *LookupResp:
		c := *v
		if c.OSDs == nil {
			c.OSDs = []NodeID{}
		}
		return &c
	}
	return m
}

func TestUnmarshalTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		buf := Marshal(nil, m)
		payload := buf[5:]
		for cut := 0; cut < len(payload); cut++ {
			if _, err := Unmarshal(m.Type(), payload[:cut]); err == nil && cut < len(payload) {
				// Some prefixes may decode cleanly only if the full payload
				// was consumed; trailing check catches the rest.
				t.Fatalf("%v: truncation to %d/%d bytes not detected", m.Type(), cut, len(payload))
			}
		}
	}
}

func TestUnmarshalTrailingGarbage(t *testing.T) {
	buf := Marshal(nil, &Lookup{Ino: 1, Stripe: 2})
	payload := append(buf[5:], 0xff)
	if _, err := Unmarshal(TLookup, payload); err == nil {
		t.Fatal("trailing bytes not detected")
	}
}

func TestUnknownType(t *testing.T) {
	if _, err := Unmarshal(Type(200), nil); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestSizeOfIncludesHeader(t *testing.T) {
	m := &Update{Blk: BlockID{1, 2, 3}, Off: 0, Data: make([]byte, 100)}
	if SizeOf(m) != int64(headerSize+m.PayloadSize()) {
		t.Fatal("SizeOf wrong")
	}
}

func TestPayloadSizeMatchesEncodingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(ino uint64, stripe uint32, idx uint16, off int64, n uint8) bool {
		data := make([]byte, int(n))
		rng.Read(data)
		msgs := []Msg{
			&Update{Blk: BlockID{ino, stripe, idx}, Off: off, Data: data},
			&DeltaAppend{Blk: BlockID{ino, stripe, idx}, ParityIdx: 1, Off: off, Data: data, Kind: KindDataDelta},
			&ParityDelta{Blk: BlockID{ino, stripe, idx}, Off: off, Data: data},
		}
		for _, m := range msgs {
			buf := Marshal(nil, m)
			if len(buf)-5 != m.PayloadSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	buf := Marshal(prefix, &Drain{})
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("Marshal did not append")
	}
}

// TestSpanStrictDecode pins the SpanCtx canonical-encoding rule (the bool8
// idiom applied to the trace context): an untraced context must be all-zero
// on the wire, so nonzero Span/Op bytes under a zero Trace are rejected
// rather than decoded into a message that would re-encode differently.
func TestSpanStrictDecode(t *testing.T) {
	m := &AdmitOp{Span: SpanCtx{Trace: 7, Span: 9, Op: 2}}
	out := roundTrip(t, m).(*AdmitOp)
	if out.Span != m.Span {
		t.Fatalf("span round trip: got %+v want %+v", out.Span, m.Span)
	}
	// Zero the trace id in the encoded payload but keep the span id: the
	// decoder must reject the non-canonical frame.
	buf := Marshal(nil, m)
	payload := buf[5:]
	for i := 0; i < 8; i++ {
		payload[i] = 0
	}
	if _, err := Unmarshal(TAdmitOp, payload); err == nil {
		t.Fatal("nonzero span fields under zero trace id not rejected")
	}
	// The same rule holds at the tail of a data-bearing message.
	u := &Update{Blk: BlockID{1, 2, 3}, Data: []byte{1}, Span: SpanCtx{Trace: 5, Span: 6, Op: 1}}
	ubuf := Marshal(nil, u)
	up := ubuf[5:]
	for i := len(up) - 17; i < len(up)-9; i++ {
		up[i] = 0
	}
	if _, err := Unmarshal(TUpdate, up); err == nil {
		t.Fatal("Update: nonzero span fields under zero trace id not rejected")
	}
}

func TestChecksum(t *testing.T) {
	if Checksum(nil) != 0 {
		t.Fatal("Checksum(nil) != 0: empty payloads must verify against zero Sum")
	}
	data := []byte("two-stage update")
	sum := Checksum(data)
	if err := VerifySum(data, sum); err != nil {
		t.Fatalf("VerifySum on intact data: %v", err)
	}
	if err := VerifySum(nil, 0); err != nil {
		t.Fatalf("VerifySum on empty data: %v", err)
	}
	// Every single-byte flip must be detected.
	for i := range data {
		c := append([]byte(nil), data...)
		c[i] ^= 0x01
		if err := VerifySum(c, sum); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err=%v, want ErrChecksum", i, err)
		}
	}
}

func TestBlockIDStripe(t *testing.T) {
	b := BlockID{Ino: 3, Stripe: 9, Index: 2}
	if b.StripeID() != (StripeID{Ino: 3, Stripe: 9}) {
		t.Fatal("StripeID wrong")
	}
}
