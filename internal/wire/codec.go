package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame layout: [1B type][4B payload len][payload]. Within payloads, integers
// are little-endian; byte slices and strings are length-prefixed (u32 / u16).

// Marshal appends the framed encoding of m to buf and returns the result.
func Marshal(buf []byte, m Msg) []byte {
	buf = append(buf, byte(m.Type()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.PayloadSize()))
	start := len(buf)
	buf = marshalPayload(buf, m)
	if got := len(buf) - start; got != m.PayloadSize() {
		panic(fmt.Sprintf("wire: %v PayloadSize()=%d but encoded %d", m.Type(), m.PayloadSize(), got))
	}
	return buf
}

func putBlockID(buf []byte, b BlockID) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, b.Ino)
	buf = binary.LittleEndian.AppendUint32(buf, b.Stripe)
	return binary.LittleEndian.AppendUint16(buf, b.Index)
}

func putBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func putString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func putBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func putSpan(buf []byte, s SpanCtx) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, s.Trace)
	buf = binary.LittleEndian.AppendUint64(buf, s.Span)
	return append(buf, s.Op)
}

func marshalPayload(buf []byte, m Msg) []byte {
	switch v := m.(type) {
	case *Ack:
		return putString(buf, v.Err)
	case *CreateFile:
		buf = putString(buf, v.Name)
		return binary.LittleEndian.AppendUint32(buf, v.Stripes)
	case *CreateResp:
		buf = binary.LittleEndian.AppendUint64(buf, v.Ino)
		return putString(buf, v.Err)
	case *Lookup:
		buf = binary.LittleEndian.AppendUint64(buf, v.Ino)
		return binary.LittleEndian.AppendUint32(buf, v.Stripe)
	case *LookupResp:
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(v.OSDs)))
		for _, id := range v.OSDs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		}
		buf = binary.LittleEndian.AppendUint32(buf, v.PG)
		buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
		return putString(buf, v.Err)
	case *PGLookup:
		return binary.LittleEndian.AppendUint32(buf, v.PG)
	case *Heartbeat:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.From))
		return binary.LittleEndian.AppendUint32(buf, v.Misses)
	case *PutBlock:
		buf = putBlockID(buf, v.Blk)
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *ReadBlock:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Size))
		if v.Raw {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
		return putSpan(buf, v.Span)
	case *ReadResp:
		buf = putBytes(buf, v.Data)
		buf = putString(buf, v.Err)
		return binary.LittleEndian.AppendUint32(buf, v.Sum)
	case *Update:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *DeltaAppend:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint16(buf, v.ParityIdx)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = append(buf, byte(v.Kind))
		buf = putBool(buf, v.Replica)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *ParixAppend:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint16(buf, v.ParityIdx)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.New)
		buf = putBytes(buf, v.Orig)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *ParityDelta:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *LogReplica:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.SrcNode))
		buf = binary.LittleEndian.AppendUint16(buf, v.Pool)
		buf = binary.LittleEndian.AppendUint64(buf, v.UnitSeq)
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *UnitDone:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.SrcNode))
		buf = binary.LittleEndian.AppendUint16(buf, v.Pool)
		return binary.LittleEndian.AppendUint64(buf, v.UnitSeq)
	case *Drain:
		return buf
	case *RecoverBlock:
		buf = putBlockID(buf, v.Blk)
		buf = putBool(buf, v.Reencode)
		return putSpan(buf, v.Span)
	case *ReplicaFetch:
		return binary.LittleEndian.AppendUint32(buf, uint32(v.Node))
	case *ReplicaResp:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Items)))
		for _, it := range v.Items {
			buf = putBlockID(buf, it.Blk)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Off))
			buf = putBytes(buf, it.Data)
		}
		return buf
	case *DegradedUpdate:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Failed))
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *DegradedRead:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Failed))
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Size))
		return putSpan(buf, v.Span)
	case *JournalReplica:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Failed))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Surrogate))
		buf = binary.LittleEndian.AppendUint64(buf, v.Seq)
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *JournalAck:
		buf = binary.LittleEndian.AppendUint64(buf, v.Seq)
		return putString(buf, v.Err)
	case *JournalFetch:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Failed))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Surrogate))
		return binary.LittleEndian.AppendUint64(buf, v.FromSeq)
	case *JournalFetchResp:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Items)))
		for _, it := range v.Items {
			buf = binary.LittleEndian.AppendUint64(buf, it.Seq)
			buf = putBlockID(buf, it.Blk)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(it.Off))
			buf = putBytes(buf, it.Data)
		}
		return putString(buf, v.Err)
	case *ReplayUpdate:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Off))
		buf = putBytes(buf, v.Data)
		buf = binary.LittleEndian.AppendUint32(buf, v.Sum)
		return putSpan(buf, v.Span)
	case *Settle:
		return binary.LittleEndian.AppendUint32(buf, uint32(v.Failed))
	case *EpochUpdate:
		buf = append(buf, byte(v.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.OSD))
		return binary.LittleEndian.AppendUint32(buf, v.Factor)
	case *EpochResp:
		buf = binary.LittleEndian.AppendUint64(buf, v.Epoch)
		return putString(buf, v.Err)
	case *MigrateBlock:
		buf = putBlockID(buf, v.Blk)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.From))
		buf = putBool(buf, v.Reconstruct)
		return putBool(buf, v.Reencode)
	case *PGCutover:
		buf = binary.LittleEndian.AppendUint32(buf, v.PG)
		return binary.LittleEndian.AppendUint64(buf, v.Epoch)
	case *MigrateLog:
		return putBlockID(buf, v.Blk)
	case *ReplicaRetire:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Node))
		return putBlockID(buf, v.Blk)
	case *PGAbort:
		buf = binary.LittleEndian.AppendUint32(buf, v.PG)
		return binary.LittleEndian.AppendUint64(buf, v.Epoch)
	case *TransitionStatus:
		return buf
	case *AdmitOp:
		return putSpan(buf, v.Span)
	case *TransitionStatusResp:
		buf = putBool(buf, v.InFlight)
		buf = binary.LittleEndian.AppendUint64(buf, v.Staged)
		buf = binary.LittleEndian.AppendUint64(buf, v.Committed)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.PGs)))
		for _, pg := range v.PGs {
			buf = binary.LittleEndian.AppendUint32(buf, pg.PG)
			buf = append(buf, pg.Stage)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Beats)))
		for _, b := range v.Beats {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(b.OSD))
			buf = binary.LittleEndian.AppendUint64(buf, b.Misses)
		}
		return putString(buf, v.Err)
	default:
		panic(fmt.Sprintf("wire: cannot marshal %T", m))
	}
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at %d", what, r.pos)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.pos+1 > len(r.data) {
		r.fail("u8")
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.data) {
		r.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.data) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.data) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.pos+n > len(r.data) {
		r.fail("bytes")
		return nil
	}
	v := append([]byte(nil), r.data[r.pos:r.pos+n]...)
	r.pos += n
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || r.pos+n > len(r.data) {
		r.fail("string")
		return ""
	}
	v := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return v
}

// bool8 decodes a strict one-byte bool: only 0 and 1 are valid, so every
// successfully decoded message re-encodes to an identical frame (the
// round-trip invariant the fuzzer enforces).
func (r *reader) bool8() bool {
	v := r.u8()
	if r.err == nil && v > 1 {
		r.err = fmt.Errorf("wire: invalid bool byte %#x at %d", v, r.pos-1)
	}
	return v == 1
}

func (r *reader) blockID() BlockID {
	return BlockID{Ino: r.u64(), Stripe: r.u32(), Index: r.u16()}
}

// span decodes a strict SpanCtx: an untraced context (Trace == 0) must be
// all-zero, so every successfully decoded message re-encodes to an
// identical frame (same invariant as bool8).
func (r *reader) span() SpanCtx {
	s := SpanCtx{Trace: r.u64(), Span: r.u64(), Op: r.u8()}
	if r.err == nil && s.Trace == 0 && (s.Span != 0 || s.Op != 0) {
		r.err = fmt.Errorf("wire: nonzero span fields under zero trace id at %d", r.pos)
	}
	return s
}

// Unmarshal decodes one message from a payload of the given type.
func Unmarshal(t Type, payload []byte) (Msg, error) {
	r := &reader{data: payload}
	var m Msg
	switch t {
	case TAck:
		m = &Ack{Err: r.str()}
	case TCreateFile:
		m = &CreateFile{Name: r.str(), Stripes: r.u32()}
	case TCreateResp:
		m = &CreateResp{Ino: r.u64(), Err: r.str()}
	case TLookup:
		m = &Lookup{Ino: r.u64(), Stripe: r.u32()}
	case TLookupResp:
		n := int(r.u16())
		v := &LookupResp{OSDs: make([]NodeID, n)}
		for i := 0; i < n; i++ {
			v.OSDs[i] = NodeID(r.u32())
		}
		v.PG = r.u32()
		v.Epoch = r.u64()
		v.Err = r.str()
		m = v
	case TPGLookup:
		m = &PGLookup{PG: r.u32()}
	case THeartbeat:
		m = &Heartbeat{From: NodeID(r.u32()), Misses: r.u32()}
	case TPutBlock:
		m = &PutBlock{Blk: r.blockID(), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TReadBlock:
		m = &ReadBlock{Blk: r.blockID(), Off: int64(r.u64()), Size: int32(r.u32()), Raw: r.bool8(), Epoch: r.u64(), Span: r.span()}
	case TReadResp:
		m = &ReadResp{Data: r.bytes(), Err: r.str(), Sum: r.u32()}
	case TUpdate:
		m = &Update{Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Epoch: r.u64(), Sum: r.u32(), Span: r.span()}
	case TDeltaAppend:
		m = &DeltaAppend{Blk: r.blockID(), ParityIdx: r.u16(), Off: int64(r.u64()),
			Data: r.bytes(), Kind: DeltaKind(r.u8()), Replica: r.bool8(), Sum: r.u32(), Span: r.span()}
	case TParixAppend:
		m = &ParixAppend{Blk: r.blockID(), ParityIdx: r.u16(), Off: int64(r.u64()),
			New: r.bytes(), Orig: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TParityDelta:
		m = &ParityDelta{Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TLogReplica:
		m = &LogReplica{SrcNode: NodeID(r.u32()), Pool: r.u16(), UnitSeq: r.u64(),
			Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TUnitDone:
		m = &UnitDone{SrcNode: NodeID(r.u32()), Pool: r.u16(), UnitSeq: r.u64()}
	case TDrain:
		m = &Drain{}
	case TRecoverBlock:
		m = &RecoverBlock{Blk: r.blockID(), Reencode: r.bool8(), Span: r.span()}
	case TReplicaFetch:
		m = &ReplicaFetch{Node: NodeID(r.u32())}
	case TReplicaResp:
		n := int(r.u32())
		v := &ReplicaResp{}
		for i := 0; i < n && r.err == nil; i++ {
			v.Items = append(v.Items, ReplicaItem{Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes()})
		}
		m = v
	case TDegradedUpdate:
		m = &DegradedUpdate{Failed: NodeID(r.u32()), Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TDegradedRead:
		m = &DegradedRead{Failed: NodeID(r.u32()), Blk: r.blockID(), Off: int64(r.u64()), Size: int32(r.u32()), Span: r.span()}
	case TJournalReplica:
		m = &JournalReplica{Failed: NodeID(r.u32()), Surrogate: NodeID(r.u32()), Seq: r.u64(),
			Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TJournalAck:
		m = &JournalAck{Seq: r.u64(), Err: r.str()}
	case TJournalFetch:
		m = &JournalFetch{Failed: NodeID(r.u32()), Surrogate: NodeID(r.u32()), FromSeq: r.u64()}
	case TJournalFetchResp:
		n := int(r.u32())
		v := &JournalFetchResp{}
		for i := 0; i < n && r.err == nil; i++ {
			v.Items = append(v.Items, JournalItem{Seq: r.u64(), Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes()})
		}
		v.Err = r.str()
		m = v
	case TReplayUpdate:
		m = &ReplayUpdate{Blk: r.blockID(), Off: int64(r.u64()), Data: r.bytes(), Sum: r.u32(), Span: r.span()}
	case TSettle:
		m = &Settle{Failed: NodeID(r.u32())}
	case TEpochUpdate:
		m = &EpochUpdate{Kind: EpochKind(r.u8()), OSD: NodeID(r.u32()), Factor: r.u32()}
	case TEpochResp:
		m = &EpochResp{Epoch: r.u64(), Err: r.str()}
	case TMigrateBlock:
		m = &MigrateBlock{Blk: r.blockID(), From: NodeID(r.u32()), Reconstruct: r.bool8(), Reencode: r.bool8()}
	case TPGCutover:
		m = &PGCutover{PG: r.u32(), Epoch: r.u64()}
	case TMigrateLog:
		m = &MigrateLog{Blk: r.blockID()}
	case TReplicaRetire:
		m = &ReplicaRetire{Node: NodeID(r.u32()), Blk: r.blockID()}
	case TPGAbort:
		m = &PGAbort{PG: r.u32(), Epoch: r.u64()}
	case TTransitionStatus:
		m = &TransitionStatus{}
	case TAdmitOp:
		m = &AdmitOp{Span: r.span()}
	case TTransitionStatusResp:
		v := &TransitionStatusResp{InFlight: r.bool8(), Staged: r.u64(), Committed: r.u64()}
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			v.PGs = append(v.PGs, PGStatus{PG: r.u32(), Stage: r.u8()})
		}
		nb := int(r.u32())
		for i := 0; i < nb && r.err == nil; i++ {
			v.Beats = append(v.Beats, BeatStatus{OSD: NodeID(r.u32()), Misses: r.u64()})
		}
		v.Err = r.str()
		m = v
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("wire: %v payload has %d trailing bytes", t, len(payload)-r.pos)
	}
	return m, nil
}
