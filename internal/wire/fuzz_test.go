package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRoundTrip feeds arbitrary (type, payload) pairs to the
// decoder. Whatever decodes successfully must re-encode to an identical
// frame — the codec's round-trip invariant over the full message set,
// including the rebalance messages — and nothing may panic or over-read.
// The seed corpus covers every message type via sampleMessages.
func FuzzUnmarshalRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		buf := Marshal(nil, m)
		f.Add(buf[0], buf[5:])
	}
	// A few adversarial seeds: unknown type, truncated length prefixes,
	// giant declared slice counts.
	f.Add(byte(250), []byte{})
	f.Add(byte(TReplicaResp), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(byte(TLookupResp), []byte{0xff, 0xff, 1, 2})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		m, err := Unmarshal(Type(typ), payload)
		if err != nil {
			return // malformed input rejected: fine
		}
		if m.Type() != Type(typ) {
			t.Fatalf("decoded %v from frame type %d", m.Type(), typ)
		}
		re := Marshal(nil, m)
		if re[0] != typ {
			t.Fatalf("re-encode changed type: %d -> %d", typ, re[0])
		}
		if !bytes.Equal(re[5:], payload) {
			t.Fatalf("%v round trip not identical:\n in=%x\nout=%x", m.Type(), payload, re[5:])
		}
		if got := m.PayloadSize(); got != len(payload) {
			t.Fatalf("%v PayloadSize %d != payload %d", m.Type(), got, len(payload))
		}
	})
}

// FuzzMarshalUnmarshal drives the opposite direction with fuzz-picked field
// values on the size-parameterized messages: Marshal must produce exactly
// PayloadSize bytes and Unmarshal must invert it.
func FuzzMarshalUnmarshal(f *testing.F) {
	f.Add(uint64(1), uint32(2), uint16(3), int64(64), []byte{1, 2, 3}, uint64(5))
	f.Fuzz(func(t *testing.T, ino uint64, stripe uint32, idx uint16, off int64, data []byte, epoch uint64) {
		blk := BlockID{Ino: ino, Stripe: stripe, Index: idx}
		msgs := []Msg{
			&Update{Blk: blk, Off: off, Data: data, Epoch: epoch, Sum: Checksum(data)},
			&Update{Blk: blk, Off: off, Data: data, Epoch: epoch, Sum: uint32(epoch)},
			&PutBlock{Blk: blk, Data: data, Sum: Checksum(data)},
			&ReadResp{Data: data, Sum: uint32(stripe)},
			&DegradedUpdate{Failed: NodeID(stripe), Blk: blk, Off: off, Data: data, Sum: Checksum(data)},
			&ReadBlock{Blk: blk, Off: off, Size: int32(len(data)), Raw: epoch%2 == 0, Epoch: epoch},
			&MigrateBlock{Blk: blk, From: NodeID(stripe)},
			&MigrateLog{Blk: blk},
			&ReplicaRetire{Node: NodeID(idx), Blk: blk},
			&PGCutover{PG: stripe, Epoch: epoch},
			&EpochUpdate{Kind: EpochKind(idx), OSD: NodeID(stripe), Factor: uint32(off)},
			&ReplayUpdate{Blk: blk, Off: off, Data: data},
			&JournalReplica{Failed: NodeID(stripe), Surrogate: NodeID(idx), Seq: epoch, Blk: blk, Off: off, Data: data, Sum: Checksum(data)},
			&JournalAck{Seq: epoch},
			&JournalFetch{Failed: NodeID(stripe), Surrogate: NodeID(idx), FromSeq: epoch},
			&JournalFetchResp{Items: []JournalItem{{Seq: epoch, Blk: blk, Off: off, Data: data}}},
			&Heartbeat{From: NodeID(stripe), Misses: uint32(epoch)},
		}
		for _, m := range msgs {
			buf := Marshal(nil, m)
			if len(buf)-5 != m.PayloadSize() {
				t.Fatalf("%v: encoded %d bytes, PayloadSize %d", m.Type(), len(buf)-5, m.PayloadSize())
			}
			out, err := Unmarshal(m.Type(), buf[5:])
			if err != nil {
				t.Fatalf("%v: unmarshal own encoding: %v", m.Type(), err)
			}
			re := Marshal(nil, out)
			if !bytes.Equal(re, buf) {
				t.Fatalf("%v: round trip diverged", m.Type())
			}
		}
	})
}
