package obs

import (
	"fmt"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Span is one recorded interval of a trace: [Start, End] on the simulated
// clock, on one node, under one stage. Parent == 0 marks a root span.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Op     OpKind
	Stage  Stage
	Name   string
	Node   wire.NodeID
	Start  time.Duration
	End    time.Duration
}

// Tracer allocates trace/span ids from monotone counters, samples ops with
// a plain counter, and stamps times from the sim clock — every source of
// nondeterminism is excluded by construction, so the recorded span set is
// byte-identical across runs with the same seed.
type Tracer struct {
	env       *sim.Env
	sample    int
	seen      uint64
	nextTrace uint64
	nextSpan  uint64
	spans     []Span
}

// NewTracer returns a tracer for env. sample <= 0 disables it; sample == n
// starts a trace on every n-th StartOp call.
func NewTracer(env *sim.Env, sample int) *Tracer {
	if sample < 0 {
		sample = 0
	}
	return &Tracer{env: env, sample: sample}
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.sample > 0 }

// Spans returns every span recorded so far, in completion order.
func (t *Tracer) Spans() []Span { return t.spans }

// Active is the live handle to one span of one trace — the value carried in
// a Proc's span slot. The zero Active is the untraced handle: every method
// no-ops on it, so call sites never branch on whether tracing is on.
type Active struct {
	t     *Tracer
	trace uint64
	span  uint64
	op    OpKind
	stage Stage
}

// Traced reports whether the handle belongs to a live trace.
func (a Active) Traced() bool { return a.t != nil && a.trace != 0 }

// Stage returns the handle's span stage (StageClient when untraced).
func (a Active) Stage() Stage { return a.stage }

// Ctx returns the wire context for stamping an outgoing message.
func (a Active) Ctx() wire.SpanCtx {
	if !a.Traced() {
		return wire.SpanCtx{}
	}
	return wire.SpanCtx{Trace: a.trace, Span: a.span, Op: uint8(a.op)}
}

// Child opens a sub-span under a. The returned finish records the span with
// End = now; the Active it returns parents further descendants.
func (a Active) Child(stage Stage, name string, node wire.NodeID) (Active, func()) {
	if !a.Traced() {
		return Active{}, func() {}
	}
	t := a.t
	t.nextSpan++
	id := t.nextSpan
	start := t.env.Now()
	c := Active{t: t, trace: a.trace, span: id, op: a.op, stage: stage}
	return c, func() {
		t.spans = append(t.spans, Span{
			Trace: a.trace, ID: id, Parent: a.span, Op: a.op, Stage: stage,
			Name: name, Node: node, Start: start, End: t.env.Now(),
		})
	}
}

// StartOp begins a root span for one operation running on p, if sampled.
// The root becomes p's active span so everything downstream — RPCs, device
// charges, spawned children — links to it; finish records the root and
// restores p's previous attachment. Not-sampled ops get a no-op finish.
func (t *Tracer) StartOp(p *sim.Proc, op OpKind, node wire.NodeID, name string) func() {
	if !t.Enabled() {
		return func() {}
	}
	t.seen++
	if (t.seen-1)%uint64(t.sample) != 0 {
		return func() {}
	}
	t.nextTrace++
	t.nextSpan++
	tr, id := t.nextTrace, t.nextSpan
	start := t.env.Now()
	prev := p.Span()
	p.SetSpan(Active{t: t, trace: tr, span: id, op: op, stage: StageClient})
	return func() {
		p.SetSpan(prev)
		t.spans = append(t.spans, Span{
			Trace: tr, ID: id, Parent: 0, Op: op, Stage: StageClient,
			Name: name, Node: node, Start: start, End: t.env.Now(),
		})
	}
}

// Resume reconstructs the handle for a context that arrived on the wire,
// with the receiver-side stage.
func Resume(t *Tracer, c wire.SpanCtx, stage Stage) Active {
	if t == nil || c.Trace == 0 {
		return Active{}
	}
	return Active{t: t, trace: c.Trace, span: c.Span, op: OpKind(c.Op), stage: stage}
}

// FromProc returns p's active span handle, if p is running under a live
// trace.
func FromProc(p *sim.Proc) (Active, bool) {
	a, ok := p.Span().(Active)
	if !ok || !a.Traced() {
		return Active{}, false
	}
	return a, true
}

// SpanOn opens a child span of p's active trace, makes it p's active span,
// and returns a finish that records it and restores the previous
// attachment. No-op (and allocation-free) when p is untraced — the one-line
// hook used by the device layer, journal persistence, and engine codec
// sites.
func SpanOn(p *sim.Proc, stage Stage, name string, node wire.NodeID) func() {
	a, ok := FromProc(p)
	if !ok {
		return nopFinish
	}
	c, fin := a.Child(stage, name, node)
	p.SetSpan(c)
	return func() {
		p.SetSpan(a)
		fin()
	}
}

var nopFinish = func() {}

// Inherit copies parent's active span onto child — the spawn-site hook that
// carries a trace across sim.Env.Go (fan-out procs, hedged legs, recovery
// readers).
func Inherit(child, parent *sim.Proc) {
	if a, ok := FromProc(parent); ok {
		child.SetSpan(a)
	}
}

// Encode serializes spans with a fixed field order and decimal timestamps —
// the canonical form byte-compared by the determinism tests and emitted for
// offline inspection.
func Encode(spans []Span) []byte {
	var buf []byte
	for _, s := range spans {
		buf = fmt.Appendf(buf, "%d %d %d %s %s %q %d %d %d\n",
			s.Trace, s.ID, s.Parent, s.Op, s.Stage, s.Name, s.Node,
			int64(s.Start), int64(s.End))
	}
	return buf
}
