package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	// Exact below 2*histSub; bounded relative error above.
	for _, v := range []time.Duration{0, 1, 31, 32, 63} {
		b := bucketOf(v)
		if got := bucketUpper(b); got != v {
			t.Fatalf("small value %d: upper(bucket)=%d, want exact", v, got)
		}
	}
	rng := rand.New(rand.NewSource(7))
	prev := -1
	for i := 0; i < 200000; i++ {
		v := time.Duration(rng.Int63n(int64(72 * time.Hour)))
		b := bucketOf(v)
		u := bucketUpper(b)
		if u < v {
			t.Fatalf("upper %d < value %d", u, v)
		}
		if u > v+v/histSub {
			t.Fatalf("upper %d exceeds %d + 1/%d relative bound", u, v, histSub)
		}
		_ = prev
	}
	// Monotone: bucket index never decreases with the value.
	last := 0
	for v := time.Duration(0); v < 1<<22; v += 97 {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, last)
		}
		last = b
	}
	if b := bucketOf(time.Duration(math.MaxInt64)); b >= histBuckets {
		t.Fatalf("max duration bucket %d out of range %d", b, histBuckets)
	}
}

// exactNearestRank mirrors harness.LatencyDist: 1-based rank ceil(p*n) on
// the sorted samples.
func exactNearestRank(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestPercentileAgreesWithNearestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 10, 1000} {
		var h Histogram
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(3 * time.Second)))
			h.Record(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
			exact := exactNearestRank(samples, p)
			got := h.P(p)
			if got < exact || got > exact+exact/histSub {
				t.Fatalf("n=%d p=%v: hist %d vs exact %d (allowed +1/%d)",
					n, p, got, exact, histSub)
			}
		}
	}
}

func TestMergeAssociativeAndLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func(n int) (*Histogram, []time.Duration) {
		h := &Histogram{}
		var vals []time.Duration
		for i := 0; i < n; i++ {
			v := time.Duration(rng.Int63n(int64(time.Minute)))
			h.Record(v)
			vals = append(vals, v)
		}
		return h, vals
	}
	a, av := mk(100)
	b, bv := mk(7)
	c, cv := mk(931)

	merge := func(hs ...*Histogram) *Histogram {
		out := &Histogram{}
		for _, h := range hs {
			out.Merge(h)
		}
		return out
	}
	ab := merge(a, b)
	left := merge(ab, c) // (a+b)+c
	bc := merge(b, c)
	right := merge(a, bc) // a+(b+c)
	if !reflect.DeepEqual(left, right) {
		t.Fatal("merge is not associative")
	}
	// Merging equals recording everything into one histogram.
	all := &Histogram{}
	for _, v := range append(append(append([]time.Duration{}, av...), bv...), cv...) {
		all.Record(v)
	}
	if !reflect.DeepEqual(left, all) {
		t.Fatal("merged histogram differs from directly-recorded histogram")
	}
	if left.Count() != 1038 {
		t.Fatalf("count %d", left.Count())
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.P(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	h.Record(-5 * time.Second) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.P(1.0) != 0 {
		t.Fatal("negative sample must clamp to zero")
	}
	h.Record(10)
	if h.P(1.0) != 10 || h.Max() != 10 || h.Min() != 0 {
		t.Fatalf("P(1.0)=%d max=%d min=%d", h.P(1.0), h.Max(), h.Min())
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(2)
	if r.Counter("ops") != c || c.Value() != 3 {
		t.Fatal("counter get-or-create broken")
	}
	depth := 7
	r.GaugeFunc("depth", func() float64 { return float64(depth) })
	r.Observe("lat", 100*time.Millisecond)
	snap := r.Snapshot()
	if snap["ops"] != 3 || snap["depth"] != 7 {
		t.Fatalf("snapshot %v", snap)
	}
	names := r.Names()
	if !reflect.DeepEqual(names, []string{"depth", "ops"}) {
		t.Fatalf("names %v", names)
	}
	if !reflect.DeepEqual(r.HistogramNames(), []string{"lat"}) {
		t.Fatalf("hist names %v", r.HistogramNames())
	}
}
