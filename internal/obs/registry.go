package obs

import (
	"sort"
	"time"
)

// Registry is a name-keyed metrics store: monotone counters, lazily-read
// gauges, and log-bucketed histograms. Get-or-create lookups are map hits;
// hot paths cache the returned pointer once and pay a bare field increment
// per event, which is what makes migrating per-op stats here free.
//
// Everything runs under the sim kernel's one-runnable-goroutine discipline,
// so the registry needs no locking and no atomics.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotone event counter.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Counter returns the counter registered under name, creating it at zero on
// first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GaugeFunc registers a gauge read lazily at snapshot time — the thin-read
// bridge for state owned elsewhere (in-flight depths, sim drop counters,
// fabric corruption counts). Re-registering a name replaces the reader.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.gauges[name] = fn
}

// Histogram returns the histogram registered under name, creating it empty
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Observe records v into the named histogram (get-or-create convenience).
func (r *Registry) Observe(name string, v time.Duration) {
	r.Histogram(name).Record(v)
}

// Snapshot evaluates every counter and gauge into one name -> value map.
// Gauges are user callbacks, so they run in sorted-name order: a stateful
// gauge evaluated in map order would make snapshots seed-unstable.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.v)
	}
	names := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out[name] = r.gauges[name]()
	}
	return out
}

// HistogramNames returns the registered histogram names in sorted order.
func (r *Registry) HistogramNames() []string {
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Names returns the registered counter and gauge names in sorted order —
// the deterministic iteration order for dumps.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		if _, dup := r.counters[name]; !dup {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
