package obs

import (
	"bytes"
	"testing"
	"time"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// runTracedWorkload drives a tiny deterministic sim under a tracer: two
// sampled ops, each with nested rpc/device children crossing a spawned
// child proc.
func runTracedWorkload(t *testing.T, sample int) []Span {
	t.Helper()
	env := sim.NewEnv()
	tr := NewTracer(env, sample)
	for i := 0; i < 4; i++ {
		env.Go("op", func(p *sim.Proc) {
			fin := tr.StartOp(p, OpUpdate, 100, "op:update")
			rpcFin := SpanOn(p, StageNetwork, "rpc:Update", 3)
			p.Sleep(2 * time.Millisecond)
			devFin := SpanOn(p, StageDevice, "dev:write", 3)
			p.Sleep(5 * time.Millisecond)
			devFin()
			// Fan out a child proc that inherits the trace.
			child := env.Go("fanout", func(cp *sim.Proc) {
				cfin := SpanOn(cp, StageService, "fanout-leg", 4)
				cp.Sleep(time.Millisecond)
				cfin()
			})
			Inherit(child, p)
			p.Sleep(3 * time.Millisecond)
			rpcFin()
			fin()
		})
	}
	env.Run(0)
	env.Close()
	return tr.Spans()
}

func TestTraceDeterminism(t *testing.T) {
	a := Encode(runTracedWorkload(t, 2))
	b := Encode(runTracedWorkload(t, 2))
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ:\n%s\nvs\n%s", a, b)
	}
}

func TestSamplingCountsOps(t *testing.T) {
	spans := runTracedWorkload(t, 2)
	tvs := GroupTraces(spans)
	if len(tvs) != 2 {
		t.Fatalf("sample=2 over 4 ops: %d traces, want 2", len(tvs))
	}
	if spans2 := runTracedWorkload(t, 0); len(spans2) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(spans2))
	}
}

func TestBreakdownSumsExactly(t *testing.T) {
	for _, tv := range GroupTraces(runTracedWorkload(t, 1)) {
		bd := tv.Breakdown()
		var sum time.Duration
		for _, d := range bd {
			sum += d
		}
		if sum != tv.Duration() {
			t.Fatalf("trace %d: stage sum %v != e2e %v (breakdown %v)",
				tv.Trace, sum, tv.Duration(), bd)
		}
		// Deepest-wins: the 5ms device span and the 1ms fan-out leg nested
		// in the 10ms rpc span must be charged to their own stages, and the
		// rpc keeps only what nothing deeper covers.
		if bd[StageDevice] != 5*time.Millisecond {
			t.Fatalf("device stage %v, want 5ms", bd[StageDevice])
		}
		if bd[StageService] != time.Millisecond {
			t.Fatalf("service stage %v, want 1ms", bd[StageService])
		}
		if bd[StageNetwork] != 4*time.Millisecond {
			t.Fatalf("network stage %v, want 4ms (rpc minus nested spans)", bd[StageNetwork])
		}
	}
}

func TestDominantAndTopSignatures(t *testing.T) {
	tvs := GroupTraces(runTracedWorkload(t, 1))
	if len(tvs) == 0 {
		t.Fatal("no traces")
	}
	sig, d := tvs[0].Dominant()
	if sig != "device:dev:write" || d != 5*time.Millisecond {
		t.Fatalf("dominant %q %v, want device:dev:write 5ms", sig, d)
	}
	top := TopSignatures(tvs, 0, 3)
	if len(top) == 0 || top[0].Sig != "device:dev:write" || top[0].N != len(tvs) {
		t.Fatalf("top signatures %v", top)
	}
	if got := TopSignatures(tvs, time.Hour, 3); len(got) != 0 {
		t.Fatalf("threshold above every e2e still returned %v", got)
	}
}

func TestResumeLinksRemoteSpans(t *testing.T) {
	env := sim.NewEnv()
	tr := NewTracer(env, 1)
	var childSpan Span
	env.Go("client", func(p *sim.Proc) {
		fin := tr.StartOp(p, OpRead, 1, "op:read")
		a, _ := FromProc(p)
		rpc, rpcFin := a.Child(RPCStage(wire.TReadBlock), "rpc:ReadBlock", 2)
		ctx := rpc.Ctx()
		// "Remote side": resume from the wire context.
		h := Resume(tr, ctx, HandlerStage(wire.TReadBlock))
		_, hFin := h.Child(StageDevice, "dev:read", 2)
		p.Sleep(time.Millisecond)
		hFin()
		rpcFin()
		fin()
	})
	env.Run(0)
	env.Close()
	for _, s := range tr.Spans() {
		if s.Name == "dev:read" {
			childSpan = s
		}
	}
	if childSpan.ID == 0 {
		t.Fatal("remote child span not recorded")
	}
	tvs := GroupTraces(tr.Spans())
	if len(tvs) != 1 || len(tvs[0].Spans) != 3 {
		t.Fatalf("trace grouping: %+v", tvs)
	}
	if bd := tvs[0].Breakdown(); bd[StageDevice] != time.Millisecond {
		t.Fatalf("device %v, want 1ms", bd[StageDevice])
	}
	// Admission/journal RPCs classify away from the generic network stage.
	if RPCStage(wire.TAdmitOp) != StageAdmission || HandlerStage(wire.TJournalReplica) != StageJournal {
		t.Fatal("RPC stage classification broken")
	}
}

func TestSamplerStops(t *testing.T) {
	env := sim.NewEnv()
	ticks := 0
	s := StartSampler(env, time.Second, func(now time.Duration) {
		ticks++
		if ticks == 3 {
			// Stop from inside a tick: the loop must wind down and the
			// drain below must terminate.
		}
	})
	env.After(3500*time.Millisecond, func() { s.Stop() })
	env.Run(0)
	env.Close()
	if ticks != 3 {
		t.Fatalf("ticks %d, want 3 (1s, 2s, 3s then stopped at 3.5s)", ticks)
	}
}
