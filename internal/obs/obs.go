// Package obs is the sim-time observability plane: a unified metrics
// registry (counters, gauges, mergeable log-bucketed histograms) and a
// deterministic distributed tracer.
//
// Traces are built from spans stamped off the simulated clock, with span
// and trace ids drawn from monotone counters and sampling decided by an op
// counter — no wall clock and no randomness — so a trace set is a pure
// function of the workload seed. The trace context travels on wire
// messages as wire.SpanCtx (always encoded, traced or not, so enabling
// tracing never changes message sizes or simulated timing) and across
// process spawns through the opaque sim.Proc span slot.
//
// Stage attribution (views.go) turns a trace into a per-stage latency
// breakdown whose stage sums equal the op's end-to-end duration exactly:
// every elementary interval of the root span is charged to the deepest
// span active there.
package obs

import (
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// OpKind classifies the operation a trace was started for. The zero value
// OpNone marks "no kind" (and the untraced wire context).
type OpKind uint8

const (
	OpNone OpKind = iota
	// OpUpdate is a foreground client block update.
	OpUpdate
	// OpRead is a foreground client block read.
	OpRead
	// OpDegradedUpdate is a client update routed to a surrogate journal.
	OpDegradedUpdate
	// OpDegradedRead is a client read served through degraded-mode
	// reconstruction (including hedged retries).
	OpDegradedRead
	// OpRecovery is a background block reconstruction.
	OpRecovery
	// OpRecycle is a background log-recycle pass (TSUE DeltaLog/DataLog,
	// CoRD collector, PL/PLR log drain).
	OpRecycle

	// NOpKinds bounds the enum.
	NOpKinds
)

var opNames = [NOpKinds]string{
	"none", "update", "read", "degraded-update", "degraded-read",
	"recovery", "recycle",
}

func (k OpKind) String() string {
	if k < NOpKinds {
		return opNames[k]
	}
	return "op?"
}

// Stage classifies where an interval of an op's lifetime was spent. Spans
// carry a stage; the breakdown sweep charges each instant of a trace to the
// stage of the deepest span covering it.
type Stage uint8

const (
	// StageClient is submitter-side residual time: the root span's own
	// stage, winning whatever no deeper span covers (gate waits, retry
	// pauses, overload backoff between admission attempts).
	StageClient Stage = iota
	// StageAdmission is time spent obtaining admission from the MDS
	// (the AdmitOp round trip, including its network cost).
	StageAdmission
	// StageNetwork is RPC time outside any deeper stage: transfer,
	// propagation, and NIC queueing.
	StageNetwork
	// StageService is handler time on the receiving node outside any
	// deeper stage.
	StageService
	// StageJournal is log/journal persistence: surrogate-journal appends
	// and their quorum replication, and engine log-append device writes.
	StageJournal
	// StageCodec is erasure-coding compute (delta computation, parity
	// folds). The simulator charges device and network time but no codec
	// CPU, so codec spans are typically zero-width markers; they still
	// appear in traces so hop counts are visible.
	StageCodec
	// StageDevice is time charged by the disk model.
	StageDevice

	// NStages bounds the enum.
	NStages
)

var stageNames = [NStages]string{
	"client", "admission", "network", "service", "journal", "codec", "device",
}

func (s Stage) String() string {
	if s < NStages {
		return stageNames[s]
	}
	return "stage?"
}

// RPCStage classifies a traced RPC's wire span by message type: admission
// and journal-replication round trips are charged to their own stages, all
// other traffic to the network stage.
func RPCStage(t wire.Type) Stage {
	switch t {
	case wire.TAdmitOp:
		return StageAdmission
	case wire.TJournalReplica:
		return StageJournal
	default:
		return StageNetwork
	}
}

// HandlerStage classifies a traced RPC's receiver-side handler span.
func HandlerStage(t wire.Type) Stage {
	switch t {
	case wire.TAdmitOp:
		return StageAdmission
	case wire.TJournalReplica:
		return StageJournal
	default:
		return StageService
	}
}

// Obs bundles one simulator's observability plane: the metrics registry and
// the tracer. Both are always usable; a trace sample of 0 leaves the tracer
// disabled (StartOp and span helpers become no-ops) without changing any
// simulated behavior.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// New builds the plane for env. traceSample <= 0 disables tracing;
// traceSample == n traces every n-th sampled op.
func New(env *sim.Env, traceSample int) *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(env, traceSample)}
}
