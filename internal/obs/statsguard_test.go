package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStatsGuard is the vet-style registry gate: the obs registry is the
// one place new operational stats live, so no package outside internal/obs
// may (a) import sync/atomic — the sim kernel's one-runnable-goroutine
// discipline makes atomics either dead weight or a sign of state the
// registry should own — or (b) declare a new bare `...Stats struct`
// counter bag. Both lists below are frozen at the structs/packages that
// predate the registry; growing either is a review decision, not a drive-by.
func TestStatsGuard(t *testing.T) {
	root := moduleRoot(t)

	// Host-parallel codec kernels coordinate worker goroutines outside the
	// sim kernel; they are compute, not stats.
	atomicOK := map[string]bool{
		"internal/gf256": true,
		"internal/rs":    true,
	}
	// Pre-registry result carriers: each is a point-in-time snapshot struct
	// returned to the harness, not a live counter bag.
	statsOK := map[string]bool{
		"internal/trace/Stats":            true,
		"internal/update/LayerStats":      true,
		"internal/logpool/Stats":          true,
		"internal/device/Stats":           true,
		"internal/cluster/AdmissionStats": true,
		"internal/netsim/Stats":           true,
	}

	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		pkgDir := filepath.ToSlash(filepath.Dir(rel))
		if pkgDir == "internal/obs" {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "sync/atomic" && !atomicOK[pkgDir] {
				t.Errorf("%s imports sync/atomic: the sim kernel is single-runnable, and counters belong on the obs registry", rel)
			}
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				if !strings.HasSuffix(ts.Name.Name, "Stats") {
					continue
				}
				if !statsOK[pkgDir+"/"+ts.Name.Name] {
					t.Errorf("%s declares new stats struct %s: register counters/gauges/histograms on the obs registry instead", rel, ts.Name.Name)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the package directory to the go.mod root.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}
