package obs

import (
	"os"
	"path/filepath"
	"testing"

	"tsue/internal/lint/simvet"
)

// TestStatsGuard is the vet-style registry gate: the obs registry is the one
// place new operational stats live. It is now a thin wrapper over the simvet
// obsregistry analyzer (internal/lint/simvet), which flags sync/atomic
// imports and new `...Stats` structs outside internal/obs. The frozen
// allowlists that used to live here are gone: the handful of pre-registry
// snapshot structs and below-the-kernel atomics carry explicit, justified
// //lint:allow obsregistry(...) annotations at their declarations, so the
// exemption sits next to the code it excuses and rots with it.
func TestStatsGuard(t *testing.T) {
	root := moduleRoot(t)
	diags, err := simvet.CheckModule(root, []*simvet.Analyzer{simvet.ObsregistryAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Error(d.String())
	}
}

// moduleRoot walks up from the package directory to the go.mod root.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}
