package obs

import (
	"math"
	"math/bits"
	"time"
)

// histSubBits sets the histogram resolution: 1<<histSubBits sub-buckets per
// power of two, bounding the relative quantile error below 1/2^histSubBits
// (~3.1% at 5 bits).
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets covers every non-negative int64 duration: buckets
	// 0..2*histSub-1 hold exact values, then histSub buckets per octave.
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Histogram is a mergeable log-bucketed duration histogram. Record is a
// couple of bit operations plus a slice increment, cheap enough for the
// per-op path; Merge adds bucket counts, so merging is exact and
// associative (unlike merging precomputed percentiles). Quantiles come back
// as the upper bound of the nearest-rank bucket: for a true nearest-rank
// value x, x <= P <= x + x/histSub (exact below 2*histSub ns).
type Histogram struct {
	counts   []uint64 // allocated on first Record
	n        uint64
	sum      time.Duration
	min, max time.Duration
}

func bucketOf(v time.Duration) int {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	if u < 2*histSub {
		return int(u)
	}
	l := bits.Len64(u) // 2^(l-1) <= u < 2^l, l >= histSubBits+2
	shift := l - histSubBits - 1
	return (l-histSubBits)*histSub + int(u>>shift) - histSub
}

// bucketUpper returns the largest value mapping to bucket b.
func bucketUpper(b int) time.Duration {
	if b < 2*histSub {
		return time.Duration(b)
	}
	o := b / histSub
	s := b % histSub
	shift := o - 1
	return time.Duration((uint64(histSub+s+1) << shift) - 1)
}

// Record adds one sample (negative values clamp to zero).
func (h *Histogram) Record(v time.Duration) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	h.counts[bucketOf(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() time.Duration { return h.max }

// Mean returns the average recorded sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// P returns the p-quantile (0 < p <= 1) under the same nearest-rank rule as
// harness.LatencyDist — rank ceil(p*n), 1-based — reported as the upper
// bound of the bucket holding that rank. Returns 0 when empty.
func (h *Histogram) P(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(b)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge folds o into h (bucket-count addition — exact and associative).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}
