package obs

import (
	"time"

	"tsue/internal/sim"
)

// Sampler drives a collection callback at a fixed virtual-time period —
// the `sim.Sched`-compatible way to turn instantaneous state (NIC queue
// lengths, resource busy time) into periodic gauges and histograms, since
// each tick is an ordinary env event that any scheduler advances in global
// timestamp order.
//
// A sampler keeps the event queue nonempty by design, so it MUST be
// Stop()ed before the final drain (an unbounded Env.Run would otherwise
// never terminate).
type Sampler struct {
	env     *sim.Env
	period  time.Duration
	fn      func(now time.Duration)
	stopped bool
}

// StartSampler begins sampling: fn fires every period of virtual time,
// starting one period from now, until Stop.
func StartSampler(env *sim.Env, period time.Duration, fn func(now time.Duration)) *Sampler {
	if period <= 0 {
		panic("obs: sampler period must be positive")
	}
	s := &Sampler{env: env, period: period, fn: fn}
	s.tick()
	return s
}

func (s *Sampler) tick() {
	s.env.After(s.period, func() {
		if s.stopped {
			return
		}
		s.fn(s.env.Now())
		s.tick()
	})
}

// Stop cancels future ticks (the already-scheduled one fires as a no-op).
func (s *Sampler) Stop() { s.stopped = true }
