package obs

import (
	"sort"
	"time"
)

// TraceView is one assembled trace: the root span plus every descendant.
type TraceView struct {
	Trace uint64
	Op    OpKind
	Root  Span
	Spans []Span // root included, in recorded order
}

// Duration is the trace's end-to-end time (the root span's extent).
func (tv *TraceView) Duration() time.Duration { return tv.Root.End - tv.Root.Start }

// GroupTraces assembles spans (any order) into complete traces, ascending
// by trace id. Traces with no root span (e.g. a background child that
// outlived the harness snapshot) are dropped.
func GroupTraces(spans []Span) []TraceView {
	byTrace := make(map[uint64]*TraceView)
	var order []uint64
	for _, s := range spans {
		tv, ok := byTrace[s.Trace]
		if !ok {
			tv = &TraceView{Trace: s.Trace, Op: s.Op}
			byTrace[s.Trace] = tv
			order = append(order, s.Trace)
		}
		if s.Parent == 0 {
			tv.Root = s
			tv.Op = s.Op
		}
		tv.Spans = append(tv.Spans, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]TraceView, 0, len(order))
	for _, id := range order {
		if tv := byTrace[id]; tv.Root.ID != 0 {
			out = append(out, *tv)
		}
	}
	return out
}

// sweepEntry is one span prepared for the interval sweep.
type sweepEntry struct {
	span  Span
	depth int
	excl  time.Duration // exclusive time won in the sweep
}

// sweep performs the interval attribution: the root's extent is cut at
// every span boundary and each elementary interval is charged to the
// deepest span covering it (ties: latest End, then highest ID). Because
// every interval has exactly one winner (the root covers everything), the
// per-span exclusive times — and hence the per-stage sums — add up to the
// root duration exactly.
func (tv *TraceView) sweep() []sweepEntry {
	depth := make(map[uint64]int, len(tv.Spans))
	parent := make(map[uint64]uint64, len(tv.Spans))
	for _, s := range tv.Spans {
		parent[s.ID] = s.Parent
	}
	var depthOf func(id uint64) int
	depthOf = func(id uint64) int {
		if d, ok := depth[id]; ok {
			return d
		}
		p := parent[id]
		d := 0
		if p != 0 {
			if _, known := parent[p]; known {
				d = depthOf(p) + 1
			} else {
				// Parent span not captured (e.g. recorded after the
				// snapshot): hang directly under the root.
				d = 1
			}
		}
		depth[id] = d
		return d
	}

	entries := make([]sweepEntry, 0, len(tv.Spans))
	cuts := make([]time.Duration, 0, 2*len(tv.Spans))
	lo, hi := tv.Root.Start, tv.Root.End
	for _, s := range tv.Spans {
		e := sweepEntry{span: s, depth: depthOf(s.ID)}
		// Clip to the root extent; spans entirely outside contribute no
		// boundaries and can never win an interval.
		if e.span.Start < lo {
			e.span.Start = lo
		}
		if e.span.End > hi {
			e.span.End = hi
		}
		entries = append(entries, e)
		if e.span.Start < e.span.End {
			cuts = append(cuts, e.span.Start, e.span.End)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	prev := time.Duration(-1)
	for _, cut := range cuts {
		if cut == prev {
			continue
		}
		if prev >= lo && cut > prev {
			// Elementary interval [prev, cut): pick the winner.
			win := -1
			for i := range entries {
				e := &entries[i]
				if e.span.Start > prev || e.span.End < cut {
					continue
				}
				if win < 0 {
					win = i
					continue
				}
				w := &entries[win]
				if e.depth != w.depth {
					if e.depth > w.depth {
						win = i
					}
					continue
				}
				if e.span.End != w.span.End {
					if e.span.End > w.span.End {
						win = i
					}
					continue
				}
				if e.span.ID > w.span.ID {
					win = i
				}
			}
			if win >= 0 {
				entries[win].excl += cut - prev
			}
		}
		prev = cut
	}
	return entries
}

// Breakdown attributes every instant of the op's end-to-end time to exactly
// one stage. Summing the result reproduces Duration() exactly.
func (tv *TraceView) Breakdown() [NStages]time.Duration {
	var out [NStages]time.Duration
	for _, e := range tv.sweep() {
		if e.span.Stage < NStages {
			out[e.span.Stage] += e.excl
		}
	}
	return out
}

// Dominant returns the critical hop: the node-independent signature
// ("stage:name") of the span that won the most exclusive time, and that
// time. Ties break toward the deeper, later, higher-id span, matching the
// sweep's own ordering.
func (tv *TraceView) Dominant() (string, time.Duration) {
	best := -1
	entries := tv.sweep()
	for i := range entries {
		if best < 0 || entries[i].excl > entries[best].excl {
			best = i
		}
	}
	if best < 0 {
		return "", 0
	}
	e := entries[best]
	return e.span.Stage.String() + ":" + e.span.Name, e.excl
}

// SigCount is one critical-path signature with its occurrence count.
type SigCount struct {
	Sig string
	N   int
}

// TopSignatures ranks the dominant-hop signatures of the traces whose
// end-to-end duration is at least thresh, returning up to k entries by
// descending count (signature ascending on ties — deterministic).
func TopSignatures(tvs []TraceView, thresh time.Duration, k int) []SigCount {
	counts := make(map[string]int)
	for i := range tvs {
		if tvs[i].Duration() < thresh {
			continue
		}
		sig, _ := tvs[i].Dominant()
		if sig != "" {
			counts[sig]++
		}
	}
	out := make([]SigCount, 0, len(counts))
	for sig, n := range counts {
		out = append(out, SigCount{Sig: sig, N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Sig < out[j].Sig
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
