package trace

import (
	"bytes"
	"strings"
	"testing"
)

const ws = 256 << 20

func TestAliCloudMatchesPaperStats(t *testing.T) {
	g := MustGenerator(AliCloud(ws), 1)
	st := ComputeStats(g.Gen(50000), ws)
	// Paper §2.1: 75% updates; 46% of updates 4K; 60% <=16K.
	if st.WriteRatio < 0.73 || st.WriteRatio > 0.77 {
		t.Fatalf("ali write ratio %.3f, want ~0.75", st.WriteRatio)
	}
	if st.Le4K < 0.42 || st.Le4K > 0.50 {
		t.Fatalf("ali <=4K %.3f, want ~0.46", st.Le4K)
	}
	if st.Le16K < 0.56 || st.Le16K > 0.64 {
		t.Fatalf("ali <=16K %.3f, want ~0.60", st.Le16K)
	}
}

func TestTenCloudMatchesPaperStats(t *testing.T) {
	g := MustGenerator(TenCloud(ws), 2)
	st := ComputeStats(g.Gen(50000), ws)
	// Paper §2.1: 69% updates; 69% 4K; 88% <=16K.
	if st.WriteRatio < 0.67 || st.WriteRatio > 0.71 {
		t.Fatalf("ten write ratio %.3f, want ~0.69", st.WriteRatio)
	}
	if st.Le4K < 0.65 || st.Le4K > 0.73 {
		t.Fatalf("ten <=4K %.3f, want ~0.69", st.Le4K)
	}
	if st.Le16K < 0.84 || st.Le16K > 0.92 {
		t.Fatalf("ten <=16K %.3f, want ~0.88", st.Le16K)
	}
}

func TestTenCloudTighterLocalityThanAli(t *testing.T) {
	ali := ComputeStats(MustGenerator(AliCloud(ws), 3).Gen(30000), ws)
	ten := ComputeStats(MustGenerator(TenCloud(ws), 3).Gen(30000), ws)
	if ten.TouchedFrac >= ali.TouchedFrac {
		t.Fatalf("ten touched %.4f not tighter than ali %.4f", ten.TouchedFrac, ali.TouchedFrac)
	}
}

func TestTenCloudSmallTouchedFraction(t *testing.T) {
	// Paper §2.3.3: most Ten-Cloud datasets process <5% of their volume.
	// The hot set alone is 4%; the cold tail adds a few percent at this op
	// count, so assert the working set stays an order of magnitude below
	// uniform coverage.
	g := MustGenerator(TenCloud(1<<30), 4)
	st := ComputeStats(g.Gen(20000), 1<<30)
	if st.TouchedFrac > 0.11 {
		t.Fatalf("ten-cloud touched fraction %.4f, want < 0.11", st.TouchedFrac)
	}
}

func TestAllMSRVolumes(t *testing.T) {
	for _, vol := range MSRVolumes() {
		p, err := MSR(vol, ws)
		if err != nil {
			t.Fatal(err)
		}
		g := MustGenerator(p, 5)
		st := ComputeStats(g.Gen(20000), ws)
		if st.WriteRatio < p.UpdateRatio-0.03 || st.WriteRatio > p.UpdateRatio+0.03 {
			t.Fatalf("%s write ratio %.3f, want ~%.2f", vol, st.WriteRatio, p.UpdateRatio)
		}
	}
}

func TestMSRUnknownVolume(t *testing.T) {
	if _, err := MSR("nope", ws); err == nil {
		t.Fatal("unknown volume accepted")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := MustGenerator(AliCloud(ws), 7).Gen(1000)
	b := MustGenerator(AliCloud(ws), 7).Gen(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := MustGenerator(AliCloud(ws), 8).Gen(1000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestOpsStayInBounds(t *testing.T) {
	g := MustGenerator(TenCloud(8<<20), 9)
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Off < 0 || op.Off+int64(op.Size) > 8<<20 {
			t.Fatalf("op %d out of bounds: %+v", i, op)
		}
		if op.Size <= 0 {
			t.Fatalf("op %d empty: %+v", i, op)
		}
	}
}

func TestSequentialRuns(t *testing.T) {
	p := AliCloud(ws)
	p.SeqRun = 1.0 // always continue
	g := MustGenerator(p, 10)
	prev := g.Next()
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Off != prev.Off+int64(prev.Size) && op.Off != 0 {
			t.Fatalf("op %d not sequential: prev=%+v cur=%+v", i, prev, op)
		}
		prev = op
	}
}

func TestInvalidProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "r", UpdateRatio: 1.5, Sizes: []SizeBucket{{4096, 1}}, WorkingSet: 1 << 20},
		{Name: "s", UpdateRatio: 0.5, Sizes: nil, WorkingSet: 1 << 20},
		{Name: "c", UpdateRatio: 0.5, Sizes: []SizeBucket{{4096, 0.5}}, WorkingSet: 1 << 20},
		{Name: "w", UpdateRatio: 0.5, Sizes: []SizeBucket{{4096, 1}}, WorkingSet: 0},
	}
	for _, p := range bad {
		if _, err := NewGenerator(p, 1); err == nil {
			t.Fatalf("profile %s accepted", p.Name)
		}
	}
}

func TestParseMSRRoundTrip(t *testing.T) {
	ops := MustGenerator(AliCloud(ws), 11).Gen(500)
	var buf bytes.Buffer
	if err := WriteMSR(&buf, "vol0", ops); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("parsed %d ops, wrote %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
}

func TestParseMSRSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n1,h,0,Read,4096,512,0\n"
	ops, err := ParseMSR(strings.NewReader(in))
	if err != nil || len(ops) != 1 {
		t.Fatalf("ops=%v err=%v", ops, err)
	}
	if ops[0].Kind != Read || ops[0].Off != 4096 || ops[0].Size != 512 {
		t.Fatalf("parsed %+v", ops[0])
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"1,h,0,Erase,0,512,0",
		"1,h,0,Read,notanum,512,0",
		"1,h,0,Read,0,notanum,0",
		"too,few,fields",
	}
	for _, in := range cases {
		if _, err := ParseMSR(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}
