// Package trace models block-level I/O traces: the record type, a parser
// for the MSR Cambridge CSV format, and synthetic generators calibrated to
// the statistics the TSUE paper reports for its three workloads (§2.1):
//
//	Ali-Cloud: 75% of requests are updates; 46% of updates are 4 KiB and
//	           60% are ≤16 KiB.
//	Ten-Cloud: 69% updates; 69% are 4 KiB, 88% ≤16 KiB; very strong
//	           locality (>80% of datasets touch <5% of their volume).
//	MSR:       ~90% of writes are updates, 60% <4 KiB, 90% <16 KiB, with
//	           well-known per-volume personalities (src1_0 … mds_0).
//
// The real traces are multi-gigabyte external downloads; the generators
// reproduce the distributional properties that drive update-path behaviour
// (update ratio, size mix, spatio-temporal locality) and are validated
// against those published numbers in the package tests.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// OpKind is a request type.
type OpKind uint8

const (
	Read OpKind = iota
	Write
)

// Op is one trace record in a volume's byte address space.
type Op struct {
	Kind OpKind
	Off  int64
	Size int32
}

// SizeBucket is one point of a cumulative size distribution.
type SizeBucket struct {
	Size int32
	Cum  float64 // P(size <= Size)
}

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name string
	// UpdateRatio is the fraction of requests that are (over)writes.
	UpdateRatio float64
	// Sizes is the request size CDF (ascending, last Cum == 1.0).
	Sizes []SizeBucket
	// WorkingSet is the volume address span in bytes.
	WorkingSet int64
	// HotFraction of the working set receives HotAccess of the accesses
	// (temporal locality knob).
	HotFraction float64
	HotAccess   float64
	// SeqRun is the probability that a request continues where the previous
	// one ended (spatial locality knob).
	SeqRun float64
	// Align quantizes offsets (typically 4 KiB sectors).
	Align int64
}

func (p Profile) validate() error {
	if p.UpdateRatio < 0 || p.UpdateRatio > 1 {
		return fmt.Errorf("trace: %s: bad update ratio %f", p.Name, p.UpdateRatio)
	}
	if len(p.Sizes) == 0 || p.Sizes[len(p.Sizes)-1].Cum < 0.999 {
		return fmt.Errorf("trace: %s: size CDF must end at 1.0", p.Name)
	}
	if p.WorkingSet <= 0 {
		return fmt.Errorf("trace: %s: working set must be positive", p.Name)
	}
	return nil
}

// AliCloud returns the Ali-Cloud block-trace profile over the given working
// set (Li et al. 2020; statistics from TSUE §2.1).
func AliCloud(workingSet int64) Profile {
	return Profile{
		Name:        "ali-cloud",
		UpdateRatio: 0.75,
		Sizes: []SizeBucket{
			{4 << 10, 0.46}, {8 << 10, 0.54}, {16 << 10, 0.60},
			{64 << 10, 0.82}, {128 << 10, 0.93}, {256 << 10, 1.0},
		},
		WorkingSet:  workingSet,
		HotFraction: 0.10,
		HotAccess:   0.70,
		SeqRun:      0.25,
		Align:       4 << 10,
	}
}

// TenCloud returns the Tencent block-trace profile (Zhang et al. 2020;
// statistics from TSUE §2.1 and §2.3.3: over 80% of datasets touch less
// than 5% of their volume, hence the tighter hot set).
func TenCloud(workingSet int64) Profile {
	return Profile{
		Name:        "ten-cloud",
		UpdateRatio: 0.69,
		Sizes: []SizeBucket{
			{4 << 10, 0.69}, {8 << 10, 0.81}, {16 << 10, 0.88},
			{64 << 10, 0.96}, {256 << 10, 1.0},
		},
		WorkingSet:  workingSet,
		HotFraction: 0.04,
		HotAccess:   0.85,
		SeqRun:      0.30,
		Align:       4 << 10,
	}
}

// MSRVolumes lists the seven MSR Cambridge volumes used in the paper's HDD
// evaluation (Fig. 8), in the paper's order.
func MSRVolumes() []string {
	return []string{"src10", "src22", "proj2", "prn1", "hm0", "usr0", "mds0"}
}

// MSR returns a per-volume profile approximating the published MSR
// Cambridge characterizations (Narayanan et al. 2008): write ratio, request
// size mix and reuse differ strongly per server role.
func MSR(volume string, workingSet int64) (Profile, error) {
	base := Profile{
		Name:       "msr-" + volume,
		WorkingSet: workingSet,
		Align:      4 << 10,
	}
	switch volume {
	case "src10": // source control data: large sequential-ish writes
		base.UpdateRatio = 0.55
		base.Sizes = []SizeBucket{{4 << 10, 0.25}, {16 << 10, 0.55}, {64 << 10, 0.90}, {256 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.20, 0.55, 0.45
	case "src22": // source control metadata: small hot writes
		base.UpdateRatio = 0.70
		base.Sizes = []SizeBucket{{4 << 10, 0.60}, {16 << 10, 0.85}, {64 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.06, 0.80, 0.20
	case "proj2": // project directories: read-heavy
		base.UpdateRatio = 0.30
		base.Sizes = []SizeBucket{{4 << 10, 0.40}, {16 << 10, 0.70}, {64 << 10, 0.95}, {256 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.15, 0.60, 0.35
	case "prn1": // print server: mid-size bursts, weak locality
		base.UpdateRatio = 0.70
		base.Sizes = []SizeBucket{{8 << 10, 0.35}, {16 << 10, 0.60}, {64 << 10, 0.92}, {256 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.30, 0.45, 0.30
	case "hm0": // hardware monitor: small hot appends/overwrites
		base.UpdateRatio = 0.64
		base.Sizes = []SizeBucket{{4 << 10, 0.55}, {8 << 10, 0.80}, {16 << 10, 0.92}, {64 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.05, 0.85, 0.25
	case "usr0": // user home dirs: 4K-heavy, hot
		base.UpdateRatio = 0.60
		base.Sizes = []SizeBucket{{4 << 10, 0.65}, {16 << 10, 0.88}, {64 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.08, 0.75, 0.20
	case "mds0": // media server metadata: overwhelmingly small writes
		base.UpdateRatio = 0.88
		base.Sizes = []SizeBucket{{4 << 10, 0.70}, {8 << 10, 0.85}, {16 << 10, 0.95}, {64 << 10, 1.0}}
		base.HotFraction, base.HotAccess, base.SeqRun = 0.04, 0.88, 0.15
	default:
		return Profile{}, fmt.Errorf("trace: unknown MSR volume %q (want one of %v)", volume, MSRVolumes())
	}
	return base, nil
}

// Generator produces a deterministic op stream from a profile.
type Generator struct {
	p       Profile
	rng     *rand.Rand
	lastEnd int64
}

// NewGenerator validates the profile and seeds the stream.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Generator{p: p, rng: rand.New(rand.NewSource(seed)), lastEnd: -1}, nil
}

// MustGenerator is NewGenerator but panics on error.
func MustGenerator(p Profile, seed int64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Next returns the next op.
func (g *Generator) Next() Op {
	p := g.p
	kind := Read
	if g.rng.Float64() < p.UpdateRatio {
		kind = Write
	}
	size := g.pickSize()
	var off int64
	if g.lastEnd >= 0 && g.rng.Float64() < p.SeqRun {
		off = g.lastEnd
		if off+int64(size) > p.WorkingSet {
			off = 0
		}
	} else {
		var region, base int64
		if g.rng.Float64() < p.HotAccess {
			region = int64(float64(p.WorkingSet) * p.HotFraction)
			base = 0
		} else {
			base = int64(float64(p.WorkingSet) * p.HotFraction)
			region = p.WorkingSet - base
		}
		if region < int64(size) {
			region = int64(size)
			base = 0
		}
		off = base + g.rng.Int63n(region)
		if p.Align > 0 {
			off -= off % p.Align
		}
		if off+int64(size) > p.WorkingSet {
			off = p.WorkingSet - int64(size)
			if p.Align > 0 {
				off -= off % p.Align
			}
		}
	}
	g.lastEnd = off + int64(size)
	return Op{Kind: kind, Off: off, Size: size}
}

// Gen returns n ops.
func (g *Generator) Gen(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func (g *Generator) pickSize() int32 {
	r := g.rng.Float64()
	for _, b := range g.p.Sizes {
		if r <= b.Cum {
			return b.Size
		}
	}
	return g.p.Sizes[len(g.p.Sizes)-1].Size
}

// Stats summarizes an op stream (used to validate generators against the
// published trace statistics).
//
//lint:allow obsregistry(derived summary of a generated op stream, not a runtime metrics source)
type Stats struct {
	Ops          int
	Writes       int
	WriteRatio   float64
	Le4K, Le16K  float64 // fraction of writes at most 4 KiB / 16 KiB
	TouchedBytes int64   // unique bytes accessed (page-granular)
	TouchedFrac  float64 // TouchedBytes / working set
}

// ComputeStats scans ops against a working-set size.
func ComputeStats(ops []Op, workingSet int64) Stats {
	var st Stats
	st.Ops = len(ops)
	pages := make(map[int64]struct{})
	var le4, le16 int
	for _, op := range ops {
		for pg := op.Off >> 12; pg <= (op.Off+int64(op.Size)-1)>>12; pg++ {
			pages[pg] = struct{}{}
		}
		if op.Kind != Write {
			continue
		}
		st.Writes++
		if op.Size <= 4<<10 {
			le4++
		}
		if op.Size <= 16<<10 {
			le16++
		}
	}
	if st.Ops > 0 {
		st.WriteRatio = float64(st.Writes) / float64(st.Ops)
	}
	if st.Writes > 0 {
		st.Le4K = float64(le4) / float64(st.Writes)
		st.Le16K = float64(le16) / float64(st.Writes)
	}
	st.TouchedBytes = int64(len(pages)) << 12
	if workingSet > 0 {
		st.TouchedFrac = float64(st.TouchedBytes) / float64(workingSet)
	}
	return st
}

// ParseMSR reads the MSR Cambridge CSV format:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Offsets/sizes are bytes; Type is "Read" or "Write". Lines that do not
// parse return an error with their line number.
func ParseMSR(r io.Reader) ([]Op, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var ops []Op
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: %d fields", line, len(f))
		}
		var kind OpKind
		switch strings.ToLower(strings.TrimSpace(f[3])) {
		case "read":
			kind = Read
		case "write":
			kind = Write
		default:
			return nil, fmt.Errorf("trace: msr line %d: bad type %q", line, f[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: offset: %v", line, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: size: %v", line, err)
		}
		ops = append(ops, Op{Kind: kind, Off: off, Size: int32(size)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// WriteMSR emits ops in the MSR CSV format (tracegen tool output).
func WriteMSR(w io.Writer, host string, ops []Op) error {
	bw := bufio.NewWriter(w)
	for i, op := range ops {
		kind := "Read"
		if op.Kind == Write {
			kind = "Write"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,0,%s,%d,%d,0\n", i, host, kind, op.Off, op.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
