package simvet

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the analysistest-style expectations embedded in fixtures:
// a `// want "regex"` comment on a line means at least one diagnostic whose
// message matches the regex must be reported on that line; any diagnostic
// not covered by a want fails the test, so every fixture line without an
// annotation doubles as a false-positive guard.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type fixtureSpec struct {
	analyzer *Analyzer
	dir      string // package directory under testdata/src
	path     string // unit import path the analyzer scopes on
	typed    bool   // typecheck the fixture (required for NeedsTypes rules)
}

func fixtureSpecs() []fixtureSpec {
	return []fixtureSpec{
		{WalltimeAnalyzer, "walltime", "tsue/internal/harness", true},
		{NogoroutineAnalyzer, "nogoroutine", "tsue/internal/sim", false},
		{MaporderAnalyzer, "maporder", "tsue/internal/cluster", true},
		{WireprotoAnalyzer, "wireproto", "tsue/internal/wire", false},
		{SentinelerrAnalyzer, "sentinelerr", "tsue/internal/cluster", false},
		{ObsregistryAnalyzer, "obsregistry", "tsue/internal/device", false},
	}
}

// TestAnalyzersOnFixtures runs each analyzer over its golden fixture package
// and checks the findings against the `// want` annotations in both
// directions: every want fires, and nothing else does.
func TestAnalyzersOnFixtures(t *testing.T) {
	for _, spec := range fixtureSpecs() {
		spec := spec
		t.Run(spec.analyzer.Name, func(t *testing.T) {
			u, wants := loadFixture(t, spec)
			checkDiagnostics(t, Run(u, []*Analyzer{spec.analyzer}), wants)
		})
	}
}

// wantKey identifies one expectation instance.
type wantKey struct {
	file string
	line int
	idx  int
}

// loadFixture parses (and for typed specs typechecks) the fixture package
// and collects its want annotations.
func loadFixture(t *testing.T, spec fixtureSpec) (*Unit, map[wantKey]*regexp.Regexp) {
	t.Helper()
	dir := filepath.Join("testdata", "src", spec.dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	wants := make(map[wantKey]*regexp.Regexp)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for j, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
				}
				wants[wantKey{name, i + 1, j}] = re
			}
		}
	}
	u := &Unit{Path: spec.path, Dir: dir, Fset: fset, Files: files}
	if spec.typed {
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "source", nil),
			Error:    func(error) {}, // fixtures need not fully typecheck
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		pkg, _ := conf.Check(spec.path, fset, files, info)
		u.Pkg, u.Info = pkg, info
	}
	return u, wants
}

// checkDiagnostics matches findings against expectations in both directions.
func checkDiagnostics(t *testing.T, diags []Diagnostic, wants map[wantKey]*regexp.Regexp) {
	t.Helper()
	fired := make(map[wantKey]bool)
	for _, d := range diags {
		covered := false
		for key, re := range wants {
			if key.file == d.Pos.Filename && key.line == d.Pos.Line && re.MatchString(d.Message) {
				fired[key] = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, re := range wants {
		if !fired[key] {
			t.Errorf("%s:%d: want %q did not fire", key.file, key.line, re)
		}
	}
}

// TestNeedsTypesSkippedWhenUntyped pins the degraded mode CheckModule and
// TestStatsGuard rely on: an untyped unit must skip NeedsTypes analyzers
// silently instead of crashing on a nil Info.
func TestNeedsTypesSkippedWhenUntyped(t *testing.T) {
	spec := fixtureSpec{MaporderAnalyzer, "maporder", "tsue/internal/cluster", false}
	u, _ := loadFixture(t, spec)
	if diags := Run(u, []*Analyzer{MaporderAnalyzer}); len(diags) != 0 {
		t.Fatalf("untyped unit produced diagnostics from a NeedsTypes analyzer: %v", diags)
	}
}

// TestNormalizePath pins the vet unit-path decorations the scope rules see.
func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"tsue/internal/sim":                          "tsue/internal/sim",
		"tsue/internal/sim [tsue/internal/sim.test]": "tsue/internal/sim",
		"tsue/internal/sim.test":                     "tsue/internal/sim",
		"tsue/internal/wire_test":                    "tsue/internal/wire",
	}
	for in, want := range cases {
		if got := NormalizePath(in); got != want {
			t.Errorf("NormalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}
