package simvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// WireprotoAnalyzer turns the wire-protocol conventions into checked
// properties. It enumerates the message set from the code itself — every
// struct with a `Type() Type` method is a message; there is no hand-written
// list to rot — and requires each message to be:
//
//   - registered in the codec: named in a `case *X:` of a marshal type
//     switch AND constructed inside Unmarshal;
//   - seeded into the fuzz corpus: constructed somewhere in the package's
//     _test.go files, which is where FuzzUnmarshalRoundTrip takes its seeds;
//   - traced and end-to-end verified when payload-bearing: a struct with a
//     []byte data field must carry a SpanCtx field (the tracer follows the
//     data path hop by hop) and a Sum (CRC) field (corruption injected by
//     the chaos fabric is detectable at every receiver). Control-plane
//     messages without payloads ride the requester's span and carry fixed
//     fields the codec already length-checks.
var WireprotoAnalyzer = &Analyzer{
	Name: "wireproto",
	Doc: "every wire message (struct with a Type() Type method) must be " +
		"codec-registered and fuzz-corpus-seeded; payload-bearing messages " +
		"([]byte field) must also be SpanCtx-traced and Sum-checksummed",
	Run: runWireproto,
}

func runWireproto(p *Pass) {
	// The protocol lives in the package named "wire"; fixtures mirror that.
	if seg := p.Path[strings.LastIndex(p.Path, "/")+1:]; seg != "wire" {
		return
	}

	structs := make(map[string]*ast.TypeSpec) // all struct types
	messages := make(map[string]bool)         // structs with Type() Type
	marshalCases := make(map[string]bool)     // `case *X:` in type switches
	unmarshalMade := make(map[string]bool)    // composite lits in Unmarshal
	corpusMade := make(map[string]bool)       // composite lits in test files
	haveTests := false

	for _, f := range p.Files {
		test := isTestFile(p.Fset, f)
		if test {
			haveTests = true
			collectComposites(f, corpusMade)
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.TypeSpec:
				if _, ok := v.Type.(*ast.StructType); ok {
					structs[v.Name.Name] = v
				}
			case *ast.FuncDecl:
				if name := typeMethodRecv(v); name != "" {
					messages[name] = true
				}
				if v.Name.Name == "Unmarshal" && v.Recv == nil {
					collectComposites(v, unmarshalMade)
				}
			case *ast.TypeSwitchStmt:
				for _, stmt := range v.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if star, ok := e.(*ast.StarExpr); ok {
							if ident, ok := star.X.(*ast.Ident); ok {
								marshalCases[ident.Name] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// A unit handed over without test files (or a bare fixture) still checks
	// corpus coverage by parsing the package directory's _test.go files.
	if !haveTests && p.Dir != "" {
		haveTests = collectDirTestComposites(p.Dir, corpusMade)
	}

	for name := range messages {
		ts, ok := structs[name]
		if !ok {
			continue // Type() on a non-struct (e.g. an alias); out of scope
		}
		st := ts.Type.(*ast.StructType)
		hasSpan, hasSum, hasPayload := false, false, false
		for _, field := range st.Fields.List {
			if ident, ok := field.Type.(*ast.Ident); ok && ident.Name == "SpanCtx" {
				hasSpan = true
			}
			if isByteSlice(field.Type) {
				hasPayload = true
			}
			for _, fn := range field.Names {
				if strings.HasSuffix(fn.Name, "Sum") {
					hasSum = true
				}
			}
		}
		if !marshalCases[name] {
			p.Reportf(ts.Pos(), "message %s has no `case *%s:` in a codec type switch: Marshal will reject it at runtime", name, name)
		}
		if !unmarshalMade[name] {
			p.Reportf(ts.Pos(), "message %s is never constructed in Unmarshal: it cannot be decoded", name)
		}
		if haveTests && !corpusMade[name] {
			p.Reportf(ts.Pos(), "message %s is not constructed in any _test.go file: FuzzUnmarshalRoundTrip has no corpus seed for it", name)
		}
		if hasPayload && !hasSpan {
			p.Reportf(ts.Pos(), "payload-bearing message %s (has a []byte field) has no SpanCtx field: the tracer cannot follow the data path across this hop", name)
		}
		if hasPayload && !hasSum {
			p.Reportf(ts.Pos(), "payload-bearing message %s (has a []byte field) has no Sum checksum field: chaos-injected corruption would be undetectable", name)
		}
	}
}

// typeMethodRecv returns the receiver base type name when fn is a
// `func (x X|*X) Type() Type` method, else "".
func typeMethodRecv(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Name.Name != "Type" {
		return ""
	}
	ft := fn.Type
	if ft.Params.NumFields() != 0 || ft.Results.NumFields() != 1 {
		return ""
	}
	res, ok := ft.Results.List[0].Type.(*ast.Ident)
	if !ok || res.Name != "Type" {
		return ""
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	ident, ok := recv.(*ast.Ident)
	if !ok {
		return ""
	}
	return ident.Name
}

func isByteSlice(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	ident, ok := arr.Elt.(*ast.Ident)
	return ok && ident.Name == "byte"
}

// collectComposites records every `X{...}` / `&X{...}` composite literal type
// name under n.
func collectComposites(n ast.Node, into map[string]bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if ident, ok := cl.Type.(*ast.Ident); ok {
			into[ident.Name] = true
		}
		return true
	})
}

// collectDirTestComposites parses dir's _test.go files syntactically and
// records their composite-literal type names. Returns whether any test file
// was found.
func collectDirTestComposites(dir string, into map[string]bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	fset := token.NewFileSet()
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		found = true
		collectComposites(f, into)
	}
	return found
}
