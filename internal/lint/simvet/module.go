package simvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CheckModule walks every package directory under root (the module root,
// where go.mod lives), parses it syntactically, and runs the given analyzers
// over each package as an untyped Unit. Analyzers with NeedsTypes are
// skipped — this is the degraded, in-process mode used by TestStatsGuard,
// which only needs the syntactic obsregistry rule; the full typed suite runs
// through cmd/simvet under `go vet`.
func CheckModule(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		switch d.Name() {
		case ".git", "testdata":
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var all []Diagnostic
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", e.Name(), err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := module
		if rel != "." {
			path = module + "/" + filepath.ToSlash(rel)
		}
		u := &Unit{Path: path, Dir: dir, Fset: fset, Files: files}
		all = append(all, Run(u, analyzers)...)
	}
	return all, nil
}

// modulePath reads the module path out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}
