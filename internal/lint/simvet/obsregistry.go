package simvet

import (
	"go/ast"
	"strings"
)

// ObsregistryAnalyzer is the TestStatsGuard rule as a real analyzer: metrics
// have exactly one home, the internal/obs registry. A new `...Stats` struct
// or a sync/atomic import anywhere else is a second, unaggregated source of
// truth that the unified metrics plane cannot see — so both are flagged
// outside internal/obs. The handful of pre-registry structs that survive for
// compatibility carry explicit //lint:allow obsregistry(...) annotations at
// their declarations instead of living in a frozen test allowlist.
var ObsregistryAnalyzer = &Analyzer{
	Name: "obsregistry",
	Doc: "no new ...Stats structs or sync/atomic outside internal/obs: " +
		"metrics belong on the obs registry",
	Run: runObsregistry,
}

func runObsregistry(p *Pass) {
	if !inInternal(p.Path) {
		return
	}
	if strings.HasSuffix(p.Path, "/internal/obs") || p.Path == "internal/obs" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "sync/atomic" {
				p.Reportf(imp.Pos(), "sync/atomic outside internal/obs: counters belong on the obs registry (obs.Counter/obs.Gauge), which is already single-threaded under the sim kernel")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
				return true
			}
			if strings.HasSuffix(ts.Name.Name, "Stats") {
				p.Reportf(ts.Pos(), "struct %s outside internal/obs: register metrics on the obs registry instead of growing a parallel stats struct", ts.Name.Name)
			}
			return true
		})
	}
}
