package simvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// NogoroutineAnalyzer bans raw concurrency in kernel-owned packages: go
// statements, channels, select, and the sync/sync-atomic packages. Exactly
// one goroutine is runnable at any instant under the sim kernel, so all
// concurrency must flow through sim.Proc spawns (sim.Env.Go) and the sim
// synchronization primitives (sim.WaitGroup, sim.Cond, sim.Queue); anything
// else reintroduces scheduler-dependent interleavings the seed cannot pin.
var NogoroutineAnalyzer = &Analyzer{
	Name: "nogoroutine",
	Doc: "ban go statements, channels, select, sync and sync/atomic in " +
		"kernel-owned packages (sim, netsim, cluster, update, obs, " +
		"harness): concurrency flows through sim.Proc spawns only",
	Run: runNogoroutine,
}

func runNogoroutine(p *Pass) {
	if !isKernel(p.Path) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "sync", "sync/atomic":
				p.Reportf(imp.Pos(), "import %s in kernel package: the sim kernel is single-runnable; use sim.WaitGroup/sim.Cond, and put counters on the obs registry", strings.Trim(imp.Path.Value, `"`))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.GoStmt:
				p.Reportf(v.Pos(), "go statement in kernel package: spawn sim processes with sim.Env.Go so the scheduler owns the interleaving")
			case *ast.SendStmt:
				p.Reportf(v.Pos(), "channel send in kernel package: pass work through sim.Queue or direct calls under the one-runnable-goroutine kernel")
			case *ast.UnaryExpr:
				if v.Op == token.ARROW {
					p.Reportf(v.Pos(), "channel receive in kernel package: block on sim primitives (Queue.Get, WaitGroup.Wait), not channels")
				}
			case *ast.SelectStmt:
				p.Reportf(v.Pos(), "select in kernel package: nondeterministic case choice breaks byte-identical runs; use sim.Cond or hedged sim queues")
			case *ast.ChanType:
				p.Reportf(v.Pos(), "channel type in kernel package: kernel state must be reachable only from sim processes; use sim.Queue")
			}
			return true
		})
	}
}
