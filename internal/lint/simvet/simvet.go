// Package simvet is the repository's determinism and protocol linter: a
// small go/analysis-style framework plus six purpose-built analyzers that
// machine-check the invariants the whole reproduction stands on — sim-time
// determinism (no wall clock, no free-running goroutines, no order-dependent
// map iteration in kernel-owned packages), wire-protocol completeness (every
// message registered, fuzzed, traced, and checksummed), sentinel-error
// discipline (errors.Is, not ==), and the obs-registry ownership rule.
//
// The framework is self-contained (no golang.org/x/tools dependency): the
// container this repo builds in has no module cache, so cmd/simvet speaks
// the `go vet -vettool` unit-checker protocol directly and analyzers receive
// a Pass shaped like golang.org/x/tools/go/analysis.Pass.
//
// A finding is suppressed by an explicit, justified escape comment on the
// offending line or the line above:
//
//	//lint:allow walltime(reports real elapsed wall time, not sim time)
//
// or, for a file that is wholesale exempt (e.g. the sim kernel itself):
//
//	//lint:allow-file nogoroutine(the kernel implementation is the one
//	place real goroutines and channels exist)
//
// The justification is mandatory: an allow comment with an empty reason is
// itself reported and does not suppress anything.
package simvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one simvet rule.
type Analyzer struct {
	Name string
	Doc  string
	// NeedsTypes marks rules that cannot run without type information
	// (Pass.Info). Syntactic rules also run in degraded contexts such as
	// the TestStatsGuard module walk.
	NeedsTypes bool
	Run        func(*Pass)
}

// Analyzers returns the full simvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		NogoroutineAnalyzer,
		MaporderAnalyzer,
		WireprotoAnalyzer,
		SentinelerrAnalyzer,
		ObsregistryAnalyzer,
	}
}

// A Unit is one package-sized batch of files to analyze — what `go vet`
// hands the vettool per package (test files included), or what the fixture
// loader and module walker construct.
type Unit struct {
	// Path is the unit's import path with any test-variant decoration
	// already stripped (see NormalizePath); analyzers scope on it.
	Path string
	// Dir is the package directory on disk; wireproto falls back to it for
	// corpus discovery when the unit carries no test files.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg and Info are nil when the unit was not typechecked; analyzers
	// with NeedsTypes are skipped then.
	Pkg  *types.Package
	Info *types.Info
}

// A Diagnostic is one finding that survived the allow-comment filter.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string
	Dir      string
	Pkg      *types.Package
	Info     *types.Info

	diags  *[]Diagnostic
	allows *allowIndex
}

// Reportf records a finding at pos unless an allow comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if p.allows.allowed(p.Analyzer.Name, posn) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      posn,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the unit and returns the findings sorted by
// position. Analyzers needing types are skipped when the unit has none.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allows := buildAllowIndex(u.Fset, u.Files, &diags)
	for _, a := range analyzers {
		if a.NeedsTypes && u.Info == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Path:     u.Path,
			Dir:      u.Dir,
			Pkg:      u.Pkg,
			Info:     u.Info,
			diags:    &diags,
			allows:   allows,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- allow comments ----

var allowRe = regexp.MustCompile(`//lint:allow(-file)?\s+([a-z]+)\(([^)]*)\)`)

type allowIndex struct {
	// line maps filename -> analyzer -> set of covered lines (an allow on
	// line N covers findings on N and N+1, i.e. the comment sits on the
	// offending line or the line above it).
	line map[string]map[string]map[int]bool
	// file maps filename -> analyzer -> whole-file exemption.
	file map[string]map[string]bool
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) *allowIndex {
	idx := &allowIndex{
		line: make(map[string]map[string]map[int]bool),
		file: make(map[string]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range allowRe.FindAllStringSubmatch(c.Text, -1) {
					fileWide, name, reason := m[1] != "", m[2], strings.TrimSpace(m[3])
					posn := fset.Position(c.Pos())
					if reason == "" {
						*diags = append(*diags, Diagnostic{
							Pos:      posn,
							Analyzer: name,
							Message:  fmt.Sprintf("lint:allow %s() has no justification: state why the rule does not apply here", name),
						})
						continue
					}
					if fileWide {
						byName := idx.file[posn.Filename]
						if byName == nil {
							byName = make(map[string]bool)
							idx.file[posn.Filename] = byName
						}
						byName[name] = true
						continue
					}
					byName := idx.line[posn.Filename]
					if byName == nil {
						byName = make(map[string]map[int]bool)
						idx.line[posn.Filename] = byName
					}
					lines := byName[name]
					if lines == nil {
						lines = make(map[int]bool)
						byName[name] = lines
					}
					lines[posn.Line] = true
					lines[posn.Line+1] = true
				}
			}
		}
	}
	return idx
}

func (idx *allowIndex) allowed(analyzer string, posn token.Position) bool {
	if idx == nil {
		return false
	}
	if idx.file[posn.Filename][analyzer] {
		return true
	}
	return idx.line[posn.Filename][analyzer][posn.Line]
}

// ---- path scoping helpers ----

// NormalizePath strips the decorations `go vet` puts on test-variant unit
// paths: "pkg [pkg.test]" becomes "pkg", and an external test package
// "pkg_test" scopes as "pkg".
func NormalizePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// inInternal reports whether the import path has an internal/ element.
func inInternal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// kernelPkgs are the kernel-owned packages: all concurrency must flow
// through sim.Proc spawns and all iteration order must be deterministic,
// because a single stray goroutine or map-order dependence silently breaks
// the byte-identical-runs-per-seed property every benchmark is pinned on.
var kernelPkgs = []string{"sim", "netsim", "cluster", "update", "obs", "harness"}

// isKernel reports whether path names a kernel-owned package.
func isKernel(path string) bool {
	for _, k := range kernelPkgs {
		if strings.HasSuffix(path, "/internal/"+k) || path == "internal/"+k {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file at pos is a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// fileImports maps each file-local package name to its import path.
// Dot-imports are keyed as "." (callers flag them separately when the
// imported package matters).
func fileImports(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

// isPkgIdent reports whether ident names the package imported as path in
// this file's import table. With type info the identifier must resolve to a
// package name (so local shadowing never misfires); without it the import
// table alone decides.
func (p *Pass) isPkgIdent(imps map[string]string, ident *ast.Ident, path ...string) bool {
	got, ok := imps[ident.Name]
	if !ok {
		return false
	}
	match := false
	for _, want := range path {
		if got == want {
			match = true
			break
		}
	}
	if !match {
		return false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[ident]; ok {
			_, isPkg := obj.(*types.PkgName)
			return isPkg
		}
	}
	return true
}
