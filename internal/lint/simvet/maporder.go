package simvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MaporderAnalyzer flags `range` over maps in kernel-owned packages when the
// loop body has order-dependent effects: Go randomizes map iteration order
// per process, so a fan-out, an append that is later encoded, an overwrite
// of outer state, or floating-point accumulation inside such a loop makes
// two runs of the same seed diverge. The fix is to collect the keys, sort
// them, and range over the sorted slice (that collection loop itself is
// recognized and exempt, provided the slice is actually sorted afterwards).
//
// Order-independent bodies stay quiet: integer accumulation (n += v, n++),
// writes indexed by the loop key (out[k] = f(v)), body-local variables, and
// the safe builtins (len, cap, min, max, delete, make, new).
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (sends, calls, " +
		"appends, overwrites, float accumulation) in kernel-owned packages " +
		"unless the keys are sorted first",
	NeedsTypes: true,
	Run:        runMaporder,
}

func runMaporder(p *Pass) {
	if !isKernel(p.Path) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		imps := fileImports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := p.Info.TypeOf(rs.X); t == nil || !isMapType(t) {
					return true
				}
				p.checkMapRange(rs, fn, imps)
				return true
			})
		}
	}
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (p *Pass) checkMapRange(rs *ast.RangeStmt, fn *ast.FuncDecl, imps map[string]string) {
	keyObj := p.rangeVarObj(rs.Key)
	valObj := p.rangeVarObj(rs.Value)

	var reported bool
	report := func(pos token.Pos, format string, args ...any) {
		if !reported {
			reported = true
			p.Reportf(pos, format, args...)
		}
	}
	// collects are outer slices fed by `s = append(s, ...)` — the
	// key-collection idiom. They are fine exactly when the slice is sorted
	// after the loop; otherwise the append order leaks map order.
	type collect struct {
		obj types.Object
		pos token.Pos
	}
	var collects []collect
	// handled marks append calls consumed by the assignment analysis so the
	// generic call check does not re-flag them.
	handled := make(map[ast.Node]bool)

	checkWrite := func(lhs ast.Expr, tok token.Token, rhs ast.Expr, pos token.Pos) {
		// Commutative integer accumulation (n += v, stats.Count++, through
		// any lvalue shape) is order-independent: integer addition is exact
		// and associative. Float accumulation is not and falls through.
		switch tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN, token.INC, token.DEC:
			if t := p.Info.TypeOf(lhs); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return
				}
			}
		}
		switch t := lhs.(type) {
		case *ast.Ident:
			if t.Name == "_" {
				return
			}
			obj := p.Info.ObjectOf(t)
			if obj == nil || declaredWithin(obj, rs.Body) {
				return
			}
			if call, ok := rhs.(*ast.CallExpr); ok && p.builtinName(call) == "append" &&
				len(call.Args) > 0 && p.sameObj(call.Args[0], obj) {
				handled[call] = true
				collects = append(collects, collect{obj, pos})
				return
			}
			switch tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN, token.INC, token.DEC:
				report(pos, "accumulation into %s of type %s inside map iteration is order-dependent (only integer accumulation commutes exactly); sort the keys first", obj.Name(), obj.Type())
				return
			}
			report(pos, "assignment to %s (declared outside the loop) inside iteration over map %s depends on iteration order; sort the keys first", obj.Name(), types.ExprString(rs.X))
		case *ast.IndexExpr:
			if keyObj != nil && p.sameObj(t.Index, keyObj) {
				return // one write per distinct key: order-independent
			}
			report(pos, "indexed write not keyed by the loop key inside iteration over map %s depends on iteration order; sort the keys first", types.ExprString(rs.X))
		case *ast.SelectorExpr:
			// A field write through the loop key/value variable touches a
			// distinct object per iteration (n.stats = Stats{} resets each
			// node): order-independent as long as the RHS is, and RHS
			// dependence on mutated outer state is flagged at that state's
			// own mutation site.
			if base, ok := t.X.(*ast.Ident); ok {
				if (keyObj != nil && p.Info.ObjectOf(base) == keyObj) ||
					(valObj != nil && p.Info.ObjectOf(base) == valObj) {
					return
				}
			}
			report(pos, "write through %s inside iteration over map %s depends on iteration order; sort the keys first", types.ExprString(lhs), types.ExprString(rs.X))
		default:
			report(pos, "write through %s inside iteration over map %s depends on iteration order; sort the keys first", types.ExprString(lhs), types.ExprString(rs.X))
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true // new body-locals; still descend into the RHS
			}
			for i, lhs := range v.Lhs {
				var rhs ast.Expr
				if i < len(v.Rhs) {
					rhs = v.Rhs[i]
				}
				checkWrite(lhs, v.Tok, rhs, v.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(v.X, token.INC, nil, v.Pos())
		case *ast.SendStmt:
			report(v.Pos(), "send inside iteration over map %s fans out in map order; sort the keys first", types.ExprString(rs.X))
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				report(v.Pos(), "channel receive inside iteration over map %s is order-dependent; sort the keys first", types.ExprString(rs.X))
			}
		case *ast.CallExpr:
			if handled[v] {
				return true
			}
			if name := p.builtinName(v); name != "" {
				switch name {
				case "len", "cap", "min", "max", "delete", "make", "new", "append":
					// append reaching here feeds no outer variable (its
					// result is dropped or body-local): order cannot leak.
					return true
				}
				report(v.Pos(), "builtin %s inside iteration over map %s has order-dependent effects; sort the keys first", name, types.ExprString(rs.X))
				return false
			}
			if p.isConversion(v) {
				return true
			}
			report(v.Pos(), "call to %s inside iteration over map %s runs in map order (side effects, sends, scheduling); sort the keys first", types.ExprString(v.Fun), types.ExprString(rs.X))
			return false
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if (keyObj != nil && p.usesObj(res, keyObj)) || (valObj != nil && p.usesObj(res, valObj)) {
					report(v.Pos(), "returning a value derived from iteration over map %s picks an arbitrary entry; sort the keys first", types.ExprString(rs.X))
				}
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, c := range collects {
		if !p.sortedAfter(c.obj, rs.End(), fn, imps) {
			p.Reportf(c.pos, "slice %s collects entries in map order and is not sorted before use; sort it (sort.Slice / slices.Sort) after the loop", c.obj.Name())
			return
		}
	}
}

// rangeVarObj resolves a range clause variable to its object (nil for
// missing or blank variables).
func (p *Pass) rangeVarObj(e ast.Expr) types.Object {
	ident, ok := e.(*ast.Ident)
	if !ok || ident.Name == "_" {
		return nil
	}
	return p.Info.ObjectOf(ident)
}

func (p *Pass) sameObj(e ast.Expr, obj types.Object) bool {
	ident, ok := e.(*ast.Ident)
	return ok && p.Info.ObjectOf(ident) == obj
}

func (p *Pass) usesObj(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && p.Info.ObjectOf(ident) == obj {
			found = true
		}
		return !found
	})
	return found
}

func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// builtinName returns the name of the builtin being called, or "".
func (p *Pass) builtinName(call *ast.CallExpr) string {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := p.Info.Uses[ident]; ok {
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return ident.Name
		}
	}
	return ""
}

func (p *Pass) isConversion(call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// sortFuncs lists the sorting entry points the collect exemption accepts,
// per package.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
		"SliceStable": true, "Sort": true, "Stable": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedAfter reports whether obj is passed to a sort call after pos within
// the enclosing function.
func (p *Pass) sortedAfter(obj types.Object, pos token.Pos, fn *ast.FuncDecl, imps map[string]string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkgIdent, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg := imps[pkgIdent.Name]
			if fns, ok := sortFuncs[pkg]; ok && fns[fun.Sel.Name] && p.usesObj(call.Args[0], obj) {
				found = true
			}
		case *ast.Ident:
			// Local sorting helpers (sortBlocks(blks), sortNodes(ids), ...)
			// count too: the repo's idiom for comparator-heavy key types.
			if strings.HasPrefix(fun.Name, "sort") && p.usesObj(call.Args[0], obj) {
				found = true
			}
		}
		return true
	})
	return found
}
