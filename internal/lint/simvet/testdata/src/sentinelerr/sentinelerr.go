// Package sentinelerr is the sentinelerr fixture: == / != / switch over
// exported Err* sentinels must be flagged, as must bare errors.New at return
// sites in the cluster-scoped unit; errors.Is, nil checks, %w wrapping, and
// justified escapes must stay quiet.
package sentinelerr

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("gone")

func compare(err error) bool {
	return err == ErrGone // want "ErrGone compared with =="
}

func compareNeq(err error) bool {
	return err != ErrGone // want "ErrGone compared with !="
}

func switchCase(err error) int {
	switch err {
	case ErrGone: // want "switch case on sentinel ErrGone"
		return 1
	}
	return 0
}

// classify is the sanctioned form: must stay quiet.
func classify(err error) bool {
	return errors.Is(err, ErrGone)
}

// nilCheck compares against nil, not a sentinel: must stay quiet.
func nilCheck(err error) bool {
	return err == nil
}

func adHoc() error {
	return errors.New("unclassifiable") // want "errors.New at a cluster return site"
}

// wrapped attaches context without destroying classification: quiet.
func wrapped() error {
	return fmt.Errorf("context: %w", ErrGone)
}

// sentinelDecl assigns errors.New to a package sentinel (not a return
// site): must stay quiet.
var ErrLate = errors.New("late")

func allowedCompare(err error) bool {
	//lint:allow sentinelerr(fixture: identity comparison is load-bearing here)
	return err == ErrGone
}
