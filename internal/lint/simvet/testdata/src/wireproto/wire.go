// Package wire is the wireproto fixture: a miniature message set where each
// defective message violates exactly one rule, plus conformant messages and
// non-messages that must stay quiet. The analyzer enumerates messages from
// the Type() Type method set — there is no registration list to seed.
package wire

type Type uint8

// SpanCtx mirrors the real wire package's trace context.
type SpanCtx struct {
	Trace, Span uint64
	Op          uint8
}

// Good is fully conformant: codec-registered, corpus-seeded, and — being
// payload-bearing — traced and checksummed. Must stay quiet.
type Good struct {
	Data []byte
	Sum  uint32
	Span SpanCtx
}

func (*Good) Type() Type { return 1 }

// Control carries no payload: exempt from the SpanCtx and Sum rules.
type Control struct{ N uint32 }

func (*Control) Type() Type { return 2 }

// helper has no Type() method: not a message, never checked.
type helper struct{ Data []byte }

// Unregistered is missing its marshal type-switch case.
type Unregistered struct { // want "message Unregistered has no"
	Data []byte
	Sum  uint32
	Span SpanCtx
}

func (*Unregistered) Type() Type { return 3 }

// Undecodable is never constructed in Unmarshal.
type Undecodable struct { // want "message Undecodable is never constructed in Unmarshal"
	Data []byte
	Sum  uint32
	Span SpanCtx
}

func (*Undecodable) Type() Type { return 4 }

// Unseeded is never constructed in a _test.go file.
type Unseeded struct { // want "message Unseeded is not constructed in any _test.go file"
	Data []byte
	Sum  uint32
	Span SpanCtx
}

func (*Unseeded) Type() Type { return 5 }

// Untraced carries a payload but no SpanCtx.
type Untraced struct { // want "payload-bearing message Untraced .* no SpanCtx"
	Data []byte
	Sum  uint32
}

func (*Untraced) Type() Type { return 6 }

// Unsummed carries a payload but no checksum.
type Unsummed struct { // want "payload-bearing message Unsummed .* no Sum checksum"
	Data []byte
	Span SpanCtx
}

func (*Unsummed) Type() Type { return 7 }

// Response rides its requester's span by design — the justified escape.
//
//lint:allow wireproto(fixture: response rides the requester's rpc span)
type Response struct {
	Data []byte
	Sum  uint32
}

func (*Response) Type() Type { return 8 }
