package wire

import "errors"

// Msg is the fixture's message interface.
type Msg interface{ Type() Type }

// Marshal's type switch is where the analyzer reads codec registration from.
func Marshal(buf []byte, m Msg) []byte {
	switch m.(type) {
	case *Good:
	case *Control:
	case *Undecodable:
	case *Unseeded:
	case *Untraced:
	case *Unsummed:
	case *Response:
	}
	return buf
}

// Unmarshal's composite literals are where decodability is read from.
func Unmarshal(t Type, payload []byte) (Msg, error) {
	switch t {
	case 1:
		return &Good{Data: payload}, nil
	case 2:
		return &Control{}, nil
	case 3:
		return &Unregistered{Data: payload}, nil
	case 5:
		return &Unseeded{Data: payload}, nil
	case 6:
		return &Untraced{Data: payload}, nil
	case 7:
		return &Unsummed{Data: payload}, nil
	case 8:
		return &Response{Data: payload}, nil
	}
	return nil, errors.New("unknown type")
}
