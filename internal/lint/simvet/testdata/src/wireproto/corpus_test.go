package wire

// corpus seeds every message except Unseeded — the analyzer reads fuzz
// coverage from composite literals in _test.go files.
var corpus = []Msg{
	&Good{Data: []byte{1}},
	&Control{N: 2},
	&Unregistered{},
	&Undecodable{},
	&Untraced{},
	&Unsummed{},
	&Response{},
}
