// Package maporder is the maporder fixture: order-dependent map-iteration
// bodies must be flagged; the recognized order-independent shapes (integer
// accumulation, key-indexed writes, body-locals, sorted collects) must stay
// quiet.
package maporder

import "sort"

// fanout calls out in map order: flagged.
func fanout(m map[int]int, send func(int)) {
	for k := range m {
		send(k) // want "call to send inside iteration over map"
	}
}

// sortedFanout is the sanctioned idiom: collect, sort, then fan out.
func sortedFanout(m map[int]int, send func(int)) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		send(k)
	}
}

// intSum commutes exactly: integer accumulation must stay quiet.
func intSum(m map[int]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// floatSum does not commute: flagged.
func floatSum(m map[int]float64) float64 {
	var n float64
	for _, v := range m {
		n += v // want "accumulation into n"
	}
	return n
}

// keyIndexed writes once per distinct key: must stay quiet.
func keyIndexed(m map[int]int, out map[int]int) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// bodyLocal only touches variables declared inside the loop: must stay quiet.
func bodyLocal(m map[int]int) {
	for _, v := range m {
		double := v * 2
		double++
		_ = double
	}
}

// unsortedCollect leaks map order into the returned slice: flagged.
func unsortedCollect(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "collects entries in map order"
	}
	return keys
}

// helperSorted collects and sorts through a local sort-prefixed helper —
// the repo's idiom for comparator-heavy key types: must stay quiet.
func helperSorted(m map[int]int, send func(int)) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	for _, k := range keys {
		send(k)
	}
}

func sortInts(s []int) { sort.Ints(s) }

// overwrite clobbers one outer variable from every iteration, keeping
// whichever entry the runtime visited last: flagged.
func overwrite(m map[int]int) int {
	var last int
	for _, v := range m {
		last = v // want "assignment to last"
	}
	return last
}

// allowed carries a justified escape on the offending line: quiet.
func allowed(m map[int]int, send func(int)) {
	for k := range m {
		//lint:allow maporder(fixture: the callee is order-insensitive by contract)
		send(k)
	}
}
