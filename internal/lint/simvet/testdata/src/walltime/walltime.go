// Package walltime is the walltime fixture: wall-clock reads and the global
// math/rand stream must be flagged; seeded constructors, type references,
// time.Duration arithmetic, and justified escapes must stay quiet.
package walltime

import (
	"math/rand"
	"time"
)

func now() time.Time {
	return time.Now() // want "wall-clock time.Now"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock time.Since"
}

func globalStream() int {
	return rand.Intn(6) // want "global math/rand stream"
}

// seeded uses only the sanctioned constructors and a *rand.Rand type
// reference: neither may be flagged.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// tick is time.Duration arithmetic — virtual time is denominated in
// time.Duration throughout the repo, so this must stay quiet.
const tick = 10 * time.Millisecond

func allowedWall() time.Time {
	//lint:allow walltime(fixture: deliberately reports host wall time)
	return time.Now()
}

func emptyReason() time.Time {
	//lint:allow walltime() // want "has no justification"
	return time.Now() // want "wall-clock time.Now"
}
