// Package obsregistry is the obsregistry fixture: a sync/atomic import or a
// new ...Stats struct outside internal/obs must be flagged; non-stats
// structs, test files, and justified escapes must stay quiet.
package obsregistry

import (
	"sync/atomic" // want "sync/atomic outside internal/obs"
)

var counter atomic.Int64

// FooStats is a parallel counter bag the metrics plane cannot see: flagged.
type FooStats struct { // want "struct FooStats outside internal/obs"
	Ops int64
}

// Results is not a stats struct: must stay quiet.
type Results struct {
	Rows []int
}

// LegacyStats predates the registry and survives with a justification.
//
//lint:allow obsregistry(fixture: pre-registry snapshot struct kept for API compatibility)
type LegacyStats struct {
	N int64
}
