package obsregistry

// BenchStats lives in a _test.go file: test-local result carriers are out
// of the rule's scope and must stay quiet.
type BenchStats struct {
	Runs int
}
