// Package nogoroutine is the nogoroutine fixture: raw concurrency in a
// kernel-scoped unit must be flagged; sim-style spawn calls and justified
// escapes must stay quiet.
package nogoroutine

import "sync" // want "import sync in kernel package"

type env struct{}

// Go mimics sim.Env.Go.
func (env) Go(name string, fn func()) { fn() }

// spawn uses the sim-style spawn method: a method named Go is not a go
// statement and must stay quiet.
func spawn(e env) {
	e.Go("worker", func() {})
}

func raw() {
	var mu sync.Mutex
	mu.Lock()
	go func() {}() // want "go statement in kernel package"
	mu.Unlock()
}

func channels(c chan int) { // want "channel type in kernel package"
	c <- 1   // want "channel send in kernel package"
	<-c      // want "channel receive in kernel package"
	select { // want "select in kernel package"
	default:
	}
}

func allowedChan() {
	//lint:allow nogoroutine(fixture: kernel-internal plumbing under test)
	ch := make(chan struct{})
	close(ch)
}
