// exempt.go exercises the whole-file escape: with lint:allow-file in force,
// nothing in this file is reported, however many violations it holds.
package nogoroutine

//lint:allow-file nogoroutine(fixture: this file stands in for the kernel implementation itself)

func kernelGuts(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
	<-done
	select {
	default:
	}
}
