package simvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// SentinelerrAnalyzer enforces sentinel-error discipline. The cluster layer
// classifies retryable vs fatal outcomes by matching exported Err* sentinels
// across RPC boundaries, and wrapping (%w) is how context is attached without
// destroying that classification — so a raw `err == ErrX` comparison or a
// `switch err` over sentinels silently stops matching the moment anyone wraps
// the error. errors.Is is mandatory. In internal/cluster, returning a bare
// errors.New(...) is flagged too: an ad-hoc error cannot be classified by any
// retry policy; use a package sentinel or wrap one with %w.
var SentinelerrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc: "require errors.Is for exported Err* sentinels (no == / switch err) " +
		"and ban unclassifiable errors.New at return sites in internal/cluster",
	Run: runSentinelerr,
}

func runSentinelerr(p *Pass) {
	if !inInternal(p.Path) {
		return
	}
	inCluster := strings.HasSuffix(p.Path, "/internal/cluster") || p.Path == "internal/cluster"
	for _, f := range p.Files {
		imps := fileImports(f)
		testFile := isTestFile(p.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				if v.Op != token.EQL && v.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{v.X, v.Y} {
					if name := sentinelName(side); name != "" {
						p.Reportf(v.Pos(), "%s compared with %s: sentinel comparisons must use errors.Is so wrapped errors still classify", name, v.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if v.Tag == nil {
					return true
				}
				for _, stmt := range v.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(e); name != "" {
							p.Reportf(cc.Pos(), "switch case on sentinel %s compares with ==; use an if/else chain of errors.Is", name)
						}
					}
				}
			case *ast.ReturnStmt:
				if !inCluster || testFile {
					return true
				}
				for _, res := range v.Results {
					call, ok := res.(*ast.CallExpr)
					if !ok {
						continue
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "New" {
						continue
					}
					pkgIdent, ok := sel.X.(*ast.Ident)
					if ok && p.isPkgIdent(imps, pkgIdent, "errors") {
						p.Reportf(call.Pos(), "errors.New at a cluster return site creates an error no retry policy can classify; return a package Err* sentinel or wrap one with fmt.Errorf(\"...: %%w\", ErrX)")
					}
				}
			}
			return true
		})
	}
}

// sentinelName returns the exported Err* sentinel name the expression refers
// to, or "". Matches both local (ErrCorrupt) and qualified (wire.ErrShort)
// references; "Error"-style names (lowercase after Err) do not match.
func sentinelName(e ast.Expr) string {
	var name string
	switch v := e.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	default:
		return ""
	}
	if len(name) > 3 && strings.HasPrefix(name, "Err") &&
		name[3] >= 'A' && name[3] <= 'Z' {
		return name
	}
	return ""
}
