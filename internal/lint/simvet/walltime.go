package simvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// WalltimeAnalyzer bans wall-clock reads and the global math/rand stream in
// internal/ packages. Everything under the simulator must derive time from
// the sim clock (sim.Env.Now) and randomness from an explicitly seeded
// source, or byte-identical runs per seed are gone.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "ban time.Now/Since/Sleep/After/Tick and the global math/rand " +
		"stream in internal packages: sim code takes time from the sim " +
		"clock and randomness from seeded sources",
	Run: runWalltime,
}

// wallFuncs are the time functions that read or wait on the real clock.
// time.Duration and the time constants stay available: virtual time is
// denominated in time.Duration throughout the repo.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors build isolated, explicitly seeded generators and are the
// one sanctioned use of math/rand; everything else on the package selector
// is the shared global stream, whose sequence depends on every other caller.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// randTypes are math/rand type names: a `*rand.Rand` annotation references
// the package but not the global stream. The typed path recognizes any
// TypeName; this set is the syntactic fallback.
var randTypes = map[string]bool{
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	"PCG": true, "ChaCha8": true,
}

func runWalltime(p *Pass) {
	if !inInternal(p.Path) {
		return
	}
	for _, f := range p.Files {
		imps := fileImports(f)
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "time", "math/rand", "math/rand/v2":
					p.Reportf(imp.Pos(), "dot-import of %s in sim code hides wall-clock and global-rand calls from review", strings.Trim(imp.Path.Value, `"`))
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case p.isPkgIdent(imps, ident, "time") && wallFuncs[sel.Sel.Name]:
				p.Reportf(sel.Pos(), "wall-clock %s.%s in sim code: derive time from the sim clock (sim.Env.Now / Proc.Sleep)", ident.Name, sel.Sel.Name)
			case p.isPkgIdent(imps, ident, "math/rand", "math/rand/v2") &&
				!randConstructors[sel.Sel.Name] && !p.isTypeRef(sel):
				p.Reportf(sel.Pos(), "global math/rand stream (%s.%s) in sim code: use an explicitly seeded rand.New(rand.NewSource(seed))", ident.Name, sel.Sel.Name)
			}
			return true
		})
	}
}

// isTypeRef reports whether sel names a type (e.g. *rand.Rand in a field
// declaration) rather than a function or variable of the package.
func (p *Pass) isTypeRef(sel *ast.SelectorExpr) bool {
	if p.Info != nil {
		if obj, ok := p.Info.Uses[sel.Sel]; ok {
			_, isType := obj.(*types.TypeName)
			return isType
		}
	}
	return randTypes[sel.Sel.Name]
}
