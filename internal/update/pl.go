package update

import (
	"sort"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// pl is Parity Logging [Stodolsky et al., ISCA'93]: the data block is
// updated in place (read-modify-write), and the resulting parity deltas are
// appended sequentially to a parity log on each parity OSD. Recycling is
// lazy — deferred until the log exceeds a space threshold (or a drain) —
// which keeps the update path fast but leaves a large merge debt that hurts
// recovery (paper §2.2, §2.3.2).
type pl struct {
	base
	o Options

	logZone   int
	logCursor int64
	// records per parity block, in arrival order (PL does not merge).
	records  map[wire.BlockID][]plRec
	logBytes int64
	peak     int64
	draining bool
	recycles int64
}

type plRec struct {
	off   int64
	delta []byte
	// pos is the record's location in the on-disk log (recycle reads it
	// back with random I/O — PL's recycle inefficiency, §2.2).
	pos int64
}

func newPL(h Host, o Options) *pl {
	return &pl{
		base:    newBase(h),
		o:       o,
		logZone: h.Store().Device().NewZone("pl-log", true),
		records: make(map[wire.BlockID][]plRec),
	}
}

// Name returns "pl".
func (*pl) Name() string { return "pl" }

// Update overwrites the data block in place and appends the parity
// deltas to each parity OSD's log in parallel.
func (e *pl) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e.lockBlock(p, blk)
	delta, err := e.readModifyWrite(p, blk, off, data)
	e.unlockBlock(blk)
	if err != nil {
		return err
	}
	s := blk.StripeID()
	osds := e.h.Placement(s)
	k, m := e.h.Code().K, e.h.Code().M
	// Parallel append of the parity delta to each parity OSD's log.
	return e.fanout(p, m, func(hp *sim.Proc, j int) error {
		pd := mulDelta(e.h.Code(), j, int(blk.Index), delta)
		req := &wire.DeltaAppend{
			Blk: blk, ParityIdx: uint16(j), Off: off, Data: pd,
			Kind: wire.KindParityDelta, Sum: wire.Checksum(pd),
		}
		return e.callAck(hp, osds[k+j], req)
	})
}

// Handle appends incoming parity deltas to the local log, recycling when
// the space threshold is crossed.
func (e *pl) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	da, ok := m.(*wire.DeltaAppend)
	if !ok {
		return nil, false
	}
	pblk := e.parityBlock(da.Blk.StripeID(), int(da.ParityIdx))
	// Sequential append to the local parity log (memory + SSD).
	pos := e.logCursor % (2 * e.o.RecycleThreshold)
	e.logCursor += int64(len(da.Data)) + 24
	fin := e.logSpan(p, "log:append:pl")
	e.h.Store().Device().Write(p, e.logZone, pos, int64(len(da.Data))+24, false)
	fin()
	e.records[pblk] = append(e.records[pblk], plRec{off: da.Off, delta: append([]byte(nil), da.Data...), pos: pos})
	e.logBytes += int64(len(da.Data))
	if e.logBytes > e.peak {
		e.peak = e.logBytes
	}
	if e.logBytes >= e.o.RecycleThreshold && !e.draining {
		e.recycleAll(p)
	}
	return wire.OK, true
}

// recycleAll merges every pending parity delta into its parity block. Each
// record costs a random read of the on-disk log plus a read-modify-write of
// the parity region.
func (e *pl) recycleAll(p *sim.Proc) {
	e.draining = true
	defer func() { e.draining = false }()
	blks := make([]wire.BlockID, 0, len(e.records))
	for b := range e.records {
		blks = append(blks, b)
	}
	sort.Slice(blks, func(i, j int) bool { return less(blks[i], blks[j]) })
	dev := e.h.Store().Device()
	for _, blk := range blks {
		recs := e.records[blk]
		delete(e.records, blk)
		// PL keeps no merging index: every record costs a random read of
		// the on-disk log plus an individual parity RMW — the recycle
		// inefficiency the paper attributes to PL (§2.2).
		for _, r := range recs {
			dev.Read(p, e.logZone, r.pos, int64(len(r.delta))+24)
			e.logBytes -= int64(len(r.delta))
			if err := e.applyParityDelta(p, blk, r.off, r.delta); err != nil {
				// Parity blocks always exist for preloaded stripes; surface
				// loudly in tests.
				panic("pl: recycle: " + err.Error())
			}
			e.recycles++
		}
	}
	e.logCursor = 0
}

// Read serves straight from the block store (data blocks are in place).
func (e *pl) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return e.read(p, blk, off, size)
}

// Drain merges every pending parity delta into its parity block.
func (e *pl) Drain(p *sim.Proc) error {
	e.recycleAll(p)
	return nil
}

// Settle is Drain: PL's lazy parity log must merge before the raw stripe is
// consistent, which is exactly the recovery debt the paper charges it with.
func (e *pl) Settle(p *sim.Proc, _ wire.NodeID) error { return e.Drain(p) }

// NeedsSettle reports whether unmerged parity deltas remain.
func (e *pl) NeedsSettle(wire.NodeID) bool { return e.Dirty() }

// Dirty reports whether unmerged parity deltas remain.
func (e *pl) Dirty() bool { return len(e.records) > 0 }

// MemBytes returns the in-memory parity-log footprint.
func (e *pl) MemBytes() int64 { return e.logBytes }

// PeakMemBytes returns the high-water parity-log footprint.
func (e *pl) PeakMemBytes() int64 { return e.peak }

func less(a, b wire.BlockID) bool {
	if a.Ino != b.Ino {
		return a.Ino < b.Ino
	}
	if a.Stripe != b.Stripe {
		return a.Stripe < b.Stripe
	}
	return a.Index < b.Index
}
