// Package update implements the six erasure-code update schemes evaluated in
// the TSUE paper (§2.2, §5): FO (full overwrite), PL (parity logging), PLR
// (parity logging with reserved space), PARIX (speculative partial writes),
// CoRD (combined raid/delta collection), and TSUE itself (two-stage update
// with the three-layer log). All engines run against the same OSD substrate
// — block store, device model, RPC fabric — mirroring the paper's
// methodology of implementing every scheme inside one file system (ECFS).
package update

import (
	"fmt"
	"time"

	"tsue/internal/blockstore"
	"tsue/internal/obs"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// Host is the OSD-side environment an engine runs in.
type Host interface {
	// NodeID is this OSD's identity.
	NodeID() wire.NodeID
	// Env is the simulation environment (for background recycle processes).
	Env() *sim.Env
	// Store is this OSD's block store.
	Store() *blockstore.Store
	// Code is the cluster's RS code.
	Code() *rs.Code
	// Placement returns the K+M OSDs of a stripe; element i hosts block i.
	Placement(s wire.StripeID) []wire.NodeID
	// Peers returns all OSD node IDs in ring order (includes this node).
	Peers() []wire.NodeID
	// Alive reports whether a peer is reachable (replica target selection).
	Alive(id wire.NodeID) bool
	// Call performs an RPC to a peer OSD.
	Call(p *sim.Proc, to wire.NodeID, req wire.Msg) (wire.Msg, error)
}

// TraceHost is optionally implemented by hosts that expose the cluster's
// trace plane; background engine work (TSUE recycle passes) starts its own
// root spans on it. Hosts without it (unit-test fakes) stay untraced.
type TraceHost interface {
	Tracer() *obs.Tracer
}

// tracerOf returns h's tracer when it has one; a nil tracer is a valid
// disabled tracer (every obs entry point no-ops on it).
func tracerOf(h Host) *obs.Tracer {
	if th, ok := h.(TraceHost); ok {
		return th.Tracer()
	}
	return nil
}

// Engine is one update scheme running on one OSD.
type Engine interface {
	// Name returns the scheme name ("fo", "pl", ...).
	Name() string
	// Update applies a client update to a data block this OSD hosts. It
	// returns once the scheme's synchronous phase is durable.
	Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error
	// Handle processes a scheme-internal peer message; handled=false means
	// the message is not for this engine.
	Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (resp wire.Msg, handled bool)
	// Read returns [off, off+size) of a block with the scheme's read-path
	// semantics (TSUE consults its log read cache).
	Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error)
	// Drain flushes all local log state to quiescence (recovery precondition
	// and scrub barrier). Cluster-wide drains repeat per-OSD drains until a
	// full round is clean, since recycling forwards work downstream.
	Drain(p *sim.Proc) error
	// Settle brings the raw block stores this engine touches back to stripe
	// consistency with the minimum merging: any log whose effects are
	// partially applied (delta/parity pipelines, lazy parity logs) must
	// merge, but pure-overlay state that recovery can replay from replicas —
	// TSUE's active DataLog units — may be kept, EXCEPT state touching the
	// failed node's stripes: reconstruction reads those stripes' raw shards
	// during the degraded window, so any retained overlay item for them
	// would race the rebuild when its unit later seals and recycles
	// (failed == 0 means no node is down and pure overlay may stay). For
	// every in-place scheme Settle is simply Drain; the gap between the two
	// is TSUE's §4.2 log-reliability advantage during recovery.
	Settle(p *sim.Proc, failed wire.NodeID) error
	// NeedsSettle reports whether Settle still has work to do under the
	// same liveness view (the cluster-wide settle barrier repeats per-OSD
	// settles until a full round is clean, like DrainAll).
	NeedsSettle(failed wire.NodeID) bool
	// Dirty reports whether the engine still holds unrecycled state.
	Dirty() bool
	// MemBytes is the engine's current log memory footprint.
	MemBytes() int64
	// PeakMemBytes is the high-water mark of MemBytes.
	PeakMemBytes() int64
}

// Options configures engines; zero values are replaced by defaults.
type Options struct {
	// UnitSize is the TSUE/CoRD log unit size (paper: 16 MiB).
	UnitSize int64
	// MaxUnits is the per-pool unit quota (paper default: 4; Fig. 6 sweeps it).
	MaxUnits int
	// Pools is the number of log pools per log structure per device
	// (paper: 4 on SSD; O4 ablates to 1).
	Pools int
	// Copies is the DataLog replication factor including the primary
	// (paper: 2 on SSD, 3 on HDD).
	Copies int
	// UseDeltaLog enables TSUE's middle log layer (O5; disabled on HDD §5.4).
	UseDeltaLog bool
	// DataLocality / ParityLocality enable two-level-index merging in the
	// DataLog / ParityLog (O1 / O2).
	DataLocality   bool
	ParityLocality bool
	// UseLogPool enables the FIFO log pool (O3). When false, each log
	// structure degrades to a single exclusive log: appends stall while a
	// recycle is in progress.
	UseLogPool bool
	// RecycleBatch is the maximum number of sealed log units one TSUE
	// per-pool recycler drains in a single pass. Units of one batch merge
	// their extents before the read-modify-write, so updates repeated
	// across units collapse before costing device or network work. 1
	// disables batching (the paper's behavior).
	RecycleBatch int
	// CodecWorkers bounds the rs codec worker pool used to stripe encode,
	// reconstruct and delta folds over large shards (0 = GOMAXPROCS).
	// Applied process-globally when an engine is constructed.
	CodecWorkers int
	// RecycleThreshold is the lazy-recycle trigger for PL and PARIX parity
	// logs (bytes per OSD).
	RecycleThreshold int64
	// PLRReserve is the reserved log space adjacent to each parity block.
	PLRReserve int64
	// CordBufferSize is CoRD's fixed collector buffer log size.
	CordBufferSize int64
}

// DefaultOptions returns the paper's SSD-cluster configuration.
func DefaultOptions() Options {
	return Options{
		UnitSize:         16 << 20,
		MaxUnits:         4,
		Pools:            4,
		Copies:           2,
		UseDeltaLog:      true,
		DataLocality:     true,
		ParityLocality:   true,
		UseLogPool:       true,
		RecycleBatch:     4,
		RecycleThreshold: 8 << 20,
		PLRReserve:       64 << 10,
		CordBufferSize:   4 << 20,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.UnitSize == 0 {
		o.UnitSize = d.UnitSize
	}
	if o.MaxUnits == 0 {
		o.MaxUnits = d.MaxUnits
	}
	if o.Pools == 0 {
		o.Pools = d.Pools
	}
	if o.Copies == 0 {
		o.Copies = d.Copies
	}
	if o.RecycleBatch == 0 {
		o.RecycleBatch = d.RecycleBatch
	}
	if o.RecycleBatch < 1 {
		o.RecycleBatch = 1
	}
	if o.RecycleThreshold == 0 {
		o.RecycleThreshold = d.RecycleThreshold
	}
	if o.PLRReserve == 0 {
		o.PLRReserve = d.PLRReserve
	}
	if o.CordBufferSize == 0 {
		o.CordBufferSize = d.CordBufferSize
	}
	return o
}

// New constructs the named engine on host h.
func New(name string, h Host, o Options) (Engine, error) {
	o = o.withDefaults()
	// Applied unconditionally so a run with CodecWorkers=0 really gets the
	// documented GOMAXPROCS default rather than a bound left behind by an
	// earlier run in the same process.
	rs.SetWorkers(o.CodecWorkers)
	switch name {
	case "fo":
		return newFO(h), nil
	case "pl":
		return newPL(h, o), nil
	case "plr":
		return newPLR(h, o), nil
	case "parix":
		return newParix(h, o), nil
	case "cord":
		return newCord(h, o), nil
	case "tsue":
		return newTsue(h, o), nil
	default:
		return nil, fmt.Errorf("update: unknown engine %q", name)
	}
}

// Names lists the available engines in the paper's comparison order.
func Names() []string { return []string{"fo", "pl", "plr", "parix", "cord", "tsue"} }

// base carries shared plumbing.
type base struct {
	h     Host
	locks map[wire.BlockID]*sim.Resource
}

func newBase(h Host) base {
	return base{h: h, locks: make(map[wire.BlockID]*sim.Resource)}
}

// lockBlock serializes read-modify-write update paths per block (the paper's
// block-level locking, §4).
func (b *base) lockBlock(p *sim.Proc, blk wire.BlockID) {
	l, ok := b.locks[blk]
	if !ok {
		l = b.h.Env().NewResource("blklock", 1)
		b.locks[blk] = l
	}
	l.Acquire(p)
}

func (b *base) unlockBlock(blk wire.BlockID) { b.locks[blk].Release() }

// parityBlock returns the BlockID of parity j of the stripe.
func (b *base) parityBlock(s wire.StripeID, j int) wire.BlockID {
	return wire.BlockID{Ino: s.Ino, Stripe: s.Stripe, Index: uint16(b.h.Code().K + j)}
}

// readModifyWrite performs the in-place data-block update shared by FO, PL,
// PLR and CoRD: read the old range (random read), overwrite with the new
// data (random write), and return the data delta (Equation (2)).
func (b *base) readModifyWrite(p *sim.Proc, blk wire.BlockID, off int64, data []byte) ([]byte, error) {
	old, err := b.h.Store().ReadRange(p, blk, off, int64(len(data)))
	if err != nil {
		return nil, err
	}
	delta := make([]byte, len(data))
	rs.DataDelta(delta, data, old)
	// Zero-width codec marker: the simulator charges no CPU for the delta
	// computation, but the hop still shows in traces.
	obs.SpanOn(p, obs.StageCodec, "codec:data-delta", b.h.NodeID())()
	if err := b.h.Store().WriteRange(p, blk, off, data); err != nil {
		return nil, err
	}
	return delta, nil
}

// applyParityDelta folds a ready parity delta into the parity block in place
// (random read + random overwrite on the parity OSD). The per-block lock
// makes the read-modify-write atomic: concurrent deltas for one parity block
// commute (XOR) but must not interleave mid-RMW.
func (b *base) applyParityDelta(p *sim.Proc, blk wire.BlockID, off int64, delta []byte) error {
	b.lockBlock(p, blk)
	defer b.unlockBlock(blk)
	cur, err := b.h.Store().ReadRange(p, blk, off, int64(len(delta)))
	if err != nil {
		return err
	}
	rs.ApplyParityDelta(cur, delta)
	obs.SpanOn(p, obs.StageCodec, "codec:parity-fold", b.h.NodeID())()
	return b.h.Store().WriteRange(p, blk, off, cur)
}

// read is the default read path: straight from the block store.
func (b *base) read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return b.h.Store().ReadRange(p, blk, off, size)
}

// callAck performs an RPC and converts a non-empty Ack.Err into an error.
func (b *base) callAck(p *sim.Proc, to wire.NodeID, req wire.Msg) error {
	resp, err := b.h.Call(p, to, req)
	if err != nil {
		return err
	}
	if a, ok := resp.(*wire.Ack); ok && a.Err != "" {
		return fmt.Errorf("%s", a.Err)
	}
	return nil
}

// fanout runs one call per target in parallel and waits for all, returning
// the first error.
func (b *base) fanout(p *sim.Proc, n int, fn func(hp *sim.Proc, i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(p, 0)
	}
	env := b.h.Env()
	wg := sim.NewWaitGroup(env)
	wg.Add(n)
	var firstErr error
	for i := 0; i < n; i++ {
		i := i
		fp := env.Go("fanout", func(hp *sim.Proc) {
			if err := fn(hp, i); err != nil && firstErr == nil {
				firstErr = err
			}
			wg.Done()
		})
		obs.Inherit(fp, p)
	}
	wg.Wait(p)
	return firstErr
}

// logSpan opens a journal-stage span around one engine log append so the
// device write inside is charged to the journal stage of a trace breakdown.
func (b *base) logSpan(p *sim.Proc, name string) func() {
	return obs.SpanOn(p, obs.StageJournal, name, b.h.NodeID())
}

// errAck wraps an error into an Ack response.
func errAck(err error) *wire.Ack {
	if err == nil {
		return wire.OK
	}
	return &wire.Ack{Err: err.Error()}
}

// mulDelta returns coef * delta as a fresh buffer.
func mulDelta(c *rs.Code, parity, dataIdx int, delta []byte) []byte {
	out := make([]byte, len(delta))
	c.ParityDelta(parity, dataIdx, out, delta)
	return out
}

// LayerStats aggregates residency timing for one TSUE log layer (Table 2).
//
//lint:allow obsregistry(pre-registry residency snapshot keyed per layer; Table 2 reproduction consumes it directly)
type LayerStats struct {
	AppendN     int64
	AppendTime  time.Duration
	BufferN     int64
	BufferTime  time.Duration
	RecycleN    int64 // recycled extents
	RecycleTime time.Duration
	Units       int64 // recycled units
}

// MeanAppend returns the mean per-record append latency.
func (l LayerStats) MeanAppend() time.Duration { return meanDur(l.AppendTime, l.AppendN) }

// MeanBuffer returns the mean unit residency between first append and
// recycle start.
func (l LayerStats) MeanBuffer() time.Duration { return meanDur(l.BufferTime, l.BufferN) }

// MeanRecycle returns the mean per-extent recycle processing time.
func (l LayerStats) MeanRecycle() time.Duration { return meanDur(l.RecycleTime, l.RecycleN) }

func meanDur(sum time.Duration, n int64) time.Duration {
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// ResidencyReporter is implemented by TSUE for Table 2.
type ResidencyReporter interface {
	Residency() map[string]LayerStats
}

// Replayer is implemented by engines with a dedicated entry point for
// recovery-replayed records (surrogate-journal and DataLog-replica items).
// TSUE merges replays through its normal two-stage path — DataLog append,
// replication, asynchronous recycle — while tracking them as recovery
// traffic. Engines without the hook take replays through Update.
type Replayer interface {
	ReplayInto(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error
}

// Replay routes one recovered record into eng: through its ReplayInto hook
// when implemented, otherwise through the ordinary update path (correct for
// every in-place scheme, where replaying IS updating).
func Replay(p *sim.Proc, eng Engine, blk wire.BlockID, off int64, data []byte) error {
	if r, ok := eng.(Replayer); ok {
		return r.ReplayInto(p, blk, off, data)
	}
	return eng.Update(p, blk, off, data)
}

// LogMigrator is implemented by engines whose replayable pure-overlay log
// records must follow a block to its new home when placement changes —
// TSUE's active DataLog units, which are neither applied to the raw block
// nor propagated to parity yet. ExtractBlockLog removes and returns blk's
// overlay records (merged extents, offset order); the migration engine
// replays them at the block's new home through the Replay hook and retires
// their reliability replicas cluster-wide (wire.ReplicaRetire), so a later
// failure of the old home cannot resurrect pre-migration state. The caller
// must hold the cluster's update fence and have settled the engine first
// (no sealed units may still reference blk). In-place schemes don't
// implement the interface: for them settling IS draining, and a drained
// block has no log to follow it.
type LogMigrator interface {
	ExtractBlockLog(p *sim.Proc, blk wire.BlockID) []wire.ReplicaItem
}

// StripeResetter is implemented by engines that keep cross-update baseline
// state per stripe which a block remap invalidates. PARIX tracks which
// ranges already shipped their original value; after recovery rebuilds a
// parity block on a fresh OSD, that coverage must be forgotten so the next
// update reships the originals and the new holder can form correct deltas
// against its re-encoded parity baseline (Equation (4)).
type StripeResetter interface {
	ResetStripe(s wire.StripeID)
}
