package update_test

// End-to-end consistency: after a randomized update/recycle/drain workload,
// every stripe of every scheme must re-encode to its stored parity
// (rs.Code.Verify, via cluster.Scrub) and reads must return the reference
// content. Unit sizes are tiny relative to the update volume so units seal
// and recycle constantly, and TSUE runs with RecycleBatch > 1 so the
// batched multi-unit recycler — extent merging across units, the batched
// Equation (5) fold, and the single RMW — is on the hot path throughout.
// The mid-run drains force recycle/append interleavings that a single
// end-of-run drain would never see.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tsue/internal/cluster"
	"tsue/internal/sim"
	"tsue/internal/update"
)

func consistencyConfig(engine string, batch int) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.OSDs = 8
	cfg.K, cfg.M = 4, 2
	cfg.BlockSize = 16 << 10
	cfg.Engine = engine
	cfg.EngineOpts = update.Options{
		UnitSize:         24 << 10,
		MaxUnits:         4,
		Pools:            2,
		Copies:           2,
		UseDeltaLog:      true,
		DataLocality:     true,
		ParityLocality:   true,
		UseLogPool:       true,
		RecycleBatch:     batch,
		RecycleThreshold: 48 << 10,
		PLRReserve:       8 << 10,
		CordBufferSize:   24 << 10,
	}
	return cfg
}

// runWorkload replays ops random updates (with occasional reads and
// mid-run drains) against a fresh cluster and returns the first error; the
// final state is drained, scrubbed and read back against the reference.
func runWorkload(t *testing.T, cfg cluster.Config, seed int64, ops int) {
	t.Helper()
	c := cluster.MustNew(cfg)
	defer c.Env.Close()
	cl := c.NewClient()
	done := false
	c.Env.Go("workload", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(seed))
		fileSize := 3 * c.StripeWidth()
		content := make([]byte, fileSize)
		rng.Read(content)
		ino, err := cl.Create(p, "f", fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if err := cl.WriteFile(p, ino, content); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < ops; i++ {
			switch {
			case rng.Intn(40) == 0:
				// Mid-run drain: flushes every layer while later updates
				// will immediately dirty them again.
				if err := c.DrainAll(p, cl); err != nil {
					t.Errorf("mid-run drain at op %d: %v", i, err)
					return
				}
			case rng.Intn(8) == 0:
				off := int64(rng.Intn(int(fileSize - 512)))
				n := int64(1 + rng.Intn(512))
				got, err := cl.Read(p, ino, off, n)
				if err != nil {
					t.Errorf("read at op %d: %v", i, err)
					return
				}
				if !bytes.Equal(got, content[off:off+n]) {
					t.Errorf("stale read at op %d (off=%d len=%d)", i, off, n)
					return
				}
			default:
				// Zipf-ish offsets: half the updates hammer the first
				// stripe so extents overlap and merge across units.
				limit := int(fileSize - 8192)
				if rng.Intn(2) == 0 {
					limit = int(c.StripeWidth() - 8192)
				}
				off := int64(rng.Intn(limit))
				n := 1 + rng.Intn(8192)
				buf := make([]byte, n)
				rng.Read(buf)
				if err := cl.Update(p, ino, off, buf); err != nil {
					t.Errorf("update %d: %v", i, err)
					return
				}
				copy(content[off:], buf)
			}
		}
		if err := c.DrainAll(p, cl); err != nil {
			t.Error(err)
			return
		}
		n, err := c.Scrub() // rs.Code.Verify on every stripe
		if err != nil {
			t.Errorf("scrub: %v", err)
			return
		}
		if n != 3 {
			t.Errorf("scrubbed %d stripes, want 3", n)
			return
		}
		got, err := cl.Read(p, ino, 0, fileSize)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, content) {
			t.Error("content mismatch after randomized workload")
			return
		}
		done = true
	})
	c.Env.Run(0)
	if !done && !t.Failed() {
		t.Fatal("workload deadlocked")
	}
}

// TestRandomWorkloadConsistencyAllSchemes runs the randomized
// update/recycle/drain workload for each of the six schemes.
func TestRandomWorkloadConsistencyAllSchemes(t *testing.T) {
	for _, engine := range update.Names() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			runWorkload(t, consistencyConfig(engine, 4), 101, 400)
		})
	}
}

// TestTsueRecycleBatchSizes sweeps the recycler batch knob: every batch
// size must leave every stripe verifiable, and the batched paths must agree
// with the unbatched (batch=1, the paper's behavior) baseline.
func TestTsueRecycleBatchSizes(t *testing.T) {
	for _, batch := range []int{1, 2, 3, 8} {
		batch := batch
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			runWorkload(t, consistencyConfig("tsue", batch), 202, 300)
		})
	}
}

// TestTsueBatchedAblations drives the batched recycler through the
// no-locality ablations (raw record logs) and the no-DeltaLog config, whose
// recycle paths differ structurally.
func TestTsueBatchedAblations(t *testing.T) {
	mods := map[string]func(*update.Options){
		"no-data-locality":   func(o *update.Options) { o.DataLocality = false },
		"no-parity-locality": func(o *update.Options) { o.ParityLocality = false },
		"no-delta-log":       func(o *update.Options) { o.UseDeltaLog = false },
		"exclusive-log":      func(o *update.Options) { o.UseLogPool = false },
	}
	for name, mod := range mods {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			cfg := consistencyConfig("tsue", 4)
			mod(&cfg.EngineOpts)
			runWorkload(t, cfg, 303, 250)
		})
	}
}
