package update

import (
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// plr is Parity Logging with Reserved space [Chan et al., FAST'14]: each
// parity block keeps a dedicated log area adjacent to it. Recycling a
// block's reserve is cheap (the deltas sit next to the parity block), but
// because the reserves are scattered across the device, the *appends*
// themselves become random writes, and a full reserve forces a recycle
// inside the update path — both penalties the paper calls out (§2.2) and the
// reason PLR trails every other scheme in Fig. 5.
type plr struct {
	base
	o Options

	zone int
	// metaZone holds the per-reserve append cursors; updating one per
	// append keeps the scattered logs crash-consistent and is itself a
	// small random write.
	metaZone int
	slots    map[wire.BlockID]int64
	next     int64
	logs     map[wire.BlockID]*plrLog
	cond     *sim.Cond
	mem      int64
	peak     int64
}

type plrLog struct {
	fill      int64
	recs      []plRec
	recycling bool
}

func newPLR(h Host, o Options) *plr {
	return &plr{
		base:     newBase(h),
		o:        o,
		zone:     h.Store().Device().NewZone("plr-reserve", true),
		metaZone: h.Store().Device().NewZone("plr-meta", true),
		slots:    make(map[wire.BlockID]int64),
		logs:     make(map[wire.BlockID]*plrLog),
		cond:     sim.NewCond(h.Env()),
	}
}

// Name returns "plr".
func (*plr) Name() string { return "plr" }

func (e *plr) slot(blk wire.BlockID) int64 {
	s, ok := e.slots[blk]
	if !ok {
		s = e.next
		e.next++
		e.slots[blk] = s
	}
	return s
}

// Update overwrites the data block in place and appends the parity
// deltas to each parity block's reserved log space in parallel.
func (e *plr) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e.lockBlock(p, blk)
	delta, err := e.readModifyWrite(p, blk, off, data)
	e.unlockBlock(blk)
	if err != nil {
		return err
	}
	s := blk.StripeID()
	osds := e.h.Placement(s)
	k, m := e.h.Code().K, e.h.Code().M
	return e.fanout(p, m, func(hp *sim.Proc, j int) error {
		pd := mulDelta(e.h.Code(), j, int(blk.Index), delta)
		req := &wire.DeltaAppend{
			Blk: blk, ParityIdx: uint16(j), Off: off, Data: pd,
			Kind: wire.KindParityDelta, Sum: wire.Checksum(pd),
		}
		return e.callAck(hp, osds[k+j], req)
	})
}

// Handle appends incoming parity deltas into the block's reserve,
// recycling inline when the reserve fills (the update-path stall).
func (e *plr) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	da, ok := m.(*wire.DeltaAppend)
	if !ok {
		return nil, false
	}
	pblk := e.parityBlock(da.Blk.StripeID(), int(da.ParityIdx))
	lg, okL := e.logs[pblk]
	if !okL {
		lg = &plrLog{}
		e.logs[pblk] = lg
	}
	need := int64(len(da.Data)) + 24
	// Appends to a reserve share its physical space with the in-flight
	// recycle, so they stall until it finishes — the paper's point that
	// PLR's "performance of log appending is limited by the log recycling
	// process".
	for lg.recycling {
		e.cond.Wait(p)
	}
	if lg.fill+need > e.o.PLRReserve {
		// Reserve full: recycle inline — this is the update-path stall.
		e.recycleBlock(p, pblk, lg)
	}
	// Append into this block's reserve. Reserves of different parity blocks
	// interleave on the device, so the write lands as random I/O; locating
	// the reserve's append cursor first costs a random read of its header
	// (scattered small logs defeat any sequential append stream — the
	// paper's "log appending operations resemble random writes").
	base := e.slot(pblk) * e.o.PLRReserve
	fin := e.logSpan(p, "log:append:plr")
	e.h.Store().Device().Write(p, e.zone, base+lg.fill, need, false)
	e.h.Store().Device().Write(p, e.metaZone, e.slot(pblk)*512, 512, true)
	fin()
	lg.recs = append(lg.recs, plRec{off: da.Off, delta: append([]byte(nil), da.Data...), pos: base + lg.fill})
	lg.fill += need
	e.mem += int64(len(da.Data))
	if e.mem > e.peak {
		e.peak = e.mem
	}
	return wire.OK, true
}

// recycleBlock merges one parity block's reserve into the parity block.
// The reserve is adjacent to the block, so it reads back as one sequential
// read, and the parity RMW covers the merged extents only.
func (e *plr) recycleBlock(p *sim.Proc, pblk wire.BlockID, lg *plrLog) {
	if len(lg.recs) == 0 {
		return
	}
	// Steal the pending records up front: the parity RMWs below block, and
	// concurrent appends to this reserve must land in a fresh list rather
	// than be silently dropped when we reset it.
	recs := lg.recs
	fill := lg.fill
	lg.recs = nil
	lg.fill = 0
	lg.recycling = true
	defer func() {
		lg.recycling = false
		e.cond.Broadcast()
	}()
	dev := e.h.Store().Device()
	base := e.slot(pblk) * e.o.PLRReserve
	// The reserve sits adjacent to the parity block, so reading it back is
	// one cheap sequential read (PLR's recycle advantage over PL)...
	dev.Read(p, e.zone, base, fill)
	// ...but without a merging index, every record is applied to the parity
	// region individually (no locality exploitation — §2.2).
	for _, r := range recs {
		e.mem -= int64(len(r.delta))
		if err := e.applyParityDelta(p, pblk, r.off, r.delta); err != nil {
			panic("plr: recycle: " + err.Error())
		}
	}
}

// Read serves straight from the block store (data blocks are in place).
func (e *plr) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return e.read(p, blk, off, size)
}

// Drain merges every parity block's reserve into the parity block.
func (e *plr) Drain(p *sim.Proc) error {
	blks := make([]wire.BlockID, 0, len(e.logs))
	for b := range e.logs {
		blks = append(blks, b)
	}
	sortBlocks(blks)
	for _, b := range blks {
		e.recycleBlock(p, b, e.logs[b])
	}
	return nil
}

// Settle is Drain: reserved-space logs must merge before raw stripes are
// consistent.
func (e *plr) Settle(p *sim.Proc, _ wire.NodeID) error { return e.Drain(p) }

// NeedsSettle reports whether any reserve still holds unmerged deltas.
func (e *plr) NeedsSettle(wire.NodeID) bool { return e.Dirty() }

// Dirty reports whether any reserve still holds unmerged deltas.
func (e *plr) Dirty() bool {
	for _, lg := range e.logs {
		if len(lg.recs) > 0 {
			return true
		}
	}
	return false
}

// MemBytes returns the in-memory reserve footprint.
func (e *plr) MemBytes() int64 { return e.mem }

// PeakMemBytes returns the high-water reserve footprint.
func (e *plr) PeakMemBytes() int64 { return e.peak }

func sortBlocks(b []wire.BlockID) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && less(b[j], b[j-1]); j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}
