package update

import (
	"tsue/internal/logpool"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// parix is PARIX [Li et al., ATC'17]: speculative partial writes. The data
// OSD overwrites the data block in place *without* the read-before-write and
// forwards the new data to every parity OSD's log. Only the first overwrite
// of a location must read and ship the original value (so the parity side
// can later form the delta D_n - D_0, Equation (4)) — that first write pays
// roughly twice the network cost, the penalty the paper highlights for
// low-temporal-locality workloads. Parity logs recycle lazily.
type parix struct {
	base
	o Options

	logZone   int
	logCursor int64
	// sent tracks which ranges of each local data block already shipped
	// their original value (reset never: the parity side retains origs).
	sent map[wire.BlockID]*logpool.BlockLog
	// parity-side state: per data block, the first-known original value and
	// the latest speculative value for each updated range.
	orig   map[wire.BlockID]*logpool.BlockLog
	latest map[wire.BlockID]*logpool.BlockLog
	// parityFor maps a data block to the parity index this OSD holds for it.
	parityFor map[wire.BlockID]uint16
	readPos   int64
	mem       int64
	peak      int64
	draining  bool
}

func newParix(h Host, o Options) *parix {
	return &parix{
		base:      newBase(h),
		o:         o,
		logZone:   h.Store().Device().NewZone("parix-log", true),
		sent:      make(map[wire.BlockID]*logpool.BlockLog),
		orig:      make(map[wire.BlockID]*logpool.BlockLog),
		latest:    make(map[wire.BlockID]*logpool.BlockLog),
		parityFor: make(map[wire.BlockID]uint16),
	}
}

// Name returns "parix".
func (*parix) Name() string { return "parix" }

// Update overwrites the data block speculatively (no read-before-write)
// and ships the new data — plus, on first overwrite, the original — to
// every parity OSD's log.
func (e *parix) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e.lockBlock(p, blk)
	sent, ok := e.sent[blk]
	if !ok {
		sent = &logpool.BlockLog{}
		e.sent[blk] = sent
	}
	end := off + int64(len(data))
	var orig []byte
	if gaps := sent.Gaps(off, end); len(gaps) > 0 {
		// First overwrite of (part of) this range: read the original value
		// before clobbering it, to ship alongside the new data.
		var err error
		orig, err = e.h.Store().ReadRange(p, blk, off, int64(len(data)))
		if err != nil {
			e.unlockBlock(blk)
			return err
		}
		sent.Insert(off, make([]byte, len(data)), logpool.Overwrite)
	}
	// Speculative in-place overwrite — no read on the hot path.
	if err := e.h.Store().WriteRange(p, blk, off, data); err != nil {
		e.unlockBlock(blk)
		return err
	}
	// The lock is held through the log appends: the parity-side "latest"
	// record is order-sensitive, so per-block update order must match the
	// in-place write order.
	defer e.unlockBlock(blk)
	s := blk.StripeID()
	osds := e.h.Placement(s)
	k, m := e.h.Code().K, e.h.Code().M
	// First overwrite of a location costs an extra full round shipping the
	// original value — PARIX's 2x network latency for requests without
	// temporal locality (paper Fig. 1, §2.2). It runs before the
	// speculative round so the parity log never holds new data whose
	// baseline is still in flight.
	if orig != nil {
		if err := e.fanout(p, m, func(hp *sim.Proc, j int) error {
			req := &wire.ParixAppend{Blk: blk, ParityIdx: uint16(j), Off: off, New: nil, Orig: orig, Sum: wire.ChecksumPair(nil, orig)}
			return e.callAck(hp, osds[k+j], req)
		}); err != nil {
			return err
		}
	}
	// Speculative phase: ship only the new data.
	return e.fanout(p, m, func(hp *sim.Proc, j int) error {
		req := &wire.ParixAppend{Blk: blk, ParityIdx: uint16(j), Off: off, New: data, Sum: wire.ChecksumPair(data, nil)}
		return e.callAck(hp, osds[k+j], req)
	})
}

// Handle appends incoming speculative records (new data and first-write
// originals) to the local parity-side log.
func (e *parix) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	pa, ok := m.(*wire.ParixAppend)
	if !ok {
		return nil, false
	}
	// Sequential append of the record to the local parity log.
	n := int64(len(pa.New)+len(pa.Orig)) + 32
	fin := e.logSpan(p, "log:append:parix")
	e.h.Store().Device().Write(p, e.logZone, e.logCursor%(2*e.o.RecycleThreshold), n, false)
	fin()
	e.logCursor += n

	lat, ok := e.latest[pa.Blk]
	if !ok {
		lat = &logpool.BlockLog{}
		e.latest[pa.Blk] = lat
		e.parityFor[pa.Blk] = pa.ParityIdx
	}
	lat.Insert(pa.Off, pa.New, logpool.Overwrite)
	if len(pa.Orig) > 0 {
		og, ok := e.orig[pa.Blk]
		if !ok {
			og = &logpool.BlockLog{}
			e.orig[pa.Blk] = og
		}
		// First value wins: fill only the uncovered gaps.
		end := pa.Off + int64(len(pa.Orig))
		for _, g := range og.Gaps(pa.Off, end) {
			og.Insert(g[0], pa.Orig[g[0]-pa.Off:g[1]-pa.Off], logpool.Overwrite)
		}
	}
	e.mem = e.memBytes()
	if e.mem > e.peak {
		e.peak = e.mem
	}
	if e.mem >= e.o.RecycleThreshold && !e.draining {
		e.recycleAll(p)
	}
	return wire.OK, true
}

func (e *parix) memBytes() int64 {
	var n int64
	for _, b := range e.latest {
		//lint:allow maporder(BlockLog.Bytes is a pure size accessor; the integer sum commutes)
		n += b.Bytes()
	}
	for _, b := range e.orig {
		//lint:allow maporder(BlockLog.Bytes is a pure size accessor; the integer sum commutes)
		n += b.Bytes()
	}
	return n
}

// recycleAll folds every speculative record into the parity block:
// delta = latest XOR orig, parity ^= coef * delta (Equation (4)). Afterwards
// the origs are advanced to the applied values so later updates delta
// against the new baseline.
func (e *parix) recycleAll(p *sim.Proc) {
	e.draining = true
	defer func() { e.draining = false }()
	// Steal the pending speculative records: the parity RMWs below block,
	// and concurrently arriving appends must accumulate in a fresh map for
	// the next recycle round instead of being dropped.
	work := e.latest
	e.latest = make(map[wire.BlockID]*logpool.BlockLog)
	blks := make([]wire.BlockID, 0, len(work))
	for b := range work {
		blks = append(blks, b)
	}
	sortBlocks(blks)
	dev := e.h.Store().Device()
	for _, blk := range blks {
		lat := work[blk]
		og := e.orig[blk]
		if og == nil {
			// Grey failure: the data OSD shipped this block's first-write
			// orig round, a fault (node flap, dropped ack) failed the
			// fan-out, and the client's retry found the range already
			// marked sent — so only New records ever arrived here. The
			// baseline is unrecoverable and the stripe is torn no matter
			// what we fold (the other parities saw different history), so
			// recycle against an empty baseline instead of crashing and
			// leave consistency to the scrub/repair pass that owns torn
			// stripes.
			og = &logpool.BlockLog{}
			e.orig[blk] = og
		}
		j := int(e.parityFor[blk])
		pblk := e.parityBlock(blk.StripeID(), j)
		for _, ext := range lat.Extents() {
			// Random read of the log area holding this record pair (records
			// for one block are scattered through the arrival-ordered log).
			e.readPos = (e.readPos + 1237*4096) % (e.logCursor + 1)
			dev.Read(p, e.logZone, e.readPos, int64(len(ext.Data))*2)
			ov := make([]byte, len(ext.Data))
			og.Overlay(ext.Off, ov)
			delta := make([]byte, len(ext.Data))
			for i := range delta {
				delta[i] = ext.Data[i] ^ ov[i]
			}
			pd := mulDelta(e.h.Code(), j, int(blk.Index), delta)
			if err := e.applyParityDelta(p, pblk, ext.Off, pd); err != nil {
				panic("parix: recycle: " + err.Error())
			}
			// Advance the baseline: orig := latest for this range.
			og.Insert(ext.Off, ext.Data, logpool.Overwrite)
		}
	}
	e.logCursor = 0
	e.mem = e.memBytes()
}

// Read serves straight from the block store (data blocks are in place).
func (e *parix) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return e.read(p, blk, off, size)
}

// Drain folds every pending speculative record into its parity block.
func (e *parix) Drain(p *sim.Proc) error {
	e.recycleAll(p)
	return nil
}

// Settle is Drain: speculative logs must fold before raw stripes are
// consistent (and folding advances the orig baselines, keeping them valid
// against the settled parity).
func (e *parix) Settle(p *sim.Proc, _ wire.NodeID) error { return e.Drain(p) }

// NeedsSettle reports whether unfolded speculative records remain.
func (e *parix) NeedsSettle(wire.NodeID) bool { return e.Dirty() }

// Dirty reports whether unfolded speculative records remain.
func (e *parix) Dirty() bool { return len(e.latest) > 0 }

// MemBytes returns the in-memory speculative-log footprint.
func (e *parix) MemBytes() int64 { return e.mem }

// PeakMemBytes returns the high-water speculative-log footprint.
func (e *parix) PeakMemBytes() int64 { return e.peak }

// ResetStripe forgets the data-side "original already shipped" coverage for
// every block of s. Recovery calls it on the stripe's data holders after a
// parity block is rebuilt on a fresh OSD: the new holder has no orig
// baselines, so the next update of each range must reship the original
// value (which existing holders ignore — their first-value-wins gap fill
// keeps the older baseline). Parity-side state is intentionally kept: live
// holders' baselines remain valid against their settled parity blocks.
func (e *parix) ResetStripe(s wire.StripeID) {
	for blk := range e.sent {
		//lint:allow maporder(BlockID.StripeID is a pure field projection; delete-by-predicate removes the same set in any order)
		if blk.StripeID() == s {
			delete(e.sent, blk)
		}
	}
}

var _ StripeResetter = (*parix)(nil)
