package update

import (
	"fmt"

	"tsue/internal/logpool"
	"tsue/internal/obs"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// tsue is the paper's contribution: a two-stage update scheme.
//
// Front end (synchronous): an update is appended to the local DataLog
// (memory index + sequential SSD persist) and replicated to the next OSD's
// DataLog copy, then acked — no read-modify-write on the update path.
//
// Back end (asynchronous, real-time): per-pool recyclers drain sealed log
// units — up to Options.RecycleBatch per pass, merging extents across the
// batch so repeated updates collapse before any device or network work —
// through the three-layer pipeline:
//
//	DataLog  — merged extents are RMW'd into the data block; the data deltas
//	           forward to the DeltaLog on the first parity holder (copy to
//	           the second).
//	DeltaLog — deltas of one stripe fold into per-parity-block staged deltas
//	           (Equation (5)) and ship to each parity holder's ParityLog.
//	ParityLog— merged parity deltas XOR into the parity block in place.
//
// Every layer uses the FIFO log-pool structure with the two-level index, so
// repeated and adjacent updates collapse before they cost device or network
// work. Retained recycled units double as a read cache.
type tsue struct {
	base
	o Options

	data   *tsueLayer
	delta  *tsueLayer
	parity *tsueLayer

	// Replica store: unrecycled DataLog items held for peers, by source
	// node and pool; dropped on UnitDone; replayed at recovery.
	replicaZone   int
	replicaCursor int64
	replicas      map[replicaKey][]replicaItem

	// Recovery replays merged through ReplayInto (reported as the "replay"
	// residency layer).
	replayN     int64
	replayBytes int64

	idle *sim.Cond // broadcast after every unit recycle (drain support)
}

type replicaKey struct {
	src  wire.NodeID
	pool uint16
}

type replicaItem struct {
	unitSeq uint64
	blk     wire.BlockID
	off     int64
	data    []byte
}

// tsueLayer is one log structure (DataLog, DeltaLog or ParityLog) on one OSD.
type tsueLayer struct {
	name      string
	pools     []*logpool.Pool
	zones     []int
	cursors   []int64
	queues    []*sim.Queue[*logpool.Unit]
	cond      *sim.Cond // unit recycled: stalled appenders retry
	exclusive bool      // pre-O3 baseline: recycle blocks appends
	recycling int
	stats     LayerStats
}

func newTsueLayer(h Host, name string, mode logpool.MergeMode, o Options, pools int, noMerge bool) *tsueLayer {
	l := &tsueLayer{
		name:      name,
		cond:      sim.NewCond(h.Env()),
		exclusive: !o.UseLogPool,
	}
	maxUnits := o.MaxUnits
	if !o.UseLogPool {
		// Single exclusive log: a second unit only exists so appends have
		// somewhere to land once the recycle finishes.
		maxUnits = 2
	}
	for i := 0; i < pools; i++ {
		pool := logpool.NewPool(i, mode, o.UnitSize, maxUnits)
		pool.NoMerge = noMerge
		l.pools = append(l.pools, pool)
		l.zones = append(l.zones, h.Store().Device().NewZone(fmt.Sprintf("tsue-%s-%d", name, i), true))
		l.cursors = append(l.cursors, 0)
		l.queues = append(l.queues, sim.NewQueue[*logpool.Unit](h.Env()))
	}
	return l
}

func (l *tsueLayer) poolFor(key uint64) int { return int(key % uint64(len(l.pools))) }

func (l *tsueLayer) memBytes() int64 {
	var n int64
	for _, p := range l.pools {
		n += p.Stats().MemBytes
	}
	return n
}

func (l *tsueLayer) peakBytes() int64 {
	var n int64
	for _, p := range l.pools {
		n += p.Stats().PeakMemBytes
	}
	return n
}

func (l *tsueLayer) pending() bool {
	for _, p := range l.pools {
		if p.Pending() {
			return true
		}
	}
	return false
}

func (l *tsueLayer) pendingSealed() bool {
	for _, p := range l.pools {
		if p.PendingSealed() {
			return true
		}
	}
	return false
}

func hashBlk(b wire.BlockID) uint64 {
	h := b.Ino*0x9e3779b97f4a7c15 + uint64(b.Stripe)*0x85ebca6b + uint64(b.Index)*0xc2b2ae35
	h ^= h >> 33
	return h
}

func hashStripe(s wire.StripeID) uint64 {
	h := s.Ino*0x9e3779b97f4a7c15 + uint64(s.Stripe)*0x85ebca6b
	h ^= h >> 33
	return h
}

func newTsue(h Host, o Options) *tsue {
	t := &tsue{
		base:        newBase(h),
		o:           o,
		replicaZone: h.Store().Device().NewZone("tsue-replog", true),
		replicas:    make(map[replicaKey][]replicaItem),
		idle:        sim.NewCond(h.Env()),
	}
	t.data = newTsueLayer(h, "data", logpool.Overwrite, o, o.Pools, !o.DataLocality)
	if o.UseDeltaLog {
		t.delta = newTsueLayer(h, "delta", logpool.XOR, o, o.Pools, false)
	}
	t.parity = newTsueLayer(h, "parity", logpool.XOR, o, o.Pools, !o.ParityLocality)
	// One recycler process per pool per layer (the paper's recycle thread
	// pool; units of one pool recycle in order, pools in parallel).
	t.startRecyclers(t.data, t.recycleDataUnits)
	if t.delta != nil {
		t.startRecyclers(t.delta, t.recycleDeltaUnits)
	}
	t.startRecyclers(t.parity, t.recycleParityUnits)
	return t
}

// Name returns "tsue".
func (*tsue) Name() string { return "tsue" }

// startRecyclers spawns one recycler process per pool. Each pass drains up
// to Options.RecycleBatch sealed units from the pool's queue — one blocking
// Get plus whatever else is already waiting — so that under recycle
// pressure the batch grows and extents merge across units before the single
// read-modify-write, while an idle pool still recycles unit-by-unit with no
// added latency. Units of one pool always recycle in seal order.
func (t *tsue) startRecyclers(l *tsueLayer, fn func(p *sim.Proc, poolIdx int, units []*logpool.Unit)) {
	tracer := tracerOf(t.h)
	for i := range l.pools {
		i := i
		t.h.Env().Go(fmt.Sprintf("tsue-recycle-%s-%d@%d", l.name, i, t.h.NodeID()), func(p *sim.Proc) {
			for {
				u, ok := l.queues[i].Get(p)
				if !ok {
					return
				}
				batch := []*logpool.Unit{u}
				for len(batch) < t.o.RecycleBatch {
					next, ok := l.queues[i].TryGet()
					if !ok {
						break
					}
					batch = append(batch, next)
				}
				start := p.Now()
				for _, u := range batch {
					l.pools[i].MarkRecycling(u)
					if u.FirstAppend >= 0 {
						l.stats.BufferN++
						l.stats.BufferTime += start - u.FirstAppend
					}
				}
				l.recycling++
				// A recycle pass is its own root trace (when sampled): the
				// background work is asynchronous to any foreground op, so it
				// cannot ride a client trace.
				finOp := tracer.StartOp(p, obs.OpRecycle, t.h.NodeID(), "op:recycle:"+l.name)
				fn(p, i, batch)
				finOp()
				l.recycling--
				for _, u := range batch {
					l.pools[i].MarkRecycled(u, p.Now())
					l.stats.Units++
				}
				l.cond.Broadcast()
				t.idle.Broadcast()
				l.stats.RecycleTime += p.Now() - start
			}
		})
	}
}

// appendLayer inserts one record into the layer's pool (blocking through
// stalls), persists it to the log zone sequentially, and enqueues sealed
// units for recycling. It returns the unit the record landed in.
func (t *tsue) appendLayer(p *sim.Proc, l *tsueLayer, poolIdx int, blk wire.BlockID, off int64, data []byte) *logpool.Unit {
	start := p.Now()
	pool := l.pools[poolIdx]
	for {
		if l.exclusive && l.recycling > 0 {
			l.cond.Wait(p)
			continue
		}
		sealed, ok := pool.Append(blk, off, data, p.Now())
		if !ok {
			l.cond.Wait(p)
			continue
		}
		rec := int64(len(data)) + 24
		// The on-disk log region is circular (MaxUnits units worth of
		// space per pool): recycled units' space is overwritten, which the
		// FTL sees as invalidation rather than unbounded growth.
		span := int64(t.o.MaxUnits) * t.o.UnitSize
		pos := l.cursors[poolIdx] % span
		l.cursors[poolIdx] += rec
		fin := t.logSpan(p, "log:append:tsue-"+l.name)
		t.h.Store().Device().Write(p, l.zones[poolIdx], pos, rec, false)
		fin()
		if sealed != nil {
			l.queues[poolIdx].Put(sealed)
		}
		l.stats.AppendN++
		l.stats.AppendTime += p.Now() - start
		return pool.Tail()
	}
}

// Update is the synchronous front end: append locally, replicate, ack.
func (t *tsue) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	poolIdx := t.data.poolFor(hashBlk(blk))
	u := t.appendLayer(p, t.data, poolIdx, blk, off, data)
	// Replicate to the next Copies-1 OSDs' DataLog copies (2 total on SSD,
	// 3 on HDD; §3.1.1).
	nrep := t.o.Copies - 1
	if nrep <= 0 {
		return nil
	}
	self := t.h.NodeID()
	return t.fanout(p, nrep, func(hp *sim.Proc, i int) error {
		req := &wire.LogReplica{
			SrcNode: self, Pool: uint16(poolIdx), UnitSeq: u.Seq,
			Blk: blk, Off: off, Data: data, Sum: wire.Checksum(data),
		}
		return t.callAck(hp, t.replicaTarget(i), req)
	})
}

// replicaTarget picks the i-th DataLog replica holder: the following live
// OSDs in ring order after this node.
func (t *tsue) replicaTarget(i int) wire.NodeID {
	peers := t.h.Peers()
	self := 0
	for idx, id := range peers {
		if id == t.h.NodeID() {
			self = idx
			break
		}
	}
	seen := 0
	for step := 1; step < len(peers); step++ {
		id := peers[(self+step)%len(peers)]
		if !t.h.Alive(id) {
			continue
		}
		if seen == i {
			return id
		}
		seen++
	}
	return peers[(self+1+i)%len(peers)]
}

// Handle processes the scheme's internal pipeline messages: DataLog
// replicas and their retirement, replica fetches at recovery, DeltaLog
// appends and ParityLog appends.
func (t *tsue) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	switch v := m.(type) {
	case *wire.LogReplica:
		rec := int64(len(v.Data)) + 32
		span := int64(t.o.MaxUnits) * t.o.UnitSize * 2
		fin := t.logSpan(p, "log:append:tsue-replog")
		t.h.Store().Device().Write(p, t.replicaZone, t.replicaCursor%span, rec, false)
		fin()
		t.replicaCursor += rec
		key := replicaKey{src: v.SrcNode, pool: v.Pool}
		t.replicas[key] = append(t.replicas[key], replicaItem{
			unitSeq: v.UnitSeq, blk: v.Blk, off: v.Off,
			data: append([]byte(nil), v.Data...),
		})
		return wire.OK, true
	case *wire.UnitDone:
		key := replicaKey{src: v.SrcNode, pool: v.Pool}
		items := t.replicas[key]
		keep := items[:0]
		for _, it := range items {
			if it.unitSeq != v.UnitSeq {
				keep = append(keep, it)
			}
		}
		t.replicas[key] = keep
		return wire.OK, true
	case *wire.ReplicaFetch:
		var out []wire.ReplicaItem
		var total int64
		// Deterministic order: ascending pool, then original append order.
		for pool := 0; pool < len(t.data.pools); pool++ {
			items := t.replicas[replicaKey{src: v.Node, pool: uint16(pool)}]
			for _, it := range items {
				out = append(out, wire.ReplicaItem{Blk: it.blk, Off: it.off, Data: it.data})
				total += int64(len(it.data))
			}
		}
		if total > 0 {
			t.h.Store().Device().Read(p, t.replicaZone, 0, total)
		}
		return &wire.ReplicaResp{Items: out}, true
	case *wire.DeltaAppend:
		if v.Kind != wire.KindDataDelta {
			return errAck(fmt.Errorf("tsue: unexpected delta kind %d", v.Kind)), true
		}
		if v.Replica {
			// Reliability copy of the data delta (stored on the second
			// parity holder's SSD only; never recycled, dropped implicitly).
			rec := int64(len(v.Data)) + 32
			span := int64(t.o.MaxUnits) * t.o.UnitSize * 2
			fin := t.logSpan(p, "log:append:tsue-replog")
			t.h.Store().Device().Write(p, t.replicaZone, t.replicaCursor%span, rec, false)
			fin()
			t.replicaCursor += rec
			return wire.OK, true
		}
		if t.delta == nil {
			return errAck(fmt.Errorf("tsue: DeltaLog disabled")), true
		}
		s := v.Blk.StripeID()
		t.appendLayer(p, t.delta, t.delta.poolFor(hashStripe(s)), v.Blk, v.Off, v.Data)
		return wire.OK, true
	case *wire.ParityDelta:
		t.appendLayer(p, t.parity, t.parity.poolFor(hashBlk(v.Blk)), v.Blk, v.Off, v.Data)
		return wire.OK, true
	case *wire.ReplicaRetire:
		// A migrating block's extracted DataLog records are replayed at its
		// new home; the copies held here for the old home must die with
		// them, or a later failure of that node would replay stale
		// pre-migration content over the new home's current state.
		for key, items := range t.replicas {
			if key.src != v.Node {
				continue
			}
			keep := items[:0]
			for _, it := range items {
				if it.blk != v.Blk {
					keep = append(keep, it)
				}
			}
			t.replicas[key] = keep
		}
		return wire.OK, true
	}
	return nil, false
}

// ExtractBlockLog removes and returns the block's unrecycled DataLog
// overlay records so they can follow the block to its new home (the
// log-follows-block half of a PG cutover). The caller must hold the update
// fence and have run Settle first, so blk's only unrecycled records live in
// the active unit of its data pool; the merged extents are read back from
// the log zone and returned in offset order (absolute writes of
// non-overlapping ranges — replay order among them is immaterial).
func (t *tsue) ExtractBlockLog(p *sim.Proc, blk wire.BlockID) []wire.ReplicaItem {
	poolIdx := t.data.poolFor(hashBlk(blk))
	exts := t.data.pools[poolIdx].ExtractActive(blk)
	if len(exts) == 0 {
		return nil
	}
	out := make([]wire.ReplicaItem, 0, len(exts))
	var total int64
	for _, e := range exts {
		out = append(out, wire.ReplicaItem{Blk: blk, Off: e.Off, Data: e.Data})
		total += int64(len(e.Data))
	}
	t.h.Store().Device().Read(p, t.data.zones[poolIdx], 0, total)
	return out
}

var _ LogMigrator = (*tsue)(nil)

// recycleDataUnits merges a batch of DataLog units into data blocks and
// forwards the data deltas downstream. Extents of one block merge across
// the whole batch (latest write wins) before the single read-modify-write,
// so an update overwritten in a later unit never touches the device; the
// forwarded delta is the XOR of old and merged-new content, which equals
// the fold of the per-unit deltas (XOR is associative).
func (t *tsue) recycleDataUnits(p *sim.Proc, poolIdx int, units []*logpool.Unit) {
	// A dead node's recyclers discard their work: the store is lost and the
	// unrecycled items live on in the replicas recovery replays.
	if !t.h.Alive(t.h.NodeID()) {
		return
	}
	c := t.h.Code()
	k, mm := c.K, c.M
	st := t.h.Store()
	merged, order := logpool.MergeUnits(units, logpool.Overwrite, t.data.pools[poolIdx].NoMerge)
	for _, blk := range order {
		bl := merged[blk]
		s := blk.StripeID()
		osds := t.h.Placement(s)
		for _, ext := range bl.Extents() {
			old, err := st.ReadRange(p, blk, ext.Off, int64(len(ext.Data)))
			if err != nil {
				panic("tsue: data recycle read: " + err.Error())
			}
			delta := make([]byte, len(ext.Data))
			rs.DataDelta(delta, ext.Data, old)
			if err := st.WriteRange(p, blk, ext.Off, ext.Data); err != nil {
				panic("tsue: data recycle write: " + err.Error())
			}
			if t.delta != nil && t.h.Alive(osds[k]) {
				// Primary delta to P1's DeltaLog; copy to P2 (if M >= 2).
				req := &wire.DeltaAppend{Blk: blk, Off: ext.Off, Data: delta, Kind: wire.KindDataDelta, Sum: wire.Checksum(delta)}
				if err := t.callAck(p, osds[k], req); err != nil {
					if !t.h.Alive(t.h.NodeID()) {
						return // we died mid-recycle; replicas replay
					}
					if t.h.Alive(osds[k]) {
						panic("tsue: delta fwd: " + err.Error())
					}
					// The DeltaLog holder died mid-forward (nothing was
					// appended): degrade to direct parity appends.
					t.forwardParityDirect(p, s, blk, ext.Off, delta, osds)
				} else if mm >= 2 && t.o.Copies >= 2 {
					// Reliability copy; best effort — a dead holder only
					// narrows the redundancy window.
					cp := &wire.DeltaAppend{Blk: blk, Off: ext.Off, Data: delta, Kind: wire.KindDataDelta, Replica: true, Sum: wire.Checksum(delta)}
					_ = t.callAck(p, osds[k+1], cp)
				}
			} else {
				// No DeltaLog (HDD config / pre-O5) or its holder is down:
				// multiply locally and append straight to each live
				// ParityLog.
				t.forwardParityDirect(p, s, blk, ext.Off, delta, osds)
			}
			t.data.stats.RecycleN++
		}
	}
	// Tell replica holders to drop their copies of these units (best
	// effort; stale replica entries are only garbage, never incorrectness).
	nrep := t.o.Copies - 1
	for _, u := range units {
		for i := 0; i < nrep; i++ {
			done := &wire.UnitDone{SrcNode: t.h.NodeID(), Pool: uint16(poolIdx), UnitSeq: u.Seq}
			_ = t.callAck(p, t.replicaTarget(i), done)
		}
	}
}

// forwardParityDirect multiplies a data delta locally and appends it to
// each live parity holder's ParityLog — the no-DeltaLog path, also the
// degraded fallback when the DeltaLog holder is down. Deltas for a dead
// parity holder are dropped: its block is rebuilt by re-encoding the
// already-updated data (degraded-mode recovery).
func (t *tsue) forwardParityDirect(p *sim.Proc, s wire.StripeID, blk wire.BlockID, off int64, delta []byte, osds []wire.NodeID) {
	c := t.h.Code()
	k, mm := c.K, c.M
	for j := 0; j < mm; j++ {
		if !t.h.Alive(osds[k+j]) {
			continue
		}
		pd := mulDelta(c, j, int(blk.Index), delta)
		req := &wire.ParityDelta{Blk: t.parityBlock(s, j), Off: off, Data: pd, Sum: wire.Checksum(pd)}
		if err := t.callAck(p, osds[k+j], req); err != nil {
			if !t.h.Alive(osds[k+j]) || !t.h.Alive(t.h.NodeID()) {
				continue // one end died mid-forward; recovery repairs
			}
			panic("tsue: parity fwd: " + err.Error())
		}
	}
}

// recycleDeltaUnits folds a batch of DeltaLog units' data deltas into
// per-parity staged deltas and ships them to the parity logs. Deltas XOR-
// merge across units first, then each stripe's extents fold through the
// codec's batched Equation (5) (rs.FoldDeltas) in one pass.
func (t *tsue) recycleDeltaUnits(p *sim.Proc, poolIdx int, units []*logpool.Unit) {
	// Dead node: buffered deltas are lost with it; the re-encode repair
	// rebuilds the parities they were destined for.
	if !t.h.Alive(t.h.NodeID()) {
		return
	}
	c := t.h.Code()
	k, mm := c.K, c.M
	merged, order := logpool.MergeUnits(units, logpool.XOR, false)
	perStripe := make(map[wire.StripeID][]rs.DeltaExtent)
	var stripes []wire.StripeID
	for _, blk := range order {
		s := blk.StripeID()
		if _, ok := perStripe[s]; !ok {
			stripes = append(stripes, s)
		}
		for _, ext := range merged[blk].Extents() {
			perStripe[s] = append(perStripe[s], rs.DeltaExtent{Block: int(blk.Index), Off: ext.Off, Data: ext.Data})
			t.delta.stats.RecycleN++
		}
	}
	for _, s := range stripes {
		folded := c.FoldDeltas(perStripe[s])
		osds := t.h.Placement(s)
		for j := 0; j < mm; j++ {
			// Deltas for a dead parity holder are dropped; recovery rebuilds
			// that block by re-encoding the data.
			if !t.h.Alive(osds[k+j]) {
				continue
			}
			pblk := t.parityBlock(s, j)
			for _, ext := range folded[j] {
				req := &wire.ParityDelta{Blk: pblk, Off: ext.Off, Data: ext.Data, Sum: wire.Checksum(ext.Data)}
				if err := t.callAck(p, osds[k+j], req); err != nil {
					if !t.h.Alive(osds[k+j]) || !t.h.Alive(t.h.NodeID()) {
						break // one end died mid-fold; recovery repairs
					}
					panic("tsue: parity delta fwd: " + err.Error())
				}
			}
		}
	}
}

// recycleParityUnits XORs a batch of ParityLog units' merged deltas into
// parity blocks in place — one read-modify-write per merged extent, however
// many units contributed to it.
func (t *tsue) recycleParityUnits(p *sim.Proc, poolIdx int, units []*logpool.Unit) {
	merged, order := logpool.MergeUnits(units, logpool.XOR, t.parity.pools[poolIdx].NoMerge)
	for _, blk := range order {
		for _, ext := range merged[blk].Extents() {
			if err := t.applyParityDelta(p, blk, ext.Off, ext.Data); err != nil {
				panic("tsue: parity recycle: " + err.Error())
			}
			t.parity.stats.RecycleN++
		}
	}
}

// Read consults the DataLog read cache (§3.3.3): a fully covered range is
// served from the index without touching the device; otherwise the block is
// read and the log overlays applied (newest wins).
func (t *tsue) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	pool := t.data.pools[t.data.poolFor(hashBlk(blk))]
	if pool.Covers(blk, off, size) {
		buf := make([]byte, size)
		pool.Overlay(blk, off, buf)
		return buf, nil
	}
	buf, err := t.h.Store().ReadRange(p, blk, off, size)
	if err != nil {
		return nil, err
	}
	pool.Overlay(blk, off, buf)
	return buf, nil
}

// Drain seals all active units and waits until every layer is quiescent.
// The cluster layer repeats drains across OSDs until a full round is clean,
// which flushes cross-node pipeline stages.
func (t *tsue) Drain(p *sim.Proc) error {
	layers := []*tsueLayer{t.data, t.delta, t.parity}
	for {
		busy := false
		for _, l := range layers {
			if l == nil {
				continue
			}
			for i, pool := range l.pools {
				if u := pool.SealActive(p.Now()); u != nil {
					l.queues[i].Put(u)
				}
			}
			if l.pending() {
				busy = true
			}
		}
		if !busy {
			return nil
		}
		t.idle.Wait(p)
	}
}

// Settle drains the downstream pipeline — sealed DataLog units mid-recycle,
// the DeltaLog and the ParityLog — but keeps active (unsealed) DataLog
// units in place. Those are pure overlay: their extents have touched
// neither the data block nor any parity, and every item is replicated, so
// recovery can reconstruct the raw stripe and replay them (§4.2). This is
// TSUE's structural advantage at recovery time: the merge debt a failure
// must pay is bounded by the in-flight recycle window, not the log volume.
//
// The exception is items for the failed node's stripes: their raw shards
// are reconstruction's input and must stay frozen through the degraded
// window, but a retained item would apply whenever its unit later seals
// under foreground appends — an RMW racing the rebuild. Settle therefore
// force-seals (and drains through) every active DataLog unit holding an
// item for a degraded stripe; unrelated active units stay as overlay.
//
// Settle is a barrier: the caller must fence appends (the recovery gate)
// while it runs.
func (t *tsue) Settle(p *sim.Proc, failed wire.NodeID) error {
	for {
		if failed != 0 {
			for i, pool := range t.data.pools {
				if u := pool.Active(); u != nil && t.unitTouchesStripesOf(u, failed) {
					if su := pool.SealActive(p.Now()); su != nil {
						t.data.queues[i].Put(su)
					}
				}
			}
		}
		for _, l := range []*tsueLayer{t.delta, t.parity} {
			if l == nil {
				continue
			}
			for i, pool := range l.pools {
				if u := pool.SealActive(p.Now()); u != nil {
					l.queues[i].Put(u)
				}
			}
		}
		if !t.NeedsSettle(failed) {
			return nil
		}
		t.idle.Wait(p)
	}
}

// unitTouchesStripesOf reports whether any of the unit's blocks belongs to
// a stripe whose placement includes the given (failed) node — the stripes
// recovery will read raw and therefore must not be mutated by a later
// recycle of this unit.
func (t *tsue) unitTouchesStripesOf(u *logpool.Unit, node wire.NodeID) bool {
	for _, blk := range u.Blocks() {
		for _, id := range t.h.Placement(blk.StripeID()) {
			if id == node {
				return true
			}
		}
	}
	return false
}

// NeedsSettle reports whether partially-applied pipeline state remains:
// sealed DataLog units (their RMW may have started), anything in the
// delta/parity layers, or — under a failure — active DataLog units
// touching the failed node's stripes. Other active DataLog units do not
// count: they are replayable overlay.
func (t *tsue) NeedsSettle(failed wire.NodeID) bool {
	if t.data.pendingSealed() {
		return true
	}
	if failed != 0 {
		for _, pool := range t.data.pools {
			if u := pool.Active(); u != nil && t.unitTouchesStripesOf(u, failed) {
				return true
			}
		}
	}
	if t.delta != nil && t.delta.pending() {
		return true
	}
	return t.parity.pending()
}

// ReplayInto merges one recovered record (surrogate-journal or
// DataLog-replica item) through the normal two-stage path: DataLog append
// plus replication, then the asynchronous three-layer recycle. Replays are
// tracked as the "replay" residency layer.
func (t *tsue) ReplayInto(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	t.replayN++
	t.replayBytes += int64(len(data))
	return t.Update(p, blk, off, data)
}

var _ Replayer = (*tsue)(nil)

// Dirty reports whether any layer holds unrecycled state.
func (t *tsue) Dirty() bool {
	for _, l := range []*tsueLayer{t.data, t.delta, t.parity} {
		if l != nil && l.pending() {
			return true
		}
	}
	return false
}

// MemBytes sums the three layers' current log memory.
func (t *tsue) MemBytes() int64 {
	n := t.data.memBytes() + t.parity.memBytes()
	if t.delta != nil {
		n += t.delta.memBytes()
	}
	return n
}

// PeakMemBytes sums the three layers' peak log memory.
func (t *tsue) PeakMemBytes() int64 {
	n := t.data.peakBytes() + t.parity.peakBytes()
	if t.delta != nil {
		n += t.delta.peakBytes()
	}
	return n
}

// Residency reports per-layer timing for the paper's Table 2, plus a
// synthetic "replay" layer counting records merged through ReplayInto
// (AppendN = records, RecycleN = bytes).
func (t *tsue) Residency() map[string]LayerStats {
	out := map[string]LayerStats{
		"data":   t.data.stats,
		"parity": t.parity.stats,
	}
	if t.delta != nil {
		out["delta"] = t.delta.stats
	}
	if t.replayN > 0 {
		out["replay"] = LayerStats{AppendN: t.replayN, RecycleN: t.replayBytes}
	}
	return out
}

var _ ResidencyReporter = (*tsue)(nil)
