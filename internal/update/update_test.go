package update

import (
	"testing"
	"time"

	"tsue/internal/blockstore"
	"tsue/internal/device"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// fakeHost is a single-node Host for engine-local unit tests: peer calls
// are recorded and acked without a network.
type fakeHost struct {
	env   *sim.Env
	store *blockstore.Store
	code  *rs.Code
	calls []wire.Msg
}

func newFakeHost(t *testing.T) *fakeHost {
	t.Helper()
	env := sim.NewEnv()
	d := device.New(env, "d", device.SSD, device.SSDParams())
	return &fakeHost{
		env:   env,
		store: blockstore.New(d, 4096),
		code:  rs.MustNew(4, 2, rs.Vandermonde),
	}
}

func (h *fakeHost) NodeID() wire.NodeID      { return 1 }
func (h *fakeHost) Env() *sim.Env            { return h.env }
func (h *fakeHost) Store() *blockstore.Store { return h.store }
func (h *fakeHost) Code() *rs.Code           { return h.code }
func (h *fakeHost) Placement(wire.StripeID) []wire.NodeID {
	return []wire.NodeID{1, 2, 3, 4, 5, 6}
}
func (h *fakeHost) Peers() []wire.NodeID   { return []wire.NodeID{1, 2, 3, 4} }
func (h *fakeHost) Alive(wire.NodeID) bool { return true }
func (h *fakeHost) Call(p *sim.Proc, to wire.NodeID, req wire.Msg) (wire.Msg, error) {
	h.calls = append(h.calls, req)
	p.Sleep(10 * time.Microsecond)
	return wire.OK, nil
}

func runProc(t *testing.T, h *fakeHost, fn func(p *sim.Proc)) {
	t.Helper()
	h.env.Go("t", func(p *sim.Proc) { fn(p) })
	h.env.Run(0)
	h.env.Close()
}

func TestFactoryKnowsAllNames(t *testing.T) {
	h := newFakeHost(t)
	for _, name := range Names() {
		e, err := New(name, h, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e.Name() != name {
			t.Fatalf("engine %q reports name %q", name, e.Name())
		}
	}
	if _, err := New("bogus", h, Options{}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	h.env.Close()
}

func TestDefaultsFilledIn(t *testing.T) {
	o := Options{}.withDefaults()
	if o.UnitSize == 0 || o.MaxUnits == 0 || o.Pools == 0 || o.Copies == 0 ||
		o.RecycleThreshold == 0 || o.PLRReserve == 0 || o.CordBufferSize == 0 {
		t.Fatalf("defaults missing: %+v", o)
	}
}

// TestPLUpdateSendsMDeltas: PL must forward one parity delta per parity
// block, carrying coef-multiplied data.
func TestPLUpdateSendsMDeltas(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("pl", h, Options{})
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 2}
	runProc(t, h, func(p *sim.Proc) {
		if err := h.store.Put(p, blk, make([]byte, 4096)); err != nil {
			t.Error(err)
			return
		}
		newData := []byte{9, 9, 9, 9}
		if err := eng.Update(p, blk, 100, newData); err != nil {
			t.Error(err)
			return
		}
	})
	if len(h.calls) != 2 {
		t.Fatalf("sent %d messages, want M=2", len(h.calls))
	}
	for j, m := range h.calls {
		da, ok := m.(*wire.DeltaAppend)
		if !ok {
			t.Fatalf("msg %d is %T", j, m)
		}
		if da.Kind != wire.KindParityDelta {
			t.Fatalf("msg %d kind %d", j, da.Kind)
		}
		// Old data was zero, so delta == new data; parity delta = coef*new.
		want := h.code.Coef(int(da.ParityIdx), 2)
		got := da.Data[0]
		exp := mulDelta(h.code, int(da.ParityIdx), 2, []byte{9})[0]
		if got != exp {
			t.Fatalf("parity %d delta byte %d, want coef(%d)*9=%d", da.ParityIdx, got, want, exp)
		}
	}
}

// TestCordSendsSingleMessage: CoRD ships one delta to the collector
// regardless of M.
func TestCordSendsSingleMessage(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("cord", h, Options{})
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 0}
	runProc(t, h, func(p *sim.Proc) {
		h.store.Put(p, blk, make([]byte, 4096))
		if err := eng.Update(p, blk, 0, []byte{1, 2, 3}); err != nil {
			t.Error(err)
		}
	})
	if len(h.calls) != 1 {
		t.Fatalf("cord sent %d messages, want 1", len(h.calls))
	}
	da := h.calls[0].(*wire.DeltaAppend)
	if da.Kind != wire.KindDataDelta {
		t.Fatal("cord must ship raw data deltas")
	}
}

// TestParixFirstWriteTwoRounds: the first overwrite of a location ships
// orig + new (2M messages), repeats ship only new (M messages).
func TestParixFirstWriteTwoRounds(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("parix", h, Options{})
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 1}
	runProc(t, h, func(p *sim.Proc) {
		h.store.Put(p, blk, make([]byte, 4096))
		if err := eng.Update(p, blk, 0, []byte{1}); err != nil {
			t.Error(err)
			return
		}
		first := len(h.calls)
		if first != 4 { // M=2 orig msgs + M=2 new msgs
			t.Errorf("first write sent %d msgs, want 4", first)
		}
		if err := eng.Update(p, blk, 0, []byte{2}); err != nil {
			t.Error(err)
			return
		}
		if len(h.calls)-first != 2 { // repeat: M new msgs only
			t.Errorf("repeat write sent %d msgs, want 2", len(h.calls)-first)
		}
	})
}

// TestTsueFrontEndSequentialOnly: a TSUE update must not touch the data
// block (no random block I/O on the synchronous path) and must replicate
// Copies-1 times.
func TestTsueFrontEndSequentialOnly(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("tsue", h, Options{Copies: 2, Pools: 1})
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 0}
	runProc(t, h, func(p *sim.Proc) {
		h.store.Put(p, blk, make([]byte, 4096))
		before := h.store.Device().Stats()
		if err := eng.Update(p, blk, 0, []byte{5, 5}); err != nil {
			t.Error(err)
			return
		}
		after := h.store.Device().Stats()
		if after.ReadOps != before.ReadOps {
			t.Error("TSUE front end performed a read")
		}
		if after.RandWriteOps != before.RandWriteOps+1 {
			// Only the first-touch log append classifies as random (no
			// history); nothing may land on the block zone.
			t.Errorf("unexpected random writes: %d -> %d", before.RandWriteOps, after.RandWriteOps)
		}
		if after.OverwriteOps != before.OverwriteOps {
			t.Error("TSUE front end overwrote in place")
		}
	})
	reps := 0
	for _, m := range h.calls {
		if _, ok := m.(*wire.LogReplica); ok {
			reps++
		}
	}
	if reps != 1 {
		t.Fatalf("replicated %d times, want Copies-1=1", reps)
	}
}

// TestTsueReadCacheServesFromLog: with the update still in the DataLog, a
// fully covered read must not touch the device.
func TestTsueReadCacheServesFromLog(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("tsue", h, Options{Pools: 1})
	blk := wire.BlockID{Ino: 1, Stripe: 0, Index: 0}
	runProc(t, h, func(p *sim.Proc) {
		h.store.Put(p, blk, make([]byte, 4096))
		if err := eng.Update(p, blk, 200, []byte{7, 8, 9}); err != nil {
			t.Error(err)
			return
		}
		before := h.store.Device().Stats().ReadOps
		got, err := eng.Read(p, blk, 200, 3)
		if err != nil {
			t.Error(err)
			return
		}
		if got[0] != 7 || got[1] != 8 || got[2] != 9 {
			t.Errorf("read %v", got)
		}
		if h.store.Device().Stats().ReadOps != before {
			t.Error("covered read touched the device")
		}
		// Partially covered read must hit the device and overlay.
		got, err = eng.Read(p, blk, 198, 6)
		if err != nil {
			t.Error(err)
			return
		}
		if got[2] != 7 || got[5] != 0 {
			t.Errorf("overlay read %v", got)
		}
		if h.store.Device().Stats().ReadOps == before {
			t.Error("partial read skipped the device")
		}
	})
}

func TestFOHasNoLogState(t *testing.T) {
	h := newFakeHost(t)
	eng, _ := New("fo", h, Options{})
	if eng.Dirty() || eng.MemBytes() != 0 || eng.PeakMemBytes() != 0 {
		t.Fatal("FO reports log state")
	}
	runProc(t, h, func(p *sim.Proc) {
		if err := eng.Drain(p); err != nil {
			t.Error(err)
		}
	})
}

func TestLayerStatsMeans(t *testing.T) {
	ls := LayerStats{AppendN: 4, AppendTime: 8 * time.Microsecond}
	if ls.MeanAppend() != 2*time.Microsecond {
		t.Fatal("mean append wrong")
	}
	if (LayerStats{}).MeanRecycle() != 0 {
		t.Fatal("zero-count mean must be 0")
	}
}
