package update

import (
	"fmt"

	"tsue/internal/sim"
	"tsue/internal/wire"
)

// fo is the Full-Overwrite scheme [Aguilera et al., DSN'05]: every update
// rewrites the data block and all M parity blocks in place, synchronously.
// It has the longest update path of all schemes (paper Fig. 1) and every
// access is small and random, but it keeps no logs: recovery needs no merge
// and there is nothing to drain.
type fo struct {
	base
}

func newFO(h Host) *fo { return &fo{base: newBase(h)} }

// Name returns "fo".
func (*fo) Name() string { return "fo" }

// Update overwrites the data block in place and updates every parity
// block in place, synchronously, one after another.
func (e *fo) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e.lockBlock(p, blk)
	delta, err := e.readModifyWrite(p, blk, off, data)
	// The lock only needs to cover the data RMW: parity deltas commute
	// (XOR) and each parity RMW is made atomic by the parity block's own
	// lock on the remote side.
	e.unlockBlock(blk)
	if err != nil {
		return err
	}
	// Sequentially update each parity block in place — the long path. A
	// dead parity holder is skipped, not an error: once the data RMW is
	// applied, aborting mid-propagation would leave the remaining live
	// parities torn with no log recording the difference. The dead holder's
	// block is rebuilt by re-encoding the (updated) data at recovery.
	s := blk.StripeID()
	osds := e.h.Placement(s)
	k := e.h.Code().K
	for j := 0; j < e.h.Code().M; j++ {
		if !e.h.Alive(osds[k+j]) {
			continue
		}
		pd := mulDelta(e.h.Code(), j, int(blk.Index), delta)
		req := &wire.ParityDelta{Blk: e.parityBlock(s, j), Off: off, Data: pd, Sum: wire.Checksum(pd)}
		if err := e.callAck(p, osds[k+j], req); err != nil {
			if !e.h.Alive(osds[k+j]) {
				continue // died mid-propagation; recovery re-encodes
			}
			return fmt.Errorf("fo: parity %d: %w", j, err)
		}
	}
	return nil
}

// Handle applies incoming parity deltas in place.
func (e *fo) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	pd, ok := m.(*wire.ParityDelta)
	if !ok {
		return nil, false
	}
	return errAck(e.applyParityDelta(p, pd.Blk, pd.Off, pd.Data)), true
}

// Read serves straight from the block store (FO keeps no overlays).
func (e *fo) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return e.read(p, blk, off, size)
}

// Drain is a no-op: FO keeps no logs.
func (e *fo) Drain(*sim.Proc) error { return nil }

// Settle is a no-op: FO's stores are always stripe-consistent.
func (e *fo) Settle(*sim.Proc, wire.NodeID) error { return nil }

// NeedsSettle always reports false.
func (e *fo) NeedsSettle(wire.NodeID) bool { return false }

// Dirty always reports false: there is nothing to recycle.
func (e *fo) Dirty() bool { return false }

// MemBytes is always zero: FO holds no log memory.
func (e *fo) MemBytes() int64 { return 0 }

// PeakMemBytes is always zero: FO holds no log memory.
func (e *fo) PeakMemBytes() int64 { return 0 }
