package update

import (
	"time"

	"tsue/internal/logpool"
	"tsue/internal/sim"
	"tsue/internal/wire"
)

// cord is CoRD [Zhou et al., SC'24]: data blocks update in place
// (read-modify-write), but the data deltas of a stripe are shipped to a
// single *collector* (the first parity holder), which aggregates deltas of
// the same stripe position in a fixed-size buffer log (Equation (5)) before
// distributing merged parity deltas to the other parity OSDs. That minimizes
// network traffic — but the single buffer log is exclusive: while it
// recycles, appends stall, which is CoRD's throughput bottleneck (§2.2).
type cord struct {
	base
	o Options

	zone      int
	cursor    int64
	pool      *logpool.Pool
	recycling bool
	cond      *sim.Cond
	peak      int64
}

func newCord(h Host, o Options) *cord {
	return &cord{
		base: newBase(h),
		o:    o,
		zone: h.Store().Device().NewZone("cord-buffer", true),
		pool: logpool.NewPool(0, logpool.XOR, o.CordBufferSize, 2),
		cond: sim.NewCond(h.Env()),
	}
}

// Name returns "cord".
func (*cord) Name() string { return "cord" }

// Update overwrites the data block in place and ships the data delta to
// the stripe's collector (first parity holder) in a single message.
func (e *cord) Update(p *sim.Proc, blk wire.BlockID, off int64, data []byte) error {
	e.lockBlock(p, blk)
	delta, err := e.readModifyWrite(p, blk, off, data)
	e.unlockBlock(blk)
	if err != nil {
		return err
	}
	// Single message to the collector, regardless of M.
	s := blk.StripeID()
	collector := e.h.Placement(s)[e.h.Code().K]
	req := &wire.DeltaAppend{Blk: blk, Off: off, Data: delta, Kind: wire.KindDataDelta, Sum: wire.Checksum(delta)}
	return e.callAck(p, collector, req)
}

// Handle buffers incoming data deltas (collector role) and applies merged
// parity deltas distributed by other collectors.
func (e *cord) Handle(p *sim.Proc, from wire.NodeID, m wire.Msg) (wire.Msg, bool) {
	switch v := m.(type) {
	case *wire.DeltaAppend:
		e.append(p, v)
		return wire.OK, true
	case *wire.ParityDelta:
		// Merged delta from a collector: apply to our parity block in place.
		return errAck(e.applyParityDelta(p, v.Blk, v.Off, v.Data)), true
	}
	return nil, false
}

func (e *cord) append(p *sim.Proc, da *wire.DeltaAppend) {
	for {
		if e.recycling {
			// Exclusive buffer log: wait out the in-flight recycle.
			e.cond.Wait(p)
			continue
		}
		sealed, ok := e.pool.Append(da.Blk, da.Off, da.Data, p.Now())
		if !ok {
			e.cond.Wait(p)
			continue
		}
		fin := e.logSpan(p, "log:append:cord")
		e.h.Store().Device().Write(p, e.zone, e.cursor%(2*e.o.CordBufferSize), int64(len(da.Data))+24, false)
		fin()
		e.cursor += int64(len(da.Data)) + 24
		if mem := e.pool.Stats().MemBytes; mem > e.peak {
			e.peak = mem
		}
		if sealed != nil {
			e.recycleUnit(p, sealed)
		}
		return
	}
}

// recycleUnit distributes a sealed buffer unit: per stripe, deltas from all
// data blocks fold into one staged parity delta per parity block
// (Equation (5)); parity 0 applies locally, the rest ship over the network.
func (e *cord) recycleUnit(p *sim.Proc, u *logpool.Unit) {
	e.recycling = true
	e.pool.MarkRecycling(u)
	defer func() {
		e.pool.MarkRecycled(u, p.Now())
		e.recycling = false
		e.cond.Broadcast()
	}()
	// A dead collector's buffer is lost with it; recovery re-encodes the
	// parity set of its stripes.
	if !e.h.Alive(e.h.NodeID()) {
		return
	}
	c := e.h.Code()
	k, mm := c.K, c.M

	type stage struct{ perParity []*logpool.BlockLog }
	stages := make(map[wire.StripeID]*stage)
	order := []wire.StripeID{}
	for _, blk := range u.Blocks() {
		s := blk.StripeID()
		st, ok := stages[s]
		if !ok {
			st = &stage{perParity: make([]*logpool.BlockLog, mm)}
			for j := range st.perParity {
				st.perParity[j] = &logpool.BlockLog{}
			}
			stages[s] = st
			order = append(order, s)
		}
		bl := u.Lookup(blk)
		for _, ext := range bl.Extents() {
			for j := 0; j < mm; j++ {
				st.perParity[j].Insert(ext.Off, mulDelta(c, j, int(blk.Index), ext.Data), logpool.XOR)
			}
		}
	}
	for _, s := range order {
		st := stages[s]
		osds := e.h.Placement(s)
		for j := 0; j < mm; j++ {
			pblk := e.parityBlock(s, j)
			// A dead parity holder's deltas are dropped: recovery rebuilds
			// that parity block by re-encoding the (already updated) data.
			if j > 0 && !e.h.Alive(osds[k+j]) {
				continue
			}
			for _, ext := range st.perParity[j].Extents() {
				if j == 0 {
					if err := e.applyParityDelta(p, pblk, ext.Off, ext.Data); err != nil {
						panic("cord: recycle: " + err.Error())
					}
					continue
				}
				req := &wire.ParityDelta{Blk: pblk, Off: ext.Off, Data: ext.Data, Sum: wire.Checksum(ext.Data)}
				if err := e.callAck(p, osds[k+j], req); err != nil {
					if !e.h.Alive(osds[k+j]) || !e.h.Alive(e.h.NodeID()) {
						break // one end died mid-distribution; recovery repairs
					}
					panic("cord: forward: " + err.Error())
				}
			}
		}
	}
}

// Read serves straight from the block store (data blocks are in place).
func (e *cord) Read(p *sim.Proc, blk wire.BlockID, off, size int64) ([]byte, error) {
	return e.read(p, blk, off, size)
}

// Drain recycles the collector buffer to quiescence.
func (e *cord) Drain(p *sim.Proc) error {
	for e.recycling {
		e.cond.Wait(p)
	}
	if u := e.pool.SealActive(p.Now()); u != nil {
		e.recycleUnit(p, u)
	}
	// A sealed-but-unrecycled unit can exist if a concurrent append sealed
	// it moments ago; the inline recycle above covers the common case, and
	// Pending() re-checks.
	for e.pool.Pending() {
		p.Sleep(time.Millisecond)
		if u := e.pool.SealActive(p.Now()); u != nil {
			e.recycleUnit(p, u)
		}
	}
	return nil
}

// Settle is Drain: the collector buffer holds deltas for other parity
// holders, so the raw stripe is only consistent once it distributes.
func (e *cord) Settle(p *sim.Proc, _ wire.NodeID) error { return e.Drain(p) }

// NeedsSettle reports whether the collector buffer still holds deltas.
func (e *cord) NeedsSettle(wire.NodeID) bool { return e.Dirty() }

// Dirty reports whether the collector buffer still holds deltas.
func (e *cord) Dirty() bool { return e.pool.Pending() }

// MemBytes returns the collector buffer's memory footprint.
func (e *cord) MemBytes() int64 { return e.pool.Stats().MemBytes }

// PeakMemBytes returns the high-water collector footprint.
func (e *cord) PeakMemBytes() int64 { return e.peak }
