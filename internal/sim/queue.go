package sim

// Queue is an unbounded FIFO message queue for inter-process communication
// (node mailboxes, RPC response slots). Get blocks while the queue is empty;
// Put never blocks. A closed queue returns ok=false to blocked and future
// getters once drained.
type Queue[T any] struct {
	env     *Env
	items   []T
	waiters []*getWaiter[T]
	closed  bool
	dropped int
}

type getWaiter[T any] struct {
	p     *Proc
	val   T
	ok    bool
	woken bool
}

// NewQueue creates an empty queue bound to e.
func NewQueue[T any](e *Env) *Queue[T] {
	return &Queue[T]{env: e}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v, handing it directly to the oldest blocked getter if any.
// Putting to a closed queue is a counted drop, not a panic: an in-flight
// delivery racing node teardown (e.g. a netsim response arriving after a
// kill) must not crash the whole simulation. Drops are visible through
// Dropped on the queue and DroppedPuts on the environment.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		q.dropped++
		q.env.droppedPuts++
		return
	}
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters = q.waiters[:len(q.waiters)-1]
		w.val, w.ok, w.woken = v, true, true
		q.env.wakeAt(w.p, q.env.now)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	if len(q.items) > 0 {
		v = q.items[0]
		copy(q.items, q.items[1:])
		var zero T
		q.items[len(q.items)-1] = zero
		q.items = q.items[:len(q.items)-1]
		return v, true
	}
	if q.closed {
		return v, false
	}
	w := &getWaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.park()
	return w.val, w.ok
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	copy(q.items, q.items[1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Close marks the queue closed and wakes all blocked getters with ok=false.
// Items buffered before Close stay retrievable: Get and TryGet drain them
// first and only then report the queue closed. Put after Close silently
// drops the value and increments the drop counters. Closing twice is a
// no-op.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		w.ok = false
		q.env.wakeAt(w.p, q.env.now)
	}
	q.waiters = nil
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Dropped returns the number of values discarded by Put after Close.
func (q *Queue[T]) Dropped() int { return q.dropped }

// WaitGroup counts outstanding work items; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup bound to e.
func NewWaitGroup(e *Env) *WaitGroup { return &WaitGroup{env: e} }

// Add increments the counter by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the counter, waking waiters at zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.env.wakeAt(p, w.env.now)
		}
		w.waiters = nil
	}
}

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park()
}
