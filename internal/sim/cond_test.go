package sim

import (
	"testing"
	"time"
)

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEnv()
	c := NewCond(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if c.Waiters() != 5 {
			t.Errorf("waiters=%d", c.Waiters())
		}
		c.Broadcast()
	})
	e.Run(0)
	if woke != 5 {
		t.Fatalf("woke=%d", woke)
	}
}

func TestCondBroadcastNoWaiters(t *testing.T) {
	e := NewEnv()
	c := NewCond(e)
	c.Broadcast() // must not panic
	e.Run(0)
}

func TestCondRewait(t *testing.T) {
	e := NewEnv()
	c := NewCond(e)
	state := 0
	var observed int
	e.Go("w", func(p *Proc) {
		for state < 2 {
			c.Wait(p)
		}
		observed = state
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		state = 1
		c.Broadcast()
		p.Sleep(time.Millisecond)
		state = 2
		c.Broadcast()
	})
	e.Run(0)
	if observed != 2 {
		t.Fatalf("observed=%d", observed)
	}
}
