package sim

import "time"

// Sched advances several independent environments in global timestamp
// order, the control-plane half of a control-plane/data-plane split: each
// Env is a self-contained data-plane simulator (one OSD group, one client
// shard, one repair domain) and Sched is the shared-clock scheduler that
// interleaves their events so causality across simulators is resolved by
// virtual time alone. Ties between environments break by registration
// order, keeping multi-instance runs deterministic.
type Sched struct {
	envs []*Env
}

// NewSched returns a scheduler over the given environments. More can be
// added later with Add.
func NewSched(envs ...*Env) *Sched {
	return &Sched{envs: append([]*Env(nil), envs...)}
}

// Add registers another environment with the scheduler.
func (s *Sched) Add(e *Env) { s.envs = append(s.envs, e) }

// Envs returns the registered environments in registration order.
func (s *Sched) Envs() []*Env { return s.envs }

// HasPendingEvents reports whether any registered environment has a
// pending event.
func (s *Sched) HasPendingEvents() bool {
	for _, e := range s.envs {
		if e.HasPendingEvents() {
			return true
		}
	}
	return false
}

// next returns the environment holding the globally earliest pending
// event, or nil if all environments are idle.
func (s *Sched) next() *Env {
	var best *Env
	var bestT time.Duration
	for _, e := range s.envs {
		if !e.HasPendingEvents() {
			continue
		}
		if t := e.PeekNextEventTime(); best == nil || t < bestT {
			best, bestT = e, t
		}
	}
	return best
}

// PeekNextEventTime returns the timestamp of the globally earliest pending
// event. Call only when HasPendingEvents reports true.
func (s *Sched) PeekNextEventTime() time.Duration {
	return s.next().PeekNextEventTime()
}

// ProcessNextEvent executes the globally earliest pending event and
// reports whether one existed.
func (s *Sched) ProcessNextEvent() bool {
	e := s.next()
	if e == nil {
		return false
	}
	e.ProcessNextEvent()
	return true
}

// Run interleaves all environments until every one is idle or until limit
// (if > 0) is reached, returning the global virtual time at exit. Events
// past the limit stay queued in their environments.
func (s *Sched) Run(limit time.Duration) time.Duration {
	var now time.Duration
	for {
		e := s.next()
		if e == nil {
			return now
		}
		t := e.PeekNextEventTime()
		if limit > 0 && t > limit {
			return limit
		}
		now = t
		e.ProcessNextEvent()
	}
}

// Close closes every registered environment.
func (s *Sched) Close() {
	for _, e := range s.envs {
		e.Close()
	}
}
