package sim

import (
	"testing"
	"time"
)

func TestStepEmptyQueue(t *testing.T) {
	e := NewEnv()
	if e.HasPendingEvents() {
		t.Fatal("fresh env reports pending events")
	}
	if end := e.Run(0); end != 0 {
		t.Fatalf("empty Run ended at %v", end)
	}
	if e.HasPendingEvents() {
		t.Fatal("pending events after empty Run")
	}
}

func TestStepMatchesRun(t *testing.T) {
	build := func() (*Env, *[]int) {
		e := NewEnv()
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(5-i) * time.Millisecond)
				order = append(order, i)
			})
		}
		return e, &order
	}

	er, ordRun := build()
	er.Run(0)

	es, ordStep := build()
	for es.HasPendingEvents() {
		es.ProcessNextEvent()
	}

	if len(*ordRun) != len(*ordStep) {
		t.Fatalf("run=%v step=%v", *ordRun, *ordStep)
	}
	for i := range *ordRun {
		if (*ordRun)[i] != (*ordStep)[i] {
			t.Fatalf("run=%v step=%v", *ordRun, *ordStep)
		}
	}
	if es.Now() != er.Now() {
		t.Fatalf("clocks diverged: run=%v step=%v", er.Now(), es.Now())
	}
}

func TestStepSimultaneousTimestampsSeqOrder(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	for e.HasPendingEvents() {
		if got := e.PeekNextEventTime(); got != time.Millisecond {
			t.Fatalf("peek %v, want 1ms", got)
		}
		e.ProcessNextEvent()
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not in seq order when stepped: %v", order)
		}
	}
}

func TestStepInterleavedAt(t *testing.T) {
	// An event handler scheduling new work mid-step must be observable by
	// the very next Peek/Process cycle, including events at the current
	// timestamp.
	e := NewEnv()
	var hits []time.Duration
	e.At(time.Millisecond, func() {
		e.At(time.Millisecond, func() { hits = append(hits, e.Now()) }) // same instant
		e.After(2*time.Millisecond, func() { hits = append(hits, e.Now()) })
	})
	steps := 0
	for e.HasPendingEvents() {
		e.ProcessNextEvent()
		steps++
	}
	if steps != 3 {
		t.Fatalf("steps=%d, want 3", steps)
	}
	if len(hits) != 2 || hits[0] != time.Millisecond || hits[1] != 3*time.Millisecond {
		t.Fatalf("hits=%v", hits)
	}
}

func TestStepPeekDoesNotAdvance(t *testing.T) {
	e := NewEnv()
	ran := false
	e.At(5*time.Millisecond, func() { ran = true })
	for i := 0; i < 3; i++ {
		if got := e.PeekNextEventTime(); got != 5*time.Millisecond {
			t.Fatalf("peek %v", got)
		}
	}
	if ran || e.Now() != 0 {
		t.Fatal("peek executed or advanced the clock")
	}
	e.ProcessNextEvent()
	if !ran || e.Now() != 5*time.Millisecond {
		t.Fatal("process did not run the event")
	}
}

func TestRunLimitKeepsFutureEvents(t *testing.T) {
	// An event past the limit stays queued, so a later Run resumes it.
	e := NewEnv()
	var reached bool
	e.Go("a", func(p *Proc) {
		p.Sleep(time.Second)
		reached = true
	})
	e.Run(100 * time.Millisecond)
	if reached {
		t.Fatal("event past limit ran")
	}
	if !e.HasPendingEvents() {
		t.Fatal("event past limit was discarded")
	}
	if end := e.Run(0); end != time.Second {
		t.Fatalf("resumed run ended at %v", end)
	}
	if !reached {
		t.Fatal("resumed run skipped the event")
	}
}

func TestQueuePutAfterCloseDrops(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	q.Put(1)
	q.Close()
	q.Put(2)
	q.Put(3)
	if q.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", q.Dropped())
	}
	if e.DroppedPuts() != 2 {
		t.Fatalf("env dropped=%d, want 2", e.DroppedPuts())
	}
	// The pre-close item is still drainable; the dropped ones are gone.
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet=(%d,%v)", v, ok)
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("dropped value surfaced")
	}
	q2 := NewQueue[int](e)
	if q2.Dropped() != 0 {
		t.Fatal("fresh queue has drops")
	}
	if e.DroppedPuts() != 2 {
		t.Fatal("env counter changed by unrelated queue")
	}
}

func TestSchedGlobalOrder(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	var order []string
	a.At(1*time.Millisecond, func() { order = append(order, "a1") })
	a.At(4*time.Millisecond, func() { order = append(order, "a4") })
	b.At(2*time.Millisecond, func() { order = append(order, "b2") })
	b.At(3*time.Millisecond, func() { order = append(order, "b3") })
	s := NewSched(a, b)
	end := s.Run(0)
	want := []string{"a1", "b2", "b3", "a4"}
	if len(order) != len(want) {
		t.Fatalf("order=%v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order=%v want=%v", order, want)
		}
	}
	if end != 4*time.Millisecond {
		t.Fatalf("end=%v", end)
	}
}

func TestSchedTieBreaksByRegistrationOrder(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	var order []string
	a.At(time.Millisecond, func() { order = append(order, "a") })
	b.At(time.Millisecond, func() { order = append(order, "b") })
	s := NewSched(b, a) // b registered first wins the tie
	s.Run(0)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order=%v", order)
	}
}

func TestSchedLimitAndResume(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	var hits int
	a.At(10*time.Millisecond, func() { hits++ })
	b.At(30*time.Millisecond, func() { hits++ })
	s := NewSched(a, b)
	if end := s.Run(20 * time.Millisecond); end != 20*time.Millisecond {
		t.Fatalf("end=%v", end)
	}
	if hits != 1 {
		t.Fatalf("hits=%d after limited run", hits)
	}
	if !s.HasPendingEvents() {
		t.Fatal("future event discarded by limit")
	}
	if end := s.Run(0); end != 30*time.Millisecond {
		t.Fatalf("resume end=%v", end)
	}
	if hits != 2 {
		t.Fatalf("hits=%d", hits)
	}
}

func TestSchedProcsInterleave(t *testing.T) {
	// Two independent simulators with real processes advance under one
	// scheduler; each env's own clock only moves when its events run.
	a, b := NewEnv(), NewEnv()
	var aDone, bDone time.Duration
	a.Go("pa", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		aDone = p.Now()
	})
	b.Go("pb", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		bDone = p.Now()
	})
	s := NewSched(a, b)
	s.Run(0)
	if aDone != 5*time.Millisecond || bDone != 2*time.Millisecond {
		t.Fatalf("aDone=%v bDone=%v", aDone, bDone)
	}
	s.Close()
	if a.LiveProcs() != 0 || b.LiveProcs() != 0 {
		t.Fatal("Close left live procs")
	}
}
