// Package sim is a small discrete-event simulation kernel. Simulated
// processes are goroutines that run one at a time under a virtual clock;
// they block on kernel primitives (Sleep, Resource, Queue) and the scheduler
// advances time between events. This lets ordinary sequential Go code — the
// whole ECFS cluster in this repository — execute unmodified under simulated
// device and network timing, with fully deterministic results for a fixed
// event order.
//
// Exactly one goroutine (the scheduler inside Run, or a single process) is
// runnable at any instant, so simulated code needs no locking.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

//lint:allow-file nogoroutine(this file is the kernel implementation itself: the goroutines and yield/resume channels here are the machinery that enforces the one-runnable-goroutine discipline everywhere else)

// Env is a simulation environment: a virtual clock plus an event queue.
// Create with NewEnv, add processes with Go, execute with Run, release
// leftover processes with Close.
type Env struct {
	now         time.Duration
	seq         uint64
	procseq     uint64
	events      eventQueue
	yield       chan struct{}
	procs       map[*Proc]struct{}
	closing     bool
	nprocs      int // live (started, unfinished) procs
	droppedPuts int // values discarded by Queue.Put after Close, env-wide
}

// NewEnv returns an empty environment at time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

type event struct {
	t   time.Duration
	seq uint64
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = event{}
	*q = old[:n-1]
	return it
}

// At schedules fn to run in scheduler context at absolute virtual time t
// (clamped to now). fn must not block; to run blocking code, start a process.
func (e *Env) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn at now+d.
func (e *Env) After(d time.Duration, fn func()) { e.At(e.now+d, fn) }

// Proc is a simulated process. All blocking methods must only be called from
// the process's own goroutine.
type Proc struct {
	env     *Env
	name    string
	id      uint64 // spawn order, the deterministic unwind order for Close
	resume  chan struct{}
	killed  bool
	started bool
	span    any
}

// Env returns the environment that owns p.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// SetSpan attaches an opaque annotation to the process. The kernel never
// reads it; the observability layer (internal/obs) uses the slot to carry
// trace context across process spawns — Go returns the child Proc before it
// runs, so a spawner may SetSpan on the child to make it inherit a trace.
func (p *Proc) SetSpan(v any) { p.span = v }

// Span returns the annotation set by SetSpan (nil if none).
func (p *Proc) Span() any { return p.span }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

type killedErr struct{ name string }

func (k killedErr) Error() string { return "sim: proc " + k.name + " killed at Close" }

// Go starts a new process running fn. The process begins executing at the
// current virtual time, after the caller yields to the scheduler.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, id: e.procseq, resume: make(chan struct{})}
	e.procseq++
	e.procs[p] = struct{}{}
	e.nprocs++
	e.At(e.now, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killedErr); !ok {
						panic(r)
					}
				}
				delete(e.procs, p)
				e.nprocs--
				e.yield <- struct{}{}
			}()
			fn(p)
		}()
		<-e.yield
	})
	return p
}

// park suspends the calling process until the scheduler wakes it.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedErr{p.name})
	}
}

// wakeAt schedules p to resume at absolute time t. Internal: each parked
// process must have exactly one pending wake.
func (e *Env) wakeAt(p *Proc, t time.Duration) {
	e.At(t, func() {
		p.resume <- struct{}{}
		<-e.yield
	})
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.wakeAt(p, p.env.now+d)
	p.park()
}

// Yield lets every other currently-runnable event at this timestamp run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// HasPendingEvents reports whether at least one event is scheduled. It is
// one of the three step primitives (with PeekNextEventTime and
// ProcessNextEvent) that let an external scheduler drive several
// environments in global timestamp order.
func (e *Env) HasPendingEvents() bool { return e.events.Len() > 0 }

// PeekNextEventTime returns the timestamp of the earliest pending event
// without executing it. Call only when HasPendingEvents reports true.
func (e *Env) PeekNextEventTime() time.Duration { return e.events[0].t }

// ProcessNextEvent pops the earliest pending event, advances the clock to
// its timestamp, and executes it. Call only when HasPendingEvents reports
// true.
func (e *Env) ProcessNextEvent() {
	ev := heap.Pop(&e.events).(event)
	e.now = ev.t
	ev.fn()
}

// Run executes events until the queue is empty or until limit (if > 0) is
// reached. It returns the virtual time at exit. An event scheduled past the
// limit stays queued, so a later Run (or step) call can resume where this
// one stopped.
func (e *Env) Run(limit time.Duration) time.Duration {
	for e.HasPendingEvents() {
		if limit > 0 && e.PeekNextEventTime() > limit {
			e.now = limit
			return e.now
		}
		e.ProcessNextEvent()
	}
	return e.now
}

// Idle reports whether no events remain.
func (e *Env) Idle() bool { return e.events.Len() == 0 }

// LiveProcs returns the number of started, unfinished processes.
func (e *Env) LiveProcs() int { return e.nprocs }

// DroppedPuts returns the total number of values discarded across all of
// this environment's queues by Put-after-Close.
func (e *Env) DroppedPuts() int { return e.droppedPuts }

// Close unwinds all parked processes (their blocking calls panic with an
// internal sentinel that is recovered in the process wrapper) so their
// goroutines exit. Call after Run when discarding the environment.
func (e *Env) Close() {
	e.closing = true
	// Processes whose start event never ran have no goroutine to unwind.
	for p := range e.procs {
		if !p.started {
			delete(e.procs, p)
			e.nprocs--
		}
	}
	// Unwind in spawn order: the kill order is observable through user
	// defers, so like everything else under the kernel it must be
	// deterministic, not map-iteration order.
	live := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		live = append(live, p)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, p := range live {
		if _, ok := e.procs[p]; !ok {
			continue // already gone: unwinding another proc released it
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.yield
	}
	e.events = nil
}

// Resource models a server with fixed capacity (e.g. a disk with internal
// queue depth N, a NIC). Waiters are served FIFO.
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*Proc
	// BusyTime accumulates capacity-seconds of usage via Use, for
	// utilization reporting.
	BusyTime time.Duration
}

// NewResource creates a resource with the given capacity (>= 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Acquire obtains one capacity slot, blocking FIFO while the resource is full.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// The releaser transferred its slot to us; inUse stays constant.
}

// Release frees one slot, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.env.wakeAt(w, r.env.now)
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d, then releases it.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	r.BusyTime += d
	p.Sleep(d)
	r.Release()
}

// InUse returns the number of occupied slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }
