package sim

// Cond is a broadcast-only condition variable: processes Wait, and any code
// running in the simulation (process or scheduler context) may Broadcast to
// wake all current waiters at the current virtual time. There is no spurious
// wakeup, but state can change between wake and resume, so callers should
// re-check their predicate in a loop.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond returns a Cond bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Wait suspends p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.env.wakeAt(p, c.env.now)
	}
	c.waiters = nil
}

// Waiters returns the number of blocked processes.
func (c *Cond) Waiters() int { return len(c.waiters) }
