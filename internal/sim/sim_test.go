package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var woke time.Duration
	e.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		woke = p.Now()
	})
	end := e.Run(0)
	if woke != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", woke)
	}
	if end != 10*time.Millisecond {
		t.Fatalf("end at %v, want 10ms", end)
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEnv()
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Go("p", func(p *Proc) {
				p.Sleep(time.Duration(5-i) * time.Millisecond)
				order = append(order, i)
			})
		}
		e.Run(0)
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic ordering")
		}
	}
	// Sleeps of 5..1ms: proc 4 wakes first.
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("order %v, want %v", a, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEnv()
	var reached bool
	e.Go("a", func(p *Proc) {
		p.Sleep(time.Second)
		reached = true
	})
	end := e.Run(100 * time.Millisecond)
	if reached {
		t.Fatal("event past limit ran")
	}
	if end != 100*time.Millisecond {
		t.Fatalf("end %v, want 100ms", end)
	}
	e.Close()
}

func TestResourceSerializes(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("disk", 1)
	var done []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, p.Now())
		})
	}
	e.Run(0)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done=%v want=%v", done, want)
		}
	}
	if r.BusyTime != 30*time.Millisecond {
		t.Fatalf("busy=%v", r.BusyTime)
	}
}

func TestResourceCapacityParallel(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("disk", 2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		e.Go("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			done = append(done, p.Now())
		})
	}
	end := e.Run(0)
	if end != 20*time.Millisecond {
		t.Fatalf("4 jobs on cap-2 resource finished at %v, want 20ms", end)
	}
	_ = done
}

func TestResourceFIFOFairness(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("u", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Microsecond) // arrive in order
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.Run(0)
	for i := range order {
		if order[i] != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
		q.Close()
	})
	e.Run(0)
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestQueueBlockingGetWakesInOrder(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	var got []int
	for i := 0; i < 3; i++ {
		e.Go("c", func(p *Proc) {
			v, ok := q.Get(p)
			if ok {
				got = append(got, v)
			}
		})
	}
	e.Go("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Put(100)
		q.Put(200)
		q.Put(300)
	})
	e.Run(0)
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("got %v", got)
	}
	e.Close()
}

func TestQueueCloseWakesGetters(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	notOK := 0
	e.Go("c", func(p *Proc) {
		if _, ok := q.Get(p); !ok {
			notOK++
		}
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Close()
	})
	e.Run(0)
	if notOK != 1 {
		t.Fatal("getter not woken by Close")
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run(0)
	if doneAt != 3*time.Millisecond {
		t.Fatalf("wait finished at %v, want 3ms", doneAt)
	}
}

func TestCloseUnwindsParkedProcs(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e)
	for i := 0; i < 10; i++ {
		e.Go("stuck", func(p *Proc) {
			q.Get(p) // blocks forever
		})
	}
	e.Run(0)
	if e.LiveProcs() != 10 {
		t.Fatalf("live=%d want 10", e.LiveProcs())
	}
	e.Close()
	if e.LiveProcs() != 0 {
		t.Fatalf("live=%d after Close, want 0", e.LiveProcs())
	}
}

func TestAtCallback(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	e.At(5*time.Millisecond, func() { at = e.Now() })
	e.Run(0)
	if at != 5*time.Millisecond {
		t.Fatalf("callback at %v", at)
	}
}

func TestAtPastClampsToNow(t *testing.T) {
	e := NewEnv()
	var ran bool
	e.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.Env().At(0, func() { ran = true }) // in the past
	})
	e.Run(0)
	if !ran {
		t.Fatal("past event never ran")
	}
}

func TestNestedSpawn(t *testing.T) {
	e := NewEnv()
	var hits int
	e.Go("outer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Env().Go("inner", func(p2 *Proc) {
				p2.Sleep(time.Millisecond)
				hits++
			})
		}
		p.Sleep(2 * time.Millisecond)
	})
	e.Run(0)
	if hits != 3 {
		t.Fatalf("hits=%d", hits)
	}
}

func TestYield(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run(0)
	if order[0] != "a1" || order[1] != "b1" || order[2] != "a2" {
		t.Fatalf("order %v", order)
	}
}

func BenchmarkContextSwitch(b *testing.B) {
	e := NewEnv()
	e.Go("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run(0)
}
