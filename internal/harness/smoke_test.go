package harness

import (
	"fmt"
	"testing"

	"tsue/internal/trace"
	"tsue/internal/update"
)

// shapeConfig is the shared small-scale configuration of the shape tests.
// Blocks are 256 KiB so the working set spans 16 stripes: with the
// CRUSH-like pseudo-random placement a handful of stripes can land
// hash-unluckily (hot blocks and parity roles piling onto few OSDs, which
// swings every engine's throughput by several x in either direction), and
// the paper's comparative shapes only emerge once the stripe population is
// large enough for the placement to even out — as on the paper's testbed,
// where stripes vastly outnumber OSDs.
func shapeConfig(eng string, m int) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Engine = eng
	cfg.Ops = 2000
	cfg.Clients = 16
	cfg.K, cfg.M = 6, m
	cfg.BlockSize = 256 << 10
	cfg.FileBytes = 24 << 20
	return cfg
}

// TestShapeTSUEFastest checks the paper's headline shape at small scale:
// TSUE has the highest update throughput of all six engines on the
// Ten-Cloud trace under RS(6,4).
func TestShapeTSUEFastest(t *testing.T) {
	iops := map[string]float64{}
	for _, eng := range update.Names() {
		cfg := shapeConfig(eng, 4)
		cfg.Trace = trace.TenCloud(cfg.FileBytes)
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		iops[eng] = r.IOPS
		t.Logf("%-6s IOPS=%8.0f elapsed=%v stripes=%d", eng, r.IOPS, r.Elapsed, r.Stripes)
	}
	for _, eng := range update.Names() {
		if eng != "tsue" && iops["tsue"] <= iops[eng] {
			t.Errorf("tsue (%.0f) not faster than %s (%.0f)", iops["tsue"], eng, iops[eng])
		}
	}
}

// TestShapeAdvantageGrowsWithM: TSUE's edge over PL grows from M=2 to M=4
// (paper: 1.5x -> 2.2x).
func TestShapeAdvantageGrowsWithM(t *testing.T) {
	adv := func(m int) float64 {
		var tsue, pl float64
		for _, eng := range []string{"tsue", "pl"} {
			cfg := shapeConfig(eng, m)
			cfg.Trace = trace.AliCloud(cfg.FileBytes)
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s M=%d: %v", eng, m, err)
			}
			if eng == "tsue" {
				tsue = r.IOPS
			} else {
				pl = r.IOPS
			}
		}
		fmt.Printf("M=%d tsue/pl=%.2f\n", m, tsue/pl)
		return tsue / pl
	}
	a2 := adv(2)
	a4 := adv(4)
	if a4 <= a2 {
		t.Errorf("advantage did not grow with M: M=2 %.2fx, M=4 %.2fx", a2, a4)
	}
	if a2 < 1.0 {
		t.Errorf("tsue slower than pl at M=2: %.2fx", a2)
	}
}
