package harness

// The degraded experiment (beyond the paper's figures, after its §4.2
// recovery discussion and Fig. 8b): fail an OSD *while* a foreground update
// workload is running and recover it under each protocol, measuring how
// long recovery takes, how far foreground IOPS dip while it runs — the
// Rashmi et al. observation that recovery traffic competes with foreground
// I/O on the same NICs — and how many bytes each scheme must replay from
// replicated logs.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// DegradedResult captures one degraded-mode recovery run.
type DegradedResult struct {
	Cfg RunConfig
	// Mode is the recovery protocol used.
	Mode cluster.RecoverMode
	// Report is the cluster's recovery report (rebuild/settle/replay times,
	// replayed bytes, reconstruction bandwidth).
	Report *cluster.RecoveryReport
	// BaselineIOPS is foreground update throughput before the failure;
	// DuringIOPS is throughput between failure injection and recovery
	// completion; DipPct is the relative drop.
	BaselineIOPS float64
	DuringIOPS   float64
	DipPct       float64
	// JournalBytes is surrogate-journal bytes appended per OSD during the
	// degraded window (the placement experiment's surrogate-load spread).
	JournalBytes map[wire.NodeID]int64
	// Quorum* aggregate journal quorum replication traffic during the
	// window: Sent counts acked JournalReplica messages/bytes the
	// surrogates pushed to their holder sets, Held what the holders retain.
	QuorumSentMsgs, QuorumSentBytes int64
	QuorumHeldMsgs, QuorumHeldBytes int64
	// ReadLats are the latencies of foreground reads issued inside the
	// recovery window — the degraded-read latency distribution the ROADMAP
	// trace-latency item asks for, not just the aggregate IOPS dip. Reads
	// of degraded stripes route through the surrogate (on-the-fly
	// reconstruction + journal overlay) or block at recovery gates, so the
	// tail directly exposes each protocol's read-path cost.
	ReadLats []time.Duration
	// ReadErrs counts window reads that failed outright after exhausting
	// their retry budget (drain-first recovery serves no degraded reads —
	// the dead node's blocks are simply unreadable until rebuilt).
	ReadErrs int
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int

	// readDist caches the sorted ReadLats; built on first ReadP call, after
	// the run has finished appending samples.
	readDist *LatencyDist
}

// ReadP returns the p-quantile of the window read latencies. The samples
// are sorted once and cached, so printing a row at p50/p95/p99/p999 pays
// for one sort total.
func (r *DegradedResult) ReadP(p float64) time.Duration {
	if r.readDist == nil {
		d := NewLatencyDist(r.ReadLats)
		r.readDist = &d
	}
	return r.readDist.P(p)
}

// RunDegraded preloads a volume, runs a continuous foreground update
// workload, fails one OSD a third of the way through, and recovers it under
// the given mode while the workload keeps issuing updates (which block at
// the gate or route through the surrogate journal, depending on the mode).
// The run ends with a drain and a full scrub.
func RunDegraded(cfg RunConfig, mode cluster.RecoverMode) (*DegradedResult, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	res := &DegradedResult{Cfg: cfg, Mode: mode}
	var runErr error
	c.Env.Go("degraded-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		payload := make([]byte, 1<<20)
		rand.New(rand.NewSource(cfg.Seed + 999)).Read(payload)

		nClients := cfg.Clients
		if nClients < 1 {
			nClients = 1
		}
		// Generous per-client cap: the stop flag (set when recovery
		// completes) is the intended exit, the cap only bounds runaway runs.
		// It must stay high enough that clients keep offering load through
		// the whole recovery — journaled degraded updates complete at
		// log-append speed, far above the steady-state rate.
		opsPer := 20 * cfg.Ops / nClients
		stop := false
		done := 0
		start := p.Now()
		wg := sim.NewWaitGroup(c.Env)
		wg.Add(nClients)
		var clientErr error
		for ci := 0; ci < nClients; ci++ {
			ci := ci
			cl := c.NewClient()
			ino := inos[ci%len(inos)]
			prof := cfg.Trace
			prof.WorkingSet = perFile
			gen := trace.MustGenerator(prof, cfg.Seed+int64(ci)*7919)
			c.Env.Go(fmt.Sprintf("fg%d", ci), func(cp *sim.Proc) {
				defer wg.Done()
				for j := 0; j < opsPer && !stop; j++ {
					// Update-only foreground: resample until a write so the
					// dip measures the update path (reads of lost blocks are
					// exercised by the degraded tests).
					op := gen.Next()
					for op.Kind != trace.Write {
						op = gen.Next()
					}
					off := op.Off
					if off+int64(op.Size) > perFile {
						off = perFile - int64(op.Size)
					}
					pstart := int(off) % (len(payload) - int(op.Size))
					if err := cl.Update(cp, ino, off, payload[pstart:pstart+int(op.Size)]); err != nil {
						if clientErr == nil {
							clientErr = fmt.Errorf("foreground client %d op %d: %w", ci, j, err)
						}
						return
					}
					done++
				}
			})
		}

		// Reader probes: a small pool of clients issuing trace-shaped reads
		// at a gentle pace, so the degraded window yields a read-latency
		// distribution without the probes themselves becoming the load.
		type readSample struct{ start, lat time.Duration }
		var samples []readSample
		var errStarts []time.Duration
		nReaders := nClients / 4
		if nReaders < 2 {
			nReaders = 2
		}
		for ri := 0; ri < nReaders; ri++ {
			ri := ri
			rcl := c.NewClient()
			ino := inos[ri%len(inos)]
			prof := cfg.Trace
			prof.WorkingSet = perFile
			rgen := trace.MustGenerator(prof, cfg.Seed+int64(1000+ri)*104651)
			wg.Add(1)
			c.Env.Go(fmt.Sprintf("rd%d", ri), func(cp *sim.Proc) {
				defer wg.Done()
				for j := 0; j < opsPer && !stop; j++ {
					op := rgen.Next()
					off := op.Off
					if off+int64(op.Size) > perFile {
						off = perFile - int64(op.Size)
					}
					issued := cp.Now()
					if _, err := rcl.Read(cp, ino, off, int64(op.Size)); err != nil {
						// Window reads CAN fail legitimately: drain-first
						// recovery never serves the dead node's blocks.
						errStarts = append(errStarts, issued)
					} else {
						samples = append(samples, readSample{start: issued, lat: cp.Now() - issued})
					}
					cp.Sleep(500 * time.Microsecond)
				}
			})
		}

		// Warm up to steady state, then fail a node and recover while the
		// foreground keeps running.
		warmTarget := cfg.Ops / 3
		if warmTarget < 1 {
			warmTarget = 1
		}
		for done < warmTarget && clientErr == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if clientErr != nil {
			runErr = clientErr
			return
		}
		preOps := done
		t0 := p.Now()
		// Fail the most-loaded OSD so the rebuild volume is representative
		// (small working sets can leave hash-unlucky OSDs empty).
		victim := wire.NodeID(1)
		most := -1
		for _, osd := range c.OSDs {
			if n := osd.Store().Len(); n > most {
				most = n
				victim = osd.NodeID()
			}
		}
		rep, err := c.Recover(p, victim, 8, mode, admin)
		if err != nil {
			runErr = fmt.Errorf("recover (%s): %w", mode, err)
			return
		}
		t1 := p.Now()
		duringOps := done - preOps
		stop = true
		wg.Wait(p)
		if clientErr != nil {
			runErr = clientErr
			return
		}

		res.Report = rep
		res.JournalBytes = c.JournalBytesPerOSD()
		res.QuorumSentMsgs, res.QuorumSentBytes, res.QuorumHeldMsgs, res.QuorumHeldBytes = c.JournalQuorumStats()
		for _, sm := range samples {
			if sm.start >= t0 && sm.start <= t1 {
				res.ReadLats = append(res.ReadLats, sm.lat)
			}
		}
		for _, es := range errStarts {
			if es >= t0 && es <= t1 {
				res.ReadErrs++
			}
		}
		if d := (t0 - start).Seconds(); d > 0 {
			res.BaselineIOPS = float64(preOps) / d
		}
		if d := (t1 - t0).Seconds(); d > 0 {
			res.DuringIOPS = float64(duringOps) / d
		}
		if res.BaselineIOPS > 0 {
			res.DipPct = 100 * (1 - res.DuringIOPS/res.BaselineIOPS)
		}

		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-recovery scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// degradedModes is the experiment's protocol sweep.
func degradedModes() []cluster.RecoverMode {
	return []cluster.RecoverMode{
		cluster.RecoverDrainFirst,
		cluster.RecoverLogReplay,
		cluster.RecoverInterleaved,
	}
}

// Degraded runs the degraded-mode recovery experiment: every trace × every
// engine × every recovery protocol under a continuous foreground update
// load plus reader probes, reporting recovery time, the foreground IOPS
// dip, replayed log bytes, AND the per-trace degraded-read latency
// percentiles (p50/p95/p99 of reads issued inside the recovery window) —
// the Fig. 8b comparison extended with the update/failure overlap the
// paper's log-reliability argument is really about, completed with the
// ROADMAP's trace-latency distribution item.
func Degraded(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Degraded: recovery under foreground load (SSD, RS(6,4)); window read latency p50/p95/p99 ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\tengine\tmode\trecover(ms)\tbarrier(ms)\trebuild(ms)\treplay(ms)\tgated(ms)\treplayed(KB)\trebuild(MB/s)\tbase IOPS\tduring IOPS\tdip\trd p50(ms)\trd p95(ms)\trd p99(ms)\trd err")
	for _, tr := range []string{"ali", "ten"} {
		for _, eng := range update.Names() {
			for _, mode := range degradedModes() {
				cfg := baseRun(s)
				cfg.Engine = eng
				cfg.Clients = 16
				cfg.Trace = s.traceProfile(tr)
				r, err := RunDegraded(cfg, mode)
				if err != nil {
					return fmt.Errorf("degraded %s %s %s: %w", tr, eng, mode, err)
				}
				rep := r.Report
				fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f%%\t%.2f\t%.2f\t%.2f\t%d\n",
					tr, eng, mode,
					ms(rep.TotalTime), ms(rep.DrainTime), ms(rep.RebuildTime), ms(rep.ReplayTime), ms(rep.GatedTime),
					float64(rep.ReplayedBytes)/1024,
					rep.BandwidthBps/(1<<20),
					r.BaselineIOPS, r.DuringIOPS, r.DipPct,
					ms(r.ReadP(0.50)), ms(r.ReadP(0.95)), ms(r.ReadP(0.99)), r.ReadErrs)
				labels := map[string]string{"trace": tr, "engine": eng, "mode": mode.String()}
				s.Sink.Record("degraded", "recover_ms", labels, ms(rep.TotalTime))
				s.Sink.Record("degraded", "dip_pct", labels, r.DipPct)
				s.Sink.Record("degraded", "read_p50_ms", labels, ms(r.ReadP(0.50)))
				s.Sink.Record("degraded", "read_p95_ms", labels, ms(r.ReadP(0.95)))
				s.Sink.Record("degraded", "read_p99_ms", labels, ms(r.ReadP(0.99)))
				s.Sink.Record("degraded", "read_errs", labels, float64(r.ReadErrs))
				s.Sink.Record("degraded", "journal_quorum_sent_msgs", labels, float64(r.QuorumSentMsgs))
				s.Sink.Record("degraded", "journal_quorum_sent_bytes", labels, float64(r.QuorumSentBytes))
				s.Sink.Record("degraded", "journal_quorum_held_bytes", labels, float64(r.QuorumHeldBytes))
			}
		}
	}
	return tw.Flush()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
