package harness

// The chaos experiment: the same foreground update + reader-probe workload
// as the degraded experiment, but with the netsim fault fabric armed —
// stragglers, asymmetric partitions, flapping OSDs, in-flight payload
// corruption — measuring the window read-latency tail (p50/p95/p99) each
// engine exposes under each fault, plus the hedged-read and checksum
// counters that prove the mitigation machinery ran. The straggler and
// baseline scenarios kill and recover an OSD (RecoverInterleaved, so
// degraded reads reconstruct on the fly and hedging has a primary leg to
// race); the live-fault scenarios (partition, flap, corrupt) keep the
// cluster whole and bound the fault to a virtual-time window.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/netsim"
	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// Chaos scenario names. Order matters to the driver: baseline runs before
// straggler so the p99 degradation ratio can be computed in one pass.
const (
	ChaosBaseline  = "baseline"  // kill + interleaved recovery, no added fault
	ChaosStraggler = "straggler" // kill + recovery with one lognormal-slow survivor, hedging armed
	ChaosPartition = "partition" // asymmetric client→OSD cuts for a window, then heal
	ChaosFlap      = "flap"      // one OSD flaps down/up; tears scrubbed after heal
	ChaosCorrupt   = "corrupt"   // every Nth checksum-bearing payload flipped in flight
)

// ChaosScenarios lists the scenarios in driver order.
func ChaosScenarios() []string {
	return []string{ChaosBaseline, ChaosStraggler, ChaosPartition, ChaosFlap, ChaosCorrupt}
}

// chaosHedgeDelay arms hedged degraded reads for the kill scenarios: well
// above a healthy small-range reconstruction (device read + one RTT), well
// below the straggler's median, so the hedge stays quiet on the baseline
// and wins under the straggler.
const chaosHedgeDelay = time.Millisecond

// chaosStragglerDist is the straggler's service-time distribution — the
// lognormal tail the hedging literature models, not a deterministic stall
// (the chaos grid tests pin the deterministic case).
func chaosStragglerDist() netsim.Dist {
	return netsim.Lognormal{Median: 5 * time.Millisecond, Sigma: 0.6}
}

// chaosCorruptRate flips one in this many eligible (checksum-bearing,
// data-carrying) payloads during the corrupt window — low enough that even
// a small-scale run injects a handful, high enough that the retry storm
// stays a perturbation rather than the workload.
const chaosCorruptRate = 31

// ChaosResult captures one chaos run.
type ChaosResult struct {
	Cfg      RunConfig
	Scenario string
	// Report is the recovery report for the kill scenarios; nil for the
	// live-fault scenarios (partition, flap, corrupt), which never kill.
	Report *cluster.RecoveryReport
	// BaselineIOPS is foreground update throughput before the fault
	// window; DuringIOPS is throughput inside it; DipPct the relative drop.
	BaselineIOPS float64
	DuringIOPS   float64
	DipPct       float64
	// ReadLats are latencies of reader-probe reads issued inside the fault
	// window — the tail each fault inflates. ReadErrs counts window reads
	// that exhausted their retry budget.
	ReadLats []time.Duration
	ReadErrs int
	// HedgeFired/HedgeWins aggregate the hedged-read counters across OSDs.
	HedgeFired, HedgeWins int64
	// CorruptInjected is what the fabric flipped; CorruptDetected what the
	// checksum verify points caught. The run fails if any escape.
	CorruptInjected, CorruptDetected int64
	// RepairedBlocks counts blocks ScrubRepair re-encoded after the flap
	// scenario (stripes torn by mid-update message drops).
	RepairedBlocks int
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int

	// readDist caches the sorted ReadLats; built on first ReadP call, after
	// the run has finished appending samples.
	readDist *LatencyDist
}

// ReadP returns the p-quantile of the window read latencies. The samples
// are sorted once and cached, so printing a row at p50/p95/p99/p999 pays
// for one sort total.
func (r *ChaosResult) ReadP(p float64) time.Duration {
	if r.readDist == nil {
		d := NewLatencyDist(r.ReadLats)
		r.readDist = &d
	}
	return r.readDist.P(p)
}

// flipCorruptor corrupts every rate-th checksum-bearing payload crossing
// the fabric, cloning so the sender's buffers stay intact. The corruptor
// targets the client-facing and repair paths; the engines' internal
// fan-out messages (DeltaAppend, ParixAppend, ParityDelta, LogReplica,
// ReplayUpdate) now carry Sums too and are verified centrally at OSD
// dispatch, but they are deliberately NOT corrupted here: a flipped XOR
// delta rejected mid-fan-out would make the client's retry re-apply the
// delta to parities that already took it, which is not idempotent — the
// detection path is covered by the wire-level unit tests instead.
func flipCorruptor(rate int) netsim.Corruptor {
	seen := 0
	flip := func(data []byte) ([]byte, bool) {
		if len(data) == 0 {
			return nil, false
		}
		seen++
		if seen%rate != 0 {
			return nil, false
		}
		cp := append([]byte(nil), data...)
		cp[len(cp)/2] ^= 0xff
		return cp, true
	}
	return func(from, to wire.NodeID, m wire.Msg) (wire.Msg, bool) {
		switch v := m.(type) {
		case *wire.PutBlock:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.ReadResp:
			if v.Err == "" {
				if data, ok := flip(v.Data); ok {
					cp := *v
					cp.Data = data
					return &cp, true
				}
			}
		case *wire.Update:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.DegradedUpdate:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		case *wire.JournalReplica:
			if data, ok := flip(v.Data); ok {
				cp := *v
				cp.Data = data
				return &cp, true
			}
		}
		return nil, false
	}
}

// chaosKills reports whether the scenario fails and recovers an OSD.
func chaosKills(scenario string) bool {
	return scenario == ChaosBaseline || scenario == ChaosStraggler
}

// RunChaos preloads a volume, runs the degraded experiment's foreground
// update + reader-probe workload, arms the scenario's fault a third of the
// way through, and measures the read tail inside the fault window. Kill
// scenarios recover under RecoverInterleaved while the fault is live;
// live-fault scenarios heal the fabric after a fixed virtual window. Every
// run ends with a drain, a tear-repair scrub where the fault can tear
// stripes, and a full verification scrub.
func RunChaos(cfg RunConfig, scenario string) (*ChaosResult, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	res := &ChaosResult{Cfg: cfg, Scenario: scenario}
	var runErr error
	c.Env.Go("chaos-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		payload := make([]byte, 1<<20)
		rand.New(rand.NewSource(cfg.Seed + 999)).Read(payload)

		nClients := cfg.Clients
		if nClients < 1 {
			nClients = 1
		}
		opsPer := 20 * cfg.Ops / nClients
		stop := false
		done := 0
		start := p.Now()
		wg := sim.NewWaitGroup(c.Env)
		wg.Add(nClients)
		var clientErr error
		var clientIDs []wire.NodeID
		for ci := 0; ci < nClients; ci++ {
			ci := ci
			cl := c.NewClient()
			clientIDs = append(clientIDs, cl.ID())
			ino := inos[ci%len(inos)]
			prof := cfg.Trace
			prof.WorkingSet = perFile
			gen := trace.MustGenerator(prof, cfg.Seed+int64(ci)*7919)
			c.Env.Go(fmt.Sprintf("fg%d", ci), func(cp *sim.Proc) {
				defer wg.Done()
				for j := 0; j < opsPer && !stop; j++ {
					op := gen.Next()
					for op.Kind != trace.Write {
						op = gen.Next()
					}
					off := op.Off
					if off+int64(op.Size) > perFile {
						off = perFile - int64(op.Size)
					}
					pstart := int(off) % (len(payload) - int(op.Size))
					if err := cl.Update(cp, ino, off, payload[pstart:pstart+int(op.Size)]); err != nil {
						if clientErr == nil {
							clientErr = fmt.Errorf("foreground client %d op %d: %w", ci, j, err)
						}
						return
					}
					done++
				}
			})
		}

		type readSample struct{ start, lat time.Duration }
		var samples []readSample
		var errStarts []time.Duration
		// A denser probe pool than the degraded experiment's: the fault
		// windows are short fixed slices of virtual time, so the tail
		// estimate needs every sample it can get.
		nReaders := nClients / 2
		if nReaders < 4 {
			nReaders = 4
		}
		for ri := 0; ri < nReaders; ri++ {
			ri := ri
			rcl := c.NewClient()
			clientIDs = append(clientIDs, rcl.ID())
			ino := inos[ri%len(inos)]
			prof := cfg.Trace
			prof.WorkingSet = perFile
			rgen := trace.MustGenerator(prof, cfg.Seed+int64(1000+ri)*104651)
			wg.Add(1)
			c.Env.Go(fmt.Sprintf("rd%d", ri), func(cp *sim.Proc) {
				defer wg.Done()
				for j := 0; j < opsPer && !stop; j++ {
					op := rgen.Next()
					off := op.Off
					if off+int64(op.Size) > perFile {
						off = perFile - int64(op.Size)
					}
					issued := cp.Now()
					if _, err := rcl.Read(cp, ino, off, int64(op.Size)); err != nil {
						errStarts = append(errStarts, issued)
					} else {
						samples = append(samples, readSample{start: issued, lat: cp.Now() - issued})
					}
					cp.Sleep(250 * time.Microsecond)
				}
			})
		}

		warmTarget := cfg.Ops / 3
		if warmTarget < 1 {
			warmTarget = 1
		}
		for done < warmTarget && clientErr == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if clientErr != nil {
			runErr = clientErr
			return
		}
		preOps := done
		t0 := p.Now()

		// Target selection: the most-loaded OSD is the kill victim (so the
		// rebuild volume is representative); the fault target for the
		// live-fault scenarios and the straggler is the most-loaded
		// survivor, so the fault actually intersects the workload.
		mostLoaded := func(exclude wire.NodeID) wire.NodeID {
			id, most := wire.NodeID(1), -1
			for _, osd := range c.OSDs {
				if osd.NodeID() == exclude {
					continue
				}
				if n := osd.Store().Len(); n > most {
					most = n
					id = osd.NodeID()
				}
			}
			return id
		}

		var victim wire.NodeID
		switch scenario {
		case ChaosBaseline, ChaosStraggler:
			// Degraded window of fixed virtual length: the victim is down
			// and the degraded route serves (reads of lost blocks
			// reconstruct on the fly, updates journal at the surrogate),
			// with one lognormal-slow survivor in the straggler variant.
			// Recovery runs AFTER the window closes, so the measured tail
			// is the straggler's (and the hedge's), not each engine's
			// rebuild-duration artifact.
			victim = mostLoaded(0)
			target := mostLoaded(victim)
			if err := c.Fabric.SetDown(victim, true); err != nil {
				runErr = err
				return
			}
			if err := c.BeginDegraded(p, victim, admin); err != nil {
				runErr = fmt.Errorf("begin degraded (%s): %w", scenario, err)
				return
			}
			if scenario == ChaosStraggler {
				if err := c.Fabric.SetNodeShape(target, netsim.LinkShape{Latency: chaosStragglerDist()}); err != nil {
					runErr = err
					return
				}
			}
			p.Sleep(10 * time.Millisecond)
			if scenario == ChaosStraggler {
				if err := c.Fabric.SetNodeShape(target, netsim.LinkShape{}); err != nil {
					runErr = err
					return
				}
			}
		case ChaosPartition:
			// Asymmetric grey failure: every client loses its link TO one
			// loaded OSD (requests die pre-handler, so no side effects);
			// ops touching it retry until the heal.
			target := mostLoaded(0)
			for _, cid := range clientIDs {
				if err := c.Fabric.Partition(cid, target, true); err != nil {
					runErr = err
					return
				}
			}
			p.Sleep(4 * time.Millisecond)
			for _, cid := range clientIDs {
				if err := c.Fabric.Partition(cid, target, false); err != nil {
					runErr = err
					return
				}
			}
			p.Sleep(time.Millisecond) // let retried ops land inside the window
		case ChaosFlap:
			// One loaded OSD flaps down/up mid-update. Drops inside the
			// flap windows can tear stripes (data applied, parity delta
			// lost, retried delta XORs to zero) — ScrubRepair re-encodes
			// them after the drain, before the verification scrub.
			target := mostLoaded(0)
			if err := c.Fabric.ScheduleFlap(target, p.Now()+200*time.Microsecond, 500*time.Microsecond, 1500*time.Microsecond, 3); err != nil {
				runErr = err
				return
			}
			p.Sleep(6 * time.Millisecond) // outlasts the last flap window
		case ChaosCorrupt:
			c.Fabric.SetCorruptor(flipCorruptor(chaosCorruptRate))
			p.Sleep(6 * time.Millisecond)
			c.Fabric.SetCorruptor(nil)
		default:
			runErr = fmt.Errorf("unknown chaos scenario %q", scenario)
			return
		}

		t1 := p.Now()
		duringOps := done - preOps
		stop = true
		wg.Wait(p)
		if clientErr != nil {
			runErr = clientErr
			return
		}
		if chaosKills(scenario) {
			rep, err := c.Recover(p, victim, 8, cluster.RecoverInterleaved, admin)
			if err != nil {
				runErr = fmt.Errorf("recover (%s): %w", scenario, err)
				return
			}
			res.Report = rep
		}

		for _, sm := range samples {
			if sm.start >= t0 && sm.start <= t1 {
				res.ReadLats = append(res.ReadLats, sm.lat)
			}
		}
		for _, es := range errStarts {
			if es >= t0 && es <= t1 {
				res.ReadErrs++
			}
		}
		if d := (t0 - start).Seconds(); d > 0 {
			res.BaselineIOPS = float64(preOps) / d
		}
		if d := (t1 - t0).Seconds(); d > 0 {
			res.DuringIOPS = float64(duringOps) / d
		}
		if res.BaselineIOPS > 0 {
			res.DipPct = 100 * (1 - res.DuringIOPS/res.BaselineIOPS)
		}
		res.HedgeFired, res.HedgeWins = c.HedgeStats()
		res.CorruptInjected = c.Fabric.CorruptionsInjected()
		res.CorruptDetected = c.CorruptionsDetected()
		if res.CorruptDetected != res.CorruptInjected {
			runErr = fmt.Errorf("%s: %d corruptions injected but %d detected — silent escape",
				scenario, res.CorruptInjected, res.CorruptDetected)
			return
		}

		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if scenario == ChaosFlap {
			blocks, _, err := c.ScrubRepair(p)
			if err != nil {
				runErr = fmt.Errorf("scrub-repair after flap: %w", err)
				return
			}
			res.RepairedBlocks = blocks
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-chaos scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Chaos runs the chaos experiment: every engine × every fault scenario
// under the foreground workload, reporting the window read tail
// (p50/p95/p99), the IOPS dip, the hedge fired/win counters, the
// corruption injected/detected counters (which must match), and — the
// headline comparison — each engine's straggler p99 degradation relative
// to its own clean-recovery baseline.
func Chaos(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Chaos: read tail under injected faults (SSD, RS(6,4), interleaved recovery for kill scenarios) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tscenario\trecover(ms)\tbase IOPS\tduring IOPS\tdip\trd p50(ms)\trd p95(ms)\trd p99(ms)\trd err\thedge f/w\tcorrupt i/d\trepaired\tp99 vs base")
	for _, eng := range update.Names() {
		var baselineP99 float64
		for _, scen := range ChaosScenarios() {
			cfg := baseRun(s)
			cfg.Engine = eng
			cfg.Clients = 16
			cfg.Trace = s.traceProfile("ali")
			if chaosKills(scen) {
				cfg.Hedge = chaosHedgeDelay
			}
			r, err := RunChaos(cfg, scen)
			if err != nil {
				return fmt.Errorf("chaos %s %s: %w", eng, scen, err)
			}
			recoverMS := 0.0
			if r.Report != nil {
				recoverMS = ms(r.Report.TotalTime)
			}
			dist := NewLatencyDist(r.ReadLats) // one sort for all quantiles below
			p99 := ms(dist.P(0.99))
			ratio := ""
			labels := map[string]string{"engine": eng, "scenario": scen}
			if scen == ChaosBaseline {
				baselineP99 = p99
			} else if scen == ChaosStraggler {
				if baselineP99 > 0 {
					rr := p99 / baselineP99
					ratio = fmt.Sprintf("%.2fx", rr)
					s.Sink.Record("chaos", "straggler_p99_ratio", map[string]string{"engine": eng}, rr)
				} else {
					// An empty baseline window must not read as "no
					// regression" in the BENCH trajectory: say so out loud
					// and leave the ratio metric absent.
					ratio = "skip (no baseline reads)"
					fmt.Fprintf(w, "chaos %s: baseline window saw 0 reads; skipping straggler_p99_ratio\n", eng)
				}
			}
			s.Sink.Record("chaos", "read_samples", labels, float64(dist.N()))
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.0f\t%.0f\t%.0f%%\t%.2f\t%.2f\t%.2f\t%d\t%d/%d\t%d/%d\t%d\t%s\n",
				eng, scen, recoverMS,
				r.BaselineIOPS, r.DuringIOPS, r.DipPct,
				ms(dist.P(0.50)), ms(dist.P(0.95)), p99, r.ReadErrs,
				r.HedgeFired, r.HedgeWins,
				r.CorruptInjected, r.CorruptDetected,
				r.RepairedBlocks, ratio)
			s.Sink.Record("chaos", "read_p50_ms", labels, ms(dist.P(0.50)))
			s.Sink.Record("chaos", "read_p95_ms", labels, ms(dist.P(0.95)))
			s.Sink.Record("chaos", "read_p99_ms", labels, p99)
			s.Sink.Record("chaos", "read_errs", labels, float64(r.ReadErrs))
			s.Sink.Record("chaos", "dip_pct", labels, r.DipPct)
			s.Sink.Record("chaos", "hedge_fired", labels, float64(r.HedgeFired))
			s.Sink.Record("chaos", "hedge_wins", labels, float64(r.HedgeWins))
			s.Sink.Record("chaos", "corrupt_injected", labels, float64(r.CorruptInjected))
			s.Sink.Record("chaos", "corrupt_detected", labels, float64(r.CorruptDetected))
			if r.Report != nil {
				s.Sink.Record("chaos", "recover_ms", labels, recoverMS)
			}
			if scen == ChaosFlap {
				s.Sink.Record("chaos", "repaired_blocks", labels, float64(r.RepairedBlocks))
			}
		}
	}
	return tw.Flush()
}
