package harness

import (
	"testing"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/trace"
)

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := NewPoissonArrivals(500, 64, 42)
	b := NewPoissonArrivals(500, 64, 42)
	var prev time.Duration
	for i := 0; i < 64; i++ {
		ta, oka := a.Next()
		tb, okb := b.Next()
		if !oka || !okb {
			t.Fatalf("arrival %d: exhausted early (ok=%v/%v)", i, oka, okb)
		}
		if ta != tb {
			t.Fatalf("arrival %d: same seed diverged: %v vs %v", i, ta, tb)
		}
		if ta < prev {
			t.Fatalf("arrival %d: time went backwards: %v < %v", i, ta, prev)
		}
		prev = ta
	}
	if _, ok := a.Next(); ok {
		t.Fatal("process yielded a 65th arrival")
	}
	// A different seed must give a different schedule.
	c := NewPoissonArrivals(500, 64, 43)
	same := true
	a2 := NewPoissonArrivals(500, 64, 42)
	for i := 0; i < 64; i++ {
		ta, _ := a2.Next()
		tc, _ := c.Next()
		if ta != tc {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	const rate, n = 1000.0, 4000
	a := NewPoissonArrivals(rate, n, 7)
	var lastAt time.Duration
	for {
		at, ok := a.Next()
		if !ok {
			break
		}
		lastAt = at
	}
	got := float64(n) / lastAt.Seconds()
	if got < 0.9*rate || got > 1.1*rate {
		t.Fatalf("empirical rate %.0f ops/s, want within 10%% of %.0f", got, rate)
	}
}

func TestTraceArrivals(t *testing.T) {
	sched := []time.Duration{0, time.Millisecond, time.Millisecond, 5 * time.Millisecond}
	a, err := NewTraceArrivals(sched)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range sched {
		got, ok := a.Next()
		if !ok || got != want {
			t.Fatalf("arrival %d: got %v ok=%v, want %v", i, got, ok, want)
		}
	}
	if _, ok := a.Next(); ok {
		t.Fatal("exhausted schedule yielded an arrival")
	}
	if _, err := NewTraceArrivals([]time.Duration{time.Second, 0}); err == nil {
		t.Fatal("out-of-order schedule accepted")
	}
	if _, err := NewTraceArrivals([]time.Duration{-time.Second}); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestZipfPickerSkewAndDeterminism(t *testing.T) {
	const n = 256
	a := NewZipfPicker(n, 1.2, 1, 11)
	b := NewZipfPicker(n, 1.2, 1, 11)
	counts := make([]int, n)
	for i := 0; i < 10000; i++ {
		va, vb := a.Pick(), b.Pick()
		if va != vb {
			t.Fatalf("pick %d: same seed diverged: %d vs %d", i, va, vb)
		}
		if va >= n {
			t.Fatalf("pick %d out of range: %d", i, va)
		}
		counts[va]++
	}
	// Zipf skew: the hottest 5% of slots must absorb well over half the
	// accesses (uniform would give them 5%).
	hot := 0
	for i := 0; i < n/20; i++ {
		hot += counts[i]
	}
	if hot < 5000 {
		t.Fatalf("top 5%% of slots got %d/10000 picks; not Zipf-skewed", hot)
	}
}

// openLoopTestConfig is a tiny cluster the open-loop tests finish quickly
// on.
func openLoopTestConfig() RunConfig {
	cfg := DefaultRunConfig()
	cfg.Engine = "fo"
	cfg.OSDs = 10
	cfg.Clients = 4
	cfg.Ops = 64 // unused by open loop (arrival process bounds the run)
	cfg.FileBytes = 12 << 20
	cfg.BlockSize = 256 << 10
	cfg.Trace = trace.AliCloud(cfg.FileBytes)
	return cfg
}

// TestOpenLoopDeterministic pins the load plane's reproducibility: two
// runs with identical seeds produce identical completion counts, latency
// samples and elapsed virtual time (run under -race in CI).
func TestOpenLoopDeterministic(t *testing.T) {
	do := func() *OpenLoopResult {
		cfg := openLoopTestConfig()
		res, err := RunOpenLoop(cfg, OpenLoopConfig{
			Arrivals: NewPoissonArrivals(800, 120, cfg.Seed),
			Zipf:     NewZipfPicker(uint64(cfg.FileBytes/(4<<10)), 1.1, 1, cfg.Seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := do(), do()
	if a.Submitted != b.Submitted || a.Completed != b.Completed || a.Elapsed != b.Elapsed {
		t.Fatalf("runs diverged: %d/%d/%v vs %d/%d/%v",
			a.Submitted, a.Completed, a.Elapsed, b.Submitted, b.Completed, b.Elapsed)
	}
	if len(a.Lats) != len(b.Lats) {
		t.Fatalf("latency sample counts diverged: %d vs %d", len(a.Lats), len(b.Lats))
	}
	for i := range a.Lats {
		if a.Lats[i] != b.Lats[i] {
			t.Fatalf("latency sample %d diverged: %v vs %v", i, a.Lats[i], b.Lats[i])
		}
	}
	if a.Completed != a.Submitted {
		t.Fatalf("completed %d of %d submitted with no admission policy", a.Completed, a.Submitted)
	}
}

// TestOpenLoopArrivalsIndependentOfCompletion pins the open-loop property:
// the whole schedule is submitted even when the cluster cannot keep up, so
// in-flight depth (and with it latency) grows instead of the offered load
// silently shrinking.
func TestOpenLoopArrivalsIndependentOfCompletion(t *testing.T) {
	cfg := openLoopTestConfig()
	const ops = 150
	// Offered load far past anything the cluster sustains: all arrivals in
	// the first ~1.5ms of the run.
	res, err := RunOpenLoop(cfg, OpenLoopConfig{
		Arrivals: NewPoissonArrivals(100000, ops, cfg.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != ops {
		t.Fatalf("submitted %d/%d: arrivals throttled by completions", res.Submitted, ops)
	}
	if res.Completed != ops {
		t.Fatalf("completed %d/%d", res.Completed, ops)
	}
	dist := NewLatencyDist(res.Lats)
	if dist.P(0.99) <= dist.P(0.10) {
		t.Fatalf("overload did not stretch the latency tail: p99=%v p10=%v", dist.P(0.99), dist.P(0.10))
	}
}

// TestOpenLoopAdmissionAccounting runs the open loop against a tight
// token bucket: rejections must be counted identically on both sides and
// every bounced op must be retried to success (zero lost).
func TestOpenLoopAdmissionAccounting(t *testing.T) {
	cfg := openLoopTestConfig()
	cfg.Admission = &cluster.TokenBucket{Rate: 2000, Burst: 4}
	res, err := RunOpenLoop(cfg, OpenLoopConfig{
		Arrivals: NewPoissonArrivals(20000, 100, cfg.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejections == 0 {
		t.Fatal("10x overload never bounced at the admission gate")
	}
	if res.Admission.Rejected != res.Rejections {
		t.Fatalf("MDS counted %d rejections, submitters saw %d", res.Admission.Rejected, res.Rejections)
	}
	if res.Lost != 0 {
		t.Fatalf("%d ops lost to retry exhaustion", res.Lost)
	}
	if res.Completed != res.Submitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Submitted)
	}
	if res.Admission.Inflight != 0 {
		t.Fatalf("in-flight gauge %d after drain", res.Admission.Inflight)
	}
}
