package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tsue/internal/device"
	"tsue/internal/trace"
	"tsue/internal/update"
)

// Scale controls experiment size so the full suite runs from quick CI
// benchmarks up to paper-scale replays.
type Scale struct {
	Ops       int
	FileMB    int64
	Clients   []int // client counts swept in Fig. 5
	RSConfigs [][2]int
	// PGCounts is the placement-group sweep of the placement experiment;
	// Files is its multi-file working-set split.
	PGCounts []int
	Files    int
	// AddOSDs is how many OSDs the rebalance experiment adds (sequential
	// online transitions); RebalanceRateBps throttles its block copies
	// (0 = unthrottled).
	AddOSDs          int
	RebalanceRateBps int64
	// TraceSample, when > 0, turns on end-to-end tracing for every run the
	// experiments launch (RunConfig.TraceSample): every n-th foreground op
	// is traced. Tracing is zero-perturbation — span context rides every
	// wire message whether sampled or not — so measured results are
	// unchanged. The obs experiment forces 1 regardless.
	TraceSample int
	// Sink, when non-nil, collects machine-readable metrics alongside the
	// human tables (tsuebench -json writes them to BENCH_*.json).
	Sink *Sink
}

// QuickScale finishes the whole suite in minutes (bench default).
func QuickScale() Scale {
	return Scale{
		Ops:              3000,
		FileMB:           24,
		Clients:          []int{4, 16, 64},
		RSConfigs:        [][2]int{{6, 2}, {6, 4}},
		PGCounts:         []int{2, 16, 128},
		Files:            8,
		AddOSDs:          1,
		RebalanceRateBps: 64 << 20,
	}
}

// FullScale mirrors the paper's grid (minus absolute trace length).
func FullScale() Scale {
	return Scale{
		Ops:              20000,
		FileMB:           96,
		Clients:          []int{4, 8, 16, 32, 64},
		RSConfigs:        [][2]int{{6, 2}, {12, 2}, {6, 3}, {12, 3}, {6, 4}, {12, 4}},
		PGCounts:         []int{4, 32, 256, 1024},
		Files:            16,
		AddOSDs:          2,
		RebalanceRateBps: 256 << 20,
	}
}

func (s Scale) traceProfile(name string) trace.Profile {
	ws := s.FileMB << 20
	switch name {
	case "ali":
		return trace.AliCloud(ws)
	case "ten":
		return trace.TenCloud(ws)
	default:
		p, err := trace.MSR(name, ws)
		if err != nil {
			panic(err)
		}
		return p
	}
}

func baseRun(s Scale) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Ops = s.Ops
	cfg.FileBytes = s.FileMB << 20
	cfg.TraceSample = s.TraceSample
	return cfg
}

// Fig5 regenerates Fig. 5 (a)-(l): aggregate update IOPS on the SSD cluster
// for every RS config x trace x client count x engine.
func Fig5(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 5: update throughput, SSD cluster, 16 nodes, 25Gb/s ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rs\ttrace\tclients\t%s\t%s\t%s\t%s\t%s\t%s\ttsue/pl\ttsue/best-other\n",
		"fo", "pl", "plr", "parix", "cord", "tsue")
	for _, rsCfg := range s.RSConfigs {
		for _, tr := range []string{"ali", "ten"} {
			for _, nc := range s.Clients {
				iops := map[string]float64{}
				for _, eng := range update.Names() {
					cfg := baseRun(s)
					cfg.Engine = eng
					cfg.K, cfg.M = rsCfg[0], rsCfg[1]
					cfg.Clients = nc
					cfg.Trace = s.traceProfile(tr)
					r, err := Run(cfg)
					if err != nil {
						return fmt.Errorf("fig5 %s rs(%d,%d) %s c=%d: %w", eng, rsCfg[0], rsCfg[1], tr, nc, err)
					}
					iops[eng] = r.IOPS
					s.Sink.Record("fig5", "iops", map[string]string{
						"engine": eng, "rs": fmt.Sprintf("%d_%d", rsCfg[0], rsCfg[1]),
						"trace": tr, "clients": fmt.Sprintf("%d", nc),
					}, r.IOPS)
				}
				best := 0.0
				for _, eng := range update.Names() {
					if eng != "tsue" && iops[eng] > best {
						best = iops[eng]
					}
				}
				fmt.Fprintf(tw, "RS(%d,%d)\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.2fx\t%.2fx\n",
					rsCfg[0], rsCfg[1], tr, nc,
					iops["fo"], iops["pl"], iops["plr"], iops["parix"], iops["cord"], iops["tsue"],
					ratio(iops["tsue"], iops["pl"]), ratio(iops["tsue"], best))
			}
		}
	}
	return tw.Flush()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig6a regenerates Fig. 6a: TSUE aggregate IOPS over time, showing that
// recycle overhead is invisible with >= 4 log units but throttles appends
// with only 2.
func Fig6a(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 6a: recycle overhead during updates (IOPS timeline) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, units := range []int{2, 4, 8} {
		cfg := baseRun(s)
		cfg.Engine = "tsue"
		cfg.Clients = 32
		cfg.Trace = s.traceProfile("ali")
		cfg.Opts.MaxUnits = units
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("fig6a units=%d: %w", units, err)
		}
		fmt.Fprintf(tw, "maxUnits=%d\tIOPS=%.0f\t", units, r.IOPS)
		for _, v := range r.Timeline(10) {
			fmt.Fprintf(tw, "%.0f\t", v)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig6b regenerates Fig. 6b: update IOPS and peak log memory as the unit
// quota per pool sweeps 2..20.
func Fig6b(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 6b: memory usage vs number of log units ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "maxUnits\tIOPS\tpeakLogMem(MB)\tmem% (of 16x1GB quota)")
	for _, units := range []int{2, 4, 6, 8, 12, 16, 20} {
		cfg := baseRun(s)
		cfg.Engine = "tsue"
		cfg.Clients = 32
		cfg.Trace = s.traceProfile("ali")
		cfg.Opts.MaxUnits = units
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("fig6b units=%d: %w", units, err)
		}
		quota := float64(16 << 30) // paper: <=1 GB per SSD across 16 nodes
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.3f%%\n", units, r.IOPS,
			float64(r.PeakMem)/(1<<20), 100*float64(r.PeakMem)/quota)
	}
	return tw.Flush()
}

// fig7Step describes one cumulative optimization of the breakdown.
type fig7Step struct {
	name  string
	apply func(o *update.Options)
}

func fig7Steps() []fig7Step {
	return []fig7Step{
		{"baseline", func(o *update.Options) {
			o.UseDeltaLog = false
			o.DataLocality = false
			o.ParityLocality = false
			o.UseLogPool = false
			o.Pools = 1
		}},
		{"O1 +data locality", func(o *update.Options) { o.DataLocality = true }},
		{"O2 +parity locality", func(o *update.Options) { o.ParityLocality = true }},
		{"O3 +log pool", func(o *update.Options) { o.UseLogPool = true }},
		{"O4 +4 pools", func(o *update.Options) { o.Pools = 4 }},
		{"O5 +delta log", func(o *update.Options) { o.UseDeltaLog = true }},
	}
}

// Fig7 regenerates Fig. 7: the contribution breakdown — cumulative TSUE
// optimizations O1..O5 over the two-log baseline, per trace and RS config.
func Fig7(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 7: breakdown of update throughput (cumulative O1..O5) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "trace/rs\t")
	for _, st := range fig7Steps() {
		fmt.Fprintf(tw, "%s\t", st.name)
	}
	fmt.Fprintln(tw)
	rsSet := [][2]int{{6, 2}, {6, 3}, {6, 4}}
	for _, tr := range []string{"ali", "ten"} {
		for _, rsCfg := range rsSet {
			fmt.Fprintf(tw, "%s RS(%d,%d)\t", tr, rsCfg[0], rsCfg[1])
			opts := baseRun(s).Opts
			for i, st := range fig7Steps() {
				_ = i
				st.apply(&opts)
				cfg := baseRun(s)
				cfg.Engine = "tsue"
				cfg.K, cfg.M = rsCfg[0], rsCfg[1]
				cfg.Clients = 32
				cfg.Trace = s.traceProfile(tr)
				cfg.Opts = opts
				r, err := Run(cfg)
				if err != nil {
					return fmt.Errorf("fig7 %s %s: %w", tr, st.name, err)
				}
				fmt.Fprintf(tw, "%.0f\t", r.IOPS)
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}

// Table1 regenerates Table 1: storage workload and network traffic per
// engine replaying Ten-Cloud under RS(6,4), plus the SSD-wear columns
// backing the paper's lifespan claim.
func Table1(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Table 1: storage workload and network traffic (Ten-Cloud, RS(6,4)) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\tR/W ops\tR/W vol(MB)\toverwrites\tovw vol(MB)\tnet(MB)\tNAND writes(MB)\terases\tlifespan vs tsue")
	type row struct {
		name   string
		dev    device.Stats
		netB   int64
		erases int64
	}
	var rows []row
	for _, eng := range update.Names() {
		cfg := baseRun(s)
		cfg.Engine = eng
		cfg.K, cfg.M = 6, 4
		cfg.Clients = 32
		cfg.Trace = s.traceProfile("ten")
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", eng, err)
		}
		rows = append(rows, row{name: eng, dev: r.Device, netB: r.Net.BytesSent, erases: r.Device.Erases})
	}
	var tsueNand int64
	for _, r := range rows {
		if r.name == "tsue" {
			tsueNand = r.dev.NandWriteBytes
		}
	}
	for _, r := range rows {
		// Wear is NAND bytes actually programmed (host + RMW + GC); the
		// relative lifespan is its inverse ratio.
		life := "1.00x"
		if tsueNand > 0 {
			life = fmt.Sprintf("%.2fx", float64(r.dev.NandWriteBytes)/float64(tsueNand))
		}
		d := r.dev
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%.0f\t%.0f\t%.0f\t%d\t%s\n",
			r.name,
			d.ReadOps+d.WriteOps,
			float64(d.ReadBytes+d.WriteBytes)/(1<<20),
			d.OverwriteOps,
			float64(d.OverwriteBytes)/(1<<20),
			float64(r.netB)/(1<<20),
			float64(d.NandWriteBytes)/(1<<20),
			r.erases,
			life)
	}
	return tw.Flush()
}

// Table2 regenerates Table 2: mean time updated data resides in each log
// layer (append / buffer / recycle) under RS(12,4).
func Table2(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Table 2: time (us) data resides in memory, RS(12,4) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\tlayer\tappend(us)\tbuffer(us)\trecycle(us)\ttotal(us)")
	for _, tr := range []string{"ali", "ten"} {
		cfg := baseRun(s)
		cfg.Engine = "tsue"
		cfg.K, cfg.M = 12, 4
		cfg.Clients = 32
		cfg.Trace = s.traceProfile(tr)
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", tr, err)
		}
		var total time.Duration
		for _, layer := range []string{"data", "delta", "parity"} {
			st, ok := r.Residency[layer]
			if !ok {
				continue
			}
			total += st.MeanAppend() + st.MeanBuffer() + st.MeanRecycle()
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t\n", tr, layer,
				st.MeanAppend().Microseconds(), st.MeanBuffer().Microseconds(), st.MeanRecycle().Microseconds())
		}
		fmt.Fprintf(tw, "%s\tTOTAL\t\t\t\t%d\n", tr, total.Microseconds())
	}
	return tw.Flush()
}

// hddEngines is the Fig. 8 comparison set (the paper omits CoRD on HDDs).
func hddEngines() []string { return []string{"fo", "pl", "plr", "parix", "tsue"} }

func hddRun(s Scale, vol, eng string, unitSize int64) RunConfig {
	cfg := baseRun(s)
	cfg.Engine = eng
	cfg.K, cfg.M = 6, 4
	cfg.Clients = 16
	cfg.Device = device.HDD
	cfg.Trace = s.traceProfile(vol)
	// Paper §5.4: on HDDs, DeltaLogs are disabled, the DataLog keeps 3
	// copies, and each HDD gets one log pool. The unit size maps the
	// paper's 16 MiB-unit steady state onto a seconds-long run: Fig. 8a
	// (sustained update throughput) uses units large relative to the replay
	// so recycling is amortized as at paper scale, while Fig. 8b (recovery
	// after updates stop) uses small units so the log residual at stop is
	// proportionally as small as after the paper's 3-minute runs.
	cfg.Opts.UseDeltaLog = false
	cfg.Opts.Copies = 3
	cfg.Opts.UnitSize = unitSize
	cfg.Opts.CordBufferSize = unitSize
	cfg.Opts.Pools = 1 // paper: one log pool per HDD device
	// HDD runs are slow per-op; keep the op count proportionate.
	cfg.Ops = s.Ops / 4
	if cfg.Ops < 500 {
		cfg.Ops = 500
	}
	return cfg
}

// Fig8a regenerates Fig. 8a: HDD-cluster update throughput per MSR volume.
func Fig8a(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 8a: update throughput with HDDs (MSR volumes, RS(6,4)) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "volume\tfo\tpl\tplr\tparix\ttsue\ttsue/parix")
	for _, vol := range trace.MSRVolumes() {
		iops := map[string]float64{}
		for _, eng := range hddEngines() {
			r, err := Run(hddRun(s, vol, eng, 1<<20))
			if err != nil {
				return fmt.Errorf("fig8a %s %s: %w", vol, eng, err)
			}
			iops[eng] = r.IOPS
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.2fx\n",
			vol, iops["fo"], iops["pl"], iops["plr"], iops["parix"], iops["tsue"],
			ratio(iops["tsue"], iops["parix"]))
	}
	return tw.Flush()
}

// Fig8b regenerates Fig. 8b: recovery bandwidth after an update run on the
// HDD cluster. Recovery must merge outstanding logs first (the paper's
// consistency requirement), so lazy-log schemes pay their deferred debt
// here while TSUE's real-time recycle leaves recovery nearly log-free.
func Fig8b(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Fig. 8b: recovery bandwidth with HDDs (MSR volumes, RS(6,4)) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "volume\tfo(MB/s)\tpl\tplr\tparix\ttsue\ttsue/pl")
	for _, vol := range trace.MSRVolumes() {
		bw := map[string]float64{}
		for _, eng := range hddEngines() {
			r, err := RunRecovery(hddRun(s, vol, eng, 64<<10))
			if err != nil {
				return fmt.Errorf("fig8b %s %s: %w", vol, eng, err)
			}
			bw[eng] = r.BandwidthBps / (1 << 20)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2fx\n",
			vol, bw["fo"], bw["pl"], bw["plr"], bw["parix"], bw["tsue"],
			ratio(bw["tsue"], bw["pl"]))
	}
	return tw.Flush()
}

// Sweep regenerates the batched-recycle sweep (beyond the paper): TSUE
// update IOPS, device work and recycle timing as the per-pool recycler
// batch size and the codec worker bound vary. Batching merges extents
// across sealed units before the single read-modify-write, so the
// interesting virtual-time columns are the overwrite ops actually reaching
// the device and the mean per-extent recycle time. The codec worker bound
// cannot move virtual-time metrics (the simulator charges device and
// network time, not codec CPU); its effect is host wall-clock, reported in
// the last column — expect identical IOPS rows per batch size and a
// wall-time drop on multi-core hosts.
func Sweep(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Sweep: recycler batch size x codec workers (TSUE, SSD, Ali-Cloud, RS(6,4)) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "batch\tworkers\tIOPS\tovw ops\tovw vol(MB)\tnet(MB)\tpeakLogMem(MB)\trecycle(us)\twall(ms)")
	for _, batch := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			cfg := baseRun(s)
			cfg.Engine = "tsue"
			cfg.Clients = 32
			cfg.Trace = s.traceProfile("ali")
			cfg.Opts.RecycleBatch = batch
			cfg.Opts.CodecWorkers = workers
			//lint:allow walltime(the wall(ms) column deliberately reports real elapsed host time of the simulation run, not sim time)
			wallStart := time.Now()
			r, err := Run(cfg)
			if err != nil {
				return fmt.Errorf("sweep batch=%d workers=%d: %w", batch, workers, err)
			}
			//lint:allow walltime(pairs with the wallStart measurement above)
			wall := time.Since(wallStart)
			// True per-extent mean across all three layers (comparable to
			// Table 2's per-layer recycle columns).
			var recTime time.Duration
			var recN int64
			for _, st := range r.Residency {
				recTime += st.RecycleTime
				recN += st.RecycleN
			}
			var rec time.Duration
			if recN > 0 {
				rec = recTime / time.Duration(recN)
			}
			fmt.Fprintf(tw, "%d\t%d\t%.0f\t%d\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				batch, workers, r.IOPS,
				r.Device.OverwriteOps, float64(r.Device.OverwriteBytes)/(1<<20),
				float64(r.Net.BytesSent)/(1<<20),
				float64(r.PeakMem)/(1<<20),
				rec.Microseconds(),
				wall.Milliseconds())
		}
	}
	return tw.Flush()
}

// All runs every experiment in paper order.
func All(w io.Writer, s Scale) error {
	steps := []func(io.Writer, Scale) error{Fig5, Fig6a, Fig6b, Fig7, Table1, Table2, Fig8a, Fig8b, Sweep, Degraded, Placement, Rebalance}
	for _, f := range steps {
		if err := f(w, s); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Experiments maps CLI names to experiment functions.
func Experiments() map[string]func(io.Writer, Scale) error {
	return map[string]func(io.Writer, Scale) error{
		"fig5": Fig5, "fig6a": Fig6a, "fig6b": Fig6b, "fig7": Fig7,
		"table1": Table1, "table2": Table2, "fig8a": Fig8a, "fig8b": Fig8b,
		"sweep": Sweep, "degraded": Degraded, "placement": Placement,
		"rebalance": Rebalance, "rebalance-kill": RebalanceKill,
		"degraded-multikill": DegradedMultiKill, "chaos": Chaos,
		"saturation": Saturation, "obs": Obs, "all": All,
	}
}
