package harness

// The degraded multi-death experiment (beyond the paper's single-failure
// figures): open a degraded window, then chain further deaths INSIDE it —
// first a journal quorum holder, then the journal-holding surrogate — with
// acked degraded updates interleaved between the kills. It measures what
// the quorum-replicated journal design costs (replication messages/bytes
// per acked append) and what it buys (promotion + read-repair resolving
// every death without stranding an acked update), ending drained and
// scrubbed clean.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/sim"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// MultiKillResult captures one degraded multi-death run.
type MultiKillResult struct {
	Cfg RunConfig
	// Deaths is the number of nodes killed (1 = failed node only,
	// 2 = +surrogate, 3 = +quorum holder before the surrogate).
	Deaths int
	// Failed, Surr, Holder are the injected deaths (0 when the scenario's
	// death count does not reach that role).
	Failed, Surr, Holder wire.NodeID
	// Appends counts acked degraded updates across the append phases.
	Appends int
	// Kill is the surrogate-death report: journal promotions, read-repaired
	// items, missed heartbeats of the victim.
	Kill *cluster.KillReport
	// Quorum* aggregate the journal replication traffic: Sent counts acked
	// JournalReplica messages/bytes surrogates pushed to their holder sets,
	// Held counts replica records/bytes the holders retain.
	QuorumSentMsgs, QuorumSentBytes int64
	QuorumHeldMsgs, QuorumHeldBytes int64
	// RecoverTotal sums recovery time across every dead node;
	// ReplayedItems counts journal records replayed at the cutovers.
	RecoverTotal  time.Duration
	ReplayedItems int
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int
}

// RunDegradedMultiKill preloads a volume, opens a degraded window for the
// most-loaded OSD, and drives acked degraded updates to its lost ranges
// while killing up to deaths-1 further nodes at fixed points: the first
// quorum holder of the busiest surrogate (deaths >= 3), then that
// surrogate itself (deaths >= 2). All dead nodes are then recovered —
// journal-less casualties first, the window owner's replay last — and the
// run ends with a drain and a full scrub.
func RunDegradedMultiKill(cfg RunConfig, deaths int) (*MultiKillResult, error) {
	if deaths < 1 || deaths > cfg.M {
		return nil, fmt.Errorf("harness: %d deaths exceed the RS(%d,%d) parity budget", deaths, cfg.K, cfg.M)
	}
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	cl := c.NewClient()
	res := &MultiKillResult{Cfg: cfg, Deaths: deaths}
	var runErr error
	c.Env.Go("multikill-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		// Fail the most-loaded OSD and open its degraded window.
		failed := wire.NodeID(1)
		most := -1
		for _, osd := range c.OSDs {
			if n := osd.Store().Len(); n > most {
				most = n
				failed = osd.NodeID()
			}
		}
		if err := c.BeginDegraded(p, failed, admin); err != nil {
			runErr = fmt.Errorf("begin degraded: %w", err)
			return
		}
		res.Failed = failed

		// The failed node's lost DATA ranges — the offsets whose updates
		// route through the surrogate journals.
		sw := c.StripeWidth()
		ino := inos[0]
		var lost []int64
		for s := uint32(0); int64(s)*sw < perFile; s++ {
			osds := c.Placement(wire.StripeID{Ino: ino, Stripe: s})
			for idx := 0; idx < c.Cfg.K; idx++ {
				if osds[idx] == failed {
					lost = append(lost, int64(s)*sw+int64(idx)*cfg.BlockSize)
				}
			}
		}
		if len(lost) == 0 {
			runErr = fmt.Errorf("most-loaded OSD %d holds no data blocks of vol0", failed)
			return
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 4243))
		span := int(cfg.BlockSize - 4096)
		appends := func(n int) error {
			buf := make([]byte, 4096)
			for i := 0; i < n; i++ {
				rng.Read(buf)
				off := lost[rng.Intn(len(lost))] + int64(rng.Intn(span))
				if err := cl.Update(p, ino, off, buf); err != nil {
					return fmt.Errorf("degraded append %d: %w", i, err)
				}
				res.Appends++
			}
			return nil
		}
		phase := cfg.Ops / 12
		if phase < 20 {
			phase = 20
		}
		if err := appends(phase); err != nil {
			runErr = err
			return
		}

		if deaths >= 2 {
			// Busiest surrogate by journal bytes appended.
			var surr wire.NodeID
			var bmost int64 = -1
			jb := c.JournalBytesPerOSD()
			for _, s := range c.SurrogatesOf(failed) {
				if jb[s] > bmost {
					bmost, surr = jb[s], s
				}
			}
			if surr == 0 {
				runErr = fmt.Errorf("no surrogate journaled anything after %d appends", res.Appends)
				return
			}
			res.Surr = surr
			if deaths >= 3 {
				holders := c.JournalHoldersOf(failed, surr)
				if len(holders) < 2 {
					runErr = fmt.Errorf("surrogate %d has no holder quorum to kill from (%v)", surr, holders)
					return
				}
				res.Holder = holders[0]
				if _, err := c.Kill(p, res.Holder, admin); err != nil {
					runErr = fmt.Errorf("kill holder %d: %w", res.Holder, err)
					return
				}
				if err := appends(phase); err != nil {
					runErr = err
					return
				}
			}
			krep, err := c.Kill(p, surr, admin)
			if err != nil {
				runErr = fmt.Errorf("kill surrogate %d: %w", surr, err)
				return
			}
			res.Kill = krep
			if err := appends(phase); err != nil {
				runErr = err
				return
			}
		}

		res.QuorumSentMsgs, res.QuorumSentBytes, res.QuorumHeldMsgs, res.QuorumHeldBytes = c.JournalQuorumStats()

		// Journal-less casualties rebuild first; the window owner's cutover
		// replay runs last, onto fully-live stripes (the synchronous-parity
		// engines replay full engine writes across each stripe).
		recover := func(id wire.NodeID) error {
			rep, err := c.Recover(p, id, 4, cluster.RecoverInterleaved, admin)
			if err != nil {
				return fmt.Errorf("recover %d: %w", id, err)
			}
			res.RecoverTotal += rep.TotalTime
			res.ReplayedItems += rep.ReplayedItems
			return nil
		}
		if res.Holder != 0 {
			if runErr = recover(res.Holder); runErr != nil {
				return
			}
		}
		if res.Surr != 0 {
			if runErr = recover(res.Surr); runErr != nil {
				return
			}
		}
		if runErr = recover(failed); runErr != nil {
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-multikill scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// DegradedMultiKill runs the multi-death scenario across all six engines
// and every death count up to 3, reporting quorum replication traffic,
// promotion/read-repair work and total recovery time.
func DegradedMultiKill(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Degraded × multi-death: quorum journals under chained kills (SSD, RS(6,4)) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tdeaths\tappends\tq-sent msgs\tq-sent KB\tq-held msgs\tq-held KB\tpromoted\trepaired\treplayed\trecover(ms)\tstripes")
	for _, eng := range update.Names() {
		for _, m := range []int{1, 2, 3} {
			cfg := baseRun(s)
			cfg.Engine = eng
			cfg.Trace = s.traceProfile("ali")
			r, err := RunDegradedMultiKill(cfg, m)
			if err != nil {
				return fmt.Errorf("degraded-multikill %s m=%d: %w", eng, m, err)
			}
			promoted, repaired, missed := 0, 0, uint64(0)
			if r.Kill != nil {
				promoted, repaired, missed = r.Kill.PromotedJournals, r.Kill.RepairedItems, r.Kill.MissedBeats
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.1f\t%d\t%.1f\t%d\t%d\t%d\t%.1f\t%d\n",
				eng, m, r.Appends,
				r.QuorumSentMsgs, float64(r.QuorumSentBytes)/1024,
				r.QuorumHeldMsgs, float64(r.QuorumHeldBytes)/1024,
				promoted, repaired, r.ReplayedItems, ms(r.RecoverTotal), r.Stripes)
			labels := map[string]string{"engine": eng, "deaths": fmt.Sprintf("%d", m)}
			s.Sink.Record("degraded-multikill", "appends", labels, float64(r.Appends))
			s.Sink.Record("degraded-multikill", "quorum_sent_msgs", labels, float64(r.QuorumSentMsgs))
			s.Sink.Record("degraded-multikill", "quorum_sent_bytes", labels, float64(r.QuorumSentBytes))
			s.Sink.Record("degraded-multikill", "quorum_held_msgs", labels, float64(r.QuorumHeldMsgs))
			s.Sink.Record("degraded-multikill", "quorum_held_bytes", labels, float64(r.QuorumHeldBytes))
			s.Sink.Record("degraded-multikill", "promoted_journals", labels, float64(promoted))
			s.Sink.Record("degraded-multikill", "repaired_items", labels, float64(repaired))
			s.Sink.Record("degraded-multikill", "missed_beats", labels, float64(missed))
			s.Sink.Record("degraded-multikill", "replayed_items", labels, float64(r.ReplayedItems))
			s.Sink.Record("degraded-multikill", "recover_ms", labels, ms(r.RecoverTotal))
		}
	}
	return tw.Flush()
}
