package harness

// The obs experiment (beyond the paper's figures): per-stage latency
// attribution for the update path of every engine, from end-to-end traces.
// Each engine is calibrated closed-loop, then driven open-loop at two
// offered-load points (below and near the knee) with every op traced.
// The assembled traces break each update's end-to-end time into
// client/admission/network/service/journal/codec/device stages — the sums
// reproduce the end-to-end duration exactly, which the stage_sum_ratio
// metric asserts — and the dominant-hop signatures of the p99 tail name
// the critical path a profiler would point at. A same-seed repeat of one
// point byte-compares the canonical span encoding, pinning the tracer's
// determinism claim in the bench artifact itself.

import (
	"bytes"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/obs"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// obsFractions is the offered-load grid as fractions of each engine's
// closed-loop calibration throughput: one point comfortably below the
// saturation knee, one near it, so queueing's migration between stages
// (device-bound at low load, network/service-bound near the knee) shows
// in the breakdown deltas.
var obsFractions = []float64{0.4, 0.8}

// obsNICPeriod is the virtual-time period of the NIC load sampler.
const obsNICPeriod = 500 * time.Microsecond

// nicSampler returns the periodic NIC poll: per node, the tx/rx busy-time
// gained since the previous tick (utilization = mean gain / period) and
// the instantaneous queue depths, all recorded into the cluster's
// registry histograms. Queue depths are unitless counts stored in
// duration histograms (one "nanosecond" per queued message).
func nicSampler() func(c *cluster.Cluster, now time.Duration) {
	prevTx := make(map[wire.NodeID]time.Duration)
	prevRx := make(map[wire.NodeID]time.Duration)
	return func(c *cluster.Cluster, now time.Duration) {
		reg := c.Obs.Reg
		for _, id := range c.Fabric.NodeIDs() {
			tx, rx, txq, rxq := c.Fabric.NICLoad(id)
			reg.Histogram("nic_tx_busy_per_tick").Record(tx - prevTx[id])
			reg.Histogram("nic_rx_busy_per_tick").Record(rx - prevRx[id])
			reg.Histogram("nic_txq").Record(time.Duration(txq))
			reg.Histogram("nic_rxq").Record(time.Duration(rxq))
			prevTx[id], prevRx[id] = tx, rx
		}
	}
}

// obsPoint is the derived view of one engine x load point.
type obsPoint struct {
	traces int
	e2e    time.Duration // mean end-to-end update latency
	stages [obs.NStages]time.Duration
	ratio  float64 // sum(stage means) / e2e mean — 1.0 by construction
	p99    time.Duration
	sigs   []obs.SigCount // top dominant-hop signatures at p99
}

// analyzeUpdates assembles spans into traces and reduces the update traces
// (normal and degraded) to per-stage means.
func analyzeUpdates(spans []obs.Span) obsPoint {
	tvs := obs.GroupTraces(spans)
	var upd []obs.TraceView
	var durs []time.Duration
	for _, tv := range tvs {
		if tv.Op == obs.OpUpdate || tv.Op == obs.OpDegradedUpdate {
			upd = append(upd, tv)
			durs = append(durs, tv.Duration())
		}
	}
	pt := obsPoint{traces: len(upd)}
	if len(upd) == 0 {
		return pt
	}
	var sumE2E, sumStages time.Duration
	var stageSums [obs.NStages]time.Duration
	for i := range upd {
		sumE2E += upd[i].Duration()
		bd := upd[i].Breakdown()
		for s := range bd {
			stageSums[s] += bd[s]
			sumStages += bd[s]
		}
	}
	n := time.Duration(len(upd))
	pt.e2e = sumE2E / n
	for s := range stageSums {
		pt.stages[s] = stageSums[s] / n
	}
	pt.ratio = float64(sumStages) / float64(sumE2E)
	pt.p99 = NewLatencyDist(durs).P(0.99)
	pt.sigs = obs.TopSignatures(upd, pt.p99, 3)
	return pt
}

// obsPointConfig is one fully-specified load point: every op traced,
// depth-based admission armed (so the admission stage has real content,
// as in the saturation sweep).
func obsPointConfig(base RunConfig) RunConfig {
	cfg := base
	cfg.TraceSample = 1
	cfg.Admission = &cluster.TokenBucket{MaxInflight: 4 * cfg.Clients}
	return cfg
}

// nicTxUtil reduces the sampler's per-tick busy-time histogram to a mean
// tx-link utilization percentage: total busy time gained across all ticks
// and nodes, over the virtual time those ticks spanned.
func nicTxUtil(res *OpenLoopResult) float64 {
	n := res.Metrics["nic_tx_busy_per_tick_count"]
	if n == 0 {
		return 0
	}
	return 100 * res.Metrics["nic_tx_busy_per_tick_sum_ns"] / (n * float64(obsNICPeriod))
}

func obsRunPoint(cfg RunConfig, offered float64, ops int, sample bool) (*OpenLoopResult, error) {
	ol := OpenLoopConfig{
		Arrivals: NewPoissonArrivals(offered, ops, cfg.Seed),
		Zipf:     NewZipfPicker(uint64(cfg.FileBytes/(4<<10)), 1.1, 1, cfg.Seed+1),
	}
	if sample {
		ol.Sample = nicSampler()
		ol.SamplePeriod = obsNICPeriod
	}
	return RunOpenLoop(cfg, ol)
}

// Obs runs the observability experiment: per-engine, per-load-point stage
// breakdown of update latency, p99 critical-path signatures, NIC
// utilization from the periodic sampler, and a same-seed trace-determinism
// byte check.
func Obs(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Obs: per-stage update-latency attribution from end-to-end traces ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tload\ttraces\te2e(ms)\tclient\tadmission\tnetwork\tservice\tjournal\tcodec\tdevice\tsum/e2e\tnicTx%\ttop p99 hop")
	opsPerPoint := s.Ops / 3
	if opsPerPoint < 300 {
		opsPerPoint = 300
	}
	for _, eng := range update.Names() {
		base := baseRun(s)
		base.Engine = eng
		base.Trace = s.traceProfile("ali")
		base.Ops = opsPerPoint

		// Calibrate closed-loop to anchor the offered-load grid, exactly as
		// the saturation sweep does.
		calib, err := Run(base)
		if err != nil {
			return fmt.Errorf("obs %s calibration: %w", eng, err)
		}
		if calib.IOPS <= 0 {
			return fmt.Errorf("obs %s: calibration measured zero IOPS", eng)
		}

		for _, frac := range obsFractions {
			offered := calib.IOPS * frac
			cfg := obsPointConfig(base)
			res, err := obsRunPoint(cfg, offered, opsPerPoint, true)
			if err != nil {
				return fmt.Errorf("obs %s %.2fx: %w", eng, frac, err)
			}
			pt := analyzeUpdates(res.Spans)
			if pt.traces == 0 {
				return fmt.Errorf("obs %s %.2fx: no update traces recorded", eng, frac)
			}

			nicTx := nicTxUtil(res)

			sig := ""
			if len(pt.sigs) > 0 {
				sig = fmt.Sprintf("%s x%d", pt.sigs[0].Sig, pt.sigs[0].N)
			}
			fmt.Fprintf(tw, "%s\t%.2fx\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\t%.1f\t%s\n",
				eng, frac, pt.traces, ms(pt.e2e),
				ms(pt.stages[obs.StageClient]), ms(pt.stages[obs.StageAdmission]),
				ms(pt.stages[obs.StageNetwork]), ms(pt.stages[obs.StageService]),
				ms(pt.stages[obs.StageJournal]), ms(pt.stages[obs.StageCodec]),
				ms(pt.stages[obs.StageDevice]), pt.ratio, nicTx, sig)

			labels := map[string]string{"engine": eng, "load": fmt.Sprintf("%.2fx", frac)}
			s.Sink.Record("obs", "traces", labels, float64(pt.traces))
			s.Sink.Record("obs", "e2e_ms", labels, ms(pt.e2e))
			s.Sink.Record("obs", "stage_sum_ratio", labels, pt.ratio)
			s.Sink.Record("obs", "p99_ms", labels, ms(pt.p99))
			s.Sink.Record("obs", "nic_tx_util_pct", labels, nicTx)
			for st := obs.Stage(0); st < obs.NStages; st++ {
				s.Sink.Record("obs", "stage_"+st.String()+"_ms", labels, ms(pt.stages[st]))
			}
			for rank, sc := range pt.sigs {
				sl := map[string]string{"engine": eng, "load": labels["load"],
					"rank": fmt.Sprintf("%d", rank+1), "sig": sc.Sig}
				s.Sink.Record("obs", "p99_sig_n", sl, float64(sc.N))
			}
			if pt.ratio < 0.95 || pt.ratio > 1.05 {
				return fmt.Errorf("obs %s %.2fx: stage sums are %.3f of end-to-end (want within 5%%)", eng, frac, pt.ratio)
			}
		}
	}

	// Determinism: the same seed must reproduce the same spans, byte for
	// byte, in the canonical encoding. Two fresh runs of one point (tsue at
	// the low-load fraction, no sampler — the check is about the tracer,
	// not the poll cadence).
	base := baseRun(s)
	base.Engine = "tsue"
	base.Trace = s.traceProfile("ali")
	base.Ops = opsPerPoint
	cfg := obsPointConfig(base)
	offered := 200.0
	a, err := obsRunPoint(cfg, offered, opsPerPoint/2, false)
	if err != nil {
		return fmt.Errorf("obs determinism run 1: %w", err)
	}
	b, err := obsRunPoint(cfg, offered, opsPerPoint/2, false)
	if err != nil {
		return fmt.Errorf("obs determinism run 2: %w", err)
	}
	if !bytes.Equal(obs.Encode(a.Spans), obs.Encode(b.Spans)) {
		return fmt.Errorf("obs: same-seed runs produced different traces (%d vs %d spans)", len(a.Spans), len(b.Spans))
	}
	s.Sink.Record("obs", "trace_deterministic", map[string]string{"spans": fmt.Sprintf("%d", len(a.Spans))}, 1)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace determinism: OK (%d spans byte-identical across two same-seed runs)\n", len(a.Spans))
	return nil
}
