package harness

import (
	"testing"

	"tsue/internal/trace"
)

// TestDegradedMultiKillSmoke drives the full three-death scenario —
// failed node, quorum holder, journal-holding surrogate — at small scale
// and checks the quorum invariants the experiment exists to demonstrate:
// every acked append left replication traffic, the surrogate's death
// promoted and read-repaired its journal, and the run ends scrubbed.
func TestDegradedMultiKillSmoke(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Ops = 600
	cfg.BlockSize = 256 << 10
	cfg.FileBytes = 24 << 20
	cfg.Trace = trace.AliCloud(cfg.FileBytes)
	r, err := RunDegradedMultiKill(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Appends == 0 {
		t.Fatal("no degraded appends acked")
	}
	if r.QuorumSentMsgs == 0 || r.QuorumHeldMsgs == 0 {
		t.Errorf("acked appends left no quorum traffic: sent=%d held=%d", r.QuorumSentMsgs, r.QuorumHeldMsgs)
	}
	if r.Kill == nil || r.Kill.PromotedJournals == 0 {
		t.Errorf("surrogate death promoted no journal: %+v", r.Kill)
	}
	if r.Kill != nil && r.Kill.RepairedItems == 0 {
		t.Error("promotion read-repaired nothing despite pre-kill appends")
	}
	if r.ReplayedItems == 0 {
		t.Error("recovery replayed no journal items")
	}
	if r.Stripes == 0 {
		t.Error("scrub saw no stripes")
	}
}

// TestDegradedMultiKillBudget: death counts beyond the scheme's parity
// budget are refused up front instead of failing mid-run.
func TestDegradedMultiKillBudget(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Trace = trace.AliCloud(cfg.FileBytes)
	if _, err := RunDegradedMultiKill(cfg, cfg.M+1); err == nil {
		t.Fatal("deaths > M accepted")
	}
}
