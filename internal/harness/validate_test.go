package harness

import (
	"strings"
	"testing"
)

// TestRunConfigValidation pins the input-validation satellite: zero or
// negative sizes and counts are rejected with a clear harness error, not a
// panic or a silent default.
func TestRunConfigValidation(t *testing.T) {
	if err := DefaultRunConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RunConfig)
	}{
		{"empty engine", func(c *RunConfig) { c.Engine = "" }},
		{"zero K", func(c *RunConfig) { c.K = 0 }},
		{"zero M", func(c *RunConfig) { c.M = 0 }},
		{"too few OSDs", func(c *RunConfig) { c.OSDs = c.K + c.M - 1 }},
		{"zero clients", func(c *RunConfig) { c.Clients = 0 }},
		{"negative clients", func(c *RunConfig) { c.Clients = -4 }},
		{"zero ops", func(c *RunConfig) { c.Ops = 0 }},
		{"zero file bytes", func(c *RunConfig) { c.FileBytes = 0 }},
		{"zero block size", func(c *RunConfig) { c.BlockSize = 0 }},
		{"zero files", func(c *RunConfig) { c.Files = 0 }},
		{"negative files", func(c *RunConfig) { c.Files = -1 }},
		{"zero pgs", func(c *RunConfig) { c.PGs = 0 }},
		{"negative pgs", func(c *RunConfig) { c.PGs = -8 }},
		{"negative max time", func(c *RunConfig) { c.MaxTime = -1 }},
		{"negative codec workers", func(c *RunConfig) { c.Opts.CodecWorkers = -1 }},
		{"negative recycle batch", func(c *RunConfig) { c.Opts.RecycleBatch = -1 }},
		{"negative pools", func(c *RunConfig) { c.Opts.Pools = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultRunConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "harness: ") {
			t.Errorf("%s: unclear error %q", tc.name, err)
		}
	}
	// Run surfaces the same error rather than panicking downstream.
	bad := DefaultRunConfig()
	bad.Files = 0
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "Files") {
		t.Fatalf("Run with zero Files: %v", err)
	}
}
