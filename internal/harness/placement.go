package harness

// The placement experiment (beyond the paper, after Rashmi et al.'s
// observation that recovery network cost is dominated by how reconstruction
// reads fan out across the cluster, and Kermarrec et al.'s result that
// placement policy directly shifts maintenance traffic): run a multi-file
// foreground update workload, fail the most-loaded OSD, and recover it
// under interleaved mode, sweeping the placement-group count. With few PGs
// the dead node's stripes share a handful of peer sets, so reconstruction
// hammers few sources and one or two surrogates absorb the whole degraded
// journal; with many PGs the same loss fans out across the cluster.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/wire"
)

// PlacementResult captures one placement run's spread measurements.
type PlacementResult struct {
	Cfg    RunConfig
	Report *cluster.RecoveryReport
	// SourceBytes is reconstruction bytes read per source OSD during the
	// recovery window; Targets is rebuilt blocks per destination OSD;
	// JournalBytes is surrogate-journal bytes appended per OSD.
	SourceBytes  map[wire.NodeID]int64
	Targets      map[wire.NodeID]int
	JournalBytes map[wire.NodeID]int64
	// DipPct is the foreground IOPS dip during recovery.
	DipPct float64
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int
}

// FanOut is the number of distinct OSDs that served reconstruction reads.
func (r *PlacementResult) FanOut() int { return len(r.SourceBytes) }

// spread summarizes a per-OSD load distribution.
type spread struct {
	n        int
	mean, cv float64 // cv = stddev/mean over the nonzero entries
	maxRatio float64 // max / mean
}

func spreadOf[V int | int64](m map[wire.NodeID]V) spread {
	if len(m) == 0 {
		return spread{}
	}
	// Float accumulation is not associative: sum in sorted-node order so
	// the reported cv/maxRatio are bit-identical across same-seed runs.
	ids := make([]wire.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum, max float64
	for _, id := range ids {
		f := float64(m[id])
		sum += f
		if f > max {
			max = f
		}
	}
	mean := sum / float64(len(m))
	var varsum float64
	for _, id := range ids {
		d := float64(m[id]) - mean
		varsum += d * d
	}
	s := spread{n: len(m), mean: mean}
	if mean > 0 {
		s.cv = math.Sqrt(varsum/float64(len(m))) / mean
		s.maxRatio = max / mean
	}
	return s
}

// histogram renders a per-OSD byte distribution as a compact sorted list
// (KiB, descending) — the fan-out histogram of the experiment's report.
func histogram(m map[wire.NodeID]int64) string {
	vals := make([]int64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	out := "["
	for i, v := range vals {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", v>>10)
	}
	return out + "]"
}

// RunPlacement preloads a multi-file working set, runs a foreground update
// load, fails the most-loaded OSD a third of the way through, recovers it
// under interleaved mode (so surrogates absorb the degraded journal while
// reconstruction fans out), and returns the per-OSD spread of recovery
// sources, rebuild targets and surrogate journals.
func RunPlacement(cfg RunConfig) (*PlacementResult, error) {
	dres, err := RunDegraded(cfg, cluster.RecoverInterleaved)
	if err != nil {
		return nil, err
	}
	return &PlacementResult{
		Cfg:          cfg,
		Report:       dres.Report,
		SourceBytes:  dres.Report.SourceReadBytes,
		Targets:      dres.Report.TargetBlocks,
		JournalBytes: dres.JournalBytes,
		DipPct:       dres.DipPct,
		Stripes:      dres.Stripes,
	}, nil
}

// Placement runs the placement-spread experiment across PG counts: the
// recovery fan-out histogram, the per-OSD recovery read volume, and the
// surrogate journal load CV, all under the same multi-file foreground
// workload. Low PG counts reproduce the concentrated single-volume layout;
// high counts approach uniform spread.
func Placement(w io.Writer, s Scale) error {
	fmt.Fprintf(w, "== Placement: recovery fan-out and surrogate spread vs PG count (tsue, SSD, Ali-Cloud, RS(6,4), %d files) ==\n", s.Files)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pgs\tlost blks\tfanout\tsrc CV\tsrc max/mean\ttargets\tsurrogates\tjournal(KB)\tjournal CV\trecover(ms)\tdip")
	for _, pgs := range s.PGCounts {
		cfg := baseRun(s)
		cfg.Engine = "tsue"
		cfg.Clients = 16
		cfg.Files = s.Files
		cfg.PGs = pgs
		// Smaller blocks -> more stripes per file, so the PG sweep has a
		// stripe population large enough for spread differences to show.
		cfg.BlockSize = 256 << 10
		cfg.Trace = s.traceProfile("ali")
		r, err := RunPlacement(cfg)
		if err != nil {
			return fmt.Errorf("placement pgs=%d: %w", pgs, err)
		}
		src := spreadOf(r.SourceBytes)
		jrn := spreadOf(r.JournalBytes)
		var jTotal int64
		for _, v := range r.JournalBytes {
			jTotal += v
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%.2f\t%d\t%d\t%.1f\t%.2f\t%.1f\t%.0f%%\n",
			pgs, r.Report.Blocks, r.FanOut(), src.cv, src.maxRatio,
			len(r.Targets), len(r.JournalBytes),
			float64(jTotal)/1024, jrn.cv,
			float64(r.Report.TotalTime)/float64(time.Millisecond),
			r.DipPct)
		fmt.Fprintf(tw, "\tsrc KB/OSD (desc)\t%s\n", histogram(r.SourceBytes))
	}
	return tw.Flush()
}
