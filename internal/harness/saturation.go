package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"tsue/internal/cluster"
	"tsue/internal/update"
)

// satFractions is the offered-load grid, as fractions of each engine's
// closed-loop calibration throughput: two points below the knee, one at
// it, two past it.
var satFractions = []float64{0.25, 0.5, 0.75, 1.0, 1.25}

// satSustainFrac is the goodput bar for "sustainable": a point counts only
// if achieved throughput is at least this fraction of offered and no op
// was lost to retry exhaustion.
const satSustainFrac = 0.9

// Saturation sweeps open-loop offered load per engine (beyond the paper's
// closed-loop evaluation): Poisson arrivals at a grid of rates calibrated
// to each engine's closed-loop throughput, Zipf-skewed offsets, and MDS
// admission control pushing back past the knee. It reports the latency
// percentiles vs offered load and each engine's max sustainable IOPS —
// the open-loop numbers a capacity planner would actually quote.
func Saturation(w io.Writer, s Scale) error {
	fmt.Fprintln(w, "== Saturation: open-loop offered-load sweep (Poisson arrivals, Zipf offsets, MDS admission) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\toffered(ops/s)\tachieved\tp50(ms)\tp95(ms)\tp99(ms)\trejected\tlost")
	opsPerPoint := s.Ops / 3
	if opsPerPoint < 300 {
		opsPerPoint = 300
	}
	for _, eng := range update.Names() {
		base := baseRun(s)
		base.Engine = eng
		base.Trace = s.traceProfile("ali")
		base.Ops = opsPerPoint

		// Calibrate: the closed-loop replay self-throttles to what the
		// cluster sustains at this concurrency, anchoring the sweep grid.
		calib, err := Run(base)
		if err != nil {
			return fmt.Errorf("saturation %s calibration: %w", eng, err)
		}
		if calib.IOPS <= 0 {
			return fmt.Errorf("saturation %s: calibration measured zero IOPS", eng)
		}
		s.Sink.Record("saturation", "calib_iops", map[string]string{"engine": eng}, calib.IOPS)

		maxSustain := 0.0
		for _, frac := range satFractions {
			offered := calib.IOPS * frac
			cfg := base
			// Depth-based backpressure: past the knee the in-flight count
			// balloons, and the MDS bounces arrivals instead of letting the
			// cluster queue without bound.
			cfg.Admission = &cluster.TokenBucket{MaxInflight: 4 * cfg.Clients}
			res, err := RunOpenLoop(cfg, OpenLoopConfig{
				Arrivals: NewPoissonArrivals(offered, opsPerPoint, cfg.Seed),
				Zipf:     NewZipfPicker(uint64(cfg.FileBytes/(4<<10)), 1.1, 1, cfg.Seed+1),
			})
			if err != nil {
				return fmt.Errorf("saturation %s %.2fx: %w", eng, frac, err)
			}
			dist := NewLatencyDist(res.Lats)
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2f\t%.2f\t%.2f\t%d\t%d\n",
				eng, offered, res.Achieved,
				ms(dist.P(0.50)), ms(dist.P(0.95)), ms(dist.P(0.99)),
				res.Rejections, res.Lost)
			labels := map[string]string{"engine": eng, "load": fmt.Sprintf("%.2fx", frac)}
			s.Sink.Record("saturation", "offered_iops", labels, offered)
			s.Sink.Record("saturation", "achieved_iops", labels, res.Achieved)
			s.Sink.Record("saturation", "lat_p50_ms", labels, ms(dist.P(0.50)))
			s.Sink.Record("saturation", "lat_p95_ms", labels, ms(dist.P(0.95)))
			s.Sink.Record("saturation", "lat_p99_ms", labels, ms(dist.P(0.99)))
			s.Sink.Record("saturation", "rejected", labels, float64(res.Rejections))
			s.Sink.Record("saturation", "lost", labels, float64(res.Lost))
			if res.Lost == 0 && res.Achieved >= satSustainFrac*offered && res.Achieved > maxSustain {
				maxSustain = res.Achieved
			}
		}
		fmt.Fprintf(tw, "%s\tmax sustainable\t%.0f\t\t\t\t\t\n", eng, maxSustain)
		s.Sink.Record("saturation", "max_sustainable_iops", map[string]string{"engine": eng}, maxSustain)
	}
	return tw.Flush()
}
