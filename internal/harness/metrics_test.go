package harness

import (
	"testing"
	"time"
)

// lat builds a millisecond sample slice in arbitrary order to prove
// sorting happens inside the quantile code.
func lat(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Millisecond
	}
	return out
}

func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name    string
		samples []time.Duration
		p       float64
		want    time.Duration
	}{
		// n=1: every quantile is the single sample.
		{"n1 p50", lat(7), 0.50, 7 * time.Millisecond},
		{"n1 p99", lat(7), 0.99, 7 * time.Millisecond},
		// n=2: rank ceil(0.5*2)=1 → first; anything above 0.5 → second.
		{"n2 p50", lat(20, 10), 0.50, 10 * time.Millisecond},
		{"n2 p51", lat(20, 10), 0.51, 20 * time.Millisecond},
		{"n2 p99", lat(20, 10), 0.99, 20 * time.Millisecond},
		// n=3: ceil(0.5*3)=2, ceil(0.99*3)=3.
		{"n3 p50", lat(30, 10, 20), 0.50, 20 * time.Millisecond},
		{"n3 p99", lat(30, 10, 20), 0.99, 30 * time.Millisecond},
		// n=5: ceil(0.5*5)=3, ceil(0.95*5)=5, ceil(0.2*5)=1.
		{"n5 p20", lat(5, 4, 3, 2, 1), 0.20, 1 * time.Millisecond},
		{"n5 p50", lat(5, 4, 3, 2, 1), 0.50, 3 * time.Millisecond},
		{"n5 p95", lat(5, 4, 3, 2, 1), 0.95, 5 * time.Millisecond},
		// n=10: ceil(0.5*10)=5, ceil(0.95*10)=10, ceil(0.99*10)=10, and the
		// case the old int(p*n+0.5)-1 rounding got wrong: ceil(0.44*10)=5
		// (old code indexed rank 4).
		{"n10 p44", lat(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.44, 5 * time.Millisecond},
		{"n10 p50", lat(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.50, 5 * time.Millisecond},
		{"n10 p90", lat(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.90, 9 * time.Millisecond},
		{"n10 p95", lat(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.95, 10 * time.Millisecond},
		{"n10 p99", lat(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 0.99, 10 * time.Millisecond},
		// Degenerate p values clamp instead of indexing out of range.
		{"p0 clamps", lat(3, 1, 2), 0.0, 1 * time.Millisecond},
		{"p1 exact", lat(3, 1, 2), 1.0, 3 * time.Millisecond},
		// Empty set.
		{"empty", nil, 0.99, 0},
	}
	for _, tc := range cases {
		if got := percentile(tc.samples, tc.p); got != tc.want {
			t.Errorf("%s: percentile=%v, want %v", tc.name, got, tc.want)
		}
		d := NewLatencyDist(tc.samples)
		if got := d.P(tc.p); got != tc.want {
			t.Errorf("%s: LatencyDist.P=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestLatencyDistDoesNotMutateInput(t *testing.T) {
	in := lat(3, 1, 2)
	_ = NewLatencyDist(in)
	if in[0] != 3*time.Millisecond || in[1] != 1*time.Millisecond || in[2] != 2*time.Millisecond {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestLatencyDistN(t *testing.T) {
	if n := NewLatencyDist(lat(1, 2, 3)).N(); n != 3 {
		t.Fatalf("N=%d", n)
	}
	if n := NewLatencyDist(nil).N(); n != 0 {
		t.Fatalf("N=%d", n)
	}
}
