package harness

import (
	"sort"
	"time"
)

// Metric is one machine-readable measurement emitted by an experiment —
// the unit of the perf trajectory tsuebench -json persists (BENCH_*.json)
// so future changes can be compared against past runs without re-parsing
// the human tables.
type Metric struct {
	Experiment string            `json:"experiment"`
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Value      float64           `json:"value"`
}

// Sink collects metrics across experiments. A nil *Sink discards records,
// so experiments can emit unconditionally.
type Sink struct {
	Metrics []Metric
}

// Record appends one measurement (no-op on a nil sink). labels is copied.
func (s *Sink) Record(experiment, name string, labels map[string]string, value float64) {
	if s == nil {
		return
	}
	var cp map[string]string
	if len(labels) > 0 {
		cp = make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
	}
	s.Metrics = append(s.Metrics, Metric{Experiment: experiment, Name: name, Labels: cp, Value: value})
}

// percentile returns the p-quantile (0..1) of the samples by
// nearest-rank on a sorted copy; 0 for an empty set.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
