package harness

import (
	"math"
	"sort"
	"time"
)

// Metric is one machine-readable measurement emitted by an experiment —
// the unit of the perf trajectory tsuebench -json persists (BENCH_*.json)
// so future changes can be compared against past runs without re-parsing
// the human tables.
type Metric struct {
	Experiment string            `json:"experiment"`
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Value      float64           `json:"value"`
}

// Sink collects metrics across experiments. A nil *Sink discards records,
// so experiments can emit unconditionally.
type Sink struct {
	Metrics []Metric
}

// Record appends one measurement (no-op on a nil sink). labels is copied.
func (s *Sink) Record(experiment, name string, labels map[string]string, value float64) {
	if s == nil {
		return
	}
	var cp map[string]string
	if len(labels) > 0 {
		cp = make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
	}
	s.Metrics = append(s.Metrics, Metric{Experiment: experiment, Name: name, Labels: cp, Value: value})
}

// LatencyDist is a set of latency samples sorted once at construction, so
// a result printed at several quantiles (chaos/degraded rows call for p50,
// p95, p99, p999; the saturation sweep far more) pays for one sort total
// instead of one per quantile.
type LatencyDist struct {
	sorted []time.Duration
}

// NewLatencyDist copies and sorts samples.
func NewLatencyDist(samples []time.Duration) LatencyDist {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LatencyDist{sorted: sorted}
}

// N returns the sample count.
func (d LatencyDist) N() int { return len(d.sorted) }

// P returns the p-quantile (0..1) by the nearest-rank method: the sample
// at rank ceil(p*n), 1-based. 0 for an empty set.
func (d LatencyDist) P(p float64) time.Duration {
	n := len(d.sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return d.sorted[rank-1]
}

// percentile returns the p-quantile (0..1) of the samples by
// nearest-rank; 0 for an empty set. Callers taking several quantiles of
// one sample set should build a LatencyDist instead to sort only once.
func percentile(samples []time.Duration, p float64) time.Duration {
	return NewLatencyDist(samples).P(p)
}
