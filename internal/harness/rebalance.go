package harness

// The rebalance experiment (beyond the paper, after its ROADMAP item
// "placement epochs ... measure the resulting data movement against the
// minimal-remap bound"): run a multi-file foreground update workload, add
// one or more OSDs mid-run, and migrate online under the throttled
// rebalance engine. Reported per engine: blocks actually moved vs the
// minimal-remap lower bound, catch-up re-copies (raw bytes dirtied during
// the bulk copy), overlay records that followed their blocks (TSUE's
// log-follows-block cutover; in-place schemes drain instead and show up as
// re-copies and longer stalls), the per-PG cutover stall, and the
// foreground IOPS dip while the expansion runs — the migration-bandwidth
// cost Kermarrec et al. and the Facebook warehouse study identify as the
// dominant operational burden.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// RebalanceResult captures one online-expansion run.
type RebalanceResult struct {
	Cfg RunConfig
	// Reports holds one migration report per added OSD (sequential
	// transitions).
	Reports []*rebalance.Report
	// NewOSDs lists the added node IDs.
	NewOSDs []wire.NodeID
	// BaselineIOPS is foreground update throughput before the expansion;
	// DuringIOPS covers the expansion window; DipPct is the relative drop.
	BaselineIOPS float64
	DuringIOPS   float64
	DipPct       float64
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int
}

// MovedBlocks sums blocks moved across all transitions.
func (r *RebalanceResult) MovedBlocks() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.MovedBlocks
	}
	return n
}

// BoundBlocks sums the per-transition minimal-remap bounds.
func (r *RebalanceResult) BoundBlocks() float64 {
	var b float64
	for _, rep := range r.Reports {
		b += rep.BoundBlocks
	}
	return b
}

// RunRebalance preloads a multi-file working set, runs a continuous
// foreground update workload, and a third of the way through adds addOSDs
// OSDs one after another, each with a full online migration under rcfg.
// The run ends with a drain and a full scrub.
func RunRebalance(cfg RunConfig, rcfg rebalance.Config, addOSDs int) (*RebalanceResult, error) {
	if addOSDs < 1 {
		return nil, fmt.Errorf("harness: addOSDs must be >= 1, got %d", addOSDs)
	}
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	res := &RebalanceResult{Cfg: cfg}
	var runErr error
	c.Env.Go("rebalance-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		payload := make([]byte, 1<<20)
		rand.New(rand.NewSource(cfg.Seed + 999)).Read(payload)

		nClients := cfg.Clients
		opsPer := 20 * cfg.Ops / nClients
		stop := false
		done := 0
		start := p.Now()
		wg := sim.NewWaitGroup(c.Env)
		wg.Add(nClients)
		var clientErr error
		for ci := 0; ci < nClients; ci++ {
			ci := ci
			cl := c.NewClient()
			ino := inos[ci%len(inos)]
			prof := cfg.Trace
			prof.WorkingSet = perFile
			gen := trace.MustGenerator(prof, cfg.Seed+int64(ci)*7919)
			c.Env.Go(fmt.Sprintf("fg%d", ci), func(cp *sim.Proc) {
				defer wg.Done()
				for j := 0; j < opsPer && !stop; j++ {
					op := gen.Next()
					for op.Kind != trace.Write {
						op = gen.Next()
					}
					off := op.Off
					if off+int64(op.Size) > perFile {
						off = perFile - int64(op.Size)
					}
					pstart := int(off) % (len(payload) - int(op.Size))
					if err := cl.Update(cp, ino, off, payload[pstart:pstart+int(op.Size)]); err != nil {
						if clientErr == nil {
							clientErr = fmt.Errorf("foreground client %d op %d: %w", ci, j, err)
						}
						return
					}
					done++
				}
			})
		}

		warmTarget := cfg.Ops / 3
		if warmTarget < 1 {
			warmTarget = 1
		}
		for done < warmTarget && clientErr == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if clientErr != nil {
			runErr = clientErr
			return
		}
		preOps := done
		t0 := p.Now()
		for i := 0; i < addOSDs; i++ {
			rep, id, err := c.Expand(p, admin, rcfg)
			if err != nil {
				runErr = fmt.Errorf("expand %d: %w", i, err)
				return
			}
			res.Reports = append(res.Reports, rep)
			res.NewOSDs = append(res.NewOSDs, id)
		}
		t1 := p.Now()
		duringOps := done - preOps
		stop = true
		wg.Wait(p)
		if clientErr != nil {
			runErr = clientErr
			return
		}

		if d := (t0 - start).Seconds(); d > 0 {
			res.BaselineIOPS = float64(preOps) / d
		}
		if d := (t1 - t0).Seconds(); d > 0 {
			res.DuringIOPS = float64(duringOps) / d
		}
		if res.BaselineIOPS > 0 {
			res.DipPct = 100 * (1 - res.DuringIOPS/res.BaselineIOPS)
		}

		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-expansion scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Rebalance runs the online-expansion experiment across all six engines:
// data moved vs the minimal-remap bound, the foreground IOPS dip during
// the expansion, and the cutover stall profile.
func Rebalance(w io.Writer, s Scale) error {
	rate := "unthrottled"
	if s.RebalanceRateBps > 0 {
		rate = fmt.Sprintf("%dMB/s", s.RebalanceRateBps>>20)
	}
	fmt.Fprintf(w, "== Rebalance: online expansion (+%d OSD, copy rate %s, SSD, Ali-Cloud, RS(6,4), %d files) ==\n",
		s.AddOSDs, rate, s.Files)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tmoved blks\tbound\tx bound\tmoved MB\trecopied\treplayed KB\tpgs\tmigrate(ms)\tstall(ms)\tmax stall(ms)\tbase IOPS\tduring IOPS\tdip")
	for _, eng := range update.Names() {
		cfg := baseRun(s)
		cfg.Engine = eng
		cfg.Clients = 16
		cfg.Files = s.Files
		cfg.PGs = 64
		// Smaller blocks -> more stripes, so per-PG moves and the bound are
		// well populated (same reasoning as the placement experiment).
		cfg.BlockSize = 256 << 10
		cfg.Trace = s.traceProfile("ali")
		rcfg := rebalance.Config{RateBps: s.RebalanceRateBps, MaxInFlightPGs: 2}
		r, err := RunRebalance(cfg, rcfg, s.AddOSDs)
		if err != nil {
			return fmt.Errorf("rebalance %s: %w", eng, err)
		}
		var movedMB float64
		var recopied, replayedKB, pgs int
		var migrate, stall, maxStall time.Duration
		for _, rep := range r.Reports {
			movedMB += float64(rep.MovedBytes) / (1 << 20)
			recopied += rep.RecopiedBlocks
			replayedKB += int(rep.ReplayedBytes >> 10)
			pgs += rep.PGsMigrated
			migrate += rep.MigrateTime
			stall += rep.StallTime
			if rep.MaxStall > maxStall {
				maxStall = rep.MaxStall
			}
		}
		moved, bound := r.MovedBlocks(), r.BoundBlocks()
		ratio := 0.0
		if bound > 0 {
			ratio = float64(moved) / bound
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2fx\t%.1f\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f%%\n",
			eng, moved, bound, ratio, movedMB, recopied, replayedKB, pgs,
			ms(migrate), ms(stall), ms(maxStall),
			r.BaselineIOPS, r.DuringIOPS, r.DipPct)
		labels := map[string]string{"engine": eng}
		s.Sink.Record("rebalance", "moved_blocks", labels, float64(moved))
		s.Sink.Record("rebalance", "bound_blocks", labels, bound)
		s.Sink.Record("rebalance", "actual_over_bound", labels, ratio)
		s.Sink.Record("rebalance", "recopied_blocks", labels, float64(recopied))
		s.Sink.Record("rebalance", "replayed_kb", labels, float64(replayedKB))
		s.Sink.Record("rebalance", "migrate_ms", labels, ms(migrate))
		s.Sink.Record("rebalance", "stall_ms_total", labels, ms(stall))
		s.Sink.Record("rebalance", "stall_ms_max", labels, ms(maxStall))
		s.Sink.Record("rebalance", "base_iops", labels, r.BaselineIOPS)
		s.Sink.Record("rebalance", "during_iops", labels, r.DuringIOPS)
		s.Sink.Record("rebalance", "dip_pct", labels, r.DipPct)
	}
	return tw.Flush()
}
