package harness

// The rebalance experiment (beyond the paper, after its ROADMAP item
// "placement epochs ... measure the resulting data movement against the
// minimal-remap bound"): run a multi-file foreground update workload, add
// one or more OSDs mid-run, and migrate online under the throttled
// rebalance engine. Reported per engine: blocks actually moved vs the
// minimal-remap lower bound, catch-up re-copies (raw bytes dirtied during
// the bulk copy), overlay records that followed their blocks (TSUE's
// log-follows-block cutover; in-place schemes drain instead and show up as
// re-copies and longer stalls), the per-PG cutover stall, and the
// foreground IOPS dip while the expansion runs — the migration-bandwidth
// cost Kermarrec et al. and the Facebook warehouse study identify as the
// dominant operational burden.

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/rebalance"
	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// RebalanceResult captures one online-expansion run.
type RebalanceResult struct {
	Cfg RunConfig
	// Reports holds one migration report per added OSD (sequential
	// transitions).
	Reports []*rebalance.Report
	// NewOSDs lists the added node IDs.
	NewOSDs []wire.NodeID
	// BaselineIOPS is foreground update throughput before the expansion;
	// DuringIOPS covers the expansion window; DipPct is the relative drop.
	BaselineIOPS float64
	DuringIOPS   float64
	DipPct       float64
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int
}

// MovedBlocks sums blocks moved across all transitions.
func (r *RebalanceResult) MovedBlocks() int {
	n := 0
	for _, rep := range r.Reports {
		n += rep.MovedBlocks
	}
	return n
}

// BoundBlocks sums the per-transition minimal-remap bounds.
func (r *RebalanceResult) BoundBlocks() float64 {
	var b float64
	for _, rep := range r.Reports {
		b += rep.BoundBlocks
	}
	return b
}

// fgLoad is the control surface of a running foreground writer fleet
// (startForegroundWriters): set *stop to end the loops, *done counts
// completed ops, *err holds the first client failure, wg waits the
// writers out.
type fgLoad struct {
	stop *bool
	done *int
	err  *error
	wg   *sim.WaitGroup
}

// startForegroundWriters launches cfg.Clients trace-driven update writers
// over the preloaded files (one payload pool seeded at cfg.Seed +
// payloadSeed), writing up to 20×cfg.Ops/Clients ops each unless stopped.
// Shared by the rebalance-family experiments.
func startForegroundWriters(c *cluster.Cluster, cfg RunConfig, inos []uint64, perFile, payloadSeed int64) fgLoad {
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(cfg.Seed + payloadSeed)).Read(payload)
	load := fgLoad{stop: new(bool), done: new(int), err: new(error), wg: sim.NewWaitGroup(c.Env)}
	load.wg.Add(cfg.Clients)
	opsPer := 20 * cfg.Ops / cfg.Clients
	for ci := 0; ci < cfg.Clients; ci++ {
		ci := ci
		cl := c.NewClient()
		ino := inos[ci%len(inos)]
		prof := cfg.Trace
		prof.WorkingSet = perFile
		gen := trace.MustGenerator(prof, cfg.Seed+int64(ci)*7919)
		c.Env.Go(fmt.Sprintf("fg%d", ci), func(cp *sim.Proc) {
			defer load.wg.Done()
			for j := 0; j < opsPer && !*load.stop; j++ {
				op := gen.Next()
				for op.Kind != trace.Write {
					op = gen.Next()
				}
				off := op.Off
				if off+int64(op.Size) > perFile {
					off = perFile - int64(op.Size)
				}
				pstart := int(off) % (len(payload) - int(op.Size))
				if err := cl.Update(cp, ino, off, payload[pstart:pstart+int(op.Size)]); err != nil {
					if *load.err == nil {
						*load.err = fmt.Errorf("foreground client %d op %d: %w", ci, j, err)
					}
					return
				}
				*load.done++
			}
		})
	}
	return load
}

// RunRebalance preloads a multi-file working set, runs a continuous
// foreground update workload, and a third of the way through adds addOSDs
// OSDs one after another, each with a full online migration under rcfg.
// The run ends with a drain and a full scrub.
func RunRebalance(cfg RunConfig, rcfg rebalance.Config, addOSDs int) (*RebalanceResult, error) {
	if addOSDs < 1 {
		return nil, fmt.Errorf("harness: addOSDs must be >= 1, got %d", addOSDs)
	}
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	res := &RebalanceResult{Cfg: cfg}
	var runErr error
	c.Env.Go("rebalance-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		start := p.Now()
		load := startForegroundWriters(c, cfg, inos, perFile, 999)

		warmTarget := cfg.Ops / 3
		if warmTarget < 1 {
			warmTarget = 1
		}
		for *load.done < warmTarget && *load.err == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if *load.err != nil {
			runErr = *load.err
			return
		}
		preOps := *load.done
		t0 := p.Now()
		for i := 0; i < addOSDs; i++ {
			rep, id, err := c.Expand(p, admin, rcfg)
			if err != nil {
				runErr = fmt.Errorf("expand %d: %w", i, err)
				return
			}
			res.Reports = append(res.Reports, rep)
			res.NewOSDs = append(res.NewOSDs, id)
		}
		t1 := p.Now()
		duringOps := *load.done - preOps
		*load.stop = true
		load.wg.Wait(p)
		if *load.err != nil {
			runErr = *load.err
			return
		}

		if d := (t0 - start).Seconds(); d > 0 {
			res.BaselineIOPS = float64(preOps) / d
		}
		if d := (t1 - t0).Seconds(); d > 0 {
			res.DuringIOPS = float64(duringOps) / d
		}
		if res.BaselineIOPS > 0 {
			res.DipPct = 100 * (1 - res.DuringIOPS/res.BaselineIOPS)
		}

		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-expansion scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// RebalanceKillResult captures one kill-during-rebalance run: an OSD dies
// mid-migration, the transition resolves per PG (abort/finish), recovery
// runs under the settled epoch, and the run ends verified.
type RebalanceKillResult struct {
	Cfg    RunConfig
	Report *rebalance.Report
	// Victim is the killed OSD (a migration source); SettledEpoch is where
	// the transition committed after per-PG resolution.
	Victim       wire.NodeID
	SettledEpoch uint64
	Recovery     *cluster.RecoveryReport
	// Quorum* aggregate journal quorum replication traffic during the
	// recovery's degraded window (sent = surrogate→holder appends acked,
	// held = replica records the holders retain).
	QuorumSentMsgs, QuorumSentBytes int64
	QuorumHeldMsgs, QuorumHeldBytes int64
	// Stripes is the number of stripes scrubbed clean after the run.
	Stripes int
}

// RunRebalanceKill preloads a working set, expands online under a
// foreground update workload, kills a migration-source OSD after the
// first PG's copies begin (via the transition hook, so the injection
// point is deterministic), waits for the per-PG resolution, recovers the
// node under the settled epoch, and verifies with a drain + scrub.
func RunRebalanceKill(cfg RunConfig, rcfg rebalance.Config) (*RebalanceKillResult, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	res := &RebalanceKillResult{Cfg: cfg}
	var runErr error
	c.Env.Go("rebalance-kill-harness", func(p *sim.Proc) {
		inos, perFile, err := preload(p, c, admin, cfg)
		if err != nil {
			runErr = err
			return
		}
		c.ResetStats()

		load := startForegroundWriters(c, cfg, inos, perFile, 4242)
		warmTarget := cfg.Ops / 3
		if warmTarget < 1 {
			warmTarget = 1
		}
		for *load.done < warmTarget && *load.err == nil {
			p.Sleep(100 * time.Microsecond)
		}
		if *load.err != nil {
			runErr = *load.err
			return
		}
		// Arm the kill: the first PG to finish its first copy loses its
		// move source.
		var victim wire.NodeID
		c.SetTransHook(func(ev cluster.TransEvent) {
			if victim != 0 || ev.Stage != cluster.StageCopying || ev.Copied == 0 {
				return
			}
			victim = ev.Moves[0].From
			c.MarkDead(victim)
		})
		rep, _, err := c.Expand(p, admin, rcfg)
		if err != nil {
			runErr = fmt.Errorf("expand: %w", err)
			return
		}
		if victim == 0 {
			runErr = fmt.Errorf("kill hook never fired (no moves?)")
			return
		}
		res.Report = rep
		res.Victim = victim
		res.SettledEpoch = c.MDS.CommittedEpoch()
		rrep, err := c.Recover(p, victim, 4, cluster.RecoverInterleaved, admin)
		if err != nil {
			runErr = fmt.Errorf("recover after mid-rebalance kill: %w", err)
			return
		}
		res.Recovery = rrep
		res.QuorumSentMsgs, res.QuorumSentBytes, res.QuorumHeldMsgs, res.QuorumHeldBytes = c.JournalQuorumStats()
		*load.stop = true
		load.wg.Wait(p)
		if *load.err != nil {
			runErr = *load.err
			return
		}
		if err := c.DrainAll(p, admin); err != nil {
			runErr = err
			return
		}
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-kill-rebalance scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// RebalanceKill runs the kill-during-rebalance composition across all six
// engines: an OSD dies after the first PG's bulk copy begins, the
// transition resolves (per-PG abort/finish outcomes), the node recovers
// under the settled epoch, and the run ends scrubbed clean.
func RebalanceKill(w io.Writer, s Scale) error {
	fmt.Fprintf(w, "== Rebalance × failure: kill a copy source mid-expansion (+1 OSD, SSD, Ali-Cloud, RS(6,4), %d files) ==\n", s.Files)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	// "rec items/KB" are the recovery cutover's journal replays (seeds +
	// degraded updates + any transition-orphaned records).
	fmt.Fprintln(tw, "engine\tpgs\taborted\tfinished\treconstructed\taborted MB\tmoved MB\trestored\trec items\trebuilt blks\trec KB\trecovery(ms)")
	for _, eng := range update.Names() {
		cfg := baseRun(s)
		cfg.Engine = eng
		cfg.Clients = 8
		cfg.Files = s.Files
		cfg.PGs = 64
		cfg.BlockSize = 256 << 10
		cfg.Trace = s.traceProfile("ali")
		rcfg := rebalance.Config{RateBps: s.RebalanceRateBps, MaxInFlightPGs: 2}
		r, err := RunRebalanceKill(cfg, rcfg)
		if err != nil {
			return fmt.Errorf("rebalance-kill %s: %w", eng, err)
		}
		rep := r.Report
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%d\t%d\t%d\t%d\t%.1f\n",
			eng, len(rep.Outcomes), rep.AbortedPGs, rep.FinishedPGs, rep.ReconstructedBlocks,
			float64(rep.AbortedBytes)/(1<<20), float64(rep.MovedBytes)/(1<<20),
			restoredItems(rep), r.Recovery.ReplayedItems, r.Recovery.Blocks,
			int(r.Recovery.ReplayedBytes>>10), ms(r.Recovery.TotalTime))
		labels := map[string]string{"engine": eng}
		s.Sink.Record("rebalance-kill", "pgs", labels, float64(len(rep.Outcomes)))
		s.Sink.Record("rebalance-kill", "aborted_pgs", labels, float64(rep.AbortedPGs))
		s.Sink.Record("rebalance-kill", "finished_pgs", labels, float64(rep.FinishedPGs))
		s.Sink.Record("rebalance-kill", "reconstructed_blocks", labels, float64(rep.ReconstructedBlocks))
		s.Sink.Record("rebalance-kill", "aborted_bytes", labels, float64(rep.AbortedBytes))
		s.Sink.Record("rebalance-kill", "moved_bytes", labels, float64(rep.MovedBytes))
		s.Sink.Record("rebalance-kill", "recovery_ms", labels, ms(r.Recovery.TotalTime))
		s.Sink.Record("rebalance-kill", "recovery_replayed_items", labels, float64(r.Recovery.ReplayedItems))
		s.Sink.Record("rebalance-kill", "journal_quorum_sent_msgs", labels, float64(r.QuorumSentMsgs))
		s.Sink.Record("rebalance-kill", "journal_quorum_sent_bytes", labels, float64(r.QuorumSentBytes))
		s.Sink.Record("rebalance-kill", "journal_quorum_held_bytes", labels, float64(r.QuorumHeldBytes))
	}
	return tw.Flush()
}

// restoredItems sums abort-path restores across a report's PG outcomes.
func restoredItems(rep *rebalance.Report) int {
	n := 0
	for _, res := range rep.Outcomes {
		n += res.RestoredItems
	}
	return n
}

// Rebalance runs the online-expansion experiment across all six engines:
// data moved vs the minimal-remap bound, the foreground IOPS dip during
// the expansion, and the cutover stall profile.
func Rebalance(w io.Writer, s Scale) error {
	rate := "unthrottled"
	if s.RebalanceRateBps > 0 {
		rate = fmt.Sprintf("%dMB/s", s.RebalanceRateBps>>20)
	}
	fmt.Fprintf(w, "== Rebalance: online expansion (+%d OSD, copy rate %s, SSD, Ali-Cloud, RS(6,4), %d files) ==\n",
		s.AddOSDs, rate, s.Files)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tmoved blks\tbound\tx bound\tmoved MB\trecopied\treplayed KB\tpgs\tmigrate(ms)\tstall(ms)\tmax stall(ms)\tbase IOPS\tduring IOPS\tdip")
	for _, eng := range update.Names() {
		cfg := baseRun(s)
		cfg.Engine = eng
		cfg.Clients = 16
		cfg.Files = s.Files
		cfg.PGs = 64
		// Smaller blocks -> more stripes, so per-PG moves and the bound are
		// well populated (same reasoning as the placement experiment).
		cfg.BlockSize = 256 << 10
		cfg.Trace = s.traceProfile("ali")
		rcfg := rebalance.Config{RateBps: s.RebalanceRateBps, MaxInFlightPGs: 2}
		r, err := RunRebalance(cfg, rcfg, s.AddOSDs)
		if err != nil {
			return fmt.Errorf("rebalance %s: %w", eng, err)
		}
		var movedMB float64
		var recopied, replayedKB, pgs int
		var migrate, stall, maxStall time.Duration
		for _, rep := range r.Reports {
			movedMB += float64(rep.MovedBytes) / (1 << 20)
			recopied += rep.RecopiedBlocks
			replayedKB += int(rep.ReplayedBytes >> 10)
			pgs += rep.PGsMigrated
			migrate += rep.MigrateTime
			stall += rep.StallTime
			if rep.MaxStall > maxStall {
				maxStall = rep.MaxStall
			}
		}
		moved, bound := r.MovedBlocks(), r.BoundBlocks()
		ratio := 0.0
		if bound > 0 {
			ratio = float64(moved) / bound
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.2fx\t%.1f\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.0f\t%.0f\t%.0f%%\n",
			eng, moved, bound, ratio, movedMB, recopied, replayedKB, pgs,
			ms(migrate), ms(stall), ms(maxStall),
			r.BaselineIOPS, r.DuringIOPS, r.DipPct)
		labels := map[string]string{"engine": eng}
		s.Sink.Record("rebalance", "moved_blocks", labels, float64(moved))
		s.Sink.Record("rebalance", "bound_blocks", labels, bound)
		s.Sink.Record("rebalance", "actual_over_bound", labels, ratio)
		s.Sink.Record("rebalance", "recopied_blocks", labels, float64(recopied))
		s.Sink.Record("rebalance", "replayed_kb", labels, float64(replayedKB))
		s.Sink.Record("rebalance", "migrate_ms", labels, ms(migrate))
		s.Sink.Record("rebalance", "stall_ms_total", labels, ms(stall))
		s.Sink.Record("rebalance", "stall_ms_max", labels, ms(maxStall))
		s.Sink.Record("rebalance", "base_iops", labels, r.BaselineIOPS)
		s.Sink.Record("rebalance", "during_iops", labels, r.DuringIOPS)
		s.Sink.Record("rebalance", "dip_pct", labels, r.DipPct)
	}
	return tw.Flush()
}
