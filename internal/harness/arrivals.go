package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/obs"
	"tsue/internal/sim"
	"tsue/internal/trace"
)

// This file is the open-loop load plane. The closed-loop replay in
// harness.go issues the next op only after the previous one completes, so
// offered load self-throttles to whatever the cluster sustains and latency
// never shows queueing collapse. An open-loop run instead draws arrival
// instants from an ArrivalProcess that is independent of completions: ops
// are dispatched at their scheduled virtual times no matter how many are
// still in flight, which is what exposes the saturation knee (latency vs
// offered load) and gives admission control something real to push back on.

// ArrivalProcess yields successive arrival instants. Implementations must
// be deterministic for a given construction (seed or explicit schedule)
// and must yield nondecreasing times. Next returns ok=false when the
// process is exhausted.
type ArrivalProcess interface {
	Next() (at time.Duration, ok bool)
}

// PoissonArrivals is a Poisson process: interarrival gaps are exponential
// with mean 1/rate, drawn from a seeded rng, for a fixed number of
// arrivals.
type PoissonArrivals struct {
	rng  *rand.Rand
	rate float64
	at   time.Duration
	left int
}

// NewPoissonArrivals builds a Poisson process offering rate ops/sec for n
// arrivals. Same (rate, n, seed) means the identical schedule.
func NewPoissonArrivals(rate float64, n int, seed int64) *PoissonArrivals {
	if rate <= 0 {
		panic(fmt.Sprintf("harness: Poisson rate must be positive, got %v", rate))
	}
	return &PoissonArrivals{rng: rand.New(rand.NewSource(seed)), rate: rate, left: n}
}

// Next returns the next arrival instant.
func (a *PoissonArrivals) Next() (time.Duration, bool) {
	if a.left <= 0 {
		return 0, false
	}
	a.left--
	a.at += time.Duration(a.rng.ExpFloat64() / a.rate * float64(time.Second))
	return a.at, true
}

// TraceArrivals replays an explicit timestamp schedule, e.g. parsed from a
// real trace's arrival column, shifted so the first op lands at its
// recorded offset from the trace start.
type TraceArrivals struct {
	times []time.Duration
	i     int
}

// NewTraceArrivals validates that the schedule is nondecreasing and
// returns a process replaying it. The slice is copied.
func NewTraceArrivals(times []time.Duration) (*TraceArrivals, error) {
	cp := append([]time.Duration(nil), times...)
	for i, t := range cp {
		if t < 0 {
			return nil, fmt.Errorf("harness: trace arrival %d is negative (%v)", i, t)
		}
		if i > 0 && t < cp[i-1] {
			return nil, fmt.Errorf("harness: trace arrivals not sorted at %d (%v < %v)", i, t, cp[i-1])
		}
	}
	return &TraceArrivals{times: cp}, nil
}

// Next returns the next recorded arrival instant.
func (a *TraceArrivals) Next() (time.Duration, bool) {
	if a.i >= len(a.times) {
		return 0, false
	}
	t := a.times[a.i]
	a.i++
	return t, true
}

// ZipfPicker draws object/offset slot indices over [0, n) with Zipf skew,
// so a few hot slots absorb most of the load — the access pattern that
// makes saturation engine-dependent (log contention concentrates instead
// of spreading). s > 1 and v >= 1 per math/rand: larger s is more skewed.
type ZipfPicker struct {
	z *rand.Zipf
	n uint64
}

// NewZipfPicker builds a deterministic picker over n slots.
func NewZipfPicker(n uint64, s, v float64, seed int64) *ZipfPicker {
	if n == 0 {
		panic("harness: ZipfPicker needs at least one slot")
	}
	return &ZipfPicker{z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, v, n-1), n: n}
}

// Pick returns the next slot index in [0, n).
func (zp *ZipfPicker) Pick() uint64 { return zp.z.Uint64() }

// Slots returns the picker's slot count.
func (zp *ZipfPicker) Slots() uint64 { return zp.n }

// OpenLoopConfig parameterizes one open-loop replay on top of a RunConfig
// (which still supplies the cluster shape, engine, trace profile and
// seed).
type OpenLoopConfig struct {
	// Arrivals is the arrival process (required). Its length bounds the
	// run: the replay dispatches exactly the ops it yields.
	Arrivals ArrivalProcess
	// Zipf, when non-nil, overrides the trace generator's offsets with
	// Zipf-skewed slot picks (slot size = the profile's Align, or 4 KiB).
	Zipf *ZipfPicker
	// Workers is the client-pool size ops round-robin over (default
	// RunConfig.Clients). Open-loop concurrency is set by the arrival
	// rate, not the pool; the pool only spreads view-cache refreshes.
	Workers int
	// RetryBackoff is the submitter's sleep after an ErrOverload bounce
	// before retrying (default 2ms).
	RetryBackoff time.Duration
	// MaxRetries caps per-op overload retries; an op that exhausts them is
	// counted in OpenLoopResult.Lost and reported, never silently dropped
	// (default 10000 — effectively retry-to-success unless the policy
	// wedges).
	MaxRetries int
	// Sample, when non-nil, runs every SamplePeriod of virtual time for the
	// duration of the replay — the obs experiment's hook for polling NIC
	// queue depths and link busy time into the cluster's metrics registry.
	// The sampler is stopped before the final drain (an armed sampler keeps
	// the event queue nonempty forever).
	Sample       func(c *cluster.Cluster, now time.Duration)
	SamplePeriod time.Duration // default 1ms when Sample is set
}

func (ol OpenLoopConfig) withDefaults(cfg RunConfig) OpenLoopConfig {
	if ol.Workers <= 0 {
		ol.Workers = cfg.Clients
	}
	if ol.RetryBackoff <= 0 {
		ol.RetryBackoff = 2 * time.Millisecond
	}
	if ol.MaxRetries <= 0 {
		ol.MaxRetries = 10000
	}
	return ol
}

// OpenLoopResult captures one open-loop run.
type OpenLoopResult struct {
	Submitted int // arrivals dispatched
	Completed int // ops that finished successfully
	Lost      int // ops that exhausted MaxRetries (always reported)
	// Rejections is the number of ErrOverload bounces submitters saw (each
	// was retried after RetryBackoff; MDS-side counters must agree).
	Rejections int64
	// Lats holds per-op latency = completion - scheduled arrival, so
	// queueing delay past the saturation knee shows up even though the
	// cluster never sees the op early. Indexed in completion order.
	Lats []time.Duration
	// Elapsed is first arrival to last completion; Achieved is
	// Completed/Elapsed in ops/sec.
	Elapsed  time.Duration
	Achieved float64
	// Admission mirrors the MDS-side counters at run end.
	Admission cluster.AdmissionStats
	// Spans is a copy of every trace span the run recorded (empty unless
	// cfg.TraceSample > 0); Metrics is the registry snapshot at run end.
	Spans   []obs.Span
	Metrics map[string]float64
}

// RunOpenLoop builds the cluster from cfg, preloads the file set, and
// replays the arrival schedule open-loop. Ops are generated from the trace
// profile (sizes, read/write mix) with offsets optionally re-skewed by
// ol.Zipf, and dispatched at their arrival instants regardless of how many
// ops are still outstanding. The run is deterministic per (cfg.Seed,
// arrival process, picker) — the sim kernel serializes all procs.
func RunOpenLoop(cfg RunConfig, ol OpenLoopConfig) (*OpenLoopResult, error) {
	if ol.Arrivals == nil {
		return nil, fmt.Errorf("harness: open loop needs an ArrivalProcess")
	}
	ol = ol.withDefaults(cfg)
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()

	res := &OpenLoopResult{}
	admin := c.NewClient()
	var smp *obs.Sampler
	if ol.Sample != nil {
		period := ol.SamplePeriod
		if period <= 0 {
			period = time.Millisecond
		}
		smp = obs.StartSampler(c.Env, period, func(now time.Duration) { ol.Sample(c, now) })
	}
	var runErr error
	c.Env.Go("openloop", func(p *sim.Proc) {
		runErr = openLoop(p, c, admin, cfg, ol, res)
		if smp != nil {
			smp.Stop()
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	if res.Elapsed > 0 {
		res.Achieved = float64(res.Completed) / res.Elapsed.Seconds()
	}
	res.Admission = c.AdmissionStats()
	res.Spans = append([]obs.Span(nil), c.Obs.Tracer.Spans()...)
	res.Metrics = c.Obs.Reg.Snapshot()
	// Histograms are not part of Snapshot (they are distributions, not
	// scalars); flatten the aggregates the experiments read.
	for _, name := range c.Obs.Reg.HistogramNames() {
		h := c.Obs.Reg.Histogram(name)
		res.Metrics[name+"_count"] = float64(h.Count())
		res.Metrics[name+"_sum_ns"] = float64(h.Sum())
	}
	return res, nil
}

func openLoop(p *sim.Proc, c *cluster.Cluster, admin *cluster.Client, cfg RunConfig, ol OpenLoopConfig, res *OpenLoopResult) error {
	inos, perFile, err := preload(p, c, admin, cfg)
	if err != nil {
		return err
	}
	c.ResetStats()

	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(cfg.Seed + 999)).Read(payload)

	prof := cfg.Trace
	prof.WorkingSet = perFile
	gen := trace.MustGenerator(prof, cfg.Seed)
	align := prof.Align
	if align <= 0 {
		align = 4 << 10
	}

	pool := make([]*cluster.Client, ol.Workers)
	for i := range pool {
		pool[i] = c.NewClient()
	}

	start := p.Now()
	var last time.Duration
	var firstErr error
	wg := sim.NewWaitGroup(c.Env)
	for i := 0; ; i++ {
		at, ok := ol.Arrivals.Next()
		if !ok {
			break
		}
		if cfg.MaxTime > 0 && at > cfg.MaxTime {
			break
		}
		// The dispatcher sleeps to the arrival instant and fires the op
		// into its own proc — it never waits for completions, so in-flight
		// depth floats with offered load (the open-loop property).
		if wait := start + at - p.Now(); wait > 0 {
			p.Sleep(wait)
		}
		op := gen.Next()
		if ol.Zipf != nil {
			op.Off = int64(ol.Zipf.Pick()) * align
		}
		if op.Off+int64(op.Size) > perFile {
			op.Off = perFile - int64(op.Size)
			if op.Off < 0 {
				op.Off = 0
			}
		}
		ino := inos[i%len(inos)]
		cl := pool[i%len(pool)]
		arrival := p.Now() - start
		res.Submitted++
		wg.Add(1)
		c.Env.Go(fmt.Sprintf("arrival%d", i), func(cp *sim.Proc) {
			defer wg.Done()
			for try := 0; ; try++ {
				var err error
				if op.Kind == trace.Write {
					pstart := int(op.Off) % (len(payload) - int(op.Size))
					err = cl.Update(cp, ino, op.Off, payload[pstart:pstart+int(op.Size)])
				} else {
					_, err = cl.Read(cp, ino, op.Off, int64(op.Size))
				}
				if err == nil {
					break
				}
				if !errors.Is(err, cluster.ErrOverload) {
					if firstErr == nil {
						firstErr = fmt.Errorf("open-loop op %d: %w", i, err)
					}
					return
				}
				res.Rejections++
				if try+1 >= ol.MaxRetries {
					res.Lost++
					return
				}
				cp.Sleep(ol.RetryBackoff)
			}
			res.Completed++
			t := cp.Now() - start
			res.Lats = append(res.Lats, t-arrival)
			if t > last {
				last = t
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return firstErr
	}
	res.Elapsed = last
	return nil
}
