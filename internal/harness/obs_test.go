package harness

import (
	"math/rand"
	"testing"
	"time"

	"tsue/internal/obs"
	"tsue/internal/trace"
)

// TestHistogramAgreesWithLatencyDist pins the two percentile
// implementations to each other: an obs histogram's quantile must bracket
// the exact nearest-rank value LatencyDist computes on the same samples —
// equal below the exact-bucket threshold, and within one log-bucket's
// relative width (1/32) above it. Shared small-n cases are where
// nearest-rank conventions usually diverge.
func TestHistogramAgreesWithLatencyDist(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		samples := make([]time.Duration, n)
		var h obs.Histogram
		for i := range samples {
			samples[i] = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
			h.Record(samples[i])
		}
		dist := NewLatencyDist(samples)
		for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
			exact := dist.P(p)
			got := h.P(p)
			if got < exact || got > exact+exact/32 {
				t.Errorf("n=%d p=%v: histogram %v outside [%v, %v]",
					n, p, got, exact, exact+exact/32)
			}
		}
	}
}

// TestTracingZeroPerturbation is the obs plane's core contract: turning
// tracing on (even at sample=1) must not move virtual time at all. Span
// context rides every wire message whether traced or not, and span
// recording never sleeps — so two otherwise-identical replays must produce
// identical per-op completion times, not merely similar throughput.
func TestTracingZeroPerturbation(t *testing.T) {
	run := func(sample int) *Result {
		cfg := DefaultRunConfig()
		cfg.Ops = 400
		cfg.Clients = 4
		cfg.FileBytes = 8 << 20
		cfg.Trace = trace.AliCloud(cfg.FileBytes)
		cfg.TraceSample = sample
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("sample=%d: %v", sample, err)
		}
		return r
	}
	off := run(0)
	on := run(1)
	if off.Elapsed != on.Elapsed {
		t.Errorf("tracing moved virtual time: %v untraced vs %v traced", off.Elapsed, on.Elapsed)
	}
	if len(off.Completions) != len(on.Completions) {
		t.Fatalf("op counts differ: %d vs %d", len(off.Completions), len(on.Completions))
	}
	for i := range off.Completions {
		if off.Completions[i] != on.Completions[i] {
			t.Fatalf("op %d completed at %v untraced vs %v traced", i, off.Completions[i], on.Completions[i])
		}
	}
}

// TestOpenLoopCarriesSpans checks the open-loop plumbing the obs
// experiment rides: a traced run returns its spans (assembling into
// update/read traces whose stage sums equal end-to-end exactly) and the
// flattened registry aggregates, while an untraced run returns none.
func TestOpenLoopCarriesSpans(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Ops = 200
	cfg.Clients = 4
	cfg.FileBytes = 8 << 20
	cfg.Trace = trace.AliCloud(cfg.FileBytes)
	cfg.TraceSample = 1
	res, err := RunOpenLoop(cfg, OpenLoopConfig{
		Arrivals: NewPoissonArrivals(500, 200, cfg.Seed),
		Sample:   nicSampler(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced open-loop run returned no spans")
	}
	tvs := obs.GroupTraces(res.Spans)
	if len(tvs) == 0 {
		t.Fatal("spans assembled into no complete traces")
	}
	for i := range tvs {
		var sum time.Duration
		for _, d := range tvs[i].Breakdown() {
			sum += d
		}
		if sum != tvs[i].Duration() {
			t.Fatalf("trace %d: stage sum %v != end-to-end %v", tvs[i].Trace, sum, tvs[i].Duration())
		}
	}
	if res.Metrics["nic_tx_busy_per_tick_count"] == 0 {
		t.Error("NIC sampler recorded no ticks")
	}

	cfg.TraceSample = 0
	res2, err := RunOpenLoop(cfg, OpenLoopConfig{
		Arrivals: NewPoissonArrivals(500, 200, cfg.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Spans) != 0 {
		t.Fatalf("untraced run recorded %d spans", len(res2.Spans))
	}
}
