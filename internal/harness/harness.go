// Package harness builds simulated ECFS clusters, replays traces against
// them, and regenerates every table and figure of the TSUE paper's
// evaluation (§5). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the measured shapes next to the paper's.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"tsue/internal/cluster"
	"tsue/internal/device"
	"tsue/internal/netsim"
	"tsue/internal/rs"
	"tsue/internal/sim"
	"tsue/internal/trace"
	"tsue/internal/update"
	"tsue/internal/wire"
)

// RunConfig describes one trace-replay run.
type RunConfig struct {
	Engine    string
	Trace     trace.Profile
	K, M      int
	OSDs      int
	Clients   int
	Ops       int   // total ops across all clients
	FileBytes int64 // total preloaded volume == trace working set
	BlockSize int64
	Device    device.Kind
	Opts      update.Options
	Seed      int64
	// Files splits the working set across this many files (>= 1; Validate
	// rejects zero). Each client works against file (client index mod
	// Files), so stripes — and with them recovery fan-out, surrogate load
	// and degraded-journal pressure — spread across placement groups the
	// way a multi-tenant cluster's would.
	Files int
	// PGs is the cluster's placement-group count (>= 1; Validate rejects
	// zero — DefaultRunConfig carries the 8-per-OSD default explicitly).
	PGs int
	// MaxTime caps the replay in virtual time (0 = ops only).
	MaxTime time.Duration
	// Hedge > 0 arms hedged degraded reads (cluster.Config.HedgeDelay):
	// on-the-fly reconstructions launch a second attempt from the
	// alternate survivor set after this deadline. The chaos experiment's
	// straggler scenarios set it; everything else leaves it off.
	Hedge time.Duration
	// SkipVerify disables the drain+scrub gate (never set in experiments;
	// used by tests that verify separately).
	SkipVerify bool
	// Admission, when non-nil, installs MDS admission control
	// (cluster.Config.Admission): every client block op first asks the MDS
	// for a slot and overload bounces surface as cluster.ErrOverload. The
	// saturation experiment sets it; closed-loop replays leave it nil
	// (zero overhead — no admission round trip at all).
	Admission cluster.AdmissionPolicy
	// TraceSample, when > 0, traces every n-th foreground op end-to-end
	// (cluster.Config.TraceSample). Tracing never perturbs virtual time —
	// span context rides every wire message whether sampled or not — so any
	// run can turn it on without changing its measurements. The obs
	// experiment sets 1 (trace everything); everything else leaves it 0.
	TraceSample int
}

// DefaultRunConfig returns the paper-shaped SSD configuration scaled to a
// tractable working set.
func DefaultRunConfig() RunConfig {
	opts := update.DefaultOptions()
	opts.UnitSize = 1 << 20          // scale the 16 MiB units to the scaled trace volume
	opts.RecycleBatch = 1            // paper fidelity: the paper recycles unit-by-unit; the Sweep experiment opts into batching
	opts.RecycleThreshold = 64 << 20 // PL/PARIX lazy logs defer recycling beyond the run (paper: "indefinitely delayed")
	opts.PLRReserve = 8 << 10
	opts.CordBufferSize = 1 << 20
	return RunConfig{
		Engine:    "tsue",
		K:         6,
		M:         4,
		OSDs:      16,
		Clients:   16,
		Ops:       6000,
		FileBytes: 48 << 20,
		BlockSize: 1 << 20,
		Device:    device.SSD,
		Opts:      opts,
		Seed:      1,
		Files:     1,
		PGs:       128,
	}
}

// Validate rejects nonsensical run parameters with a clear error instead
// of a downstream panic or a silent default. Everything that counts
// something must be positive; worker bounds must not be negative.
func (cfg RunConfig) Validate() error {
	switch {
	case cfg.Engine == "":
		return fmt.Errorf("harness: Engine must be set")
	case cfg.K < 1 || cfg.M < 1:
		return fmt.Errorf("harness: RS(%d,%d) needs K >= 1 and M >= 1", cfg.K, cfg.M)
	case cfg.OSDs < cfg.K+cfg.M:
		return fmt.Errorf("harness: %d OSDs cannot host RS(%d,%d) stripes", cfg.OSDs, cfg.K, cfg.M)
	case cfg.Clients < 1:
		return fmt.Errorf("harness: Clients must be >= 1, got %d", cfg.Clients)
	case cfg.Ops < 1:
		return fmt.Errorf("harness: Ops must be >= 1, got %d", cfg.Ops)
	case cfg.FileBytes < 1:
		return fmt.Errorf("harness: FileBytes must be >= 1, got %d", cfg.FileBytes)
	case cfg.BlockSize < 1:
		return fmt.Errorf("harness: BlockSize must be >= 1, got %d", cfg.BlockSize)
	case cfg.Files < 1:
		return fmt.Errorf("harness: Files must be >= 1, got %d", cfg.Files)
	case cfg.PGs < 1:
		return fmt.Errorf("harness: PGs must be >= 1, got %d", cfg.PGs)
	case cfg.MaxTime < 0:
		return fmt.Errorf("harness: MaxTime must not be negative, got %v", cfg.MaxTime)
	case cfg.Opts.CodecWorkers < 0:
		return fmt.Errorf("harness: CodecWorkers must not be negative, got %d", cfg.Opts.CodecWorkers)
	case cfg.Opts.RecycleBatch < 0:
		return fmt.Errorf("harness: RecycleBatch must not be negative, got %d", cfg.Opts.RecycleBatch)
	case cfg.Opts.Pools < 0 || cfg.Opts.MaxUnits < 0 || cfg.Opts.Copies < 0:
		return fmt.Errorf("harness: engine pool/unit/copy counts must not be negative")
	}
	return nil
}

// Result captures one run's measurements.
type Result struct {
	Cfg         RunConfig
	Ops         int
	Elapsed     time.Duration
	IOPS        float64
	Device      device.Stats
	Net         netsim.Stats
	PeakMem     int64
	FinalMem    int64
	Residency   map[string]update.LayerStats
	Completions []time.Duration // per-op completion times (relative to start)
	Stripes     int             // scrubbed stripes
}

// Timeline buckets completions into n equal intervals and returns ops/sec
// per bucket.
func (r *Result) Timeline(n int) []float64 {
	if n <= 0 || r.Elapsed <= 0 {
		return nil
	}
	out := make([]float64, n)
	per := r.Elapsed / time.Duration(n)
	if per <= 0 {
		return out
	}
	for _, t := range r.Completions {
		i := int(t / per)
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	for i := range out {
		out[i] /= per.Seconds()
	}
	return out
}

// buildCluster translates a RunConfig into a live simulated cluster.
func buildCluster(cfg RunConfig) (*cluster.Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ccfg := cluster.DefaultConfig()
	ccfg.OSDs = cfg.OSDs
	ccfg.K, ccfg.M = cfg.K, cfg.M
	ccfg.BlockSize = cfg.BlockSize
	ccfg.Engine = cfg.Engine
	ccfg.EngineOpts = cfg.Opts
	ccfg.HedgeDelay = cfg.Hedge
	ccfg.Admission = cfg.Admission
	ccfg.TraceSample = cfg.TraceSample
	ccfg.DeviceKind = cfg.Device
	if cfg.Device == device.HDD {
		ccfg.DeviceParams = device.HDDParams()
		ccfg.NetParams = netsim.Infiniband40G()
	} else {
		ccfg.DeviceParams = device.SSDParams()
		// Size the FTL so update churn forces garbage collection, with headroom
		// for the bounded circular log regions (a too-small device makes the
		// GC thrash on live log space, which no real deployment would size).
		perOSD := cfg.FileBytes * int64(cfg.K+cfg.M) / int64(cfg.K) / int64(cfg.OSDs)
		ccfg.DeviceParams.Capacity = perOSD*2 + 512<<20
		ccfg.DeviceParams.PageSize = 16 << 10
		ccfg.DeviceParams.BlockPages = 64
	}
	ccfg.MatrixKind = rs.Vandermonde
	ccfg.PGs = cfg.PGs
	return cluster.New(ccfg)
}

// preload creates the run's file set ("vol0"..) and writes deterministic
// content through the normal encoded write path, returning the inodes and
// the per-file byte size. The working set splits evenly across cfg.Files,
// rounded up to whole stripes.
func preload(p *sim.Proc, c *cluster.Cluster, admin *cluster.Client, cfg RunConfig) ([]uint64, int64, error) {
	nFiles := cfg.Files
	if nFiles < 1 {
		nFiles = 1
	}
	sw := c.StripeWidth()
	perFile := cfg.FileBytes / int64(nFiles)
	if perFile < sw {
		perFile = sw
	}
	perFile = (perFile + sw - 1) / sw * sw
	inos := make([]uint64, nFiles)
	content := make([]byte, perFile)
	for f := 0; f < nFiles; f++ {
		rand.New(rand.NewSource(cfg.Seed + int64(f)*104729)).Read(content)
		ino, err := admin.Create(p, fmt.Sprintf("vol%d", f), perFile)
		if err != nil {
			return nil, 0, err
		}
		if err := admin.WriteFile(p, ino, content); err != nil {
			return nil, 0, err
		}
		inos[f] = ino
	}
	return inos, perFile, nil
}

// Run executes one trace replay and verifies the stripe-consistency
// invariant before returning.
func Run(cfg RunConfig) (*Result, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()

	res := &Result{Cfg: cfg}
	admin := c.NewClient()
	var runErr error
	c.Env.Go("harness", func(p *sim.Proc) {
		if runErr = replay(p, c, admin, cfg, res); runErr != nil {
			return
		}
		// Merge all outstanding logs, then capture workload counters (so
		// every scheme is charged its full merge debt — the paper's Table 1
		// replays the trace to completion with logs persisted and recycled).
		if runErr = c.DrainAll(p, admin); runErr != nil {
			return
		}
		res.Device = c.DeviceStats()
		res.Net = c.Fabric.TotalStats()
		res.Residency = c.Residency()
		if !cfg.SkipVerify {
			n, err := c.Scrub()
			if err != nil {
				runErr = fmt.Errorf("post-run scrub failed: %w", err)
				return
			}
			res.Stripes = n
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	if res.Elapsed > 0 {
		res.IOPS = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}

// RunRecovery replays the trace WITHOUT draining, then fails one OSD and
// measures recovery bandwidth including the forced log merge (Fig. 8b).
func RunRecovery(cfg RunConfig) (*cluster.RecoveryReport, error) {
	c, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Env.Close()
	admin := c.NewClient()
	var runErr error
	var rep *cluster.RecoveryReport
	c.Env.Go("harness", func(p *sim.Proc) {
		res := &Result{Cfg: cfg}
		if runErr = replay(p, c, admin, cfg, res); runErr != nil {
			return
		}
		// Fail an OSD chosen deterministically; recovery drains first, per
		// the paper's consistency protocol.
		victim := wire.NodeID(cfg.Seed%int64(cfg.OSDs) + 1)
		rep, runErr = c.Recover(p, victim, 8, cluster.RecoverDrainFirst, admin)
		if runErr != nil {
			return
		}
		if !cfg.SkipVerify {
			if _, err := c.Scrub(); err != nil {
				runErr = fmt.Errorf("post-recovery scrub failed: %w", err)
			}
		}
	})
	c.Env.Run(0)
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}

func replay(p *sim.Proc, c *cluster.Cluster, admin *cluster.Client, cfg RunConfig, res *Result) error {
	// Preload the file set through the normal encoded write path.
	inos, perFile, err := preload(p, c, admin, cfg)
	if err != nil {
		return err
	}
	c.ResetStats()

	// Payload source for updates: deterministic pseudo-random bytes.
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(cfg.Seed + 999)).Read(payload)

	start := p.Now()
	nClients := cfg.Clients
	if nClients < 1 {
		nClients = 1
	}
	opsPer := cfg.Ops / nClients
	if opsPer < 1 {
		opsPer = 1
	}
	wg := sim.NewWaitGroup(c.Env)
	wg.Add(nClients)
	var clientErr error
	done := 0
	var last time.Duration
	for ci := 0; ci < nClients; ci++ {
		ci := ci
		cl := c.NewClient()
		ino := inos[ci%len(inos)]
		// Scope the generator's address space to the client's file.
		prof := cfg.Trace
		prof.WorkingSet = perFile
		gen := trace.MustGenerator(prof, cfg.Seed+int64(ci)*7919)
		c.Env.Go(fmt.Sprintf("client%d", ci), func(cp *sim.Proc) {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				if cfg.MaxTime > 0 && cp.Now()-start >= cfg.MaxTime {
					return
				}
				op := gen.Next()
				off := op.Off
				if off+int64(op.Size) > perFile {
					off = perFile - int64(op.Size)
				}
				var err error
				if op.Kind == trace.Write {
					pstart := int(off) % (len(payload) - int(op.Size))
					err = cl.Update(cp, ino, off, payload[pstart:pstart+int(op.Size)])
				} else {
					_, err = cl.Read(cp, ino, off, int64(op.Size))
				}
				if err != nil {
					if clientErr == nil {
						clientErr = fmt.Errorf("client %d op %d: %w", ci, j, err)
					}
					return
				}
				done++
				t := cp.Now() - start
				res.Completions = append(res.Completions, t)
				if t > last {
					last = t
				}
			}
		})
	}
	wg.Wait(p)
	if clientErr != nil {
		return clientErr
	}
	res.Ops = done
	res.Elapsed = last
	res.PeakMem = c.PeakMemBytes()
	res.FinalMem = c.MemBytes()
	return nil
}
