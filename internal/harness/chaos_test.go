package harness

// Harness-level chaos smoke: every scenario must run to a clean scrub at a
// small scale, the corrupt scenario must detect every injection (RunChaos
// errors internally otherwise), and the parix flap regression stays
// pinned — a flapping parity OSD used to leave a latest-without-orig log
// that crashed recycleAll on drain.

import (
	"testing"
)

func chaosTestConfig(engine string) RunConfig {
	s := QuickScale()
	cfg := baseRun(s)
	cfg.Engine = engine
	cfg.Clients = 16
	cfg.Ops = 800
	cfg.FileBytes = 8 << 20
	cfg.Trace = s.traceProfile("ali")
	return cfg
}

func TestChaosScenariosSmoke(t *testing.T) {
	for _, scen := range ChaosScenarios() {
		scen := scen
		t.Run(scen, func(t *testing.T) {
			cfg := chaosTestConfig("tsue")
			if chaosKills(scen) {
				cfg.Hedge = chaosHedgeDelay
			}
			r, err := RunChaos(cfg, scen)
			if err != nil {
				t.Fatal(err)
			}
			if r.Stripes == 0 {
				t.Fatal("scrub verified zero stripes")
			}
			if len(r.ReadLats) == 0 && r.ReadErrs == 0 {
				t.Fatal("no reads landed in the fault window")
			}
			if scen == ChaosCorrupt && r.CorruptInjected == 0 {
				t.Fatal("corrupt scenario injected nothing")
			}
		})
	}
}

// TestChaosParixFlapRegression pins the partial-orig-fanout crash: a
// flapping OSD failing a PARIX first-write orig round mid-fan-out leaves a
// parity log with speculative records but no baseline, which recycleAll
// must survive (folding against an empty baseline; the scrub-repair pass
// owns the torn stripe).
func TestChaosParixFlapRegression(t *testing.T) {
	r, err := RunChaos(chaosTestConfig("parix"), ChaosFlap)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stripes == 0 {
		t.Fatal("scrub verified zero stripes")
	}
}

// TestChaosStragglerHedges checks the kill-scenario plumbing end to end:
// with a lognormal straggler among the survivors and hedging armed, the
// recovery-window reconstructions must actually fire hedges.
func TestChaosStragglerHedges(t *testing.T) {
	cfg := chaosTestConfig("tsue")
	cfg.Hedge = chaosHedgeDelay
	r, err := RunChaos(cfg, ChaosStraggler)
	if err != nil {
		t.Fatal(err)
	}
	if r.Report == nil {
		t.Fatal("straggler scenario returned no recovery report")
	}
	if r.HedgeFired == 0 {
		t.Fatal("no hedges fired under a lognormal straggler")
	}
	if r.HedgeWins > r.HedgeFired {
		t.Fatalf("hedge wins %d exceed fires %d", r.HedgeWins, r.HedgeFired)
	}
}
