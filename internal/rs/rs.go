// Package rs implements systematic Reed–Solomon erasure coding over GF(2^8)
// together with the incremental parity-update algebra used by erasure-code
// update schemes (Equations (1)–(5) of the TSUE paper, HPDC'25).
//
// A Code with parameters (K, M) turns K data blocks into M parity blocks via
// an M x K coefficient matrix over GF(2^8) (Vandermonde- or Cauchy-derived,
// Equation (1)). Any K of the K+M blocks reconstruct the rest.
//
// For updates, the incremental form is:
//
//	P'_i = P_i + coef[i][j] * (D'_j - D_j)        (Equation (2))
//
// and multiple data deltas for the same intra-block range across blocks of
// one stripe fold into a single parity delta per parity block
// (Equation (5)). ParityDelta and MergeDataDeltas implement these.
package rs

import (
	"fmt"

	"tsue/internal/gf256"
)

// MatrixKind selects how the encoding matrix is derived.
type MatrixKind int

const (
	// Vandermonde derives the coefficient matrix from an extended
	// (K+M) x K Vandermonde matrix brought to systematic form; this is the
	// classic construction and guarantees any K rows are invertible.
	Vandermonde MatrixKind = iota
	// Cauchy uses a Cauchy matrix directly as the parity coefficients; any
	// square submatrix of a Cauchy matrix is invertible.
	Cauchy
)

func (k MatrixKind) String() string {
	switch k {
	case Vandermonde:
		return "vandermonde"
	case Cauchy:
		return "cauchy"
	default:
		return fmt.Sprintf("MatrixKind(%d)", int(k))
	}
}

// Code is a systematic RS(K, M) erasure code.
type Code struct {
	K, M int
	// coef is the M x K parity coefficient matrix: parity row i is
	// sum_j coef[i][j] * data[j].
	coef *Matrix
	// full is the (K+M) x K generator: identity on top, coef below.
	full *Matrix
}

// New creates an RS(K, M) code. K must be in [1, 128] per wide-stripe limits
// discussed in the paper (ECWide caps K at 128), M in [1, 16], K+M <= 240.
func New(k, m int, kind MatrixKind) (*Code, error) {
	if k < 1 || k > 128 {
		return nil, fmt.Errorf("rs: K=%d out of range [1,128]", k)
	}
	if m < 1 || m > 16 {
		return nil, fmt.Errorf("rs: M=%d out of range [1,16]", m)
	}
	if k+m > 240 {
		return nil, fmt.Errorf("rs: K+M=%d exceeds 240", k+m)
	}
	var coef *Matrix
	switch kind {
	case Vandermonde:
		// Build (K+M) x K Vandermonde, normalize the top KxK block to the
		// identity by right-multiplying with its inverse; the bottom M rows
		// become the systematic parity coefficients.
		v := vandermonde(k+m, k)
		top := v.SubMatrix(0, k, 0, k)
		topInv, err := top.Invert()
		if err != nil {
			return nil, fmt.Errorf("rs: vandermonde top block not invertible: %w", err)
		}
		sys := v.Mul(topInv)
		coef = sys.SubMatrix(k, k+m, 0, k)
	case Cauchy:
		coef = cauchy(m, k)
	default:
		return nil, fmt.Errorf("rs: unknown matrix kind %v", kind)
	}
	full := NewMatrix(k+m, k)
	for i := 0; i < k; i++ {
		full.Set(i, i, 1)
	}
	for i := 0; i < m; i++ {
		copy(full.Row(k+i), coef.Row(i))
	}
	return &Code{K: k, M: m, coef: coef, full: full}, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(k, m int, kind MatrixKind) *Code {
	c, err := New(k, m, kind)
	if err != nil {
		panic(err)
	}
	return c
}

// Coef returns the parity coefficient coef[i][j] applied to data block j for
// parity block i (the "partial derivative" in the paper's Equation (2)).
func (c *Code) Coef(parity, data int) byte {
	return c.coef.At(parity, data)
}

// Encode computes the M parity blocks for the given K data shards. All
// shards must have equal length. parity must contain M slices of the same
// length (they are overwritten).
func (c *Code) Encode(data, parity [][]byte) error {
	if len(data) != c.K {
		return fmt.Errorf("rs: Encode got %d data shards, want %d", len(data), c.K)
	}
	if len(parity) != c.M {
		return fmt.Errorf("rs: Encode got %d parity shards, want %d", len(parity), c.M)
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return fmt.Errorf("rs: data shard %d size %d != %d", i, len(d), size)
		}
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("rs: parity shard %d size %d != %d", i, len(p), size)
		}
	}
	// Stripe the byte range across the worker pool: each worker computes
	// every parity row over its own sub-range, so rows stay single-writer
	// and the data shards are read-shared.
	stripeRanges(size, func(lo, hi int) {
		for i := 0; i < c.M; i++ {
			row := c.coef.Row(i)
			out := parity[i][lo:hi]
			for b := range out {
				out[b] = 0
			}
			for j := 0; j < c.K; j++ {
				gf256.MulXorSlice(row[j], out, data[j][lo:hi])
			}
		}
	})
	return nil
}

// ParityDelta computes the parity delta for parity block `parity` caused by
// dataDelta (= Dnew XOR Dold) on data block `data`: coef * dataDelta.
// The result is written into dst, which must be the same length as dataDelta.
func (c *Code) ParityDelta(parity, data int, dst, dataDelta []byte) {
	gf256.MulSlice(c.coef.At(parity, data), dst, dataDelta)
}

// ApplyParityDelta folds a parity delta into a parity region in place:
// parityRegion ^= parityDelta (Equation (2) tail).
func ApplyParityDelta(parityRegion, parityDelta []byte) {
	gf256.XorSlice(parityRegion, parityDelta)
}

// DataDelta computes dst = newData XOR oldData, the data delta of
// Equation (2). All three may alias; lengths must match.
func DataDelta(dst, newData, oldData []byte) {
	if len(dst) != len(newData) || len(dst) != len(oldData) {
		panic("rs: DataDelta length mismatch")
	}
	for i := range dst {
		dst[i] = newData[i] ^ oldData[i]
	}
}

// MergeDataDeltas folds data deltas from multiple data blocks at the same
// intra-block range into the single parity delta for parity block `parity`
// (Equation (5)): dst ^= sum_j coef[parity][block_j] * delta_j.
// dst must be pre-sized; each delta must have the same length as dst.
// Large ranges stripe across the codec worker pool. For folding a whole
// stripe's worth of irregular extents in one pass, see FoldDeltas.
func (c *Code) MergeDataDeltas(parity int, dst []byte, blocks []int, deltas [][]byte) {
	if len(blocks) != len(deltas) {
		panic("rs: MergeDataDeltas blocks/deltas length mismatch")
	}
	for i := range deltas {
		if len(deltas[i]) != len(dst) {
			panic("rs: MergeDataDeltas delta length mismatch")
		}
	}
	stripeRanges(len(dst), func(lo, hi int) {
		for i, b := range blocks {
			gf256.MulXorSlice(c.coef.At(parity, b), dst[lo:hi], deltas[i][lo:hi])
		}
	})
}

// Reconstruct recovers missing shards. shards has length K+M: index < K are
// data shards, >= K are parity shards. Missing shards are nil; present
// shards must all share one length. On success every nil shard is replaced
// by its reconstructed content. Returns an error if more than M shards are
// missing.
func (c *Code) Reconstruct(shards [][]byte) error {
	n := c.K + c.M
	if len(shards) != n {
		return fmt.Errorf("rs: Reconstruct got %d shards, want %d", len(shards), n)
	}
	size := -1
	present := make([]int, 0, n)
	missing := make([]int, 0, c.M)
	for i, s := range shards {
		if s == nil {
			missing = append(missing, i)
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("rs: shard %d size %d != %d", i, len(s), size)
		}
		present = append(present, i)
	}
	if len(missing) == 0 {
		return nil
	}
	if len(missing) > c.M {
		return fmt.Errorf("rs: %d shards missing, can repair at most %d", len(missing), c.M)
	}
	if size < 0 {
		return fmt.Errorf("rs: all shards missing")
	}
	// Select K present shards; build the KxK system from their generator rows.
	sel := present[:c.K]
	sys := NewMatrix(c.K, c.K)
	for r, idx := range sel {
		copy(sys.Row(r), c.full.Row(idx))
	}
	inv, err := sys.Invert()
	if err != nil {
		return err
	}
	// Decode matrix rows for the original data blocks: data = inv * selected.
	// For each missing shard i, its generator row full[i] applied to the
	// decoded data gives the shard: rec_i = full[i] * inv * selected.
	recRows := make([][]byte, len(missing))
	for mi, idx := range missing {
		// row = full[idx] (1 x K) * inv (K x K) -> 1 x K over selected shards.
		row := make([]byte, c.K)
		frow := c.full.Row(idx)
		for j := 0; j < c.K; j++ {
			if f := frow[j]; f != 0 {
				gf256.MulXorSlice(f, row, inv.Row(j))
			}
		}
		recRows[mi] = row
	}
	// The O(missing * K * size) shard rebuild dominates; stripe it across
	// the worker pool. Each worker owns a byte sub-range of every
	// reconstructed shard, the present shards are read-shared.
	rec := make([][]byte, len(missing))
	for mi := range missing {
		rec[mi] = make([]byte, size)
	}
	stripeRanges(size, func(lo, hi int) {
		for mi := range missing {
			out := rec[mi][lo:hi]
			row := recRows[mi]
			for j, srcIdx := range sel {
				gf256.MulXorSlice(row[j], out, shards[srcIdx][lo:hi])
			}
		}
	})
	for mi, idx := range missing {
		shards[idx] = rec[mi]
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
func (c *Code) Verify(data, parity [][]byte) (bool, error) {
	if len(data) != c.K || len(parity) != c.M {
		return false, fmt.Errorf("rs: Verify got %d/%d shards, want %d/%d", len(data), len(parity), c.K, c.M)
	}
	size := len(data[0])
	check := make([][]byte, c.M)
	for i := range check {
		check[i] = make([]byte, size)
	}
	if err := c.Encode(data, check); err != nil {
		return false, err
	}
	for i := range check {
		if len(parity[i]) != size {
			return false, fmt.Errorf("rs: parity shard %d size %d != %d", i, len(parity[i]), size)
		}
		for b := range check[i] {
			if check[i][b] != parity[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}
