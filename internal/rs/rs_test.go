package rs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randShards(rng *rand.Rand, k, size int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func makeParity(m, size int) [][]byte {
	out := make([][]byte, m)
	for i := range out {
		out[i] = make([]byte, size)
	}
	return out
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct{ k, m int }{
		{0, 2}, {-1, 2}, {129, 2}, {4, 0}, {4, 17}, {128, 16}, // 128+16=144 ok actually
	}
	for _, c := range cases {
		_, err := New(c.k, c.m, Vandermonde)
		if c.k == 128 && c.m == 16 {
			if err != nil {
				t.Errorf("New(128,16) should succeed: %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("New(%d,%d) should fail", c.k, c.m)
		}
	}
}

func TestEncodeDecodeAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		for _, cfg := range []struct{ k, m int }{{2, 1}, {4, 2}, {6, 2}, {6, 3}, {6, 4}, {12, 2}, {12, 3}, {12, 4}, {16, 4}} {
			c := MustNew(cfg.k, cfg.m, kind)
			size := 1 + rng.Intn(512)
			data := randShards(rng, cfg.k, size)
			parity := makeParity(cfg.m, size)
			if err := c.Encode(data, parity); err != nil {
				t.Fatalf("%v RS(%d,%d): %v", kind, cfg.k, cfg.m, err)
			}
			ok, err := c.Verify(data, parity)
			if err != nil || !ok {
				t.Fatalf("%v RS(%d,%d): verify failed: %v", kind, cfg.k, cfg.m, err)
			}
		}
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := MustNew(6, 3, Vandermonde)
	size := 128
	data := randShards(rng, 6, size)
	parity := makeParity(3, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, 9)
	for i := 0; i < 6; i++ {
		orig[i] = data[i]
	}
	for i := 0; i < 3; i++ {
		orig[6+i] = parity[i]
	}
	// All erasure patterns of up to 3 shards.
	for a := 0; a < 9; a++ {
		for b := a; b < 9; b++ {
			for d := b; d < 9; d++ {
				shards := make([][]byte, 9)
				for i := range shards {
					shards[i] = append([]byte(nil), orig[i]...)
				}
				shards[a], shards[b], shards[d] = nil, nil, nil
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("erasures (%d,%d,%d): %v", a, b, d, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("erasures (%d,%d,%d): shard %d mismatch", a, b, d, i)
					}
				}
			}
		}
	}
}

func TestReconstructTooManyMissing(t *testing.T) {
	c := MustNew(4, 2, Cauchy)
	shards := make([][]byte, 6)
	for i := 3; i < 6; i++ {
		shards[i] = make([]byte, 8)
	}
	// 3 missing > M=2
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("expected error with too many missing shards")
	}
}

func TestReconstructNoneMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := MustNew(3, 2, Vandermonde)
	data := randShards(rng, 3, 16)
	parity := makeParity(2, 16)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalEqualsReencode is the core update invariant: applying
// Equation (2) parity deltas must equal a full re-encode.
func TestIncrementalEqualsReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		c := MustNew(6, 4, kind)
		size := 256
		data := randShards(rng, 6, size)
		parity := makeParity(4, size)
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		// Random in-place update of a sub-range of one data block.
		for trial := 0; trial < 30; trial++ {
			j := rng.Intn(6)
			off := rng.Intn(size)
			n := 1 + rng.Intn(size-off)
			newData := make([]byte, n)
			rng.Read(newData)
			old := append([]byte(nil), data[j][off:off+n]...)
			delta := make([]byte, n)
			DataDelta(delta, newData, old)
			copy(data[j][off:off+n], newData)
			for p := 0; p < 4; p++ {
				pd := make([]byte, n)
				c.ParityDelta(p, j, pd, delta)
				ApplyParityDelta(parity[p][off:off+n], pd)
			}
		}
		ok, err := c.Verify(data, parity)
		if err != nil || !ok {
			t.Fatalf("%v: incremental updates diverged from re-encode", kind)
		}
	}
}

// TestMergedDeltasEqualReencode checks Equation (5): merging deltas from
// multiple blocks at the same range into one parity delta per parity block.
func TestMergedDeltasEqualReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := MustNew(6, 3, Vandermonde)
	size := 128
	data := randShards(rng, 6, size)
	parity := makeParity(3, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	// Update the same range in blocks 0, 2, 4.
	off, n := 32, 48
	blocks := []int{0, 2, 4}
	deltas := make([][]byte, len(blocks))
	for i, b := range blocks {
		newData := make([]byte, n)
		rng.Read(newData)
		deltas[i] = make([]byte, n)
		DataDelta(deltas[i], newData, data[b][off:off+n])
		copy(data[b][off:off+n], newData)
	}
	for p := 0; p < 3; p++ {
		merged := make([]byte, n)
		c.MergeDataDeltas(p, merged, blocks, deltas)
		ApplyParityDelta(parity[p][off:off+n], merged)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatal("merged deltas diverged from re-encode")
	}
}

// TestRepeatedUpdateLatestWins checks Equation (3)/(4): folding N deltas for
// the same location equals one delta from original to final data.
func TestRepeatedUpdateLatestWins(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := MustNew(4, 2, Cauchy)
	size := 64
	data := randShards(rng, 4, size)
	parity := makeParity(2, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), data[1]...)
	// Apply 5 successive updates to block 1, accumulating deltas by XOR.
	acc := make([]byte, size)
	for u := 0; u < 5; u++ {
		newData := make([]byte, size)
		rng.Read(newData)
		d := make([]byte, size)
		DataDelta(d, newData, data[1])
		for i := range acc {
			acc[i] ^= d[i]
		}
		copy(data[1], newData)
	}
	// acc must equal final XOR original (Equation (4)).
	want := make([]byte, size)
	DataDelta(want, data[1], orig)
	if !bytes.Equal(acc, want) {
		t.Fatal("accumulated deltas != final-original delta")
	}
	for p := 0; p < 2; p++ {
		pd := make([]byte, size)
		c.ParityDelta(p, 1, pd, acc)
		ApplyParityDelta(parity[p], pd)
	}
	ok, err := c.Verify(data, parity)
	if err != nil || !ok {
		t.Fatal("Equation (4) parity update diverged")
	}
}

func TestPropertyEncodeReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		m := 1 + r.Intn(4)
		kind := MatrixKind(r.Intn(2))
		c := MustNew(k, m, kind)
		size := 1 + r.Intn(256)
		data := randShards(r, k, size)
		parity := makeParity(m, size)
		if err := c.Encode(data, parity); err != nil {
			return false
		}
		shards := make([][]byte, k+m)
		for i := 0; i < k; i++ {
			shards[i] = append([]byte(nil), data[i]...)
		}
		for i := 0; i < m; i++ {
			shards[k+i] = append([]byte(nil), parity[i]...)
		}
		// Erase up to m random shards.
		ne := 1 + r.Intn(m)
		for e := 0; e < ne; e++ {
			shards[r.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				return false
			}
		}
		for i := 0; i < m; i++ {
			if !bytes.Equal(shards[k+i], parity[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(10)
		// Random invertible matrix: retry until invertible.
		var m *Matrix
		for {
			m = NewMatrix(n, n)
			rng.Read(m.Data)
			if _, err := m.Invert(); err == nil {
				break
			}
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatal(err)
		}
		prod := m.Mul(inv)
		id := Identity(n)
		if !bytes.Equal(prod.Data, id.Data) {
			t.Fatalf("m * inv(m) != I for n=%d", n)
		}
	}
}

func TestSingularMatrix(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2) // duplicate row
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestEncodeSizeMismatch(t *testing.T) {
	c := MustNew(2, 1, Vandermonde)
	data := [][]byte{make([]byte, 4), make([]byte, 8)}
	parity := [][]byte{make([]byte, 4)}
	if err := c.Encode(data, parity); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestCoefStability(t *testing.T) {
	// Same params must give the same coefficients (placement determinism).
	a := MustNew(6, 3, Vandermonde)
	b := MustNew(6, 3, Vandermonde)
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			if a.Coef(i, j) != b.Coef(i, j) {
				t.Fatal("coefficients not deterministic")
			}
		}
	}
}

func TestCauchyAnySquareInvertible(t *testing.T) {
	// Any square submatrix of a Cauchy matrix must be invertible; spot-check.
	m := cauchy(4, 6)
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		rows := rng.Perm(4)[:n]
		cols := rng.Perm(6)[:n]
		sub := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				sub.Set(r, c, m.At(rows[r], cols[c]))
			}
		}
		if _, err := sub.Invert(); err != nil {
			t.Fatalf("cauchy %dx%d submatrix singular", n, n)
		}
	}
}

func BenchmarkEncodeRS6_4_1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	c := MustNew(6, 4, Vandermonde)
	size := 1 << 20 / 6
	data := randShards(rng, 6, size)
	parity := makeParity(4, size)
	b.SetBytes(int64(size * 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParityDelta4K(b *testing.B) {
	c := MustNew(6, 4, Vandermonde)
	delta := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(16)).Read(delta)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ParityDelta(2, 3, dst, delta)
	}
}
