package rs

import (
	"bytes"
	"math/rand"
	"testing"

	"tsue/internal/gf256"
)

// withWorkers runs fn under a temporary codec worker bound.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

// TestEncodeStripedMatchesSerial: the striped encode must produce the same
// parity as a single-worker encode, across sizes straddling the parallel
// threshold and odd lengths.
func TestEncodeStripedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := MustNew(6, 3, Vandermonde)
	for _, size := range []int{1, 100, 4096, parallelThreshold - 1, 2*parallelThreshold + 13, 5 * parallelThreshold} {
		data := randShards(rng, 6, size)
		serial := randShards(rng, 3, size)
		striped := randShards(rng, 3, size)
		withWorkers(t, 1, func() {
			if err := c.Encode(data, serial); err != nil {
				t.Fatal(err)
			}
		})
		withWorkers(t, 8, func() {
			if err := c.Encode(data, striped); err != nil {
				t.Fatal(err)
			}
		})
		for i := range serial {
			if !bytes.Equal(serial[i], striped[i]) {
				t.Fatalf("size %d: striped parity %d differs from serial", size, i)
			}
		}
	}
}

// TestReconstructStriped: reconstruction with a saturated worker pool must
// recover shards byte-identical to the originals.
func TestReconstructStriped(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := MustNew(5, 3, Cauchy)
	size := 3*parallelThreshold + 7
	data := randShards(rng, 5, size)
	parity := randShards(rng, 3, size)
	if err := c.Encode(data, parity); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 8)
	for i := 0; i < 5; i++ {
		shards[i] = append([]byte(nil), data[i]...)
	}
	for i := 0; i < 3; i++ {
		shards[5+i] = append([]byte(nil), parity[i]...)
	}
	shards[1], shards[4], shards[6] = nil, nil, nil
	withWorkers(t, 8, func() {
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(shards[1], data[1]) || !bytes.Equal(shards[4], data[4]) {
		t.Fatal("striped reconstruct corrupted data shards")
	}
	if !bytes.Equal(shards[6], parity[1]) {
		t.Fatal("striped reconstruct corrupted parity shard")
	}
}

// TestMergeDataDeltasStriped pins the striped merge to a scalar-reference
// accumulation.
func TestMergeDataDeltasStriped(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := MustNew(6, 4, Vandermonde)
	size := 2*parallelThreshold + 33
	deltas := randShards(rng, 3, size)
	blocks := []int{0, 2, 5}
	for parity := 0; parity < 4; parity++ {
		dst := make([]byte, size)
		rng.Read(dst)
		want := append([]byte(nil), dst...)
		for i, b := range blocks {
			gf256.MulXorSliceRef(c.Coef(parity, b), want, deltas[i])
		}
		withWorkers(t, 8, func() {
			c.MergeDataDeltas(parity, dst, blocks, deltas)
		})
		if !bytes.Equal(dst, want) {
			t.Fatalf("striped MergeDataDeltas diverges for parity %d", parity)
		}
	}
}

// foldRef is the naive per-extent reference for FoldDeltas: multiply each
// extent for each parity and XOR-accumulate into a flat per-parity image.
func foldRef(c *Code, extents []DeltaExtent, span int64) [][]byte {
	out := make([][]byte, c.M)
	for i := range out {
		out[i] = make([]byte, span)
		for _, e := range extents {
			tmp := make([]byte, len(e.Data))
			gf256.MulSliceRef(c.Coef(i, e.Block), tmp, e.Data)
			gf256.XorSliceRef(out[i][e.Off:e.Off+int64(len(e.Data))], tmp)
		}
	}
	return out
}

// TestFoldDeltasMatchesNaive: the one-pass batched fold must equal the
// per-extent reference, including overlapping, adjacent, repeated-block and
// empty extents.
func TestFoldDeltasMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := MustNew(4, 3, Vandermonde)
	const span = 1 << 16
	for trial := 0; trial < 30; trial++ {
		nExt := 1 + rng.Intn(12)
		extents := make([]DeltaExtent, 0, nExt)
		for e := 0; e < nExt; e++ {
			size := rng.Intn(5000)
			off := int64(rng.Intn(span - 5000))
			data := make([]byte, size)
			rng.Read(data)
			extents = append(extents, DeltaExtent{Block: rng.Intn(4), Off: off, Data: data})
		}
		want := foldRef(c, extents, span)
		got := c.FoldDeltas(extents)
		if len(got) != c.M {
			t.Fatalf("FoldDeltas returned %d parity rows, want %d", len(got), c.M)
		}
		for i := range got {
			img := make([]byte, span)
			var prevEnd int64 = -1
			for _, ext := range got[i] {
				if ext.Off < prevEnd {
					t.Fatalf("parity %d extents overlap or unsorted", i)
				}
				prevEnd = ext.End()
				copy(img[ext.Off:], ext.Data)
			}
			if !bytes.Equal(img, want[i]) {
				t.Fatalf("trial %d: FoldDeltas parity %d diverges from naive fold", trial, i)
			}
		}
	}
}

// TestFoldDeltasMergesAdjacent: two touching extents must come back as one.
func TestFoldDeltasMergesAdjacent(t *testing.T) {
	c := MustNew(4, 2, Vandermonde)
	out := c.FoldDeltas([]DeltaExtent{
		{Block: 0, Off: 0, Data: []byte{1, 2, 3, 4}},
		{Block: 1, Off: 4, Data: []byte{5, 6}},
		{Block: 2, Off: 100, Data: []byte{7}},
	})
	for i, row := range out {
		if len(row) != 2 {
			t.Fatalf("parity %d: got %d extents, want 2 (adjacent ranges must merge)", i, len(row))
		}
		if row[0].Off != 0 || len(row[0].Data) != 6 || row[1].Off != 100 || len(row[1].Data) != 1 {
			t.Fatalf("parity %d: wrong extent geometry %+v", i, row)
		}
	}
}

// TestFoldDeltasEdgeCases: empty input, zero-length extents, out-of-range
// block panic.
func TestFoldDeltasEdgeCases(t *testing.T) {
	c := MustNew(3, 2, Cauchy)
	if out := c.FoldDeltas(nil); len(out) != 2 || out[0] != nil {
		t.Fatal("empty fold must return M empty rows")
	}
	out := c.FoldDeltas([]DeltaExtent{{Block: 0, Off: 9, Data: nil}})
	for _, row := range out {
		if len(row) != 0 {
			t.Fatal("zero-length extents must fold to nothing")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range block did not panic")
		}
	}()
	c.FoldDeltas([]DeltaExtent{{Block: 3, Off: 0, Data: []byte{1}}})
}

// TestSetWorkersBounds: Workers resolves the default and clamps negatives.
func TestSetWorkersBounds(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(-5)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1 after reset", Workers())
	}
}

// TestEncodeVerifyRoundTripLarge exercises the full striped encode/verify
// path on shards well past the parallel threshold.
func TestEncodeVerifyRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := MustNew(8, 4, Vandermonde)
	size := 4 * parallelThreshold
	data := randShards(rng, 8, size)
	parity := randShards(rng, 4, size)
	withWorkers(t, 4, func() {
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
		ok, err := c.Verify(data, parity)
		if err != nil || !ok {
			t.Fatalf("verify after striped encode: ok=%v err=%v", ok, err)
		}
		parity[2][size/2] ^= 1
		ok, err = c.Verify(data, parity)
		if err != nil || ok {
			t.Fatalf("verify missed corruption: ok=%v err=%v", ok, err)
		}
	})
}
