package rs

import (
	"runtime"
	"sort"
	"sync"
	//lint:allow obsregistry(real-parallelism codec worker pool below the sim layer; the atomic is work distribution, not a metrics counter)
	"sync/atomic"

	"tsue/internal/gf256"
)

// Codec parallelism. Encode, Reconstruct, MergeDataDeltas and FoldDeltas
// stripe their byte ranges across worker goroutines when shards are large
// enough to amortize the handoff; below the threshold they stay serial.
// Workers are spawned per call and the Workers() bound applies per call —
// concurrent codec calls may together exceed it. The bound itself is
// package-global (SetWorkers) because it is a host-capacity knob, not a
// per-Code property.

// parallelThreshold is the per-call byte volume below which striping is not
// attempted: at gf256 kernel speeds a 64 KiB shard costs only a few
// microseconds, comparable to waking a worker.
const parallelThreshold = 64 << 10

// stripeAlign keeps every stripe boundary cache-line- and vector-aligned so
// parallel workers never share a line and the word kernels keep full-width
// steps.
const stripeAlign = 64

// codecWorkers is the configured worker bound (0 = GOMAXPROCS at call time).
var codecWorkers atomic.Int64

// SetWorkers bounds the codec worker pool to n goroutines per striped call.
// n <= 0 restores the default (GOMAXPROCS). It may be called at any time,
// including concurrently with codec operations; in-flight calls keep the
// bound they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	codecWorkers.Store(int64(n))
}

// Workers reports the current worker bound (the default resolves to
// GOMAXPROCS).
func Workers() int {
	if n := int(codecWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// stripeRanges runs fn(lo, hi) over a partition of [0, size) — on the
// calling goroutine when size is small or the pool is bounded to one
// worker, otherwise on min(Workers(), size/parallelThreshold+1) goroutines
// with aligned boundaries. fn must be safe to run concurrently on disjoint
// ranges.
func stripeRanges(size int, fn func(lo, hi int)) {
	if size <= 0 {
		return
	}
	workers := Workers()
	if max := size/parallelThreshold + 1; workers > max {
		workers = max
	}
	if workers <= 1 || size < 2*parallelThreshold {
		fn(0, size)
		return
	}
	chunk := ((size+workers-1)/workers + stripeAlign - 1) &^ (stripeAlign - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < size; lo += chunk {
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// DeltaExtent is one data-delta extent within a stripe: Data covers
// [Off, Off+len(Data)) of data block Block (= Dnew XOR Dold for that range).
type DeltaExtent struct {
	Block int
	Off   int64
	Data  []byte
}

// Extent is one contiguous parity-delta range produced by FoldDeltas.
type Extent struct {
	Off  int64
	Data []byte
}

// End returns the exclusive end offset.
func (e Extent) End() int64 { return e.Off + int64(len(e.Data)) }

// FoldDeltas folds a whole stripe's data-delta extents into per-parity
// parity-delta extents in one pass — the batched form of Equation (5):
// for every parity block i the result accumulates
// sum_j coef[i][block_j] * delta_j over all input extents, with
// overlapping and adjacent input ranges merged into single output extents.
// The returned slice has one entry per parity block, each offset-sorted and
// non-overlapping. Input extents may overlap each other arbitrarily and may
// repeat blocks; their Data is only read. Blocks must be in [0, K).
func (c *Code) FoldDeltas(extents []DeltaExtent) [][]Extent {
	out := make([][]Extent, c.M)
	if len(extents) == 0 {
		return out
	}
	for _, e := range extents {
		if e.Block < 0 || e.Block >= c.K {
			panic("rs: FoldDeltas block index out of range")
		}
	}
	// Coverage union: the merged output ranges shared by every parity block.
	type span struct{ off, end int64 }
	spans := make([]span, 0, len(extents))
	for _, e := range extents {
		if len(e.Data) > 0 {
			spans = append(spans, span{e.Off, e.Off + int64(len(e.Data))})
		}
	}
	if len(spans) == 0 {
		return out
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].off < spans[j].off })
	merged := spans[:1]
	for _, s := range spans[1:] {
		if last := &merged[len(merged)-1]; s.off <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
		} else {
			merged = append(merged, s)
		}
	}
	// Locate each extent's coverage span once (every input extent lies
	// inside exactly one, by construction of the union); the mapping is
	// shared by all parity rows.
	spanIdx := make([]int, len(extents))
	for j, e := range extents {
		if len(e.Data) == 0 {
			spanIdx[j] = -1
			continue
		}
		spanIdx[j] = sort.Search(len(merged), func(i int) bool { return merged[i].end > e.Off })
	}
	var total int64
	for _, s := range merged {
		total += s.end - s.off
	}
	// One fold pass per parity block; parity rows are independent, so they
	// stripe across the worker pool as whole rows (each row already walks
	// every input extent once).
	foldRow := func(i int) {
		row := make([]Extent, len(merged))
		for k, s := range merged {
			row[k] = Extent{Off: s.off, Data: make([]byte, s.end-s.off)}
		}
		for j, e := range extents {
			if spanIdx[j] < 0 {
				continue
			}
			dst := row[spanIdx[j]]
			gf256.MulXorSlice(c.coef.At(i, e.Block), dst.Data[e.Off-dst.Off:e.Off-dst.Off+int64(len(e.Data))], e.Data)
		}
		out[i] = row
	}
	workers := Workers()
	if workers > c.M {
		workers = c.M
	}
	if workers > 1 && int64(c.M)*total >= 2*parallelThreshold {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < c.M; i += workers {
					foldRow(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := 0; i < c.M; i++ {
			foldRow(i)
		}
	}
	return out
}
