package rs

import (
	"errors"
	"fmt"

	"tsue/internal/gf256"
)

// Matrix is a dense matrix over GF(2^8), stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []byte
}

// NewMatrix returns a zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("rs: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("rs: matrix dim mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Row(r)
		orow := out.Row(r)
		for k := 0; k < m.Cols; k++ {
			if a := mrow[k]; a != 0 {
				gf256.MulXorSlice(a, orow, other.Row(k))
			}
		}
	}
	return out
}

// SubMatrix returns the matrix slice [r0:r1) x [c0:c1) as a copy.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// ErrSingular is returned when a matrix cannot be inverted, which for RS
// decode means the chosen surviving rows do not form an invertible system.
var ErrSingular = errors.New("rs: matrix is singular")

// Invert returns the inverse of m using Gauss–Jordan elimination. m must be
// square. Returns ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("rs: cannot invert %dx%d non-square matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		// Scale pivot row to 1.
		if p := work.At(col, col); p != 1 {
			ip := gf256.Inv(p)
			gf256.MulSlice(ip, work.Row(col), work.Row(col))
			gf256.MulSlice(ip, inv.Row(col), inv.Row(col))
		}
		// Eliminate column in all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.At(r, col); f != 0 {
				gf256.MulXorSlice(f, work.Row(r), work.Row(col))
				gf256.MulXorSlice(f, inv.Row(r), inv.Row(col))
			}
		}
	}
	return inv, nil
}

// vandermonde returns the rows x cols Vandermonde matrix V[r][c] = alpha^(r*c).
func vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, gf256.Exp(r*c))
		}
	}
	return m
}

// cauchy returns a (rows x cols) Cauchy matrix C[r][c] = 1/(x_r + y_c) with
// x_r = r + cols and y_c = c, all distinct in GF(2^8). Requires
// rows+cols <= 256.
func cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("rs: cauchy matrix requires rows+cols <= 256")
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, gf256.Inv(byte(r+cols)^byte(c)))
		}
	}
	return m
}
